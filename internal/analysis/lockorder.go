package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a call-graph-aware lock-acquisition graph over the
// repository's lock fields — sync2.SpinLock, sync2.VersionLock, sync.Mutex
// and sync.RWMutex — and reports any cycle as a potential deadlock. Locks
// are typed by identity, not instance: the field of the owning struct
// ("kv.Store.replMu", "core.leafMeta.vl") or the package-level variable.
// An edge a→b is recorded whenever b is acquired while a is held, either
// directly in one function body (via the shared heldWalker) or through a
// call made with a held — the callee's transitive acquisitions are
// summarized and attributed to the call site.
//
// Two findings exist:
//
//   - a cycle through the observed edges (including the a→a self-edge of
//     hand-over-hand locking over two instances of the same lock field,
//     which is only safe under a documented instance order and therefore
//     deserves an audited annotation);
//   - an observed edge that contradicts the DECLARED hierarchy: packages
//     state the intended order with //rnvet:lockorder a<b (chains a<b<c
//     allowed), declared edges join the graph, and any acquisition path
//     closing a cycle through them is reported — so the directive doubles
//     as machine-checked documentation.
//
// Approximations (DESIGN.md §16): locks reached through local variables or
// function return values have no stable identity and are invisible here;
// callee summaries ignore branch structure (every acquisition anywhere in
// the callee counts); goroutine bodies are excluded from summaries (they
// do not run under the caller's locks).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the lock-acquisition graph (observed + declared //rnvet:lockorder) must stay acyclic",
	Run:  runLockOrder,
}

// lockOrderDecl is one parsed a<b pair of a //rnvet:lockorder directive.
type lockOrderDecl struct {
	before, after string
	pos           token.Pos
}

// parseLockOrder parses "//rnvet:lockorder a<b[<c...] [why]" into its
// adjacent pairs. ok reports whether the comment is a lockorder directive
// at all (even a malformed one, so it is not mistaken for a suppression).
func parseLockOrder(text string, pos token.Pos) ([]lockOrderDecl, bool) {
	const prefix = "//rnvet:lockorder"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	// The chain is the first whitespace-separated field; the remainder of
	// the comment is the justification.
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	parts := strings.Split(rest, "<")
	var decls []lockOrderDecl
	for i := 0; i+1 < len(parts); i++ {
		a, b := strings.TrimSpace(parts[i]), strings.TrimSpace(parts[i+1])
		if a == "" || b == "" {
			continue
		}
		decls = append(decls, lockOrderDecl{before: a, after: b, pos: pos})
	}
	return decls, true
}

// classifyAnyLock widens the walker's lock set to sync.Mutex/RWMutex.
// RLock counts as an acquisition (reader/writer cycles deadlock too).
func classifyAnyLock(fn *types.Func) lockClass {
	if c := classifySync2(fn); c != lockNone {
		return c
	}
	if fn == nil {
		return lockNone
	}
	if isMethodOn(fn, "sync", "Mutex") || isMethodOn(fn, "sync", "RWMutex") {
		switch fn.Name() {
		case "Lock", "RLock":
			return lockAcquire
		case "Unlock", "RUnlock":
			return lockRelease
		}
	}
	return lockNone
}

// loEdge is one a→b acquisition-order edge.
type loEdge struct {
	from, to string
	pos      token.Pos // anchor: the acquisition (or call) that adds the edge
	declared bool
	via      string // callee name when the edge came through a call summary
}

type loGraph struct {
	edges []loEdge
	// next[from] lists the distinct successor nodes, for reachability.
	next map[string][]string
}

func runLockOrder(pass *Pass) {
	g, ok := pass.Prog.memos["lockorder"].(*loGraph)
	if !ok {
		g = buildLockGraph(pass.Prog)
		pass.Prog.memos["lockorder"] = g
	}
	// Report each observed edge that lies on a cycle, anchored at its own
	// acquisition site so a //rnvet:ignore lockorder annotation (or a fix)
	// lands exactly where the out-of-order acquisition happens. Only edges
	// positioned in this pass's package are reported here; Run deduplicates
	// across packages.
	for _, e := range g.edges {
		if e.declared {
			continue
		}
		if !pass.posInPkg(e.pos) {
			continue
		}
		if path := g.pathBack(e.to, e.from); path != nil {
			cycle := e.from + " -> " + e.to
			if e.from != e.to {
				cycle = e.from + " -> " + e.to + " -> " + strings.Join(path[1:], " -> ")
			}
			via := ""
			if e.via != "" {
				via = " (acquired inside call to " + e.via + ")"
			}
			if e.from == e.to {
				pass.Reportf(e.pos,
					"lock order: %s acquired while another instance of %s is held%s — instance order is unverified (document it and annotate //rnvet:ignore lockorder, or split the lock)",
					e.to, e.from, via)
			} else {
				pass.Reportf(e.pos,
					"lock order: acquiring %s while %s is held%s closes the cycle %s — potential deadlock (fix the order or declare it with //rnvet:lockorder)",
					e.to, e.from, via, cycle)
			}
		}
	}
	// Contradictory directives (a declared-only cycle) anchor at the later
	// directive. Report once, from the package that contains it.
	for _, e := range g.edges {
		if !e.declared || !pass.posInPkg(e.pos) {
			continue
		}
		if path := g.declaredPathBack(e.to, e.from); path != nil && e.from != e.to {
			pass.Reportf(e.pos,
				"contradictory //rnvet:lockorder directives: %s<%s conflicts with the declared order %s -> %s",
				e.from, e.to, e.to, strings.Join(path[1:], " -> "))
		}
	}
}

// posInPkg reports whether pos falls inside one of the pass package's files.
func (p *Pass) posInPkg(pos token.Pos) bool {
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return true
		}
	}
	return false
}

// pathBack returns a node path from `from` to `to` through the full graph
// (observed + declared), or nil if unreachable. Used to close cycles: an
// edge a→b is cyclic iff b reaches a.
func (g *loGraph) pathBack(from, to string) []string {
	return g.bfs(from, to, false)
}

// declaredPathBack restricts reachability to declared edges.
func (g *loGraph) declaredPathBack(from, to string) []string {
	return g.bfs(from, to, true)
}

func (g *loGraph) bfs(from, to string, declaredOnly bool) []string {
	next := g.next
	if declaredOnly {
		next = make(map[string][]string)
		for _, e := range g.edges {
			if e.declared {
				next[e.from] = append(next[e.from], e.to)
			}
		}
	}
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range next[n] {
			if _, seen := prev[m]; seen {
				continue
			}
			prev[m] = n
			if m == to {
				var path []string
				for cur := m; cur != ""; cur = prev[cur] {
					path = append([]string{cur}, path...)
					if cur == from {
						break
					}
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	if from == to {
		return []string{from}
	}
	return nil
}

// buildLockGraph walks every function of every loaded package, recording
// intra-body acquisition edges and call-summary edges, then merges the
// declared hierarchy.
func buildLockGraph(prog *Program) *loGraph {
	g := &loGraph{next: make(map[string][]string)}
	summaries := make(map[*types.Func][]loSite)
	seenEdge := make(map[string]bool)
	addEdge := func(e loEdge) {
		key := e.from + "|" + e.to + "|" + boolStr(e.declared)
		// Keep every distinct position for observed edges (each acquisition
		// site is independently reportable/suppressible), but collapse the
		// successor index.
		if !seenEdge[key] {
			seenEdge[key] = true
			g.next[e.from] = append(g.next[e.from], e.to)
		}
		posKey := key + "|" + itoa(int(e.pos))
		if !seenEdge[posKey] {
			seenEdge[posKey] = true
			g.edges = append(g.edges, e)
		}
	}

	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				w := &heldWalker{
					info:     pkg.Info,
					classify: classifyAnyLock,
					onAcquire: func(l heldLock, prev []heldLock) {
						if l.node == "" {
							return
						}
						for _, p := range prev {
							if p.node != "" {
								addEdge(loEdge{from: p.node, to: l.node, pos: l.pos})
							}
						}
					},
					onCall: func(call *ast.CallExpr, fn *types.Func, held []heldLock) {
						if len(held) == 0 {
							return
						}
						for _, site := range lockSummary(prog, fn, summaries, nil, 0) {
							for _, p := range held {
								if p.node != "" {
									addEdge(loEdge{from: p.node, to: site.node, pos: call.Pos(), via: fn.Name()})
								}
							}
						}
					},
				}
				w.walkBody(fd.Body)
			}
		}
	}
	for _, d := range prog.lockOrders {
		addEdge(loEdge{from: d.before, to: d.after, pos: d.pos, declared: true})
	}
	sort.SliceStable(g.edges, func(i, j int) bool { return g.edges[i].pos < g.edges[j].pos })
	return g
}

func boolStr(b bool) string {
	if b {
		return "d"
	}
	return "o"
}

// loSite is one lock identity a callee may acquire, with a sample position.
type loSite struct {
	node string
	pos  token.Pos
}

const loMaxDepth = 12

// lockSummary computes the set of named locks fn may acquire, transitively
// through target-package bodies. Branch structure is ignored (any Lock call
// anywhere counts) and goroutine bodies are skipped — a `go` closure does
// not acquire under the caller's locks.
func lockSummary(prog *Program, fn *types.Func, memo map[*types.Func][]loSite, seen map[*types.Func]bool, depth int) []loSite {
	if fn == nil || depth > loMaxDepth {
		return nil
	}
	if s, ok := memo[fn]; ok {
		return s
	}
	if seen == nil {
		seen = make(map[*types.Func]bool)
	}
	if seen[fn] {
		return nil
	}
	seen[fn] = true
	decl, pkg := prog.BodyOf(fn)
	if decl == nil {
		return nil
	}
	byNode := make(map[string]token.Pos)
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				return false // runs outside the caller's critical section
			case *ast.CallExpr:
				callee := calleeOf(pkg.Info, n)
				if callee == nil {
					return true
				}
				if classifyAnyLock(callee) == lockAcquire {
					if node := lockNodeOf(pkg.Info, n); node != "" {
						if _, ok := byNode[node]; !ok {
							byNode[node] = n.Pos()
						}
					}
					return true
				}
				for _, site := range lockSummary(prog, callee, memo, seen, depth+1) {
					if _, ok := byNode[site.node]; !ok {
						byNode[site.node] = site.pos
					}
				}
			}
			return true
		})
	}
	walk(decl.Body)
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	sites := make([]loSite, 0, len(nodes))
	for _, n := range nodes {
		sites = append(sites, loSite{node: n, pos: byNode[n]})
	}
	memo[fn] = sites
	return sites
}
