package analysis

import (
	"reflect"
	"testing"
)

// TestParseLockOrder pins the //rnvet:lockorder grammar: the chain is the
// first whitespace-separated field, every adjacent pair becomes one edge,
// and malformed chains still register as directives (so they are never
// mistaken for suppression comments) without producing edges.
func TestParseLockOrder(t *testing.T) {
	pairs := func(decls []lockOrderDecl) [][2]string {
		var out [][2]string
		for _, d := range decls {
			out = append(out, [2]string{d.before, d.after})
		}
		return out
	}
	cases := []struct {
		text string
		ok   bool
		want [][2]string
	}{
		{"//rnvet:lockorder a<b", true, [][2]string{{"a", "b"}}},
		{"//rnvet:lockorder a<b<c", true, [][2]string{{"a", "b"}, {"b", "c"}}},
		{"//rnvet:lockorder pkg.T.mu<other.U.mu a justification follows", true,
			[][2]string{{"pkg.T.mu", "other.U.mu"}}},
		{"//rnvet:lockorder a<b<c<d", true, [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}}},
		// Malformed chains: still a directive, no edges.
		{"//rnvet:lockorder", true, nil},
		{"//rnvet:lockorder justwords", true, nil},
		{"//rnvet:lockorder a<", true, nil},
		{"//rnvet:lockorder <b", true, nil},
		{"//rnvet:lockorder a<<b", true, nil},
		// Not lockorder directives at all.
		{"//rnvet:ignore lockorder audited", false, nil},
		{"// plain comment", false, nil},
	}
	for _, c := range cases {
		decls, ok := parseLockOrder(c.text, 1)
		if ok != c.ok {
			t.Errorf("%q: ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if got := pairs(decls); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q: pairs = %v, want %v", c.text, got, c.want)
		}
	}
}

// TestDirectivePasses pins the suppression grammar the new passes rely on:
// the pass list is the first field, commas split it, and the lockorder
// DIRECTIVE prefix is not a suppression.
func TestDirectivePasses(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//rnvet:ignore atomicfield audited init", []string{"atomicfield"}},
		{"//rnvet:ignore lockflush,spinblock commit point", []string{"lockflush", "spinblock"}},
		{"//rnvet:ignore lockorder hand-over-hand", []string{"lockorder"}},
		{"//rnvet:ignore", nil},
		{"//pmem:volatile scratch", []string{"persistcheck"}},
		{"//htm:safe audited", []string{"htmsafe"}},
	}
	for _, c := range cases {
		if got := directivePasses(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%q: passes = %v, want %v", c.text, got, c.want)
		}
	}
}
