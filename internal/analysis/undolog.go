package analysis

import (
	"go/ast"
	"go/token"
)

// UndoLog enforces the allocator metadata flush discipline around the pmem
// heap's undo window (DESIGN.md §14.3):
//
//   - MetaWrite8 mutates multi-word allocator metadata and is only
//     crash-consistent while an undo window is open: every call must be
//     preceded, in the same function, by an UndoBegin on the same arena
//     with no UndoCommit in between. (Single-word updates use MetaFlip8,
//     which is exempt — one aligned word flips atomically.)
//   - Every UndoBegin must be closed by an UndoCommit on the same arena
//     before the function returns. A window that escapes the function would
//     make an unrelated later crash roll back committed state.
//   - An UndoCommit with no open window disarms someone else's log.
//
// The pass is linear-flow like persistcheck: events are walked in source
// order, so a window opened under one branch and closed under another is
// approximated. Audited exceptions carry //rnvet:ignore undolog.
var UndoLog = &Analyzer{
	Name: "undolog",
	Doc:  "allocator metadata updates stay inside a matched undo window",
	Run:  runUndoLog,
}

func runUndoLog(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUndoBody(pass, fd.Body)
		}
	}
}

type undoWindow struct {
	pos      token.Pos
	recv     string
	reported bool
}

func checkUndoBody(pass *Pass, body *ast.BlockStmt) {
	events, closures := bodyEvents(pass.Pkg.Info, body)
	for _, cl := range closures {
		checkUndoBody(pass, cl.Body)
	}

	var open []undoWindow
	var deferredCommits []string
	find := func(recv string) *undoWindow {
		for i := range open {
			if open[i].recv == recv {
				return &open[i]
			}
		}
		return nil
	}
	closeWin := func(recv string) bool {
		for i := range open {
			if open[i].recv == recv {
				open = append(open[:i], open[i+1:]...)
				return true
			}
		}
		return false
	}
	atExit := func() {
		for _, recv := range deferredCommits {
			closeWin(recv)
		}
		for i := range open {
			if open[i].reported {
				continue
			}
			open[i].reported = true
			pass.Reportf(open[i].pos,
				"UndoBegin on %s is not closed by an UndoCommit before return: the armed window would roll back committed state after an unrelated crash",
				open[i].recv)
		}
	}

	for _, ev := range events {
		if ev.kind == evReturn {
			atExit()
			continue
		}
		if ev.fn == nil || !isArenaMethod(ev.fn) {
			continue
		}
		switch ev.fn.Name() {
		case "UndoBegin":
			if w := find(ev.recv); w != nil && !w.reported {
				w.reported = true
				pass.Reportf(ev.pos,
					"nested UndoBegin on %s: the heap has one undo window, re-arming it discards the open one", ev.recv)
				continue
			}
			if find(ev.recv) == nil {
				open = append(open, undoWindow{pos: ev.pos, recv: ev.recv})
			}
		case "MetaWrite8":
			if find(ev.recv) == nil {
				pass.Reportf(ev.pos,
					"MetaWrite8 on %s outside an undo window: a crash here leaves the multi-word update half-applied (open one with UndoBegin, or use MetaFlip8 for a single word)",
					ev.recv)
			}
		case "UndoCommit":
			if ev.deferred {
				deferredCommits = append(deferredCommits, ev.recv)
				continue
			}
			if !closeWin(ev.recv) {
				pass.Reportf(ev.pos,
					"UndoCommit on %s without a matching UndoBegin in this function", ev.recv)
			}
		}
	}
	atExit()
}
