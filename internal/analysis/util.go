package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Import paths of the packages whose primitives the passes model.
const (
	pmemPath  = "rntree/internal/pmem"
	htmPath   = "rntree/internal/htm"
	sync2Path = "rntree/internal/sync2"
)

// Method-name sets over pmem.Arena. These mirror the simulator's API split:
// cache-image mutations need a Persist, streamed (write-through) mutations
// need a PersistStream or fence, and EvictLine reaches NVM with no ordering
// at all.
var (
	arenaCacheWrites = map[string]bool{
		"Write8": true, "WriteLine": true, "WriteLineWords": true,
		"WriteRange": true, "Zero": true,
	}
	arenaStreamWrites = map[string]bool{
		"WriteStream": true, "Write8Stream": true,
	}
	arenaPersists = map[string]bool{
		"Persist": true, "PersistStream": true,
	}
)

// calleeOf resolves the *types.Func a call expression invokes (methods via
// selection, functions via plain or package-qualified identifiers). Returns
// nil for builtins, conversions, and calls through function-typed values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isMethodOn reports whether fn is a method whose receiver (possibly via
// pointer) is the named type pkgPath.typeName.
func isMethodOn(fn *types.Func, pkgPath, typeName string) bool {
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// isArenaMethod matches methods on the pmem heap under either name: the
// named type is Heap, and Arena is a compatibility alias for it.
func isArenaMethod(fn *types.Func) bool {
	return isMethodOn(fn, pmemPath, "Heap") || isMethodOn(fn, pmemPath, "Arena")
}
func isTxMethod(fn *types.Func) bool     { return isMethodOn(fn, htmPath, "Tx") }
func isRegionMethod(fn *types.Func) bool { return isMethodOn(fn, htmPath, "Region") }

// isSync2Lock reports whether fn is a blocking-acquire method of one of the
// sync2 lock types (the node metadata lock or the spin lock).
func isSync2Lock(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Lock" {
		return false
	}
	return isMethodOn(fn, sync2Path, "VersionLock") || isMethodOn(fn, sync2Path, "SpinLock")
}

func isSync2Unlock(fn *types.Func) bool {
	if fn == nil || fn.Name() != "Unlock" {
		return false
	}
	return isMethodOn(fn, sync2Path, "VersionLock") || isMethodOn(fn, sync2Path, "SpinLock")
}

// recvString renders the receiver expression of a method call ("t.arena",
// "sh.mu") so per-object state can be tracked textually within a function.
func recvString(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(ast.Unparen(sel.X))
	}
	return ""
}

// constUint evaluates expr to a constant uint64 when the type checker proved
// it constant.
func constUint(info *types.Info, expr ast.Expr) (uint64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Uint64Val(constant.ToInt(tv.Value))
	if !exact {
		return 0, false
	}
	return v, true
}

// event stream ---------------------------------------------------------------

type eventKind int

const (
	evCall eventKind = iota
	evReturn
)

// event is one source-ordered action inside a function body: a call (with
// its resolved callee, if any) or an explicit return.
type event struct {
	kind     eventKind
	pos      token.Pos
	call     *ast.CallExpr
	fn       *types.Func
	recv     string
	deferred bool
}

// bodyEvents flattens a function body into source-ordered events. Nested
// function literals are NOT descended into (they execute on their own
// schedule); they are returned separately so callers can analyze them as
// independent bodies. The ordering is the pre-order source position walk —
// a deliberate approximation of control flow (see DESIGN.md §11): a Persist
// later in the text is taken to cover a Write earlier in the text.
func bodyEvents(info *types.Info, body *ast.BlockStmt) (events []event, closures []*ast.FuncLit) {
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			closures = append(closures, n)
			return false
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.ReturnStmt:
			events = append(events, event{kind: evReturn, pos: n.Pos()})
		case *ast.CallExpr:
			events = append(events, event{
				kind:     evCall,
				pos:      n.Pos(),
				call:     n,
				fn:       calleeOf(info, n),
				recv:     recvString(n),
				deferred: deferred[n],
			})
		}
		return true
	})
	return events, closures
}

// lineRange is an inclusive range of 64-byte cache-line indexes.
type lineRange struct{ first, last uint64 }

const simLineSize = 64 // pmem.LineSize, fixed by the simulated hardware

func (r lineRange) contains(o lineRange) bool {
	return r.first <= o.first && o.last <= r.last
}

// writeLines computes the cache lines a mutating Arena call touches, when
// its offset (and, for ranged ops, size) are compile-time constants.
func writeLines(info *types.Info, fn *types.Func, call *ast.CallExpr) (lineRange, bool) {
	if len(call.Args) == 0 {
		return lineRange{}, false
	}
	off, ok := constUint(info, call.Args[0])
	if !ok {
		return lineRange{}, false
	}
	switch fn.Name() {
	case "Write8", "Write8Stream":
		return lineRange{off / simLineSize, (off + 7) / simLineSize}, true
	case "WriteLine", "WriteLineWords":
		return lineRange{off / simLineSize, off / simLineSize}, true
	case "Zero":
		if len(call.Args) >= 2 {
			if size, ok := constUint(info, call.Args[1]); ok && size > 0 {
				return lineRange{off / simLineSize, (off + size - 1) / simLineSize}, true
			}
		}
	}
	// WriteRange/WriteStream sizes come from slice lengths; not constant.
	return lineRange{}, false
}

// persistLines computes the cache lines a Persist/PersistStream covers, when
// constant. Persist flushes whole lines, and a zero size still flushes the
// line containing off.
func persistLines(info *types.Info, call *ast.CallExpr) (lineRange, bool) {
	if len(call.Args) < 2 {
		return lineRange{}, false
	}
	off, ok1 := constUint(info, call.Args[0])
	size, ok2 := constUint(info, call.Args[1])
	if !ok1 || !ok2 {
		return lineRange{}, false
	}
	if size == 0 {
		size = 1
	}
	return lineRange{off / simLineSize, (off + size - 1) / simLineSize}, true
}
