package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpinBlock forbids blocking while spinning waiters exist: no operation
// that can park or indefinitely delay the goroutine may be reachable while
// a sync2 spin lock (SpinLock, or the leaf VersionLock — both are
// busy-wait) is held. A blocked holder turns every spinning waiter into a
// burning CPU with no progress, and under the paper's latency model the
// critical sections these locks guard are supposed to be tens of
// nanoseconds long.
//
// Blocking operations: channel send/receive, select without a default
// clause, range over a channel, sync.Mutex/RWMutex acquisition (parks),
// sync.Cond.Wait / WaitGroup.Wait / Once.Do, time.Sleep, and any call into
// an I/O package (net, os, io, bufio, syscall). Calls into target-package
// functions are walked transitively (the shared heldWalker provides the
// branch-aware held set; may-block summaries are memoized per function).
// Spinning is NOT blocking: nested sync2 lock acquisition and the sync2
// backoff helpers (runtime.Gosched yields, it never parks on a resource)
// are lockorder's concern, not this pass's.
var SpinBlock = &Analyzer{
	Name: "spinblock",
	Doc:  "no blocking operation may be reachable while a sync2 spin lock is held",
	Run:  runSpinBlock,
}

func runSpinBlock(pass *Pass) {
	if pass.Pkg.Path == sync2Path {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpinBlockBody(pass, fd.Body)
		}
	}
}

func checkSpinBlockBody(pass *Pass, body *ast.BlockStmt) {
	w := &heldWalker{
		info:     pass.Pkg.Info,
		classify: classifySync2,
		onNode: func(n ast.Node, held []heldLock) {
			if len(held) == 0 {
				return
			}
			lock := held[len(held)-1].recv
			if desc := blockingNodeDesc(n); desc != "" {
				pass.Reportf(n.Pos(),
					"%s while sync2 spin lock %s is held: spinning waiters burn CPU behind a blocked holder (move the blocking operation outside the critical section)",
					desc, lock)
			}
		},
		onCall: func(call *ast.CallExpr, fn *types.Func, held []heldLock) {
			if len(held) == 0 {
				return
			}
			lock := held[len(held)-1].recv
			if desc := blockingExternal(fn); desc != "" {
				pass.Reportf(call.Pos(),
					"%s while sync2 spin lock %s is held (spinning waiters burn CPU behind a blocked holder)",
					desc, lock)
				return
			}
			if site := mayBlock(pass.Prog, fn, nil); site != nil {
				pos := pass.Prog.Fset.Position(site.pos)
				pass.Reportf(call.Pos(),
					"call to %s, which can block (%s at %s:%d), while sync2 spin lock %s is held",
					fn.Name(), site.what, shortFile(pos.Filename), pos.Line, lock)
			}
		},
	}
	w.walkBody(body)
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// blockingNodeDesc classifies the statement forms the walker surfaces.
func blockingNodeDesc(n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		return "channel receive"
	case *ast.RangeStmt:
		return "range over channel"
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "" // select with default polls, never blocks
			}
		}
		return "select without default"
	}
	return ""
}

// blockingExternal classifies calls whose bodies are not loaded (stdlib):
// the known parking operations and the I/O packages.
func blockingExternal(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync":
		switch {
		case (isMethodOn(fn, "sync", "Mutex") || isMethodOn(fn, "sync", "RWMutex")) &&
			(name == "Lock" || name == "RLock"):
			return "sync lock acquisition (parks the goroutine)"
		case isMethodOn(fn, "sync", "Cond") && name == "Wait":
			return "sync.Cond.Wait"
		case isMethodOn(fn, "sync", "WaitGroup") && name == "Wait":
			return "sync.WaitGroup.Wait"
		case isMethodOn(fn, "sync", "Once") && name == "Do":
			return "sync.Once.Do (may wait on the winning goroutine)"
		}
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "net", "os", "io", "bufio", "syscall", "os/exec", "net/http":
		return "I/O call into " + fn.Pkg().Path() + "." + name
	}
	return ""
}

// blockSite describes the first blocking operation found inside a callee.
type blockSite struct {
	what string
	pos  token.Pos
}

// mayBlock reports whether fn (transitively, through target-package bodies)
// can reach a blocking operation, returning the first such site. Goroutine
// bodies are skipped: a `go` closure blocks on its own schedule, not while
// the caller's spin lock is held. Results are memoized on the Program.
func mayBlock(prog *Program, fn *types.Func, seen map[*types.Func]bool) *blockSite {
	memo, ok := prog.memos["spinblock"].(map[*types.Func]*blockSite)
	if !ok {
		memo = make(map[*types.Func]*blockSite)
		prog.memos["spinblock"] = memo
	}
	if s, ok := memo[fn]; ok {
		return s
	}
	decl, pkg := prog.BodyOf(fn)
	if decl == nil {
		return nil
	}
	root := seen == nil
	if root {
		seen = make(map[*types.Func]bool)
	}
	if seen[fn] || len(seen) > 128 {
		return nil
	}
	seen[fn] = true
	var found *blockSite
	info := pkg.Info
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			found = &blockSite{what: "channel send", pos: n.Pos()}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = &blockSite{what: "channel receive", pos: n.Pos()}
			}
		case *ast.SelectStmt:
			if d := blockingNodeDesc(n); d != "" {
				found = &blockSite{what: d, pos: n.Pos()}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = &blockSite{what: "range over channel", pos: n.Pos()}
				}
			}
		case *ast.CallExpr:
			callee := calleeOf(info, n)
			if callee == nil {
				return true
			}
			if desc := blockingExternal(callee); desc != "" {
				found = &blockSite{what: desc, pos: n.Pos()}
				return false
			}
			if s := mayBlock(prog, callee, seen); s != nil {
				found = s
				return false
			}
		}
		return true
	})
	if found != nil {
		memo[fn] = found // a found site is valid regardless of recursion cuts
	} else if root {
		// Cache a negative only at the walk root: deeper in the recursion a
		// "no block found" may just mean the cycle/depth cut hid one.
		memo[fn] = nil
	}
	return found
}
