package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Analyze marks packages matched by the requested patterns. In-module
	// dependencies of the request are loaded too — every module package
	// must live in ONE type-checked universe, or a dependency resolved by
	// the source importer would clash with the same package loaded as a
	// target — but passes only run over the requested set.
	Analyze bool
}

// Program is a set of type-checked target packages plus the cross-package
// indexes the interprocedural passes need.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// bodies maps every function/method declared in a target package to its
	// declaration and owning package, so passes can walk callee bodies.
	bodies map[*types.Func]bodyRef

	// notes indexes annotation comments: filename -> line -> entries.
	notes map[string]map[int][]noteEntry

	// lockOrders holds the //rnvet:lockorder declarations of the whole
	// program, in source order (see lockorder.go).
	lockOrders []lockOrderDecl

	// memos caches whole-program indexes that interprocedural passes build
	// once and reuse across per-package Run invocations (atomicfield's
	// field-access index, lockorder's acquisition graph, spinblock's
	// may-block summaries). Run executes passes sequentially, so no locking.
	memos map[string]any
}

type bodyRef struct {
	decl *ast.FuncDecl
	pkg  *Package
}

// BodyOf returns the target-package declaration of fn, or nil if fn is
// declared outside the loaded set (stdlib, or a package not analyzed).
func (prog *Program) BodyOf(fn *types.Func) (*ast.FuncDecl, *Package) {
	ref, ok := prog.bodies[fn]
	if !ok {
		return nil, nil
	}
	return ref.decl, ref.pkg
}

// listedPackage is the slice of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
}

// Load enumerates patterns with `go list` (run in dir; "" means the current
// directory, which must be inside the module) and type-checks every matched
// package from source, along with every in-module package it depends on —
// the whole module must share one type-checked universe, or the source
// importer would materialize a second copy of a dependency and type
// identities would clash. Test files are not loaded: the invariants guard
// production paths, and tests legitimately evict lines and tear images.
func Load(dir string, patterns []string) (*Program, error) {
	requested, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	withDeps, err := goList(dir, patterns, true)
	if err != nil {
		return nil, err
	}
	analyze := make(map[string]bool, len(requested))
	for _, lp := range requested {
		analyze[lp.ImportPath] = true
	}
	var listed []listedPackage
	for _, lp := range withDeps {
		if !lp.Standard { // stdlib stays with the source importer
			listed = append(listed, lp)
		}
	}
	return load(listed, analyze)
}

// goList runs `go list -json` over patterns, optionally with -deps.
func goList(dir string, patterns []string, deps bool) ([]listedPackage, error) {
	args := []string{"list", "-json=ImportPath,Dir,GoFiles,Imports,Standard"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(append(args, "--"), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}
	return listed, nil
}

// LoadDir type-checks the single package rooted at dir (used by the golden
// tests to load fixture packages out of testdata, which `go list` ignores).
// Imports resolve against the enclosing module via the source importer.
func LoadDir(dir string) (*Program, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(files)
	lp := listedPackage{ImportPath: "fixture/" + filepath.Base(dir), Dir: dir, GoFiles: files}
	return load([]listedPackage{lp}, map[string]bool{lp.ImportPath: true})
}

// load parses and type-checks the listed packages in dependency order. Each
// target package's dependencies that are themselves targets are served from
// the already-checked set (so *types.Func identities line up across
// packages); everything else (stdlib) is type-checked from source by the
// compiler's "source" importer.
func load(listed []listedPackage, analyze map[string]bool) (*Program, error) {
	prog := &Program{
		Fset:   token.NewFileSet(),
		bodies: make(map[*types.Func]bodyRef),
		notes:  make(map[string]map[int][]noteEntry),
		memos:  make(map[string]any),
	}
	byPath := make(map[string]*listedPackage, len(listed))
	for i := range listed {
		byPath[listed[i].ImportPath] = &listed[i]
	}
	// Topological order over the in-target import edges.
	var order []*listedPackage
	state := make(map[string]int, len(listed)) // 0 unvisited, 1 visiting, 2 done
	var visit func(lp *listedPackage) error
	visit = func(lp *listedPackage) error {
		switch state[lp.ImportPath] {
		case 1:
			return fmt.Errorf("import cycle through %s", lp.ImportPath)
		case 2:
			return nil
		}
		state[lp.ImportPath] = 1
		for _, imp := range lp.Imports {
			if dep, ok := byPath[imp]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[lp.ImportPath] = 2
		order = append(order, lp)
		return nil
	}
	for i := range listed {
		if err := visit(&listed[i]); err != nil {
			return nil, err
		}
	}

	imp := &chainedImporter{
		loaded: make(map[string]*types.Package),
		source: importer.ForCompiler(prog.Fset, "source", nil),
	}
	for _, lp := range order {
		var files []*ast.File
		var srcs [][]byte
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(prog.Fset, path, src, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			srcs = append(srcs, src)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp, FakeImportC: true}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		imp.loaded[lp.ImportPath] = tpkg
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Files: files, Types: tpkg, Info: info, Analyze: analyze[lp.ImportPath]}
		prog.Packages = append(prog.Packages, pkg)
		for i, f := range files {
			prog.collectNotes(f, srcs[i])
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn := pkg.FuncOf(fd); fn != nil {
					prog.bodies[fn] = bodyRef{decl: fd, pkg: pkg}
				}
			}
		}
	}
	return prog, nil
}

// chainedImporter serves already-type-checked target packages by identity and
// defers everything else to the source importer.
type chainedImporter struct {
	loaded map[string]*types.Package
	source types.Importer
}

func (c *chainedImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainedImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := c.loaded[path]; ok {
		return pkg, nil
	}
	if from, ok := c.source.(types.ImporterFrom); ok {
		return from.ImportFrom(path, dir, mode)
	}
	return c.source.Import(path)
}
