package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// AtomicField enforces single-discipline access to shared words: a struct
// field (or package-level variable) that is accessed through sync/atomic —
// either by address (`atomic.LoadUint64(&s.w)`) or by being declared as an
// atomic value type (`atomic.Uint64`) — must never also be read or written
// plainly anywhere in the program. Mixed access is how packed protocol
// words rot: the repl epoch<<8|role word, the leaf version word, the HTM
// line-lock table and the pmem cache/dirty words are all single 8-byte
// words whose readers run lock-free, so one plain store (or one plain read
// hoisted by the compiler) is a data race the scheduler may never surface.
//
// The index is whole-program: the classification of a field merges every
// access in every loaded package, then each plain access is reported at its
// own site so the //rnvet:ignore atomicfield escape can be applied (with an
// audit comment) exactly where a single-threaded init/recovery path makes
// the plain access safe.
//
// Deliberate exemptions (see DESIGN.md §16 for the full approximation
// list): composite-literal initialization (the object is not yet
// published), len/cap and index-only range (they touch the slice header,
// not the atomic elements), whole-header assignment of a plain-typed
// slice whose *elements* are the atomic words (`a.cache = make(...)`),
// and taking &s.f of a declared-atomic field (the pointee's fields are
// unexported, so every access through the pointer is forced back through
// the sync/atomic method API).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic must never also be accessed plainly",
	Run:  runAtomicField,
}

// afMode records how a field earns atomic status.
type afMode int

const (
	afDirect     afMode = iota // &s.f passed to a sync/atomic function
	afElem                     // &s.f[i] passed to a sync/atomic function
	afAtomicType               // field declared as an atomic value type
)

type afInfo struct {
	mode      afMode
	atomicPos token.Pos // first atomic access site (NoPos: declared-type only)
}

// afPlain is one non-atomic access to a tracked field.
type afPlain struct {
	v    *types.Var
	name string // rendered "pkg.Type.field" at the access site
	pos  token.Pos
	kind string // "plain write", "plain element read", ...
	pkg  *Package
}

type afIndex struct {
	fields map[*types.Var]*afInfo
	plains []afPlain
}

func runAtomicField(pass *Pass) {
	idx, ok := pass.Prog.memos["atomicfield"].(*afIndex)
	if !ok {
		idx = buildAtomicIndex(pass.Prog)
		pass.Prog.memos["atomicfield"] = idx
	}
	for _, p := range idx.plains {
		if p.pkg != pass.Pkg {
			continue
		}
		info := idx.fields[p.v]
		if info == nil {
			continue
		}
		where := "declared as a sync/atomic type"
		if info.atomicPos.IsValid() {
			ap := pass.Prog.Fset.Position(info.atomicPos)
			where = "accessed atomically at " + filepath.Base(ap.Filename) + ":" + itoa(ap.Line)
		}
		pass.Reportf(p.pos,
			"field %s mixes atomic and plain access: %s here, but %s (every access to an atomic word must use sync/atomic; annotate //rnvet:ignore atomicfield on audited single-threaded paths)",
			p.name, p.kind, where)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// buildAtomicIndex scans every loaded package twice: first for atomic
// accesses (which fields participate), then for every other use of those
// fields, classified by syntactic context.
func buildAtomicIndex(prog *Program) *afIndex {
	idx := &afIndex{fields: make(map[*types.Var]*afInfo)}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			collectAtomicAccesses(idx, pkg, f)
		}
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			parents := parentMap(f)
			collectPlainUses(idx, prog, pkg, f, parents)
		}
	}
	return idx
}

// atomicFnPrefixes are the sync/atomic package-level operations that take
// the word's address as their first argument.
var atomicFnPrefixes = []string{"CompareAndSwap", "Load", "Store", "Swap", "Add", "And", "Or"}

func isAtomicPkgFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	for _, p := range atomicFnPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

// isAtomicValueType reports whether t is (or is a slice/array of) one of
// the sync/atomic value types (atomic.Uint64, atomic.Pointer[T], ...).
func isAtomicValueType(t types.Type) bool {
	switch u := t.(type) {
	case *types.Slice:
		return isAtomicValueType(u.Elem())
	case *types.Array:
		return isAtomicValueType(u.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// trackedVarOf resolves an expression to a field or package-level variable
// worth indexing (local variables have no cross-function identity). It
// returns the variable and its rendered name.
func trackedVarOf(info *types.Info, e ast.Expr) (*types.Var, string) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				return v, fieldNodeName(s.Recv(), v)
			}
			return nil, ""
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	}
	return nil, ""
}

// markAtomic records an atomic access, keeping the earliest sample site and
// upgrading the mode if a field is reached both directly and by element.
func (idx *afIndex) markAtomic(v *types.Var, mode afMode, pos token.Pos) {
	if v == nil {
		return
	}
	info := idx.fields[v]
	if info == nil {
		idx.fields[v] = &afInfo{mode: mode, atomicPos: pos}
		return
	}
	if !info.atomicPos.IsValid() {
		info.atomicPos = pos
	}
	if info.mode == afAtomicType && mode != afAtomicType {
		info.mode = mode
	}
}

// collectAtomicAccesses finds, in one file, every sync/atomic call on a
// field's address and every method call on an atomic-typed field.
func collectAtomicAccesses(idx *afIndex, pkg *Package, f *ast.File) {
	info := pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		if isAtomicPkgFunc(fn) && len(call.Args) > 0 {
			if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
				target := ast.Unparen(u.X)
				if ix, ok := target.(*ast.IndexExpr); ok {
					if v, _ := trackedVarOf(info, ix.X); v != nil {
						idx.markAtomic(v, afElem, call.Pos())
					}
				} else if v, _ := trackedVarOf(info, target); v != nil {
					idx.markAtomic(v, afDirect, call.Pos())
				}
			}
			return true
		}
		// Method call on an atomic value type: the receiver chain is the
		// atomic access (s.epoch.Load(), sub.cursor[p].Store(v)).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				if mfn, ok := s.Obj().(*types.Func); ok && mfn.Pkg() != nil && mfn.Pkg().Path() == "sync/atomic" {
					recv := ast.Unparen(sel.X)
					if ix, ok := recv.(*ast.IndexExpr); ok {
						recv = ast.Unparen(ix.X)
					}
					if v, _ := trackedVarOf(info, recv); v != nil {
						idx.markAtomic(v, afAtomicType, call.Pos())
					}
				}
			}
		}
		return true
	})
}

// parentMap indexes every node's syntactic parent in one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// collectPlainUses records every use of a tracked field that is not itself
// an atomic access, classified by walking up the parent chain.
func collectPlainUses(idx *afIndex, prog *Program, pkg *Package, f *ast.File, parents map[ast.Node]ast.Node) {
	info := pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		var use ast.Expr
		switch n := n.(type) {
		case *ast.SelectorExpr:
			use = n
		case *ast.Ident:
			// Bare identifiers matter only for package-level variables and
			// composite-literal field keys; selector Sel idents are reached
			// via their SelectorExpr parent, which we skip here.
			if p, ok := parents[n].(*ast.SelectorExpr); ok && p.Sel == n {
				return true
			}
			use = n
		default:
			return true
		}
		v, name := trackedVarOf(info, use)
		if v == nil {
			return true
		}
		tracked := idx.fields[v] != nil
		if !tracked && v.IsField() && isAtomicValueType(v.Type()) {
			// A declared-atomic field is tracked even before (or without)
			// any method call on it: a plain reset still tears the word.
			idx.markAtomic(v, afAtomicType, token.NoPos)
			tracked = true
		}
		if !tracked {
			return true
		}
		kind, counted := classifyUse(info, idx.fields[v], v, use, parents)
		if counted {
			idx.plains = append(idx.plains, afPlain{v: v, name: name, pos: use.Pos(), kind: kind, pkg: pkg})
		}
		return v.IsField() // descend into s of s.f — it may itself be tracked
	})
}

// classifyUse walks up from one field use and decides whether it is a
// plain (counted) access, and of what kind. The walk accumulates element
// and address-of context through parens, index expressions and unary &,
// then classifies at the first decisive parent.
func classifyUse(info *types.Info, fi *afInfo, v *types.Var, use ast.Expr, parents map[ast.Node]ast.Node) (string, bool) {
	elem := false
	addr := false
	var cur ast.Node = use
	for {
		p := parents[cur]
		if p == nil {
			return "plain read", true
		}
		switch p := p.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X == cur {
				elem = true
				cur = p
				continue
			}
			return "plain read", true // used as an index value
		case *ast.SliceExpr:
			if p.X == cur {
				if fi.mode == afElem {
					return "aliasing slice of atomic words", true
				}
				return "plain read", true
			}
			return "plain read", true
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				addr = true
				cur = p
				continue
			}
			return "plain read", true
		case *ast.StarExpr:
			cur = p
			continue
		case *ast.CallExpr:
			return classifyCallUse(info, fi, p, cur, elem, addr)
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == cur {
					return classifyWrite(fi, v, elem, addr)
				}
			}
			return readUse(fi, elem, addr)
		case *ast.IncDecStmt:
			return classifyWrite(fi, v, elem, addr)
		case *ast.KeyValueExpr:
			if p.Key == cur {
				if _, ok := parents[p].(*ast.CompositeLit); ok {
					return "", false // composite-literal init: object unpublished
				}
			}
			return readUse(fi, elem, addr)
		case *ast.RangeStmt:
			if p.X == cur {
				if p.Value == nil {
					return "", false // index-only range touches the header
				}
				return "plain element read (range)", true
			}
			return readUse(fi, elem, addr)
		case *ast.SelectorExpr:
			// The field's value is selected from further (method or field on
			// the word). Method calls on atomic types were consumed in pass
			// one; reaching here for an atomic-typed field means a method
			// VALUE or a field promotion — treat as read unless it is the
			// consumed receiver of an atomic method call.
			if s, ok := info.Selections[p]; ok && s.Kind() == types.MethodVal {
				if mfn, ok := s.Obj().(*types.Func); ok && mfn.Pkg() != nil && mfn.Pkg().Path() == "sync/atomic" {
					if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
						return "", false // the atomic access itself
					}
				}
			}
			cur = p
			continue
		default:
			return readUse(fi, elem, addr)
		}
	}
}

// classifyCallUse decides a field use whose decisive parent is a call.
func classifyCallUse(info *types.Info, fi *afInfo, call *ast.CallExpr, cur ast.Node, elem, addr bool) (string, bool) {
	if call.Fun == cur {
		return "", false // the expression IS the callee (method value resolved above)
	}
	fn := calleeOf(info, call)
	if isAtomicPkgFunc(fn) && len(call.Args) > 0 && call.Args[0] == cur && addr {
		return "", false // the atomic access itself
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				return "", false // header-only
			case "copy":
				if fi.mode == afElem || fi.mode == afAtomicType {
					return "bulk copy over atomic words", true
				}
			}
		}
	}
	if addr {
		if fi.mode == afAtomicType && !elem {
			return "", false // passing *atomic.T around is the method API
		}
		if elem {
			return "address of atomic word element escapes to " + callName(fn), true
		}
		return "address of atomic word escapes to " + callName(fn), true
	}
	return readUse(fi, elem, addr)
}

func callName(fn *types.Func) string {
	if fn == nil {
		return "a call"
	}
	return fn.Name()
}

func classifyWrite(fi *afInfo, v *types.Var, elem, addr bool) (string, bool) {
	if addr {
		return "plain write through escaped address", true
	}
	if elem {
		return "plain element write", true
	}
	if _, ok := v.Type().Underlying().(*types.Slice); ok {
		// Whole-header assignment of the backing slice (init/grow): the
		// atomic words are the elements, not the header. Arrays do NOT get
		// this exemption — assigning an array value rewrites its elements.
		return "", false
	}
	return "plain write", true
}

// readUse classifies a read-position use, applying the declared-atomic
// address exemption: &s.f of an atomic value type is how the method API is
// reached, and the pointee's fields are unexported — every access through
// the pointer is forced back through sync/atomic.
func readUse(fi *afInfo, elem, addr bool) (string, bool) {
	if addr && !elem && fi.mode == afAtomicType {
		return "", false
	}
	return readKind(fi, elem, addr), true
}

func readKind(fi *afInfo, elem, addr bool) string {
	switch {
	case addr && elem:
		return "address of atomic word element taken"
	case addr:
		return "address of atomic word taken"
	case elem:
		return "plain element read"
	case fi.mode == afElem || fi.mode == afAtomicType:
		if fi.mode == afElem {
			return "aliasing read of the backing slice"
		}
		return "plain read (value copy of atomic type)"
	default:
		return "plain read"
	}
}
