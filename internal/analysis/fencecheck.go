package analysis

import (
	"go/ast"
	"go/token"
)

// FenceCheck polices ordering fences on both sides:
//
//   - a standalone Fence with nothing unordered to order — no streamed
//     write (WriteStream/Write8Stream) or EvictLine on the same arena since
//     the last fence-bearing instruction (Persist, PersistStream, Fence) —
//     is a redundant fence: pure cost on the paper's dominant latency term;
//   - an EvictLine that is never followed by a fence-bearing instruction on
//     the same arena before the function returns is an unfenced commit
//     flush: the line reaches NVM with no ordering guarantee, so nothing
//     durable may be published on the strength of it.
//
// (Unpersisted streamed writes are persistcheck's finding; fencecheck owns
// the ordering side.) Audited exceptions carry //rnvet:ignore fencecheck.
var FenceCheck = &Analyzer{
	Name: "fencecheck",
	Doc:  "no redundant fences, and no unfenced commit flushes",
	Run:  runFenceCheck,
}

func runFenceCheck(pass *Pass) {
	if pass.Pkg.Path == pmemPath {
		return // the primitives themselves, not their uses
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFenceBody(pass, fd.Body)
		}
	}
}

type pendingEvict struct {
	pos      token.Pos
	recv     string
	reported bool
}

func checkFenceBody(pass *Pass, body *ast.BlockStmt) {
	events, closures := bodyEvents(pass.Pkg.Info, body)
	for _, cl := range closures {
		checkFenceBody(pass, cl.Body)
	}

	// Per-receiver fence state: whether a fence-bearing call was seen, and
	// whether unordered traffic (stream write / evict) happened since.
	fenced := map[string]bool{}    // receiver had a fence-bearing op
	unordered := map[string]bool{} // unordered traffic since that op
	var evicts []pendingEvict
	var deferredFences []string // receivers fenced by deferred calls

	fence := func(recv string) {
		fenced[recv] = true
		unordered[recv] = false
		kept := evicts[:0]
		for _, e := range evicts {
			if e.recv != recv {
				kept = append(kept, e)
			}
		}
		evicts = kept
	}
	atExit := func() {
		for _, recv := range deferredFences {
			fence(recv)
		}
		for i := range evicts {
			if evicts[i].reported {
				continue
			}
			evicts[i].reported = true
			pass.Reportf(evicts[i].pos,
				"EvictLine on %s is never fenced before return: the flushed line reaches NVM unordered, so no commit may depend on it (unfenced commit flush)",
				evicts[i].recv)
		}
	}

	for _, ev := range events {
		if ev.kind == evReturn {
			atExit()
			continue
		}
		if ev.fn == nil || !isArenaMethod(ev.fn) {
			continue
		}
		name := ev.fn.Name()
		switch {
		case arenaStreamWrites[name]:
			unordered[ev.recv] = true
		case name == "EvictLine":
			unordered[ev.recv] = true
			evicts = append(evicts, pendingEvict{pos: ev.pos, recv: ev.recv})
		case arenaPersists[name]:
			if ev.deferred {
				deferredFences = append(deferredFences, ev.recv)
			} else {
				fence(ev.recv)
			}
		case name == "Fence":
			if ev.deferred {
				deferredFences = append(deferredFences, ev.recv)
				continue
			}
			if fenced[ev.recv] && !unordered[ev.recv] {
				pass.Reportf(ev.pos,
					"redundant fence on %s: no unfenced persist (streamed write or eviction) since the last fence-bearing instruction", ev.recv)
			}
			fence(ev.recv)
		}
	}
	atExit()
}
