package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HTMSafe walks the call graph of every closure passed to htm.Region.Run /
// RunOutcome and rejects anything that would guarantee an abort (or worse)
// on real restricted transactional memory:
//
//   - cache-line flushes and fences (Arena Persist/PersistStream/Fence/
//     EvictLine, and Tx.Persist — a flush inside a transaction always
//     aborts, §2.2);
//   - direct arena access that bypasses the transactional read/write sets
//     (zombie reads, unbuffered stores);
//   - blocking operations: channel sends/receives/selects, sync and sync2
//     lock acquisition, time.Sleep, goroutine launches;
//   - unbounded allocation: make/append, and calls into packages outside a
//     small allowlist (any heap allocation can trigger a GC cycle, the
//     static analogue of a capacity/interrupt abort).
//
// Audited exceptions carry the //htm:safe annotation.
var HTMSafe = &Analyzer{
	Name: "htmsafe",
	Doc:  "closures passed to htm.Region.Run must not flush, block or allocate",
	Run:  runHTMSafe,
}

// htmAllowedPkgs are external packages whose functions are deemed HTM-safe:
// pure compute with no allocation or syscalls.
var htmAllowedPkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// htmAllowedArena / htmAllowedRegion / htmAllowedSync2 are the read-only,
// non-blocking methods of the modeled packages.
var (
	htmAllowedArena  = map[string]bool{"Size": true, "Latency": true}
	htmAllowedRegion = map[string]bool{"Arena": true, "Stats": true, "FallbackHeld": true}
	htmBlockingSync2 = map[string]bool{"Lock": true, "StableVersion": true}
)

func runHTMSafe(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Pkg.Info, call)
			if !isRegionMethod(fn) || (fn.Name() != "Run" && fn.Name() != "RunOutcome") {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			body := ast.Unparen(call.Args[0])
			switch b := body.(type) {
			case *ast.FuncLit:
				checkHTMBody(pass, pass.Pkg, b.Body, make(map[*types.Func]bool), 0)
			default:
				// A named function or method value: resolve and walk it.
				if callee := funcValueOf(pass.Pkg.Info, body); callee != nil {
					checkHTMCallee(pass, callee, body.Pos(), make(map[*types.Func]bool), 0)
				} else {
					pass.Reportf(body.Pos(),
						"cannot statically verify the body passed to htm.Region.%s (audit it and annotate //htm:safe)", fn.Name())
				}
			}
			return true
		})
	}
}

// funcValueOf resolves an expression used as a function value to its
// declared *types.Func, when it is a plain reference.
func funcValueOf(info *types.Info, expr ast.Expr) *types.Func {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[e].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[e.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

const htmMaxDepth = 12

// checkHTMCallee verifies a named function reachable from an HTM region:
// target-package bodies are walked transitively; externals are classified
// by package.
func checkHTMCallee(pass *Pass, fn *types.Func, callPos token.Pos, seen map[*types.Func]bool, depth int) {
	if fn == nil || seen[fn] || depth > htmMaxDepth {
		return
	}
	seen[fn] = true
	name := fn.Name()
	switch {
	case isTxMethod(fn):
		if name == "Persist" {
			pass.Reportf(callPos, "Tx.Persist inside HTM region: a cache-line flush always aborts the transaction (hoist the persist outside Region.Run)")
		}
		return // other Tx methods are the transactional API itself
	case isArenaMethod(fn):
		switch {
		case arenaPersists[name] || name == "Fence" || name == "EvictLine":
			pass.Reportf(callPos, "arena %s inside HTM region: flushes and fences guarantee a transaction abort", name)
		case htmAllowedArena[name]:
		default:
			pass.Reportf(callPos, "direct arena %s inside HTM region bypasses transactional buffering/validation (use the Tx API)", name)
		}
		return
	case isRegionMethod(fn):
		if name == "Run" || name == "RunOutcome" {
			pass.Reportf(callPos, "nested htm.Region.%s inside HTM region", name)
		} else if !htmAllowedRegion[name] {
			pass.Reportf(callPos, "htm.Region.%s inside HTM region is not verified HTM-safe", name)
		}
		return
	case isMethodOn(fn, sync2Path, "VersionLock") || isMethodOn(fn, sync2Path, "SpinLock"):
		if htmBlockingSync2[name] {
			pass.Reportf(callPos, "sync2 %s inside HTM region blocks (spin-wait inside a transaction livelocks or aborts)", name)
		}
		return
	}
	if decl, pkg := pass.Prog.BodyOf(fn); decl != nil {
		checkHTMBody(pass, pkg, decl.Body, seen, depth+1)
		return
	}
	// External function without a loaded body: classify by package.
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case htmAllowedPkgs[pkgPath]:
	case pkgPath == "sync":
		pass.Reportf(callPos, "sync.%s inside HTM region blocks (lock acquisition aborts the transaction)", name)
	case pkgPath == "time":
		pass.Reportf(callPos, "time.%s inside HTM region (timers/sleeps block and syscalls abort transactions)", name)
	default:
		pass.Reportf(callPos, "call into %s inside HTM region may block or allocate (move it outside Region.Run, or annotate //htm:safe)", pkgPath)
	}
}

// checkHTMBody walks one body that executes inside an HTM region, including
// nested function literals (they may be invoked before commit).
func checkHTMBody(pass *Pass, pkg *Package, body ast.Node, seen map[*types.Func]bool, depth int) {
	if depth > htmMaxDepth {
		return
	}
	info := pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside HTM region blocks (guaranteed abort)")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive inside HTM region blocks (guaranteed abort)")
			}
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select inside HTM region blocks (guaranteed abort)")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch inside HTM region allocates and schedules (guaranteed abort)")
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					pass.Reportf(n.Pos(), "range over channel inside HTM region blocks (guaranteed abort)")
				}
			}
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if tv, ok := info.Types[fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			if _, ok := fun.(*ast.FuncLit); ok {
				return true // directly-invoked literal: its body is walked below
			}
			if id, ok := fun.(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if id.Name == "make" || id.Name == "append" {
						pass.Reportf(n.Pos(), "%s inside HTM region allocates (heap allocation can trigger GC, a guaranteed abort)", id.Name)
					}
					return true
				}
			}
			if callee := calleeOf(info, n); callee != nil {
				checkHTMCallee(pass, callee, n.Pos(), seen, depth)
			} else if !isTypeParamOrFuncValueBenign(info, fun) {
				pass.Reportf(n.Pos(), "call through a function value inside HTM region cannot be verified (annotate //htm:safe after auditing)")
			}
		}
		return true
	})
}

// isTypeParamOrFuncValueBenign filters call expressions we deliberately do
// not flag as unverifiable: method expressions on the Tx parameter itself
// never reach here, so today nothing is exempt. Kept as a seam for future
// allowances.
func isTypeParamOrFuncValueBenign(info *types.Info, fun ast.Expr) bool {
	_ = info
	_ = fun
	return false
}
