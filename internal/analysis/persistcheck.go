package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PersistCheck enforces durable linearizability's write side: every
// pmem.Arena mutation (Write8, WriteLine, WriteLineWords, WriteRange,
// WriteStream, Write8Stream, Zero) performed by a function must be covered
// by a later Persist/PersistStream on the same arena before the function
// returns. When both the write's offset and the persist's range are
// compile-time constants the coverage check is exact at cache-line
// granularity; otherwise any persist on the same receiver is assumed to
// cover the write (the documented offset-range approximation).
//
// Functions that intentionally leave bytes unpersisted — scratch data, or
// helpers whose caller owns the flush (deferred group commit) — carry the
// audited //pmem:volatile annotation.
var PersistCheck = &Analyzer{
	Name: "persistcheck",
	Doc:  "arena mutations on durable paths must be persisted before return",
	Run:  runPersistCheck,
}

// pendingWrite is one not-yet-covered arena mutation.
type pendingWrite struct {
	pos      token.Pos
	name     string // mutating method name, for the diagnostic
	recv     string
	lines    lineRange
	hasLines bool
	reported bool
}

func runPersistCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPersistBody(pass, fd.Body)
		}
	}
}

func checkPersistBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	events, closures := bodyEvents(info, body)
	for _, cl := range closures {
		checkPersistBody(pass, cl.Body)
	}

	var pending []pendingWrite
	var deferredPersists []event

	// applyPersist drops pending writes the persist call provably covers.
	applyPersist := func(ev event) {
		pr, prOK := persistLines(info, ev.call)
		kept := pending[:0]
		for _, w := range pending {
			covered := w.recv == ev.recv && (!prOK || !w.hasLines || pr.contains(w.lines))
			if !covered {
				kept = append(kept, w)
			}
		}
		pending = kept
	}
	// atExit reports writes still uncovered once the function (or one of its
	// returns) is reached, after folding in deferred persists.
	atExit := func() {
		for _, dp := range deferredPersists {
			applyPersist(dp)
		}
		for i := range pending {
			if pending[i].reported {
				continue
			}
			pending[i].reported = true
			pass.Reportf(pending[i].pos,
				"%s on %s is not covered by a Persist/PersistStream before return (durable store left unflushed; annotate //pmem:volatile if intentional)",
				pending[i].name, pending[i].recv)
		}
	}

	for _, ev := range events {
		switch ev.kind {
		case evReturn:
			atExit()
		case evCall:
			if ev.fn == nil {
				continue
			}
			name := ev.fn.Name()
			switch {
			case isArenaMethod(ev.fn) && (arenaCacheWrites[name] || arenaStreamWrites[name]):
				lr, ok := writeLines(info, ev.fn, ev.call)
				pending = append(pending, pendingWrite{
					pos: ev.pos, name: name, recv: ev.recv, lines: lr, hasLines: ok,
				})
			case isArenaMethod(ev.fn) && arenaPersists[name]:
				if ev.deferred {
					deferredPersists = append(deferredPersists, ev)
				} else {
					applyPersist(ev)
				}
			case mayPersist(pass.Prog, ev.fn, nil):
				// A callee that persists is assumed to flush on our behalf
				// (interprocedural approximation: receiver-insensitive).
				pending = pending[:0]
			}
		}
	}
	atExit()
}

// mayPersist reports whether fn (transitively, through target-package
// bodies and the function literals they contain) can execute a persistent
// instruction: an Arena Persist/PersistStream/Fence or a Tx.Persist.
func mayPersist(prog *Program, fn *types.Func, seen map[*types.Func]bool) bool {
	if fn == nil {
		return false
	}
	if isArenaMethod(fn) {
		return arenaPersists[fn.Name()] || fn.Name() == "Fence"
	}
	if isTxMethod(fn) {
		return fn.Name() == "Persist"
	}
	decl, pkg := prog.BodyOf(fn)
	if decl == nil {
		return false
	}
	if seen == nil {
		seen = make(map[*types.Func]bool)
	}
	if seen[fn] || len(seen) > 64 {
		return false
	}
	seen[fn] = true
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeOf(pkg.Info, call); callee != nil && mayPersist(prog, callee, seen) {
				found = true
			}
		}
		return true
	})
	return found
}
