// Package atomicfield is the atomicfield golden fixture: fields that earn
// atomic status in one function (sync/atomic call on their address, method
// call on a declared atomic type) are seeded with plain accesses of every
// classified kind, next to the deliberate exemptions (composite-literal
// init, len/cap, index-only range, slice-header assignment, passing a
// *atomic.T around).
package atomicfield

import "sync/atomic"

type stats struct {
	hits  uint64          // atomic by address: &s.hits
	words []uint64        // atomic by element address: &s.words[i]
	seq   atomic.Uint64   // declared atomic value type
	fps   [4]atomic.Uint64
}

var global uint64 // package-level word, atomic by address

// atomicUses gives every field its atomic classification.
func atomicUses(s *stats) {
	atomic.AddUint64(&s.hits, 1)
	atomic.StoreUint64(&s.words[0], 7)
	s.seq.Add(1)
	s.fps[1].Store(2)
	atomic.AddUint64(&global, 1)
}

func plainReadWrite(s *stats) uint64 {
	s.hits = 0 // want `field atomicfield\.stats\.hits mixes atomic and plain access: plain write here`
	s.hits++   // want `field atomicfield\.stats\.hits mixes atomic and plain access: plain write here`
	return s.hits // want `field atomicfield\.stats\.hits mixes atomic and plain access: plain read here`
}

func plainElements(s *stats) uint64 {
	s.words[1] = 3 // want `field atomicfield\.stats\.words mixes atomic and plain access: plain element write here`
	return s.words[2] // want `field atomicfield\.stats\.words mixes atomic and plain access: plain element read here`
}

func aliasAndCopy(s *stats, dst []uint64) {
	_ = s.words[1:2] // want `field atomicfield\.stats\.words mixes atomic and plain access: aliasing slice of atomic words here`
	copy(dst, s.words) // want `field atomicfield\.stats\.words mixes atomic and plain access: bulk copy over atomic words here`
}

func sink(p *uint64) { _ = p }

func escapedAddresses(s *stats) {
	p := &s.fps[0] // want `field atomicfield\.stats\.fps mixes atomic and plain access: address of atomic word element taken here`
	_ = p
	sink(&s.words[2]) // want `field atomicfield\.stats\.words mixes atomic and plain access: address of atomic word element escapes to sink here`
}

func declaredAtomicPlain(s *stats) {
	_ = s.seq // want `field atomicfield\.stats\.seq mixes atomic and plain access: plain read \(value copy of atomic type\) here`
	s.seq = atomic.Uint64{} // want `field atomicfield\.stats\.seq mixes atomic and plain access: plain write here`
}

// arrayReset: assigning an ARRAY value rewrites its atomic elements — the
// slice-header exemption must not apply (regression for the slice/array
// distinction in classifyWrite).
func arrayReset(s *stats) {
	s.fps = [4]atomic.Uint64{} // want `field atomicfield\.stats\.fps mixes atomic and plain access: plain write here`
}

func packageLevel() uint64 {
	global = 9 // want `field atomicfield\.global mixes atomic and plain access: plain write here`
	return global // want `field atomicfield\.global mixes atomic and plain access: plain read here`
}

func rangeWithValue(s *stats) (sum uint64) {
	for _, w := range s.words { // want `field atomicfield\.stats\.words mixes atomic and plain access: plain element read \(range\) here`
		sum += w
	}
	return sum
}

// exemptPatterns must all stay silent: the object is unpublished, the
// access touches only the slice header, or the address flows into the
// sync/atomic method API.
func exemptPatterns(s *stats) {
	s2 := &stats{hits: 1, words: make([]uint64, 8)} // composite-literal init
	_ = s2
	_ = len(s.words)             // header only
	_ = cap(s.words)             // header only
	s.words = make([]uint64, 16) // slice-header assignment (grow)
	for i := range s.words {     // index-only range
		_ = i
	}
	var u *atomic.Uint64 = &s.seq // the method API takes *atomic.T
	u.Store(3)
}

// auditedRecovery: the escape hatch, with its audit comment.
func auditedRecovery(s *stats) {
	s.hits = 0 //rnvet:ignore atomicfield single-threaded recovery reset; no reader exists before the store is republished
}
