// Package htmregion is the htmsafe golden fixture: closures passed to
// htm.Region.Run with seeded aborts (flushes, blocking operations,
// allocation) next to the legal transactional patterns.
package htmregion

import (
	"fmt"

	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/sync2"
)

// flushInside is the canonical seeded bug: a cache-line flush inside a
// transaction always aborts it (§2.2).
func flushInside(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		tx.Store8(0, 1)
		tx.Persist(0, 8) // want `Tx.Persist inside HTM region: a cache-line flush always aborts`
	})
}

// directArena bypasses the transactional read/write sets.
func directArena(r *htm.Region, a *pmem.Arena) {
	r.Run(func(tx *htm.Tx) {
		a.Write8(0, 1)  // want `direct arena Write8 inside HTM region bypasses transactional buffering`
		a.Persist(0, 8) // want `arena Persist inside HTM region: flushes and fences guarantee a transaction abort`
	})
}

// blocking operations inside a transaction livelock or abort.
func blocking(r *htm.Region, ch chan int) {
	r.Run(func(tx *htm.Tx) {
		ch <- 1 // want `channel send inside HTM region blocks`
		<-ch    // want `channel receive inside HTM region blocks`
	})
}

func locking(r *htm.Region, mu *sync2.SpinLock) {
	r.Run(func(tx *htm.Tx) {
		mu.Lock() // want `sync2 Lock inside HTM region blocks`
		mu.Unlock()
	})
}

// alloc: heap allocation can trigger a GC cycle mid-transaction.
func alloc(r *htm.Region, n int) {
	r.Run(func(tx *htm.Tx) {
		_ = make([]byte, n) // want `make inside HTM region allocates`
	})
}

func spawn(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		go func() {}() // want `goroutine launch inside HTM region`
	})
}

// external: calls into unvetted packages may block or allocate.
func external(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		fmt.Sprint("x") // want `call into fmt inside HTM region may block or allocate`
	})
}

// namedBody: the pass follows a named function passed as the region body.
func namedBody(r *htm.Region) {
	r.Run(body)
}

func body(tx *htm.Tx) {
	tx.Persist(0, 8) // want `Tx.Persist inside HTM region: a cache-line flush always aborts`
}

// good is the legal pattern: only the transactional API, no allocation.
func good(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		v := tx.Load8(0)
		tx.Store8(8, v+1)
	})
}

// helperChain: the walk is transitive through target-package bodies; the
// diagnostic lands on the offending instruction inside the callee.
func helperChain(r *htm.Region, a *pmem.Arena) {
	r.Run(func(tx *htm.Tx) {
		deepFlush(a)
	})
}

func deepFlush(a *pmem.Arena) {
	a.Fence() // want `arena Fence inside HTM region: flushes and fences guarantee a transaction abort`
}
