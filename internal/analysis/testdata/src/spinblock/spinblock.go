// Package spinblock is the spinblock golden fixture: blocking operations
// seeded inside sync2 spin-lock critical sections (channel traffic, parking
// sync primitives, time.Sleep, I/O, and blocking hidden one call deep),
// next to the legal patterns — blocking after unlock, select with default,
// goroutine bodies, and nested spinning.
package spinblock

import (
	"os"
	"sync"
	"time"

	"rntree/internal/sync2"
)

func sendUnderLock(mu *sync2.SpinLock, ch chan int) {
	mu.Lock()
	ch <- 1 // want `channel send while sync2 spin lock mu is held`
	mu.Unlock()
}

func recvUnderLock(mu *sync2.SpinLock, ch chan int) int {
	mu.Lock()
	v := <-ch // want `channel receive while sync2 spin lock mu is held`
	mu.Unlock()
	return v
}

func selectUnderLock(mu *sync2.SpinLock, a, b chan int) {
	mu.Lock()
	select { // want `select without default while sync2 spin lock mu is held`
	case <-a:
	case <-b:
	}
	mu.Unlock()
}

// selectWithDefault polls — it never blocks, so no finding.
func selectWithDefault(mu *sync2.SpinLock, a chan int) {
	mu.Lock()
	select {
	case <-a:
	default:
	}
	mu.Unlock()
}

func rangeUnderLock(mu *sync2.SpinLock, ch chan int) (sum int) {
	mu.Lock()
	for v := range ch { // want `range over channel while sync2 spin lock mu is held`
		sum += v
	}
	mu.Unlock()
	return sum
}

func parkUnderLock(mu *sync2.SpinLock, m *sync.Mutex) {
	mu.Lock()
	m.Lock() // want `sync lock acquisition \(parks the goroutine\) while sync2 spin lock mu is held`
	m.Unlock()
	mu.Unlock()
}

func sleepUnderVersionLock(vl *sync2.VersionLock) {
	vl.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while sync2 spin lock vl is held`
	vl.Unlock()
}

func condWaitUnderLock(mu *sync2.SpinLock, c *sync.Cond) {
	mu.Lock()
	c.Wait() // want `sync\.Cond\.Wait while sync2 spin lock mu is held`
	mu.Unlock()
}

func ioUnderLock(mu *sync2.SpinLock) {
	mu.Lock()
	_, _ = os.ReadFile("/dev/null") // want `I/O call into os\.ReadFile while sync2 spin lock mu is held`
	mu.Unlock()
}

// viaCallee: the blocking operation hides one call deep; the finding names
// the callee and the underlying site.
func viaCallee(mu *sync2.SpinLock, ch chan int) {
	mu.Lock()
	notify(ch) // want `call to notify, which can block \(channel send at spinblock\.go:\d+\), while sync2 spin lock mu is held`
	mu.Unlock()
}

func notify(ch chan int) {
	ch <- 1
}

// earlyExit: the unlock-and-return branch must not release the lock for
// the fall-through path (regression for the branch-aware held set).
func earlyExit(mu *sync2.SpinLock, ch chan int, cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	ch <- 1 // want `channel send while sync2 spin lock mu is held`
	mu.Unlock()
}

// blockAfterUnlock is the paper's pattern: publish under the lock, hand off
// outside it.
func blockAfterUnlock(mu *sync2.SpinLock, ch chan int) {
	mu.Lock()
	mu.Unlock()
	ch <- 1
}

// goroutineBody: a spawned goroutine blocks on its own schedule, not while
// the caller's spin lock is held.
func goroutineBody(mu *sync2.SpinLock, ch chan int) {
	mu.Lock()
	go func() {
		ch <- 1
	}()
	mu.Unlock()
}

// nestedSpin: spinning is not blocking — nested sync2 acquisition is
// lockorder's concern, not spinblock's.
func nestedSpin(a, b *sync2.SpinLock) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

// auditedHandoff: the escape hatch, with its audit comment.
func auditedHandoff(mu *sync2.SpinLock, ch chan struct{}) {
	mu.Lock()
	ch <- struct{}{} //rnvet:ignore spinblock audited: the channel is buffered and drained by a dedicated engine, the send cannot park
	mu.Unlock()
}
