// Package annot is the annotation golden fixture, run under the FULL rnvet
// suite: it proves that //pmem:volatile, //htm:safe and //rnvet:ignore each
// suppress exactly their own pass — same-line, line-above and whole-function
// forms — and never anything else.
package annot

import (
	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/sync2"
)

// hook stands in for an unverifiable function value.
var hook func()

// volatileLine: same-line //pmem:volatile silences persistcheck.
func volatileLine(a *pmem.Arena) {
	a.Write8(0, 1) //pmem:volatile scratch bytes, never read back
}

// volatileAbove: full-line-comment form applies to the line below.
func volatileAbove(a *pmem.Arena) {
	//pmem:volatile scratch bytes, never read back
	a.Write8(0, 1)
}

// volatileFunc: the doc-comment form covers every write in the function.
//
//pmem:volatile scratch region, the caller persists the image
func volatileFunc(a *pmem.Arena) {
	a.Write8(0, 1)
	a.Zero(64, 64)
}

// wrongAnnotForWrite: an //htm:safe annotation must NOT hide a persistcheck
// finding.
func wrongAnnotForWrite(a *pmem.Arena) {
	a.Write8(0, 1) //htm:safe mismatched annotation // want `Write8 on a is not covered by a Persist/PersistStream before return`
}

// safeLine: same-line //htm:safe silences htmsafe.
func safeLine(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		hook() //htm:safe audited: hook is bound to a bounded, non-blocking helper
	})
}

// wrongAnnotForRegion: a //pmem:volatile annotation must NOT hide an
// htmsafe finding.
func wrongAnnotForRegion(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		hook() //pmem:volatile mismatched annotation // want `call through a function value inside HTM region cannot be verified`
	})
}

// ignoreLine: the generic form names the pass it silences.
func ignoreLine(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Persist(0, 8) //rnvet:ignore lockflush audited: this flush is the commit point
	mu.Unlock()
}

// ignoreWrongPass: naming a different pass leaves the finding alive.
func ignoreWrongPass(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Fence() //rnvet:ignore persistcheck mismatched annotation // want `arena Fence while sync2 lock mu is held`
	mu.Unlock()
}

// ignoreList: one comment can name several passes.
func ignoreList(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Write8(0, 1)  //rnvet:ignore persistcheck audited scratch write under lock
	a.Persist(0, 8) //rnvet:ignore lockflush,fencecheck audited commit flush
	mu.Unlock()
}

// safeFuncDoc: the doc-comment //htm:safe covers the whole audited body.
//
//htm:safe audited: bounded lookup table, no allocation or blocking
func safeFuncDoc(tx *htm.Tx) {
	hook()
}

func runsAudited(r *htm.Region) {
	r.Run(safeFuncDoc)
}

// suppressedOnlyOnce: the annotation on the first write does not leak to
// the second.
func suppressedOnlyOnce(a *pmem.Arena) {
	a.Write8(0, 1)   //pmem:volatile scratch bytes, never read back
	a.Write8(128, 2) // want `Write8 on a is not covered by a Persist/PersistStream before return`
}
