// Package annot is the annotation golden fixture, run under the FULL rnvet
// suite: it proves that //pmem:volatile, //htm:safe and //rnvet:ignore each
// suppress exactly their own pass — same-line, line-above and whole-function
// forms — and never anything else.
package annot

import (
	"sync"
	"sync/atomic"

	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/sync2"
)

// hook stands in for an unverifiable function value.
var hook func()

// volatileLine: same-line //pmem:volatile silences persistcheck.
func volatileLine(a *pmem.Arena) {
	a.Write8(0, 1) //pmem:volatile scratch bytes, never read back
}

// volatileAbove: full-line-comment form applies to the line below.
func volatileAbove(a *pmem.Arena) {
	//pmem:volatile scratch bytes, never read back
	a.Write8(0, 1)
}

// volatileFunc: the doc-comment form covers every write in the function.
//
//pmem:volatile scratch region, the caller persists the image
func volatileFunc(a *pmem.Arena) {
	a.Write8(0, 1)
	a.Zero(64, 64)
}

// wrongAnnotForWrite: an //htm:safe annotation must NOT hide a persistcheck
// finding.
func wrongAnnotForWrite(a *pmem.Arena) {
	a.Write8(0, 1) //htm:safe mismatched annotation // want `Write8 on a is not covered by a Persist/PersistStream before return`
}

// safeLine: same-line //htm:safe silences htmsafe.
func safeLine(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		hook() //htm:safe audited: hook is bound to a bounded, non-blocking helper
	})
}

// wrongAnnotForRegion: a //pmem:volatile annotation must NOT hide an
// htmsafe finding.
func wrongAnnotForRegion(r *htm.Region) {
	r.Run(func(tx *htm.Tx) {
		hook() //pmem:volatile mismatched annotation // want `call through a function value inside HTM region cannot be verified`
	})
}

// ignoreLine: the generic form names the pass it silences.
func ignoreLine(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Persist(0, 8) //rnvet:ignore lockflush audited: this flush is the commit point
	mu.Unlock()
}

// ignoreWrongPass: naming a different pass leaves the finding alive.
func ignoreWrongPass(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Fence() //rnvet:ignore persistcheck mismatched annotation // want `arena Fence while sync2 lock mu is held`
	mu.Unlock()
}

// ignoreList: one comment can name several passes.
func ignoreList(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Write8(0, 1)  //rnvet:ignore persistcheck audited scratch write under lock
	a.Persist(0, 8) //rnvet:ignore lockflush,fencecheck audited commit flush
	mu.Unlock()
}

// safeFuncDoc: the doc-comment //htm:safe covers the whole audited body.
//
//htm:safe audited: bounded lookup table, no allocation or blocking
func safeFuncDoc(tx *htm.Tx) {
	hook()
}

func runsAudited(r *htm.Region) {
	r.Run(safeFuncDoc)
}

// suppressedOnlyOnce: the annotation on the first write does not leak to
// the second.
func suppressedOnlyOnce(a *pmem.Arena) {
	a.Write8(0, 1)   //pmem:volatile scratch bytes, never read back
	a.Write8(128, 2) // want `Write8 on a is not covered by a Persist/PersistStream before return`
}

// --- v2 passes: the same scoping rules hold for atomicfield, lockorder
// and spinblock, and each annotation still suppresses only its own pass.

// counter earns atomic status through bump.
type counter struct{ n uint64 }

func bump(c *counter) {
	atomic.AddUint64(&c.n, 1)
}

// ignoreAtomicLine: same-line //rnvet:ignore atomicfield silences the pass.
func ignoreAtomicLine(c *counter) {
	c.n = 0 //rnvet:ignore atomicfield audited single-threaded reset
}

// ignoreAtomicWrongPass: a lockflush annotation must NOT hide an
// atomicfield finding.
func ignoreAtomicWrongPass(c *counter) uint64 {
	return c.n //rnvet:ignore lockflush mismatched annotation // want `field annot\.counter\.n mixes atomic and plain access: plain read here`
}

// ignoreSpinLine: same-line //rnvet:ignore spinblock silences the pass.
func ignoreSpinLine(mu *sync2.SpinLock, ch chan int) {
	mu.Lock()
	ch <- 1 //rnvet:ignore spinblock audited: buffered hand-off, never parks
	mu.Unlock()
}

// ignoreSpinWrongPass: an atomicfield annotation must NOT hide a spinblock
// finding.
func ignoreSpinWrongPass(mu *sync2.SpinLock, ch chan int) {
	mu.Lock()
	ch <- 1 //rnvet:ignore atomicfield mismatched annotation // want `channel send while sync2 spin lock mu is held`
	mu.Unlock()
}

// spinFuncDoc: the doc-comment form covers the whole audited body for the
// new passes too.
//
//rnvet:ignore spinblock audited: both sends are buffered hand-offs
func spinFuncDoc(mu *sync2.SpinLock, ch chan int) {
	mu.Lock()
	ch <- 1
	ch <- 2
	mu.Unlock()
}

// ignoreLockOrderLine: hand-over-hand locking, audited.
type link struct {
	mu   sync2.SpinLock
	next *link
}

func ignoreLockOrderLine(l *link) {
	l.mu.Lock()
	l.next.mu.Lock() //rnvet:ignore lockorder audited: links are locked strictly head-to-tail
	l.next.mu.Unlock()
	l.mu.Unlock()
}

// ignoreLockOrderWrongPass: a spinblock annotation must NOT hide the
// lockorder self-edge finding.
type chain struct {
	mu   sync2.SpinLock
	next *chain
}

func ignoreLockOrderWrongPass(c *chain) {
	c.mu.Lock()
	c.next.mu.Lock() //rnvet:ignore spinblock mismatched annotation // want `annot\.chain\.mu acquired while another instance of annot\.chain\.mu is held`
	c.next.mu.Unlock()
	c.mu.Unlock()
}

// crossPassPair: one site can trip TWO of the new passes at once — parking
// on a sync.Mutex while a spin lock is held (spinblock) on an acquisition
// that also closes a lock-order cycle (lockorder). One comment naming both
// passes covers the site; the reverse edge in parkThenSpin names neither
// and stays reported.
type gate struct{ spin sync2.SpinLock }
type door struct{ m sync.Mutex }

func spinThenPark(g *gate, d *door) {
	g.spin.Lock()
	d.m.Lock() //rnvet:ignore lockorder,spinblock audited: d.m is uncontended in this path and the documented order is spin-then-park
	d.m.Unlock()
	g.spin.Unlock()
}

func parkThenSpin(g *gate, d *door) {
	d.m.Lock()
	g.spin.Lock() // want `acquiring annot\.gate\.spin while annot\.door\.m is held closes the cycle`
	g.spin.Unlock()
	d.m.Unlock()
}
