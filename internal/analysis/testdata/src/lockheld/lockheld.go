// Package lockheld is the lockflush golden fixture: persistent
// instructions seeded inside sync2 critical sections next to the legal
// flush-outside-lock patterns (§4.2).
package lockheld

import (
	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/sync2"
)

// persistUnderLock is the canonical seeded bug: every waiter on mu is
// serialized behind the NVM flush.
func persistUnderLock(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Write8(0, 1)
	a.Persist(0, 8) // want `arena Persist while sync2 lock mu is held`
	mu.Unlock()
}

func fenceUnderVersionLock(a *pmem.Arena, vl *sync2.VersionLock) {
	vl.Lock()
	a.Fence() // want `arena Fence while sync2 lock vl is held`
	vl.Unlock()
}

// persistAfterUnlock is the paper's pattern: mutate and publish under the
// lock, flush after releasing it.
func persistAfterUnlock(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	a.Write8(0, 1)
	mu.Unlock()
	a.Persist(0, 8)
}

// earlyExit: the unlock-and-return branch must not release the lock for
// the fall-through path (regression for the branch-aware walk).
func earlyExit(a *pmem.Arena, mu *sync2.SpinLock, cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	a.Persist(0, 8) // want `arena Persist while sync2 lock mu is held`
	mu.Unlock()
}

// viaCallee: the flush hides one call deep.
func viaCallee(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	helper(a) // want `call to helper, which can persist, while sync2 lock mu is held`
	mu.Unlock()
}

func helper(a *pmem.Arena) {
	a.Write8(0, 1)
	a.Persist(0, 8)
}

// deferredUnlock holds mu until return, so the fence runs under it.
func deferredUnlock(a *pmem.Arena, mu *sync2.SpinLock) {
	mu.Lock()
	defer mu.Unlock()
	a.Fence() // want `arena Fence while sync2 lock mu is held`
}

// regionClosure: a persist smuggled into an HTM body started under a lock.
func regionClosure(r *htm.Region, mu *sync2.SpinLock) {
	mu.Lock()
	r.Run(func(tx *htm.Tx) { tx.Persist(0, 8) }) // want `call to Run, which can persist, while sync2 lock mu is held`
	mu.Unlock()
}

// cleanRegion: a flush-free HTM body under a lock is legal (the critical
// section itself may use the transactional API).
func cleanRegion(r *htm.Region, mu *sync2.SpinLock) {
	mu.Lock()
	r.Run(func(tx *htm.Tx) { tx.Store8(0, 1) })
	mu.Unlock()
}
