// Package undolog is the undolog golden fixture: seeded violations of the
// heap allocator's undo-window discipline next to the legal patterns the
// pass must not flag.
package undolog

import "rntree/internal/pmem"

// wellFormed is the canonical multi-word metadata update: open a window
// over the words, mutate them, commit.
func wellFormed(h *pmem.Heap, a, b uint64) {
	h.UndoBegin(a, b)
	h.MetaWrite8(a, 1)
	h.MetaWrite8(b, 2)
	h.UndoCommit()
}

// flipExempt: single-word updates are atomic and need no window.
func flipExempt(h *pmem.Heap, a uint64) {
	h.MetaFlip8(a, 1)
}

// naked is the seeded bug: a metadata write with no window means a crash
// here leaves the multi-word update half-applied.
func naked(h *pmem.Heap, a uint64) {
	h.MetaWrite8(a, 1) // want `MetaWrite8 on h outside an undo window`
}

// afterCommit: the window is already closed when the second write runs.
func afterCommit(h *pmem.Heap, a, b uint64) {
	h.UndoBegin(a)
	h.MetaWrite8(a, 1)
	h.UndoCommit()
	h.MetaWrite8(b, 2) // want `MetaWrite8 on h outside an undo window`
}

// leaked: the window escapes the function still armed — an unrelated later
// crash would roll these words back.
func leaked(h *pmem.Heap, a uint64) {
	h.UndoBegin(a) // want `UndoBegin on h is not closed by an UndoCommit before return`
	h.MetaWrite8(a, 1)
}

// leakedEarlyReturn: the fall-through path commits, but the early return
// leaks the armed window.
func leakedEarlyReturn(h *pmem.Heap, a uint64, cond bool) {
	h.UndoBegin(a) // want `UndoBegin on h is not closed by an UndoCommit before return`
	h.MetaWrite8(a, 1)
	if cond {
		return
	}
	h.UndoCommit()
}

// unmatched disarms a window this function never opened.
func unmatched(h *pmem.Heap) {
	h.UndoCommit() // want `UndoCommit on h without a matching UndoBegin`
}

// nested: the heap has a single undo window; re-arming discards the open one.
func nested(h *pmem.Heap, a, b uint64) {
	h.UndoBegin(a)
	h.UndoBegin(b) // want `nested UndoBegin on h`
	h.MetaWrite8(a, 1)
	h.UndoCommit()
}

// deferredCommit is legal: the deferred commit closes the window at return.
func deferredCommit(h *pmem.Heap, a uint64) {
	h.UndoBegin(a)
	defer h.UndoCommit()
	h.MetaWrite8(a, 1)
}

// twoArenas: windows are tracked per arena — b's write is outside b's
// window even though a's is open.
func twoArenas(a, b *pmem.Heap, w uint64) {
	a.UndoBegin(w)
	b.MetaWrite8(w, 1) // want `MetaWrite8 on b outside an undo window`
	a.MetaWrite8(w, 1)
	a.UndoCommit()
}

// audited: the escape hatch suppresses exactly this pass.
func audited(h *pmem.Heap, a uint64) {
	//rnvet:ignore undolog recovery-only code path, window re-armed by design
	h.MetaWrite8(a, 1)
}
