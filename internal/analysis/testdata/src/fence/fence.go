// Package fence is the fencecheck golden fixture: redundant fences and
// unfenced commit flushes seeded next to the legal ordering patterns.
package fence

import "rntree/internal/pmem"

// redundant: the second fence has nothing unordered to order.
func redundant(a *pmem.Arena) {
	a.Fence()
	a.Fence() // want `redundant fence on a`
}

// evictNoFence is the seeded unfenced-commit bug: the evicted line reaches
// NVM with no ordering guarantee.
func evictNoFence(a *pmem.Arena) {
	a.EvictLine(0) // want `EvictLine on a is never fenced before return`
}

// evictFenced is the legal commit pattern: evict, then order it.
func evictFenced(a *pmem.Arena) {
	a.EvictLine(0)
	a.Fence()
}

// orderedStream: a fence with a streamed store outstanding is never
// redundant.
func orderedStream(a *pmem.Arena, b []byte) {
	a.Fence()
	a.WriteStream(0, b)
	a.Fence()
}

// doubleAfterStream: the first fence orders the stream; the second is pure
// cost.
func doubleAfterStream(a *pmem.Arena, b []byte) {
	a.WriteStream(0, b)
	a.Fence()
	a.Fence() // want `redundant fence on a`
}

// persistCovers: Persist is fence-bearing, so it settles an earlier evict.
func persistCovers(a *pmem.Arena) {
	a.EvictLine(0)
	a.Persist(64, 8)
}
