// Package lockorder is the lockorder golden fixture: two functions acquire
// the same pair of locks in opposite orders (the classic AB/BA deadlock),
// a call-summary edge contradicts a declared //rnvet:lockorder hierarchy,
// hand-over-hand locking trips the self-edge finding, and contradictory
// directives report against each other.
package lockorder

import (
	"sync"

	"rntree/internal/sync2"
)

type accounts struct{ mu sync.Mutex }
type ledger struct{ mu sync.Mutex }

// lockAB and lockBA close the classic cycle; each out-of-order acquisition
// reports at its own site.
func lockAB(a *accounts, l *ledger) {
	a.mu.Lock()
	l.mu.Lock() // want `acquiring lockorder\.ledger\.mu while lockorder\.accounts\.mu is held closes the cycle .* potential deadlock`
	l.mu.Unlock()
	a.mu.Unlock()
}

func lockBA(a *accounts, l *ledger) {
	l.mu.Lock()
	a.mu.Lock() // want `acquiring lockorder\.accounts\.mu while lockorder\.ledger\.mu is held closes the cycle .* potential deadlock`
	a.mu.Unlock()
	l.mu.Unlock()
}

// The declared hierarchy says the drain lock is acquired before the pool
// lock; outerThenInner violates it through a call summary, so the observed
// edge closes a cycle against the declared edge.
//
//rnvet:lockorder lockorder.drain.mu<lockorder.pool.mu
type pool struct{ mu sync2.SpinLock }
type drain struct{ mu sync2.SpinLock }

func lockDrain(d *drain) {
	d.mu.Lock()
	d.mu.Unlock()
}

func outerThenInner(p *pool, d *drain) {
	p.mu.Lock()
	lockDrain(d) // want `acquiring lockorder\.drain\.mu while lockorder\.pool\.mu is held \(acquired inside call to lockDrain\) closes the cycle`
	p.mu.Unlock()
}

// node: hand-over-hand traversal acquires a second instance of the same
// lock field — safe only under a documented instance order, so it is
// flagged for an audited annotation.
type node struct {
	mu   sync.Mutex
	next *node
}

func handOverHand(n *node) {
	n.mu.Lock()
	n.next.mu.Lock() // want `lockorder\.node\.mu acquired while another instance of lockorder\.node\.mu is held — instance order is unverified`
	n.next.mu.Unlock()
	n.mu.Unlock()
}

// node2: the same shape with the audited escape stays silent.
type node2 struct {
	mu   sync.Mutex
	next *node2
}

func handOverHandAudited(n *node2) {
	n.mu.Lock()
	n.next.mu.Lock() //rnvet:ignore lockorder audited: list links are acquired strictly head-to-tail and never reversed
	n.next.mu.Unlock()
	n.mu.Unlock()
}

// Contradictory directives report against each other even with no code
// acquiring either lock.
var alpha sync.Mutex
var beta sync.Mutex

//rnvet:lockorder lockorder.alpha<lockorder.beta the forward declaration // want `contradictory //rnvet:lockorder directives: lockorder\.alpha<lockorder\.beta conflicts with the declared order lockorder\.beta -> lockorder\.alpha`
//rnvet:lockorder lockorder.beta<lockorder.alpha the contradiction // want `contradictory //rnvet:lockorder directives: lockorder\.beta<lockorder\.alpha conflicts with the declared order lockorder\.alpha -> lockorder\.beta`

// wellOrdered matches its declaration and stays silent.
//
//rnvet:lockorder lockorder.registry.mu<lockorder.entry.mu
type registry struct{ mu sync.Mutex }
type entry struct{ mu sync.Mutex }

func wellOrdered(r *registry, e *entry) {
	r.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	r.mu.Unlock()
}

// goroutineExcluded: an acquisition inside a go statement does not run
// under the caller's lock, so no edge (and no cycle) is recorded even
// though the textual order is reversed.
func goroutineExcluded(r *registry, e *entry) {
	e.mu.Lock()
	go func() {
		r.mu.Lock()
		r.mu.Unlock()
	}()
	e.mu.Unlock()
}
