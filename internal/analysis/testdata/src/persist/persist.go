// Package persist is the persistcheck golden fixture: seeded
// missing-persist bugs next to the legal patterns the pass must not flag.
package persist

import "rntree/internal/pmem"

// missing is the canonical seeded bug: a durable store with no flush.
func missing(a *pmem.Arena) {
	a.Write8(0, 1) // want `Write8 on a is not covered by a Persist/PersistStream before return`
}

// covered is the legal pattern: write, then persist the covering range.
func covered(a *pmem.Arena) {
	a.Write8(0, 1)
	a.Persist(0, 8)
}

// partial persists one line but leaves the write to another line exposed —
// the constant-offset coverage check must see through the shared receiver.
func partial(a *pmem.Arena) {
	a.Write8(0, 1)
	a.Write8(128, 2) // want `Write8 on a is not covered by a Persist/PersistStream before return`
	a.Persist(0, 8)
}

// earlyReturn leaks the write through the return inside the branch even
// though the fall-through path persists it.
func earlyReturn(a *pmem.Arena, cond bool) {
	a.Write8(64, 7) // want `Write8 on a is not covered by a Persist/PersistStream before return`
	if cond {
		return
	}
	a.Persist(64, 8)
}

// streamMissing: streamed (write-through) stores still need their fence.
func streamMissing(a *pmem.Arena, b []byte) {
	a.WriteStream(0, b) // want `WriteStream on a is not covered by a Persist/PersistStream before return`
}

// streamCovered is the legal streaming pattern: stream, then one ranged
// PersistStream fence over the span.
func streamCovered(a *pmem.Arena, b []byte) {
	a.WriteStream(0, b)
	a.Write8Stream(uint64(len(b)), 1)
	a.PersistStream(0, uint64(len(b))+8)
}

// deferredPersist runs its flush at return; the write is covered.
func deferredPersist(a *pmem.Arena) {
	defer a.Persist(0, 8)
	a.Write8(0, 1)
}

// viaHelper delegates the flush to a callee that provably persists.
func viaHelper(a *pmem.Arena) {
	a.Write8(0, 1)
	flushAll(a)
}

func flushAll(a *pmem.Arena) {
	a.Persist(0, 8)
}

// zeroMissing: Zero is a mutation like any other.
func zeroMissing(a *pmem.Arena) {
	a.Zero(256, 64) // want `Zero on a is not covered by a Persist/PersistStream before return`
}
