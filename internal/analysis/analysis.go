// Package analysis is a self-contained static-analysis framework plus the
// rnvet pass suite that machine-checks the repository's NVM-persistence and
// HTM-safety invariants:
//
//   - persistcheck: every pmem.Arena mutation on a durable path must be
//     followed by a Persist/PersistStream covering it before the enclosing
//     function returns (durable linearizability, §4.2 of the paper).
//   - htmsafe: closures passed to htm.Region.Run/RunOutcome must not flush,
//     fence, block or allocate — any of those guarantees an abort on real
//     RTM hardware (§2.2).
//   - lockflush: no persist or fence may execute while a sync2 spin lock or
//     node metadata (version) lock is held — the paper's flush-outside-lock
//     rule ("overlapping persistency and concurrency", §4.2).
//   - fencecheck: no redundant fences (a fence with nothing unordered to
//     order) and no unfenced commit flushes (an EvictLine that is never
//     followed by an ordering fence).
//   - undolog: multi-word allocator-metadata updates (MetaWrite8) stay
//     inside a matched UndoBegin/UndoCommit window, so a crash anywhere
//     rolls the heap's metadata back to a consistent state (DESIGN.md §14).
//   - atomicfield: a struct field or package-level word accessed through
//     sync/atomic anywhere in the program must never also be read or
//     written plainly — mixed access on the packed protocol words (version
//     locks, repl epoch word, fingerprint words, stats counters) is a data
//     race the scheduler may never surface.
//   - lockorder: the whole-program lock-acquisition graph over named lock
//     fields (sync2 spin/version locks, sync.Mutex/RWMutex) must stay
//     acyclic; //rnvet:lockorder directives declare the intended hierarchy
//     and are machine-checked against the observed edges.
//   - spinblock: no operation that can park or indefinitely delay the
//     goroutine (channel traffic, sync parking, time.Sleep, I/O) may be
//     reachable while a sync2 spin lock is held — a blocked holder turns
//     every spinning waiter into a burning CPU.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic, golden tests driven by "// want" comments)
// but is built only on the standard library: packages are enumerated with
// `go list -json` and type-checked from source with go/types, using the
// compiler's "source" importer for out-of-module dependencies. See
// DESIGN.md §11 for each pass's invariant and its known approximations.
//
// # Annotation grammar
//
// A diagnostic can be suppressed by an audited annotation comment:
//
//	//pmem:volatile [justification]   — suppresses persistcheck
//	//htm:safe [justification]        — suppresses htmsafe
//	//rnvet:ignore pass[,pass] [why]  — suppresses exactly the named passes
//
// A second directive family DECLARES an invariant instead of suppressing a
// finding: //rnvet:lockorder a<b[<c...] states the intended lock hierarchy
// (a is acquired before b). Declared edges join the observed acquisition
// graph, so a directive both documents the order and turns any code path
// that contradicts it into a lockorder finding (see lockorder.go).
//
// An annotation applies to the source line it sits on, to the line directly
// below it (full-line comment form), or — when written in a function's doc
// comment or on the func declaration line — to the whole function. Each
// annotation suppresses only its own pass: //pmem:volatile never hides an
// htmsafe or lockflush finding, and vice versa.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in //rnvet:ignore lists.
	Name string
	// Doc is a one-paragraph description of the invariant the pass encodes.
	Doc string
	// Run analyzes one package of the loaded program and reports findings
	// through the pass.
	Run func(*Pass)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Pass    string
	Message string
}

// A Pass carries one analyzer's view of one target package plus the whole
// loaded program (for interprocedural summaries).
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Prog.suppressed(p.Analyzer.Name, pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     pos,
		Pass:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over every package of prog and returns the
// surviving (non-suppressed, de-duplicated) diagnostics in position order.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			if !pkg.Analyze {
				continue // loaded only to keep the type universe whole
			}
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	// Interprocedural passes can reach the same offending site from several
	// target packages; keep one copy of each finding.
	seen := make(map[string]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s|%v|%s", d.Pass, d.Pos, d.Message)
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := prog.Fset.Position(out[i].Pos), prog.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// All returns the full rnvet suite in its canonical order.
func All() []*Analyzer {
	return []*Analyzer{PersistCheck, HTMSafe, LockFlush, FenceCheck, UndoLog, AtomicField, LockOrder, SpinBlock}
}

// ByName resolves a comma-separated pass list ("persistcheck,htmsafe").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown pass %q", n)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty pass list")
	}
	return out, nil
}

// annotation directive parsing ---------------------------------------------

// noteEntry is one parsed annotation: the pass it suppresses and whether
// the comment leads its source line.
type noteEntry struct {
	pass    string
	leading bool
}

// directivePasses maps one comment's text to the set of pass names it
// suppresses (nil if the comment is not an rnvet annotation).
func directivePasses(text string) []string {
	switch {
	case strings.HasPrefix(text, "//pmem:volatile"):
		return []string{"persistcheck"}
	case strings.HasPrefix(text, "//htm:safe"):
		return []string{"htmsafe"}
	case strings.HasPrefix(text, "//rnvet:ignore"):
		rest := strings.TrimPrefix(text, "//rnvet:ignore")
		rest = strings.TrimSpace(rest)
		// The pass list is the first whitespace-separated field; anything
		// after it is the justification.
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			rest = rest[:i]
		}
		if rest == "" {
			return nil
		}
		var passes []string
		for _, p := range strings.Split(rest, ",") {
			if p = strings.TrimSpace(p); p != "" {
				passes = append(passes, p)
			}
		}
		return passes
	}
	return nil
}

// suppressed reports whether pass's diagnostic at pos is covered by an
// annotation: on the same line, on a full-line comment directly above, or
// on the enclosing function declaration. A trailing annotation applies only
// to its own line — it never leaks to the line below.
func (prog *Program) suppressed(pass string, pos token.Pos) bool {
	position := prog.Fset.Position(pos)
	lines := prog.notes[position.Filename]
	if lines != nil {
		for _, n := range lines[position.Line] {
			if n.pass == pass {
				return true
			}
		}
		for _, n := range lines[position.Line-1] {
			if n.pass == pass && n.leading {
				return true
			}
		}
	}
	if decl := prog.enclosingFunc(pos); decl != nil {
		declLine := prog.Fset.Position(decl.Pos()).Line
		for _, n := range lines[declLine] {
			if n.pass == pass {
				return true
			}
		}
		if decl.Doc != nil {
			for _, c := range decl.Doc.List {
				for _, p := range directivePasses(c.Text) {
					if p == pass {
						return true
					}
				}
			}
		}
	}
	return false
}

// collectNotes indexes every annotation comment of a file by line number,
// recording whether the comment leads its line (nothing but whitespace
// before it) — only leading annotations cover the line below. It also
// gathers the //rnvet:lockorder hierarchy declarations (lockorder.go).
func (prog *Program) collectNotes(f *ast.File, src []byte) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if decls, ok := parseLockOrder(c.Text, c.Pos()); ok {
				prog.lockOrders = append(prog.lockOrders, decls...)
				continue
			}
			passes := directivePasses(c.Text)
			if passes == nil {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			leading := true
			for off := pos.Offset - pos.Column + 1; off < pos.Offset && off < len(src); off++ {
				if src[off] != ' ' && src[off] != '\t' {
					leading = false
					break
				}
			}
			m := prog.notes[pos.Filename]
			if m == nil {
				m = make(map[int][]noteEntry)
				prog.notes[pos.Filename] = m
			}
			for _, p := range passes {
				m[pos.Line] = append(m[pos.Line], noteEntry{pass: p, leading: leading})
			}
		}
	}
}

// enclosingFunc finds the function declaration spanning pos, if any.
func (prog *Program) enclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			if f.FileStart <= pos && pos < f.FileEnd {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
						return fd
					}
				}
				return nil
			}
		}
	}
	return nil
}

// FuncOf returns the declared *types.Func for a FuncDecl in pkg.
func (pkg *Package) FuncOf(decl *ast.FuncDecl) *types.Func {
	if obj, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}
