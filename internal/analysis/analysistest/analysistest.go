// Package analysistest runs rnvet analyzers over fixture packages and
// checks their diagnostics against expectations written in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	a.Write8(0, 1) // want `Write8 on a is not covered`
//
// A want comment holds one or more patterns, each double- or back-quoted;
// every pattern must be matched by exactly one diagnostic reported on that
// line, and every diagnostic must be claimed by a pattern. Patterns are
// regular expressions matched against the diagnostic message.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rntree/internal/analysis"
)

// wantPatterns extracts the quoted patterns of one want comment.
var wantPatterns = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

// Run loads the single fixture package rooted at dir, executes the given
// analyzers over it, and reports any mismatch between the diagnostics and
// the fixture's want comments as test errors.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "want ")
					if i < 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range wantPatterns.FindAllString(c.Text[i+len("want "):], -1) {
						pat := q
						if q[0] == '"' {
							if pat, err = strconv.Unquote(q); err != nil {
								t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
							}
						} else {
							pat = strings.Trim(q, "`")
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{
							file: pos.Filename, line: pos.Line, pattern: pat, re: re,
						})
					}
				}
			}
		}
	}

	for _, d := range analysis.Run(prog, analyzers) {
		pos := prog.Fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", pos, d.Pass, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}
