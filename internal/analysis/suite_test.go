package analysis_test

import (
	"path/filepath"
	"testing"

	"rntree/internal/analysis"
	"rntree/internal/analysis/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestPersistCheck(t *testing.T) {
	analysistest.Run(t, fixture("persist"), analysis.PersistCheck)
}

func TestHTMSafe(t *testing.T) {
	analysistest.Run(t, fixture("htmregion"), analysis.HTMSafe)
}

func TestLockFlush(t *testing.T) {
	analysistest.Run(t, fixture("lockheld"), analysis.LockFlush)
}

func TestFenceCheck(t *testing.T) {
	analysistest.Run(t, fixture("fence"), analysis.FenceCheck)
}

func TestUndoLog(t *testing.T) {
	analysistest.Run(t, fixture("undolog"), analysis.UndoLog)
}

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, fixture("atomicfield"), analysis.AtomicField)
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, fixture("lockorder"), analysis.LockOrder)
}

func TestSpinBlock(t *testing.T) {
	analysistest.Run(t, fixture("spinblock"), analysis.SpinBlock)
}

// TestAnnotations runs the FULL suite over the annotation fixture: each
// escape hatch must suppress exactly its own diagnostic and nothing else.
func TestAnnotations(t *testing.T) {
	analysistest.Run(t, fixture("annot"), analysis.All()...)
}

// TestTreeClean is the regression lock on the real tree: the violations
// rnvet surfaced in this repository were fixed (undoPool.acquire's head
// flush in v1, and in v2 its slot allocation and image persist, moved out
// of the spin lock) or annotated with audited exemptions, and the full
// suite — including atomicfield, lockorder and spinblock — must stay clean
// over every production package. The declared //rnvet:lockorder hierarchy
// is checked against the observed acquisition graph as part of this run.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short runs")
	}
	prog, err := analysis.Load("", []string{"rntree/..."})
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range analysis.Run(prog, analysis.All()) {
		t.Errorf("%s: [%s] %s", prog.Fset.Position(d.Pos), d.Pass, d.Message)
	}
}

func TestByName(t *testing.T) {
	got, err := analysis.ByName("persistcheck, lockflush")
	if err != nil || len(got) != 2 || got[0].Name != "persistcheck" || got[1].Name != "lockflush" {
		t.Fatalf("ByName: got %v, %v", got, err)
	}
	if _, err := analysis.ByName("nosuchpass"); err == nil {
		t.Fatalf("ByName accepted an unknown pass")
	}
	if _, err := analysis.ByName(""); err == nil {
		t.Fatalf("ByName accepted an empty list")
	}
}
