package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockFlush is the paper's "overlapping persistency and concurrency" claim
// stated as a lint (§4.2): persistent instructions are one to two orders of
// magnitude slower than the loads/stores around them, so a flush or fence
// executed while a sync2 spin lock or node metadata (version) lock is held
// serializes every waiter behind NVM latency. The pass flags any Arena
// Persist/PersistStream/Fence — direct, or reachable through a called
// function — between a sync2 Lock() and its Unlock() in the same function.
//
// The walk is branch-aware: an Unlock on an early-exit path (unlock-and-
// return, unlock-and-continue) does not release the lock for the code after
// the branch, so commit-point persists under the surviving lock are still
// seen. Audited exceptions — the one-line commit flush that §4.2 step 4
// requires under the leaf lock, and the split path (Algorithm 3 runs under
// the leaf lock) — carry //rnvet:ignore lockflush.
var LockFlush = &Analyzer{
	Name: "lockflush",
	Doc:  "no persist or fence may run while a sync2 lock is held",
	Run:  runLockFlush,
}

type heldLock struct {
	recv string
	pos  token.Pos
}

func runLockFlush(pass *Pass) {
	if pass.Pkg.Path == sync2Path {
		return // the lock implementation itself is out of scope
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFlushBody(pass, fd.Body)
		}
	}
}

// lockWalker carries the per-body state of the branch-aware walk. Function
// literals encountered along the way are queued and analyzed afterwards
// with an empty lock set: a closure may run on another goroutine or after
// the enclosing critical section ends, so it gets its own scope.
type lockWalker struct {
	pass     *Pass
	closures []*ast.FuncLit
}

func checkLockFlushBody(pass *Pass, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass}
	w.walkStmts(body.List, nil)
	for i := 0; i < len(w.closures); i++ { // closures may queue more closures
		w.walkStmts(w.closures[i].Body.List, nil)
	}
}

// walkStmts walks one straight-line statement list, threading the set of
// held sync2 locks through it. It returns the lock set at fall-through and
// whether every path through the list terminates (return / branch).
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range stmts {
		var term bool
		held, term = w.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *lockWalker) walkStmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scanCalls(s.Cond, held)
		thenHeld, thenTerm := w.walkStmts(s.Body.List, cloneLocks(held))
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.walkStmt(s.Else, cloneLocks(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return unionLocks(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scanCalls(s.Cond, held)
		w.walkStmts(s.Body.List, cloneLocks(held))
		if s.Post != nil {
			w.walkStmt(s.Post, cloneLocks(held))
		}
		return held, false // loop-carried lock state is approximated by entry state
	case *ast.RangeStmt:
		held = w.scanCalls(s.X, held)
		w.walkStmts(s.Body.List, cloneLocks(held))
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scanCalls(s.Tag, held)
		return w.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		return w.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		return w.walkClauses(s.Body, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scanCalls(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto end this straight-line path; the target path
		// re-enters with the state computed at its own walk.
		return held, true
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the source
		// text (it runs at return). Other deferred calls are scanned: a
		// deferred persist registered under a lock is suspect enough to flag.
		if fn := calleeOf(w.pass.Pkg.Info, s.Call); fn != nil && isSync2Unlock(fn) {
			return held, false
		}
		return w.scanCalls(s.Call, held), false
	case *ast.GoStmt:
		// The goroutine body runs outside this critical section; its FuncLit
		// (if any) is queued for a fresh-scope walk.
		ast.Inspect(s.Call, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.closures = append(w.closures, lit)
				return false
			}
			return true
		})
		return held, false
	case *ast.ExprStmt:
		return w.scanCalls(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scanCalls(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scanCalls(e, held)
		}
		return held, false
	case *ast.IncDecStmt:
		return w.scanCalls(s.X, held), false
	case *ast.SendStmt:
		held = w.scanCalls(s.Chan, held)
		return w.scanCalls(s.Value, held), false
	case *ast.DeclStmt:
		return w.scanCalls(s, held), false
	default:
		return held, false
	}
}

// walkClauses handles the case/comm clause bodies of a switch or select.
func (w *lockWalker) walkClauses(body *ast.BlockStmt, held []heldLock) ([]heldLock, bool) {
	after := held // no default clause ⇒ fall-through with entry state
	hasDefault := false
	allTerm := true
	sawClause := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				held = w.scanCalls(e, held)
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		default:
			continue
		}
		sawClause = true
		h, term := w.walkStmts(stmts, cloneLocks(held))
		if !term {
			allTerm = false
			after = unionLocks(after, h)
		}
	}
	if sawClause && hasDefault && allTerm {
		return held, true
	}
	return after, false
}

// scanCalls inspects one expression (or declaration) in source order,
// updating the lock set on sync2 Lock/Unlock and reporting persistent
// instructions reached while any lock is held. Function literals are queued
// for a fresh-scope walk, not descended into.
func (w *lockWalker) scanCalls(node ast.Node, held []heldLock) []heldLock {
	if node == nil {
		return held
	}
	info := w.pass.Pkg.Info
	ast.Inspect(node, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.closures = append(w.closures, lit)
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		switch {
		case isSync2Lock(fn):
			held = append(held, heldLock{recv: recvString(call), pos: call.Pos()})
			return true
		case isSync2Unlock(fn):
			recv := recvString(call)
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].recv == recv {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		lock := held[len(held)-1].recv
		name := fn.Name()
		switch {
		case isArenaMethod(fn) && (arenaPersists[name] || name == "Fence"):
			w.pass.Reportf(call.Pos(),
				"arena %s while sync2 lock %s is held: flush-outside-lock rule (persistency must overlap, not occupy, the critical section)",
				name, lock)
		case isTxMethod(fn) && name == "Persist":
			w.pass.Reportf(call.Pos(),
				"Tx.Persist while sync2 lock %s is held: the fallback path would flush inside the critical section", lock)
		case callMayPersistCall(w.pass, fn, call):
			w.pass.Reportf(call.Pos(),
				"call to %s, which can persist, while sync2 lock %s is held (flush-outside-lock rule)", name, lock)
		}
		return true
	})
	return held
}

func cloneLocks(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// unionLocks merges the lock sets of two joining paths conservatively: a
// lock held on either path is treated as held after the join.
func unionLocks(a, b []heldLock) []heldLock {
	out := cloneLocks(a)
	for _, l := range b {
		dup := false
		for _, o := range out {
			if o.recv == l.recv {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out
}

// callMayPersistCall reports whether the call can reach a persistent
// instruction: through the callee's body, or — for htm.Region.Run /
// RunOutcome — through the closure literal passed to it.
func callMayPersistCall(pass *Pass, fn *types.Func, call *ast.CallExpr) bool {
	if isRegionMethod(fn) && (fn.Name() == "Run" || fn.Name() == "RunOutcome") {
		if len(call.Args) == 1 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				return closureMayPersist(pass.Prog, pass.Pkg, lit)
			}
			if target := funcValueOf(pass.Pkg.Info, call.Args[0]); target != nil {
				return mayPersist(pass.Prog, target, nil)
			}
		}
		return false
	}
	return mayPersist(pass.Prog, fn, nil)
}

// closureMayPersist walks a function literal for reachable persists.
func closureMayPersist(prog *Program, pkg *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeOf(pkg.Info, call); callee != nil && mayPersist(prog, callee, map[*types.Func]bool{}) {
				found = true
			}
		}
		return true
	})
	return found
}
