package analysis

import (
	"go/ast"
	"go/types"
)

// LockFlush is the paper's "overlapping persistency and concurrency" claim
// stated as a lint (§4.2): persistent instructions are one to two orders of
// magnitude slower than the loads/stores around them, so a flush or fence
// executed while a sync2 spin lock or node metadata (version) lock is held
// serializes every waiter behind NVM latency. The pass flags any Arena
// Persist/PersistStream/Fence — direct, or reachable through a called
// function — between a sync2 Lock() and its Unlock() in the same function.
//
// The walk (the shared heldWalker engine, heldwalk.go) is branch-aware: an
// Unlock on an early-exit path (unlock-and-return, unlock-and-continue)
// does not release the lock for the code after the branch, so commit-point
// persists under the surviving lock are still seen. Audited exceptions —
// the one-line commit flush that §4.2 step 4 requires under the leaf lock,
// and the split path (Algorithm 3 runs under the leaf lock) — carry
// //rnvet:ignore lockflush.
var LockFlush = &Analyzer{
	Name: "lockflush",
	Doc:  "no persist or fence may run while a sync2 lock is held",
	Run:  runLockFlush,
}

func runLockFlush(pass *Pass) {
	if pass.Pkg.Path == sync2Path {
		return // the lock implementation itself is out of scope
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockFlushBody(pass, fd.Body)
		}
	}
}

func checkLockFlushBody(pass *Pass, body *ast.BlockStmt) {
	w := &heldWalker{
		info:     pass.Pkg.Info,
		classify: classifySync2,
		onCall: func(call *ast.CallExpr, fn *types.Func, held []heldLock) {
			if len(held) == 0 {
				return
			}
			lock := held[len(held)-1].recv
			name := fn.Name()
			switch {
			case isArenaMethod(fn) && (arenaPersists[name] || name == "Fence"):
				pass.Reportf(call.Pos(),
					"arena %s while sync2 lock %s is held: flush-outside-lock rule (persistency must overlap, not occupy, the critical section)",
					name, lock)
			case isTxMethod(fn) && name == "Persist":
				pass.Reportf(call.Pos(),
					"Tx.Persist while sync2 lock %s is held: the fallback path would flush inside the critical section", lock)
			case callMayPersistCall(pass, fn, call):
				pass.Reportf(call.Pos(),
					"call to %s, which can persist, while sync2 lock %s is held (flush-outside-lock rule)", name, lock)
			}
		},
	}
	w.walkBody(body)
}

// callMayPersistCall reports whether the call can reach a persistent
// instruction: through the callee's body, or — for htm.Region.Run /
// RunOutcome — through the closure literal passed to it.
func callMayPersistCall(pass *Pass, fn *types.Func, call *ast.CallExpr) bool {
	if isRegionMethod(fn) && (fn.Name() == "Run" || fn.Name() == "RunOutcome") {
		if len(call.Args) == 1 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				return closureMayPersist(pass.Prog, pass.Pkg, lit)
			}
			if target := funcValueOf(pass.Pkg.Info, call.Args[0]); target != nil {
				return mayPersist(pass.Prog, target, nil)
			}
		}
		return false
	}
	return mayPersist(pass.Prog, fn, nil)
}

// closureMayPersist walks a function literal for reachable persists.
func closureMayPersist(prog *Program, pkg *Package, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if callee := calleeOf(pkg.Info, call); callee != nil && mayPersist(prog, callee, map[*types.Func]bool{}) {
				found = true
			}
		}
		return true
	})
	return found
}
