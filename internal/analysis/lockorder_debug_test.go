package analysis

import (
	"os"
	"testing"
)

// TestDumpLockGraph is a development aid: RNVET_DUMP_LOCKGRAPH=1 prints the
// observed acquisition edges of the whole module.
func TestDumpLockGraph(t *testing.T) {
	if os.Getenv("RNVET_DUMP_LOCKGRAPH") == "" {
		t.Skip("set RNVET_DUMP_LOCKGRAPH=1 to dump")
	}
	prog, err := Load("", []string{"rntree/..."})
	if err != nil {
		t.Fatal(err)
	}
	g := buildLockGraph(prog)
	for _, e := range g.edges {
		tag := ""
		if e.declared {
			tag = " [declared]"
		}
		via := ""
		if e.via != "" {
			via = " via " + e.via
		}
		t.Logf("%s -> %s%s%s at %s", e.from, e.to, via, tag, prog.Fset.Position(e.pos))
	}
	t.Logf("%d edges", len(g.edges))
}
