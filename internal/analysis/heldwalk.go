package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared branch-aware held-lock engine. It grew out of
// lockflush's private walker; lockflush, spinblock and lockorder all drive
// the same traversal now, so the control-flow approximations (early-exit
// unlocks, loop entry state, clause joins, deferred unlocks) are decided in
// exactly one place.
//
// The engine threads a set of held locks through one function body in
// source order. Hooks observe the traversal:
//
//   - onAcquire fires when a lock is taken, with the set held just before
//     (lockorder derives its acquisition edges from this);
//   - onCall fires for every resolved call, with the current held set
//     (lockflush checks for reachable persists, spinblock for reachable
//     blocking operations);
//   - onNode fires for the statement forms that can block by themselves —
//     channel send, channel receive, select, range-over-channel — again
//     with the current held set (spinblock classifies them).
//
// Function literals encountered along the way are queued and walked
// afterwards with an empty lock set: a closure may run on another goroutine
// or after the enclosing critical section ends, so it gets its own scope.
type heldWalker struct {
	info *types.Info

	// classify decides whether a call acquires or releases a tracked lock.
	// The default tracks the sync2 spin/version locks (lockflush's rule);
	// lockorder widens it to sync.Mutex/RWMutex.
	classify func(fn *types.Func) lockClass

	onAcquire func(l heldLock, prev []heldLock)
	onCall    func(call *ast.CallExpr, fn *types.Func, held []heldLock)
	onNode    func(n ast.Node, held []heldLock)

	closures []*ast.FuncLit
}

// lockClass is the walker's view of one call: not a lock operation, a
// blocking acquisition, or a release.
type lockClass int

const (
	lockNone lockClass = iota
	lockAcquire
	lockRelease
)

// heldLock is one acquired lock instance.
type heldLock struct {
	recv string // receiver expression text ("t.mu"): per-function tracking key
	node string // program-wide identity ("kv.Store.replMu"), "" if unresolvable
	pos  token.Pos
	fn   *types.Func // the acquiring method (distinguishes lock types)
}

// classifySync2 is the default classification: the sync2 spin/version lock
// methods, blocking acquisition only (TryLock never holds the caller up).
func classifySync2(fn *types.Func) lockClass {
	switch {
	case isSync2Lock(fn):
		return lockAcquire
	case isSync2Unlock(fn):
		return lockRelease
	}
	return lockNone
}

// walkBody runs the walker over one function body, then over every queued
// closure with a fresh (empty) lock set.
func (w *heldWalker) walkBody(body *ast.BlockStmt) {
	if w.classify == nil {
		w.classify = classifySync2
	}
	w.walkStmts(body.List, nil)
	for i := 0; i < len(w.closures); i++ { // closures may queue more closures
		w.walkStmts(w.closures[i].Body.List, nil)
	}
}

// walkStmts walks one straight-line statement list, threading the set of
// held locks through it. It returns the lock set at fall-through and
// whether every path through the list terminates (return / branch).
func (w *heldWalker) walkStmts(stmts []ast.Stmt, held []heldLock) ([]heldLock, bool) {
	for _, s := range stmts {
		var term bool
		held, term = w.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *heldWalker) walkStmt(s ast.Stmt, held []heldLock) ([]heldLock, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scanExpr(s.Cond, held)
		thenHeld, thenTerm := w.walkStmts(s.Body.List, cloneLocks(held))
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.walkStmt(s.Else, cloneLocks(held))
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return unionLocks(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scanExpr(s.Cond, held)
		w.walkStmts(s.Body.List, cloneLocks(held))
		if s.Post != nil {
			w.walkStmt(s.Post, cloneLocks(held))
		}
		return held, false // loop-carried lock state is approximated by entry state
	case *ast.RangeStmt:
		held = w.scanExpr(s.X, held)
		if w.onNode != nil {
			if tv, ok := w.info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					w.onNode(s, held)
				}
			}
		}
		w.walkStmts(s.Body.List, cloneLocks(held))
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		held = w.scanExpr(s.Tag, held)
		return w.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		return w.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		if w.onNode != nil {
			w.onNode(s, held)
		}
		return w.walkClauses(s.Body, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scanExpr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto end this straight-line path; the target path
		// re-enters with the state computed at its own walk.
		return held, true
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the source
		// text (it runs at return). Other deferred calls are scanned: a
		// deferred persist or block registered under a lock is suspect
		// enough to surface.
		if fn := calleeOf(w.info, s.Call); fn != nil && w.classify(fn) == lockRelease {
			return held, false
		}
		return w.scanExpr(s.Call, held), false
	case *ast.GoStmt:
		// The goroutine body runs outside this critical section; its FuncLit
		// (if any) is queued for a fresh-scope walk.
		ast.Inspect(s.Call, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				w.closures = append(w.closures, lit)
				return false
			}
			return true
		})
		return held, false
	case *ast.ExprStmt:
		return w.scanExpr(s.X, held), false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scanExpr(e, held)
		}
		return held, false
	case *ast.IncDecStmt:
		return w.scanExpr(s.X, held), false
	case *ast.SendStmt:
		if w.onNode != nil {
			w.onNode(s, held)
		}
		held = w.scanExpr(s.Chan, held)
		return w.scanExpr(s.Value, held), false
	case *ast.DeclStmt:
		return w.scanExpr(s, held), false
	default:
		return held, false
	}
}

// walkClauses handles the case/comm clause bodies of a switch or select.
func (w *heldWalker) walkClauses(body *ast.BlockStmt, held []heldLock) ([]heldLock, bool) {
	after := held // no default clause ⇒ fall-through with entry state
	hasDefault := false
	allTerm := true
	sawClause := false
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				held = w.scanExpr(e, held)
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		default:
			continue
		}
		sawClause = true
		h, term := w.walkStmts(stmts, cloneLocks(held))
		if !term {
			allTerm = false
			after = unionLocks(after, h)
		}
	}
	if sawClause && hasDefault && allTerm {
		return held, true
	}
	return after, false
}

// scanExpr inspects one expression (or declaration) in source order,
// updating the lock set on acquire/release calls and dispatching every
// other resolved call (and blocking receive) to the hooks. Function
// literals are queued for a fresh-scope walk, not descended into.
func (w *heldWalker) scanExpr(node ast.Node, held []heldLock) []heldLock {
	if node == nil {
		return held
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.closures = append(w.closures, lit)
			return false
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			if w.onNode != nil {
				w.onNode(u, held)
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(w.info, call)
		if fn == nil {
			return true
		}
		switch w.classify(fn) {
		case lockAcquire:
			l := heldLock{recv: recvString(call), node: lockNodeOf(w.info, call), pos: call.Pos(), fn: fn}
			if w.onAcquire != nil {
				w.onAcquire(l, held)
			}
			held = append(held, l)
			return true
		case lockRelease:
			recv := recvString(call)
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].recv == recv {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
			return true
		}
		if w.onCall != nil {
			w.onCall(call, fn, held)
		}
		return true
	})
	return held
}

func cloneLocks(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

// unionLocks merges the lock sets of two joining paths conservatively: a
// lock held on either path is treated as held after the join.
func unionLocks(a, b []heldLock) []heldLock {
	out := cloneLocks(a)
	for _, l := range b {
		dup := false
		for _, o := range out {
			if o.recv == l.recv {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out
}

// lockNodeOf resolves the receiver of a lock-method call to a stable
// program-wide identity: "pkg.Type.field" for a lock field of a named
// struct (array/slice stripes collapse to their field), "pkg.var" for a
// package-level lock variable. Locks reached through local variables or
// returned pointers have no stable name and yield "" — they still gate
// lockflush/spinblock, but lockorder cannot type them (see DESIGN.md §16).
func lockNodeOf(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	expr := ast.Unparen(sel.X)
	// A stripe access (l.locks[i].Lock()) names the field, not the element.
	if idx, ok := expr.(*ast.IndexExpr); ok {
		expr = ast.Unparen(idx.X)
	}
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok {
			if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
				return fieldNodeName(s.Recv(), v)
			}
			return ""
		}
		// Package-qualified variable (pkg.Mu).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
			// Only package-level variables are stable across functions.
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name()
			}
		}
	}
	return ""
}

// fieldNodeName renders "pkg.Type.field" for a field selected from recv.
func fieldNodeName(recv types.Type, field *types.Var) string {
	t := recv
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name() + "." + obj.Name() + "." + field.Name()
}
