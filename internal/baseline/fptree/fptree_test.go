package fptree

import (
	"sync"
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
	"rntree/internal/tree/treetest"
)

func newTest(t testing.TB, opts Options) *Tree {
	t.Helper()
	a := pmem.New(pmem.Config{Size: 64 << 20})
	tr, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConformance(t *testing.T) {
	treetest.RunConformance(t, "fptree", func(t *testing.T) tree.Index {
		return newTest(t, Options{})
	})
}

func TestPersistCounts(t *testing.T) {
	// Table 1: FPTree needs 3 persistent instructions per insert/update
	// (entry, fingerprint, bitmap) and 1 per remove (bitmap only, §6.2.3).
	tr := newTest(t, Options{})
	for i := uint64(0); i < 20; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	a := tr.Arena()
	a.ResetStats()
	const k = 20
	for i := uint64(100); i < 100+k; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != 3*k {
		t.Fatalf("insert persists = %d, want %d", got, 3*k)
	}
	a.ResetStats()
	for i := uint64(0); i < k; i++ {
		if err := tr.Update(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != 3*k {
		t.Fatalf("update persists = %d, want %d", got, 3*k)
	}
	a.ResetStats()
	for i := uint64(0); i < k; i++ {
		if err := tr.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != k {
		t.Fatalf("remove persists = %d, want %d", got, k)
	}
}

func TestFingerprintDistribution(t *testing.T) {
	var buckets [256]int
	for k := uint64(0); k < 64_000; k++ {
		buckets[Fingerprint(k)]++
	}
	for b, n := range buckets {
		if n == 0 {
			t.Fatalf("fingerprint bucket %d empty", b)
		}
		if n > 64000/256*4 {
			t.Fatalf("fingerprint bucket %d overloaded: %d", b, n)
		}
	}
}

func TestFingerprintCollisionCorrectness(t *testing.T) {
	// Keys with identical fingerprints must still be distinguished by the
	// full key comparison.
	tr := newTest(t, Options{})
	base := uint64(12345)
	var same []uint64
	fp := Fingerprint(base)
	for k := base; len(same) < 5; k++ {
		if Fingerprint(k) == fp {
			same = append(same, k)
		}
	}
	for i, k := range same {
		if err := tr.Insert(k, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range same {
		if v, ok := tr.Find(k); !ok || v != uint64(i) {
			t.Fatalf("collision key %d: (%d,%v)", k, v, ok)
		}
	}
}

func TestUpdateRetiresOldSlotAtomically(t *testing.T) {
	tr := newTest(t, Options{})
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	for round := uint64(2); round < 200; round++ {
		if err := tr.Update(1, round); err != nil {
			t.Fatal(err)
		}
		if v, _ := tr.Find(1); v != round {
			t.Fatalf("round %d: %d", round, v)
		}
	}
	// No duplicate keys may coexist (bitmap flip is atomic).
	n := 0
	tr.Scan(0, 0, func(k, _ uint64) bool {
		if k == 1 {
			n++
		}
		return true
	})
	if n != 1 {
		t.Fatalf("key 1 appears %d times", n)
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	tr := newTest(t, Options{})
	var wg sync.WaitGroup
	const workers = 8
	const per = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < per; i++ {
				if err := tr.Insert(base+i, base+i); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := tr.Len(); got != workers*per {
		t.Fatalf("Len = %d, want %d", got, workers*per)
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	tr := newTest(t, Options{})
	const keys = 256
	for k := uint64(0); k < keys; k++ {
		if err := tr.Insert(k, k<<32); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 20000; i++ {
			k := i % keys
			if err := tr.Update(k, k<<32|i); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := uint64(i) % keys
				v, ok := tr.Find(k)
				if !ok {
					t.Errorf("key %d vanished", k)
					return
				}
				if v>>32 != k {
					t.Errorf("key %d torn value %#x", k, v)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestConcurrentUniqueInsert(t *testing.T) {
	tr := newTest(t, Options{})
	const keys = 1000
	var wg sync.WaitGroup
	wins := make([]int32, keys)
	var mu sync.Mutex
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				err := tr.Insert(uint64(k), uint64(w))
				if err == nil {
					mu.Lock()
					wins[k]++
					mu.Unlock()
				} else if err != tree.ErrKeyExists {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for k, n := range wins {
		if n != 1 {
			t.Fatalf("key %d won %d times", k, n)
		}
	}
}
