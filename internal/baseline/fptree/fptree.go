// Package fptree re-implements FPTree [Oukid et al., SIGMOD'16] as the
// paper's evaluation does (§6): unsorted leaf nodes in NVM with a persistent
// occupancy bitmap and one-byte key fingerprints to cut cache misses during
// the linear scan; volatile internal nodes; and *selective concurrency* —
// traversal is effectively transactional (here: a lock-free snapshot index,
// see DESIGN.md §2) while every modify operation takes a whole-leaf mutex
// and holds it across all of its persistent instructions (the decoupled
// design of §3.4).
//
// That coarse critical section is exactly what Figures 8-10 indict: under
// skewed workloads the hot leaf is locked almost permanently, writers
// serialize behind flushes, and finds — which restart from the root whenever
// their leaf is locked or changes — collapse.
//
// Persistent-instruction budget (Table 1): insert/update 3 (entry,
// fingerprint, bitmap), remove 1 (bitmap only).
//
// FPTree inherently supports conditional writes: log slots are recycled via
// the bitmap, so duplicate keys must never coexist (§6).
package fptree

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rntree/internal/inner"
	"rntree/internal/pmem"
	"rntree/internal/sync2"
	"rntree/internal/tree"
)

// Leaf layout (cache-line rows):
//
//	line 0  header : next (8B) | bitmap (8B, persistent occupancy)
//	line 1  fps    : one fingerprint byte per log slot
//	line 2+ KVs    : 16-byte entries, capacity 64
const (
	hdrNextOff = 0
	hdrBmpOff  = 8

	fpLineOff = pmem.LineSize
	kvOff     = 2 * pmem.LineSize

	kvEntrySize = 16
)

// DefaultLeafCapacity matches the paper's 64-entry leaves (bitmap = 1 word).
const DefaultLeafCapacity = 64

// Options configure an FPTree.
type Options struct {
	// LeafCapacity is the number of log slots per leaf (4..64, default 64).
	LeafCapacity int
}

// Fingerprint returns the one-byte hash FPTree stores per entry.
func Fingerprint(key uint64) uint8 {
	h := key * 0x9e3779b97f4a7c15
	return uint8(h >> 56)
}

const noHighKey = ^uint64(0)

type leafMeta struct {
	off  uint64
	// mu is the whole-leaf lock, held across persists and splits (the
	// coupled design the paper's §4.2 decouples). Outermost in fptree:
	//
	//rnvet:lockorder fptree.leafMeta.mu<fptree.Tree.metaMu
	//rnvet:lockorder fptree.leafMeta.mu<inner.Index.mu
	//rnvet:lockorder fptree.leafMeta.mu<pmem.Heap.allocMu
	mu   sync2.SpinLock
	ver  atomic.Uint64  // bumped by every modify; finds validate it
	high atomic.Uint64
	next atomic.Pointer[leafMeta]
	id   uint64
}

func newLeafMeta(off uint64) *leafMeta {
	m := &leafMeta{off: off}
	m.high.Store(noHighKey)
	return m
}

// Tree is an FPTree instance. All operations are safe for concurrent use.
type Tree struct {
	arena *pmem.Arena
	ix    *inner.Index

	metaMu sync.Mutex
	metas  atomic.Pointer[[]*leafMeta]
	head   *leafMeta

	capacity int
	lsize    uint64

	// readRetries counts find attempts wasted because the leaf was locked
	// by a writer or changed mid-read — each costs a fresh traversal from
	// the root, FPTree's scalability Achilles heel (§6.3.1).
	readRetries atomic.Uint64
}

var _ tree.Index = (*Tree)(nil)

// New formats an empty FPTree in the arena.
func New(arena *pmem.Arena, opts Options) (*Tree, error) {
	if opts.LeafCapacity == 0 {
		opts.LeafCapacity = DefaultLeafCapacity
	}
	if opts.LeafCapacity < 4 || opts.LeafCapacity > 64 {
		opts.LeafCapacity = DefaultLeafCapacity
	}
	t := &Tree{
		arena:    arena,
		capacity: opts.LeafCapacity,
		lsize:    kvOff + uint64(opts.LeafCapacity)*kvEntrySize,
	}
	s := make([]*leafMeta, 0, 64)
	t.metas.Store(&s)
	off, err := arena.Alloc(t.lsize)
	if err != nil {
		return nil, tree.ErrFull
	}
	arena.Zero(off, t.lsize)
	arena.Persist(off, t.lsize)
	m := newLeafMeta(off)
	t.addMeta(m)
	t.head = m
	t.ix = inner.New(m.id)
	return t, nil
}

// Arena returns the backing arena for statistics.
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return len(*t.metas.Load()) }

func (t *Tree) addMeta(m *leafMeta) {
	t.metaMu.Lock()
	old := *t.metas.Load()
	m.id = uint64(len(old))
	ns := append(old, m)
	t.metas.Store(&ns)
	t.metaMu.Unlock()
}

// ReadRetries reports how many read attempts were wasted on root restarts.
func (t *Tree) ReadRetries() uint64 { return t.readRetries.Load() }

func (t *Tree) leafFor(key uint64) *leafMeta {
	return (*t.metas.Load())[t.ix.Seek(key)]
}

func (t *Tree) entryOff(m *leafMeta, i int) uint64 {
	return m.off + kvOff + uint64(i)*kvEntrySize
}

func (t *Tree) readFP(m *leafMeta, i int) uint8 {
	w := t.arena.Read8(m.off + fpLineOff + uint64(i&^7))
	return uint8(w >> (8 * uint(i&7)))
}

//pmem:volatile the insert path persists the fingerprint word separately (persist 2 of the FPTree budget)
func (t *Tree) writeFP(m *leafMeta, i int, fp uint8) {
	off := m.off + fpLineOff + uint64(i&^7)
	w := t.arena.Read8(off)
	sh := 8 * uint(i&7)
	w = (w &^ (uint64(0xff) << sh)) | uint64(fp)<<sh
	t.arena.Write8(off, w)
}

// findSlot scans fingerprints of occupied slots for the key; the caller
// must hold the leaf lock or validate the version afterwards.
func (t *Tree) findSlot(m *leafMeta, bitmap, key uint64) (int, bool) {
	fp := Fingerprint(key)
	for bm := bitmap; bm != 0; {
		i := bits.TrailingZeros64(bm)
		bm &= bm - 1
		if i >= t.capacity {
			break
		}
		if t.readFP(m, i) != fp {
			continue
		}
		if t.arena.Read8(t.entryOff(m, i)) == key {
			return i, true
		}
	}
	return 0, false
}

// Find scans the leaf under optimistic validation. If the leaf is locked by
// a writer the find restarts from the root — FPTree's behaviour under HTM,
// whose cost Figure 8(b,c) exposes.
func (t *Tree) Find(key uint64) (uint64, bool) {
	for {
		m := t.leafFor(key)
		if m.mu.IsLocked() {
			t.readRetries.Add(1)
			runtime.Gosched()
			continue // abort; traverse from the root again
		}
		v0 := m.ver.Load()
		if key >= m.high.Load() {
			continue
		}
		bitmap := t.arena.Read8(m.off + hdrBmpOff)
		i, ok := t.findSlot(m, bitmap, key)
		var val uint64
		if ok {
			val = t.arena.Read8(t.entryOff(m, i) + 8)
		}
		if m.mu.IsLocked() || m.ver.Load() != v0 {
			t.readRetries.Add(1)
			continue
		}
		return val, ok
	}
}

const (
	modeInsert = iota
	modeUpdate
	modeUpsert
)

// Insert adds a key (conditional — inherent in FPTree, §6).
func (t *Tree) Insert(key, value uint64) error { return t.modify(key, value, modeInsert) }

// Update rewrites an existing key (conditional).
func (t *Tree) Update(key, value uint64) error { return t.modify(key, value, modeUpdate) }

// Upsert writes the key unconditionally.
func (t *Tree) Upsert(key, value uint64) error { return t.modify(key, value, modeUpsert) }

func (t *Tree) modify(key, value uint64, mode int) error {
	for {
		m := t.leafFor(key)
		// The decoupled design: one critical section covers the whole
		// operation, flushes included.
		m.mu.Lock()
		if key >= m.high.Load() {
			m.mu.Unlock()
			continue
		}
		bitmap := t.arena.Read8(m.off + hdrBmpOff)
		i, exists := t.findSlot(m, bitmap, key)
		switch mode {
		case modeInsert:
			if exists {
				m.mu.Unlock()
				return tree.ErrKeyExists
			}
		case modeUpdate:
			if !exists {
				m.mu.Unlock()
				return tree.ErrKeyNotFound
			}
		}
		free := bits.TrailingZeros64(^bitmap)
		if free >= t.capacity {
			err := t.splitLocked(m, bitmap) //rnvet:ignore lockflush,spinblock FPTree splits (and allocates) under the leaf lock; the baseline models that cost faithfully
			m.mu.Unlock()
			if err != nil {
				return err
			}
			continue
		}
		eoff := t.entryOff(m, free)
		t.arena.Write8(eoff, key)
		t.arena.Write8(eoff+8, value)
		t.arena.Persist(eoff, kvEntrySize) //rnvet:ignore lockflush,spinblock FPTree flushes inside the critical section by design — the coupling RNTree's §4.2 removes (the drain-engine wait is bounded by media bandwidth, not a goroutine)
		t.writeFP(m, free, Fingerprint(key))
		t.arena.Persist(m.off+fpLineOff+uint64(free&^7), 8) //rnvet:ignore lockflush,spinblock FPTree flushes inside the critical section by design
		nb := bitmap | 1<<uint(free)
		if exists {
			nb &^= 1 << uint(i) // retire the old version in the same atomic word
		}
		t.arena.Write8(m.off+hdrBmpOff, nb)
		t.arena.Persist(m.off+hdrBmpOff, 8) //rnvet:ignore lockflush,spinblock persist 3: the bitmap commit point, under the leaf lock by design
		m.ver.Add(1)
		m.mu.Unlock()
		return nil
	}
}

// Remove clears the slot's bitmap bit — FPTree's single-persist remove that
// tops Figure 4's remove column.
func (t *Tree) Remove(key uint64) error {
	for {
		m := t.leafFor(key)
		m.mu.Lock()
		if key >= m.high.Load() {
			m.mu.Unlock()
			continue
		}
		bitmap := t.arena.Read8(m.off + hdrBmpOff)
		i, exists := t.findSlot(m, bitmap, key)
		if !exists {
			m.mu.Unlock()
			return tree.ErrKeyNotFound
		}
		t.arena.Write8(m.off+hdrBmpOff, bitmap&^(1<<uint(i)))
		t.arena.Persist(m.off+hdrBmpOff, 8) //rnvet:ignore lockflush,spinblock the single-persist remove commits under the leaf lock by design
		m.ver.Add(1)
		m.mu.Unlock()
		return nil
	}
}

// splitLocked divides a full leaf; caller holds the leaf lock.
func (t *Tree) splitLocked(m *leafMeta, bitmap uint64) error {
	type rec struct{ k, v uint64 }
	recs := make([]rec, 0, t.capacity)
	for bm := bitmap; bm != 0; {
		i := bits.TrailingZeros64(bm)
		bm &= bm - 1
		off := t.entryOff(m, i)
		recs = append(recs, rec{t.arena.Read8(off), t.arena.Read8(off + 8)})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].k < recs[j].k })
	keys := make([]uint64, len(recs))
	vals := make([]uint64, len(recs))
	for i, r := range recs {
		keys[i], vals[i] = r.k, r.v
	}
	half := len(keys) / 2
	splitKey := keys[half]
	newOff, err := t.arena.Alloc(t.lsize)
	if err != nil {
		return tree.ErrFull
	}
	t.writeLeaf(newOff, keys[half:], vals[half:], t.arena.Read8(m.off+hdrNextOff))
	t.arena.Persist(newOff, t.lsize)
	t.writeLeaf(m.off, keys[:half], vals[:half], newOff)
	t.arena.Persist(m.off, t.lsize)

	nm := newLeafMeta(newOff)
	nm.high.Store(m.high.Load())
	nm.next.Store(m.next.Load())
	t.addMeta(nm)
	m.high.Store(splitKey)
	m.next.Store(nm)
	m.ver.Add(1)
	t.ix.Insert(splitKey, nm.id)
	return nil
}

// writeLeaf lays out a compacted leaf: slots 0..n-1 in key order.
//
//pmem:volatile the split caller persists the whole leaf with one ranged Persist
func (t *Tree) writeLeaf(off uint64, keys, vals []uint64, next uint64) {
	t.arena.Zero(off, t.lsize)
	t.arena.Write8(off+hdrNextOff, next)
	var bm uint64
	for i := range keys {
		bm |= 1 << uint(i)
		eoff := off + kvOff + uint64(i)*kvEntrySize
		t.arena.Write8(eoff, keys[i])
		t.arena.Write8(eoff+8, vals[i])
		w := t.arena.Read8(off + fpLineOff + uint64(i&^7))
		sh := 8 * uint(i&7)
		w = (w &^ (uint64(0xff) << sh)) | uint64(Fingerprint(keys[i]))<<sh
		t.arena.Write8(off+fpLineOff+uint64(i&^7), w)
	}
	t.arena.Write8(off+hdrBmpOff, bm)
}

// Scan must sort every leaf it visits (unsorted leaves, §5.2.4/Figure 6).
func (t *Tree) Scan(start uint64, max int, fn func(key, value uint64) bool) int {
	count := 0
	resume := start
	var m *leafMeta
	for {
		if m == nil {
			m = t.leafFor(resume)
		}
		if m.mu.IsLocked() {
			runtime.Gosched()
			continue
		}
		v0 := m.ver.Load()
		if resume >= m.high.Load() {
			m = nil
			continue
		}
		bitmap := t.arena.Read8(m.off + hdrBmpOff)
		type rec struct{ k, v uint64 }
		var recs []rec
		for bm := bitmap; bm != 0; {
			i := bits.TrailingZeros64(bm)
			bm &= bm - 1
			if i >= t.capacity {
				break
			}
			off := t.entryOff(m, i)
			k := t.arena.Read8(off)
			if k >= resume {
				recs = append(recs, rec{k, t.arena.Read8(off + 8)})
			}
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].k < recs[j].k })
		nxt := m.next.Load()
		if m.mu.IsLocked() || m.ver.Load() != v0 {
			m = nil
			continue
		}
		for _, r := range recs {
			if max > 0 && count >= max {
				return count
			}
			count++
			if !fn(r.k, r.v) {
				return count
			}
			if r.k == noHighKey {
				return count
			}
			resume = r.k + 1
		}
		if nxt == nil {
			return count
		}
		m = nxt
	}
}

// Len counts records (full scan).
func (t *Tree) Len() int {
	n := 0
	t.Scan(0, 0, func(_, _ uint64) bool { n++; return true })
	return n
}
