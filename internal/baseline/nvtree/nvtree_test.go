package nvtree

import (
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
	"rntree/internal/tree/treetest"
)

func newTest(t testing.TB, opts Options) *Tree {
	t.Helper()
	a := pmem.New(pmem.Config{Size: 64 << 20})
	tr, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConformance(t *testing.T) {
	// Conditional mode has the full Index semantics.
	treetest.RunConformance(t, "nvtree", func(t *testing.T) tree.Index {
		return newTest(t, Options{Conditional: true})
	})
}

func TestPersistCounts(t *testing.T) {
	// Table 1: NV-Tree needs 2 persistent instructions per modify (entry +
	// counter), in both conditional and unconditional modes.
	for _, cond := range []bool{false, true} {
		tr := newTest(t, Options{Conditional: cond})
		for i := uint64(0); i < 20; i++ {
			if err := tr.Insert(i, i); err != nil {
				t.Fatal(err)
			}
		}
		a := tr.Arena()
		a.ResetStats()
		const k = 20
		for i := uint64(100); i < 100+k; i++ {
			if err := tr.Insert(i, i); err != nil {
				t.Fatal(err)
			}
		}
		if got := a.Stats().Persists; got != 2*k {
			t.Fatalf("cond=%v: insert persists = %d, want %d", cond, got, 2*k)
		}
		a.ResetStats()
		for i := uint64(0); i < k; i++ {
			if err := tr.Update(i, i+1); err != nil {
				t.Fatal(err)
			}
		}
		if got := a.Stats().Persists; got != 2*k {
			t.Fatalf("cond=%v: update persists = %d, want %d", cond, got, 2*k)
		}
	}
}

func TestUnconditionalInsertIsUpsert(t *testing.T) {
	tr := newTest(t, Options{})
	if err := tr.Insert(1, 10); err != nil {
		t.Fatal(err)
	}
	// Without conditional mode NV-Tree appends blindly; the newest wins.
	if err := tr.Insert(1, 20); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Find(1); v != 20 {
		t.Fatalf("latest append must win: %d", v)
	}
}

func TestBackToFrontScanSemantics(t *testing.T) {
	tr := newTest(t, Options{Conditional: true})
	if err := tr.Insert(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(5, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(5, 3); err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Find(5); v != 3 {
		t.Fatalf("newest entry must win: %d", v)
	}
	if err := tr.Remove(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Find(5); ok {
		t.Fatal("tombstone ignored")
	}
	// Re-insert after tombstone.
	if err := tr.Insert(5, 9); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Find(5); !ok || v != 9 {
		t.Fatalf("re-insert after tombstone: %d,%v", v, ok)
	}
}

func TestSplitSortsAndKeepsData(t *testing.T) {
	tr := newTest(t, Options{Conditional: true})
	for i := 300; i > 0; i-- {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.LeafCount() < 2 {
		t.Fatal("no splits happened")
	}
	prev := uint64(0)
	n := tr.Scan(0, 0, func(k, v uint64) bool {
		if k <= prev && prev != 0 {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = k
		return true
	})
	if n != 300 {
		t.Fatalf("scan found %d", n)
	}
}

func TestTombstoneHeavyCompaction(t *testing.T) {
	tr := newTest(t, Options{Conditional: true})
	// Insert and remove repeatedly in one leaf: log fills with tombstones
	// and obsolete versions; compaction must reclaim.
	for round := 0; round < 50; round++ {
		for k := uint64(0); k < 8; k++ {
			if err := tr.Upsert(k, uint64(round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	for k := uint64(0); k < 8; k++ {
		if v, _ := tr.Find(k); v != 49 {
			t.Fatalf("key %d = %d", k, v)
		}
	}
}

func TestConditionalScanOverheadExists(t *testing.T) {
	// Figure 5's premise: conditional writes force a leaf scan before every
	// modify. We can't measure time here, but we can check both modes agree
	// on final state for a conflict-free workload.
	plain := newTest(t, Options{})
	cond := newTest(t, Options{Conditional: true})
	for i := uint64(0); i < 2000; i++ {
		if err := plain.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		if err := cond.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if plain.Len() != cond.Len() {
		t.Fatalf("modes disagree: %d vs %d", plain.Len(), cond.Len())
	}
}

func TestOriginalUpdateDoublesPersists(t *testing.T) {
	// §6: the original NV-Tree appends remove+insert logs per update; the
	// paper's optimized re-implementation halves the memory writes. The
	// ablation flag restores the original cost.
	opt := newTest(t, Options{Conditional: true})
	orig := newTest(t, Options{Conditional: true, OriginalUpdate: true})
	for _, tr := range []*Tree{opt, orig} {
		for i := uint64(0); i < 8; i++ {
			if err := tr.Insert(i, 0); err != nil {
				t.Fatal(err)
			}
		}
		tr.Arena().ResetStats()
	}
	const k = 8
	for i := uint64(0); i < k; i++ {
		if err := opt.Update(i, 1); err != nil {
			t.Fatal(err)
		}
		if err := orig.Update(i, 1); err != nil {
			t.Fatal(err)
		}
	}
	po, pg := opt.Arena().Stats().Persists, orig.Arena().Stats().Persists
	if po != 2*k {
		t.Fatalf("optimized update persists = %d, want %d", po, 2*k)
	}
	if pg != 4*k {
		t.Fatalf("original update persists = %d, want %d", pg, 4*k)
	}
	// Semantics identical.
	for i := uint64(0); i < k; i++ {
		if v, ok := orig.Find(i); !ok || v != 1 {
			t.Fatalf("original-mode Find(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestOriginalUpdateChurnStillCorrect(t *testing.T) {
	tr := newTest(t, Options{Conditional: true, OriginalUpdate: true})
	for i := uint64(0); i < 50; i++ {
		if err := tr.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	for round := uint64(1); round <= 60; round++ {
		for i := uint64(0); i < 50; i++ {
			if err := tr.Update(i, round); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
	}
	if got := tr.Len(); got != 50 {
		t.Fatalf("Len = %d", got)
	}
	for i := uint64(0); i < 50; i++ {
		if v, _ := tr.Find(i); v != 60 {
			t.Fatalf("key %d = %d", i, v)
		}
	}
}
