// Package nvtree re-implements NV-Tree [Yang et al., FAST'15] as the paper's
// evaluation does (§6): leaf nodes are append-only logs in NVM, kept
// *unsorted* so that each modify operation needs only two persistent
// instructions — one for the appended log entry and one for the 8-byte
// nElement counter, which is within the atomic-write size of an ordinary
// store. Reads pay for that economy: find must scan the log, and range
// queries must sort every leaf they touch.
//
// Following the paper's §6 adjustments: the static internal-node layout of
// the original is replaced with the same volatile internal nodes used by
// every other tree here (package inner), and updates append a single
// combined entry rather than a remove+insert pair, with reads scanning the
// log back to front so the newest entry for a key wins.
//
// NV-Tree is single-threaded (Table 1). A Conditional mode makes insert and
// update scan the leaf for key existence first, reproducing the ~19%
// conditional-write overhead of Figure 5.
package nvtree

import (
	"sort"

	"rntree/internal/inner"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Leaf layout (cache-line rows):
//
//	line 0  header : next (8B) | nElement (8B, the persistent metadata)
//	line 1+ logs   : 24-byte entries (key, value, flags), padded per entry
//
// Entries are 32 bytes on disk (24 used + 8 pad) so two fit one line.
const (
	hdrNextOff  = 0
	hdrCountOff = 8

	logOff    = pmem.LineSize
	entrySize = 32

	entryInsert = 1 // flags value: a live KV
	entryDelete = 2 // flags value: a tombstone
)

// DefaultLeafCapacity matches the paper's 64-entry leaves.
const DefaultLeafCapacity = 64

// Options configure an NV-Tree.
type Options struct {
	// LeafCapacity is the number of log entries per leaf (default 64).
	LeafCapacity int
	// Conditional enables conditional-write semantics: Insert fails on an
	// existing key and Update on a missing one, at the cost of scanning the
	// leaf log first (Figure 5). Without it, Insert and Update behave like
	// Upsert and never scan.
	Conditional bool
	// OriginalUpdate reverts the paper's §6 optimization: the original
	// NV-Tree appends a remove log followed by an insert log for every
	// update (two entries, four persistent instructions) and reads scan
	// front to back. The paper's re-implementation "omit[s] the remove log
	// to reduce memory flushes ... reduces half of the memory writes"; this
	// flag restores the original behaviour for ablation.
	OriginalUpdate bool
}

type leafMeta struct {
	off  uint64
	n    int // mirror of the persistent nElement
	next *leafMeta
	id   uint64
}

// Tree is an NV-Tree instance.
type Tree struct {
	arena *pmem.Arena
	ix    *inner.Index
	metas []*leafMeta
	head  *leafMeta

	capacity int
	lsize    uint64
	cond     bool
	origUpd  bool
}

var _ tree.Index = (*Tree)(nil)

// New formats an empty NV-Tree in the arena.
func New(arena *pmem.Arena, opts Options) (*Tree, error) {
	if opts.LeafCapacity == 0 {
		opts.LeafCapacity = DefaultLeafCapacity
	}
	t := &Tree{
		arena:    arena,
		capacity: opts.LeafCapacity,
		lsize:    logOff + uint64(opts.LeafCapacity)*entrySize,
		cond:     opts.Conditional,
		origUpd:  opts.OriginalUpdate,
	}
	off, err := arena.Alloc(t.lsize)
	if err != nil {
		return nil, tree.ErrFull
	}
	arena.Zero(off, t.lsize)
	arena.Persist(off, t.lsize)
	m := &leafMeta{off: off}
	t.addMeta(m)
	t.head = m
	t.ix = inner.New(m.id)
	return t, nil
}

// Arena returns the backing arena for statistics.
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return len(t.metas) }

func (t *Tree) addMeta(m *leafMeta) {
	m.id = uint64(len(t.metas))
	t.metas = append(t.metas, m)
}

func (t *Tree) leafFor(key uint64) *leafMeta {
	return t.metas[t.ix.Seek(key)]
}

func (t *Tree) entryOff(m *leafMeta, i int) uint64 {
	return m.off + logOff + uint64(i)*entrySize
}

func (t *Tree) readEntry(m *leafMeta, i int) (key, val, flags uint64) {
	off := t.entryOff(m, i)
	return t.arena.Read8(off), t.arena.Read8(off + 8), t.arena.Read8(off + 16)
}

// scanLeaf searches the log back to front so the most recent entry for the
// key wins (the §6 optimization replacing remove+insert log pairs).
func (t *Tree) scanLeaf(m *leafMeta, key uint64) (val uint64, state uint64) {
	for i := m.n - 1; i >= 0; i-- {
		k, v, f := t.readEntry(m, i)
		if k == key {
			return v, f
		}
	}
	return 0, 0
}

// appendEntry writes one log entry and bumps the persistent counter — the
// two persistent instructions per modify.
func (t *Tree) appendEntry(m *leafMeta, key, val, flags uint64) {
	i := m.n
	off := t.entryOff(m, i)
	t.arena.Write8(off, key)
	t.arena.Write8(off+8, val)
	t.arena.Write8(off+16, flags)
	t.arena.Persist(off, entrySize) // persistent instruction 1
	m.n++
	t.arena.Write8(m.off+hdrCountOff, uint64(m.n))
	t.arena.Persist(m.off+hdrCountOff, 8) // persistent instruction 2
}

// Insert adds a key. In conditional mode it first scans the leaf and fails
// with ErrKeyExists on a duplicate; otherwise it appends blindly (upsert
// semantics, as in the original NV-Tree).
func (t *Tree) Insert(key, value uint64) error {
	m := t.leafFor(key)
	if t.cond {
		if _, st := t.scanLeaf(m, key); st == entryInsert {
			return tree.ErrKeyExists
		}
	}
	t.appendEntry(m, key, value, entryInsert)
	return t.maybeSplit(m)
}

// Update rewrites a key. In conditional mode it fails with ErrKeyNotFound
// when absent; otherwise it appends blindly. With OriginalUpdate set it
// appends the original remove+insert log pair (double the persists).
func (t *Tree) Update(key, value uint64) error {
	m := t.leafFor(key)
	if t.cond {
		if _, st := t.scanLeaf(m, key); st != entryInsert {
			return tree.ErrKeyNotFound
		}
	}
	if t.origUpd {
		t.appendEntry(m, key, 0, entryDelete)
		if err := t.maybeSplit(m); err != nil {
			return err
		}
		m = t.leafFor(key) // the split may have moved the key's range
	}
	t.appendEntry(m, key, value, entryInsert)
	return t.maybeSplit(m)
}

// Upsert writes the key unconditionally.
func (t *Tree) Upsert(key, value uint64) error {
	m := t.leafFor(key)
	t.appendEntry(m, key, value, entryInsert)
	return t.maybeSplit(m)
}

// Remove appends a tombstone entry (and always verifies existence — a
// remove that deletes nothing must report it).
func (t *Tree) Remove(key uint64) error {
	m := t.leafFor(key)
	if _, st := t.scanLeaf(m, key); st != entryInsert {
		return tree.ErrKeyNotFound
	}
	t.appendEntry(m, key, 0, entryDelete)
	return t.maybeSplit(m)
}

// Find scans the unsorted leaf log (the linear search that makes NV-Tree
// reads slower than slot-array trees, §6.2.1).
func (t *Tree) Find(key uint64) (uint64, bool) {
	m := t.leafFor(key)
	v, st := t.scanLeaf(m, key)
	if st != entryInsert {
		return 0, false
	}
	return v, true
}

// liveEntries collects the leaf's live records, newest-wins, unsorted.
func (t *Tree) liveEntries(m *leafMeta) []tree.KV {
	seen := make(map[uint64]struct{}, m.n)
	out := make([]tree.KV, 0, m.n)
	for i := m.n - 1; i >= 0; i-- {
		k, v, f := t.readEntry(m, i)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if f == entryInsert {
			out = append(out, tree.KV{Key: k, Value: v})
		}
	}
	return out
}

// Scan sorts each visited leaf before emitting it — the cost of unsorted
// leaves that Figure 6 quantifies ("a straightforward way is to sort each
// encountered leaf node").
func (t *Tree) Scan(start uint64, max int, fn func(key, value uint64) bool) int {
	count := 0
	m := t.leafFor(start)
	for m != nil {
		live := t.liveEntries(m)
		sort.Slice(live, func(i, j int) bool { return live[i].Key < live[j].Key })
		for _, kv := range live {
			if kv.Key < start {
				continue
			}
			if max > 0 && count >= max {
				return count
			}
			count++
			if !fn(kv.Key, kv.Value) {
				return count
			}
		}
		m = m.next
	}
	return count
}

// maybeSplit splits a leaf whose log area is exhausted. NV-Tree must sort
// all entries before splitting (§6.2.2: "NVTree has to sort all data in the
// node before splitting", which makes its splits slower).
func (t *Tree) maybeSplit(m *leafMeta) error {
	if m.n < t.capacity {
		return nil
	}
	live := t.liveEntries(m)
	sort.Slice(live, func(i, j int) bool { return live[i].Key < live[j].Key })
	if len(live) < t.capacity/2 {
		// Mostly tombstones/obsolete versions: compact in place.
		t.writeLeafLog(m.off, live, t.arena.Read8(m.off+hdrNextOff))
		t.arena.Persist(m.off, t.lsize)
		m.n = len(live)
		return nil
	}
	half := len(live) / 2
	splitKey := live[half].Key
	newOff, err := t.arena.Alloc(t.lsize)
	if err != nil {
		return tree.ErrFull
	}
	t.writeLeafLog(newOff, live[half:], t.arena.Read8(m.off+hdrNextOff))
	t.arena.Persist(newOff, t.lsize)
	t.writeLeafLog(m.off, live[:half], newOff)
	t.arena.Persist(m.off, t.lsize)

	nm := &leafMeta{off: newOff, n: len(live) - half, next: m.next}
	t.addMeta(nm)
	m.n = half
	m.next = nm
	t.ix.Insert(splitKey, nm.id)
	return nil
}

// writeLeafLog lays out a compacted leaf log in key order.
//
//pmem:volatile the split/compaction caller persists the whole leaf with one ranged Persist
func (t *Tree) writeLeafLog(off uint64, live []tree.KV, next uint64) {
	t.arena.Zero(off, t.lsize)
	t.arena.Write8(off+hdrNextOff, next)
	t.arena.Write8(off+hdrCountOff, uint64(len(live)))
	for i, kv := range live {
		eoff := off + logOff + uint64(i)*entrySize
		t.arena.Write8(eoff, kv.Key)
		t.arena.Write8(eoff+8, kv.Value)
		t.arena.Write8(eoff+16, entryInsert)
	}
}

// Len counts live records.
func (t *Tree) Len() int {
	n := 0
	t.Scan(0, 0, func(_, _ uint64) bool { n++; return true })
	return n
}
