package cdds

import (
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
	"rntree/internal/tree/treetest"
)

func newTest(t testing.TB) *Tree {
	t.Helper()
	a := pmem.New(pmem.Config{Size: 64 << 20})
	tr, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConformance(t *testing.T) {
	treetest.RunConformance(t, "cdds", func(t *testing.T) tree.Index {
		return newTest(t)
	})
}

func TestWriteAmplificationGrowsWithOccupancy(t *testing.T) {
	// Table 1: CDDS needs O(L) persistent instructions per modify because
	// inserting into the sorted node shifts (and persists) the tail.
	tr := newTest(t)
	a := tr.Arena()
	// Fill one leaf with descending keys so each insert shifts everything.
	a.ResetStats()
	if err := tr.Insert(1000, 0); err != nil {
		t.Fatal(err)
	}
	first := a.Stats().Persists
	for i := uint64(999); i > 980; i-- {
		if err := tr.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	a.ResetStats()
	if err := tr.Insert(900, 0); err != nil { // shifts ~20 entries
		t.Fatal(err)
	}
	shifted := a.Stats().Persists
	if shifted < first+10 {
		t.Fatalf("expected O(L) persists for a head insert: first=%d, shifted=%d", first, shifted)
	}
}

func TestMultiVersionUpdateKeepsSingleLiveVersion(t *testing.T) {
	tr := newTest(t)
	if err := tr.Insert(7, 1); err != nil {
		t.Fatal(err)
	}
	for v := uint64(2); v <= 20; v++ {
		if err := tr.Update(7, v); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := tr.Find(7); !ok || v != 20 {
		t.Fatalf("Find(7) = %d,%v", v, ok)
	}
	n := 0
	tr.Scan(0, 0, func(k, _ uint64) bool {
		if k == 7 {
			n++
		}
		return true
	})
	if n != 1 {
		t.Fatalf("key 7 visible %d times", n)
	}
}

func TestVersionGarbageCollection(t *testing.T) {
	tr := newTest(t)
	// Update churn fills leaves with dead versions; consolidation must
	// reclaim them rather than splitting forever.
	for k := uint64(0); k < 8; k++ {
		if err := tr.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	for round := uint64(1); round <= 300; round++ {
		for k := uint64(0); k < 8; k++ {
			if err := tr.Update(k, round); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.LeafCount() > 4 {
		t.Fatalf("dead versions not collected: %d leaves", tr.LeafCount())
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len = %d", got)
	}
}
