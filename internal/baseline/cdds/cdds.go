// Package cdds implements a CDDS B-Tree baseline [Venkataraman et al.,
// FAST'11] for the Table 1 comparison: a multi-version tree whose leaf
// entries carry [start, end) version tags. Updates never overwrite in
// place — a new version is created and the old one is end-tagged — which
// gives recoverability without logs, but the sorted, direct (slot-array-free)
// leaf layout means every insert shifts on average half the node and
// persists everything it moved: the per-modify persistent-instruction count
// grows with the leaf size ("Writes = L*" in Table 1), the write
// amplification RNTree's indirection avoids.
//
// CDDS B-Tree is single-threaded (Table 1).
package cdds

import (
	"rntree/internal/inner"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Leaf layout (cache-line rows):
//
//	line 0  header : next (8B) | count (8B) | commitVersion (8B)
//	line 1+ entries: 32-byte [key, value, start, end), sorted by key
//
// An entry is live when start <= commit and (end == 0 or end > commit).
const (
	hdrNextOff  = 0
	hdrCountOff = 8
	hdrVerOff   = 16

	entOff    = pmem.LineSize
	entrySize = 32
)

// DefaultLeafCapacity is sized so a leaf matches the other trees' footprint.
const DefaultLeafCapacity = 32

// Options configure a CDDS tree.
type Options struct {
	// LeafCapacity is the number of version entries per leaf (default 32).
	LeafCapacity int
}

type leafMeta struct {
	off  uint64
	n    int
	next *leafMeta
	id   uint64
}

// Tree is a CDDS B-Tree instance.
type Tree struct {
	arena *pmem.Arena
	ix    *inner.Index
	metas []*leafMeta
	head  *leafMeta

	version  uint64 // global commit version (mirrored per leaf on write)
	capacity int
	lsize    uint64
}

var _ tree.Index = (*Tree)(nil)

// New formats an empty CDDS tree in the arena.
func New(arena *pmem.Arena, opts Options) (*Tree, error) {
	if opts.LeafCapacity == 0 {
		opts.LeafCapacity = DefaultLeafCapacity
	}
	t := &Tree{
		arena:    arena,
		version:  1,
		capacity: opts.LeafCapacity,
		lsize:    entOff + uint64(opts.LeafCapacity)*entrySize,
	}
	off, err := arena.Alloc(t.lsize)
	if err != nil {
		return nil, tree.ErrFull
	}
	arena.Zero(off, t.lsize)
	arena.Persist(off, t.lsize)
	m := &leafMeta{off: off}
	t.addMeta(m)
	t.head = m
	t.ix = inner.New(m.id)
	return t, nil
}

// Arena returns the backing arena for statistics.
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return len(t.metas) }

func (t *Tree) addMeta(m *leafMeta) {
	m.id = uint64(len(t.metas))
	t.metas = append(t.metas, m)
}

func (t *Tree) leafFor(key uint64) *leafMeta { return t.metas[t.ix.Seek(key)] }

func (t *Tree) entryOff(m *leafMeta, i int) uint64 {
	return m.off + entOff + uint64(i)*entrySize
}

type entry struct {
	key, val, start, end uint64
}

func (t *Tree) readEntry(m *leafMeta, i int) entry {
	off := t.entryOff(m, i)
	return entry{
		key:   t.arena.Read8(off),
		val:   t.arena.Read8(off + 8),
		start: t.arena.Read8(off + 16),
		end:   t.arena.Read8(off + 24),
	}
}

//pmem:volatile every caller persists the entry range it wrote (the per-op persist counts are the baseline's contract)
func (t *Tree) writeEntry(m *leafMeta, i int, e entry) {
	off := t.entryOff(m, i)
	t.arena.Write8(off, e.key)
	t.arena.Write8(off+8, e.val)
	t.arena.Write8(off+16, e.start)
	t.arena.Write8(off+24, e.end)
}

func (e entry) live() bool { return e.end == 0 }

// findLive locates the live entry for key, if any, and the insertion rank.
func (t *Tree) findLive(m *leafMeta, key uint64) (pos int, found int) {
	lo, hi := 0, m.n
	for lo < hi {
		mid := (lo + hi) / 2
		if t.arena.Read8(t.entryOff(m, mid)) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	found = -1
	for i := lo; i < m.n; i++ {
		e := t.readEntry(m, i)
		if e.key != key {
			break
		}
		if e.live() {
			found = i
		}
	}
	return lo, found
}

// shiftRight moves entries [pos, n) one slot right, persisting every line it
// dirties — the write amplification of direct sorted nodes (§3.2: "one
// modification of the data structure needs multiple writes").
func (t *Tree) shiftRight(m *leafMeta, pos int) {
	for i := m.n; i > pos; i-- {
		t.writeEntry(m, i, t.readEntry(m, i-1))
		t.arena.Persist(t.entryOff(m, i), entrySize)
	}
}

// commit bumps and persists the leaf's commit version — the atomic step
// that makes the new version entries visible after a crash.
func (t *Tree) commit(m *leafMeta) {
	t.version++
	t.arena.Write8(m.off+hdrVerOff, t.version)
	t.arena.Write8(m.off+hdrCountOff, uint64(m.n))
	t.arena.Persist(m.off, pmem.LineSize)
}

func (t *Tree) modify(key, value uint64, mustExist, mayExist bool) error {
	for {
		m := t.leafFor(key)
		pos, found := t.findLive(m, key)
		if found >= 0 && !mayExist {
			return tree.ErrKeyExists
		}
		if found < 0 && mustExist {
			return tree.ErrKeyNotFound
		}
		if m.n >= t.capacity {
			if err := t.split(m); err != nil {
				return err
			}
			continue
		}
		if found >= 0 {
			// End-tag the old version in place.
			t.arena.Write8(t.entryOff(m, found)+24, t.version+1)
			t.arena.Persist(t.entryOff(m, found), entrySize)
		}
		t.shiftRight(m, pos)
		t.writeEntry(m, pos, entry{key: key, val: value, start: t.version + 1})
		t.arena.Persist(t.entryOff(m, pos), entrySize)
		m.n++
		t.commit(m)
		return nil
	}
}

// Insert adds a key (conditional).
func (t *Tree) Insert(key, value uint64) error { return t.modify(key, value, false, false) }

// Update creates a new version of an existing key (conditional).
func (t *Tree) Update(key, value uint64) error { return t.modify(key, value, true, true) }

// Upsert writes the key unconditionally.
func (t *Tree) Upsert(key, value uint64) error { return t.modify(key, value, false, true) }

// Remove end-tags the live version of key.
func (t *Tree) Remove(key uint64) error {
	m := t.leafFor(key)
	_, found := t.findLive(m, key)
	if found < 0 {
		return tree.ErrKeyNotFound
	}
	t.arena.Write8(t.entryOff(m, found)+24, t.version+1)
	t.arena.Persist(t.entryOff(m, found), entrySize)
	t.commit(m)
	return nil
}

// Find binary-searches the sorted (multi-version) entries.
func (t *Tree) Find(key uint64) (uint64, bool) {
	m := t.leafFor(key)
	_, found := t.findLive(m, key)
	if found < 0 {
		return 0, false
	}
	return t.readEntry(m, found).val, true
}

// Scan walks the sorted leaves, emitting live versions only.
func (t *Tree) Scan(start uint64, max int, fn func(key, value uint64) bool) int {
	count := 0
	for m := t.leafFor(start); m != nil; m = m.next {
		for i := 0; i < m.n; i++ {
			e := t.readEntry(m, i)
			if !e.live() || e.key < start {
				continue
			}
			if max > 0 && count >= max {
				return count
			}
			count++
			if !fn(e.key, e.val) {
				return count
			}
		}
	}
	return count
}

// split garbage-collects dead versions and divides the leaf if the live set
// is still large (CDDS's version consolidation).
func (t *Tree) split(m *leafMeta) error {
	live := make([]entry, 0, m.n)
	for i := 0; i < m.n; i++ {
		if e := t.readEntry(m, i); e.live() {
			live = append(live, e)
		}
	}
	if len(live) < t.capacity/2 {
		t.writeLeaf(m.off, live, t.arena.Read8(m.off+hdrNextOff))
		t.arena.Persist(m.off, t.lsize)
		m.n = len(live)
		return nil
	}
	half := len(live) / 2
	splitKey := live[half].key
	newOff, err := t.arena.Alloc(t.lsize)
	if err != nil {
		return tree.ErrFull
	}
	t.writeLeaf(newOff, live[half:], t.arena.Read8(m.off+hdrNextOff))
	t.arena.Persist(newOff, t.lsize)
	t.writeLeaf(m.off, live[:half], newOff)
	t.arena.Persist(m.off, t.lsize)

	nm := &leafMeta{off: newOff, n: len(live) - half, next: m.next}
	t.addMeta(nm)
	m.n = half
	m.next = nm
	t.ix.Insert(splitKey, nm.id)
	return nil
}

//pmem:volatile the split/compaction caller persists the whole leaf with one ranged Persist
func (t *Tree) writeLeaf(off uint64, live []entry, next uint64) {
	t.arena.Zero(off, t.lsize)
	t.arena.Write8(off+hdrNextOff, next)
	t.arena.Write8(off+hdrCountOff, uint64(len(live)))
	t.arena.Write8(off+hdrVerOff, t.version)
	for i, e := range live {
		eoff := off + entOff + uint64(i)*entrySize
		t.arena.Write8(eoff, e.key)
		t.arena.Write8(eoff+8, e.val)
		t.arena.Write8(eoff+16, e.start)
		t.arena.Write8(eoff+24, e.end)
	}
}

// Len counts live records.
func (t *Tree) Len() int {
	n := 0
	t.Scan(0, 0, func(_, _ uint64) bool { n++; return true })
	return n
}
