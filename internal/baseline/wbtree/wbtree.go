// Package wbtree re-implements wB+Tree [Chen & Jin, VLDB'15] as the paper's
// evaluation does (§6): leaf entries are kept sorted through an indirection
// slot array, like RNTree, but without HTM the slot array exceeds the 8-byte
// atomic-write size, so every modify operation brackets the slot-array
// rewrite with a persisted valid bit — four persistent instructions per
// insert/update instead of RNTree's two (§3.2).
//
// The package also provides the wB+Tree-SO variant ("slot-only", §6): the
// whole slot array fits one atomic 8-byte word, removing the valid-bit
// persists (two persistent instructions, like RNTree) but capping leaves at
// seven entries, which deepens the tree and multiplies splits.
//
// wB+Tree is single-threaded (Table 1).
package wbtree

import (
	"rntree/internal/inner"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Leaf layout (cache-line rows):
//
// Full variant:
//
//	line 0  header : next (8B) | valid (8B)
//	line 1  slot   : 64-byte slot array — slot[0]=count, slot[1..]=order
//	line 2+ KVs    : 16-byte entries, capacity 64 (63 active)
//
// Slot-only variant:
//
//	line 0  header : next (8B) | slotword (8B: count + 7 indices)
//	line 1+ KVs    : 16-byte entries, capacity 7
const (
	hdrNextOff  = 0
	hdrValidOff = 8  // full variant: the valid bit
	hdrSlotOff  = 16 // slot-only variant: the 8-byte slot array

	slotLineOff = pmem.LineSize

	kvEntrySize = 16

	// SOCapacity is the slot-only leaf capacity: one count byte plus seven
	// index bytes in one atomic word ("it can only store 7 KV entries in
	// each leaf node", §6).
	SOCapacity = 7
	// DefaultLeafCapacity matches the paper's 64-entry leaves for the full
	// variant.
	DefaultLeafCapacity = 64
)

// Options configure a wB+Tree.
type Options struct {
	// SlotOnly selects the wB+Tree-SO variant.
	SlotOnly bool
	// LeafCapacity for the full variant (default 64); ignored for SlotOnly.
	LeafCapacity int
}

type leafMeta struct {
	off   uint64
	nlogs int     // allocation cursor
	free  []uint8 // recycled log slots (from updates/removes)
	next  *leafMeta
	id    uint64
}

// Tree is a wB+Tree (or wB+Tree-SO) instance.
type Tree struct {
	arena *pmem.Arena
	ix    *inner.Index
	metas []*leafMeta
	head  *leafMeta

	capacity  int
	maxActive int // full variant: capacity-1 (count byte steals a slot); SO: 7
	slotOnly  bool
	kvOff     uint64
	lsize     uint64
}

var _ tree.Index = (*Tree)(nil)

// New formats an empty wB+Tree in the arena.
func New(arena *pmem.Arena, opts Options) (*Tree, error) {
	t := &Tree{arena: arena, slotOnly: opts.SlotOnly}
	if opts.SlotOnly {
		t.capacity = SOCapacity
		t.maxActive = SOCapacity
		t.kvOff = pmem.LineSize // header line only
	} else {
		t.capacity = opts.LeafCapacity
		if t.capacity == 0 {
			t.capacity = DefaultLeafCapacity
		}
		if t.capacity > 64 {
			t.capacity = 64
		}
		t.maxActive = t.capacity - 1
		t.kvOff = 2 * pmem.LineSize // header + slot line
	}
	t.lsize = t.kvOff + uint64(t.capacity)*kvEntrySize
	off, err := arena.Alloc(t.lsize)
	if err != nil {
		return nil, tree.ErrFull
	}
	arena.Zero(off, t.lsize)
	if !t.slotOnly {
		arena.Write8(off+hdrValidOff, 1)
	}
	arena.Persist(off, t.lsize)
	m := &leafMeta{off: off}
	t.addMeta(m)
	t.head = m
	t.ix = inner.New(m.id)
	return t, nil
}

// Arena returns the backing arena for statistics.
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// LeafCount returns the number of leaves.
func (t *Tree) LeafCount() int { return len(t.metas) }

// SlotOnly reports whether this is the SO variant.
func (t *Tree) SlotOnly() bool { return t.slotOnly }

func (t *Tree) addMeta(m *leafMeta) {
	m.id = uint64(len(t.metas))
	t.metas = append(t.metas, m)
}

func (t *Tree) leafFor(key uint64) *leafMeta { return t.metas[t.ix.Seek(key)] }

func (t *Tree) entryOff(m *leafMeta, i int) uint64 {
	return m.off + t.kvOff + uint64(i)*kvEntrySize
}

// slotBuf holds a decoded slot array without heap allocation:
// sl[0] = count, sl[1..count] = log indices in key order.
type slotBuf [65]uint8

// readSlot decodes the slot array into the caller's buffer and returns the
// usable prefix.
func (t *Tree) readSlot(m *leafMeta, buf *slotBuf) []uint8 {
	sl := buf[:t.capacity+1]
	if t.slotOnly {
		w := t.arena.Read8(m.off + hdrSlotOff)
		for i := 0; i < 8 && i < len(sl); i++ {
			sl[i] = uint8(w >> (8 * i))
		}
		return sl
	}
	var line [pmem.LineSize]byte
	t.arena.ReadLine(m.off+slotLineOff, &line)
	copy(sl, line[:])
	return sl
}

// writeSlot rewrites the slot array with the persistence protocol of §3.2:
// the full variant needs valid=0 / rewrite / valid=1 (three persists, after
// the entry write's one); the slot-only variant is a single atomic word.
func (t *Tree) writeSlot(m *leafMeta, sl []uint8) {
	if t.slotOnly {
		var w uint64
		for i := 0; i < 8 && i < len(sl); i++ {
			w |= uint64(sl[i]) << (8 * i)
		}
		t.arena.Write8(m.off+hdrSlotOff, w)
		t.arena.Persist(m.off+hdrSlotOff, 8)
		return
	}
	t.arena.Write8(m.off+hdrValidOff, 0)
	t.arena.Persist(m.off+hdrValidOff, 8)
	var line [pmem.LineSize]byte
	copy(line[:], sl)
	t.arena.WriteLine(m.off+slotLineOff, &line)
	t.arena.Persist(m.off+slotLineOff, pmem.LineSize)
	t.arena.Write8(m.off+hdrValidOff, 1)
	t.arena.Persist(m.off+hdrValidOff, 8)
}

// search binary-searches the slot array.
func (t *Tree) search(m *leafMeta, sl []uint8, key uint64) (int, bool) {
	n := int(sl[0])
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if t.arena.Read8(t.entryOff(m, int(sl[1+mid]))) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ok := lo < n && t.arena.Read8(t.entryOff(m, int(sl[1+lo]))) == key
	return lo, ok
}

// allocLog returns a free log slot, preferring recycled ones.
func (t *Tree) allocLog(m *leafMeta) (int, bool) {
	if n := len(m.free); n > 0 {
		e := m.free[n-1]
		m.free = m.free[:n-1]
		return int(e), true
	}
	if m.nlogs < t.capacity {
		m.nlogs++
		return m.nlogs - 1, true
	}
	return 0, false
}

func (t *Tree) modify(key, value uint64, mustExist, mayExist bool) error {
	for {
		m := t.leafFor(key)
		var buf slotBuf
		sl := t.readSlot(m, &buf)
		pos, exists := t.search(m, sl, key)
		if exists && !mayExist {
			return tree.ErrKeyExists
		}
		if !exists && mustExist {
			return tree.ErrKeyNotFound
		}
		if !exists && int(sl[0]) >= t.maxActive {
			if err := t.split(m); err != nil {
				return err
			}
			continue
		}
		e, ok := t.allocLog(m)
		if !ok {
			if err := t.split(m); err != nil {
				return err
			}
			continue
		}
		off := t.entryOff(m, e)
		t.arena.Write8(off, key)
		t.arena.Write8(off+8, value)
		t.arena.Persist(off, kvEntrySize) // persist the entry
		if exists {
			old := sl[1+pos]
			sl[1+pos] = uint8(e)
			t.writeSlot(m, sl)
			m.free = append(m.free, old)
		} else {
			n := int(sl[0])
			copy(sl[2+pos:2+n], sl[1+pos:1+n])
			sl[1+pos] = uint8(e)
			sl[0] = uint8(n + 1)
			t.writeSlot(m, sl)
		}
		return nil
	}
}

// Insert adds a key (conditional).
func (t *Tree) Insert(key, value uint64) error { return t.modify(key, value, false, false) }

// Update rewrites an existing key (conditional).
func (t *Tree) Update(key, value uint64) error { return t.modify(key, value, true, true) }

// Upsert writes the key unconditionally.
func (t *Tree) Upsert(key, value uint64) error { return t.modify(key, value, false, true) }

// Remove deletes a key by rewriting the slot array (no entry write).
func (t *Tree) Remove(key uint64) error {
	m := t.leafFor(key)
	var buf slotBuf
	sl := t.readSlot(m, &buf)
	pos, exists := t.search(m, sl, key)
	if !exists {
		return tree.ErrKeyNotFound
	}
	old := sl[1+pos]
	n := int(sl[0])
	copy(sl[1+pos:1+n-1], sl[2+pos:1+n])
	sl[0] = uint8(n - 1)
	t.writeSlot(m, sl)
	m.free = append(m.free, old)
	return nil
}

// Find binary-searches the sorted slot array — the read-side payoff that
// lets wB+Tree match RNTree's find throughput (§6.2.1).
func (t *Tree) Find(key uint64) (uint64, bool) {
	m := t.leafFor(key)
	var buf slotBuf
	sl := t.readSlot(m, &buf)
	pos, ok := t.search(m, sl, key)
	if !ok {
		return 0, false
	}
	return t.arena.Read8(t.entryOff(m, int(sl[1+pos])) + 8), true
}

// Scan walks the sorted leaves via the slot arrays; no sorting needed.
func (t *Tree) Scan(start uint64, max int, fn func(key, value uint64) bool) int {
	count := 0
	var buf slotBuf
	for m := t.leafFor(start); m != nil; m = m.next {
		sl := t.readSlot(m, &buf)
		n := int(sl[0])
		for i := 0; i < n; i++ {
			off := t.entryOff(m, int(sl[1+i]))
			k := t.arena.Read8(off)
			if k < start {
				continue
			}
			if max > 0 && count >= max {
				return count
			}
			count++
			if !fn(k, t.arena.Read8(off+8)) {
				return count
			}
		}
	}
	return count
}

// split divides a full leaf. Crash consistency of baseline splits is out of
// scope (the paper benchmarks recovery only for RNTree).
func (t *Tree) split(m *leafMeta) error {
	var buf slotBuf
	sl := t.readSlot(m, &buf)
	n := int(sl[0])
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := 0; i < n; i++ {
		off := t.entryOff(m, int(sl[1+i]))
		keys[i] = t.arena.Read8(off)
		vals[i] = t.arena.Read8(off + 8)
	}
	if n < t.capacity/2 {
		// Mostly recycled slots: compact in place.
		t.writeLeaf(m.off, keys, vals, t.arena.Read8(m.off+hdrNextOff))
		t.arena.Persist(m.off, t.lsize)
		m.nlogs = n
		m.free = m.free[:0]
		return nil
	}
	half := n / 2
	splitKey := keys[half]
	newOff, err := t.arena.Alloc(t.lsize)
	if err != nil {
		return tree.ErrFull
	}
	t.writeLeaf(newOff, keys[half:], vals[half:], t.arena.Read8(m.off+hdrNextOff))
	t.arena.Persist(newOff, t.lsize)
	t.writeLeaf(m.off, keys[:half], vals[:half], newOff)
	t.arena.Persist(m.off, t.lsize)

	nm := &leafMeta{off: newOff, nlogs: n - half, next: m.next}
	t.addMeta(nm)
	m.nlogs = half
	m.free = m.free[:0]
	m.next = nm
	t.ix.Insert(splitKey, nm.id)
	return nil
}

// writeLeaf lays out a compacted leaf with an identity slot array.
//
//pmem:volatile the split caller persists the whole leaf with one ranged Persist
func (t *Tree) writeLeaf(off uint64, keys, vals []uint64, next uint64) {
	t.arena.Zero(off, t.lsize)
	t.arena.Write8(off+hdrNextOff, next)
	sl := make([]uint8, t.capacity+1)
	sl[0] = uint8(len(keys))
	for i := range keys {
		sl[1+i] = uint8(i)
		eoff := off + t.kvOff + uint64(i)*kvEntrySize
		t.arena.Write8(eoff, keys[i])
		t.arena.Write8(eoff+8, vals[i])
	}
	if t.slotOnly {
		var w uint64
		for i := 0; i < 8 && i < len(sl); i++ {
			w |= uint64(sl[i]) << (8 * i)
		}
		t.arena.Write8(off+hdrSlotOff, w)
	} else {
		var line [pmem.LineSize]byte
		copy(line[:], sl)
		t.arena.WriteLine(off+slotLineOff, &line)
		t.arena.Write8(off+hdrValidOff, 1)
	}
}

// Len counts records.
func (t *Tree) Len() int {
	n := 0
	t.Scan(0, 0, func(_, _ uint64) bool { n++; return true })
	return n
}
