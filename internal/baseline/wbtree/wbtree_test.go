package wbtree

import (
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
	"rntree/internal/tree/treetest"
)

func newTest(t testing.TB, opts Options) *Tree {
	t.Helper()
	a := pmem.New(pmem.Config{Size: 64 << 20})
	tr, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConformanceFull(t *testing.T) {
	treetest.RunConformance(t, "wbtree", func(t *testing.T) tree.Index {
		return newTest(t, Options{})
	})
}

func TestConformanceSlotOnly(t *testing.T) {
	treetest.RunConformance(t, "wbtree-so", func(t *testing.T) tree.Index {
		return newTest(t, Options{SlotOnly: true})
	})
}

func TestPersistCountsFull(t *testing.T) {
	// Table 1 / §3.2: wB+Tree needs 4 persistent instructions per
	// insert/update (entry, valid=0, slot array, valid=1) and 3 per remove.
	tr := newTest(t, Options{})
	for i := uint64(0); i < 20; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	a := tr.Arena()
	a.ResetStats()
	const k = 20
	for i := uint64(100); i < 100+k; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != 4*k {
		t.Fatalf("insert persists = %d, want %d", got, 4*k)
	}
	a.ResetStats()
	for i := uint64(0); i < k; i++ {
		if err := tr.Update(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != 4*k {
		t.Fatalf("update persists = %d, want %d", got, 4*k)
	}
	a.ResetStats()
	for i := uint64(0); i < k; i++ {
		if err := tr.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != 3*k {
		t.Fatalf("remove persists = %d, want %d", got, 3*k)
	}
}

func TestPersistCountsSlotOnly(t *testing.T) {
	// §6: the SO variant's slot array fits the atomic-write size, so two
	// persistent instructions suffice (entry + slot word); removes need one.
	tr := newTest(t, Options{SlotOnly: true})
	if err := tr.Insert(1000, 1); err != nil {
		t.Fatal(err)
	}
	a := tr.Arena()
	a.ResetStats()
	const k = 3 // stay below the 7-entry capacity
	for i := uint64(0); i < k; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != 2*k {
		t.Fatalf("insert persists = %d, want %d", got, 2*k)
	}
	a.ResetStats()
	for i := uint64(0); i < k; i++ {
		if err := tr.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Stats().Persists; got != k {
		t.Fatalf("remove persists = %d, want %d", got, k)
	}
}

func TestSlotOnlyCapacity(t *testing.T) {
	tr := newTest(t, Options{SlotOnly: true})
	for i := uint64(0); i < 100; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	// 100 keys / 7-entry leaves: many more leaves (and deeper trees) than
	// the full variant — the §6.2 trade-off.
	if tr.LeafCount() < 100/SOCapacity {
		t.Fatalf("only %d leaves for 100 keys at capacity 7", tr.LeafCount())
	}
	for i := uint64(0); i < 100; i++ {
		if v, ok := tr.Find(i); !ok || v != i {
			t.Fatalf("Find(%d) = %d,%v", i, v, ok)
		}
	}
}

func TestSlotReuseAfterRemove(t *testing.T) {
	tr := newTest(t, Options{})
	for i := uint64(0); i < 30; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	leaves := tr.LeafCount()
	// Churn within one leaf: removes recycle log slots, so the leaf must
	// not split.
	for round := 0; round < 100; round++ {
		if err := tr.Remove(5); err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(5, uint64(round)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.LeafCount() != leaves {
		t.Fatalf("churn split leaves: %d -> %d", leaves, tr.LeafCount())
	}
	if v, _ := tr.Find(5); v != 99 {
		t.Fatalf("Find(5) = %d", v)
	}
}

func TestValidBitProtocolOrder(t *testing.T) {
	// The valid bit must be 1 after every completed operation.
	tr := newTest(t, Options{})
	for i := uint64(0); i < 200; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
		for _, m := range tr.metas {
			if tr.arena.Read8(m.off+hdrValidOff) != 1 {
				t.Fatalf("leaf %#x left with valid=0", m.off)
			}
		}
	}
}
