package fault

import (
	"fmt"
	"math/rand"

	"rntree/internal/pmem"
	"rntree/internal/repl"
	"rntree/kv"
)

// Failover exploration: unlike Explore, which takes the whole machine down,
// these explorers kill ONE node of a replicated pair at every persist/fence
// site that node executes — mid record append, mid index persist, mid
// replica apply, mid promotion — while the other node keeps running. Crash
// hooks go only on the doomed node's arenas, so the survivor is never
// unwound mid-persist and its live state stays internally consistent, the
// way a real single-node failure leaves its peer.
//
// Three oracles fall out:
//
//   - primary-kill: the surviving replica must hold every completed
//     (acked, since the link is the wait-for-replica-durable mode) write —
//     zero acked-write loss — and must be promotable and able to serve a
//     probe write immediately.
//   - replica-kill: the live primary is unperturbed (it committed the
//     in-flight op before shipping it), and every crash image of the dead
//     replica recovers to a prefix-consistent cut and converges back to the
//     primary via the backlog catch-up, exactly the reconnect path.
//   - promotion: a crash anywhere inside the role cutover leaves the node
//     either fully a replica at the old epoch or fully a primary at the new
//     one — the packed epoch/role word cannot tear — with contents intact.

// nodeCrasher enumerates crash sites on one node's arenas and synthesizes
// that node's crash images at the chosen site (the survivor's arenas are
// not snapshotted — the survivor does not crash).
type nodeCrasher struct {
	arenas     []*pmem.Arena
	site, seen int
	rng        *rand.Rand
	cfg        Config
	images     []variantImage
}

func newNodeCrasher(arenas []*pmem.Arena, site int, cfg Config) *nodeCrasher {
	return &nodeCrasher{
		arenas: arenas, site: site, cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed ^ (int64(site)+1)*siteGamma)),
	}
}

func (c *nodeCrasher) install() {
	for i, a := range c.arenas {
		i := i
		a.SetHooks(&pmem.Hooks{
			BeforePersist: func(off, size uint64) { c.crash(i, true, off, size) },
			OnFence:       func() { c.crash(i, false, 0, 0) },
		})
	}
}

func (c *nodeCrasher) clear() {
	for _, a := range c.arenas {
		a.SetHooks(nil)
	}
}

func (c *nodeCrasher) crash(hit int, isPersist bool, off, size uint64) {
	if c.seen != c.site {
		c.seen++
		return
	}
	c.seen++
	pre := crashAll(c.arenas, nil, 0)
	c.images = append(c.images, variantImage{"pre", pre})
	if c.cfg.EvictProb > 0 {
		c.images = append(c.images, variantImage{"evict", crashAll(c.arenas, c.rng, c.cfg.EvictProb)})
	}
	if isPersist && c.cfg.Torn {
		if size == 0 {
			size = 1
		}
		first := off / pmem.LineSize
		nl := int((off+size-1)/pmem.LineSize - first + 1)
		if nl > 1 {
			torn := make([][]uint64, len(pre))
			for i := range pre {
				torn[i] = append([]uint64(nil), pre[i]...)
			}
			k := 1 + c.rng.Intn(nl-1)
			for _, i := range c.rng.Perm(nl)[:k] {
				c.arenas[hit].OverlayCacheLine(torn[hit], (first+uint64(i))*pmem.LineSize)
			}
			c.images = append(c.images, variantImage{"torn", torn})
		}
	}
	panic(replayStop{})
}

// countNodeSites counts the persist/fence sites arenas execute while fn
// runs.
func countNodeSites(arenas []*pmem.Arena, fn func() error) (int, error) {
	sites := 0
	h := &pmem.Hooks{
		BeforePersist: func(_, _ uint64) { sites++ },
		OnFence:       func() { sites++ },
	}
	for _, a := range arenas {
		a.SetHooks(h)
	}
	err := fn()
	for _, a := range arenas {
		a.SetHooks(nil)
	}
	return sites, err
}

// runPairToCrash applies ops through the pair, folding each completed op
// into committed, until the doomed node's crash hook unwinds the replay.
func runPairToCrash(pair *replPair, ops []Op, committed Model) (opIdx int, stopped bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(replayStop); ok {
				stopped = true
				return
			}
			panic(p)
		}
	}()
	for i, op := range ops {
		opIdx = i
		if err := pair.apply(op); err != nil {
			return i, false, fmt.Errorf("op %d (%s %d): %v", i, op.Kind, op.K, err)
		}
		kvApplyModel(committed, op)
	}
	return len(ops) - 1, false, nil
}

// safeReplOpen shields the explorers from panics inside recovery of a
// single node's image set.
func safeReplOpen(imgs [][]uint64) (s *kv.Store, err error) {
	defer func() {
		if p := recover(); p != nil {
			s, err = nil, fmt.Errorf("recovery panicked: %v", p)
		}
	}()
	return kv.Open(imgs, replOpts())
}

// ExploreFailover runs all three single-node-kill explorations and returns
// their reports (primary-kill, replica-kill, promotion) — the two-node half
// of the fault matrix.
func ExploreFailover(ops []Op, cfg Config) ([]*Report, error) {
	pk, err := ExplorePrimaryKill(ops, cfg)
	if err != nil {
		return nil, err
	}
	rk, err := ExploreReplicaKill(ops, cfg)
	if err != nil {
		return nil, err
	}
	pm, err := ExplorePromotion(ops, cfg)
	if err != nil {
		return nil, err
	}
	return []*Report{pk, rk, pm}, nil
}

// ExplorePrimaryKill kills the primary at each of its persist/fence sites
// and checks the failover contract on the surviving replica.
func ExplorePrimaryKill(ops []Op, cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rep := &Report{Target: "repl/primary-kill", ImageHash: fnvOffset}
	pair, err := newReplPair()
	if err != nil {
		return nil, err
	}
	full := Model{}
	sites, err := countNodeSites(pair.primary.Arenas(), func() error {
		for i, op := range ops {
			if err := pair.apply(op); err != nil {
				return fmt.Errorf("counting pass op %d (%s %d): %v", i, op.Kind, op.K, err)
			}
			kvApplyModel(full, op)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fault: repl/primary-kill: %v", err)
	}
	rep.Sites = sites

	// No-crash check: with the synchronous link every completed op is on
	// the replica the moment the call returns.
	if got := rangeModel(pair.replica); !modelsEqual(got, full) {
		rep.Violations = append(rep.Violations, Violation{
			Site: sites, Variant: "final", OpIndex: len(ops) - 1,
			Detail: "replica does not mirror the completed workload:" + modelsDiff(got, full),
		})
	}

	for _, site := range sampleSites(sites, cfg.MaxSites) {
		if err := primaryKillSite(ops, site, cfg, rep); err != nil {
			return rep, err
		}
		rep.Explored++
	}
	return rep, nil
}

func primaryKillSite(ops []Op, site int, cfg Config, rep *Report) error {
	pair, err := newReplPair()
	if err != nil {
		return err
	}
	cr := newNodeCrasher(pair.primary.Arenas(), site, cfg)
	cr.install()
	before := Model{}
	opIdx, stopped, err := runPairToCrash(pair, ops, before)
	cr.clear()
	if err != nil {
		return fmt.Errorf("fault: repl/primary-kill: site %d: %v", site, err)
	}
	if !stopped {
		return fmt.Errorf("fault: repl/primary-kill: site %d not reached on replay (%d of %d events) — workload is not deterministic",
			site, cr.seen, site+1)
	}
	after := cloneModel(before)
	kvApplyModel(after, ops[opIdx])

	// Oracle 1 — zero acked-write loss: the surviving replica, which never
	// crashed, must hold every completed op. The in-flight op was never
	// acked (the primary died inside its own persists, before or after
	// shipping), so the survivor legitimately sits at before or after.
	got := rangeModel(pair.replica)
	if !modelsEqual(got, before) && !modelsEqual(got, after) {
		rep.Violations = append(rep.Violations, Violation{
			Site: site, Variant: "survivor", OpIndex: opIdx,
			Detail: fmt.Sprintf("acked write lost on surviving replica (in-flight %s %d):%s",
				ops[opIdx].Kind, ops[opIdx].K, modelsDiff(got, before)),
		})
	} else {
		// Oracle 2 — the survivor is promotable and immediately serves
		// writes at a superseding epoch: the client-driven failover path.
		epoch, _ := pair.replica.ReplState()
		probeErr := pair.replica.SetReplState(epoch+1, repl.Primary)
		if probeErr == nil {
			probeErr = pair.replica.Put([]byte("probe-key"), []byte("post-failover"))
		}
		if probeErr == nil {
			v, err := pair.replica.Get([]byte("probe-key"))
			if err != nil {
				probeErr = err
			} else if string(v) != "post-failover" {
				probeErr = fmt.Errorf("probe read back %q", v)
			}
		}
		if probeErr != nil {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: "promote", OpIndex: opIdx,
				Detail: "survivor not serviceable after promotion: " + probeErr.Error(),
			})
		}
	}

	// Oracle 3 — the dead primary's crash images each recover to a prefix-
	// consistent cut, same contract as the single-node explorer.
	for _, v := range cr.images {
		rep.Images++
		rep.foldImages(site, v.name, v.imgs)
		s, err := safeReplOpen(v.imgs)
		if err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: "dead primary recovery failed: " + err.Error(),
			})
			continue
		}
		if m := rangeModel(s); !modelsEqual(m, before) && !modelsEqual(m, after) {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: fmt.Sprintf("dead primary recovered to neither pre- nor post-op state (in-flight %s %d):%s",
					ops[opIdx].Kind, ops[opIdx].K, modelsDiff(m, after)),
			})
		}
	}
	return nil
}

// ExploreReplicaKill kills the replica at each of its persist/fence sites —
// all of which run inside ReplApply, mid-ship — and checks that the live
// primary is unperturbed and that the recovered replica heals from the
// primary's backlog.
func ExploreReplicaKill(ops []Op, cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rep := &Report{Target: "repl/replica-kill", ImageHash: fnvOffset}
	pair, err := newReplPair()
	if err != nil {
		return nil, err
	}
	full := Model{}
	sites, err := countNodeSites(pair.replica.Arenas(), func() error {
		for i, op := range ops {
			if err := pair.apply(op); err != nil {
				return fmt.Errorf("counting pass op %d (%s %d): %v", i, op.Kind, op.K, err)
			}
			kvApplyModel(full, op)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("fault: repl/replica-kill: %v", err)
	}
	rep.Sites = sites

	for _, site := range sampleSites(sites, cfg.MaxSites) {
		if err := replicaKillSite(ops, site, cfg, rep); err != nil {
			return rep, err
		}
		rep.Explored++
	}
	return rep, nil
}

func replicaKillSite(ops []Op, site int, cfg Config, rep *Report) error {
	pair, err := newReplPair()
	if err != nil {
		return err
	}
	cr := newNodeCrasher(pair.replica.Arenas(), site, cfg)
	cr.install()
	before := Model{}
	opIdx, stopped, err := runPairToCrash(pair, ops, before)
	cr.clear()
	if err != nil {
		return fmt.Errorf("fault: repl/replica-kill: site %d: %v", site, err)
	}
	if !stopped {
		return fmt.Errorf("fault: repl/replica-kill: site %d not reached on replay (%d of %d events) — workload is not deterministic",
			site, cr.seen, site+1)
	}
	after := cloneModel(before)
	kvApplyModel(after, ops[opIdx])

	// Oracle 1 — the live primary committed the in-flight op before
	// shipping it (records ship from the commit hook, after the append and
	// index persists), so losing the replica mid-apply must leave the
	// primary exactly at the post-op state.
	pGot := rangeModel(pair.primary)
	if !modelsEqual(pGot, after) {
		rep.Violations = append(rep.Violations, Violation{
			Site: site, Variant: "primary-live", OpIndex: opIdx,
			Detail: fmt.Sprintf("live primary perturbed by replica death (in-flight %s %d):%s",
				ops[opIdx].Kind, ops[opIdx].K, modelsDiff(pGot, after)),
		})
	}

	// Oracle 2 — every crash image of the dead replica recovers to a
	// prefix-consistent cut and converges to the primary via the backlog
	// catch-up, the applier's resubscribe path.
	for _, v := range cr.images {
		rep.Images++
		rep.foldImages(site, v.name, v.imgs)
		s, err := safeReplOpen(v.imgs)
		if err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: "replica recovery failed: " + err.Error(),
			})
			continue
		}
		if m := rangeModel(s); !modelsEqual(m, before) && !modelsEqual(m, after) {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: fmt.Sprintf("replica recovered to neither pre- nor post-op state (in-flight %s %d):%s",
					ops[opIdx].Kind, ops[opIdx].K, modelsDiff(m, after)),
			})
			continue
		}
		if err := repl.CatchUp(pair.primary, s); err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: "catch-up after replica recovery failed: " + err.Error(),
			})
			continue
		}
		if m := rangeModel(s); !modelsEqual(m, pGot) {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: "replica diverged from primary after catch-up:" + modelsDiff(m, pGot),
			})
		}
	}
	return nil
}

// promoteEpoch is the epoch the promotion explorer cuts over to (the pair
// seeds both nodes at epoch 1).
const promoteEpoch = 2

// ExplorePromotion runs the full workload, then crashes the replica at
// every persist/fence site inside the promotion cutover itself. The packed
// epoch/role word makes the cutover a single atomic persist: every crash
// image must read back as entirely the old identity or entirely the new
// one, with contents untouched either way.
func ExplorePromotion(ops []Op, cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rep := &Report{Target: "repl/promote", ImageHash: fnvOffset}
	pair, err := newReplPair()
	if err != nil {
		return nil, err
	}
	full := Model{}
	for i, op := range ops {
		if err := pair.apply(op); err != nil {
			return nil, fmt.Errorf("fault: repl/promote: counting pass op %d (%s %d): %v", i, op.Kind, op.K, err)
		}
		kvApplyModel(full, op)
	}
	sites, err := countNodeSites(pair.replica.Arenas(), func() error {
		return pair.replica.SetReplState(promoteEpoch, repl.Primary)
	})
	if err != nil {
		return nil, fmt.Errorf("fault: repl/promote: counting pass: %v", err)
	}
	rep.Sites = sites

	for _, site := range sampleSites(sites, cfg.MaxSites) {
		if err := promotionSite(ops, full, site, cfg, rep); err != nil {
			return rep, err
		}
		rep.Explored++
	}
	return rep, nil
}

func promotionSite(ops []Op, full Model, site int, cfg Config, rep *Report) error {
	pair, err := newReplPair()
	if err != nil {
		return err
	}
	for i, op := range ops {
		if err := pair.apply(op); err != nil {
			return fmt.Errorf("fault: repl/promote: site %d: op %d (%s %d): %v", site, i, op.Kind, op.K, err)
		}
	}
	cr := newNodeCrasher(pair.replica.Arenas(), site, cfg)
	cr.install()
	stopped := func() (stopped bool) {
		defer func() {
			if p := recover(); p != nil {
				if _, ok := p.(replayStop); ok {
					stopped = true
					return
				}
				panic(p)
			}
		}()
		if err := pair.replica.SetReplState(promoteEpoch, repl.Primary); err != nil {
			panic(err)
		}
		return false
	}()
	cr.clear()
	if !stopped {
		return fmt.Errorf("fault: repl/promote: site %d not reached on replay (%d of %d events) — promotion is not deterministic",
			site, cr.seen, site+1)
	}

	opIdx := len(ops) - 1
	for _, v := range cr.images {
		rep.Images++
		rep.foldImages(site, v.name, v.imgs)
		s, err := safeReplOpen(v.imgs)
		if err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: "recovery mid-promotion failed: " + err.Error(),
			})
			continue
		}
		epoch, role := s.ReplState()
		oldID := epoch == 1 && role == repl.Replica
		newID := epoch == promoteEpoch && role == repl.Primary
		if !oldID && !newID {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: fmt.Sprintf("promotion cutover tore: recovered epoch=%d role=%d (want 1/replica or %d/primary)",
					epoch, role, promoteEpoch),
			})
			continue
		}
		if m := rangeModel(s); !modelsEqual(m, full) {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: "promotion changed store contents:" + modelsDiff(m, full),
			})
		}
	}
	return nil
}
