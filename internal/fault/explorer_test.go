package fault

import (
	"fmt"
	"strconv"
	"testing"

	"rntree/internal/pmem"
)

func mustExplore(t *testing.T, tgt Target, ops []Op, cfg Config) *Report {
	t.Helper()
	rep, err := Explore(tgt, ops, cfg)
	if err != nil {
		t.Fatalf("%s: %v", tgt.Name(), err)
	}
	return rep
}

// The tree workload (20 live keys at 7 entries/leaf ⇒ at least three
// leaves, so the split path necessarily runs) must survive a crash at every
// persist site, under eviction and torn multi-line persists, in both
// slot-array modes.
func TestExploreTreeAllSites(t *testing.T) {
	for _, dual := range []bool{false, true} {
		tgt := &TreeTarget{DualSlot: dual}
		rep := mustExplore(t, tgt, TreeWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
		if rep.Sites < 40 {
			t.Fatalf("%s: only %d sites — workload too shallow", tgt.Name(), rep.Sites)
		}
		if rep.Explored != rep.Sites {
			t.Fatalf("%s: explored %d of %d sites", tgt.Name(), rep.Explored, rep.Sites)
		}
		if !rep.Ok() {
			t.Fatalf("%s: %d violations, first: %s", tgt.Name(), len(rep.Violations), rep.Violations[0])
		}
		t.Logf("%s: %d sites, %d images, hash %#x", tgt.Name(), rep.Sites, rep.Images, rep.ImageHash)
	}
}

func TestExploreKVAllSites(t *testing.T) {
	rep := mustExplore(t, &KVTarget{}, KVWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 60 {
		t.Fatalf("only %d sites — workload too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("kv: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// The cached target runs the same store workload behind the server's DRAM
// hot-key cache: every crash site must recover to an image a fresh cache
// serves identically on the fill pass and the all-hits pass — the proof
// that the cache needs no persistence and recovery discards it cleanly.
func TestExploreCachedKVAllSites(t *testing.T) {
	rep := mustExplore(t, &CachedKVTarget{}, KVWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 60 {
		t.Fatalf("only %d sites — workload too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("kv+cache: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// The typed-object target: every crash site inside a multi-record intent
// commit (HSET/SADD/HDEL/SREM), the EXPIRE record write, and the expirer's
// reap composite must recover to all-or-nothing object contents, with no
// resurrected expired keys and headers agreeing with element records.
func TestExploreObjAllSites(t *testing.T) {
	rep := mustExplore(t, &ObjTarget{}, ObjWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 60 {
		t.Fatalf("only %d sites — workload too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("obj: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// Crashing inside the v1→v2 migration (which runs inside Open) must always
// leave an image that reopens to exactly the pre-migration contents.
func TestExploreKVV1Migration(t *testing.T) {
	rep := mustExplore(t, &KVV1Target{}, KVV1Workload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 20 {
		t.Fatalf("only %d sites — migration not exercised", rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("kv-v1: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// The forest workload spreads splits/updates/deletes over two partition
// arenas; every crash site — counted globally across both — must recover
// to a consistent forest, in both slot-array modes.
func TestExploreForestAllSites(t *testing.T) {
	for _, dual := range []bool{false, true} {
		tgt := &ForestTarget{DualSlot: dual}
		rep := mustExplore(t, tgt, ForestWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
		if rep.Sites < 40 {
			t.Fatalf("%s: only %d sites — workload too shallow", tgt.Name(), rep.Sites)
		}
		if rep.Explored != rep.Sites {
			t.Fatalf("%s: explored %d of %d sites", tgt.Name(), rep.Explored, rep.Sites)
		}
		if !rep.Ok() {
			t.Fatalf("%s: %d violations, first: %s", tgt.Name(), len(rep.Violations), rep.Violations[0])
		}
		t.Logf("%s: %d sites, %d images, hash %#x", tgt.Name(), rep.Sites, rep.Images, rep.ImageHash)
	}
}

// The partitioned kv store: record appends, index updates and compaction
// cuts now interleave across two arenas, and v3 recovery must rebuild both
// partitions from any machine-wide crash image set.
func TestExploreKVV3AllSites(t *testing.T) {
	rep := mustExplore(t, &KVV3Target{}, KVWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 60 {
		t.Fatalf("only %d sites — workload too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("kv-v3: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// The heap allocator driven directly: every allocator-metadata persist
// site — undo-log arm, metadata writes inside the window, commit flips,
// bump advances, and the segment-append cutover — must leave an image that
// still carries the heap format, passes CheckHeap, and recovers the block
// directory to a pre- or post-op state under eviction and torn persists.
func TestExploreHeapAllSites(t *testing.T) {
	rep := mustExplore(t, &HeapTarget{}, HeapWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 60 {
		t.Fatalf("only %d sites — workload too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("heap: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// Crashing inside the v3→v4 superblock upgrade (which runs inside Open, in
// each partition) must always leave an image that reopens to exactly the
// pre-upgrade contents — before the root flip as a v3 store that reruns
// the upgrade, after it as a finished v4 store.
func TestExploreKVV3Upgrade(t *testing.T) {
	rep := mustExplore(t, &KVV3UpTarget{}, KVV3UpWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 20 {
		t.Fatalf("only %d sites — upgrade not exercised", rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("kv-v3up: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// Same seed ⇒ byte-identical crash images (same ImageHash); a different
// seed draws different eviction/torn subsets. This is what makes a CI
// violation replayable from its logged seed.
func TestExploreSeededDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, EvictProb: 0.5, Torn: true}
	a := mustExplore(t, &TreeTarget{}, TreeWorkload(), cfg)
	b := mustExplore(t, &TreeTarget{}, TreeWorkload(), cfg)
	if a.ImageHash != b.ImageHash || a.Sites != b.Sites || a.Images != b.Images {
		t.Fatalf("same seed diverged: %#x/%d/%d vs %#x/%d/%d",
			a.ImageHash, a.Sites, a.Images, b.ImageHash, b.Sites, b.Images)
	}
	c := mustExplore(t, &TreeTarget{}, TreeWorkload(), Config{Seed: 8, EvictProb: 0.5, Torn: true})
	if c.ImageHash == a.ImageHash {
		t.Fatal("different seed produced identical images")
	}
}

func TestSampleSites(t *testing.T) {
	if got := sampleSites(5, 0); len(got) != 5 {
		t.Fatalf("uncapped: %v", got)
	}
	got := sampleSites(100, 10)
	if len(got) != 10 || got[0] != 0 || got[9] != 90 {
		t.Fatalf("capped: %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("not strictly increasing: %v", got)
		}
	}
	if got := sampleSites(3, 10); len(got) != 3 {
		t.Fatalf("cap above n: %v", got)
	}
}

// ---------------------------------------------------------------------------
// The oracle must actually catch bugs: a toy store that persists its count
// word BEFORE the record it indexes (the classic reordering bug every
// design in PAPERS.md exists to avoid) has a one-persist window where the
// durable count points at an unpersisted record.

type toyTarget struct {
	broken bool
	arena  *pmem.Arena
	n      uint64
}

const (
	toyCountOff = pmem.RootSize
	toyRecBase  = pmem.RootSize + pmem.LineSize // one line per record
)

func (t *toyTarget) Name() string {
	if t.broken {
		return "toy-broken"
	}
	return "toy"
}

func (t *toyTarget) Reset() ([]*pmem.Arena, Model, error) {
	t.arena = pmem.New(pmem.Config{Size: 1 << 16, VolatileAlloc: true})
	t.n = 0
	return []*pmem.Arena{t.arena}, Model{}, nil
}

func (t *toyTarget) Apply(op Op) error {
	if op.Kind != OpInsert {
		return fmt.Errorf("toy: unsupported op %s", op.Kind)
	}
	a, rec := t.arena, toyRecBase+t.n*pmem.LineSize
	a.Write8(rec, op.K)
	a.Write8(rec+8, op.V)
	a.Write8(toyCountOff, t.n+1)
	if t.broken {
		// WRONG: the index commit is durable before the record it names.
		a.Persist(toyCountOff, 8)
		a.Persist(rec, 16)
	} else {
		a.Persist(rec, 16)
		a.Persist(toyCountOff, 8)
	}
	t.n++
	return nil
}

func (t *toyTarget) ApplyModel(m Model, op Op) {
	m[strconv.FormatUint(op.K, 10)] = strconv.FormatUint(op.V, 10)
}

func (t *toyTarget) Recover(imgs [][]uint64) (Model, error) {
	a := pmem.Recover(imgs[0], pmem.Config{})
	got := Model{}
	for i := uint64(0); i < a.Read8(toyCountOff); i++ {
		rec := toyRecBase + i*pmem.LineSize
		got[strconv.FormatUint(a.Read8(rec), 10)] = strconv.FormatUint(a.Read8(rec+8), 10)
	}
	return got, nil
}

func toyWorkload() []Op {
	var ops []Op
	for i := uint64(1); i <= 5; i++ {
		ops = append(ops, Op{OpInsert, i, 10 * i})
	}
	return ops
}

func TestBrokenOrderingCaught(t *testing.T) {
	// The correct ordering passes every site — the oracle is not trigger-happy.
	rep := mustExplore(t, &toyTarget{}, toyWorkload(), Config{Seed: 1})
	if !rep.Ok() {
		t.Fatalf("correct ordering flagged: %s", rep.Violations[0])
	}
	// The broken ordering is caught (without eviction or tearing: pure
	// crash-point enumeration finds the window).
	rep = mustExplore(t, &toyTarget{broken: true}, toyWorkload(), Config{Seed: 1})
	if rep.Ok() {
		t.Fatal("broken persist ordering not caught by the explorer")
	}
	v := rep.Violations[0]
	t.Logf("caught: %s", v)
	if v.Variant != "pre" {
		t.Fatalf("expected a pre-image violation, got %q", v.Variant)
	}
}
