// Package fault is a deterministic fault-injection subsystem for the
// simulated-NVM stack. Its centrepiece is a crash-point explorer (Explore)
// that, instead of sampling random crash points the way the crash fuzzers
// do, *enumerates* every persistent-instruction site a workload executes
// and crashes the program at each one in turn — synthesizing the crash
// image exactly as the hardware model allows it to exist at that point
// (nothing of the in-flight persist durable, a torn subset of its lines
// durable, extra dirty lines evicted early) — then runs recovery and checks
// a durability oracle: the recovered contents must equal a prefix-consistent
// cut of the issued operations.
//
// NV-Tree and FPTree argue their failure-atomicity windows by hand-listing
// them; this package lists ours mechanically, for every layer from pmem up
// through the kv store (including value-log compaction and v1-image
// migration, whose crash windows live inside recovery itself).
//
// Everything is seeded: the same Config against the same Target replays the
// same crash images byte for byte (Report.ImageHash), so a violation found
// in CI reproduces from its logged seed and site index.
//
// The companion fault mode — spurious HTM abort storms — lives in
// internal/htm (Config.SpuriousAbortProb) and is exercised by the
// concurrent-tree tests.
package fault

import (
	"fmt"

	"rntree/internal/pmem"
)

// OpKind enumerates the workload operations a Target can apply.
type OpKind uint8

const (
	// OpInsert adds a key that must not exist (tree Insert, kv Put).
	OpInsert OpKind = iota
	// OpUpdate overwrites a key that must exist (tree Update, kv Put).
	OpUpdate
	// OpDelete removes a key that must exist.
	OpDelete
	// OpCompact runs value-log compaction (kv only) — semantically a no-op.
	OpCompact
	// OpOpen opens/migrates a pre-loaded image (kv v1-migration target) —
	// semantically a no-op; its persist sites are the migration itself.
	OpOpen
)

func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpCompact:
		return "compact"
	case OpOpen:
		return "open"
	}
	return fmt.Sprintf("opkind(%d)", uint8(k))
}

// Op is one workload operation. K and V are abstract; each target maps them
// onto its own key/value representation (the tree uses them directly, the
// kv targets format them into byte strings).
type Op struct {
	Kind OpKind
	K, V uint64
}

// Model is the oracle's view of the target's contents: target-encoded keys
// to target-encoded values. Each target uses the same encoding in
// ApplyModel and Recover, so the explorer only ever compares maps.
type Model = map[string]string

// Target adapts one layer of the stack to the explorer. Implementations
// must be deterministic: replaying the same ops on a fresh Reset must
// execute the identical sequence of persistent instructions, because the
// explorer aligns crash sites across runs by ordinal (a single global
// ordinal across all of the target's arenas).
type Target interface {
	// Name identifies the target in reports.
	Name() string
	// Reset builds a fresh instance and returns its arenas (one per
	// partition for forest-backed targets, a single-element slice
	// otherwise) plus the model of contents already durable at reset time
	// (non-empty only for targets that pre-load state, e.g. the
	// v1-migration target). The explorer installs its hooks *after* Reset
	// returns, so format-time persists are not crash sites.
	Reset() ([]*pmem.Arena, Model, error)
	// Apply executes op against the live instance.
	Apply(op Op) error
	// ApplyModel applies op's semantics to m.
	ApplyModel(m Model, op Op)
	// Recover reopens the crash image set (one image per arena, in Reset
	// order), verifies structural invariants, and returns the recovered
	// contents.
	Recover(imgs [][]uint64) (Model, error)
}

func cloneModel(m Model) Model {
	c := make(Model, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func modelsEqual(a, b Model) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// modelsDiff renders a short sample of the mismatch between got and want.
func modelsDiff(got, want Model) string {
	s := ""
	n := 0
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			s += fmt.Sprintf(" want[%s]=%s got=%q;", k, v, gv)
			if n++; n >= 4 {
				return s + " ..."
			}
		}
	}
	for k, v := range got {
		if _, ok := want[k]; !ok {
			s += fmt.Sprintf(" extra[%s]=%s;", k, v)
			if n++; n >= 8 {
				return s + " ..."
			}
		}
	}
	return s
}
