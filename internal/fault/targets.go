package fault

import (
	"fmt"
	"strconv"
	"strings"

	"rntree/internal/core"
	"rntree/internal/forest"
	"rntree/internal/obj"
	"rntree/internal/pmem"
	"rntree/internal/server"
	"rntree/kv"
)

// ---------------------------------------------------------------------------
// core.Tree target

// TreeTarget drives a core.Tree with a small leaf capacity so the workload
// reaches the split path (whole-leaf undo log) as well as the two-persist
// insert/update and the delete paths.
type TreeTarget struct {
	DualSlot bool
	arena    *pmem.Arena
	tree     *core.Tree
}

const (
	treeArenaSize = 1 << 20
	treeLeafCap   = 8 // capacity-1 = 7 live entries per leaf: splits early
)

func (t *TreeTarget) Name() string {
	if t.DualSlot {
		return "tree+ds"
	}
	return "tree"
}

func (t *TreeTarget) opts() core.Options {
	return core.Options{DualSlot: t.DualSlot, LeafCapacity: treeLeafCap}
}

func (t *TreeTarget) Reset() ([]*pmem.Arena, Model, error) {
	t.arena = pmem.New(pmem.Config{Size: treeArenaSize})
	tr, err := core.New(t.arena, t.opts())
	if err != nil {
		return nil, nil, err
	}
	t.tree = tr
	return []*pmem.Arena{t.arena}, Model{}, nil
}

func (t *TreeTarget) Apply(op Op) error {
	switch op.Kind {
	case OpInsert:
		return t.tree.Insert(op.K, op.V)
	case OpUpdate:
		return t.tree.Update(op.K, op.V)
	case OpDelete:
		return t.tree.Remove(op.K)
	}
	return fmt.Errorf("tree target: unsupported op %s", op.Kind)
}

func (t *TreeTarget) ApplyModel(m Model, op Op) {
	k := strconv.FormatUint(op.K, 10)
	switch op.Kind {
	case OpInsert, OpUpdate:
		m[k] = strconv.FormatUint(op.V, 10)
	case OpDelete:
		delete(m, k)
	}
}

func (t *TreeTarget) Recover(imgs [][]uint64) (Model, error) {
	if len(imgs) != 1 {
		return nil, fmt.Errorf("tree target: %d images, want 1", len(imgs))
	}
	a := pmem.Recover(imgs[0], pmem.Config{})
	tr, err := core.CrashRecover(a, t.opts())
	if err != nil {
		return nil, err
	}
	if err := tr.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("recovered tree invalid: %v", err)
	}
	got := Model{}
	tr.Scan(0, 0, func(k, v uint64) bool {
		got[strconv.FormatUint(k, 10)] = strconv.FormatUint(v, 10)
		return true
	})
	return got, nil
}

// TreeWorkload exercises every single-threaded mutation path: inserts deep
// enough to split leaves several times (20 live keys at 7 per leaf), then
// updates (log-entry reuse) and deletes (tombstone slots).
func TreeWorkload() []Op {
	var ops []Op
	for i := uint64(0); i < 20; i++ {
		ops = append(ops, Op{OpInsert, i * 7 % 97, 1000 + i})
	}
	for i := uint64(0); i < 6; i++ {
		ops = append(ops, Op{OpUpdate, i * 7 % 97, 2000 + i})
	}
	for i := uint64(6); i < 12; i++ {
		ops = append(ops, Op{OpDelete, i * 7 % 97, 0})
	}
	return ops
}

// ---------------------------------------------------------------------------
// kv.Store target

// KVTarget drives a kv.Store with tiny chunks so the workload crosses chunk
// boundaries (newShardChunk's chunk-link persists) and with compaction ops
// mixed in, crashing inside record appends, index updates, and the
// compaction cut.
type KVTarget struct {
	store *kv.Store
}

func kvOpts() kv.Options {
	return kv.Options{
		ArenaSize: 4 << 20,
		ChunkSize: 512, // ~7 records per chunk: frequent chunk-link persists
		Shards:    2,
	}
}

func (t *KVTarget) Name() string { return "kv" }

func (t *KVTarget) Reset() ([]*pmem.Arena, Model, error) {
	s, err := kv.New(kvOpts())
	if err != nil {
		return nil, nil, err
	}
	t.store = s
	return s.Arenas(), Model{}, nil
}

// kvKey/kvValue are the target's key/value encoding; values vary in length
// with the key so records land on different line alignments.
func kvKey(k uint64) string { return fmt.Sprintf("k%04d", k) }

func kvValue(k, v uint64) string {
	return fmt.Sprintf("v%d.%s", v, strings.Repeat("x", int(k%29)))
}

func (t *KVTarget) Apply(op Op) error {
	switch op.Kind {
	case OpInsert, OpUpdate:
		return t.store.Put([]byte(kvKey(op.K)), []byte(kvValue(op.K, op.V)))
	case OpDelete:
		return t.store.Delete([]byte(kvKey(op.K)))
	case OpCompact:
		return t.store.Compact()
	}
	return fmt.Errorf("kv target: unsupported op %s", op.Kind)
}

func kvApplyModel(m Model, op Op) {
	switch op.Kind {
	case OpInsert, OpUpdate:
		m[kvKey(op.K)] = kvValue(op.K, op.V)
	case OpDelete:
		delete(m, kvKey(op.K))
	case OpCompact, OpOpen:
		// Semantic no-ops: contents unchanged.
	}
}

func (t *KVTarget) ApplyModel(m Model, op Op) { kvApplyModel(m, op) }

func kvRecover(imgs [][]uint64, opts kv.Options) (Model, error) {
	s, err := kv.Open(imgs, opts)
	if err != nil {
		return nil, err
	}
	got := Model{}
	s.Range(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	return got, nil
}

func (t *KVTarget) Recover(imgs [][]uint64) (Model, error) {
	return kvRecover(imgs, kvOpts())
}

// KVWorkload covers Put (fresh and overwriting), Delete, and two Compacts —
// the first with dead records and tombstones to reclaim, the second
// exercising the retired-chunk free path.
func KVWorkload() []Op {
	var ops []Op
	for i := uint64(0); i < 14; i++ {
		ops = append(ops, Op{OpInsert, i, 100 + i})
	}
	for i := uint64(0); i < 6; i++ {
		ops = append(ops, Op{OpUpdate, i, 200 + i})
	}
	for i := uint64(10); i < 14; i++ {
		ops = append(ops, Op{OpDelete, i, 0})
	}
	ops = append(ops, Op{Kind: OpCompact})
	for i := uint64(20); i < 26; i++ {
		ops = append(ops, Op{OpInsert, i, 300 + i})
	}
	ops = append(ops,
		Op{OpUpdate, 20, 400},
		Op{OpUpdate, 21, 401},
		Op{OpDelete, 22, 0},
		Op{Kind: OpCompact},
	)
	return ops
}

// ---------------------------------------------------------------------------
// kv.Store + DRAM hot-key cache target

// CachedKVTarget drives a kv.Store fronted by the server's DRAM hot-key
// cache, wired exactly as internal/server.handle wires it: every GET is a
// cache-first read-through (FillEpoch → store read → CommitFill), every
// mutation invalidates after the store commit. The cache holds no
// persistent state, so the thing to prove here is the recovery contract
// from cache.go: a crash discards the cache wholesale, and a fresh server
// over the recovered image — with a fresh, empty cache — serves exactly
// the model state both on the filling pass and on the all-hits pass that
// follows it. A cache that survived recovery by accident (or a read-through
// that installs mismatched values) fails the image comparison.
type CachedKVTarget struct {
	store *kv.Store
	cache *server.Cache
}

func (t *CachedKVTarget) Name() string { return "kv+cache" }

func cachedKVCacheCfg() server.CacheConfig {
	// Small and 2-sharded: evictions and shared-shard epoch bumps happen
	// within the workload's few dozen keys.
	return server.CacheConfig{Enable: true, MaxEntries: 16, Shards: 2}
}

func (t *CachedKVTarget) Reset() ([]*pmem.Arena, Model, error) {
	s, err := kv.New(kvOpts())
	if err != nil {
		return nil, nil, err
	}
	t.store = s
	t.cache = server.NewCache(cachedKVCacheCfg())
	return s.Arenas(), Model{}, nil
}

// readThrough is the serving path's GET: cache hit, or store read guarded
// by the shard epoch (cache.go rule 2).
func (t *CachedKVTarget) readThrough(key []byte) ([]byte, error) {
	if v, ok := t.cache.Get(key); ok {
		return v, nil
	}
	epoch := t.cache.FillEpoch(key)
	v, err := t.store.Get(key)
	if err != nil {
		return nil, err
	}
	t.cache.CommitFill(key, v, epoch)
	return v, nil
}

func (t *CachedKVTarget) Apply(op Op) error {
	key := []byte(kvKey(op.K))
	switch op.Kind {
	case OpInsert, OpUpdate:
		// Warm the cache with the superseded value first, so the
		// invalidation below is load-bearing, then mutate and invalidate
		// after the commit (cache.go rule 1).
		if _, err := t.readThrough(key); err != nil && err != kv.ErrNotFound {
			return err
		}
		if err := t.store.Put(key, []byte(kvValue(op.K, op.V))); err != nil {
			return err
		}
		t.cache.Invalidate(key)
		// Read back through the cache: the fill path must re-install the
		// new value, not resurrect the superseded one.
		v, err := t.readThrough(key)
		if err != nil {
			return err
		}
		if string(v) != kvValue(op.K, op.V) {
			return fmt.Errorf("kv+cache: read-through after put of %s returned %q", key, v)
		}
		return nil
	case OpDelete:
		if err := t.store.Delete(key); err != nil {
			return err
		}
		t.cache.Invalidate(key)
		if _, err := t.readThrough(key); err != kv.ErrNotFound {
			return fmt.Errorf("kv+cache: read-through after delete of %s: %v", key, err)
		}
		return nil
	case OpCompact:
		// Compaction rewrites records without changing contents; the cache
		// needs no invalidation and must keep serving the same values.
		return t.store.Compact()
	}
	return fmt.Errorf("kv+cache target: unsupported op %s", op.Kind)
}

func (t *CachedKVTarget) ApplyModel(m Model, op Op) { kvApplyModel(m, op) }

// Recover reopens the store from the crash images behind a FRESH cache —
// recovery discards DRAM — and builds the model by reading every surviving
// key through the cache twice: the first pass fills, the second must be
// all hits and agree byte-for-byte with the first. Any disagreement (or a
// second-pass miss) is reported as a divergent model entry so the explorer
// flags it as a violation.
func (t *CachedKVTarget) Recover(imgs [][]uint64) (Model, error) {
	s, err := kv.Open(imgs, kvOpts())
	if err != nil {
		return nil, err
	}
	cache := server.NewCache(cachedKVCacheCfg())
	through := func(key []byte) ([]byte, error) {
		if v, ok := cache.Get(key); ok {
			return v, nil
		}
		epoch := cache.FillEpoch(key)
		v, err := s.Get(key)
		if err != nil {
			return nil, err
		}
		cache.CommitFill(key, v, epoch)
		return v, nil
	}
	var keys []string
	s.Range(func(k, _ []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	got := Model{}
	for _, k := range keys {
		first, err := through([]byte(k))
		if err != nil {
			return nil, fmt.Errorf("kv+cache recover: fill pass Get(%s): %v", k, err)
		}
		second, err := through([]byte(k))
		if err != nil {
			return nil, fmt.Errorf("kv+cache recover: hit pass Get(%s): %v", k, err)
		}
		if string(first) != string(second) {
			got[k] = fmt.Sprintf("CACHE-DIVERGED fill=%q hit=%q", first, second)
			continue
		}
		got[k] = string(first)
	}
	return got, nil
}

// ---------------------------------------------------------------------------
// kv v1-image migration target

// KVV1Target pre-loads a legacy v1 (single chunk chain, no persisted
// geometry) store image; the workload's first op is OpOpen, so the v1→v2
// migration's own persist sites — shard-table setup, record re-appends,
// superblock swap, legacy-chain teardown — become crash points. A crash
// image taken mid-migration must reopen to exactly the pre-migration
// contents.
type KVV1Target struct {
	arena *pmem.Arena
	store *kv.Store
}

func (t *KVV1Target) Name() string { return "kv-v1" }

// kvV1OpenOpts are the options for opening/migrating the v1 image. A v1
// superblock never persisted its geometry, so ChunkSize must match the
// creating store; Shards is the post-migration shard count.
func kvV1OpenOpts() kv.Options {
	return kv.Options{ArenaSize: 4 << 20, ChunkSize: 512, Shards: 2}
}

func (t *KVV1Target) Reset() ([]*pmem.Arena, Model, error) {
	s, err := kv.New(kv.Options{ArenaSize: 4 << 20, ChunkSize: 512, Shards: 1})
	if err != nil {
		return nil, nil, err
	}
	base := Model{}
	for i := uint64(0); i < 10; i++ {
		k, v := kvKey(i), kvValue(i, 100+i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			return nil, nil, err
		}
		base[k] = v
	}
	// One tombstone and one overwrite, so migration carries dead records.
	if err := s.Delete([]byte(kvKey(9))); err != nil {
		return nil, nil, err
	}
	delete(base, kvKey(9))
	k, v := kvKey(0), kvValue(0, 150)
	if err := s.Put([]byte(k), []byte(v)); err != nil {
		return nil, nil, err
	}
	base[k] = v
	if err := s.DowngradeV1(); err != nil {
		return nil, nil, err
	}
	// Reopen the durable image on a fresh arena, as a real restart would:
	// cache == nvm == the v1 image, with no transient leftovers.
	t.arena = pmem.Recover(s.Arenas()[0].CrashImage(nil, 0), pmem.Config{})
	t.store = nil
	return []*pmem.Arena{t.arena}, base, nil
}

func (t *KVV1Target) Apply(op Op) error {
	if op.Kind == OpOpen {
		s, err := kv.OpenArenas([]*pmem.Arena{t.arena}, kvV1OpenOpts())
		if err != nil {
			return err
		}
		t.store = s
		return nil
	}
	if t.store == nil {
		return fmt.Errorf("kv-v1 target: %s before OpOpen", op.Kind)
	}
	switch op.Kind {
	case OpInsert, OpUpdate:
		return t.store.Put([]byte(kvKey(op.K)), []byte(kvValue(op.K, op.V)))
	case OpDelete:
		return t.store.Delete([]byte(kvKey(op.K)))
	case OpCompact:
		return t.store.Compact()
	}
	return fmt.Errorf("kv-v1 target: unsupported op %s", op.Kind)
}

func (t *KVV1Target) ApplyModel(m Model, op Op) { kvApplyModel(m, op) }

func (t *KVV1Target) Recover(imgs [][]uint64) (Model, error) {
	return kvRecover(imgs, kvV1OpenOpts())
}

// KVV1Workload migrates the pre-loaded v1 image, then keeps using the
// migrated store: fresh inserts, overwrites of migrated keys, and a delete
// of a migrated key.
func KVV1Workload() []Op {
	return []Op{
		{Kind: OpOpen},
		{OpInsert, 30, 500},
		{OpInsert, 31, 501},
		{OpInsert, 32, 502},
		{OpUpdate, 1, 600},
		{OpUpdate, 2, 601},
		{OpDelete, 3, 0},
	}
}

// ---------------------------------------------------------------------------
// forest target

// ForestTarget drives a two-partition forest.Forest with a small leaf
// capacity: crash sites land inside one partition's mutation while the
// other partition's arena is quiescent, and recovery must reassemble the
// whole forest from the multi-arena image set (superblock checks included).
type ForestTarget struct {
	DualSlot bool
	forest   *forest.Forest
}

func (t *ForestTarget) Name() string {
	if t.DualSlot {
		return "forest+ds"
	}
	return "forest"
}

func (t *ForestTarget) opts() forest.Options {
	return forest.Options{
		Partitions: 2,
		ArenaSize:  treeArenaSize,
		Tree:       core.Options{DualSlot: t.DualSlot, LeafCapacity: treeLeafCap},
	}
}

func (t *ForestTarget) Reset() ([]*pmem.Arena, Model, error) {
	f, err := forest.New(t.opts())
	if err != nil {
		return nil, nil, err
	}
	t.forest = f
	arenas := make([]*pmem.Arena, f.Partitions())
	for i := range arenas {
		arenas[i] = f.Partition(i).Arena()
	}
	return arenas, Model{}, nil
}

func (t *ForestTarget) Apply(op Op) error {
	switch op.Kind {
	case OpInsert:
		return t.forest.Insert(op.K, op.V)
	case OpUpdate:
		return t.forest.Update(op.K, op.V)
	case OpDelete:
		return t.forest.Remove(op.K)
	}
	return fmt.Errorf("forest target: unsupported op %s", op.Kind)
}

func (t *ForestTarget) ApplyModel(m Model, op Op) {
	k := strconv.FormatUint(op.K, 10)
	switch op.Kind {
	case OpInsert, OpUpdate:
		m[k] = strconv.FormatUint(op.V, 10)
	case OpDelete:
		delete(m, k)
	}
}

func (t *ForestTarget) Recover(imgs [][]uint64) (Model, error) {
	f, err := forest.Open(imgs, t.opts())
	if err != nil {
		return nil, err
	}
	if err := f.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("recovered forest invalid: %v", err)
	}
	got := Model{}
	f.Scan(0, 0, func(k, v uint64) bool {
		got[strconv.FormatUint(k, 10)] = strconv.FormatUint(v, 10)
		return true
	})
	return got, nil
}

// ForestWorkload is TreeWorkload's shape over keys that Mix64 spreads
// across both partitions: splits, updates and deletes land in each
// partition's arena, so crash sites cover both.
func ForestWorkload() []Op {
	var ops []Op
	for i := uint64(0); i < 20; i++ {
		ops = append(ops, Op{OpInsert, i * 7 % 97, 1000 + i})
	}
	for i := uint64(0); i < 6; i++ {
		ops = append(ops, Op{OpUpdate, i * 7 % 97, 2000 + i})
	}
	for i := uint64(6); i < 12; i++ {
		ops = append(ops, Op{OpDelete, i * 7 % 97, 0})
	}
	return ops
}

// ---------------------------------------------------------------------------
// kv v3 partitioned target

// KVV3Target drives a two-partition kv.Store: crash sites land inside one
// partition's record append, index update, chunk link or compaction cut,
// and the v3 recovery path must rebuild both partitions from their own
// superblocks and reject nothing from a legitimate machine-wide crash.
type KVV3Target struct {
	store *kv.Store
}

func kvV3Opts() kv.Options {
	return kv.Options{
		ArenaSize:  8 << 20,
		ChunkSize:  512,
		Shards:     1,
		Partitions: 2,
	}
}

func (t *KVV3Target) Name() string { return "kv-v3" }

func (t *KVV3Target) Reset() ([]*pmem.Arena, Model, error) {
	s, err := kv.New(kvV3Opts())
	if err != nil {
		return nil, nil, err
	}
	t.store = s
	return s.Arenas(), Model{}, nil
}

func (t *KVV3Target) Apply(op Op) error {
	switch op.Kind {
	case OpInsert, OpUpdate:
		return t.store.Put([]byte(kvKey(op.K)), []byte(kvValue(op.K, op.V)))
	case OpDelete:
		return t.store.Delete([]byte(kvKey(op.K)))
	case OpCompact:
		return t.store.Compact()
	}
	return fmt.Errorf("kv-v3 target: unsupported op %s", op.Kind)
}

func (t *KVV3Target) ApplyModel(m Model, op Op) { kvApplyModel(m, op) }

func (t *KVV3Target) Recover(imgs [][]uint64) (Model, error) {
	return kvRecover(imgs, kvV3Opts())
}

// ---------------------------------------------------------------------------
// pmem heap allocator target

// HeapTarget drives the persistent heap allocator directly: each op
// allocates, updates, or frees a pattern-filled block linked into a tiny
// persistent directory rooted in the arena root line. The geometry is
// sized so the workload crosses several segment-append cutovers, and the
// deletes/reinserts push blocks through the persistent size-class free
// lists — so every allocator-metadata persist site (undo-log arm, the
// MetaWrite8 window, commit flips, bump advances, the grow cutover)
// becomes a crash point. Recovery asserts the heap format itself survived
// (recoverHeap silently falls back to a legacy volatile arena on a
// corrupt header, which here would mean a durability violation) and that
// CheckHeap holds on every admissible image.
type HeapTarget struct {
	arena *pmem.Arena
}

const (
	heapSeg0Size = 1 << 16
	heapGrowSize = 1 << 14
	heapMaxSegs  = 8
	// heapDirOff is the root-line word heading the block directory (the
	// root line is free for the target's own use: no tree lives here).
	heapDirOff = 0
	// Block layout: next pointer, key, value, then a key-derived fill
	// pattern to the end of the block (so an overlapping allocation shows
	// up as a pattern mismatch, not silence).
	heapBlkNextOff = 0
	heapBlkKeyOff  = 8
	heapBlkValOff  = 16
	heapBlkPatOff  = 24
)

// heapBlockSize derives a block's size from its key, so Free needs no
// persisted size field and the workload spreads over four size classes.
func heapBlockSize(k uint64) uint64 { return (1 + k%4) * 2048 }

func (t *HeapTarget) Name() string { return "heap" }

func (t *HeapTarget) Reset() ([]*pmem.Arena, Model, error) {
	t.arena = pmem.New(pmem.Config{
		Size:        heapSeg0Size,
		GrowSize:    heapGrowSize,
		MaxSegments: heapMaxSegs,
	})
	if !t.arena.HeapFormatted() {
		return nil, nil, fmt.Errorf("heap target: fresh arena not heap-formatted")
	}
	return []*pmem.Arena{t.arena}, Model{}, nil
}

// findBlock returns the offset holding the link to key's block (the root
// word or a predecessor's next word) and the block offset itself.
func (t *HeapTarget) findBlock(k uint64) (linkOff, off uint64, ok bool) {
	a := t.arena
	linkOff = heapDirOff
	for off = a.Read8(linkOff); off != pmem.NullOff; off = a.Read8(linkOff) {
		if a.Read8(off+heapBlkKeyOff) == k {
			return linkOff, off, true
		}
		linkOff = off + heapBlkNextOff
	}
	return 0, 0, false
}

func (t *HeapTarget) Apply(op Op) error {
	a := t.arena
	switch op.Kind {
	case OpInsert:
		size := heapBlockSize(op.K)
		off, err := a.Alloc(size)
		if err != nil {
			return err
		}
		a.Write8(off+heapBlkNextOff, a.Read8(heapDirOff))
		a.Write8(off+heapBlkKeyOff, op.K)
		a.Write8(off+heapBlkValOff, op.V)
		for w := uint64(heapBlkPatOff); w < size; w += 8 {
			a.Write8(off+w, op.K^w)
		}
		// The block is fully durable before the directory points at it;
		// the single-word head flip is the commit point.
		a.Persist(off, size)
		a.Write8(heapDirOff, off)
		a.Persist(heapDirOff, 8)
		return nil
	case OpUpdate:
		_, off, ok := t.findBlock(op.K)
		if !ok {
			return fmt.Errorf("heap target: update of absent key %d", op.K)
		}
		a.Write8(off+heapBlkValOff, op.V)
		a.Persist(off+heapBlkValOff, 8)
		return nil
	case OpDelete:
		linkOff, off, ok := t.findBlock(op.K)
		if !ok {
			return fmt.Errorf("heap target: delete of absent key %d", op.K)
		}
		// Unlink first (single-word commit point), then return the block
		// to the allocator's persistent free lists.
		a.Write8(linkOff, a.Read8(off+heapBlkNextOff))
		a.Persist(linkOff, 8)
		a.Free(off, heapBlockSize(op.K))
		return nil
	}
	return fmt.Errorf("heap target: unsupported op %s", op.Kind)
}

func (t *HeapTarget) ApplyModel(m Model, op Op) {
	k := strconv.FormatUint(op.K, 10)
	switch op.Kind {
	case OpInsert, OpUpdate:
		m[k] = strconv.FormatUint(op.V, 10)
	case OpDelete:
		delete(m, k)
	}
}

func (t *HeapTarget) Recover(imgs [][]uint64) (Model, error) {
	if len(imgs) != 1 {
		return nil, fmt.Errorf("heap target: %d images, want 1", len(imgs))
	}
	a := pmem.Recover(imgs[0], pmem.Config{})
	if !a.HeapFormatted() {
		return nil, fmt.Errorf("heap target: recovered arena lost its heap format")
	}
	if err := a.CheckHeap(); err != nil {
		return nil, fmt.Errorf("heap target: %v", err)
	}
	got := Model{}
	for off := a.Read8(heapDirOff); off != pmem.NullOff; off = a.Read8(off + heapBlkNextOff) {
		k := a.Read8(off + heapBlkKeyOff)
		size := heapBlockSize(k)
		for w := uint64(heapBlkPatOff); w < size; w += 8 {
			if v := a.Read8(off + w); v != k^w {
				return nil, fmt.Errorf("heap target: block %#x (key %d) pattern torn at +%d: %#x", off, k, w, v)
			}
		}
		got[strconv.FormatUint(k, 10)] = strconv.FormatUint(a.Read8(off+heapBlkValOff), 10)
	}
	return got, nil
}

// HeapWorkload crosses at least two segment-append cutovers on the way in
// (20 blocks averaging 5 KiB against a 64 KiB first segment), then frees
// six blocks across all four size classes and reinserts into exactly those
// classes, so the persistent free-list push/pop paths crash too.
func HeapWorkload() []Op {
	var ops []Op
	for i := uint64(0); i < 20; i++ {
		ops = append(ops, Op{OpInsert, i, 7000 + i})
	}
	for i := uint64(0); i < 4; i++ {
		ops = append(ops, Op{OpUpdate, i, 7100 + i})
	}
	for i := uint64(4); i < 10; i++ {
		ops = append(ops, Op{OpDelete, i, 0})
	}
	for i := uint64(20); i < 26; i++ {
		ops = append(ops, Op{OpInsert, i, 7200 + i})
	}
	ops = append(ops, Op{OpDelete, 20, 0}, Op{OpInsert, 30, 7300})
	return ops
}

// ---------------------------------------------------------------------------
// kv v3→v4 superblock upgrade target

// KVV3UpTarget pre-loads a two-partition v3 image (one-line superblocks,
// no heap record); the workload's first op is OpOpen, so the v3→v4
// upgrade's persist sites — new superblock build, root-word flip, old
// superblock free — become crash points, per partition. A crash image from
// any of them must reopen to exactly the pre-upgrade contents.
type KVV3UpTarget struct {
	arenas []*pmem.Arena
	store  *kv.Store
}

func (t *KVV3UpTarget) Name() string { return "kv-v3up" }

func (t *KVV3UpTarget) Reset() ([]*pmem.Arena, Model, error) {
	s, err := kv.New(kvV3Opts())
	if err != nil {
		return nil, nil, err
	}
	base := Model{}
	for i := uint64(0); i < 10; i++ {
		k, v := kvKey(i), kvValue(i, 100+i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			return nil, nil, err
		}
		base[k] = v
	}
	if err := s.Delete([]byte(kvKey(9))); err != nil {
		return nil, nil, err
	}
	delete(base, kvKey(9))
	k, v := kvKey(0), kvValue(0, 150)
	if err := s.Put([]byte(k), []byte(v)); err != nil {
		return nil, nil, err
	}
	base[k] = v
	if err := s.DowngradeV3(); err != nil {
		return nil, nil, err
	}
	// Reopen the durable images on fresh arenas, as a real restart would.
	srcs := s.Arenas()
	t.arenas = make([]*pmem.Arena, len(srcs))
	for i, a := range srcs {
		t.arenas[i] = pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
	}
	t.store = nil
	return t.arenas, base, nil
}

func (t *KVV3UpTarget) Apply(op Op) error {
	if op.Kind == OpOpen {
		s, err := kv.OpenArenas(t.arenas, kvV3Opts())
		if err != nil {
			return err
		}
		t.store = s
		return nil
	}
	if t.store == nil {
		return fmt.Errorf("kv-v3up target: %s before OpOpen", op.Kind)
	}
	switch op.Kind {
	case OpInsert, OpUpdate:
		return t.store.Put([]byte(kvKey(op.K)), []byte(kvValue(op.K, op.V)))
	case OpDelete:
		return t.store.Delete([]byte(kvKey(op.K)))
	case OpCompact:
		return t.store.Compact()
	}
	return fmt.Errorf("kv-v3up target: unsupported op %s", op.Kind)
}

func (t *KVV3UpTarget) ApplyModel(m Model, op Op) { kvApplyModel(m, op) }

func (t *KVV3UpTarget) Recover(imgs [][]uint64) (Model, error) {
	return kvRecover(imgs, kvV3Opts())
}

// KVV3UpWorkload upgrades the pre-loaded v3 images, then keeps using the
// upgraded store across both partitions.
func KVV3UpWorkload() []Op {
	return []Op{
		{Kind: OpOpen},
		{OpInsert, 30, 500},
		{OpInsert, 31, 501},
		{OpUpdate, 1, 600},
		{OpDelete, 3, 0},
		{Kind: OpCompact},
	}
}

// ---------------------------------------------------------------------------
// typed-object layer target

// ObjTarget drives the typed-object layer (internal/obj) over a kv.Store:
// crash sites land inside the multi-record intent commits of HSET / SADD /
// HDEL / SREM, inside EXPIRE's record write, and inside the expirer's reap
// composite (driven synchronously through the injected clock). Recovery
// re-attaches the layer — rolling any in-flight intent forward — and the
// oracle checks OBJECT-level contents: a crash anywhere inside a composite
// recovers to all-or-nothing, an expired key never resurrects, and every
// header agrees exactly with its element records.
type ObjTarget struct {
	store *kv.Store
	o     *obj.Store
	clock int64
}

func (t *ObjTarget) Name() string { return "obj" }

func objKVOpts() kv.Options {
	return kv.Options{
		ArenaSize: 4 << 20,
		ChunkSize: 1024, // room for reap intents (undo images of a whole object)
		Shards:    2,
	}
}

// The op encoding: OpInsert is HSET on hash o<K/4> field f<K%4>; OpUpdate
// is SADD on set t<K/4> member f<K%4>; OpDelete dispatches on V.
const (
	objDelHashField = 0 // HDel one field
	objDelSetMember = 1 // SRem one member
	objReapHash     = 2 // expire + tick-reap the hash
	objReapSet      = 3 // expire + tick-reap the set
)

func objHash(k uint64) string { return fmt.Sprintf("o%d", k>>2) }
func objSet(k uint64) string  { return fmt.Sprintf("t%d", k>>2) }
func objElem(k uint64) string { return fmt.Sprintf("f%d", k&3) }
func objVal(v uint64) string  { return fmt.Sprintf("v%d", v) }

func (t *ObjTarget) Reset() ([]*pmem.Arena, Model, error) {
	s, err := kv.New(objKVOpts())
	if err != nil {
		return nil, nil, err
	}
	t.store = s
	t.clock = 1_000
	o, err := obj.Attach(s, obj.Options{Clock: func() int64 { return t.clock }})
	if err != nil {
		return nil, nil, err
	}
	t.o = o
	return s.Arenas(), Model{}, nil
}

func (t *ObjTarget) Apply(op Op) error {
	switch op.Kind {
	case OpInsert:
		return t.o.HSet([]byte(objHash(op.K)), []byte(objElem(op.K)), []byte(objVal(op.V)))
	case OpUpdate:
		return t.o.SAdd([]byte(objSet(op.K)), []byte(objElem(op.K)))
	case OpDelete:
		switch op.V {
		case objDelHashField:
			return t.o.HDel([]byte(objHash(op.K)), []byte(objElem(op.K)))
		case objDelSetMember:
			return t.o.SRem([]byte(objSet(op.K)), []byte(objElem(op.K)))
		case objReapHash, objReapSet:
			name := objHash(op.K)
			if op.V == objReapSet {
				name = objSet(op.K)
			}
			if err := t.o.Expire([]byte(name), 10); err != nil {
				return err
			}
			t.clock += 20
			if n := t.o.ExpireTick(); n != 1 {
				return fmt.Errorf("obj target: reap of %s reaped %d, want 1", name, n)
			}
			return nil
		}
		return fmt.Errorf("obj target: unknown delete selector %d", op.V)
	case OpCompact:
		return t.store.Compact()
	}
	return fmt.Errorf("obj target: unsupported op %s", op.Kind)
}

func (t *ObjTarget) ApplyModel(m Model, op Op) {
	switch op.Kind {
	case OpInsert:
		m["h:"+objHash(op.K)+":"+objElem(op.K)] = objVal(op.V)
	case OpUpdate:
		m["s:"+objSet(op.K)+":"+objElem(op.K)] = "1"
	case OpDelete:
		switch op.V {
		case objDelHashField:
			delete(m, "h:"+objHash(op.K)+":"+objElem(op.K))
		case objDelSetMember:
			delete(m, "s:"+objSet(op.K)+":"+objElem(op.K))
		case objReapHash:
			for k := range m {
				if strings.HasPrefix(k, "h:"+objHash(op.K)+":") {
					delete(m, k)
				}
			}
		case objReapSet:
			for k := range m {
				if strings.HasPrefix(k, "s:"+objSet(op.K)+":") {
					delete(m, k)
				}
			}
		}
	}
}

// Recover reopens the store, re-attaches the object layer (which resolves
// any in-flight intent) and rebuilds the model through the typed read API,
// so expiry masking applies exactly as it would for a client. Structural
// invariants are errors, not model entries: a surviving intent, a header
// whose element list disagrees with the element records on media, or an
// element record for a name with no header.
func (t *ObjTarget) Recover(imgs [][]uint64) (Model, error) {
	s, err := kv.Open(imgs, objKVOpts())
	if err != nil {
		return nil, err
	}
	clock := t.clock
	o, err := obj.Attach(s, obj.Options{Clock: func() int64 { return clock }})
	if err != nil {
		return nil, err
	}
	// Raw sweep: which names exist, and how many element records each holds.
	names := map[string]bool{}
	elems := map[string]int{}
	var rerr error
	s.Range(func(k, _ []byte) bool {
		tag, name, ok := obj.ParseInternalKey(k)
		if !ok {
			rerr = fmt.Errorf("obj recover: unparseable key %q in a pure-object store", k)
			return false
		}
		switch tag {
		case 'I':
			rerr = fmt.Errorf("obj recover: intent for %q survived re-attach", name)
			return false
		case 'H':
			names[string(name)] = true
		case 'h', 's':
			names[string(name)] = true
			elems[string(name)]++
		}
		return true
	})
	if rerr != nil {
		return nil, rerr
	}
	got := Model{}
	for name := range names {
		n := []byte(name)
		if o.Expired(n) {
			// Masked (expired but unreaped): contributes nothing, and its
			// leftover records are the reap's business, not a violation.
			continue
		}
		fields, err := o.HKeys(n)
		listed := len(fields)
		if err == obj.ErrWrongType {
			members, merr := o.SMembers(n)
			if merr != nil {
				return nil, fmt.Errorf("obj recover: SMembers(%s): %v", name, merr)
			}
			listed = len(members)
			for _, m := range members {
				got["s:"+name+":"+string(m)] = "1"
			}
		} else if err != nil {
			return nil, fmt.Errorf("obj recover: HKeys(%s): %v", name, err)
		} else {
			for _, f := range fields {
				v, gerr := o.HGet(n, f)
				if gerr != nil {
					return nil, fmt.Errorf("obj recover: header of %s lists %q but HGet: %v", name, f, gerr)
				}
				got["h:"+name+":"+string(f)] = string(v)
			}
		}
		if listed != elems[name] {
			return nil, fmt.Errorf("obj recover: %s header lists %d elements, media holds %d",
				name, listed, elems[name])
		}
	}
	return got, nil
}

// ObjWorkload covers every composite commit shape: fresh-field HSETs (two
// hashes), single-record overwrites, SADDs (two sets), element removals
// (header rewrite) including none that empty an object, then expire+reap of
// one hash and one set — via the expirer's own tick — and a rebuild over
// the reaped corpse, with compactions mixed through.
func ObjWorkload() []Op {
	var ops []Op
	// Hashes o0 (f0..f3) and o1 (f0..f3): fresh-field intent commits.
	for i := uint64(0); i < 8; i++ {
		ops = append(ops, Op{OpInsert, i, 100 + i})
	}
	// Overwrites: the no-intent single-record path.
	ops = append(ops, Op{OpInsert, 0, 200}, Op{OpInsert, 5, 205})
	// Sets t4 (f0..f3) and t5 (f0, f1).
	for i := uint64(16); i < 22; i++ {
		ops = append(ops, Op{OpUpdate, i, 0})
	}
	// Removals that rewrite the header in place.
	ops = append(ops,
		Op{OpDelete, 1, objDelHashField},  // o0: drop f1
		Op{OpDelete, 17, objDelSetMember}, // t4: drop f1
		Op{Kind: OpCompact},
		// Expire + reap one hash and one set through the expirer.
		Op{OpDelete, 4, objReapHash}, // o1 reaped whole
		Op{OpDelete, 20, objReapSet}, // t5 reaped whole
		// Rebuild over the reaped corpse: must start fresh, not resurrect.
		Op{OpInsert, 4, 300},
		Op{Kind: OpCompact},
	)
	return ops
}

// Targets returns every layer adapter with its canonical workload, the
// matrix the faultmatrix experiment and `make faultcheck` run.
func Targets() []struct {
	Target Target
	Ops    []Op
} {
	return []struct {
		Target Target
		Ops    []Op
	}{
		{&HeapTarget{}, HeapWorkload()},
		{&TreeTarget{DualSlot: false}, TreeWorkload()},
		{&TreeTarget{DualSlot: true}, TreeWorkload()},
		{&ForestTarget{DualSlot: false}, ForestWorkload()},
		{&ForestTarget{DualSlot: true}, ForestWorkload()},
		{&KVTarget{}, KVWorkload()},
		{&CachedKVTarget{}, KVWorkload()},
		{&KVV1Target{}, KVV1Workload()},
		{&KVV3Target{}, KVWorkload()},
		{&KVV3UpTarget{}, KVV3UpWorkload()},
		{&ReplTarget{}, KVWorkload()},
		{&ObjTarget{}, ObjWorkload()},
	}
}
