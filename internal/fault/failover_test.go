package fault

import "testing"

// Machine-wide crash of the replicated pair: every persist site on either
// node — including the replica-apply persists running inside the primary's
// commit hook — must recover, after the backlog catch-up, to a single
// prefix-consistent cut served identically by both nodes.
func TestExploreReplPairAllSites(t *testing.T) {
	rep := mustExplore(t, &ReplTarget{}, KVWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if rep.Sites < 120 {
		t.Fatalf("only %d sites — two-node workload too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("kv+repl: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// Killing only the primary, at each of its persist sites: the surviving
// replica must hold every acked write, promote cleanly, and serve a probe
// write — and the dead primary's own images must still recover to a
// prefix-consistent cut.
func TestExplorePrimaryKillAllSites(t *testing.T) {
	rep, err := ExplorePrimaryKill(KVWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 60 {
		t.Fatalf("only %d sites — workload too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("primary-kill: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// Killing only the replica, mid-apply: the live primary must be unperturbed
// and every replica crash image must heal back to the primary's state via
// the backlog catch-up.
func TestExploreReplicaKillAllSites(t *testing.T) {
	rep, err := ExploreReplicaKill(KVWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 40 {
		t.Fatalf("only %d sites — replica apply path too shallow", rep.Sites)
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("replica-kill: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// Crashing inside the promotion cutover: the packed epoch/role word cannot
// tear, so every image reads back as fully the old identity or fully the
// new one, contents untouched.
func TestExplorePromotionAllSites(t *testing.T) {
	rep, err := ExplorePromotion(KVWorkload(), Config{Seed: 42, EvictProb: 0.4, Torn: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sites < 1 {
		t.Fatalf("no promotion sites counted")
	}
	if rep.Explored != rep.Sites {
		t.Fatalf("explored %d of %d sites", rep.Explored, rep.Sites)
	}
	if !rep.Ok() {
		t.Fatalf("%d violations, first: %s", len(rep.Violations), rep.Violations[0])
	}
	t.Logf("promote: %d sites, %d images, hash %#x", rep.Sites, rep.Images, rep.ImageHash)
}

// The failover explorers are seeded the same way Explore is: same seed ⇒
// identical crash images, so a CI violation replays from its logged seed.
func TestFailoverSeededDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, EvictProb: 0.5, Torn: true, MaxSites: 25}
	a, err := ExplorePrimaryKill(KVWorkload(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExplorePrimaryKill(KVWorkload(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ImageHash != b.ImageHash || a.Sites != b.Sites || a.Images != b.Images {
		t.Fatalf("same seed diverged: %#x/%d/%d vs %#x/%d/%d",
			a.ImageHash, a.Sites, a.Images, b.ImageHash, b.Sites, b.Images)
	}
}
