package fault

import (
	"fmt"

	"rntree/internal/pmem"
	"rntree/internal/repl"
	"rntree/kv"
)

// ---------------------------------------------------------------------------
// two-node replicated kv target (machine-wide crash)

// replOpts are the per-node store options for the replicated targets: two
// partitions so crash sites land while the other partition — and the whole
// other node — is quiescent, and tiny chunks for frequent chunk-link
// persists.
func replOpts() kv.Options {
	return kv.Options{
		ArenaSize:  8 << 20,
		ChunkSize:  512,
		Shards:     1,
		Partitions: 2,
	}
}

// replPair is a primary/replica store pair coupled by the in-process
// replication link: every commit on the primary is applied and persisted on
// the replica before the mutating call returns — the wait-for-replica-
// durable ack mode with the network collapsed to a function call, which is
// exactly the invariant the crash oracles check.
type replPair struct {
	primary, replica *kv.Store
	link             *repl.Link
}

func newReplPair() (*replPair, error) {
	p, err := kv.New(replOpts())
	if err != nil {
		return nil, err
	}
	r, err := kv.New(replOpts())
	if err != nil {
		return nil, err
	}
	// Seed the persisted roles the way a freshly provisioned pair starts:
	// both at epoch 1. These persists run at reset time, before any crash
	// hooks are installed, so they are not crash sites themselves (the
	// promotion explorer crashes inside role changes separately).
	if err := p.SetReplState(1, repl.Primary); err != nil {
		return nil, err
	}
	if err := r.SetReplState(1, repl.Replica); err != nil {
		return nil, err
	}
	return &replPair{primary: p, replica: r, link: repl.NewLink(p, r)}, nil
}

// apply drives one workload op through the primary; the link ships it to
// the replica synchronously. Compaction runs on the primary only — the
// replica compacts on its own schedule in a real deployment, and keeping it
// out of the workload keeps the persist sequence deterministic.
func (pr *replPair) apply(op Op) error {
	var err error
	switch op.Kind {
	case OpInsert, OpUpdate:
		err = pr.primary.Put([]byte(kvKey(op.K)), []byte(kvValue(op.K, op.V)))
	case OpDelete:
		err = pr.primary.Delete([]byte(kvKey(op.K)))
	case OpCompact:
		err = pr.primary.Compact()
	default:
		return fmt.Errorf("kv+repl target: unsupported op %s", op.Kind)
	}
	if err != nil {
		return err
	}
	return pr.link.Err()
}

func rangeModel(s *kv.Store) Model {
	got := Model{}
	s.Range(func(k, v []byte) bool {
		got[string(k)] = string(v)
		return true
	})
	return got
}

// ReplTarget crashes the whole machine — primary and replica arenas
// snapshotted at the same instant — at every persist/fence site either node
// executes, including the replica-apply persists that run inside the
// primary's commit hook. Recovery reopens both nodes, heals the replica
// from the primary's backlog (the resubscribe-from-watermarks path), and
// demands they converge to the same prefix-consistent cut.
type ReplTarget struct {
	pair *replPair
}

func (t *ReplTarget) Name() string { return "kv+repl" }

func (t *ReplTarget) Reset() ([]*pmem.Arena, Model, error) {
	pair, err := newReplPair()
	if err != nil {
		return nil, nil, err
	}
	t.pair = pair
	arenas := append([]*pmem.Arena{}, pair.primary.Arenas()...)
	arenas = append(arenas, pair.replica.Arenas()...)
	return arenas, Model{}, nil
}

func (t *ReplTarget) Apply(op Op) error { return t.pair.apply(op) }

func (t *ReplTarget) ApplyModel(m Model, op Op) { kvApplyModel(m, op) }

func (t *ReplTarget) Recover(imgs [][]uint64) (Model, error) {
	n := replOpts().Partitions
	if len(imgs) != 2*n {
		return nil, fmt.Errorf("kv+repl target: %d images, want %d", len(imgs), 2*n)
	}
	p, err := kv.Open(imgs[:n], replOpts())
	if err != nil {
		return nil, fmt.Errorf("primary: %w", err)
	}
	r, err := kv.Open(imgs[n:], replOpts())
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	// The replica resubscribes from its durable watermarks; the primary's
	// log doubles as the retransmit buffer. LSN idempotency makes re-shipped
	// records harmless, and the replica can never be ahead of the primary:
	// records ship only after the primary's commit completes.
	if err := repl.CatchUp(p, r); err != nil {
		return nil, fmt.Errorf("catch-up: %w", err)
	}
	pm, rm := rangeModel(p), rangeModel(r)
	if !modelsEqual(pm, rm) {
		return nil, fmt.Errorf("replica diverged from primary after catch-up:%s", modelsDiff(rm, pm))
	}
	return pm, nil
}
