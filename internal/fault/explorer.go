package fault

import (
	"fmt"
	"math/rand"

	"rntree/internal/pmem"
)

// Config parameterises one exploration.
type Config struct {
	// Seed drives every random choice (eviction sets, torn-line subsets).
	// Per-site generators are derived from it, so a single logged seed
	// replays any site's images exactly. Zero means 1.
	Seed int64
	// MaxSites caps how many crash sites are replayed; 0 explores all.
	// When capped, sites are sampled evenly across the workload so early
	// formatting traffic does not crowd out late compaction traffic.
	MaxSites int
	// EvictProb adds, per site, an "evict" image in which each dirty cache
	// line has this probability of having been written back early (cache
	// eviction is legal at any moment). 0 disables the variant.
	EvictProb float64
	// Torn adds, per multi-line persist site, a "torn" image in which a
	// strict, non-empty subset of the in-flight persist's lines is durable
	// — the state when a crash lands between the line flushes of one
	// persist call. Single-line persists cannot tear: a line writeback is
	// atomic in the hardware model.
	Torn bool
}

// Violation is one durability-oracle failure: recovering the image
// synthesized at Site (variant Variant, in-flight op OpIndex) produced
// contents matching neither the pre- nor the post-op model.
type Violation struct {
	Site    int
	Variant string
	OpIndex int
	Detail  string
}

func (v Violation) String() string {
	return fmt.Sprintf("site %d (%s, op %d): %s", v.Site, v.Variant, v.OpIndex, v.Detail)
}

// Report summarises one exploration.
type Report struct {
	Target     string
	Sites      int // persist/fence sites the workload executes
	Explored   int // sites actually replayed (== Sites unless capped)
	Images     int // crash images synthesized, recovered, and checked
	Violations []Violation
	// ImageHash is an FNV-1a digest over every synthesized image (tagged
	// with site and variant). Identical Config+Target ⇒ identical hash;
	// a changed hash means the workload or the crash synthesis drifted.
	ImageHash uint64
}

// Ok reports whether the exploration found no violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// replayStop unwinds a replay at its crash site.
type replayStop struct{}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	siteGamma = int64(-0x61c8864680b583eb) // 0x9e3779b97f4a7c15 as int64
)

func (r *Report) fold(v uint64) {
	r.ImageHash = (r.ImageHash ^ v) * fnvPrime
}

func (r *Report) foldImages(site int, variant string, imgs [][]uint64) {
	r.fold(uint64(site))
	for i := 0; i < len(variant); i++ {
		r.fold(uint64(variant[i]))
	}
	for i, img := range imgs {
		r.fold(uint64(i))
		for _, w := range img {
			r.fold(w)
		}
	}
}

// crashAll snapshots every arena at the same instant — a power loss takes
// out the whole machine, not one partition.
func crashAll(arenas []*pmem.Arena, rng *rand.Rand, evictProb float64) [][]uint64 {
	imgs := make([][]uint64, len(arenas))
	for i, a := range arenas {
		imgs[i] = a.CrashImage(rng, evictProb)
	}
	return imgs
}

// Explore enumerates every persistent-instruction site ops executes against
// tgt, replays the workload once per (sampled) site, crashes it there under
// each configured image variant, and checks the durability oracle on the
// recovered contents. The error return is for harness failures (a workload
// op erroring, a site not reached on replay — i.e. a non-deterministic
// target); oracle failures land in Report.Violations.
func Explore(tgt Target, ops []Op, cfg Config) (*Report, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rep := &Report{Target: tgt.Name(), ImageHash: fnvOffset}

	// Pass 1 — count the sites (one global ordinal across every arena) and
	// build the end-state model.
	arenas, base, err := tgt.Reset()
	if err != nil {
		return nil, err
	}
	sites := 0
	count := &pmem.Hooks{
		BeforePersist: func(_, _ uint64) { sites++ },
		OnFence:       func() { sites++ },
	}
	for _, a := range arenas {
		a.SetHooks(count)
	}
	clearHooks := func() {
		for _, a := range arenas {
			a.SetHooks(nil)
		}
	}
	full := cloneModel(base)
	for i, op := range ops {
		if err := tgt.Apply(op); err != nil {
			clearHooks()
			return nil, fmt.Errorf("fault: %s: counting pass op %d (%s %d): %v",
				tgt.Name(), i, op.Kind, op.K, err)
		}
		tgt.ApplyModel(full, op)
	}
	clearHooks()
	rep.Sites = sites

	// No-crash check: completed operations are durable, so the image set
	// taken after the whole workload must recover to exactly the full model.
	imgs := crashAll(arenas, nil, 0)
	rep.Images++
	rep.foldImages(sites, "final", imgs)
	if got, err := safeRecover(tgt, imgs); err != nil {
		rep.Violations = append(rep.Violations, Violation{
			Site: sites, Variant: "final", OpIndex: len(ops) - 1,
			Detail: "recovery failed: " + err.Error(),
		})
	} else if !modelsEqual(got, full) {
		rep.Violations = append(rep.Violations, Violation{
			Site: sites, Variant: "final", OpIndex: len(ops) - 1,
			Detail: "completed ops not durable:" + modelsDiff(got, full),
		})
	}

	// Pass 2 — replay once per sampled site.
	for _, site := range sampleSites(sites, cfg.MaxSites) {
		if err := exploreSite(tgt, ops, site, cfg, rep); err != nil {
			return rep, err
		}
		rep.Explored++
	}
	return rep, nil
}

// sampleSites returns the site ordinals to replay: all of them, or an even
// stride-sample of max of them.
func sampleSites(n, max int) []int {
	if n <= 0 {
		return nil
	}
	if max <= 0 || n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, max)
	last := -1
	for i := 0; i < max; i++ {
		s := i * n / max
		if s != last {
			out = append(out, s)
			last = s
		}
	}
	return out
}

// variantImage is one synthesized crash image set at a site.
type variantImage struct {
	name string
	imgs [][]uint64
}

// exploreSite replays ops against a fresh target, crashes at the site-th
// persistent instruction (counted globally across all arenas), and
// oracle-checks every image-set variant.
func exploreSite(tgt Target, ops []Op, site int, cfg Config, rep *Report) error {
	arenas, base, err := tgt.Reset()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ (int64(site)+1)*siteGamma))

	var images []variantImage
	seen := 0
	// crashNow fires from inside the pmem hooks: at the target site it
	// synthesizes the image sets the hardware model admits at this exact
	// instruction boundary — snapshotting every arena, since a power loss
	// is machine-wide — then unwinds the replay. hit is the arena whose
	// persist is in flight; only its image can tear.
	crashNow := func(hit int, isPersist bool, off, size uint64) {
		if seen != site {
			seen++
			return
		}
		seen++
		// "pre": the in-flight persist contributed nothing durable yet.
		pre := crashAll(arenas, nil, 0)
		images = append(images, variantImage{"pre", pre})
		if cfg.EvictProb > 0 {
			images = append(images, variantImage{"evict", crashAll(arenas, rng, cfg.EvictProb)})
		}
		if isPersist && cfg.Torn {
			if size == 0 {
				size = 1
			}
			first := off / pmem.LineSize
			nl := int((off+size-1)/pmem.LineSize - first + 1)
			if nl > 1 {
				// A strict non-empty subset of the persist's lines made it
				// to media before the crash — on the in-flight arena; the
				// other arenas have nothing in flight.
				torn := make([][]uint64, len(pre))
				for i := range pre {
					torn[i] = make([]uint64, len(pre[i]))
					copy(torn[i], pre[i])
				}
				k := 1 + rng.Intn(nl-1)
				for _, i := range rng.Perm(nl)[:k] {
					arenas[hit].OverlayCacheLine(torn[hit], (first+uint64(i))*pmem.LineSize)
				}
				images = append(images, variantImage{"torn", torn})
			}
		}
		panic(replayStop{})
	}
	for i, a := range arenas {
		i := i
		a.SetHooks(&pmem.Hooks{
			BeforePersist: func(off, size uint64) { crashNow(i, true, off, size) },
			OnFence:       func() { crashNow(i, false, 0, 0) },
		})
	}

	before := cloneModel(base)
	opIdx, stopped, err := runToCrash(tgt, ops, before)
	for _, a := range arenas {
		a.SetHooks(nil)
	}
	if err != nil {
		return fmt.Errorf("fault: %s: site %d: %v", tgt.Name(), site, err)
	}
	if !stopped {
		return fmt.Errorf("fault: %s: site %d not reached on replay (%d of %d events) — workload is not deterministic",
			tgt.Name(), site, seen, site+1)
	}
	after := cloneModel(before)
	tgt.ApplyModel(after, ops[opIdx])

	for _, v := range images {
		rep.Images++
		rep.foldImages(site, v.name, v.imgs)
		got, err := safeRecover(tgt, v.imgs)
		if err != nil {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: "recovery failed: " + err.Error(),
			})
			continue
		}
		if !modelsEqual(got, before) && !modelsEqual(got, after) {
			rep.Violations = append(rep.Violations, Violation{
				Site: site, Variant: v.name, OpIndex: opIdx,
				Detail: fmt.Sprintf("recovered state matches neither pre- nor post-op model (in-flight %s %d): vs after:%s",
					ops[opIdx].Kind, ops[opIdx].K, modelsDiff(got, after)),
			})
		}
	}
	return nil
}

// runToCrash applies ops, folding each completed op into committed, until
// the crash hook unwinds the replay (stopped=true, opIdx = in-flight op) or
// the workload finishes (stopped=false).
func runToCrash(tgt Target, ops []Op, committed Model) (opIdx int, stopped bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(replayStop); ok {
				stopped = true
				return
			}
			panic(p)
		}
	}()
	for i, op := range ops {
		opIdx = i
		if err := tgt.Apply(op); err != nil {
			return i, false, fmt.Errorf("op %d (%s %d): %v", i, op.Kind, op.K, err)
		}
		tgt.ApplyModel(committed, op)
	}
	return len(ops) - 1, false, nil
}

// safeRecover shields the explorer from panics inside recovery: a torn or
// evicted image that sends recovery through an unchecked code path (bad
// offsets, out-of-range persists) is an oracle violation, not a harness
// crash.
func safeRecover(tgt Target, imgs [][]uint64) (m Model, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("recovery panicked: %v", p)
		}
	}()
	return tgt.Recover(imgs)
}
