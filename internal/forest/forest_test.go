package forest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"rntree/internal/core"
	"rntree/internal/tree"
	"rntree/internal/tree/treetest"
)

func testOpts(partitions int, dual bool) Options {
	return Options{
		Partitions: partitions,
		ArenaSize:  8 << 20,
		Tree:       core.Options{DualSlot: dual, LeafCapacity: 16},
	}
}

func mustNew(t *testing.T, partitions int, dual bool) *Forest {
	t.Helper()
	f, err := New(testOpts(partitions, dual))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// The conformance suite must hold for every partition count in both
// slot-array modes: the forest is a drop-in Index.
func TestConformance(t *testing.T) {
	for _, parts := range []int{1, 2, 4, 8} {
		for _, dual := range []bool{false, true} {
			name := fmt.Sprintf("Forest%dDS%v", parts, dual)
			p, d := parts, dual
			treetest.RunConformance(t, name, func(t *testing.T) tree.Index {
				return mustNew(t, p, d)
			})
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	for _, bad := range []int{3, 5, 6, 7, 100, MaxPartitions * 2, -1} {
		if _, err := New(testOpts(bad, false)); err == nil {
			t.Fatalf("partitions=%d accepted", bad)
		}
	}
	f, err := New(Options{ArenaSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if f.Partitions() != 1 {
		t.Fatalf("default partitions = %d", f.Partitions())
	}
}

func TestRoutingIsStable(t *testing.T) {
	f := mustNew(t, 8, true)
	for k := uint64(0); k < 10_000; k++ {
		if err := f.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	// Every key must be findable through routing and live in exactly the
	// partition the router names.
	for k := uint64(0); k < 10_000; k++ {
		if v, ok := f.Find(k); !ok || v != k*3 {
			t.Fatalf("Find(%d) = %d,%v", k, v, ok)
		}
		pi := f.PartitionFor(k)
		if _, ok := f.Partition(pi).Tree().Find(k); !ok {
			t.Fatalf("key %d missing from its partition %d", k, pi)
		}
	}
	// Dense keys should spread: no partition may be empty or hold more
	// than twice its fair share.
	for i := 0; i < f.Partitions(); i++ {
		n := f.Partition(i).Tree().Len()
		if n == 0 || n > 2*10_000/f.Partitions() {
			t.Fatalf("partition %d holds %d of 10000 keys (bad spread)", i, n)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Cross-partition scans must interleave partitions in global key order —
// with dense keys and hash routing, adjacent keys almost always live in
// different partitions, so every scan crosses partition boundaries.
func TestScanCrossesPartitions(t *testing.T) {
	f := mustNew(t, 4, true)
	const n = 5000
	for k := uint64(0); k < n; k++ {
		if err := f.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan: strict global order, all records.
	var prev uint64
	first := true
	switches := 0
	prevPart := -1
	count := f.Scan(0, 0, func(k, v uint64) bool {
		if !first && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		if v != k+1 {
			t.Fatalf("scan value %d for key %d", v, k)
		}
		if pi := f.PartitionFor(k); pi != prevPart {
			switches++
			prevPart = pi
		}
		prev, first = k, false
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d, want %d", count, n)
	}
	if switches < n/4 {
		t.Fatalf("scan crossed partitions only %d times over %d keys", switches, n)
	}
	// Bounded scans starting at a key owned by each partition: the start
	// key itself and the next n-1 global keys must appear regardless of
	// which partitions own them.
	for pi := 0; pi < f.Partitions(); pi++ {
		var start uint64
		for k := uint64(100); k < n; k++ {
			if f.PartitionFor(k) == pi {
				start = k
				break
			}
		}
		want := start
		got := f.Scan(start, 50, func(k, _ uint64) bool {
			if k != want {
				t.Fatalf("scan from %d (partition %d): got %d want %d", start, pi, k, want)
			}
			want++
			return true
		})
		if got != 50 {
			t.Fatalf("scan from %d visited %d", start, got)
		}
	}
	// Early-terminated scan returns the visited count.
	if got := f.Scan(0, 0, func(k, _ uint64) bool { return k < 9 }); got != 10 {
		t.Fatalf("early-stop scan visited %d", got)
	}
}

func TestIteratorSeek(t *testing.T) {
	f := mustNew(t, 4, false)
	for k := uint64(0); k < 1000; k += 2 {
		if err := f.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	it := f.NewIterator(501)
	kv, ok := it.Next()
	if !ok || kv.Key != 502 {
		t.Fatalf("Next after 501: %v %v", kv, ok)
	}
	it.Seek(10)
	for want := uint64(10); want < 20; want += 2 {
		kv, ok := it.Next()
		if !ok || kv.Key != want {
			t.Fatalf("after seek: got %v,%v want %d", kv, ok, want)
		}
	}
	it.Seek(1001)
	if _, ok := it.Next(); ok {
		t.Fatal("iterator past end returned a record")
	}
}

func TestConcurrent(t *testing.T) {
	for _, dual := range []bool{false, true} {
		t.Run(fmt.Sprintf("DS%v", dual), func(t *testing.T) {
			f := mustNew(t, 4, dual)
			const (
				writers = 4
				readers = 2
				perG    = 3000
			)
			var writeWG, readWG sync.WaitGroup
			for w := 0; w < writers; w++ {
				writeWG.Add(1)
				go func(w int) {
					defer writeWG.Done()
					base := uint64(w) * perG
					for i := uint64(0); i < perG; i++ {
						k := base + i
						if err := f.Insert(k, k^0xABCD); err != nil {
							t.Errorf("insert %d: %v", k, err)
							return
						}
						if i%3 == 0 {
							if err := f.Update(k, k); err != nil {
								t.Errorf("update %d: %v", k, err)
								return
							}
						}
						if i%7 == 0 {
							if err := f.Remove(k); err != nil {
								t.Errorf("remove %d: %v", k, err)
								return
							}
						}
					}
				}(w)
			}
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				readWG.Add(1)
				go func(r int) {
					defer readWG.Done()
					rng := rand.New(rand.NewSource(int64(r)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						f.Find(rng.Uint64() % (writers * perG))
						var prev uint64
						first := true
						f.Scan(rng.Uint64()%(writers*perG), 64, func(k, _ uint64) bool {
							if !first && k <= prev {
								t.Errorf("concurrent scan out of order: %d after %d", k, prev)
								return false
							}
							prev, first = k, false
							return true
						})
					}
				}(r)
			}
			writeWG.Wait()
			close(stop)
			readWG.Wait()
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			want := 0
			for w := 0; w < writers; w++ {
				for i := uint64(0); i < perG; i++ {
					if i%7 != 0 {
						want++
					}
				}
			}
			if got := f.Len(); got != want {
				t.Fatalf("Len = %d, want %d", got, want)
			}
		})
	}
}

// TestScanVsUpdateInterleaving pins the scan/update contract across leaf
// version bumps: a merged full scan racing value updates (slot-line
// republish in place) and insert/remove churn (splits, version bumps) must
// report every pre-loaded "stable" key exactly once, in strictly increasing
// order, with an untorn value. TestConcurrent checks local scan order;
// this one checks global completeness — the failure mode where a scan
// straddling a split sees a leaf's records twice or not at all.
func TestScanVsUpdateInterleaving(t *testing.T) {
	for _, dual := range []bool{false, true} {
		t.Run(fmt.Sprintf("DS%v", dual), func(t *testing.T) {
			f := mustNew(t, 4, dual)
			const nStable = 2000
			// Stable keys are even, values start at the key and are only
			// ever overwritten with key+2j, j<1000 — so any torn or stale
			// read is detectable.
			for i := 1; i <= nStable; i++ {
				k := uint64(2 * i)
				if err := f.Insert(k, k); err != nil {
					t.Fatal(err)
				}
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			// Updaters: republish slot lines of stable keys in place.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := uint64(2 + 2*rng.Intn(nStable))
						if err := f.Update(k, k+2*uint64(rng.Intn(1000))); err != nil {
							t.Errorf("update %d: %v", k, err)
							return
						}
					}
				}(int64(w + 1))
			}
			// Churners: insert/remove odd keys so leaves around the stable
			// ones split and bump versions mid-scan.
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := uint64(1 + 2*rng.Intn(nStable+200))
						if rng.Intn(2) == 0 {
							_ = f.Upsert(k, k)
						} else {
							_ = f.Remove(k)
						}
					}
				}(int64(100 + w))
			}
			for scan := 0; scan < 25; scan++ {
				it := f.NewIterator(0)
				var prev uint64
				first := true
				seen := 0
				for kv, ok := it.Next(); ok; kv, ok = it.Next() {
					if !first && kv.Key <= prev {
						t.Fatalf("scan %d: key %d after %d (duplicate or disorder)", scan, kv.Key, prev)
					}
					prev, first = kv.Key, false
					if kv.Key%2 == 0 {
						seen++
						if kv.Value < kv.Key || (kv.Value-kv.Key)%2 != 0 || kv.Value >= kv.Key+2000 {
							t.Fatalf("scan %d: key %d carries impossible value %d", scan, kv.Key, kv.Value)
						}
					}
				}
				if seen != nStable {
					t.Fatalf("scan %d saw %d/%d stable keys (lost or duplicated across a leaf version bump)", scan, seen, nStable)
				}
			}
			close(stop)
			wg.Wait()
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCheckpointRecover(t *testing.T) {
	for _, dual := range []bool{false, true} {
		f := mustNew(t, 4, dual)
		for k := uint64(0); k < 4000; k++ {
			if err := f.Insert(k, k*7); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(0); k < 4000; k += 5 {
			if err := f.Remove(k); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		imgs := f.CrashImages(nil, 0)
		f2, err := Open(imgs, testOpts(4, dual))
		if err != nil {
			t.Fatal(err)
		}
		verifyContents(t, f2, 4000)
	}
}

func TestCrashRecover(t *testing.T) {
	for _, dual := range []bool{false, true} {
		f := mustNew(t, 4, dual)
		for k := uint64(0); k < 4000; k++ {
			if err := f.Insert(k, k*7); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(0); k < 4000; k += 5 {
			if err := f.Remove(k); err != nil {
				t.Fatal(err)
			}
		}
		// No Close: a hard power cut with random dirty-line eviction. The
		// forest is quiescent, so every committed record must survive.
		rng := rand.New(rand.NewSource(7))
		imgs := f.CrashImages(rng, 0.5)
		f2, err := Open(imgs, testOpts(4, dual))
		if err != nil {
			t.Fatal(err)
		}
		verifyContents(t, f2, 4000)
	}
}

func verifyContents(t *testing.T, f *Forest, n uint64) {
	t.Helper()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < n; k++ {
		v, ok := f.Find(k)
		if k%5 == 0 {
			if ok {
				t.Fatalf("removed key %d found after recovery", k)
			}
			continue
		}
		if !ok || v != k*7 {
			t.Fatalf("Find(%d) after recovery = %d,%v", k, v, ok)
		}
	}
	// Recovered forest stays writable.
	if err := f.Upsert(n+1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsBadImageSets(t *testing.T) {
	f := mustNew(t, 4, true)
	for k := uint64(0); k < 100; k++ {
		if err := f.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	imgs := f.CrashImages(nil, 0)

	// Reordered partitions.
	swapped := [][]uint64{imgs[1], imgs[0], imgs[2], imgs[3]}
	if _, err := Open(swapped, testOpts(4, true)); err == nil {
		t.Fatal("reordered image set accepted")
	}
	// Subset of partitions (count mismatch).
	if _, err := Open(imgs[:2], testOpts(4, true)); err == nil {
		t.Fatal("partial image set accepted")
	}
	// Non-power-of-two set.
	if _, err := Open(imgs[:3], testOpts(4, true)); err == nil {
		t.Fatal("3-image set accepted")
	}
	// A bare single-tree arena has no forest superblock.
	st := mustNew(t, 1, true)
	bare := st.Partition(0).Arena().CrashImage(nil, 0)
	// Clear the forest pointer to simulate a pre-forest image.
	bare[48/8] = 0
	if _, err := Open([][]uint64{bare}, testOpts(1, true)); err == nil {
		t.Fatal("arena without forest superblock accepted")
	}
	// The original, correctly ordered set still opens.
	if _, err := Open(imgs, testOpts(4, true)); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAggregation(t *testing.T) {
	f := mustNew(t, 4, true)
	for k := uint64(0); k < 2000; k++ {
		if err := f.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.Persists == 0 || s.WordsWritten == 0 || s.HTM.Commits == 0 || s.Leaves == 0 {
		t.Fatalf("aggregated stats have zero fields: %+v", s)
	}
	per := f.PartitionStats()
	if len(per) != 4 {
		t.Fatalf("PartitionStats len %d", len(per))
	}
	var sum core.Stats
	for _, ps := range per {
		sum.Persists += ps.Persists
		sum.HTM.Commits += ps.HTM.Commits
		sum.Leaves += ps.Leaves
	}
	if sum.Persists != s.Persists || sum.HTM.Commits != s.HTM.Commits || sum.Leaves != s.Leaves {
		t.Fatalf("aggregate %+v disagrees with per-partition sum %+v", s, sum)
	}
	if s.Leaves != f.LeafCount() {
		t.Fatalf("Leaves %d != LeafCount %d", s.Leaves, f.LeafCount())
	}
	f.ResetStats()
	if s2 := f.Stats(); s2.Persists != 0 || s2.HTM.Commits != 0 {
		t.Fatalf("ResetStats left counters: %+v", s2)
	}
}

func TestBulkLoad(t *testing.T) {
	var recs []tree.KV
	for k := uint64(0); k < 5000; k++ {
		recs = append(recs, tree.KV{Key: k * 3, Value: k})
	}
	f, err := BulkLoad(testOpts(8, true), recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if v, ok := f.Find(r.Key); !ok || v != r.Value {
			t.Fatalf("Find(%d) = %d,%v", r.Key, v, ok)
		}
	}
	i := 0
	f.Scan(0, 0, func(k, v uint64) bool {
		if k != recs[i].Key || v != recs[i].Value {
			return false
		}
		i++
		return true
	})
	if i != len(recs) {
		t.Fatalf("bulk-loaded scan visited %d of %d", i, len(recs))
	}
	// Bulk-loaded forests recover like any other.
	f.Close()
	f2, err := Open(f.CrashImages(nil, 0), testOpts(8, true))
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != len(recs) {
		t.Fatalf("recovered bulk load has %d records", f2.Len())
	}
}

// A partition whose initial segment fills must grow by appending segments
// instead of surfacing ErrFull, and the grown layout must survive a crash.
func TestPartitionGrowsInsteadOfFilling(t *testing.T) {
	opts := Options{
		Partitions:  2,
		ArenaSize:   1 << 16,
		GrowSize:    1 << 16,
		MaxSegments: 4,
		Tree:        core.Options{LeafCapacity: 8},
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	initial := f.Partition(0).Arena().Size()
	const n = 4000 // well past what one 64KB segment per partition can hold
	for k := uint64(1); k <= n; k++ {
		if err := f.Insert(k, k*7); err != nil {
			t.Fatalf("Insert(%d) on a growable forest: %v", k, err)
		}
	}
	grew := 0
	for i := 0; i < f.Partitions(); i++ {
		if a := f.Partition(i).Arena(); a.Size() > initial {
			if a.Segments() < 2 {
				t.Fatalf("partition %d grew without committing a segment", i)
			}
			grew++
		}
	}
	if grew == 0 {
		t.Fatal("no partition grew; shrink ArenaSize or raise n")
	}
	// Hard power cut across the grown layout.
	imgs := f.CrashImages(nil, 0)
	f2, err := Open(imgs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= n; k++ {
		if v, ok := f2.Find(k); !ok || v != k*7 {
			t.Fatalf("Find(%d) after grown recovery = %d,%v", k, v, ok)
		}
	}
	// The recovered forest keeps growing: fill further without error.
	for k := uint64(n + 1); k <= n+500; k++ {
		if err := f2.Insert(k, k*7); err != nil {
			t.Fatalf("post-recovery Insert(%d): %v", k, err)
		}
	}
}
