package forest

import (
	"container/heap"

	"rntree/internal/core"
	"rntree/internal/tree"
)

// Iterator walks the whole forest in ascending key order by k-way merging
// one per-partition tree iterator per partition. Like the underlying tree
// iterators it observes each leaf atomically and tolerates concurrent
// writers between batches; it must only be used by one goroutine.
type Iterator struct {
	f *Forest
	h mergeHeap
}

// NewIterator positions a merged iterator at the first key >= start.
func (f *Forest) NewIterator(start uint64) *Iterator {
	it := &Iterator{f: f}
	it.init(start)
	return it
}

func (it *Iterator) init(start uint64) {
	it.h = it.h[:0]
	for _, p := range it.f.parts {
		ci := p.tree.NewIterator(start)
		if kv, ok := ci.Next(); ok {
			it.h = append(it.h, mergeCursor{kv: kv, it: ci})
		}
	}
	heap.Init(&it.h)
}

// Next returns the next record in global key order and false when every
// partition is exhausted.
func (it *Iterator) Next() (tree.KV, bool) {
	if len(it.h) == 0 {
		return tree.KV{}, false
	}
	kv := it.h[0].kv
	if nkv, ok := it.h[0].it.Next(); ok {
		it.h[0].kv = nkv
		heap.Fix(&it.h, 0)
	} else {
		heap.Pop(&it.h)
	}
	return kv, true
}

// Seek repositions the iterator at the first key >= key.
func (it *Iterator) Seek(key uint64) { it.init(key) }

// mergeCursor is one partition's iterator plus its buffered head record.
type mergeCursor struct {
	kv tree.KV
	it *core.Iterator
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].kv.Key < h[j].kv.Key }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}
