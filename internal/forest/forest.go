// Package forest partitions RNTree into a hash-routed forest of
// independent trees. Every partition owns its own pmem.Arena, htm.Region
// (and therefore its own fallback lock, abort counters and persist stream),
// volatile inner index, and recovery root — so the serialization points
// that cap a single tree's scalability multiply with the partition count
// instead of being shared by every thread.
//
// Keys are routed by a finalizing 64-bit mix of the key modulo the
// partition count, which keeps each partition a uniform sample of the key
// space regardless of insertion pattern. Range scans merge the partitions'
// per-tree ordered iterators through a k-way heap, preserving the global
// key order the single tree provides.
//
// Each partition's arena carries a forest superblock (partition count and
// this partition's index) reachable from the root line, so recovery can
// verify that a set of crash images really is one coherent forest, in the
// right order, before recovering every partition independently.
package forest

import (
	"fmt"
	"math/bits"
	"math/rand"

	"rntree/internal/core"
	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// rootForestOff is the root-line word (see internal/core's root layout:
// words 0-4 belong to the tree, word 5 to the kv store) holding the offset
// of this arena's forest superblock, or NullOff for a standalone tree.
const rootForestOff = 48

// forestMagic marks a forest superblock line ("RNFRST" v1).
const forestMagic = 0x524e_4652_5354_0001

// Forest superblock line layout (one line per partition arena).
const (
	sbMagicOff = 0  // format magic
	sbCountOff = 8  // total partitions in the forest
	sbIndexOff = 16 // this partition's index
)

// MaxPartitions bounds the fan-out; enough to saturate any thread count the
// benchmarks use while keeping the merge heap small.
const MaxPartitions = 256

// Options configure a Forest.
type Options struct {
	// Partitions is the number of trees in the forest; must be a power of
	// two in [1, MaxPartitions]. Default 1.
	Partitions int
	// ArenaSize is the initial simulated NVM capacity of EACH partition
	// arena in bytes (default 64 MiB). Heap-formatted partitions grow past
	// it by appending segments, up to MaxSegments.
	ArenaSize uint64
	// GrowSize is the size of each appended segment (default: ArenaSize).
	GrowSize uint64
	// MaxSegments caps a partition at ArenaSize +
	// (MaxSegments-1)*GrowSize bytes (default 8). 1 disables growth.
	MaxSegments int
	// Latency is the persistent-instruction cost model applied to every
	// partition arena.
	Latency pmem.LatencyModel
	// Tree holds the per-partition tree options. Tree.Region is ignored:
	// the forest builds one region per partition so each has a private
	// fallback lock and outcome counters.
	Tree core.Options
}

func (o *Options) normalize() error {
	if o.Partitions == 0 {
		o.Partitions = 1
	}
	if o.Partitions < 1 || o.Partitions > MaxPartitions || bits.OnesCount(uint(o.Partitions)) != 1 {
		return fmt.Errorf("forest: partitions %d not a power of two in [1,%d]", o.Partitions, MaxPartitions)
	}
	if o.ArenaSize == 0 {
		o.ArenaSize = 64 << 20
	}
	if o.MaxSegments == 0 {
		o.MaxSegments = 8
	}
	return nil
}

// arenaConfig is the pmem configuration shared by every partition arena.
func (o *Options) arenaConfig() pmem.Config {
	return pmem.Config{
		Size:        o.ArenaSize,
		GrowSize:    o.GrowSize,
		MaxSegments: o.MaxSegments,
		Latency:     o.Latency,
	}
}

// Partition is one tree of the forest together with the resources it owns.
type Partition struct {
	arena  *pmem.Arena
	region *htm.Region
	tree   *core.Tree
	sbOff  uint64
}

// Arena returns the partition's private persistent arena.
func (p *Partition) Arena() *pmem.Arena { return p.arena }

// Region returns the partition's private HTM region.
func (p *Partition) Region() *htm.Region { return p.region }

// Tree returns the partition's RNTree.
func (p *Partition) Tree() *core.Tree { return p.tree }

// Forest is a hash-partitioned set of RNTrees implementing the same Index
// interface as a single tree. All methods are safe for concurrent use.
type Forest struct {
	parts []*Partition
	mask  uint64
}

var _ tree.Index = (*Forest)(nil)

// Mix64 is the splitmix64 finalizer: a cheap invertible scrambler that
// turns dense or structured keys into uniformly distributed partition
// picks. Routing must be a pure function of the key (never of load) so a
// key recovers into the same partition it was written to.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// PartitionFor returns the partition index owning key.
func (f *Forest) PartitionFor(key uint64) int {
	return int(Mix64(key) & f.mask)
}

// Partitions returns the number of partitions.
func (f *Forest) Partitions() int { return len(f.parts) }

// Partition returns partition i (for stats, kv binding, and tests).
func (f *Forest) Partition(i int) *Partition { return f.parts[i] }

// New creates an empty forest: one fresh arena, region and tree per
// partition, each stamped with a forest superblock.
func New(opts Options) (*Forest, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	f := &Forest{parts: make([]*Partition, opts.Partitions), mask: uint64(opts.Partitions - 1)}
	for i := range f.parts {
		a := pmem.New(opts.arenaConfig())
		p, err := newPartition(a, i, opts)
		if err != nil {
			return nil, err
		}
		f.parts[i] = p
	}
	return f, nil
}

func newPartition(a *pmem.Arena, idx int, opts Options) (*Partition, error) {
	topts := opts.Tree
	region := htm.NewRegion(a, topts.HTM)
	topts.Region = region
	t, err := core.New(a, topts)
	if err != nil {
		return nil, err
	}
	sbOff, err := a.Alloc(pmem.LineSize)
	if err != nil {
		return nil, tree.ErrFull
	}
	a.Write8(sbOff+sbMagicOff, forestMagic)
	a.Write8(sbOff+sbCountOff, uint64(opts.Partitions))
	a.Write8(sbOff+sbIndexOff, uint64(idx))
	a.Persist(sbOff, pmem.LineSize)
	// Root pointer flip is the commit point: the superblock is durable
	// before anything references it.
	a.Write8(rootForestOff, sbOff)
	a.Persist(0, pmem.RootSize)
	return &Partition{arena: a, region: region, tree: t, sbOff: sbOff}, nil
}

// BulkLoad builds a forest from records sorted by strictly increasing key,
// routing each record and bulk-loading every partition's (still sorted)
// share with one persistent instruction per leaf.
func BulkLoad(opts Options, records []tree.KV) (*Forest, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	mask := uint64(opts.Partitions - 1)
	buckets := make([][]tree.KV, opts.Partitions)
	for _, r := range records {
		i := int(Mix64(r.Key) & mask)
		buckets[i] = append(buckets[i], r)
	}
	f := &Forest{parts: make([]*Partition, opts.Partitions), mask: mask}
	for i := range f.parts {
		a := pmem.New(opts.arenaConfig())
		topts := opts.Tree
		region := htm.NewRegion(a, topts.HTM)
		topts.Region = region
		t, err := core.BulkLoad(a, topts, buckets[i])
		if err != nil {
			return nil, err
		}
		sbOff, err := a.Alloc(pmem.LineSize)
		if err != nil {
			return nil, tree.ErrFull
		}
		a.Write8(sbOff+sbMagicOff, forestMagic)
		a.Write8(sbOff+sbCountOff, uint64(opts.Partitions))
		a.Write8(sbOff+sbIndexOff, uint64(i))
		a.Persist(sbOff, pmem.LineSize)
		a.Write8(rootForestOff, sbOff)
		a.Persist(0, pmem.RootSize)
		f.parts[i] = &Partition{arena: a, region: region, tree: t, sbOff: sbOff}
	}
	return f, nil
}

// Open recovers a forest from per-partition crash images (in partition
// order), rebooting each image into a fresh arena first.
func Open(imgs [][]uint64, opts Options) (*Forest, error) {
	arenas := make([]*pmem.Arena, len(imgs))
	for i, img := range imgs {
		arenas[i] = pmem.Recover(img, pmem.Config{Latency: opts.Latency})
	}
	return OpenArenas(arenas, opts)
}

// OpenArenas recovers a forest over already-rebooted arenas, one per
// partition in partition order. Each partition recovers independently —
// reconstruction after a clean shutdown, undo rollback plus chain rebuild
// after a crash — and its forest superblock is verified against the set:
// right magic, matching partition count, matching position. The kv layer
// and the fault explorer use this entry point so they can extend each
// arena's allocator past their own structures afterwards.
func OpenArenas(arenas []*pmem.Arena, opts Options) (*Forest, error) {
	n := len(arenas)
	if n < 1 || n > MaxPartitions || bits.OnesCount(uint(n)) != 1 {
		return nil, fmt.Errorf("forest: %d arenas not a power of two in [1,%d]", n, MaxPartitions)
	}
	f := &Forest{parts: make([]*Partition, n), mask: uint64(n - 1)}
	for i, a := range arenas {
		topts := opts.Tree
		region := htm.NewRegion(a, topts.HTM)
		topts.Region = region
		t, err := core.Open(a, topts)
		if err != nil {
			return nil, fmt.Errorf("forest: partition %d: %w", i, err)
		}
		sbOff := a.Read8(rootForestOff)
		if sbOff == pmem.NullOff {
			return nil, fmt.Errorf("forest: partition %d: arena has no forest superblock", i)
		}
		if m := a.Read8(sbOff + sbMagicOff); m != forestMagic {
			return nil, fmt.Errorf("forest: partition %d: bad superblock magic %#x", i, m)
		}
		if c := a.Read8(sbOff + sbCountOff); c != uint64(n) {
			return nil, fmt.Errorf("forest: partition %d: superblock says %d partitions, opening %d", i, c, n)
		}
		if ix := a.Read8(sbOff + sbIndexOff); ix != uint64(i) {
			return nil, fmt.Errorf("forest: image at position %d belongs to partition %d", i, ix)
		}
		// Tree recovery set the allocator mark from its leaf chain, which
		// may sit below the superblock line on a tree that never split.
		if a.Bump() < sbOff+pmem.LineSize {
			a.SetBump(sbOff + pmem.LineSize)
		}
		f.parts[i] = &Partition{arena: a, region: region, tree: t, sbOff: sbOff}
	}
	return f, nil
}

// Attach wraps an already-recovered single tree as a 1-partition forest,
// allocating and stamping a fresh forest superblock. It exists for layered
// recovery of pre-forest images (the kv store's legacy migration): the
// caller has already opened the tree with an injected region and extended
// the arena's allocator past every structure it owns, so allocating the
// superblock here is safe. Any prior superblock pointer is simply
// overwritten (a crashed earlier Attach leaks at most one line, like any
// unreferenced block under the volatile allocator).
func Attach(a *pmem.Arena, region *htm.Region, t *core.Tree) (*Forest, error) {
	sbOff, err := a.Alloc(pmem.LineSize)
	if err != nil {
		return nil, tree.ErrFull
	}
	a.Write8(sbOff+sbMagicOff, forestMagic)
	a.Write8(sbOff+sbCountOff, 1)
	a.Write8(sbOff+sbIndexOff, 0)
	a.Persist(sbOff, pmem.LineSize)
	a.Write8(rootForestOff, sbOff)
	a.Persist(0, pmem.RootSize)
	return &Forest{
		parts: []*Partition{{arena: a, region: region, tree: t, sbOff: sbOff}},
		mask:  0,
	}, nil
}

// Detach clears the arena's forest superblock pointer, turning it back
// into a faithful pre-forest image (the kv store's v1 downgrade uses this
// to fabricate legacy images for migration testing). The superblock line
// itself is leaked, exactly as a pre-forest writer would have left it.
func Detach(a *pmem.Arena) {
	a.Write8(rootForestOff, pmem.NullOff)
	a.Persist(0, pmem.RootSize)
}

// Insert routes to the owning partition; it fails with ErrKeyExists if the
// key is present.
func (f *Forest) Insert(key, value uint64) error {
	return f.parts[f.PartitionFor(key)].tree.Insert(key, value)
}

// Update routes to the owning partition; it fails with ErrKeyNotFound if
// the key is absent.
func (f *Forest) Update(key, value uint64) error {
	return f.parts[f.PartitionFor(key)].tree.Update(key, value)
}

// Upsert writes key unconditionally in its owning partition.
func (f *Forest) Upsert(key, value uint64) error {
	return f.parts[f.PartitionFor(key)].tree.Upsert(key, value)
}

// Find looks the key up in its owning partition.
func (f *Forest) Find(key uint64) (uint64, bool) {
	return f.parts[f.PartitionFor(key)].tree.Find(key)
}

// Remove deletes key from its owning partition.
func (f *Forest) Remove(key uint64) error {
	return f.parts[f.PartitionFor(key)].tree.Remove(key)
}

// Scan visits records with key >= start in globally ascending key order by
// merging the partitions' ordered iterators. It has the same consistency
// semantics as a sequence of per-leaf range queries on one tree: each batch
// is an atomic leaf snapshot, concurrent writers may land between batches.
func (f *Forest) Scan(start uint64, max int, fn func(key, value uint64) bool) int {
	if len(f.parts) == 1 {
		return f.parts[0].tree.Scan(start, max, fn)
	}
	it := f.NewIterator(start)
	count := 0
	for {
		if max > 0 && count >= max {
			return count
		}
		kv, ok := it.Next()
		if !ok {
			return count
		}
		count++
		if !fn(kv.Key, kv.Value) {
			return count
		}
	}
}

// Len counts the records in the forest (a full scan of every partition).
func (f *Forest) Len() int {
	n := 0
	for _, p := range f.parts {
		n += p.tree.Len()
	}
	return n
}

// Close performs a clean shutdown of every partition (persists transient
// bookkeeping and arms each clean flag). Partitions must be quiescent.
func (f *Forest) Close() {
	for _, p := range f.parts {
		p.tree.Close()
	}
}

// CrashImages simulates power loss across the whole forest: one crash image
// per partition, in partition order. rng drives dirty-line eviction
// sampling (nil with evictProb 0 captures exactly the persisted state).
func (f *Forest) CrashImages(rng *rand.Rand, evictProb float64) [][]uint64 {
	imgs := make([][]uint64, len(f.parts))
	for i, p := range f.parts {
		imgs[i] = p.arena.CrashImage(rng, evictProb)
	}
	return imgs
}

// Stats sums the per-partition snapshots; Depth is the maximum over
// partitions (the forest's traversal depth).
func (f *Forest) Stats() core.Stats {
	var s core.Stats
	for _, p := range f.parts {
		ps := p.tree.Stats()
		s.Persists += ps.Persists
		s.LinesFlushed += ps.LinesFlushed
		s.WordsWritten += ps.WordsWritten
		s.ReadRetries += ps.ReadRetries
		s.HTM.Commits += ps.HTM.Commits
		s.HTM.ConflictAborts += ps.HTM.ConflictAborts
		s.HTM.CapacityAborts += ps.HTM.CapacityAborts
		s.HTM.ExplicitAborts += ps.HTM.ExplicitAborts
		s.HTM.PersistAborts += ps.HTM.PersistAborts
		s.HTM.Fallbacks += ps.HTM.Fallbacks
		s.HTM.SpuriousAborts += ps.HTM.SpuriousAborts
		s.Leaves += ps.Leaves
		if ps.Depth > s.Depth {
			s.Depth = ps.Depth
		}
	}
	return s
}

// PartitionStats returns each partition's private snapshot, exposing skew
// in persists, aborts and fallback pressure across the forest.
func (f *Forest) PartitionStats() []core.Stats {
	out := make([]core.Stats, len(f.parts))
	for i, p := range f.parts {
		out[i] = p.tree.Stats()
	}
	return out
}

// ResetStats zeroes every partition's persistence and HTM counters.
func (f *Forest) ResetStats() {
	for _, p := range f.parts {
		p.arena.ResetStats()
		p.region.ResetStats()
	}
}

// ReadRetries sums wasted read attempts across partitions (the §6.3
// contention metric the bench experiments probe for).
func (f *Forest) ReadRetries() uint64 {
	var n uint64
	for _, p := range f.parts {
		n += p.tree.ReadRetries()
	}
	return n
}

// DualSlot reports whether the dual-slot-array design is enabled (uniform
// across partitions).
func (f *Forest) DualSlot() bool { return f.parts[0].tree.DualSlot() }

// LeafCount sums leaves over partitions.
func (f *Forest) LeafCount() int {
	n := 0
	for _, p := range f.parts {
		n += p.tree.LeafCount()
	}
	return n
}

// Depth is the maximum volatile-index depth over partitions.
func (f *Forest) Depth() int {
	d := 0
	for _, p := range f.parts {
		if pd := p.tree.Depth(); pd > d {
			d = pd
		}
	}
	return d
}

// CheckInvariants validates every partition's tree invariants plus the
// forest-level ones: superblock integrity and that every stored key routes
// to the partition holding it.
func (f *Forest) CheckInvariants() error {
	for i, p := range f.parts {
		if err := p.tree.CheckInvariants(); err != nil {
			return fmt.Errorf("partition %d: %w", i, err)
		}
		if m := p.arena.Read8(p.sbOff + sbMagicOff); m != forestMagic {
			return fmt.Errorf("partition %d: superblock magic %#x", i, m)
		}
		if c := p.arena.Read8(p.sbOff + sbCountOff); c != uint64(len(f.parts)) {
			return fmt.Errorf("partition %d: superblock count %d, have %d partitions", i, c, len(f.parts))
		}
		if ix := p.arena.Read8(p.sbOff + sbIndexOff); ix != uint64(i) {
			return fmt.Errorf("partition %d: superblock index %d", i, ix)
		}
		var routeErr error
		p.tree.Scan(0, 0, func(k, _ uint64) bool {
			if want := f.PartitionFor(k); want != i {
				routeErr = fmt.Errorf("partition %d holds key %d, which routes to %d", i, k, want)
				return false
			}
			return true
		})
		if routeErr != nil {
			return routeErr
		}
	}
	return nil
}
