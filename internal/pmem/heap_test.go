package pmem

import (
	"errors"
	"testing"
	"time"
)

func newTestHeap(t *testing.T, size, grow uint64, maxSegs int) *Heap {
	t.Helper()
	h := New(Config{Size: size, GrowSize: grow, MaxSegments: maxSegs, FreeChecks: FreeCheckOn})
	if !h.HeapFormatted() {
		t.Fatalf("New(%d, grow %d) did not heap-format", size, grow)
	}
	return h
}

func TestHeapFormatting(t *testing.T) {
	if !New(Config{Size: 1 << 16}).HeapFormatted() {
		t.Fatal("64KB arena should heap-format by default")
	}
	if New(Config{Size: 4096}).HeapFormatted() {
		t.Fatal("tiny arena must stay volatile")
	}
	if New(Config{Size: 1 << 16, VolatileAlloc: true}).HeapFormatted() {
		t.Fatal("VolatileAlloc must opt out of heap formatting")
	}
}

// The tentpole property: a freed block survives crash recovery on the
// persistent free list and is handed out again, and the bump mark is
// durable — recovery no longer leaks everything below it (the old SetBump
// contract).
func TestHeapFreeReuseSurvivesCrash(t *testing.T) {
	h := newTestHeap(t, 1<<16, 4096, 2)
	a1, err := h.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := h.Alloc(128)
	h.Write8(a2, 77)
	h.Persist(a2, 8)
	h.Free(a1, 128)
	bump := h.Bump()

	r := Recover(h.CrashImage(nil, 0), Config{FreeChecks: FreeCheckOn})
	if !r.HeapFormatted() {
		t.Fatal("recovered image lost heap formatting")
	}
	if r.Bump() != bump {
		t.Fatalf("bump not durable: %d != %d", r.Bump(), bump)
	}
	if got, _ := r.Alloc(128); got != a1 {
		t.Fatalf("freed block not reused after recovery: got %d want %d", got, a1)
	}
	if next, _ := r.Alloc(128); next <= a2 {
		t.Fatalf("allocator handed out live block space: %d overlaps %d", next, a2)
	}
	if r.Read8(a2) != 77 {
		t.Fatal("live data lost")
	}
}

func TestUndoRollbackOnCrash(t *testing.T) {
	h := newTestHeap(t, 1<<16, 4096, 2)
	off, _ := h.Alloc(64)
	h.Write8(off, 5)
	h.Write8(off+8, 6)
	h.Persist(off, 16)

	// An undo window opened but never committed: recovery must restore the
	// pre-window values.
	h.UndoBegin(off, off+8)
	h.MetaWrite8(off, 99)
	h.MetaWrite8(off+8, 100)
	r := Recover(h.CrashImage(nil, 0), Config{})
	if r.Read8(off) != 5 || r.Read8(off+8) != 6 {
		t.Fatalf("uncommitted window not rolled back: %d/%d", r.Read8(off), r.Read8(off+8))
	}

	// Committed window: the new values stick.
	h.UndoCommit()
	r = Recover(h.CrashImage(nil, 0), Config{})
	if r.Read8(off) != 99 || r.Read8(off+8) != 100 {
		t.Fatalf("committed window rolled back: %d/%d", r.Read8(off), r.Read8(off+8))
	}
}

func TestGrowOnDemand(t *testing.T) {
	h := newTestHeap(t, 1<<16, 1<<16, 3)
	if h.Segments() != 1 {
		t.Fatalf("fresh heap has %d segments", h.Segments())
	}
	var offs []uint64
	for h.Segments() == 1 {
		off, err := h.Alloc(4096)
		if err != nil {
			t.Fatalf("alloc before MaxSegments failed: %v", err)
		}
		h.Write8(off, off)
		h.Persist(off, 8)
		offs = append(offs, off)
	}
	if h.Segments() != 2 {
		t.Fatalf("segments = %d", h.Segments())
	}
	last := offs[len(offs)-1]
	if h.segIndex(last) != 1 {
		t.Fatalf("block %d not in grown segment", last)
	}
	r := Recover(h.CrashImage(nil, 0), Config{})
	if r.Segments() != 2 || r.Size() != h.Size() {
		t.Fatalf("growth not durable: %d segs, %d bytes", r.Segments(), r.Size())
	}
	for _, off := range offs {
		if r.Read8(off) != off {
			t.Fatalf("data at %d lost across grow+recover", off)
		}
	}
}

func TestGrowExhaustionIsTypedAndRetrySafe(t *testing.T) {
	h := newTestHeap(t, 1<<16, 4096, 2)
	var err error
	for i := 0; i < 1<<12; i++ {
		if _, err = h.Alloc(1024); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("exhaustion error = %v, want ErrOutOfMemory", err)
	}
	// The failure is retry-safe: freeing makes the same alloc succeed.
	if err := h.CheckHeap(); err != nil {
		t.Fatalf("heap inconsistent after exhaustion: %v", err)
	}
	off, err := func() (uint64, error) {
		o, e := h.Alloc(1024)
		return o, e
	}()
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("exhausted heap granted an alloc")
	}
	_ = off
}

// A crash after the new segment's header is persisted but before the nsegs
// cutover in segment 0 must recover to the pre-grow heap.
func TestGrowCrashBeforeCutover(t *testing.T) {
	h := newTestHeap(t, 1<<16, 1<<16, 3)
	sizeBefore := h.Size()
	n := h.Segments()
	_, end := h.segSpan(n)
	h.committedW.Store(end / WordSize)
	h.formatSeg(n) // crash here: header durable, cutover flip never ran

	r := Recover(h.CrashImage(nil, 0), Config{})
	if !r.HeapFormatted() {
		t.Fatal("recovered image lost heap formatting")
	}
	if r.Segments() != n || r.Size() != sizeBefore {
		t.Fatalf("uncommitted segment not discarded: %d segs, %d bytes", r.Segments(), r.Size())
	}
	if err := r.Grow(); err != nil {
		t.Fatalf("re-grow after truncated recovery: %v", err)
	}
	if r.Segments() != n+1 {
		t.Fatal("re-grow did not commit")
	}
}

// allocIntoSegment allocates until a block lands in the given segment.
func allocIntoSegment(t *testing.T, h *Heap, si int) uint64 {
	t.Helper()
	for i := 0; i < 1<<12; i++ {
		off, err := h.Alloc(4096)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		if h.segIndex(off) == si {
			return off
		}
	}
	t.Fatalf("never reached segment %d", si)
	return 0
}

// The swizzle round-trip from the acceptance criteria: snapshot a
// two-segment heap, recover the segments out of order at a different
// simulated base, resolve an absolute pointer persisted under the old
// mapping, re-encode, finish the swizzle, and recover once more at a third
// base with identical contents.
func TestSwizzleRoundTrip(t *testing.T) {
	h := New(Config{Size: 1 << 16, GrowSize: 1 << 16, MaxSegments: 3, SimBase: 0x4000_0000})
	ptrCell, _ := h.Alloc(64)
	target := allocIntoSegment(t, h, 1)
	h.Write8(target, 1234)
	h.Write8(ptrCell, h.SimAddr(target)) // absolute pointer, old mapping
	h.Persist(target, 8)
	h.Persist(ptrCell, 8)

	segs := h.SnapshotSegments()
	if len(segs) != 2 {
		t.Fatalf("SnapshotSegments = %d images", len(segs))
	}
	// Shuffled order: segments carry their ordinals.
	r, err := RecoverSegments([][]uint64{segs[1], segs[0]}, Config{SimBase: 0x9000_0000})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Swizzling() {
		t.Fatal("remapped heap not in swizzling state")
	}
	off, ok := r.FromSimAddr(r.Read8(ptrCell))
	if !ok || off != target {
		t.Fatalf("old-mapping pointer unresolved: %d (ok=%v), want %d", off, ok, target)
	}
	if r.Read8(off) != 1234 {
		t.Fatal("pointed-to data lost in round trip")
	}
	if r.SimAddr(target) == h.SimAddr(target) {
		t.Fatal("remap did not move the simulated base")
	}
	// Re-encode against the new mapping and finish.
	r.Write8(ptrCell, r.SimAddr(target))
	r.Persist(ptrCell, 8)
	r.FinishSwizzle()
	if r.Swizzling() {
		t.Fatal("FinishSwizzle left segments mid-swizzle")
	}

	// Second hop at a third base must resolve the re-encoded pointer.
	r2, err := RecoverSegments(r.SnapshotSegments(), Config{SimBase: 0x2000_0000})
	if err != nil {
		t.Fatal(err)
	}
	off2, ok := r2.FromSimAddr(r2.Read8(ptrCell))
	if !ok || off2 != target || r2.Read8(off2) != 1234 {
		t.Fatalf("second swizzle hop failed: off=%d ok=%v val=%d", off2, ok, r2.Read8(off2))
	}
}

func TestHandleRoundTrip(t *testing.T) {
	h := New(Config{Size: 1 << 16, GrowSize: 1 << 16, MaxSegments: 3})
	in0, _ := h.Alloc(64)
	in1 := allocIntoSegment(t, h, 1)
	for _, off := range []uint64{in0, in1} {
		got, ok := h.OffsetOf(h.HandleOf(off))
		if !ok || got != off {
			t.Fatalf("handle round trip %d -> %d (ok=%v)", off, got, ok)
		}
	}
	if _, ok := h.OffsetOf(Handle(5 << handleSegShift)); ok {
		t.Fatal("handle into uncommitted segment resolved")
	}
}

// Satellite: double and overlapping frees are detected in debug mode.
func TestDoubleFreeDetected(t *testing.T) {
	h := newTestHeap(t, 1<<16, 4096, 2)
	off, _ := h.Alloc(128)
	h.Free(off, 128)
	mustPanic(t, "double free", func() { h.Free(off, 128) })
}

func TestOverlappingFreeDetected(t *testing.T) {
	h := newTestHeap(t, 1<<16, 4096, 2)
	o1, _ := h.Alloc(64)
	o2, _ := h.Alloc(64)
	h.Free(o1, 128) // spans both blocks; first free of these lines
	mustPanic(t, "overlapping free", func() { h.Free(o2, 64) })
}

func TestFreeCheckOffAllowsDoubleFree(t *testing.T) {
	h := New(Config{Size: 1 << 16, FreeChecks: FreeCheckOff})
	off, _ := h.Alloc(128)
	h.Free(off, 128)
	h.Free(off, 128) // silently accepted with checking off
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s not detected", what)
		}
	}()
	f()
}

// Satellite regression: Zero used to bypass the latency model entirely.
// With a store cost configured it must now charge like WriteRange.
func TestZeroChargesStoreLatency(t *testing.T) {
	lat := LatencyModel{StorePerLine: 200 * time.Microsecond}
	a := New(Config{Size: 4096, Latency: lat})
	t0 := time.Now()
	a.Zero(256, 4*LineSize)
	if el := time.Since(t0); el < 700*time.Microsecond {
		t.Fatalf("Zero charged no store latency: %v", el)
	}
	t0 = time.Now()
	a.WriteRange(256, make([]byte, 4*LineSize))
	if el := time.Since(t0); el < 700*time.Microsecond {
		t.Fatalf("WriteRange charged no store latency: %v", el)
	}
}

func TestCheckHeapCatchesCorruption(t *testing.T) {
	h := newTestHeap(t, 1<<16, 4096, 2)
	off, _ := h.Alloc(128)
	h.Free(off, 128)
	if err := h.CheckHeap(); err != nil {
		t.Fatalf("healthy heap flagged: %v", err)
	}
	// Corrupt the class head to point above the bump mark.
	ci := h.findClass(128)
	h.Write8(seg0HdrOff+hdrClassOff+uint64(ci)*16+8, h.Bump()+4096)
	if h.CheckHeap() == nil {
		t.Fatal("free block above bump not flagged")
	}
}

// Header words live inside the arena's address space, so raw Write8 can
// scribble over them (the quick-check durability tests do exactly that).
// Recovery of such an image must select the legacy volatile path — never
// panic in the capacity arithmetic or attempt an absurd allocation — and
// the data outside the clobbered word must still read back. Regression
// for a makeslice overflow when a garbage hdrMaxSegsOff/hdrGrowSizeOff
// claimed a near-2^64 capacity.
func TestRecoverGarbageHeader(t *testing.T) {
	hostile := []uint64{
		0xffffffffffffffff, // all-ones: overflow bait for the capacity product
		0xe37a2ca18c97e1e9, // the quick.Check input that first tripped the panic
		1 << 62,            // huge but line-aligned: passes the %LineSize checks
		0,                  // zero: trips the nsegs/maxSegs >= 1 floor instead
	}
	const probe = uint64(RootSize) + hdrSize + 256 // user word clear of the header
	for word := uint64(0); word < hdrSize/WordSize; word++ {
		for _, v := range hostile {
			h := newTestHeap(t, 1<<16, 4096, 4)
			h.Write8(probe, 0xfeedface)
			h.Persist(probe, 8)
			off := seg0HdrOff + word*WordSize
			h.Write8(off, v)
			h.Persist(off, 8)
			r := Recover(h.CrashImage(nil, 0), Config{})
			if got := r.Read8(probe); got != 0xfeedface {
				t.Fatalf("header word %d = %#x: probe read %#x after recovery", word, v, got)
			}
		}
	}
}
