package pmem

import (
	"testing"
	"time"
)

func BenchmarkWrite8(b *testing.B) {
	a := New(Config{Size: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Write8(RootSize+uint64(i%1024)*8, uint64(i))
	}
}

func BenchmarkRead8(b *testing.B) {
	a := New(Config{Size: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Read8(RootSize + uint64(i%1024)*8)
	}
}

func BenchmarkPersistOneLineNoLatency(b *testing.B) {
	a := New(Config{Size: 1 << 20})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Write8(RootSize, uint64(i))
		a.Persist(RootSize, 8)
	}
}

func BenchmarkPersistOneLineDefaultLatency(b *testing.B) {
	a := New(Config{Size: 1 << 20, Latency: DefaultLatency})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Write8(RootSize, uint64(i))
		a.Persist(RootSize, 8)
	}
}

func BenchmarkPersistLeafSized(b *testing.B) {
	// 19-line persist: the cost of a split/compaction flush.
	a := New(Config{Size: 1 << 20, Latency: DefaultLatency})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Persist(RootSize, 19*LineSize)
	}
}

func BenchmarkWriteLineWords(b *testing.B) {
	a := New(Config{Size: 1 << 20})
	var w [WordsPerLine]uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w[0] = uint64(i)
		a.WriteLineWords(RootSize, &w)
	}
}

func BenchmarkCrashImage(b *testing.B) {
	a := New(Config{Size: 8 << 20})
	for i := uint64(0); i < 1024; i++ {
		a.Write8(RootSize+i*8, i)
	}
	a.Persist(RootSize, 1024*8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.CrashImage(nil, 0)
	}
}

func BenchmarkSpinAccuracy(b *testing.B) {
	// Sanity: the latency busy-wait is in the right ballpark.
	a := New(Config{Size: 1 << 16, Latency: LatencyModel{Fence: 500 * time.Nanosecond}})
	t0 := time.Now()
	const n = 1000
	for i := 0; i < n; i++ {
		a.Fence()
	}
	el := time.Since(t0)
	if el < n*400*time.Nanosecond {
		b.Fatalf("fences too fast: %v for %d", el, n)
	}
	b.ReportMetric(float64(el.Nanoseconds())/n, "ns/fence")
}
