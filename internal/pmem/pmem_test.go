package pmem

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTest(t *testing.T, size uint64) *Arena {
	t.Helper()
	return New(Config{Size: size})
}

func TestNewRoundsUpAndReservesRoot(t *testing.T) {
	a := New(Config{Size: 100})
	if a.Size()%LineSize != 0 {
		t.Fatalf("size %d not line aligned", a.Size())
	}
	off, err := a.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if off < RootSize {
		t.Fatalf("alloc %d overlaps root line", off)
	}
}

func TestWriteReadWord(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(128, 0xdeadbeefcafe)
	if got := a.Read8(128); got != 0xdeadbeefcafe {
		t.Fatalf("Read8 = %#x", got)
	}
	// Unpersisted data must not be in the NVM image.
	if got := a.NVMRead8(128); got != 0 {
		t.Fatalf("NVM image has unpersisted data: %#x", got)
	}
}

func TestMisalignedAccessPanics(t *testing.T) {
	a := newTest(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on misaligned access")
		}
	}()
	a.Write8(129, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	a := newTest(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	a.Read8(1 << 30)
}

func TestPersistMakesDurable(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(256, 42)
	a.Write8(264, 43)
	a.Persist(256, 16)
	if a.NVMRead8(256) != 42 || a.NVMRead8(264) != 43 {
		t.Fatal("persist did not reach NVM image")
	}
	s := a.Stats()
	if s.Persists != 1 {
		t.Fatalf("Persists = %d, want 1", s.Persists)
	}
	if s.LinesFlushed != 1 {
		t.Fatalf("LinesFlushed = %d, want 1", s.LinesFlushed)
	}
	if s.Fences != 1 {
		t.Fatalf("Fences = %d, want 1", s.Fences)
	}
}

func TestPersistSpanningLines(t *testing.T) {
	a := newTest(t, 4096)
	// Range crossing a line boundary flushes two lines but is one persist.
	a.Write8(120, 7)
	a.Write8(128, 8)
	a.Persist(120, 16)
	s := a.Stats()
	if s.Persists != 1 || s.LinesFlushed != 2 {
		t.Fatalf("persists=%d lines=%d, want 1/2", s.Persists, s.LinesFlushed)
	}
}

func TestLineRoundTrip(t *testing.T) {
	a := newTest(t, 4096)
	var src, dst [LineSize]byte
	for i := range src {
		src[i] = byte(i * 3)
	}
	a.WriteLine(512, &src)
	a.ReadLine(512+8, &dst) // any offset within the line reads the whole line
	if src != dst {
		t.Fatalf("line mismatch: %v != %v", src, dst)
	}
}

func TestRangeRoundTrip(t *testing.T) {
	a := newTest(t, 4096)
	src := make([]byte, 160)
	for i := range src {
		src[i] = byte(255 - i)
	}
	a.WriteRange(192, src)
	dst := make([]byte, 160)
	a.ReadRange(192, 160, dst)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: %d != %d", i, src[i], dst[i])
		}
	}
}

func TestDirtyTracking(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(1024, 5)
	found := false
	for _, off := range a.DirtyLines() {
		if off == 1024 {
			found = true
		}
	}
	if !found {
		t.Fatal("written line not reported dirty")
	}
	a.Persist(1024, 8)
	for _, off := range a.DirtyLines() {
		if off == 1024 {
			t.Fatal("persisted line still dirty")
		}
	}
}

func TestEvictLine(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(2048, 99)
	a.EvictLine(2048)
	if a.NVMRead8(2048) != 99 {
		t.Fatal("evicted line not in NVM image")
	}
	if a.Stats().Persists != 0 {
		t.Fatal("eviction must not count as a persistent instruction")
	}
}

func TestCrashImageExcludesUnflushed(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(256, 1)
	a.Persist(256, 8)
	a.Write8(320, 2) // dirty, never persisted
	img := a.CrashImage(nil, 0)
	r := Recover(img, Config{})
	if r.Read8(256) != 1 {
		t.Fatal("persisted word lost in crash")
	}
	if r.Read8(320) != 0 {
		t.Fatal("unpersisted word survived crash with evictProb=0")
	}
}

func TestCrashImageEviction(t *testing.T) {
	a := newTest(t, 1<<16)
	for i := 0; i < 100; i++ {
		a.Write8(uint64(RootSize+i*LineSize), uint64(i+1))
	}
	rng := rand.New(rand.NewSource(1))
	img := a.CrashImage(rng, 0.5)
	r := Recover(img, Config{})
	survived := 0
	for i := 0; i < 100; i++ {
		if r.Read8(uint64(RootSize+i*LineSize)) != 0 {
			survived++
		}
	}
	if survived == 0 || survived == 100 {
		t.Fatalf("eviction should include a strict subset, got %d/100", survived)
	}
}

func TestRecoverImagesEqual(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(256, 7)
	a.Persist(256, 8)
	r := Recover(a.CrashImage(nil, 0), Config{})
	// After reboot cache and nvm agree; nothing dirty.
	if len(r.DirtyLines()) != 0 {
		t.Fatal("recovered arena has dirty lines")
	}
	if r.Read8(256) != 7 || r.NVMRead8(256) != 7 {
		t.Fatal("recovered images disagree")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	a := newTest(t, 1<<16)
	o1, err := a.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	o2, _ := a.Alloc(128)
	if o2 == o1 {
		t.Fatal("distinct allocations alias")
	}
	if o1%LineSize != 0 || o2%LineSize != 0 {
		t.Fatal("allocations not line aligned")
	}
	a.Free(o1, 128)
	o3, _ := a.Alloc(128)
	if o3 != o1 {
		t.Fatalf("free list not reused: got %d want %d", o3, o1)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(Config{Size: 4 * LineSize})
	var err error
	for i := 0; i < 10; i++ {
		_, err = a.Alloc(LineSize)
		if err != nil {
			break
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestSetBumpResets(t *testing.T) {
	// SetBump's reset semantics only exist on volatile-allocator arenas;
	// heap-formatted arenas keep their persistent allocator state.
	a := New(Config{Size: 1 << 16, VolatileAlloc: true})
	o, _ := a.Alloc(64)
	a.Free(o, 64)
	a.SetBump(o + 640)
	o2, _ := a.Alloc(64)
	if o2 < o+640 {
		t.Fatalf("SetBump did not clear free list / move bump: got %d", o2)
	}
}

func TestHooksFire(t *testing.T) {
	a := newTest(t, 4096)
	var before, after int
	a.SetHooks(&Hooks{
		BeforePersist: func(off, size uint64) { before++ },
		AfterPersist:  func(off, size uint64) { after++ },
	})
	a.Write8(256, 1)
	a.Persist(256, 8)
	if before != 1 || after != 1 {
		t.Fatalf("hooks fired %d/%d times", before, after)
	}
	a.SetHooks(nil)
	a.Persist(256, 8)
	if before != 1 || after != 1 {
		t.Fatal("cleared hooks still fired")
	}
}

func TestBeforeHookSeesPreFlushState(t *testing.T) {
	a := newTest(t, 4096)
	var seen uint64 = 1
	a.SetHooks(&Hooks{BeforePersist: func(off, size uint64) {
		seen = a.NVMRead8(256)
	}})
	a.Write8(256, 9)
	a.Persist(256, 8)
	if seen != 0 {
		t.Fatalf("BeforePersist ran after flush (saw %d)", seen)
	}
}

func TestLatencyCharged(t *testing.T) {
	a := New(Config{Size: 4096, Latency: LatencyModel{FlushPerLine: 200 * time.Microsecond, Fence: 100 * time.Microsecond}})
	a.Write8(256, 1)
	t0 := time.Now()
	a.Persist(256, 8)
	if el := time.Since(t0); el < 250*time.Microsecond {
		t.Fatalf("persist returned too fast: %v", el)
	}
}

func TestZero(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(512, 11)
	a.Write8(520, 12)
	a.Zero(512, 64)
	if a.Read8(512) != 0 || a.Read8(520) != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestConcurrentDisjointWrites(t *testing.T) {
	a := newTest(t, 1<<20)
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(RootSize) + uint64(w)*per*8
			for i := uint64(0); i < per; i++ {
				a.Write8(base+i*8, uint64(w)<<32|i)
				a.Persist(base+i*8, 8)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		base := uint64(RootSize) + uint64(w)*per*8
		for i := uint64(0); i < per; i++ {
			if got := a.NVMRead8(base + i*8); got != uint64(w)<<32|i {
				t.Fatalf("worker %d word %d = %#x", w, i, got)
			}
		}
	}
	if s := a.Stats(); s.Persists != workers*per {
		t.Fatalf("Persists = %d, want %d", s.Persists, workers*per)
	}
}

// Property: a persisted word always equals what was last written before the
// persist, regardless of the write pattern. Slots start past the heap
// allocator's header lines: a 64KiB arena is heap-formatted, and a raw
// write inside the metadata region is not user data — recovery may
// legitimately roll it back as an interrupted allocator update.
func TestQuickPersistDurability(t *testing.T) {
	a := newTest(t, 1<<16)
	f := func(slot uint8, v uint64) bool {
		off := uint64(seg0HdrOff+hdrSize) + uint64(slot)*8
		a.Write8(off, v)
		a.Persist(off, 8)
		img := a.CrashImage(nil, 0)
		r := Recover(img, Config{})
		return r.Read8(off) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: words written but not persisted never appear in a no-eviction
// crash image unless they share a line with a persisted word.
func TestQuickUnpersistedIsolation(t *testing.T) {
	f := func(vals [8]uint64) bool {
		a := New(Config{Size: 1 << 12})
		// Line A persisted, line B not.
		for i, v := range vals {
			a.Write8(uint64(RootSize+i*8), v|1)          // line A
			a.Write8(uint64(RootSize+LineSize+i*8), v|1) // line B
		}
		a.Persist(RootSize, LineSize)
		r := Recover(a.CrashImage(nil, 0), Config{})
		for i, v := range vals {
			if r.Read8(uint64(RootSize+i*8)) != v|1 {
				return false
			}
			if r.Read8(uint64(RootSize+LineSize+i*8)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(256, 1)
	a.Persist(256, 8)
	a.ResetStats()
	if s := a.Stats(); s.Persists != 0 || s.WordsWritten != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

// TestCrashImageSeededDeterminism: the eviction model must be fully
// replayable — the same dirty state and the same seed produce a
// byte-identical crash image, so a logged seed reproduces any explorer
// failure exactly.
func TestCrashImageSeededDeterminism(t *testing.T) {
	build := func() *Arena {
		a := newTest(t, 64<<10)
		for i := uint64(0); i < 400; i++ {
			a.Write8(RootSize+i*8, i*2654435761)
			if i%5 == 0 {
				a.Persist(RootSize+i*8, 8)
			}
		}
		return a
	}
	a1, a2 := build(), build()
	img1 := a1.CrashImage(rand.New(rand.NewSource(77)), 0.4)
	img2 := a2.CrashImage(rand.New(rand.NewSource(77)), 0.4)
	if len(img1) != len(img2) {
		t.Fatalf("image sizes differ: %d vs %d", len(img1), len(img2))
	}
	for i := range img1 {
		if img1[i] != img2[i] {
			t.Fatalf("same seed produced different images at word %d: %#x vs %#x", i, img1[i], img2[i])
		}
	}
	// A different seed must pick a different eviction subset (with ~400
	// dirty lines the collision probability is negligible).
	img3 := build().CrashImage(rand.New(rand.NewSource(78)), 0.4)
	same := true
	for i := range img1 {
		if img1[i] != img3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical eviction subsets")
	}
}

func TestFenceHookAndEvictionCounters(t *testing.T) {
	a := newTest(t, 4096)
	fences := 0
	a.SetHooks(&Hooks{OnFence: func() { fences++ }})
	a.Fence()
	a.Fence()
	a.SetHooks(nil)
	if fences != 2 {
		t.Fatalf("OnFence fired %d times, want 2", fences)
	}
	a.Write8(256, 1)
	a.EvictLine(256)
	_ = a.CrashImage(rand.New(rand.NewSource(1)), 1.0) // no dirty lines left
	a.Write8(320, 2)
	_ = a.CrashImage(rand.New(rand.NewSource(1)), 1.0) // evicts the dirty line
	s := a.Stats()
	if s.CrashImages != 2 {
		t.Fatalf("CrashImages = %d, want 2", s.CrashImages)
	}
	if s.EvictedLines != 2 {
		t.Fatalf("EvictedLines = %d, want 2 (one EvictLine + one image merge)", s.EvictedLines)
	}
}

func TestOverlayCacheLine(t *testing.T) {
	a := newTest(t, 4096)
	a.Write8(256, 0xdead)
	a.Persist(256, 8)
	a.Write8(256, 0xbeef) // dirty again, nvm still holds 0xdead
	a.Write8(320, 0xf00d) // dirty, never persisted
	img := a.CrashImage(nil, 0)
	if img[256/WordSize] != 0xdead || img[320/WordSize] != 0 {
		t.Fatalf("pre image wrong: %#x %#x", img[256/WordSize], img[320/WordSize])
	}
	a.OverlayCacheLine(img, 320)
	if img[320/WordSize] != 0xf00d {
		t.Fatalf("overlay missed: %#x", img[320/WordSize])
	}
	if img[256/WordSize] != 0xdead {
		t.Fatalf("overlay touched other line: %#x", img[256/WordSize])
	}
}
