// Heap format: segment headers, the crash-consistent allocator, growth and
// pointer swizzling.
//
// A heap-formatted arena carries one persistent header per segment (the
// go-pmem runtime's pArena pattern): identity and geometry, the segment's
// simulated mapping address with its swizzle state, and — in segment 0 —
// the allocator metadata (bump mark, size-class free lists) plus a small
// undo log. Allocator updates follow the undo-log discipline from
// "Transactions on Red-black and AVL trees in NVRAM": single-word updates
// flip atomically (MetaFlip8); multi-word updates persist their old values
// into the undo area and arm a status word before mutating (UndoBegin /
// MetaWrite8 / UndoCommit), so recovery can always roll an interrupted
// update back to the pre-operation state. rnvet's undolog pass enforces the
// pairing statically.
//
// Segment header layout (hdrSize bytes; at offset RootSize in segment 0,
// at the segment base otherwise):
//
//	line 0: magic, ordinal, segSize, seg0Size, growSize, maxSegs,
//	        nsegs (segment 0 only), reserved
//	line 1: simBase, prevSimBase, swizzleState, bump (segment 0 only)
//	line 2+3: size-class table, classCount × (blockSize, headOff) pairs;
//	        free blocks thread the list through their first word
//	line 4: undo log: status (armed record count), then
//	        undoRecs × (address, old value) records
//	lines 5-7: reserved
package pmem

import (
	"fmt"
	"os"
	"strings"
)

const (
	// heapMagic0/heapMagicN identify a formatted initial/grown segment.
	heapMagic0 = 0x524e484541503030 // "RNHEAP00"
	heapMagicN = 0x524e484541503031 // "RNHEAP01"

	// seg0HdrOff is the header position in segment 0 (past the root line).
	seg0HdrOff = RootSize
	// hdrSize is the per-segment header footprint in bytes.
	hdrSize = 8 * LineSize

	// Header word offsets (relative to the header base).
	hdrMagicOff    = 0
	hdrOrdinalOff  = 8
	hdrSegSizeOff  = 16
	hdrSeg0SizeOff = 24
	hdrGrowSizeOff = 32
	hdrMaxSegsOff  = 40
	hdrNsegsOff    = 48
	hdrSimBaseOff  = 64
	hdrPrevBaseOff = 72
	hdrSwizzleOff  = 80
	hdrBumpOff     = 88
	hdrClassOff    = 2 * LineSize
	hdrUndoOff     = 4 * LineSize

	// classCount size classes of (blockSize, headOff) pairs fill two lines.
	classCount = 8
	// undoRecs (address, old value) records plus the status word fill the
	// undo line.
	undoRecs = 3

	// minHeapSize is the smallest initial segment that gets heap
	// formatting; smaller arenas (unit-test scratch space) keep the
	// volatile allocator. minGrowSize bounds appended segments.
	minHeapSize = 1 << 16
	minGrowSize = 4096

	// maxRecoverBytes is recoverHeap's plausibility ceiling on the total
	// capacity a crash image's header may claim (64 GiB — far above any
	// simulated device). Header words are user-reachable via raw Write8,
	// so recovery must treat absurd geometry as "not a heap image" and
	// fall back to the legacy path instead of letting the capacity
	// arithmetic overflow into a makeslice panic or a huge allocation.
	maxRecoverBytes = 1 << 36

	// defaultSimBase seeds segment mapping addresses when Config.SimBase
	// is zero: a canonical-looking user-space address.
	defaultSimBase = 0x00007c0000000000
	// simGuard separates consecutive segments' simulated mappings so
	// address ranges never abut (a swizzle bug that mixes up adjacent
	// segments resolves to nothing instead of the wrong segment).
	simGuard = 1 << 21
)

// Swizzle states persisted in hdrSwizzleOff.
const (
	// SwizzleClean: simBase is the segment's only mapping; prevSimBase is
	// meaningless.
	SwizzleClean uint64 = 0
	// SwizzleSwizzling: the heap was recovered at a new mapping address and
	// upper layers have not yet confirmed their absolute pointers are
	// re-encoded; FromSimAddr resolves prevSimBase too.
	SwizzleSwizzling uint64 = 1
)

// testBinary reports whether this process is a `go test` binary; free
// checking defaults on under tests (FreeCheckAuto).
var testBinary = strings.HasSuffix(os.Args[0], ".test")

// HeapFormatted reports whether the heap carries segment headers and the
// persistent allocator (false for volatile-mode and legacy-image arenas).
func (h *Heap) HeapFormatted() bool { return h.pa }

// Segments returns the number of committed segments (1 for fixed arenas).
func (h *Heap) Segments() int {
	if !h.pa {
		return 1
	}
	return int(h.Read8(seg0HdrOff + hdrNsegsOff))
}

// GrowSize returns the size in bytes of each appended segment.
func (h *Heap) GrowSize() uint64 { return h.growSize }

// Seg0Size returns the size in bytes of the initial segment.
func (h *Heap) Seg0Size() uint64 { return h.seg0Size }

// segIndex maps a byte offset to its segment ordinal.
func (h *Heap) segIndex(off uint64) int {
	if off < h.seg0Size {
		return 0
	}
	return 1 + int((off-h.seg0Size)/h.growSize)
}

// segSpan returns segment si's [base, end) byte range.
func (h *Heap) segSpan(si int) (base, end uint64) {
	if si == 0 {
		return 0, h.seg0Size
	}
	base = h.seg0Size + uint64(si-1)*h.growSize
	return base, base + h.growSize
}

// hdrBase returns the header offset of segment si.
func (h *Heap) hdrBase(si int) uint64 {
	base, _ := h.segSpan(si)
	if si == 0 {
		return base + RootSize
	}
	return base
}

// dataStart returns the first allocatable offset of segment si.
func (h *Heap) dataStart(si int) uint64 { return h.hdrBase(si) + hdrSize }

// simStride is the simulated-address distance between consecutive segment
// mappings, fixed by geometry so it is recomputable after recovery.
func (h *Heap) simStride() uint64 {
	stride := h.seg0Size
	if h.growSize > stride {
		stride = h.growSize
	}
	return stride + simGuard
}

// ---------------------------------------------------------------------------
// Formatting

// formatSeg0 writes and persists segment 0's header on a fresh heap.
func (h *Heap) formatSeg0(simSeed uint64) {
	if simSeed == 0 {
		simSeed = defaultSimBase
	}
	hb := uint64(seg0HdrOff)
	h.Write8(hb+hdrMagicOff, heapMagic0)
	h.Write8(hb+hdrOrdinalOff, 0)
	h.Write8(hb+hdrSegSizeOff, h.seg0Size)
	h.Write8(hb+hdrSeg0SizeOff, h.seg0Size)
	h.Write8(hb+hdrGrowSizeOff, h.growSize)
	h.Write8(hb+hdrMaxSegsOff, uint64(h.maxSegs))
	h.Write8(hb+hdrNsegsOff, 1)
	h.Write8(hb+hdrSimBaseOff, simSeed)
	h.Write8(hb+hdrPrevBaseOff, 0)
	h.Write8(hb+hdrSwizzleOff, SwizzleClean)
	h.Write8(hb+hdrBumpOff, h.dataStart(0))
	h.Persist(hb, hdrSize)
}

// formatSeg writes and persists segment si's header during Grow. The
// segment is not visible to recovery until the nsegs cutover commits it.
func (h *Heap) formatSeg(si int) {
	hb := h.hdrBase(si)
	seed := h.Read8(seg0HdrOff + hdrSimBaseOff)
	h.Write8(hb+hdrMagicOff, heapMagicN)
	h.Write8(hb+hdrOrdinalOff, uint64(si))
	h.Write8(hb+hdrSegSizeOff, h.growSize)
	h.Write8(hb+hdrSeg0SizeOff, h.seg0Size)
	h.Write8(hb+hdrGrowSizeOff, h.growSize)
	h.Write8(hb+hdrMaxSegsOff, uint64(h.maxSegs))
	h.Write8(hb+hdrSimBaseOff, seed+uint64(si)*h.simStride())
	h.Write8(hb+hdrPrevBaseOff, 0)
	h.Write8(hb+hdrSwizzleOff, SwizzleClean)
	h.Persist(hb, hdrSize)
}

// ---------------------------------------------------------------------------
// Undo-logged metadata updates

// MetaFlip8 atomically updates one word of persistent allocator metadata.
// A single aligned word is the simulated hardware's atomic write unit, so a
// flip is crash-consistent without an undo window: recovery observes either
// the old or the new value, both well-formed. Multi-word updates must use
// UndoBegin/MetaWrite8/UndoCommit instead (rnvet's undolog pass enforces
// this).
func (h *Heap) MetaFlip8(off, v uint64) {
	h.Write8(off, v)
	h.Persist(off, WordSize)
}

// UndoBegin opens an undo window over the given metadata words: their
// current values are persisted into the segment-0 undo log, then the status
// word arms the log. If the process crashes anywhere before UndoCommit,
// recovery rolls every logged word back to its pre-window value. At most
// undoRecs words fit one window.
func (h *Heap) UndoBegin(addrs ...uint64) {
	if len(addrs) == 0 || len(addrs) > undoRecs {
		panic(fmt.Sprintf("pmem: UndoBegin with %d records (max %d)", len(addrs), undoRecs))
	}
	ub := uint64(seg0HdrOff + hdrUndoOff)
	for i, addr := range addrs {
		h.Write8(ub+8+uint64(i)*16, addr)
		h.Write8(ub+16+uint64(i)*16, h.Read8(addr))
	}
	// Records first, then the arming flip: the status word must never be
	// durable before the old values it points at.
	h.Persist(ub, LineSize)
	h.Write8(ub, uint64(len(addrs)))
	h.Persist(ub, WordSize)
}

// MetaWrite8 stores and persists one metadata word inside an open undo
// window. Calling it outside a window is a discipline violation (undolog
// pass); the write would not be rolled back after a crash.
func (h *Heap) MetaWrite8(off, v uint64) {
	h.Write8(off, v)
	h.Persist(off, WordSize)
}

// UndoCommit closes the window: the multi-word update is complete, so the
// log is disarmed and recovery will keep the new values.
func (h *Heap) UndoCommit() {
	h.Write8(seg0HdrOff+hdrUndoOff, 0)
	h.Persist(seg0HdrOff+hdrUndoOff, WordSize)
}

// undoRecover rolls back an interrupted metadata update: if the status word
// is armed, every logged word is restored (newest first) and the log
// disarmed. Idempotent — crashing inside undoRecover re-runs it.
func (h *Heap) undoRecover() {
	ub := uint64(seg0HdrOff + hdrUndoOff)
	n := h.Read8(ub)
	if n == 0 {
		return
	}
	if n <= undoRecs {
		for i := n; i > 0; i-- {
			addr := h.Read8(ub + 8 + (i-1)*16)
			old := h.Read8(ub + 16 + (i-1)*16)
			if addr%WordSize == 0 && addr/WordSize < h.committedW.Load() {
				h.MetaFlip8(addr, old)
			}
		}
	}
	h.MetaFlip8(ub, 0)
}

// ---------------------------------------------------------------------------
// Persistent allocation

// findClass returns the class-table index holding blocks of exactly size
// bytes, or -1.
func (h *Heap) findClass(size uint64) int {
	for i := 0; i < classCount; i++ {
		if h.Read8(seg0HdrOff+hdrClassOff+uint64(i)*16) == size {
			return i
		}
	}
	return -1
}

// claimClass returns a class index for size: an exact match, or the first
// empty slot (claimed by the caller's free). -1 when the table is full of
// other sizes.
func (h *Heap) claimClass(size uint64) int {
	empty := -1
	for i := 0; i < classCount; i++ {
		cs := h.Read8(seg0HdrOff + hdrClassOff + uint64(i)*16)
		if cs == size {
			return i
		}
		if cs == 0 && empty < 0 {
			empty = i
		}
	}
	return empty
}

// heapAlloc is Alloc on a heap-formatted arena (allocMu held, size
// line-rounded): pop the size class, else the volatile overflow list, else
// bump — growing by a segment when the committed space is exhausted.
func (h *Heap) heapAlloc(size uint64) (uint64, error) {
	if ci := h.findClass(size); ci >= 0 {
		headOff := seg0HdrOff + hdrClassOff + uint64(ci)*16 + 8
		if head := h.Read8(headOff); head != 0 {
			// Single-word pop: the head flips to the block's stored next
			// pointer; either value is a well-formed list after a crash.
			h.MetaFlip8(headOff, h.Read8(head))
			h.noteAllocated(head, size)
			h.stats.allocs.Add(1)
			return head, nil
		}
	}
	if lst := h.freed[size]; len(lst) > 0 {
		off := lst[len(lst)-1]
		h.freed[size] = lst[:len(lst)-1]
		h.noteAllocated(off, size)
		h.stats.allocs.Add(1)
		return off, nil
	}
	for {
		off, needGrow, err := h.fitBump(size)
		if err != nil {
			return 0, err
		}
		if needGrow {
			if err := h.growLocked(); err != nil {
				return 0, err
			}
			continue
		}
		// The bump mark is persisted before the block is handed out, so a
		// recovered heap never re-allocates it. A crash between this flip
		// and the caller linking the block leaks it — bounded by one block
		// per crash, versus SetBump leaking every unlinked byte.
		h.MetaFlip8(seg0HdrOff+hdrBumpOff, off+size)
		h.noteAllocated(off, size)
		h.stats.allocs.Add(1)
		return off, nil
	}
}

// fitBump finds the lowest offset at or above the bump mark where a
// size-byte block fits entirely inside one segment's data region. needGrow
// reports that the hosting segment is not committed yet.
func (h *Heap) fitBump(size uint64) (off uint64, needGrow bool, err error) {
	off = h.Read8(seg0HdrOff + hdrBumpOff)
	committed := h.Size()
	for {
		si := h.segIndex(off)
		if si >= h.maxSegs {
			return 0, false, ErrOutOfMemory
		}
		_, end := h.segSpan(si)
		if ds := h.dataStart(si); off < ds {
			off = ds
		}
		if off+size > end {
			// The tail of segment si is too small: advance to the next
			// segment (the skipped tail is internal fragmentation). A block
			// larger than a whole grown segment's data region can never fit.
			if si+1 >= h.maxSegs || size > h.growSize-hdrSize {
				return 0, false, ErrOutOfMemory
			}
			off = end
			continue
		}
		return off, end > committed, nil
	}
}

// heapFree pushes the block onto its persistent size-class list, claiming a
// class slot if needed. The three metadata words (class size, class head,
// block link) change under one undo window, so a crash mid-free rolls back
// to the pre-free state instead of leaving a half-linked list. Returns
// false when the class table is full of other sizes (the caller falls back
// to the volatile overflow list, which a crash leaks — bounded by the
// number of distinct block sizes beyond classCount).
func (h *Heap) heapFree(off, size uint64) bool {
	ci := h.claimClass(size)
	if ci < 0 {
		return false
	}
	sizeOff := seg0HdrOff + hdrClassOff + uint64(ci)*16
	headOff := sizeOff + 8
	h.UndoBegin(sizeOff, headOff, off)
	h.MetaWrite8(off, h.Read8(headOff)) // thread the list through the block
	h.MetaWrite8(sizeOff, size)         // claim (or re-assert) the class
	h.MetaWrite8(headOff, off)          // publish the block
	h.UndoCommit()
	return true
}

// growLocked appends and commits one segment (allocMu held). The new
// segment's header is fully persisted before the nsegs flip in segment 0
// commits it; a crash in between leaves an uncommitted trailing segment
// that recovery discards.
func (h *Heap) growLocked() error {
	n := h.Segments()
	if n >= h.maxSegs {
		return ErrOutOfMemory
	}
	_, end := h.segSpan(n)
	h.committedW.Store(end / WordSize)
	h.formatSeg(n)
	h.MetaFlip8(seg0HdrOff+hdrNsegsOff, uint64(n+1))
	return nil
}

// Grow explicitly commits one more segment, as Alloc does on demand.
// Returns ErrOutOfMemory when the heap is at MaxSegments or not
// heap-formatted.
func (h *Heap) Grow() error {
	h.allocMu.Lock()
	defer h.allocMu.Unlock()
	if !h.pa {
		return ErrOutOfMemory
	}
	return h.growLocked()
}

// ---------------------------------------------------------------------------
// Free checking (debug)

func (h *Heap) initFreeCheck(mode FreeCheckMode) {
	switch mode {
	case FreeCheckOn:
		h.freeCheck = true
	case FreeCheckOff:
		h.freeCheck = false
	default:
		h.freeCheck = testBinary
	}
	if h.freeCheck {
		h.freeLines = make(map[uint64]struct{})
	}
}

// checkFree validates a Free against the currently-free line set (allocMu
// held): out-of-range, overlapping and double frees panic. Lines the heap
// recovered as free are tracked too (rebuildFreeLines).
func (h *Heap) checkFree(off, size uint64) {
	if !h.freeCheck {
		return
	}
	if off%LineSize != 0 || off < RootSize || size == 0 || off+size > h.Size() {
		panic(fmt.Sprintf("pmem: Free(%d, %d) outside allocatable space (size %d)", off, size, h.Size()))
	}
	for l := off; l < off+size; l += LineSize {
		if _, dup := h.freeLines[l]; dup {
			panic(fmt.Sprintf("pmem: double or overlapping free of line %d in Free(%d, %d)", l, off, size))
		}
	}
	for l := off; l < off+size; l += LineSize {
		h.freeLines[l] = struct{}{}
	}
}

// noteAllocated removes a handed-out block's lines from the free set.
func (h *Heap) noteAllocated(off, size uint64) {
	if !h.freeCheck {
		return
	}
	for l := off; l < off+size; l += LineSize {
		delete(h.freeLines, l)
	}
}

// rebuildFreeLines reseeds the debug free set from the persistent class
// lists after recovery.
func (h *Heap) rebuildFreeLines() {
	if !h.freeCheck {
		return
	}
	for i := 0; i < classCount; i++ {
		size := h.Read8(seg0HdrOff + hdrClassOff + uint64(i)*16)
		if size == 0 {
			continue
		}
		for off := h.Read8(seg0HdrOff + hdrClassOff + uint64(i)*16 + 8); off != 0; off = h.Read8(off) {
			for l := off; l < off+size; l += LineSize {
				h.freeLines[l] = struct{}{}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Recovery and invariants

// recoverHeap rebuilds a heap from a flat crash image when the image
// carries valid segment headers; returns nil to select the legacy volatile
// path. An appended-but-uncommitted trailing segment (crash inside Grow
// before the nsegs cutover) is silently discarded; an armed undo log is
// rolled back.
func recoverHeap(img []uint64, cfg Config) *Heap {
	if cfg.VolatileAlloc {
		return nil
	}
	imgBytes := uint64(len(img)) * WordSize
	if imgBytes < seg0HdrOff+hdrSize {
		return nil
	}
	rd := func(off uint64) uint64 { return img[off/WordSize] }
	if rd(seg0HdrOff+hdrMagicOff) != heapMagic0 {
		return nil
	}
	seg0 := rd(seg0HdrOff + hdrSeg0SizeOff)
	grow := rd(seg0HdrOff + hdrGrowSizeOff)
	maxSegs := int(rd(seg0HdrOff + hdrMaxSegsOff))
	nsegs := int(rd(seg0HdrOff + hdrNsegsOff))
	if seg0 != rd(seg0HdrOff+hdrSegSizeOff) || seg0%LineSize != 0 || grow == 0 ||
		grow%LineSize != 0 || seg0 < minHeapSize || grow < minGrowSize ||
		maxSegs < 1 || nsegs < 1 || nsegs > maxSegs {
		return nil
	}
	// Per-field caps first so the capacity arithmetic below cannot
	// overflow uint64 (seg0, grow <= 2^36; maxSegs <= 2^36/minGrow, so
	// seg0+(maxSegs-1)*grow < 2^61), then the combined ceiling.
	if seg0 > maxRecoverBytes || grow > maxRecoverBytes ||
		uint64(maxSegs) > maxRecoverBytes/minGrowSize {
		return nil
	}
	committed := seg0 + uint64(nsegs-1)*grow
	capacity := seg0 + uint64(maxSegs-1)*grow
	if committed > imgBytes || imgBytes > capacity || capacity > maxRecoverBytes {
		return nil
	}
	h := &Heap{
		cache: make([]uint64, capacity/WordSize),
		nvm:   make([]uint64, capacity/WordSize),
		dirty: make([]uint64, (capacity/LineSize+63)/64),
		lat:   cfg.Latency,
		drain: drainSem(cfg.Latency),
		freed: make(map[uint64][]uint64),

		pa:       true,
		seg0Size: seg0,
		growSize: grow,
		maxSegs:  maxSegs,
	}
	// Copy the whole image (an uncommitted trailing segment's bytes are
	// unreachable behind the committed watermark).
	//rnvet:ignore atomicfield single-threaded recovery: h has not escaped yet, no reader can race the bulk copy
	copy(h.cache, img)
	//rnvet:ignore atomicfield single-threaded recovery: h has not escaped yet
	copy(h.nvm, img)
	h.committedW.Store(committed / WordSize)
	h.initFreeCheck(cfg.FreeChecks)
	h.undoRecover()
	if h.CheckHeap() != nil {
		// Structurally invalid allocator metadata (e.g. raw writes over the
		// header region): fall back to the legacy volatile path rather than
		// refusing to serve the data. Recovery flows that require the heap
		// format assert HeapFormatted() and re-run CheckHeap themselves.
		return nil
	}
	h.rebuildFreeLines()
	return h
}

// CheckHeap validates the persistent allocator metadata of a heap-formatted
// arena: segment headers coherent, bump mark inside the committed space,
// undo log disarmed or well-formed, free lists acyclic with line-aligned
// in-bounds blocks below the bump mark and no block on two lists. Volatile
// arenas trivially pass. Intended for recovery and the fault explorer.
func (h *Heap) CheckHeap() error {
	if !h.pa {
		return nil
	}
	nsegs := h.Segments()
	if nsegs < 1 || nsegs > h.maxSegs {
		return fmt.Errorf("nsegs %d out of range [1,%d]", nsegs, h.maxSegs)
	}
	for si := 0; si < nsegs; si++ {
		hb := h.hdrBase(si)
		wantMagic := uint64(heapMagicN)
		if si == 0 {
			wantMagic = heapMagic0
		}
		if m := h.Read8(hb + hdrMagicOff); m != wantMagic {
			return fmt.Errorf("segment %d: bad magic %#x", si, m)
		}
		if o := h.Read8(hb + hdrOrdinalOff); o != uint64(si) {
			return fmt.Errorf("segment %d: ordinal %d", si, o)
		}
		if st := h.Read8(hb + hdrSwizzleOff); st != SwizzleClean && st != SwizzleSwizzling {
			return fmt.Errorf("segment %d: swizzle state %d", si, st)
		}
	}
	bump := h.Read8(seg0HdrOff + hdrBumpOff)
	if bump%LineSize != 0 || bump < h.dataStart(0) || bump > h.Size() {
		return fmt.Errorf("bump %d outside [%d, %d]", bump, h.dataStart(0), h.Size())
	}
	if n := h.Read8(seg0HdrOff + hdrUndoOff); n > undoRecs {
		return fmt.Errorf("undo status %d exceeds %d records", n, undoRecs)
	}
	seen := make(map[uint64]bool)
	maxSteps := h.Size() / LineSize
	for i := 0; i < classCount; i++ {
		size := h.Read8(seg0HdrOff + hdrClassOff + uint64(i)*16)
		head := h.Read8(seg0HdrOff + hdrClassOff + uint64(i)*16 + 8)
		if size == 0 {
			if head != 0 {
				return fmt.Errorf("class %d: head %d with zero size", i, head)
			}
			continue
		}
		if size%LineSize != 0 {
			return fmt.Errorf("class %d: unaligned size %d", i, size)
		}
		steps := uint64(0)
		for off := head; off != 0; off = h.Read8(off) {
			if steps++; steps > maxSteps {
				return fmt.Errorf("class %d: free list cycle", i)
			}
			si := h.segIndex(off)
			_, end := h.segSpan(si)
			if si >= nsegs || off%LineSize != 0 || off < h.dataStart(si) || off+size > end {
				return fmt.Errorf("class %d: block [%d,%d) outside segment %d data", i, off, off+size, si)
			}
			if off+size > bump && si == h.segIndex(bump) && off >= bump {
				return fmt.Errorf("class %d: block %d above bump %d", i, off, bump)
			}
			for l := off; l < off+size; l += LineSize {
				if seen[l] {
					return fmt.Errorf("class %d: line %d on two free blocks", i, l)
				}
				seen[l] = true
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Handles and swizzling

// A Handle is a position-independent (segment, offset) reference to a heap
// location: the segment ordinal in the top 16 bits, the byte offset within
// the segment below. Handles survive recovery at any mapping address and —
// unlike flat offsets — remain meaningful if a future layout resizes
// segments independently.
type Handle uint64

const handleSegShift = 48

// HandleOf encodes the (segment, offset) handle for a flat byte offset.
func (h *Heap) HandleOf(off uint64) Handle {
	si := 0
	if h.pa {
		si = h.segIndex(off)
	}
	base, _ := h.segSpan(si)
	return Handle(uint64(si)<<handleSegShift | (off - base))
}

// OffsetOf decodes a handle back to a flat byte offset; ok is false when
// the handle points outside the committed heap.
func (h *Heap) OffsetOf(hd Handle) (uint64, bool) {
	si := int(uint64(hd) >> handleSegShift)
	segOff := uint64(hd) & (1<<handleSegShift - 1)
	if !h.pa {
		if si != 0 || segOff >= h.Size() {
			return 0, false
		}
		return segOff, true
	}
	if si >= h.Segments() {
		return 0, false
	}
	base, end := h.segSpan(si)
	if base+segOff >= end {
		return 0, false
	}
	return base + segOff, true
}

// SimAddr returns the simulated mapped address of a byte offset: the
// hosting segment's persisted mapping base plus the offset within the
// segment. Upper layers store SimAddr values as "absolute pointers"; after
// recovery at a different base, FromSimAddr still resolves them.
func (h *Heap) SimAddr(off uint64) uint64 {
	if !h.pa {
		return off
	}
	si := h.segIndex(off)
	base, _ := h.segSpan(si)
	return h.Read8(h.hdrBase(si)+hdrSimBaseOff) + (off - base)
}

// FromSimAddr translates a simulated mapped address back to a byte offset,
// consulting every committed segment's current base and — while the segment
// is mid-swizzle — its previous base.
func (h *Heap) FromSimAddr(addr uint64) (uint64, bool) {
	if !h.pa {
		if addr < h.Size() {
			return addr, true
		}
		return 0, false
	}
	nsegs := h.Segments()
	for si := 0; si < nsegs; si++ {
		base, end := h.segSpan(si)
		span := end - base
		hb := h.hdrBase(si)
		if sb := h.Read8(hb + hdrSimBaseOff); addr >= sb && addr < sb+span {
			return base + (addr - sb), true
		}
		if h.Read8(hb+hdrSwizzleOff) == SwizzleSwizzling {
			if pb := h.Read8(hb + hdrPrevBaseOff); addr >= pb && addr < pb+span {
				return base + (addr - pb), true
			}
		}
	}
	return 0, false
}

// Swizzling reports whether any committed segment is mid-swizzle (recovered
// at a new base, absolute pointers not yet confirmed re-encoded).
func (h *Heap) Swizzling() bool {
	if !h.pa {
		return false
	}
	for si := 0; si < h.Segments(); si++ {
		if h.Read8(h.hdrBase(si)+hdrSwizzleOff) == SwizzleSwizzling {
			return true
		}
	}
	return false
}

// FinishSwizzle marks every segment clean: the caller has re-encoded all
// absolute pointers against the current bases, so the previous bases are
// dropped. Crash-safe in any prefix: a segment flips to clean only after
// its current base is durable, and a stale prevSimBase behind a clean state
// is never consulted.
func (h *Heap) FinishSwizzle() {
	if !h.pa {
		return
	}
	for si := 0; si < h.Segments(); si++ {
		hb := h.hdrBase(si)
		if h.Read8(hb+hdrSwizzleOff) != SwizzleSwizzling {
			continue
		}
		h.MetaFlip8(hb+hdrSwizzleOff, SwizzleClean)
		h.MetaFlip8(hb+hdrPrevBaseOff, 0)
	}
}

// SnapshotSegments captures the durable (nvm) image of every committed
// segment separately — the position-independent on-media layout. The
// per-segment images can be stored or shipped independently and reassembled
// by RecoverSegments in any order.
func (h *Heap) SnapshotSegments() [][]uint64 {
	if !h.pa {
		return [][]uint64{h.CrashImage(nil, 0)}
	}
	h.allocMu.Lock()
	defer h.allocMu.Unlock()
	nsegs := h.Segments()
	out := make([][]uint64, nsegs)
	for si := 0; si < nsegs; si++ {
		base, end := h.segSpan(si)
		seg := make([]uint64, (end-base)/WordSize)
		//rnvet:ignore atomicfield snapshot contract (CrashImage doc): callers quiesce writers, and a torn read of a mid-persist word is exactly what a crash could expose
		copy(seg, h.nvm[base/WordSize:end/WordSize])
		out[si] = seg
	}
	h.stats.crashImages.Add(1)
	return out
}

// RecoverSegments reassembles a heap from per-segment images in any order
// (each segment carries its ordinal) and remaps it at cfg.SimBase: every
// segment whose persisted mapping base differs from its new one enters the
// SwizzleSwizzling state, with the old base retained in prevSimBase so
// FromSimAddr resolves absolute pointers persisted under either mapping.
// Callers re-encode their pointers and then FinishSwizzle. cfg.SimBase == 0
// keeps the persisted bases (no swizzle).
func RecoverSegments(imgs [][]uint64, cfg Config) (*Heap, error) {
	if len(imgs) == 0 {
		return nil, fmt.Errorf("pmem: no segment images")
	}
	ordered := make([][]uint64, len(imgs))
	for _, img := range imgs {
		var ord uint64
		switch {
		case uint64(len(img))*WordSize > seg0HdrOff+hdrSize && img[(seg0HdrOff+hdrMagicOff)/WordSize] == heapMagic0:
			ord = img[(seg0HdrOff+hdrOrdinalOff)/WordSize]
		case uint64(len(img))*WordSize > hdrSize && img[hdrMagicOff/WordSize] == heapMagicN:
			ord = img[hdrOrdinalOff/WordSize]
		default:
			return nil, fmt.Errorf("pmem: image without a segment header")
		}
		if ord >= uint64(len(imgs)) {
			return nil, fmt.Errorf("pmem: segment ordinal %d with only %d images", ord, len(imgs))
		}
		if ordered[ord] != nil {
			return nil, fmt.Errorf("pmem: duplicate segment ordinal %d", ord)
		}
		ordered[ord] = img
	}
	var flat []uint64
	for ord, img := range ordered {
		if img == nil {
			return nil, fmt.Errorf("pmem: missing segment ordinal %d", ord)
		}
		flat = append(flat, img...)
	}
	h := recoverHeap(flat, cfg)
	if h == nil {
		return nil, fmt.Errorf("pmem: segment images do not form a heap")
	}
	if cfg.SimBase != 0 {
		stride := h.simStride()
		for si := 0; si < h.Segments(); si++ {
			hb := h.hdrBase(si)
			newBase := cfg.SimBase + uint64(si)*stride
			old := h.Read8(hb + hdrSimBaseOff)
			if old == newBase {
				continue
			}
			// Ordered flips: prev, then state, then the new base. Any crash
			// prefix leaves a mapping FromSimAddr can still resolve.
			h.MetaFlip8(hb+hdrPrevBaseOff, old)
			h.MetaFlip8(hb+hdrSwizzleOff, SwizzleSwizzling)
			h.MetaFlip8(hb+hdrSimBaseOff, newBase)
		}
	}
	return h, nil
}
