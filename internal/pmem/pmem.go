// Package pmem simulates byte-addressable non-volatile memory (NVM) with an
// explicit CPU-cache/NVM split, as assumed by the SNIA NVM.PM.FILE model the
// paper follows.
//
// The simulator keeps two images of the arena:
//
//   - the cache image: what load/store instructions observe, and
//   - the nvm image: what survives a crash.
//
// Ordinary writes mutate only the cache image. Persist — the paper's
// "persistent instruction", a CLWB-per-line followed by a fence — copies the
// touched cache lines into the nvm image, increments the persist counters and
// optionally busy-waits a configurable latency so that persistent
// instructions consume CPU cycles exactly where they would on real hardware
// (inside or outside critical sections).
//
// A crash is modelled by CrashImage: it returns the nvm image, optionally
// merged with a random subset of dirty-but-unflushed cache lines to model
// uncontrolled cache eviction. Recover builds a fresh arena whose both images
// equal a crash image, as after a reboot.
//
// All word accesses use sync/atomic so concurrent tree code is data-race
// free by construction; the synchronization *semantics* (who may see what)
// are enforced by the data structures built on top, not by this package.
package pmem

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

const (
	// LineSize is the simulated cache-line size in bytes: the atomic-write
	// granularity HTM transactions raise stores to (Section 2.2 of the paper).
	LineSize = 64
	// WordSize is the atomic-write size of an ordinary store (Section 2.1).
	WordSize = 8
	// WordsPerLine is the number of 8-byte words in a cache line.
	WordsPerLine = LineSize / WordSize
	// RootSize is the number of bytes reserved at offset 0 for well-known
	// static data (e.g. the pointer to the left-most leaf node used to start
	// recovery, Section 5.4).
	RootSize = LineSize
)

// NullOff is the reserved "nil pointer" offset. Offset 0 is always the root
// line, so 0 can double as the null reference for persistent pointers.
const NullOff uint64 = 0

// LatencyModel configures the simulated cost of persistent instructions.
// Zero values disable the corresponding busy-wait (useful in unit tests).
//
// The model follows measured NVDIMM/Optane behaviour (the paper's ref [1],
// Izraelevitz et al.): CLWBs to distinct lines issue back to back and drain
// concurrently, so a persistent instruction costs one fence-dominated
// constant (the write-queue drain) plus a small per-line bandwidth term —
// NOT a full media write per line.
type LatencyModel struct {
	// FlushPerLine is the bandwidth term charged per cache line flushed by
	// one Persist (tens of nanoseconds).
	FlushPerLine time.Duration
	// Fence is charged once per Persist (and per explicit Fence call): the
	// CLWB round trip plus the ordering fence that waits for the write
	// queue to drain (a few hundred nanoseconds on NVDIMM).
	Fence time.Duration
	// DrainPerLine models the DIMM-internal drain behind the write-pending
	// queue: every persisted line occupies one of the arena's drain engines
	// for this long before the issuing fence can retire, and concurrent
	// persists to the SAME arena queue behind each other. On Optane DCPMM a
	// 64-byte flush dirties a whole 256-byte XPLine, so sustained small
	// random persists cost on the order of a microsecond of media occupancy
	// per line (Yang et al., FAST'20). Zero disables the queue: drains are
	// infinitely parallel, as under battery-backed DRAM. This is the term
	// that makes persist bandwidth a per-device resource — spreading a
	// workload over more arenas (more DIMMs) multiplies it.
	DrainPerLine time.Duration
	// PersistStreams is the number of concurrent drain engines per arena
	// (the effective WPQ width). 0 means 1. Ignored unless DrainPerLine is
	// set.
	PersistStreams int
	// ReadPerLine charges bulk media reads (ReadRange, ReadLine): each
	// cache line read from the arena busy-waits this long, modelling NVM
	// random-read latency — ~300ns per line on Optane DCPMM (Yang et al.,
	// FAST'20), two to three times DRAM. Zero (the default, and correct
	// for DRAM-backed NVDIMM-N) keeps reads free. Word reads (Read8) stay
	// unpriced regardless: they model pointer chasing through lines that
	// are hot in the CPU cache, and charging them would multiply-count the
	// line fetch. This is the term a DRAM-side cache exists to skip.
	ReadPerLine time.Duration
	// StorePerLine charges bulk store instructions (WriteRange, WriteLine,
	// WriteLineWords, Zero, WriteStream): each cache line dirtied by one
	// bulk operation busy-waits this long. All bulk mutators share one
	// charge path, so none of them (Zero included) can understate write
	// cost relative to the others. Zero (the default) models stores that
	// land in the CPU cache for free, which matches the persist-dominated
	// profiles; set it to price store bandwidth itself.
	StorePerLine time.Duration
}

// DefaultLatency models the paper's NVDIMM-N testbed closely enough to
// reproduce the relative weight of persistent instructions: each persist is
// fence-dominated at a few hundred nanoseconds — one to two orders of
// magnitude more than the instructions around it — and wide flushes add a
// small per-line cost.
var DefaultLatency = ProfileNVDIMM

// Named latency profiles for the main classes of persistent memory. They
// matter because the trees differ chiefly in persist counts: the pricier a
// persist, the larger RNTree's two-persist advantage; under eADR (flushes
// effectively free) the designs converge. BenchmarkAblationLatencyProfile
// sweeps them.
var (
	// ProfileNVDIMM models battery-backed DRAM NVDIMM-N (the paper's
	// testbed): fence-dominated at a few hundred nanoseconds.
	ProfileNVDIMM = LatencyModel{FlushPerLine: 25 * time.Nanosecond, Fence: 500 * time.Nanosecond}
	// ProfileOptane models Intel Optane DCPMM per the paper's ref [1]:
	// slower media, costlier drains.
	ProfileOptane = LatencyModel{FlushPerLine: 60 * time.Nanosecond, Fence: 900 * time.Nanosecond}
	// ProfileOptaneDIMM extends ProfileOptane with the per-DIMM drain
	// bottleneck: one drain engine per arena and ~1µs of media occupancy
	// per persisted line (a 64B flush writes a 256B XPLine; at the measured
	// few-hundred-MB/s small-random-write bandwidth of one DCPMM that is
	// roughly a microsecond). Under this profile persist bandwidth is a
	// per-arena resource, which is what the forest's partition-per-arena
	// layout is designed to multiply.
	ProfileOptaneDIMM = LatencyModel{
		FlushPerLine: 60 * time.Nanosecond, Fence: 900 * time.Nanosecond,
		DrainPerLine: time.Microsecond, PersistStreams: 1,
	}
	// ProfileEADR models platforms whose ADR domain covers the caches:
	// flushes become ordering-only and nearly free.
	ProfileEADR = LatencyModel{FlushPerLine: 0, Fence: 30 * time.Nanosecond}
)

// Stats counts persistence traffic. All fields are updated atomically; read
// them via Arena.Stats which returns a consistent-enough snapshot.
type Stats struct {
	// Persists is the number of persistent instructions (flush+fence
	// compounds) executed — the paper's primary cost metric (Table 1).
	Persists uint64
	// LinesFlushed is the total number of cache lines written back to NVM.
	LinesFlushed uint64
	// Fences is the number of ordering fences (one per Persist plus explicit
	// Fence calls).
	Fences uint64
	// WordsWritten counts 8-byte store instructions into the arena,
	// exposing write amplification.
	WordsWritten uint64
	// Allocs and Frees count allocator operations.
	Allocs uint64
	Frees  uint64
	// CrashImages counts crash images synthesized from this arena — the
	// fault-injection traffic of the crash-point explorer.
	CrashImages uint64
	// EvictedLines counts cache lines that reached NVM without ordering
	// (explicit EvictLine calls plus lines merged into crash images by the
	// eviction model).
	EvictedLines uint64
}

// Hooks are test/fuzzing callbacks fired around every persistent
// instruction. They run on the persisting goroutine. BeforePersist fires
// before any line is copied to the nvm image, AfterPersist after the fence
// completes, OnFence on every standalone Fence (a fence flushes nothing, so
// one callback suffices). Any field may be nil.
type Hooks struct {
	BeforePersist func(off, size uint64)
	AfterPersist  func(off, size uint64)
	OnFence       func()
}

// FreeCheckMode selects the allocator's debug overlap/double-free detection.
type FreeCheckMode int

const (
	// FreeCheckAuto enables the check when the process is a `go test`
	// binary and disables it otherwise (the default).
	FreeCheckAuto FreeCheckMode = iota
	// FreeCheckOn always verifies frees (panics on overlap/double free).
	FreeCheckOn
	// FreeCheckOff never verifies frees.
	FreeCheckOff
)

// Config configures a new Heap.
type Config struct {
	// Size is the initial segment's capacity in bytes; rounded up to a
	// whole line. The first RootSize bytes are reserved for root metadata.
	Size uint64
	// GrowSize is the capacity in bytes of each appended segment (rounded
	// up to a whole line). 0 means Size: every grown segment matches the
	// initial one.
	GrowSize uint64
	// MaxSegments caps how many segments the heap may hold (initial
	// segment included). 0 or 1 keeps the classic fixed-size arena: the
	// heap never grows and Alloc fails with ErrOutOfMemory at exhaustion.
	MaxSegments int
	// SimBase seeds the simulated mapping addresses recorded in segment
	// headers (pointer swizzling). 0 picks a default. Recovering the same
	// image under a different SimBase models remapping the heap at a
	// different address.
	SimBase uint64
	// VolatileAlloc disables the persistent allocator and segment headers:
	// allocation metadata is volatile and recovery must SetBump past the
	// highest reachable offset, leaking everything unreferenced below it
	// (the pre-heap behaviour; also forced for heaps too small to hold a
	// segment header).
	VolatileAlloc bool
	// FreeChecks selects the debug overlap/double-free detection on Free.
	FreeChecks FreeCheckMode
	// Latency is the persistent-instruction cost model.
	Latency LatencyModel
}

// Heap is a simulated NVM device mapped into the process, addressed by byte
// offsets. Offsets must be 8-byte aligned for word accesses; Persist and the
// line helpers operate at 64-byte granularity.
//
// A heap is an ordered set of segments sharing one contiguous offset space:
// the initial segment spans [0, Size) and each Grow appends a GrowSize
// segment at the current committed end. The cache/nvm images are reserved at
// full capacity up front (like an mmap address-space reservation) so hot-path
// loads and stores never take a segment lookup; Size() reports the committed
// prefix and accesses beyond it panic. Unless Config.VolatileAlloc is set
// (or the heap is too small for a header), every segment carries a
// persistent header (see heap.go) and Alloc/Free maintain crash-consistent
// free lists through a per-segment undo log.
type Heap struct {
	cache []uint64 // CPU-visible image (reserved to full capacity)
	nvm   []uint64 // crash-durable image (reserved to full capacity)
	dirty []uint64 // bitmap, one bit per line: cache line differs from nvm

	committedW atomic.Uint64 // committed size in words (Size()/WordSize)

	lat   LatencyModel
	drain chan struct{} // drain-engine semaphore; nil when DrainPerLine is 0
	hooks atomic.Pointer[Hooks]

	stats struct {
		persists     atomic.Uint64
		linesFlushed atomic.Uint64
		fences       atomic.Uint64
		wordsWritten atomic.Uint64
		allocs       atomic.Uint64
		frees        atomic.Uint64
		crashImages  atomic.Uint64
		evictedLines atomic.Uint64
	}

	allocMu sync.Mutex
	bump    uint64              // volatile-mode next unallocated byte offset
	freed   map[uint64][]uint64 // size class (bytes) -> free offsets (volatile/overflow)

	// Heap-format state (persistent allocator + segment headers).
	pa       bool   // persistent allocator active
	seg0Size uint64 // bytes of the initial segment
	growSize uint64 // bytes of each appended segment
	maxSegs  int

	// Debug free checking (see Config.FreeChecks).
	freeCheck bool
	freeLines map[uint64]struct{} // line offsets currently on a free list
}

// Arena is the heap's historical name; the tree, forest and kv layers — and
// rnvet's Arena-method models — address it through this alias.
type Arena = Heap

// New creates a heap whose initial segment is cfg.Size bytes (at least two
// lines) with both images zeroed. Unless cfg.VolatileAlloc is set and the
// segment fits a header, the segment is formatted with a persistent header
// and the crash-consistent allocator; otherwise the volatile allocator is
// positioned just past the root line.
func New(cfg Config) *Heap {
	size := cfg.Size
	if size < 2*LineSize {
		size = 2 * LineSize
	}
	size = (size + LineSize - 1) &^ uint64(LineSize-1)
	grow := (cfg.GrowSize + LineSize - 1) &^ uint64(LineSize-1)
	if grow == 0 {
		grow = size
	}
	maxSegs := cfg.MaxSegments
	if maxSegs <= 0 {
		maxSegs = 1
	}
	pa := !cfg.VolatileAlloc && size >= minHeapSize && grow >= minGrowSize
	if !pa {
		maxSegs = 1
	}
	capacity := size + uint64(maxSegs-1)*grow
	h := &Heap{
		cache: make([]uint64, capacity/WordSize),
		nvm:   make([]uint64, capacity/WordSize),
		dirty: make([]uint64, (capacity/LineSize+63)/64),
		lat:   cfg.Latency,
		drain: drainSem(cfg.Latency),
		freed: make(map[uint64][]uint64),

		pa:       pa,
		seg0Size: size,
		growSize: grow,
		maxSegs:  maxSegs,
	}
	h.committedW.Store(size / WordSize)
	h.initFreeCheck(cfg.FreeChecks)
	if pa {
		h.formatSeg0(cfg.SimBase)
		// Formatting is construction, not workload: hand out clean stats.
		h.ResetStats()
	} else {
		h.bump = RootSize
	}
	return h
}

// drainSem builds the drain-engine semaphore for a latency model: one slot
// per concurrent stream, or nil when drain queueing is disabled.
func drainSem(m LatencyModel) chan struct{} {
	if m.DrainPerLine <= 0 {
		return nil
	}
	streams := m.PersistStreams
	if streams <= 0 {
		streams = 1
	}
	return make(chan struct{}, streams)
}

// Size returns the committed heap size in bytes: the initial segment plus
// every segment committed by Grow. Offsets at or beyond Size() are not yet
// addressable.
func (a *Arena) Size() uint64 { return a.committedW.Load() * WordSize }

// Capacity returns the heap's maximum size in bytes: the committed size plus
// every segment Grow may still append. Fixed (non-growable) heaps have
// Capacity == Size. Lock tables and other per-line side structures sized at
// creation should use Capacity so they survive growth.
func (a *Arena) Capacity() uint64 { return uint64(len(a.cache)) * WordSize }

// Latency returns the arena's persistence cost model.
func (a *Arena) Latency() LatencyModel { return a.lat }

// SetLatency replaces the persistence cost model. Not safe to call
// concurrently with Persist.
func (a *Arena) SetLatency(m LatencyModel) {
	a.lat = m
	a.drain = drainSem(m)
}

// SetHooks installs persist callbacks (nil clears them).
func (a *Arena) SetHooks(h *Hooks) { a.hooks.Store(h) }

// Stats returns a snapshot of the persistence counters.
func (a *Arena) Stats() Stats {
	return Stats{
		Persists:     a.stats.persists.Load(),
		LinesFlushed: a.stats.linesFlushed.Load(),
		Fences:       a.stats.fences.Load(),
		WordsWritten: a.stats.wordsWritten.Load(),
		Allocs:       a.stats.allocs.Load(),
		Frees:        a.stats.frees.Load(),
		CrashImages:  a.stats.crashImages.Load(),
		EvictedLines: a.stats.evictedLines.Load(),
	}
}

// ResetStats zeroes all persistence counters.
func (a *Arena) ResetStats() {
	a.stats.persists.Store(0)
	a.stats.linesFlushed.Store(0)
	a.stats.fences.Store(0)
	a.stats.wordsWritten.Store(0)
	a.stats.allocs.Store(0)
	a.stats.frees.Store(0)
	a.stats.crashImages.Store(0)
	a.stats.evictedLines.Store(0)
}

func (a *Arena) wordIndex(off uint64) uint64 {
	if off%WordSize != 0 {
		panic(fmt.Sprintf("pmem: misaligned word access at offset %d", off))
	}
	i := off / WordSize
	if i >= a.committedW.Load() {
		panic(fmt.Sprintf("pmem: offset %d out of range (size %d)", off, a.Size()))
	}
	return i
}

func (a *Arena) markDirty(line uint64) {
	w, b := line/64, line%64
	for {
		old := atomic.LoadUint64(&a.dirty[w])
		if old&(1<<b) != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(&a.dirty[w], old, old|(1<<b)) {
			return
		}
	}
}

func (a *Arena) clearDirty(line uint64) {
	w, b := line/64, line%64
	for {
		old := atomic.LoadUint64(&a.dirty[w])
		if old&(1<<b) == 0 {
			return
		}
		if atomic.CompareAndSwapUint64(&a.dirty[w], old, old&^(1<<b)) {
			return
		}
	}
}

func (a *Arena) isDirty(line uint64) bool {
	return atomic.LoadUint64(&a.dirty[line/64])&(1<<(line%64)) != 0
}

// Read8 returns the 8-byte word at the (aligned) byte offset from the cache
// image — an ordinary load instruction.
func (a *Arena) Read8(off uint64) uint64 {
	return atomic.LoadUint64(&a.cache[a.wordIndex(off)])
}

// Write8 stores an 8-byte word at the (aligned) byte offset into the cache
// image — an ordinary store instruction. The data is NOT durable until the
// covering line is persisted (or happens to be evicted before a crash).
func (a *Arena) Write8(off uint64, v uint64) {
	i := a.wordIndex(off)
	atomic.StoreUint64(&a.cache[i], v)
	a.stats.wordsWritten.Add(1)
	a.markDirty(off / LineSize)
}

// ReadLine copies the 64-byte cache line containing off into dst.
func (a *Arena) ReadLine(off uint64, dst *[LineSize]byte) {
	base := a.wordIndex(off &^ uint64(LineSize-1))
	for w := 0; w < WordsPerLine; w++ {
		v := atomic.LoadUint64(&a.cache[base+uint64(w)])
		putWord(dst[w*WordSize:], v)
	}
	if a.lat.ReadPerLine > 0 {
		spin(a.lat.ReadPerLine)
	}
}

// chargeStore busy-waits the bulk-store bandwidth term for a store touching
// lines cache lines. Every bulk mutator (WriteRange, WriteLine,
// WriteLineWords, Zero, WriteStream) funnels through this one charge path so
// no store primitive can undercount modeled write cost.
func (a *Arena) chargeStore(lines uint64) {
	if a.lat.StorePerLine > 0 {
		spin(time.Duration(lines) * a.lat.StorePerLine)
	}
}

// WriteLine stores all 64 bytes of src into the cache line containing off.
func (a *Arena) WriteLine(off uint64, src *[LineSize]byte) {
	lineOff := off &^ uint64(LineSize-1)
	base := a.wordIndex(lineOff)
	for w := 0; w < WordsPerLine; w++ {
		atomic.StoreUint64(&a.cache[base+uint64(w)], getWord(src[w*WordSize:]))
	}
	a.stats.wordsWritten.Add(WordsPerLine)
	a.markDirty(lineOff / LineSize)
	a.chargeStore(1)
}

// WriteLineWords stores the eight words of the line containing off at once
// (the bulk path for transactional commits).
func (a *Arena) WriteLineWords(off uint64, w *[WordsPerLine]uint64) {
	lineOff := off &^ uint64(LineSize-1)
	base := a.wordIndex(lineOff)
	for i := uint64(0); i < WordsPerLine; i++ {
		atomic.StoreUint64(&a.cache[base+i], w[i])
	}
	a.stats.wordsWritten.Add(WordsPerLine)
	a.markDirty(lineOff / LineSize)
	a.chargeStore(1)
}

// ReadRange copies size bytes starting at the aligned byte offset into dst.
// off and size must be multiples of 8.
func (a *Arena) ReadRange(off, size uint64, dst []byte) {
	if size%WordSize != 0 {
		panic("pmem: ReadRange size must be word-aligned")
	}
	base := a.wordIndex(off)
	for w := uint64(0); w < size/WordSize; w++ {
		putWord(dst[w*WordSize:], atomic.LoadUint64(&a.cache[base+w]))
	}
	if a.lat.ReadPerLine > 0 {
		// Charge whole lines: a range read fetches every line it touches.
		lines := (off+size-1)/LineSize - off/LineSize + 1
		spin(time.Duration(lines) * a.lat.ReadPerLine)
	}
}

// WriteRange stores len(src) bytes (a multiple of 8) at the aligned offset.
func (a *Arena) WriteRange(off uint64, src []byte) {
	if len(src)%WordSize != 0 {
		panic("pmem: WriteRange size must be word-aligned")
	}
	base := a.wordIndex(off)
	n := uint64(len(src) / WordSize)
	for w := uint64(0); w < n; w++ {
		atomic.StoreUint64(&a.cache[base+w], getWord(src[w*WordSize:]))
	}
	a.stats.wordsWritten.Add(n)
	first := off / LineSize
	last := (off + uint64(len(src)) - 1) / LineSize
	for l := first; l <= last; l++ {
		a.markDirty(l)
	}
	a.chargeStore(last - first + 1)
}

// Persist executes one persistent instruction covering [off, off+size): it
// flushes every cache line in the range to the nvm image and then fences.
// This is the expensive primitive the paper's designs minimise; its cost
// (latency busy-wait) is charged to the calling goroutine.
func (a *Arena) Persist(off, size uint64) {
	if h := a.hooks.Load(); h != nil && h.BeforePersist != nil {
		h.BeforePersist(off, size)
	}
	if size == 0 {
		size = 1
	}
	first := off / LineSize
	last := (off + size - 1) / LineSize
	lines := last - first + 1
	for l := first; l <= last; l++ {
		a.flushLine(l)
	}
	a.stats.persists.Add(1)
	a.stats.linesFlushed.Add(lines)
	a.stats.fences.Add(1)
	if a.drain != nil {
		// The fence cannot retire until this persist's lines have passed
		// through one of the arena's drain engines; persists racing for the
		// same engine queue behind each other (per-DIMM media bandwidth).
		a.drain <- struct{}{}
		spin(time.Duration(lines) * a.lat.DrainPerLine)
		<-a.drain
	}
	spin(time.Duration(lines)*a.lat.FlushPerLine + a.lat.Fence)
	if h := a.hooks.Load(); h != nil && h.AfterPersist != nil {
		h.AfterPersist(off, size)
	}
}

// WriteStream stores len(src) bytes (a multiple of 8) at the aligned
// offset, writing through to the nvm image in the same pass — the
// simulator's non-temporal streaming store (MOVNT/ntstore): the data
// bypasses the cache hierarchy and is already at the media when the
// following PersistStream fences, so bulk writes cost one pass over the
// bytes instead of WriteRange's store pass plus Persist's flush-copy pass.
// The cache image gets the same words (loads must observe the store, as on
// real hardware).
//
// Callers must own the written words exclusively until their fence: a
// streamed range reaches the nvm image with no ordering guarantee (exactly
// like an eagerly-evicted line), which is safe only for bytes that nothing
// reads until a later, properly fenced pointer/tail publishes them — the
// value log's append path. Streamed lines are not marked dirty: cache and
// nvm already agree.
func (a *Arena) WriteStream(off uint64, src []byte) {
	if len(src)%WordSize != 0 {
		panic("pmem: WriteStream size must be word-aligned")
	}
	if len(src) == 0 {
		return
	}
	base := a.wordIndex(off)
	n := uint64(len(src) / WordSize)
	if nativeLittleEndian {
		// The streamed range is exclusively owned until the caller's
		// fenced publish, so no concurrent reader can legally observe
		// these words mid-write — a bulk memmove is equivalent to the
		// per-word atomic stores and several times cheaper (this copy is
		// the hot loop of every value-log append). The byte view matches
		// getWord's little-endian word convention on LE hosts.
		_ = a.nvm[base+n-1] //rnvet:ignore atomicfield bounds check before taking unsafe views; value discarded
		//rnvet:ignore atomicfield LE fast path: range exclusively owned until the fenced publish (comment above), torn intermediate states are unobservable
		cdst := unsafe.Slice((*byte)(unsafe.Pointer(&a.cache[base])), len(src))
		//rnvet:ignore atomicfield LE fast path: range exclusively owned until the fenced publish
		ndst := unsafe.Slice((*byte)(unsafe.Pointer(&a.nvm[base])), len(src))
		copy(cdst, src)
		copy(ndst, src)
	} else {
		for w := uint64(0); w < n; w++ {
			v := getWord(src[w*WordSize:])
			atomic.StoreUint64(&a.cache[base+w], v)
			atomic.StoreUint64(&a.nvm[base+w], v)
		}
	}
	a.stats.wordsWritten.Add(n)
	a.chargeStore((off+uint64(len(src))-1)/LineSize - off/LineSize + 1)
}

// nativeLittleEndian reports whether the host stores the low-order byte of
// a word first, i.e. whether a byte view of a word array matches getWord's
// little-endian convention.
var nativeLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Write8Stream is WriteStream for one word.
func (a *Arena) Write8Stream(off uint64, v uint64) {
	i := a.wordIndex(off)
	atomic.StoreUint64(&a.cache[i], v)
	atomic.StoreUint64(&a.nvm[i], v)
	a.stats.wordsWritten.Add(1)
}

// PersistStream is Persist for a range laid down entirely with
// WriteStream/Write8Stream: the words are already at the media, so no
// flush copy happens, but the cost model is charged identically — a
// streaming store spends the same media bandwidth (drain-engine occupancy
// per line) and its fence still waits for the write queue to drain.
func (a *Arena) PersistStream(off, size uint64) {
	if h := a.hooks.Load(); h != nil && h.BeforePersist != nil {
		h.BeforePersist(off, size)
	}
	if size == 0 {
		size = 1
	}
	first := off / LineSize
	last := (off + size - 1) / LineSize
	lines := last - first + 1
	if last*WordsPerLine >= uint64(len(a.cache)) {
		panic(fmt.Sprintf("pmem: persist beyond arena (line %d)", last))
	}
	a.stats.persists.Add(1)
	a.stats.linesFlushed.Add(lines)
	a.stats.fences.Add(1)
	if a.drain != nil {
		a.drain <- struct{}{}
		spin(time.Duration(lines) * a.lat.DrainPerLine)
		<-a.drain
	}
	spin(time.Duration(lines)*a.lat.FlushPerLine + a.lat.Fence)
	if h := a.hooks.Load(); h != nil && h.AfterPersist != nil {
		h.AfterPersist(off, size)
	}
}

// Fence executes a standalone ordering fence (no flush).
func (a *Arena) Fence() {
	if h := a.hooks.Load(); h != nil && h.OnFence != nil {
		h.OnFence()
	}
	a.stats.fences.Add(1)
	spin(a.lat.Fence)
}

// flushLine copies one line from the cache image to the nvm image. The nvm
// stores are atomic because independent writers may flush log entries that
// share a cache line concurrently ("multiple threads can flush logs in
// parallel", §4.2); each writer loads its own words after writing them, so
// the line converges correctly. The nvm image is only *read* from crash
// images taken at persist boundaries or from quiesced arenas.
func (a *Arena) flushLine(line uint64) {
	base := line * WordsPerLine
	if base >= uint64(len(a.cache)) {
		panic(fmt.Sprintf("pmem: persist beyond arena (line %d)", line))
	}
	for w := uint64(0); w < WordsPerLine; w++ {
		atomic.StoreUint64(&a.nvm[base+w], atomic.LoadUint64(&a.cache[base+w]))
	}
	a.clearDirty(line)
}

// EvictLine models an uncontrolled cache eviction of the line containing
// off: the cache line reaches NVM without any ordering guarantee. Exposed so
// tests can force the adversarial schedules that persist ordering defends
// against.
func (a *Arena) EvictLine(off uint64) {
	a.flushLine(off / LineSize)
	a.stats.evictedLines.Add(1)
}

// DirtyLines returns the offsets (line-aligned) of all lines whose cache and
// nvm images differ, per the dirty bitmap.
func (a *Arena) DirtyLines() []uint64 {
	var out []uint64
	nLines := a.Size() / LineSize
	for l := uint64(0); l < nLines; l++ {
		if a.isDirty(l) {
			out = append(out, l*LineSize)
		}
	}
	return out
}

// CrashImage captures what the NVM would contain if the machine lost power
// now. Every persisted line is included; every dirty line is additionally
// included with probability evictProb (rng may be nil when evictProb is 0),
// modelling cache lines the hardware happened to evict before the crash.
//
// Callers must ensure no concurrent Persist is mid-flight on the lines they
// care about (the crash fuzzer snapshots from persist hooks, which run on
// the persisting goroutine, or after quiescing writers).
func (a *Arena) CrashImage(rng *rand.Rand, evictProb float64) []uint64 {
	cw := a.committedW.Load()
	img := make([]uint64, cw)
	//rnvet:ignore atomicfield snapshot contract (doc above): no Persist mid-flight on interesting lines, and a torn word is a legal crash state
	copy(img, a.nvm[:cw])
	a.stats.crashImages.Add(1)
	if evictProb > 0 {
		nLines := a.Size() / LineSize
		for l := uint64(0); l < nLines; l++ {
			if a.isDirty(l) && rng.Float64() < evictProb {
				base := l * WordsPerLine
				for w := uint64(0); w < WordsPerLine; w++ {
					img[base+w] = atomic.LoadUint64(&a.cache[base+w])
				}
				a.stats.evictedLines.Add(1)
			}
		}
	}
	return img
}

// OverlayCacheLine copies the current cache contents of the line containing
// off into a previously captured crash image, modelling that line reaching
// NVM at the crash (a torn multi-line persist that flushed it, or an
// uncontrolled eviction). img must be an image of this arena.
func (a *Arena) OverlayCacheLine(img []uint64, off uint64) {
	base := (off / LineSize) * WordsPerLine
	if base+WordsPerLine > uint64(len(img)) {
		panic(fmt.Sprintf("pmem: overlay beyond image (offset %d)", off))
	}
	for w := uint64(0); w < WordsPerLine; w++ {
		img[base+w] = atomic.LoadUint64(&a.cache[base+w])
	}
}

// Recover constructs a rebooted heap from a crash image: both the cache and
// nvm images equal the captured state, all lines clean. When the image
// carries heap-format segment headers, recovery walks them: geometry, bump
// mark and size-class free lists come from the persisted allocator metadata
// (rolling back any interrupted update through the undo log), and an
// appended-but-uncommitted trailing segment is discarded. Headerless legacy
// images fall back to the volatile allocator, whose state the caller (tree
// recovery) must re-establish with SetBump after walking its persistent
// structures.
func Recover(img []uint64, cfg Config) *Arena {
	if h := recoverHeap(img, cfg); h != nil {
		return h
	}
	a := New(Config{
		Size:          uint64(len(img)) * WordSize,
		Latency:       cfg.Latency,
		VolatileAlloc: true,
		FreeChecks:    cfg.FreeChecks,
	})
	if len(a.cache) != len(img) {
		panic("pmem: recover image size mismatch")
	}
	//rnvet:ignore atomicfield single-threaded recovery: a has not escaped yet, no reader can race the bulk copy
	copy(a.cache, img)
	//rnvet:ignore atomicfield single-threaded recovery: a has not escaped yet
	copy(a.nvm, img)
	return a
}

// ErrOutOfMemory is returned by Alloc when the heap is exhausted and cannot
// grow further (capacity or MaxSegments reached).
var ErrOutOfMemory = errors.New("pmem: arena out of memory")

// Alloc reserves size bytes (rounded up to whole lines) of heap space and
// returns its byte offset. On heap-formatted arenas the allocation is
// crash-consistent: the bump mark and size-class free lists live in the
// segment headers and every update is persisted (undo-logged where it spans
// words) before Alloc returns, so a recovered image never hands out the same
// block twice. When the committed space is exhausted the heap grows by one
// segment, up to MaxSegments. Volatile-mode arenas keep the paper's
// behaviour: metadata is rebuilt by recovery via SetBump.
func (a *Arena) Alloc(size uint64) (uint64, error) {
	size = (size + LineSize - 1) &^ uint64(LineSize-1)
	a.allocMu.Lock()
	defer a.allocMu.Unlock()
	if a.pa {
		return a.heapAlloc(size)
	}
	if lst := a.freed[size]; len(lst) > 0 {
		off := lst[len(lst)-1]
		a.freed[size] = lst[:len(lst)-1]
		a.noteAllocated(off, size)
		a.stats.allocs.Add(1)
		return off, nil
	}
	if a.bump+size > a.Size() {
		return 0, ErrOutOfMemory
	}
	off := a.bump
	a.bump += size
	a.stats.allocs.Add(1)
	return off, nil
}

// Free returns a block to the allocator. On heap-formatted arenas the block
// is pushed onto a persistent size-class free list under the undo log, so
// the reclaimed space survives a crash; otherwise it joins the volatile free
// list. With free checking enabled (Config.FreeChecks; on by default under
// `go test`) an overlapping or double free panics.
func (a *Arena) Free(off, size uint64) {
	size = (size + LineSize - 1) &^ uint64(LineSize-1)
	a.allocMu.Lock()
	defer a.allocMu.Unlock()
	a.checkFree(off, size)
	if a.pa && a.heapFree(off, size) {
		a.stats.frees.Add(1)
		return
	}
	a.freed[size] = append(a.freed[size], off)
	a.stats.frees.Add(1)
}

// Bump returns the allocator high-water mark (persistent on heap-formatted
// arenas, volatile otherwise).
func (a *Arena) Bump() uint64 {
	a.allocMu.Lock()
	defer a.allocMu.Unlock()
	if a.pa {
		return a.Read8(seg0HdrOff + hdrBumpOff)
	}
	return a.bump
}

// SetBump positions the allocator high-water mark; used by recovery after it
// has determined the highest offset in use. On volatile-mode arenas blocks
// below the mark that are not referenced by persistent structures are
// leaked, exactly as on real NVM allocators without persistent metadata. On
// heap-formatted arenas the persisted bump mark and free lists are already
// authoritative and SetBump is a no-op (it only raises the mark, defensively,
// if the caller proves a reachable offset above it).
func (a *Arena) SetBump(off uint64) {
	if off < RootSize {
		off = RootSize
	}
	off = (off + LineSize - 1) &^ uint64(LineSize-1)
	a.allocMu.Lock()
	defer a.allocMu.Unlock()
	if a.pa {
		if cur := a.Read8(seg0HdrOff + hdrBumpOff); off > cur {
			a.MetaFlip8(seg0HdrOff+hdrBumpOff, off)
		}
		return
	}
	a.bump = off
	a.freed = make(map[uint64][]uint64)
	if a.freeCheck {
		a.freeLines = make(map[uint64]struct{})
	}
}

// Zero fills [off, off+size) with zero words (size multiple of 8). It is a
// bulk store like WriteRange — same dirty tracking, same per-line charge
// path — so page zeroing is priced identically to writing the page.
func (a *Arena) Zero(off, size uint64) {
	if size%WordSize != 0 {
		panic("pmem: Zero size must be word-aligned")
	}
	if size == 0 {
		return
	}
	base := a.wordIndex(off)
	for w := uint64(0); w < size/WordSize; w++ {
		atomic.StoreUint64(&a.cache[base+w], 0)
	}
	a.stats.wordsWritten.Add(size / WordSize)
	first := off / LineSize
	last := (off + size - 1) / LineSize
	for l := first; l <= last; l++ {
		a.markDirty(l)
	}
	a.chargeStore(last - first + 1)
}

// NVMRead8 reads a word from the nvm image (what a crash would preserve).
// Intended for tests and recovery verification on quiesced arenas.
func (a *Arena) NVMRead8(off uint64) uint64 {
	return a.nvm[a.wordIndex(off)] //rnvet:ignore atomicfield quiesced-arena accessor (doc above): tests and recovery verification only
}

func putWord(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getWord(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// spin stalls the calling goroutine for roughly d of wall-clock time,
// yielding the processor while it waits. This mirrors real hardware: a
// draining CLWB/SFENCE stalls only its own core while other cores keep
// working — so even on hosts with fewer cores than benchmark threads,
// persist stalls overlap with other workers' compute instead of freezing
// them. Critically, a stall taken while holding a lock still blocks every
// waiter for the full duration, which is exactly the contention effect the
// paper measures (§3.4).
//
// The wait is a pure yield loop, never time.Sleep: a parked timer wakes at
// the scheduler's mercy — behind a long run queue or a GC assist the wake
// can land milliseconds late, which showed up as bimodal throughput when
// persist stalls slept. Yielding keeps the stall's end within one
// scheduler round of the target at a measured-in-the-noise CPU cost, since
// each pass through the loop gives the processor away.
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	t0 := time.Now()
	for time.Since(t0) < d {
		runtime.Gosched()
	}
}
