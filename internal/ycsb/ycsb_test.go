package ycsb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMixProportions(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	counts := map[OpKind]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[A.Next(r)]++
	}
	if counts[OpInsert] != 0 || counts[OpScan] != 0 || counts[OpRemove] != 0 {
		t.Fatalf("YCSB-A emitted foreign ops: %v", counts)
	}
	ratio := float64(counts[OpRead]) / n
	if ratio < 0.48 || ratio > 0.52 {
		t.Fatalf("YCSB-A read ratio %.3f", ratio)
	}
	counts = map[OpKind]int{}
	for i := 0; i < n; i++ {
		counts[ReadIntensive.Next(r)]++
	}
	ratio = float64(counts[OpRead]) / n
	if ratio < 0.88 || ratio > 0.92 {
		t.Fatalf("read-intensive read ratio %.3f", ratio)
	}
	counts = map[OpKind]int{}
	for i := 0; i < n; i++ {
		counts[MixedQuarter.Next(r)]++
	}
	for _, k := range []OpKind{OpRead, OpUpdate, OpInsert, OpRemove} {
		ratio = float64(counts[k]) / n
		if ratio < 0.23 || ratio > 0.27 {
			t.Fatalf("mixed %v ratio %.3f", k, ratio)
		}
	}
}

func TestObjCompositeMix(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	counts := map[OpKind]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		counts[ObjComposite.Next(r)]++
	}
	for _, k := range []OpKind{OpRead, OpUpdate, OpInsert, OpRemove, OpScan} {
		if counts[k] != 0 {
			t.Fatalf("object mix emitted flat op %v: %v", k, counts)
		}
	}
	writes := float64(counts[OpHSet]+counts[OpSAdd]) / n
	if writes < 0.48 || writes > 0.52 {
		t.Fatalf("object mix write ratio %.3f", writes)
	}
	if counts[OpExpire] == 0 {
		t.Fatal("object mix never drew expire")
	}
	w := Workload{Mix: ObjComposite, Chooser: Uniform{N: 1000}, Fields: 8}
	stream := w.Stream(9)
	for i := 0; i < 10_000; i++ {
		req := stream()
		if req.Field >= 8 {
			t.Fatalf("field %d out of range", req.Field)
		}
	}
}

func TestScrambleInjective(t *testing.T) {
	seen := make(map[uint64]uint64, 200_000)
	for i := uint64(0); i < 200_000; i++ {
		k := Scramble(i)
		if prev, dup := seen[k]; dup {
			t.Fatalf("collision: Scramble(%d) == Scramble(%d)", i, prev)
		}
		seen[k] = i
		if k >= 1<<63 {
			t.Fatalf("key %d exceeds 63 bits", k)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	u := Uniform{N: 1000}
	r := rand.New(rand.NewSource(2))
	hit := map[uint64]bool{}
	for i := 0; i < 100_000; i++ {
		hit[u.Next(r)] = true
	}
	if len(hit) < 990 {
		t.Fatalf("uniform chooser covered only %d/1000 keys", len(hit))
	}
}

func TestZipfianSkew(t *testing.T) {
	z := NewZipfian(100_000, 0.8)
	r := rand.New(rand.NewSource(3))
	counts := map[uint64]int{}
	const n = 200_000
	for i := 0; i < n; i++ {
		counts[z.NextRank(r)]++
	}
	// Rank 0 must be by far the hottest; a handful of ranks dominate.
	if counts[0] < n/100 {
		t.Fatalf("rank 0 drawn only %d times", counts[0])
	}
	top10 := 0
	for rank := uint64(0); rank < 10; rank++ {
		top10 += counts[rank]
	}
	// Theory: sum(1/i^0.8, i=1..10)/zeta(100k, 0.8) ≈ 3.56/50 ≈ 7.1%.
	if float64(top10)/n < 0.06 {
		t.Fatalf("top-10 ranks only %.3f of draws", float64(top10)/n)
	}
}

func TestZipfianSkewOrdering(t *testing.T) {
	// Higher theta must concentrate more mass on the hottest rank.
	r := rand.New(rand.NewSource(4))
	mass := func(theta float64) float64 {
		z := NewZipfian(50_000, theta)
		hot := 0
		const n = 100_000
		for i := 0; i < n; i++ {
			if z.NextRank(r) == 0 {
				hot++
			}
		}
		return float64(hot) / n
	}
	m5, m8, m99 := mass(0.5), mass(0.8), mass(0.99)
	if !(m5 < m8 && m8 < m99) {
		t.Fatalf("hot mass not monotone in theta: %.4f %.4f %.4f", m5, m8, m99)
	}
}

func TestZipfianRanksInRange(t *testing.T) {
	f := func(seed int64) bool {
		z := NewZipfian(1000, 0.8)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			if z.NextRank(r) >= 1001 { // YCSB generator may emit n on rounding edge; Next clamps
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterminism(t *testing.T) {
	w := Workload{Mix: A, Chooser: Uniform{N: 1000}}
	s1 := w.Stream(7)
	s2 := w.Stream(7)
	for i := 0; i < 1000; i++ {
		a, b := s1(), s2()
		if a != b {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a, b)
		}
	}
	s3 := w.Stream(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1() == s3() {
			same++
		}
	}
	if same > 100 {
		t.Fatalf("different seeds produce near-identical streams (%d/1000)", same)
	}
}
