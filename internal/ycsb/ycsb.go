// Package ycsb generates the workloads of the paper's evaluation (§6):
// YCSB-style operation mixes over uniform or Zipfian key-popularity
// distributions [Cooper et al., SoCC'10]. Following §6.3.1, keys are hashed
// ("scrambled") so that the hottest ranks land in different leaf nodes.
package ycsb

import (
	"math"
	"math/rand"
)

// OpKind is one benchmark operation type.
type OpKind int

const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpRemove
	OpScan
	// Typed-object verbs (the internal/obj layer), so structured-data
	// workloads flow through the same mix/chooser machinery.
	OpHSet
	OpHGet
	OpSAdd
	OpSMembers
	OpExpire
)

// String names the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpScan:
		return "scan"
	case OpHSet:
		return "hset"
	case OpHGet:
		return "hget"
	case OpSAdd:
		return "sadd"
	case OpSMembers:
		return "smembers"
	case OpExpire:
		return "expire"
	}
	return "?"
}

// Mix is an operation mix in percent; entries must sum to 100.
type Mix struct {
	Read, Update, Insert, Remove, Scan int
	// Typed-object proportions. A mix may combine flat and object verbs;
	// Key then names the object, Field the hash field / set member.
	HSet, HGet, SAdd, SMembers, Expire int
}

// The paper's workloads.
var (
	// A is YCSB-A: 50% reads, 50% updates (the default concurrent
	// benchmark, §6.3).
	A = Mix{Read: 50, Update: 50}
	// B is YCSB-B: 95% reads, 5% updates.
	B = Mix{Read: 95, Update: 5}
	// C is YCSB-C: read only.
	C = Mix{Read: 100}
	// ReadIntensive is the 90% read / 10% update mix of Figure 8(c).
	ReadIntensive = Mix{Read: 90, Update: 10}
	// MixedQuarter gives each single-key operation the same proportion, as
	// in the mixed benchmark of §6.2.4.
	MixedQuarter = Mix{Read: 25, Update: 25, Insert: 25, Remove: 25}
	// ObjComposite is the structured-data analogue of YCSB-A: half writes
	// (hash-field sets plus set-member adds, both of which commit a header
	// update and an element record atomically through an intent), half
	// reads (field gets and whole-set listings), and a trickle of TTL
	// refreshes.
	ObjComposite = Mix{HSet: 35, HGet: 40, SAdd: 15, SMembers: 8, Expire: 2}
)

// Next draws an operation kind.
func (m Mix) Next(r *rand.Rand) OpKind {
	p := r.Intn(100)
	if p < m.Read {
		return OpRead
	}
	p -= m.Read
	if p < m.Update {
		return OpUpdate
	}
	p -= m.Update
	if p < m.Insert {
		return OpInsert
	}
	p -= m.Insert
	if p < m.Remove {
		return OpRemove
	}
	p -= m.Remove
	if p < m.Scan {
		return OpScan
	}
	p -= m.Scan
	if p < m.HSet {
		return OpHSet
	}
	p -= m.HSet
	if p < m.HGet {
		return OpHGet
	}
	p -= m.HGet
	if p < m.SAdd {
		return OpSAdd
	}
	p -= m.SAdd
	if p < m.SMembers {
		return OpSMembers
	}
	return OpExpire
}

// Scramble is a 64-bit mixing bijection (splitmix64 finalizer) used to hash
// ranks into keys. The result is truncated to 63 bits so keys stay clear of
// the trees' sentinel bound.
func Scramble(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x & (1<<63 - 1)
}

// KeyAt returns the key for load-phase record i.
func KeyAt(i uint64) uint64 { return Scramble(i) }

// Chooser picks request keys.
type Chooser interface {
	// Next returns the key for the next request.
	Next(r *rand.Rand) uint64
}

// Uniform picks ranks uniformly from [0, N).
type Uniform struct {
	N uint64
}

// Next implements Chooser.
func (u Uniform) Next(r *rand.Rand) uint64 {
	return Scramble(uint64(r.Int63n(int64(u.N))))
}

// Zipfian is the YCSB Zipfian generator [Gray et al.]: rank popularity
// follows a Zipf distribution with parameter theta; ranks are scrambled into
// keys (§6.3.1: "We hash keys to distribute hottest keys to different leaf
// nodes").
type Zipfian struct {
	n                        uint64
	theta                    float64
	alpha, zetan, eta, zeta2 float64
}

// NewZipfian prepares a Zipfian chooser over n ranks with coefficient theta
// (the paper uses 0.5-0.99; 0.8 is the default skew). Preparation is O(n).
func NewZipfian(n uint64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// NextRank draws a rank in [0, N): rank 0 is the hottest.
func (z *Zipfian) NextRank(r *rand.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Next implements Chooser.
func (z *Zipfian) Next(r *rand.Rand) uint64 {
	rank := z.NextRank(r)
	if rank >= z.n {
		rank = z.n - 1
	}
	return Scramble(rank)
}

// Workload bundles a mix and a key chooser into per-thread request streams.
type Workload struct {
	Mix     Mix
	Chooser Chooser
	// Fields bounds the per-object field/member id drawn for typed-object
	// requests (Request.Field in [0, Fields)); 0 leaves Field at 0 for
	// flat-key workloads.
	Fields uint64
}

// Request is one generated operation.
type Request struct {
	Op    OpKind
	Key   uint64
	Field uint64
}

// Stream returns a deterministic per-thread request generator.
func (w Workload) Stream(seed int64) func() Request {
	r := rand.New(rand.NewSource(seed))
	return func() Request {
		req := Request{Op: w.Mix.Next(r), Key: w.Chooser.Next(r)}
		if w.Fields > 0 {
			req.Field = uint64(r.Int63n(int64(w.Fields)))
		}
		return req
	}
}
