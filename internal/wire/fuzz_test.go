package wire

import (
	"bufio"
	"bytes"
	"testing"
)

// seedPayloads returns one valid payload per request/response shape plus a
// few malformed ones; FuzzSeedCorpus mirrors them into testdata/fuzz so the
// committed corpus and the in-code seeds stay identical.
func seedRequestPayloads() [][]byte {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpStats},
		{ID: 3, Op: OpGet, Key: []byte("key")},
		{ID: 4, Op: OpDel, Key: []byte("key")},
		{ID: 5, Op: OpPut, Key: []byte("key"), Val: []byte("value")},
		{ID: 6, Op: OpScan, ScanMax: 10, ScanPrefix: []byte("pre")},
		{ID: 7, Op: OpPut, Key: []byte("key"), Val: []byte("value"), Durable: true},
		{ID: 8, Op: OpReplHello, ReplRole: RoleReplica, ReplEpoch: 3},
		{ID: 9, Op: OpReplSubscribe, ReplLSNs: []uint64{0, 17}},
		{ID: 10, Op: OpReplRecord, ReplPart: 1, ReplLSN: 42, ReplKind: 1, Key: []byte("key"), Val: []byte("value")},
		{ID: 11, Op: OpReplAck, ReplLSNs: []uint64{9, 8}},
		{ID: 12, Op: OpPromote, ReplEpoch: 7},
		{ID: 13, Op: OpHSet, Key: []byte("obj"), Field: []byte("f"), Val: []byte("value")},
		{ID: 14, Op: OpHGet, Key: []byte("obj"), Field: []byte("f")},
		{ID: 15, Op: OpHDel, Key: []byte("obj"), Field: []byte("f")},
		{ID: 16, Op: OpSAdd, Key: []byte("obj"), Field: []byte("m")},
		{ID: 17, Op: OpSRem, Key: []byte("obj"), Field: []byte("m")},
		{ID: 18, Op: OpSMembers, Key: []byte("obj")},
		{ID: 19, Op: OpExpire, Key: []byte("obj"), TTLMs: 1500},
		{ID: 20, Op: OpTTL, Key: []byte("obj")},
		{ID: 21, Op: OpPersist, Key: []byte("obj")},
	}
	var out [][]byte
	for _, r := range reqs {
		frame, err := AppendRequest(nil, r)
		if err != nil {
			panic(err)
		}
		out = append(out, frame[4:])
	}
	out = append(out,
		[]byte{},
		[]byte{1, 2, 3},
		append(make([]byte, 8), 99),
		append(append(make([]byte, 8), OpGet), 0xff, 0xff, 0xff, 0xff),
	)
	return out
}

func seedResponsePayloads() [][]byte {
	resps := []Response{
		{ID: 1, Status: StatusOK, Op: OpPing},
		{ID: 2, Status: StatusOK, Op: OpGet, Val: []byte("value")},
		{ID: 3, Status: StatusNotFound, Op: OpGet},
		{ID: 4, Status: StatusErr, Op: OpPut, Msg: "boom"},
		{ID: 5, Status: StatusOverloaded, Op: OpPut},
		{ID: 6, Status: StatusOK, Op: OpScan, Pairs: []KV{{Key: []byte("a"), Val: []byte("1")}}},
		{ID: 7, Status: StatusOK, Op: OpStats, Counters: []Counter{{Name: "live_keys", Val: 9}}},
		{ID: 8, Status: StatusOK, Op: OpReplHello, ReplRole: RolePrimary, ReplEpoch: 3, ReplLSNs: []uint64{5, 6}},
		{ID: 9, Status: StatusOK, Op: OpReplSubscribe},
		{ID: 10, Status: StatusOK, Op: OpReplRecord, ReplPart: 1, ReplLSN: 42, ReplKind: 2, Key: []byte("key")},
		{ID: 11, Status: StatusReadOnly, Op: OpPut},
		{ID: 12, Status: StatusOK, Op: OpPromote, ReplRole: RolePrimary, ReplEpoch: 8},
		{ID: 13, Status: StatusNoRepl, Op: OpReplHello},
		{ID: 14, Status: StatusOK, Op: OpHSet},
		{ID: 15, Status: StatusOK, Op: OpHGet, Val: []byte("value")},
		{ID: 16, Status: StatusNotFound, Op: OpHGet},
		{ID: 17, Status: StatusOK, Op: OpSMembers, Members: [][]byte{[]byte("a"), []byte("b")}},
		{ID: 18, Status: StatusOK, Op: OpTTL, TTL: 1400},
		{ID: 19, Status: StatusOK, Op: OpTTL, TTL: -1},
		{ID: 20, Status: StatusOK, Op: OpExpire},
		{ID: 21, Status: StatusOK, Op: OpPersist},
	}
	var out [][]byte
	for _, r := range resps {
		frame, err := AppendResponse(nil, r)
		if err != nil {
			panic(err)
		}
		out = append(out, frame[4:])
	}
	out = append(out,
		append(append(make([]byte, 8), StatusOK, OpScan), 0x80, 0, 0, 0),
	)
	return out
}

// FuzzDecodeRequest checks that DecodeRequest is total (no panics, no
// runaway allocation) and that whatever it accepts re-encodes to a payload
// it accepts again, unchanged.
func FuzzDecodeRequest(f *testing.F) {
	for _, p := range seedRequestPayloads() {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRequest(data)
		if err != nil {
			return
		}
		frame, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(frame[4:], data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, frame[4:])
		}
	})
}

// FuzzDecodeResponse is the response-side totality check.
func FuzzDecodeResponse(f *testing.F) {
	for _, p := range seedResponsePayloads() {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResponse(data)
		if err != nil {
			return
		}
		frame, err := AppendResponse(nil, r)
		if err != nil {
			t.Fatalf("accepted response failed to re-encode: %v (%+v)", err, r)
		}
		if !bytes.Equal(frame[4:], data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, frame[4:])
		}
	})
}

// FuzzReadFrame throws raw byte streams at the framing layer: it must
// return frames or errors, never panic, and never allocate more than
// MaxFrame for a payload.
func FuzzReadFrame(f *testing.F) {
	frame, _ := AppendRequest(nil, Request{ID: 1, Op: OpPut, Key: []byte("k"), Val: []byte("v")})
	f.Add(frame)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0})
	f.Add([]byte{0, 0, 0, 9, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 4; i++ {
			p, err := ReadFrame(br, buf)
			if err != nil {
				return
			}
			if len(p) > MaxFrame {
				t.Fatalf("frame larger than MaxFrame: %d", len(p))
			}
			buf = p
		}
	})
}
