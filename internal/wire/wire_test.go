package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
)

// roundTripReq encodes r, reads it back through the framing layer and
// decodes it.
func roundTripReq(t *testing.T, r Request) Request {
	t.Helper()
	frame, err := AppendRequest(nil, r)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := DecodeRequest(payload)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return got
}

func roundTripResp(t *testing.T, r Response) Response {
	t.Helper()
	frame, err := AppendResponse(nil, r)
	if err != nil {
		t.Fatalf("AppendResponse: %v", err)
	}
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), nil)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	got, err := DecodeResponse(payload)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpStats},
		{ID: 3, Op: OpGet, Key: []byte("k")},
		{ID: 4, Op: OpDel, Key: []byte("gone")},
		{ID: 5, Op: OpPut, Key: []byte("k"), Val: []byte("v")},
		{ID: 6, Op: OpPut, Key: []byte("k"), Val: nil},
		{ID: 7, Op: OpScan, ScanMax: 100, ScanPrefix: []byte("user:")},
		{ID: 8, Op: OpScan, ScanMax: 0, ScanPrefix: nil},
		{ID: 1<<64 - 1, Op: OpPut, Key: bytes.Repeat([]byte("K"), 4096), Val: bytes.Repeat([]byte("V"), 65536)},
	}
	for _, r := range reqs {
		got := roundTripReq(t, r)
		if got.ID != r.ID || got.Op != r.Op || !bytes.Equal(got.Key, r.Key) ||
			!bytes.Equal(got.Val, r.Val) || got.ScanMax != r.ScanMax ||
			!bytes.Equal(got.ScanPrefix, r.ScanPrefix) {
			t.Errorf("round trip mismatch: sent %+v got %+v", r, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{ID: 1, Status: StatusOK, Op: OpPing},
		{ID: 2, Status: StatusOK, Op: OpPut},
		{ID: 3, Status: StatusOK, Op: OpGet, Val: []byte("value")},
		{ID: 4, Status: StatusNotFound, Op: OpGet},
		{ID: 5, Status: StatusErr, Op: OpPut, Msg: "kv: record larger than log chunk"},
		{ID: 6, Status: StatusOverloaded, Op: OpPut},
		{ID: 7, Status: StatusClosing, Op: OpGet},
		{ID: 8, Status: StatusOK, Op: OpScan, Pairs: []KV{
			{Key: []byte("a"), Val: []byte("1")},
			{Key: []byte("b"), Val: nil},
		}},
		{ID: 9, Status: StatusOK, Op: OpScan},
		{ID: 10, Status: StatusOK, Op: OpStats, Counters: []Counter{
			{Name: "live_keys", Val: 42},
			{Name: "persists", Val: 1 << 40},
		}},
	}
	for _, r := range resps {
		got := roundTripResp(t, r)
		if got.ID != r.ID || got.Status != r.Status || got.Op != r.Op ||
			!bytes.Equal(got.Val, r.Val) || got.Msg != r.Msg {
			t.Errorf("round trip mismatch: sent %+v got %+v", r, got)
		}
		if len(got.Pairs) != len(r.Pairs) {
			t.Fatalf("pairs len: sent %d got %d", len(r.Pairs), len(got.Pairs))
		}
		for i := range r.Pairs {
			if !bytes.Equal(got.Pairs[i].Key, r.Pairs[i].Key) || !bytes.Equal(got.Pairs[i].Val, r.Pairs[i].Val) {
				t.Errorf("pair %d mismatch", i)
			}
		}
		if !reflect.DeepEqual(got.Counters, r.Counters) && !(len(got.Counters) == 0 && len(r.Counters) == 0) {
			t.Errorf("counters mismatch: sent %v got %v", r.Counters, got.Counters)
		}
	}
}

func TestReadFrameLimits(t *testing.T) {
	// Oversized length prefix is rejected without reading the payload.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:])), nil); err != ErrFrameTooLarge {
		t.Fatalf("oversized frame: %v", err)
	}
	// Undersized.
	binary.BigEndian.PutUint32(hdr[:], 3)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(hdr[:])), nil); err != ErrFrameTooSmall {
		t.Fatalf("undersized frame: %v", err)
	}
	// Truncated payload.
	binary.BigEndian.PutUint32(hdr[:], 100)
	in := append(append([]byte{}, hdr[:]...), make([]byte, 10)...)
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(in)), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated payload: %v", err)
	}
	// Clean EOF at a frame boundary surfaces as io.EOF.
	if _, err := ReadFrame(bufio.NewReader(strings.NewReader("")), nil); err != io.EOF {
		t.Fatalf("eof: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},                         // below min payload
		append(make([]byte, 8), 0),        // opcode 0
		append(make([]byte, 8), 99),       // unknown opcode
		append(make([]byte, 8), OpGet),    // missing key length
		append(make([]byte, 8), OpGet, 0), // truncated key length
		// GET whose key length points past the payload.
		append(append(make([]byte, 8), OpGet), 0xff, 0xff, 0xff, 0xff),
		// PING with trailing junk.
		append(append(make([]byte, 8), OpPing), 1, 2, 3),
	}
	for i, p := range cases {
		if _, err := DecodeRequest(p); err == nil {
			t.Errorf("case %d: garbage request decoded without error", i)
		}
	}
	respCases := [][]byte{
		append(make([]byte, 8), StatusOK),            // missing op byte
		append(make([]byte, 8), 77, OpGet),           // unknown status
		append(make([]byte, 8), StatusOK, 99),        // unknown op
		append(make([]byte, 8), StatusOK, OpGet),     // missing value
		append(make([]byte, 8), StatusErr, OpGet, 9), // truncated message length
		// SCAN claiming 2^31 pairs in a 4-byte body.
		append(append(make([]byte, 8), StatusOK, OpScan), 0x80, 0, 0, 0),
	}
	for i, p := range respCases {
		if _, err := DecodeResponse(p); err == nil {
			t.Errorf("case %d: garbage response decoded without error", i)
		}
	}
}

func TestReadFrameReusesBuffer(t *testing.T) {
	frame, err := AppendRequest(nil, Request{ID: 9, Op: OpPut, Key: []byte("k"), Val: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 1024)
	p, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &p[0] != &buf[:1][0] {
		t.Fatal("payload did not reuse the caller's buffer")
	}
}

func TestAppendRequestRejectsOversized(t *testing.T) {
	big := make([]byte, MaxFrame)
	if _, err := AppendRequest(nil, Request{ID: 1, Op: OpPut, Key: []byte("k"), Val: big}); err != ErrFrameTooLarge {
		t.Fatalf("oversized request: %v", err)
	}
}
