// Package wire defines the length-prefixed binary protocol spoken between
// rnserved and its clients.
//
// A frame is a 4-byte big-endian payload length followed by the payload:
//
//	uint32  payload length N (9 <= N <= MaxFrame)
//	uint64  request id (echoed verbatim in the response; clients use it to
//	        match pipelined, possibly out-of-order responses)
//	uint8   opcode (requests) — responses carry a status byte here and echo
//	        the opcode after it, so response bodies are self-describing
//	...     op-specific body
//
// Variable-length fields are encoded as uint32 length + raw bytes. The
// decoder is total: any truncated, oversized or otherwise malformed payload
// returns an error — it never panics and never allocates more than the
// payload it was handed (FuzzDecodeRequest / FuzzDecodeResponse enforce
// this).
//
// Request bodies:
//
//	PING, STATS        (empty)
//	GET, DEL           key
//	PUT                key, value
//	SCAN               uint32 max, prefix
//
// Response bodies (status OK unless noted):
//
//	PING, PUT, DEL     (empty)
//	GET                value
//	SCAN               uint32 n, then n x (key, value)
//	STATS              uint32 n, then n x (name, uint64 value)
//	any with StatusErr message
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's payload. It comfortably fits the kv store's
// largest record (one log chunk, default 1 MiB) plus framing overhead.
const MaxFrame = 4 << 20

// minPayload is id (8) + opcode/status (1).
const minPayload = 9

// Opcodes.
const (
	OpPing  = 1
	OpGet   = 2
	OpPut   = 3
	OpDel   = 4
	OpScan  = 5
	OpStats = 6
)

// Response status codes.
const (
	StatusOK         = 0
	StatusNotFound   = 1 // GET/DEL on an absent key
	StatusErr        = 2 // server-side error; body carries the message
	StatusOverloaded = 3 // backpressure rejection: retry later
	StatusClosing    = 4 // server is draining; reconnect elsewhere
)

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrFrameTooSmall = errors.New("wire: frame below minimum payload")
	ErrTruncated     = errors.New("wire: truncated payload")
	ErrTrailingData  = errors.New("wire: trailing bytes after payload")
	ErrBadOp         = errors.New("wire: unknown opcode")
	ErrBadStatus     = errors.New("wire: unknown status")
)

// Request is one decoded client request.
type Request struct {
	ID  uint64
	Op  uint8
	Key []byte // GET, PUT, DEL
	Val []byte // PUT

	ScanMax    uint32 // SCAN: max pairs returned
	ScanPrefix []byte // SCAN: key prefix filter (may be empty)
}

// KV is one key/value pair in a SCAN response.
type KV struct {
	Key, Val []byte
}

// Counter is one named STATS value.
type Counter struct {
	Name string
	Val  uint64
}

// Response is one decoded server response.
type Response struct {
	ID     uint64
	Status uint8
	Op     uint8 // opcode of the request this answers

	Val      []byte    // GET
	Msg      string    // StatusErr
	Pairs    []KV      // SCAN
	Counters []Counter // STATS
}

// OpName returns a printable opcode name.
func OpName(op uint8) string {
	switch op {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	}
	return fmt.Sprintf("OP(%d)", op)
}

func validOp(op uint8) bool { return op >= OpPing && op <= OpStats }

func validStatus(st uint8) bool { return st <= StatusClosing }

// --- encoding ---------------------------------------------------------

// appendU32/appendU64/appendBytes build payloads big-endian.
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// finishFrame patches the 4-byte length placeholder at base.
func finishFrame(dst []byte, base int) ([]byte, error) {
	n := len(dst) - base - 4
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[base:], uint32(n))
	return dst, nil
}

// AppendRequest appends r as a complete frame (length prefix included).
func AppendRequest(dst []byte, r Request) ([]byte, error) {
	if !validOp(r.Op) {
		return nil, ErrBadOp
	}
	base := len(dst)
	dst = appendU32(dst, 0) // length placeholder
	dst = appendU64(dst, r.ID)
	dst = append(dst, r.Op)
	switch r.Op {
	case OpGet, OpDel:
		dst = appendBytes(dst, r.Key)
	case OpPut:
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Val)
	case OpScan:
		dst = appendU32(dst, r.ScanMax)
		dst = appendBytes(dst, r.ScanPrefix)
	}
	return finishFrame(dst, base)
}

// AppendResponse appends r as a complete frame (length prefix included).
func AppendResponse(dst []byte, r Response) ([]byte, error) {
	if !validOp(r.Op) {
		return nil, ErrBadOp
	}
	if !validStatus(r.Status) {
		return nil, ErrBadStatus
	}
	base := len(dst)
	dst = appendU32(dst, 0) // length placeholder
	dst = appendU64(dst, r.ID)
	dst = append(dst, r.Status, r.Op)
	switch {
	case r.Status == StatusErr:
		dst = appendBytes(dst, []byte(r.Msg))
	case r.Status != StatusOK:
		// Rejections carry no body.
	case r.Op == OpGet:
		dst = appendBytes(dst, r.Val)
	case r.Op == OpScan:
		dst = appendU32(dst, uint32(len(r.Pairs)))
		for _, p := range r.Pairs {
			dst = appendBytes(dst, p.Key)
			dst = appendBytes(dst, p.Val)
		}
	case r.Op == OpStats:
		dst = appendU32(dst, uint32(len(r.Counters)))
		for _, c := range r.Counters {
			dst = appendBytes(dst, []byte(c.Name))
			dst = appendU64(dst, c.Val)
		}
	}
	return finishFrame(dst, base)
}

// --- framing ----------------------------------------------------------

// ReadFrame reads one frame from r and returns its payload. buf, if large
// enough, is reused for the payload; pass the previous return value to
// amortize allocation. Oversized or undersized frames are rejected before
// any payload byte is read, so a malicious length cannot force a large
// allocation.
func ReadFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if n < minPayload {
		return nil, ErrFrameTooSmall
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// --- decoding ---------------------------------------------------------

// cursor walks a payload, failing cleanly on truncation.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 1 {
		c.err = ErrTruncated
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 4 {
		c.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// bytes reads a length-prefixed field. The returned slice aliases the
// payload; callers that retain it across frames must copy.
func (c *cursor) bytes() []byte {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(c.b)) {
		c.err = ErrTruncated
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return ErrTrailingData
	}
	return nil
}

// DecodeRequest decodes a request payload (a frame minus its length
// prefix). The returned slices alias p.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < minPayload {
		return Request{}, ErrFrameTooSmall
	}
	c := cursor{b: p}
	var r Request
	r.ID = c.u64()
	r.Op = c.u8()
	if !validOp(r.Op) {
		return Request{}, ErrBadOp
	}
	switch r.Op {
	case OpGet, OpDel:
		r.Key = c.bytes()
	case OpPut:
		r.Key = c.bytes()
		r.Val = c.bytes()
	case OpScan:
		r.ScanMax = c.u32()
		r.ScanPrefix = c.bytes()
	}
	if err := c.done(); err != nil {
		return Request{}, err
	}
	return r, nil
}

// DecodeResponse decodes a response payload. The returned slices alias p.
func DecodeResponse(p []byte) (Response, error) {
	if len(p) < minPayload+1 {
		return Response{}, ErrFrameTooSmall
	}
	c := cursor{b: p}
	var r Response
	r.ID = c.u64()
	r.Status = c.u8()
	r.Op = c.u8()
	if !validStatus(r.Status) {
		return Response{}, ErrBadStatus
	}
	if !validOp(r.Op) {
		return Response{}, ErrBadOp
	}
	switch {
	case r.Status == StatusErr:
		r.Msg = string(c.bytes())
	case r.Status != StatusOK:
	case r.Op == OpGet:
		r.Val = c.bytes()
	case r.Op == OpScan:
		n := c.u32()
		// Each pair costs at least 8 bytes of length prefixes; reject
		// counts the remaining payload cannot possibly hold before
		// allocating for them.
		if c.err == nil && uint64(n)*8 > uint64(len(c.b)) {
			return Response{}, ErrTruncated
		}
		if c.err == nil && n > 0 {
			r.Pairs = make([]KV, 0, n)
			for i := uint32(0); i < n && c.err == nil; i++ {
				k := c.bytes()
				v := c.bytes()
				r.Pairs = append(r.Pairs, KV{Key: k, Val: v})
			}
		}
	case r.Op == OpStats:
		n := c.u32()
		if c.err == nil && uint64(n)*12 > uint64(len(c.b)) {
			return Response{}, ErrTruncated
		}
		if c.err == nil && n > 0 {
			r.Counters = make([]Counter, 0, n)
			for i := uint32(0); i < n && c.err == nil; i++ {
				name := string(c.bytes())
				v := c.u64()
				r.Counters = append(r.Counters, Counter{Name: name, Val: v})
			}
		}
	}
	if err := c.done(); err != nil {
		return Response{}, err
	}
	return r, nil
}
