// Package wire defines the length-prefixed binary protocol spoken between
// rnserved and its clients.
//
// A frame is a 4-byte big-endian payload length followed by the payload:
//
//	uint32  payload length N (9 <= N <= MaxFrame)
//	uint64  request id (echoed verbatim in the response; clients use it to
//	        match pipelined, possibly out-of-order responses)
//	uint8   opcode (requests) — responses carry a status byte here and echo
//	        the opcode after it, so response bodies are self-describing
//	...     op-specific body
//
// Variable-length fields are encoded as uint32 length + raw bytes. The
// decoder is total: any truncated, oversized or otherwise malformed payload
// returns an error — it never panics and never allocates more than the
// payload it was handed (FuzzDecodeRequest / FuzzDecodeResponse enforce
// this).
//
// Request bodies:
//
//	PING, STATS        (empty)
//	GET, DEL           key
//	PUT                key, value [, uint8 1 — durable-ack flag, absent = async]
//	SCAN               uint32 max, prefix
//	REPL.HELLO         uint8 role, uint64 epoch
//	REPL.SUBSCRIBE     uint32 n, then n x uint64 from-LSN (one per partition)
//	REPL.RECORD        uint32 part, uint64 lsn, uint8 kind, key, value
//	REPL.ACK           uint32 n, then n x uint64 durable LSN (one per partition)
//	PROMOTE            uint64 epoch to supersede
//	HSET               name, field, value
//	HGET, HDEL         name, field
//	SADD, SREM         name, member
//	SMEMBERS, TTL,
//	PERSIST            name
//	EXPIRE             name, uint64 ttl milliseconds
//
// Response bodies (status OK unless noted):
//
//	PING, PUT, DEL     (empty)
//	GET                value
//	SCAN               uint32 n, then n x (key, value)
//	STATS              uint32 n, then n x (name, uint64 value)
//	REPL.HELLO         uint8 role, uint64 epoch, uint32 n, then n x uint64 LSN
//	REPL.SUBSCRIBE     (empty)
//	REPL.RECORD        uint32 part, uint64 lsn, uint8 kind, key, value
//	REPL.ACK           (empty)
//	PROMOTE            uint8 role, uint64 epoch
//	HGET               value
//	SMEMBERS           uint32 n, then n x member
//	TTL                uint64 remaining ms (two's-complement -1 = no TTL)
//	HSET, HDEL, SADD,
//	SREM, EXPIRE,
//	PERSIST            (empty)
//	any with StatusErr message
//
// Replication rides the same framing in both directions: after a replica's
// REPL.SUBSCRIBE is acknowledged, the primary streams REPL.RECORD frames as
// unsolicited *responses* (the ID is a per-connection ship sequence, the Op
// field distinguishes them from request responses), and the replica sends
// REPL.ACK *requests* that receive no response. See DESIGN.md §13.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one frame's payload. It comfortably fits the kv store's
// largest record (one log chunk, default 1 MiB) plus framing overhead.
const MaxFrame = 4 << 20

// minPayload is id (8) + opcode/status (1).
const minPayload = 9

// Opcodes.
const (
	OpPing  = 1
	OpGet   = 2
	OpPut   = 3
	OpDel   = 4
	OpScan  = 5
	OpStats = 6

	// Replication verbs (DESIGN.md §13).
	OpReplHello     = 7  // role/epoch handshake
	OpReplSubscribe = 8  // replica asks for the stream from per-partition LSNs
	OpReplRecord    = 9  // one shipped log record (streamed as responses)
	OpReplAck       = 10 // replica's durable per-partition watermarks (no response)
	OpPromote       = 11 // client asks a replica to take over as primary

	// Typed-object verbs (DESIGN.md §15).
	OpHSet     = 12 // hash field write
	OpHGet     = 13 // hash field read
	OpHDel     = 14 // hash field delete
	OpSAdd     = 15 // set member add
	OpSRem     = 16 // set member remove
	OpSMembers = 17 // set member list
	OpExpire   = 18 // set a key's TTL
	OpTTL      = 19 // read a key's remaining TTL
	OpPersist  = 20 // drop a key's TTL
)

// Replication roles carried by REPL.HELLO and PROMOTE frames.
const (
	RolePrimary = 1
	RoleReplica = 2
)

// Response status codes.
const (
	StatusOK         = 0
	StatusNotFound   = 1 // GET/DEL on an absent key
	StatusErr        = 2 // server-side error; body carries the message
	StatusOverloaded = 3 // backpressure rejection: retry later
	StatusClosing    = 4 // server is draining; reconnect elsewhere
	StatusReadOnly   = 5 // write on a replica: promote it or find the primary
	StatusNoRepl     = 6 // replication verb on a server with replication disabled
)

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")
	ErrFrameTooSmall = errors.New("wire: frame below minimum payload")
	ErrTruncated     = errors.New("wire: truncated payload")
	ErrTrailingData  = errors.New("wire: trailing bytes after payload")
	ErrBadOp         = errors.New("wire: unknown opcode")
	ErrBadStatus     = errors.New("wire: unknown status")
	ErrBadFlag       = errors.New("wire: bad trailing flag byte")
)

// Request is one decoded client request.
type Request struct {
	ID  uint64
	Op  uint8
	Key []byte // GET, PUT, DEL; REPL.RECORD record key
	Val []byte // PUT; REPL.RECORD record value

	ScanMax    uint32 // SCAN: max pairs returned
	ScanPrefix []byte // SCAN: key prefix filter (may be empty)

	// Durable asks the primary to delay the PUT ack until a replica has
	// persisted the record (wait-for-replica-durable mode). Encoded as an
	// optional trailing flag byte so pre-replication PUT frames — and the
	// committed fuzz corpus — decode unchanged.
	Durable bool

	ReplRole  uint8    // REPL.HELLO: sender role
	ReplEpoch uint64   // REPL.HELLO: sender epoch; PROMOTE: epoch to supersede
	ReplLSNs  []uint64 // REPL.SUBSCRIBE: resume LSNs; REPL.ACK: durable watermarks
	ReplPart  uint32   // REPL.RECORD: partition index
	ReplLSN   uint64   // REPL.RECORD: record LSN
	ReplKind  uint8    // REPL.RECORD: record kind (kv.ReplPut / kv.ReplDelete)

	Field []byte // HSET/HGET/HDEL: field; SADD/SREM: member (Key is the name)
	TTLMs uint64 // EXPIRE: milliseconds until expiry
}

// KV is one key/value pair in a SCAN response.
type KV struct {
	Key, Val []byte
}

// Counter is one named STATS value.
type Counter struct {
	Name string
	Val  uint64
}

// Response is one decoded server response.
type Response struct {
	ID     uint64
	Status uint8
	Op     uint8 // opcode of the request this answers

	Val      []byte    // GET; REPL.RECORD record value
	Msg      string    // StatusErr
	Pairs    []KV      // SCAN
	Counters []Counter // STATS

	Key       []byte   // REPL.RECORD: record key
	ReplRole  uint8    // REPL.HELLO / PROMOTE: responder's role
	ReplEpoch uint64   // REPL.HELLO / PROMOTE: responder's epoch
	ReplLSNs  []uint64 // REPL.HELLO: responder's per-partition LSNs
	ReplPart  uint32   // REPL.RECORD: partition index
	ReplLSN   uint64   // REPL.RECORD: record LSN
	ReplKind  uint8    // REPL.RECORD: record kind

	Members [][]byte // SMEMBERS
	TTL     int64    // TTL: remaining ms, -1 = key exists with no TTL
}

// OpName returns a printable opcode name.
func OpName(op uint8) string {
	switch op {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	case OpReplHello:
		return "REPL.HELLO"
	case OpReplSubscribe:
		return "REPL.SUBSCRIBE"
	case OpReplRecord:
		return "REPL.RECORD"
	case OpReplAck:
		return "REPL.ACK"
	case OpPromote:
		return "PROMOTE"
	case OpHSet:
		return "HSET"
	case OpHGet:
		return "HGET"
	case OpHDel:
		return "HDEL"
	case OpSAdd:
		return "SADD"
	case OpSRem:
		return "SREM"
	case OpSMembers:
		return "SMEMBERS"
	case OpExpire:
		return "EXPIRE"
	case OpTTL:
		return "TTL"
	case OpPersist:
		return "PERSIST"
	}
	return fmt.Sprintf("OP(%d)", op)
}

func validOp(op uint8) bool { return op >= OpPing && op <= OpPersist }

func validStatus(st uint8) bool { return st <= StatusNoRepl }

// --- encoding ---------------------------------------------------------

// appendU32/appendU64/appendBytes build payloads big-endian.
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }
func appendBytes(dst, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// appendLSNs encodes a per-partition LSN vector: uint32 count, then the
// values.
func appendLSNs(dst []byte, lsns []uint64) []byte {
	dst = appendU32(dst, uint32(len(lsns)))
	for _, l := range lsns {
		dst = appendU64(dst, l)
	}
	return dst
}

// finishFrame patches the 4-byte length placeholder at base.
func finishFrame(dst []byte, base int) ([]byte, error) {
	n := len(dst) - base - 4
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[base:], uint32(n))
	return dst, nil
}

// AppendRequest appends r as a complete frame (length prefix included).
func AppendRequest(dst []byte, r Request) ([]byte, error) {
	if !validOp(r.Op) {
		return nil, ErrBadOp
	}
	base := len(dst)
	dst = appendU32(dst, 0) // length placeholder
	dst = appendU64(dst, r.ID)
	dst = append(dst, r.Op)
	switch r.Op {
	case OpGet, OpDel:
		dst = appendBytes(dst, r.Key)
	case OpPut:
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Val)
		if r.Durable {
			dst = append(dst, 1)
		}
	case OpScan:
		dst = appendU32(dst, r.ScanMax)
		dst = appendBytes(dst, r.ScanPrefix)
	case OpReplHello:
		dst = append(dst, r.ReplRole)
		dst = appendU64(dst, r.ReplEpoch)
	case OpReplSubscribe, OpReplAck:
		dst = appendLSNs(dst, r.ReplLSNs)
	case OpReplRecord:
		dst = appendU32(dst, r.ReplPart)
		dst = appendU64(dst, r.ReplLSN)
		dst = append(dst, r.ReplKind)
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Val)
	case OpPromote:
		dst = appendU64(dst, r.ReplEpoch)
	case OpHSet:
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Field)
		dst = appendBytes(dst, r.Val)
	case OpHGet, OpHDel, OpSAdd, OpSRem:
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Field)
	case OpSMembers, OpTTL, OpPersist:
		dst = appendBytes(dst, r.Key)
	case OpExpire:
		dst = appendBytes(dst, r.Key)
		dst = appendU64(dst, r.TTLMs)
	}
	return finishFrame(dst, base)
}

// AppendResponse appends r as a complete frame (length prefix included).
func AppendResponse(dst []byte, r Response) ([]byte, error) {
	if !validOp(r.Op) {
		return nil, ErrBadOp
	}
	if !validStatus(r.Status) {
		return nil, ErrBadStatus
	}
	base := len(dst)
	dst = appendU32(dst, 0) // length placeholder
	dst = appendU64(dst, r.ID)
	dst = append(dst, r.Status, r.Op)
	switch {
	case r.Status == StatusErr:
		dst = appendBytes(dst, []byte(r.Msg))
	case r.Status != StatusOK:
		// Rejections carry no body.
	case r.Op == OpGet:
		dst = appendBytes(dst, r.Val)
	case r.Op == OpScan:
		dst = appendU32(dst, uint32(len(r.Pairs)))
		for _, p := range r.Pairs {
			dst = appendBytes(dst, p.Key)
			dst = appendBytes(dst, p.Val)
		}
	case r.Op == OpStats:
		dst = appendU32(dst, uint32(len(r.Counters)))
		for _, c := range r.Counters {
			dst = appendBytes(dst, []byte(c.Name))
			dst = appendU64(dst, c.Val)
		}
	case r.Op == OpReplHello:
		dst = append(dst, r.ReplRole)
		dst = appendU64(dst, r.ReplEpoch)
		dst = appendLSNs(dst, r.ReplLSNs)
	case r.Op == OpReplRecord:
		dst = appendU32(dst, r.ReplPart)
		dst = appendU64(dst, r.ReplLSN)
		dst = append(dst, r.ReplKind)
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Val)
	case r.Op == OpPromote:
		dst = append(dst, r.ReplRole)
		dst = appendU64(dst, r.ReplEpoch)
	case r.Op == OpHGet:
		dst = appendBytes(dst, r.Val)
	case r.Op == OpSMembers:
		dst = appendU32(dst, uint32(len(r.Members)))
		for _, m := range r.Members {
			dst = appendBytes(dst, m)
		}
	case r.Op == OpTTL:
		dst = appendU64(dst, uint64(r.TTL))
	}
	return finishFrame(dst, base)
}

// --- framing ----------------------------------------------------------

// ReadFrame reads one frame from r and returns its payload. buf, if large
// enough, is reused for the payload; pass the previous return value to
// amortize allocation. Oversized or undersized frames are rejected before
// any payload byte is read, so a malicious length cannot force a large
// allocation.
func ReadFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	if n < minPayload {
		return nil, ErrFrameTooSmall
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// --- decoding ---------------------------------------------------------

// cursor walks a payload, failing cleanly on truncation.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 1 {
		c.err = ErrTruncated
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 4 {
		c.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if len(c.b) < 8 {
		c.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v
}

// bytes reads a length-prefixed field. The returned slice aliases the
// payload; callers that retain it across frames must copy.
func (c *cursor) bytes() []byte {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(c.b)) {
		c.err = ErrTruncated
		return nil
	}
	v := c.b[:n]
	c.b = c.b[n:]
	return v
}

// lsns reads a per-partition LSN vector. Counts the remaining payload
// cannot possibly hold are rejected before allocating for them.
func (c *cursor) lsns() []uint64 {
	n := c.u32()
	if c.err != nil {
		return nil
	}
	if uint64(n)*8 > uint64(len(c.b)) {
		c.err = ErrTruncated
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = c.u64()
	}
	return out
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return ErrTrailingData
	}
	return nil
}

// DecodeRequest decodes a request payload (a frame minus its length
// prefix). The returned slices alias p.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < minPayload {
		return Request{}, ErrFrameTooSmall
	}
	c := cursor{b: p}
	var r Request
	r.ID = c.u64()
	r.Op = c.u8()
	if !validOp(r.Op) {
		return Request{}, ErrBadOp
	}
	switch r.Op {
	case OpGet, OpDel:
		r.Key = c.bytes()
	case OpPut:
		r.Key = c.bytes()
		r.Val = c.bytes()
		// Optional durable-ack flag. Only the value 1 is valid — decoding
		// stays the exact inverse of encoding, which the fuzz round-trip
		// check requires.
		if c.err == nil && len(c.b) > 0 {
			if c.u8() != 1 {
				return Request{}, ErrBadFlag
			}
			r.Durable = true
		}
	case OpScan:
		r.ScanMax = c.u32()
		r.ScanPrefix = c.bytes()
	case OpReplHello:
		r.ReplRole = c.u8()
		r.ReplEpoch = c.u64()
	case OpReplSubscribe, OpReplAck:
		r.ReplLSNs = c.lsns()
	case OpReplRecord:
		r.ReplPart = c.u32()
		r.ReplLSN = c.u64()
		r.ReplKind = c.u8()
		r.Key = c.bytes()
		r.Val = c.bytes()
	case OpPromote:
		r.ReplEpoch = c.u64()
	case OpHSet:
		r.Key = c.bytes()
		r.Field = c.bytes()
		r.Val = c.bytes()
	case OpHGet, OpHDel, OpSAdd, OpSRem:
		r.Key = c.bytes()
		r.Field = c.bytes()
	case OpSMembers, OpTTL, OpPersist:
		r.Key = c.bytes()
	case OpExpire:
		r.Key = c.bytes()
		r.TTLMs = c.u64()
	}
	if err := c.done(); err != nil {
		return Request{}, err
	}
	return r, nil
}

// DecodeResponse decodes a response payload. The returned slices alias p.
func DecodeResponse(p []byte) (Response, error) {
	if len(p) < minPayload+1 {
		return Response{}, ErrFrameTooSmall
	}
	c := cursor{b: p}
	var r Response
	r.ID = c.u64()
	r.Status = c.u8()
	r.Op = c.u8()
	if !validStatus(r.Status) {
		return Response{}, ErrBadStatus
	}
	if !validOp(r.Op) {
		return Response{}, ErrBadOp
	}
	switch {
	case r.Status == StatusErr:
		r.Msg = string(c.bytes())
	case r.Status != StatusOK:
	case r.Op == OpGet:
		r.Val = c.bytes()
	case r.Op == OpScan:
		n := c.u32()
		// Each pair costs at least 8 bytes of length prefixes; reject
		// counts the remaining payload cannot possibly hold before
		// allocating for them.
		if c.err == nil && uint64(n)*8 > uint64(len(c.b)) {
			return Response{}, ErrTruncated
		}
		if c.err == nil && n > 0 {
			r.Pairs = make([]KV, 0, n)
			for i := uint32(0); i < n && c.err == nil; i++ {
				k := c.bytes()
				v := c.bytes()
				r.Pairs = append(r.Pairs, KV{Key: k, Val: v})
			}
		}
	case r.Op == OpStats:
		n := c.u32()
		if c.err == nil && uint64(n)*12 > uint64(len(c.b)) {
			return Response{}, ErrTruncated
		}
		if c.err == nil && n > 0 {
			r.Counters = make([]Counter, 0, n)
			for i := uint32(0); i < n && c.err == nil; i++ {
				name := string(c.bytes())
				v := c.u64()
				r.Counters = append(r.Counters, Counter{Name: name, Val: v})
			}
		}
	case r.Op == OpReplHello:
		r.ReplRole = c.u8()
		r.ReplEpoch = c.u64()
		r.ReplLSNs = c.lsns()
	case r.Op == OpReplRecord:
		r.ReplPart = c.u32()
		r.ReplLSN = c.u64()
		r.ReplKind = c.u8()
		r.Key = c.bytes()
		r.Val = c.bytes()
	case r.Op == OpPromote:
		r.ReplRole = c.u8()
		r.ReplEpoch = c.u64()
	case r.Op == OpHGet:
		r.Val = c.bytes()
	case r.Op == OpSMembers:
		n := c.u32()
		// Each member costs at least a 4-byte length prefix; reject counts
		// the remaining payload cannot possibly hold before allocating.
		if c.err == nil && uint64(n)*4 > uint64(len(c.b)) {
			return Response{}, ErrTruncated
		}
		if c.err == nil && n > 0 {
			r.Members = make([][]byte, 0, n)
			for i := uint32(0); i < n && c.err == nil; i++ {
				r.Members = append(r.Members, c.bytes())
			}
		}
	case r.Op == OpTTL:
		r.TTL = int64(c.u64())
	}
	if err := c.done(); err != nil {
		return Response{}, err
	}
	return r, nil
}
