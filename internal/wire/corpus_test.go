package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// corpusEntry renders data in the Go fuzzing corpus-file encoding.
func corpusEntry(data []byte) string {
	return fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
}

// TestSeedCorpusCommitted keeps testdata/fuzz in sync with the in-code
// seeds: it writes any missing corpus file and fails if a committed file
// drifted from its generator, so `go test -fuzz` on a fresh checkout always
// starts from the full seed set.
func TestSeedCorpusCommitted(t *testing.T) {
	targets := map[string][][]byte{
		"FuzzDecodeRequest":  seedRequestPayloads(),
		"FuzzDecodeResponse": seedResponsePayloads(),
	}
	for target, seeds := range targets {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, data := range seeds {
			path := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			want := corpusEntry(data)
			got, err := os.ReadFile(path)
			switch {
			case os.IsNotExist(err):
				if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
			case err != nil:
				t.Fatal(err)
			case string(got) != want:
				t.Errorf("%s drifted from the in-code seed; delete it and re-run to regenerate", path)
			}
		}
	}
}
