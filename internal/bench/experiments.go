package bench

import (
	"fmt"
	"runtime"
	"time"

	"rntree/internal/core"
	"rntree/internal/pmem"
	"rntree/internal/tree"
	"rntree/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Table 1 — persistent instructions per modify operation, sortedness and
// concurrency support across trees.
// ---------------------------------------------------------------------------

// Table1 measures the persistent-instruction cost per insert/update/remove
// for every tree (amortized over many operations, so split traffic is
// included) and tabulates the qualitative columns of the paper's Table 1.
func Table1(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:     "table1",
		Title:  "Overview: persists per modify (measured, amortized), sorted leaves, concurrency",
		Header: []string{"tree", "insert", "update", "remove", "sorted", "concurrency"},
	}
	sorted := map[TreeKind]string{
		KindRNTree: "yes", KindRNTreeDS: "yes", KindNVTree: "no", KindNVTreeCond: "no",
		KindWBTree: "yes", KindWBTreeSO: "yes", KindFPTree: "no", KindCDDS: "yes",
	}
	conc := map[TreeKind]string{
		KindRNTree: "fine-grained", KindRNTreeDS: "fine-grained",
		KindNVTree: "none", KindNVTreeCond: "none",
		KindWBTree: "none", KindWBTreeSO: "none",
		KindFPTree: "coarse leaf lock", KindCDDS: "none",
	}
	const warm = 4000
	const ops = 2000
	for _, k := range AllKinds {
		ix, a, err := NewTree(k, c, warm*4)
		if err != nil {
			panic(err)
		}
		if err := Warm(ix, k, warm); err != nil {
			panic(err)
		}
		measure := func(f func(i uint64) error) float64 {
			a.ResetStats()
			for i := uint64(0); i < ops; i++ {
				if err := f(i); err != nil {
					panic(err)
				}
			}
			return float64(a.Stats().Persists) / ops
		}
		ins := measure(func(i uint64) error { return ix.Insert(ycsb.KeyAt(warm+i), i) })
		upd := measure(func(i uint64) error { return ix.Update(ycsb.KeyAt(i%warm), i) })
		rem := measure(func(i uint64) error { return ix.Remove(ycsb.KeyAt(i)) })
		res.Rows = append(res.Rows, []string{
			string(k), f2(ins), f2(upd), f2(rem), sorted[k], conc[k],
		})
	}
	res.Notes = append(res.Notes,
		"paper: CDDS=L*, NV-Tree=2, wB+Tree=4, FPTree=3, RNTree=2",
		"measured values are amortized over splits, so they sit slightly above the per-op minimum")
	return []Result{res}
}

// ---------------------------------------------------------------------------
// Figure 4 — single-thread throughput of basic operations.
// ---------------------------------------------------------------------------

var fig4Kinds = []TreeKind{KindRNTree, KindRNTreeDS, KindNVTree, KindWBTree, KindWBTreeSO, KindFPTree}

// Fig4 reproduces the single-thread find/insert/update/remove/mixed
// comparison.
func Fig4(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:     "fig4",
		Title:  "Single-thread throughput (Mops/s) of basic operations",
		Header: []string{"tree", "find", "insert", "update", "remove", "mixed"},
	}
	for _, k := range fig4Kinds {
		row := []string{string(k)}
		for _, op := range []string{"find", "insert", "update", "remove", "mixed"} {
			row = append(row, f3(median3(func() float64 { return fig4Point(c, k, op) })))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper: RNTree best-or-tied on find/insert/update; FPTree wins remove (1 persist); RNTree 25-44% faster on mixed")
	return []Result{res}
}

func fig4Point(c Config, k TreeKind, op string) float64 {
	ix, _, err := NewTree(k, c, c.Scale)
	if err != nil {
		panic(err)
	}
	if err := Warm(ix, k, c.Scale); err != nil {
		panic(err)
	}
	d := c.Duration
	switch op {
	case "find":
		return runThroughput(ix, ycsb.Workload{Mix: ycsb.C, Chooser: ycsb.Uniform{N: c.Scale}}, 1, d, c.Seed, c.Scale)
	case "update":
		return runThroughput(ix, ycsb.Workload{Mix: ycsb.Mix{Update: 100}, Chooser: ycsb.Uniform{N: c.Scale}}, 1, d, c.Seed, c.Scale)
	case "insert":
		return runSequenced(d, func(i uint64) { _ = ix.Insert(ycsb.KeyAt(c.Scale+i), i) }, c.Scale*4)
	case "remove":
		// The paper runs remove only briefly so the tree is not drained;
		// we additionally cap at the warmed population.
		rd := d / 3
		if rd <= 0 {
			rd = d
		}
		return runSequenced(rd, func(i uint64) { _ = ix.Remove(ycsb.KeyAt(i)) }, c.Scale)
	case "mixed":
		return runThroughput(ix, ycsb.Workload{Mix: ycsb.MixedQuarter, Chooser: ycsb.Uniform{N: c.Scale}}, 1, d, c.Seed, c.Scale)
	}
	panic("unknown op " + op)
}

// runSequenced drives a single-threaded indexed op stream until the deadline
// or limit and returns Mops/s.
func runSequenced(d time.Duration, f func(i uint64), limit uint64) float64 {
	t0 := time.Now()
	deadline := t0.Add(d)
	i := uint64(0)
	for ; i < limit; i++ {
		if i&0xff == 0 && time.Now().After(deadline) {
			break
		}
		f(i)
	}
	return float64(i) / time.Since(t0).Seconds() / 1e6
}

// ---------------------------------------------------------------------------
// Figure 5 — NV-Tree conditional-write overhead.
// ---------------------------------------------------------------------------

// Fig5 measures the slowdown NV-Tree pays to support conditional writes
// (scanning the leaf log before every modify); the paper reports ~19%.
func Fig5(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:     "fig5",
		Title:  "NV-Tree conditional-write overhead (Mops/s and slowdown)",
		Header: []string{"op", "nvtree", "nvtree-cond", "overhead%"},
	}
	for _, op := range []string{"insert", "update"} {
		plain := median3(func() float64 { return fig5Point(c, KindNVTree, op) })
		cond := median3(func() float64 { return fig5Point(c, KindNVTreeCond, op) })
		res.Rows = append(res.Rows, []string{
			op, f3(plain), f3(cond), f2((plain - cond) / plain * 100),
		})
	}
	res.Notes = append(res.Notes, "paper: ~19% slowdown for conditional writes on unsorted leaves; RNTree pays 0 (slot array locates the key anyway)")
	return []Result{res}
}

func fig5Point(c Config, k TreeKind, op string) float64 {
	ix, _, err := NewTree(k, c, c.Scale)
	if err != nil {
		panic(err)
	}
	if err := Warm(ix, k, c.Scale); err != nil {
		panic(err)
	}
	if op == "insert" {
		return runSequenced(c.Duration, func(i uint64) { _ = ix.Insert(ycsb.KeyAt(c.Scale+i), i) }, c.Scale*4)
	}
	return runThroughput(ix, ycsb.Workload{Mix: ycsb.Mix{Update: 100}, Chooser: ycsb.Uniform{N: c.Scale}}, 1, c.Duration, c.Seed, c.Scale)
}

// ---------------------------------------------------------------------------
// Figure 6 — range-query throughput vs scan length.
// ---------------------------------------------------------------------------

var fig6Kinds = []TreeKind{KindRNTree, KindRNTreeDS, KindWBTree, KindNVTree, KindFPTree}

// Fig6 reproduces the range-query comparison: sorted leaves scan directly;
// unsorted leaves (NV-Tree, FPTree) must sort every leaf they visit.
func Fig6(c Config) []Result {
	c = c.normalized()
	lengths := []int{10, 100, 1000, 10000}
	res := Result{
		ID:    "fig6",
		Title: "Range-query throughput (Kops/s) vs number of KVs per query",
		Header: append([]string{"tree"}, func() []string {
			h := make([]string, len(lengths))
			for i, l := range lengths {
				h[i] = fmt.Sprintf("scan%d", l)
			}
			return h
		}()...),
	}
	for _, k := range fig6Kinds {
		ix, _, err := NewTree(k, c, c.Scale)
		if err != nil {
			panic(err)
		}
		if err := Warm(ix, k, c.Scale); err != nil {
			panic(err)
		}
		row := []string{string(k)}
		for _, l := range lengths {
			w := ycsb.Workload{Mix: ycsb.Mix{}, Chooser: ycsb.Uniform{N: c.Scale}}
			stream := w.Stream(c.Seed)
			t0 := time.Now()
			deadline := t0.Add(c.Duration)
			ops := 0
			for !time.Now().After(deadline) {
				req := stream()
				ix.Scan(req.Key, l, func(_, _ uint64) bool { return true })
				ops++
			}
			row = append(row, f2(float64(ops)/time.Since(t0).Seconds()/1e3))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, "paper: RNTree ~4.2x NV-Tree/FPTree across scan lengths")
	return []Result{res}
}

// ---------------------------------------------------------------------------
// Figure 7 — recovery time vs tree size.
// ---------------------------------------------------------------------------

// Fig7 measures RNTree reconstruction (clean shutdown) and crash recovery
// across tree sizes; the paper reports linear scaling with crash recovery
// ~60% above reconstruction.
func Fig7(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:     "fig7",
		Title:  "RNTree recovery time vs tree size (ms)",
		Header: []string{"records", "reconstruction_ms", "crash_recovery_ms", "ratio"},
	}
	for _, frac := range []uint64{8, 4, 2, 1} {
		n := c.Scale / frac
		a := arenaFor(c, n)
		tr, err := core.New(a, core.Options{})
		if err != nil {
			panic(err)
		}
		if err := Warm(tr, KindRNTree, n); err != nil {
			panic(err)
		}
		tr.Close()
		img := a.CrashImage(nil, 0)

		recMs := median3(func() float64 {
			a1 := pmem.Recover(img, pmem.Config{Size: a.Size()})
			runtime.GC() // keep arena-copy garbage out of the timed section
			t0 := time.Now()
			if _, err := core.Reconstruct(a1, core.Options{}); err != nil {
				panic(err)
			}
			return float64(time.Since(t0).Microseconds()) / 1000
		})
		crashMs := median3(func() float64 {
			a2 := pmem.Recover(img, pmem.Config{Size: a.Size()})
			runtime.GC()
			t0 := time.Now()
			if _, err := core.CrashRecover(a2, core.Options{}); err != nil {
				panic(err)
			}
			return float64(time.Since(t0).Microseconds()) / 1000
		})

		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", n),
			f2(recMs),
			f2(crashMs),
			f2(crashMs / recMs),
		})
	}
	res.Notes = append(res.Notes, "paper: both linear in tree size; crash recovery ~1.6x reconstruction")
	return []Result{res}
}

// ---------------------------------------------------------------------------
// Figure 8 — throughput scalability.
// ---------------------------------------------------------------------------

var fig8Kinds = []TreeKind{KindFPTree, KindRNTree, KindRNTreeDS}

// Fig8 reproduces the three scalability plots: (a) YCSB-A uniform, (b)
// YCSB-A Zipfian 0.8, (c) read-intensive (90/10) Zipfian 0.8.
func Fig8(c Config) []Result {
	c = c.normalized()
	variants := []struct {
		id, title string
		mix       ycsb.Mix
		zipf      float64
	}{
		{"fig8a", "YCSB-A uniform: throughput (Mops/s) vs threads", ycsb.A, 0},
		{"fig8b", "YCSB-A Zipfian 0.8: throughput (Mops/s) vs threads", ycsb.A, 0.8},
		{"fig8c", "Read-intensive (90/10) Zipfian 0.8: throughput (Mops/s) vs threads", ycsb.ReadIntensive, 0.8},
	}
	var out []Result
	for _, v := range variants {
		res := Result{
			ID:     v.id,
			Title:  v.title,
			Header: []string{"threads"},
		}
		for _, k := range fig8Kinds {
			res.Header = append(res.Header, string(k), string(k)+" rtr/kop")
		}
		built := map[TreeKind]treeHandle{}
		for _, k := range fig8Kinds {
			built[k] = buildWarm(c, k)
		}
		for _, th := range c.Threads {
			row := []string{fmt.Sprintf("%d", th)}
			for _, k := range fig8Kinds {
				var ch ycsb.Chooser
				if v.zipf > 0 {
					ch = built[k].zipf(c, v.zipf)
				} else {
					ch = ycsb.Uniform{N: c.Scale}
				}
				r0 := readRetriesOf(built[k].ix)
				m := runThroughput(built[k].ix, ycsb.Workload{Mix: v.mix, Chooser: ch}, th, c.Duration, c.Seed, c.Scale)
				rtr := float64(readRetriesOf(built[k].ix)-r0) / (m * 1e3 * c.Duration.Seconds())
				row = append(row, f3(m), f2(rtr))
			}
			res.Rows = append(res.Rows, row)
		}
		res.Notes = append(res.Notes, fig8Note(v.id),
			"rtr/kop = wasted read attempts per 1000 ops (leaf locked / version changed): FPTree's root restarts vs RNTree+DS's near-zero")
		if runtime.GOMAXPROCS(0) < 2 {
			res.Notes = append(res.Notes, fmt.Sprintf("host has GOMAXPROCS=%d: parallel speedup is flattened; contention ordering between trees remains meaningful", runtime.GOMAXPROCS(0)))
		}
		out = append(out, res)
	}
	return out
}

func fig8Note(id string) string {
	switch id {
	case "fig8a":
		return "paper: FPTree and RNTree both scale near-linearly under uniform keys"
	case "fig8b":
		return "paper: FPTree stops scaling at ~4 threads; RNTree(+DS) ~1.8x FPTree at 24"
	default:
		return "paper: only RNTree+DS keeps near-linear scalability; FPTree finds break on locked leaves"
	}
}

type treeHandle struct {
	ix tree.Index
	z  map[float64]*ycsb.Zipfian
}

func (h treeHandle) zipf(c Config, theta float64) *ycsb.Zipfian {
	if z, ok := h.z[theta]; ok {
		return z
	}
	z := ycsb.NewZipfian(c.Scale, theta)
	h.z[theta] = z
	return z
}

func buildWarm(c Config, k TreeKind) treeHandle {
	ix, _, err := NewTree(k, c, c.Scale)
	if err != nil {
		panic(err)
	}
	if err := Warm(ix, k, c.Scale); err != nil {
		panic(err)
	}
	return treeHandle{ix: ix, z: map[float64]*ycsb.Zipfian{}}
}

// readRetriesOf returns the tree's wasted-read counter, if it has one.
func readRetriesOf(ix tree.Index) uint64 {
	if r, ok := ix.(interface{ ReadRetries() uint64 }); ok {
		return r.ReadRetries()
	}
	return 0
}

func kindsHeader(kinds []TreeKind) []string {
	h := make([]string, len(kinds))
	for i, k := range kinds {
		h[i] = string(k)
	}
	return h
}
