package bench

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rntree/client"
	"rntree/internal/hist"
	"rntree/internal/pmem"
	"rntree/internal/server"
	"rntree/kv"
)

// netPoint is one cell of the connections × pipeline-depth sweep.
type netPoint struct {
	conns, depth int
	batch        bool
}

// netWarmup is the per-point settle time before the measurement window
// opens (see the comment at the sleep site).
const netWarmup = 400 * time.Millisecond

// netMinWindow is the floor on each point's measurement window; see the
// warmup/measure block in runNetPointP.
const netMinWindow = 1500 * time.Millisecond

// netSweep walks both axes under the greedy write batcher: pipelining on
// one connection (1×1 → 1×16), connections at fixed depth (1×16 → 8×16),
// and connections without pipelining (8×1) to separate the two effects.
// The 8×16 corner is the acceptance point: ≥ 4x the 1×1 rate. Two
// batcher-off contrast rows bracket the sweep so the group-commit
// contribution is visible on its own.
var netSweep = []netPoint{
	{1, 1, true}, {1, 8, true}, {1, 16, true}, {2, 16, true},
	{4, 16, true}, {8, 1, true}, {8, 16, true},
	{1, 1, false}, {8, 16, false},
}

// NetBench measures the serving layer end to end over loopback TCP:
// durable PUTs (each ack means the record is flushed and fenced in the
// value log) swept over client connections × per-connection pipeline
// depth. One run per point: fresh store, fresh server, `depth` worker
// goroutines per connection sharing one pipelined client, a fixed
// measurement window, per-op latency into a shared histogram.
//
// The 1×1 point is the classic request/response RPC: one op pays one
// network round trip plus one persist fence, serially. Pipelining overlaps
// the round trips on one connection; more connections overlap server-side
// execution across partitions. Both axes multiply until the store's
// persist bandwidth (or loopback itself) saturates — which is the paper's
// §6 story, surfaced at the network layer: the B+tree is no longer the
// bottleneck, the fabric in front of it is.
//
// The sweep runs with the cross-connection write batcher in greedy mode
// (MaxDelay < 0): a batch takes whatever PUTs have queued behind the
// previous batch's persist and goes, never waiting for company. A solo
// unpipelined client therefore commits in batches of one — the identical
// persist path an individual Put takes — while concurrent clients get
// their fences amortized and their value-log records laid down in
// contiguous runs. The batcher-off contrast rows quantify that effect.
func NetBench(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:    "netbench",
		Title: "network serving throughput (kops/s durable PUTs, loopback) vs connections x pipeline depth",
		Header: []string{
			"conns", "depth", "batch", "kops", "mean_us", "p50_us", "p99_us", "vs-1x1",
		},
	}
	base := -1.0
	barRatio := ""
	for _, pt := range netSweep {
		kops, h, errs := runNetPoint(c, pt)
		if base < 0 {
			base = kops
		}
		onOff := "off"
		if pt.batch {
			onOff = "on"
		}
		ratio := f2(kops / base)
		if pt.conns == 8 && pt.depth == 16 && pt.batch {
			barRatio = ratio
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", pt.conns), fmt.Sprintf("%d", pt.depth), onOff,
			f2(kops),
			fmt.Sprintf("%d", h.Mean().Microseconds()),
			fmt.Sprintf("%d", h.Percentile(50).Microseconds()),
			fmt.Sprintf("%d", h.Percentile(99).Microseconds()),
			ratio,
		})
		if errs > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("harness error: %d failed PUTs at %dx%d", errs, pt.conns, pt.depth))
		}
	}
	res.Notes = append(res.Notes,
		"each PUT carries a 2 KiB value, durably persisted (value-log flush + fence) before its ack frame is sent",
		fmt.Sprintf("latency profile: Optane DCPMM with per-DIMM drain (flush %v/line, fence %v, drain %v/line), %d partition arenas",
			pmem.ProfileOptaneDIMM.FlushPerLine, pmem.ProfileOptaneDIMM.Fence, pmem.ProfileOptaneDIMM.DrainPerLine, netParts),
		"one pipelined client per connection; depth = concurrent callers sharing it (client MaxInflight)",
		"batch=on is the greedy group committer (no added delay: a batch takes only what queued behind the previous persist); a solo unpipelined client commits in batches of one",
		"store geometry: one value-log head per partition (the group-commit design point); vs-1x1 is relative to the batched 1x1 row",
		fmt.Sprintf("each point warms up for %v (fresh-arena page faults, tree growth, pipeline ramp) before its measurement window opens", netWarmup),
	)
	if barRatio != "" {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"8 conns x depth 16 reach %sx the 1-conn unpipelined rate (acceptance bar: >= 4x)", barRatio))
	}
	return []Result{res}
}

// runNetPoint measures one sweep cell and returns throughput (kops/s), the
// latency histogram, and the number of failed ops.
func runNetPoint(c Config, pt netPoint) (float64, *hist.Histogram, uint64) {
	return runNetPointP(c, pt, netParts)
}

// netParts is the sweep's store geometry: one arena (one simulated DIMM)
// per partition, eight partitions — a one-socket AppDirect box. The
// partition count multiplies persist bandwidth (each arena has its own
// drain engine) and is what the per-partition group committers shard
// over. Eight is the measured sweet spot on this host: fewer partitions
// starve the 8×16 corner of drain overlap, while more of them shrink
// each gathered batch, and with it the fence amortization and the number
// of acknowledgements the connection writers can coalesce per syscall.
const netParts = 8

// netValSize is the PUT value size: 2 KiB records make each op pay a
// realistic media cost (~33 lines of flush+drain) so the sweep measures
// persist-stall hiding rather than pure dispatch overhead.
const netValSize = 2048

func runNetPointP(c Config, pt netPoint, parts int) (float64, *hist.Histogram, uint64) {
	st, err := kv.New(kv.Options{
		// 256 MiB per partition bounds the touched image pages; the sweep
		// writes well under that per point even at multi-second windows.
		ArenaSize:  256 << 20,
		ChunkSize:  1 << 20,
		Partitions: parts,
		// One value-log head per partition: with the group committer doing
		// the writing, a batch's records land back-to-back in one chunk and
		// persist as a single contiguous run — the design point the sharded
		// log's Shards knob exists to trade away from when writers contend
		// on the shard locks instead of batching.
		Shards: 1,
		// Optane DCPMM with the per-DIMM drain queue, like forestscale:
		// persists cost wall-clock media occupancy, which is exactly the
		// latency pipelining exists to hide.
		FlushLatency: pmem.ProfileOptaneDIMM,
	})
	if err != nil {
		panic(fmt.Sprintf("netbench: store: %v", err))
	}
	srv := server.New(st, server.Config{
		Batch: server.BatchConfig{Puts: pt.batch, MaxDelay: -1},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("netbench: listen: %v", err))
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	h := &hist.Histogram{}
	var ops, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*client.Client, pt.conns)
	for ci := range clients {
		cl, err := client.Dial(addr, client.Options{MaxInflight: pt.depth})
		if err != nil {
			panic(fmt.Sprintf("netbench: dial: %v", err))
		}
		clients[ci] = cl
	}
	for ci, cl := range clients {
		for wk := 0; wk < pt.depth; wk++ {
			wg.Add(1)
			go func(cl *client.Client, ci, wk int) {
				defer wg.Done()
				// 2 KiB values (a mainstream object-store/page size): each
				// durable PUT occupies the DIMM drain engine for ~33 cache
				// lines, so the unpipelined baseline is dominated by persist
				// stalls — exactly the latency that pipelining and extra
				// connections exist to hide.
				val := make([]byte, netValSize)
				for i := range val {
					val[i] = byte('a' + i%26)
				}
				prefix := fmt.Sprintf("c%d-w%d-", ci, wk)
				for i := uint64(0); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					key := strconv.AppendUint([]byte(prefix), i, 10)
					t0 := time.Now()
					err := cl.Put(key, val)
					h.Record(time.Since(t0))
					if err != nil {
						errs.Add(1)
						return
					}
					ops.Add(1)
				}
			}(cl, ci, wk)
		}
	}

	// Warm up before measuring: the first few hundred milliseconds touch
	// fresh arena pages (page faults on both images), grow the trees, and
	// ramp the worker pipeline — all one-time costs a steady-state server
	// never sees. Reset the counters after, measure from there.
	time.Sleep(netWarmup)
	h.Reset()
	ops.Store(0)
	start := time.Now()
	// Hold each point's window open for at least netMinWindow: GC cycles
	// and kernel page management land unevenly on sub-second windows and
	// swing the measured rate by tens of percent run to run.
	window := c.Duration
	if window < netMinWindow {
		window = netMinWindow
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	for _, cl := range clients {
		cl.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	<-serveDone
	st.Close()

	return float64(ops.Load()) / elapsed.Seconds() / 1e3, h, errs.Load()
}
