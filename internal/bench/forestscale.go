package bench

import (
	"fmt"

	"rntree/internal/core"
	"rntree/internal/forest"
	"rntree/internal/pmem"
	"rntree/internal/ycsb"
)

// forestThreads is the fixed thread count of the forestscale experiment:
// the 8-thread point is where the paper's scalability plots (Figure 8)
// separate designs, and the acceptance bar for partitioning is set there.
const forestThreads = 8

// forestPartitionSweep is the partition-count axis.
var forestPartitionSweep = []int{1, 2, 4, 8}

// ForestScale measures what partitioning buys at fixed parallelism: mixed
// single-key workload (25% each read/update/insert/remove, the §6.2.4 mix),
// 8 threads, Optane-DIMM latencies, throughput as the forest grows from one
// partition (exactly the single-tree configuration: one arena, one HTM
// domain, one fallback lock) to eight.
//
// A single RNTree already scales its compute: HTM keeps non-conflicting
// writers parallel, so under uniform keys the HTM columns stay at zero all
// the way down this table. What a single tree cannot shard is its *device*:
// every persist drains through one arena — one DIMM's write-pending queue —
// and under ProfileOptaneDIMM those drains queue. Hash-partitioning puts
// each partition on its own arena, multiplying persist bandwidth with
// partition count; the throughput column climbing while the HTM conflict
// columns stay flat shows the win is persist-bandwidth sharding, not lock
// splitting. (Skewed workloads add the second effect — per-partition
// fallback locks — on top.)
func ForestScale(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:    "forestscale",
		Title: "forest throughput (Mops/s), 8 threads, mixed workload, Optane latencies, vs partitions",
		Header: []string{
			"partitions", "mops", "vs-1p", "persists", "htm-commits", "htm-conflicts", "htm-fallbacks", "read-retries",
		},
	}
	base := -1.0
	for _, p := range forestPartitionSweep {
		f := newWarmForest(c, p)
		w := ycsb.Workload{Mix: ycsb.MixedQuarter, Chooser: ycsb.Uniform{N: c.Scale}}
		f.ResetStats()
		// Median of three windows: the sweep compares points against each
		// other, so per-point noise on a shared host directly distorts the
		// speedup column.
		mops := median3(func() float64 {
			return runThroughput(f, w, forestThreads, c.Duration, c.Seed, c.Scale)
		})
		if base < 0 {
			base = mops
		}
		st := f.Stats()
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", p), f3(mops), f2(mops / base),
			fmt.Sprintf("%d", st.Persists),
			fmt.Sprintf("%d", st.HTM.Commits),
			fmt.Sprintf("%d", st.HTM.ConflictAborts),
			fmt.Sprintf("%d", st.HTM.Fallbacks),
			fmt.Sprintf("%d", st.ReadRetries),
		})
	}
	res.Notes = append(res.Notes,
		"partitions=1 is the single-tree baseline: same code path, one arena/HTM domain/fallback lock",
		fmt.Sprintf("mixed workload: %d%% read / %d%% update / %d%% insert / %d%% remove, uniform keys over the warm set",
			ycsb.MixedQuarter.Read, ycsb.MixedQuarter.Update, ycsb.MixedQuarter.Insert, ycsb.MixedQuarter.Remove),
		fmt.Sprintf("latency profile: Optane DCPMM with per-DIMM drain (flush %v/line, fence %v, drain %v/line, %d stream/arena)",
			pmem.ProfileOptaneDIMM.FlushPerLine, pmem.ProfileOptaneDIMM.Fence,
			pmem.ProfileOptaneDIMM.DrainPerLine, 1),
		"each partition arena models one DIMM: persists to the same arena queue on its drain engine, persists to different arenas drain in parallel")
	if n := len(res.Rows); n > 0 && base > 0 {
		last := res.Rows[n-1]
		ratio := mustF(last[1]) / base
		note := fmt.Sprintf("%s partitions reach %sx the single-tree throughput at %d threads",
			last[0], f2(ratio), forestThreads)
		if ratio < 1.5 {
			note += " — BELOW the 1.5x acceptance bar"
		}
		res.Notes = append(res.Notes, note)
	}
	return []Result{res}
}

// newWarmForest builds a DualSlot forest with p partitions under Optane
// latencies and pre-loads the warm set.
func newWarmForest(c Config, p int) *forest.Forest {
	f, err := forest.New(forest.Options{
		Partitions: p,
		ArenaSize:  c.Scale*256/uint64(p) + (64 << 20),
		Latency:    pmem.ProfileOptaneDIMM,
		Tree:       core.Options{DualSlot: true},
	})
	if err != nil {
		panic(err)
	}
	if err := Warm(f, KindRNTreeDS, c.Scale); err != nil {
		panic(err)
	}
	return f
}
