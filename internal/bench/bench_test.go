package bench

import (
	"strings"
	"testing"
	"time"

	"rntree/internal/pmem"
	"rntree/internal/ycsb"
)

// quickCfg keeps harness smoke tests fast: tiny scale, short windows, and a
// cheap latency model.
func quickCfg() Config {
	return Config{
		Scale:    4000,
		Duration: 20 * time.Millisecond,
		Threads:  []int{1, 2},
		Latency:  pmem.LatencyModel{FlushPerLine: 50 * time.Nanosecond, Fence: 20 * time.Nanosecond},
		Seed:     1,
	}
}

func TestNewTreeAllKinds(t *testing.T) {
	for _, k := range AllKinds {
		ix, a, err := NewTree(k, quickCfg(), 1000)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if a == nil {
			t.Fatalf("%s: nil arena", k)
		}
		if err := Warm(ix, k, 1000); err != nil {
			t.Fatalf("%s warm: %v", k, err)
		}
		for i := uint64(0); i < 1000; i++ {
			if v, ok := ix.Find(ycsb.KeyAt(i)); !ok || v != i {
				t.Fatalf("%s: warm key %d = (%d,%v)", k, i, v, ok)
			}
		}
	}
}

func TestRunThroughputCounts(t *testing.T) {
	c := quickCfg()
	ix, _, err := NewTree(KindRNTreeDS, c, c.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if err := Warm(ix, KindRNTreeDS, c.Scale); err != nil {
		t.Fatal(err)
	}
	m := runThroughput(ix, ycsb.Workload{Mix: ycsb.A, Chooser: ycsb.Uniform{N: c.Scale}}, 2, c.Duration, 1, c.Scale)
	if m <= 0 {
		t.Fatalf("throughput %f", m)
	}
}

func TestResultFormatting(t *testing.T) {
	r := Result{
		ID:     "x",
		Title:  "t",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n"},
	}
	s := r.String()
	for _, want := range []string{"== x: t ==", "a", "bb", "333", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted result missing %q:\n%s", want, s)
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	for _, id := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
		if Registry[id] == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
	}
}

// Smoke-run each experiment at tiny scale so regressions in the harness are
// caught by go test (the real runs go through cmd/rnbench).
func TestExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	c := quickCfg()
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			results := Registry[id](c)
			if len(results) == 0 {
				t.Fatal("no results")
			}
			for _, r := range results {
				if len(r.Rows) == 0 || len(r.Header) == 0 {
					t.Fatalf("%s: empty result", r.ID)
				}
				for _, row := range r.Rows {
					if len(row) != len(r.Header) {
						t.Fatalf("%s: row width %d != header %d", r.ID, len(row), len(r.Header))
					}
				}
			}
		})
	}
}

func TestResultCSV(t *testing.T) {
	r := Result{ID: "x", Title: "t", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	csv := r.CSV()
	for _, want := range []string{"# x: t", "a,b", "1,2"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("csv missing %q:\n%s", want, csv)
		}
	}
}
