// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a function from a Config to one or
// more Results (tabular series matching the paper's plots); cmd/rnbench and
// the repository-root benchmarks are thin wrappers around this package.
//
// Absolute numbers depend on the simulated-NVM latency model and the host;
// the experiments are designed so the paper's *shapes* — who wins, rough
// factors, where crossovers fall — are reproducible. EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rntree/internal/baseline/cdds"
	"rntree/internal/baseline/fptree"
	"rntree/internal/baseline/nvtree"
	"rntree/internal/baseline/wbtree"
	"rntree/internal/core"
	"rntree/internal/pmem"
	"rntree/internal/tree"
	"rntree/internal/ycsb"
)

// TreeKind names one tree implementation.
type TreeKind string

// The trees of the evaluation (§6) plus the CDDS extension.
const (
	KindRNTree     TreeKind = "rntree"
	KindRNTreeDS   TreeKind = "rntree+ds"
	KindNVTree     TreeKind = "nvtree"
	KindNVTreeCond TreeKind = "nvtree-cond"
	KindWBTree     TreeKind = "wbtree"
	KindWBTreeSO   TreeKind = "wbtree-so"
	KindFPTree     TreeKind = "fptree"
	KindCDDS       TreeKind = "cdds"
)

// AllKinds lists every tree, single- and multi-threaded.
var AllKinds = []TreeKind{
	KindRNTree, KindRNTreeDS, KindNVTree, KindNVTreeCond,
	KindWBTree, KindWBTreeSO, KindFPTree, KindCDDS,
}

// Concurrent reports whether the tree supports multi-threading (Table 1:
// only FPTree and RNTree do).
func Concurrent(k TreeKind) bool {
	switch k {
	case KindRNTree, KindRNTreeDS, KindFPTree:
		return true
	}
	return false
}

// Config parameterises an experiment run.
type Config struct {
	// Scale is the number of warm-up records (the paper uses 16M; the
	// default 200k keeps a full run under a few minutes).
	Scale uint64
	// Duration is the measurement window per data point.
	Duration time.Duration
	// Threads is the thread sweep for the scalability experiments.
	Threads []int
	// Latency is the simulated persistent-instruction cost model.
	Latency pmem.LatencyModel
	// Seed makes runs deterministic.
	Seed int64
	// FaultMaxSites caps the crash sites the faultmatrix experiment
	// replays per target (0 = exhaustive). Site sampling is even across
	// the workload, so a capped run still touches every phase.
	FaultMaxSites int
}

func (c Config) normalized() Config {
	if c.Scale == 0 {
		c.Scale = 200_000
	}
	if c.Duration == 0 {
		c.Duration = 300 * time.Millisecond
	}
	if len(c.Threads) == 0 {
		c.Threads = []int{1, 2, 4, 8, 16, 24}
	}
	if c.Latency == (pmem.LatencyModel{}) {
		c.Latency = pmem.DefaultLatency
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// arenaFor sizes an arena generously for scale records plus churn.
func arenaFor(c Config, scale uint64) *pmem.Arena {
	size := scale*256 + (64 << 20)
	return pmem.New(pmem.Config{Size: size, Latency: c.Latency})
}

// NewTree builds a fresh tree of the given kind.
func NewTree(k TreeKind, c Config, scale uint64) (tree.Index, *pmem.Arena, error) {
	a := arenaFor(c, scale)
	var ix tree.Index
	var err error
	switch k {
	case KindRNTree:
		ix, err = core.New(a, core.Options{})
	case KindRNTreeDS:
		ix, err = core.New(a, core.Options{DualSlot: true})
	case KindNVTree:
		ix, err = nvtree.New(a, nvtree.Options{})
	case KindNVTreeCond:
		ix, err = nvtree.New(a, nvtree.Options{Conditional: true})
	case KindWBTree:
		ix, err = wbtree.New(a, wbtree.Options{})
	case KindWBTreeSO:
		ix, err = wbtree.New(a, wbtree.Options{SlotOnly: true})
	case KindFPTree:
		ix, err = fptree.New(a, fptree.Options{})
	case KindCDDS:
		ix, err = cdds.New(a, cdds.Options{})
	default:
		return nil, nil, fmt.Errorf("bench: unknown tree kind %q", k)
	}
	return ix, a, err
}

// Warm loads scale records (keys ycsb.KeyAt(0..scale-1)), in parallel for
// concurrent trees.
func Warm(ix tree.Index, k TreeKind, scale uint64) error {
	workers := 1
	if Concurrent(k) {
		workers = runtime.GOMAXPROCS(0) * 2
		if workers > 8 {
			workers = 8
		}
	}
	var firstErr atomic.Value
	var wg sync.WaitGroup
	per := (scale + uint64(workers) - 1) / uint64(workers)
	for w := 0; w < workers; w++ {
		lo := uint64(w) * per
		hi := lo + per
		if hi > scale {
			hi = scale
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if err := ix.Upsert(ycsb.KeyAt(i), i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// Result is one regenerated table or figure series.
type Result struct {
	ID     string   // e.g. "fig8b"
	Title  string   // the paper's caption, abbreviated
	Header []string // column names
	Rows   [][]string
	Notes  []string
}

// CSV renders the result as comma-separated values with a header row.
func (r Result) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", r.ID, r.Title)
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the result as an aligned text table.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// opsCounter is a padded per-worker op counter.
type opsCounter struct {
	n atomic.Uint64
	_ [7]uint64
}

// RunThroughput drives threads workers with the workload against ix for the
// given duration and returns million operations per second. Exported for
// the example programs.
func RunThroughput(ix tree.Index, w ycsb.Workload, threads int, d time.Duration, seed int64, scale uint64) float64 {
	return runThroughput(ix, w, threads, d, seed, scale)
}

// runThroughput drives threads workers with the workload against ix for the
// configured duration and returns million operations per second.
func runThroughput(ix tree.Index, w ycsb.Workload, threads int, d time.Duration, seed int64, scale uint64) float64 {
	counters := make([]opsCounter, threads)
	var insertSeq atomic.Uint64
	insertSeq.Store(scale)
	var start, stop sync.WaitGroup
	begin := make(chan struct{})
	start.Add(threads)
	stop.Add(threads)
	deadline := new(atomic.Int64)
	for t := 0; t < threads; t++ {
		go func(t int) {
			defer stop.Done()
			stream := w.Stream(seed + int64(t))
			start.Done()
			<-begin
			ops := uint64(0)
			for {
				if ops&0xff == 0 && time.Now().UnixNano() >= deadline.Load() {
					break
				}
				req := stream()
				execute(ix, req, &insertSeq)
				ops++
			}
			counters[t].n.Store(ops)
		}(t)
	}
	start.Wait()
	t0 := time.Now()
	deadline.Store(t0.Add(d).UnixNano())
	close(begin)
	stop.Wait()
	elapsed := time.Since(t0).Seconds()
	var total uint64
	for i := range counters {
		total += counters[i].n.Load()
	}
	return float64(total) / elapsed / 1e6
}

// execute performs one request. Conditional failures (duplicate insert,
// missing update/remove) still count as executed operations.
func execute(ix tree.Index, req ycsb.Request, insertSeq *atomic.Uint64) {
	switch req.Op {
	case ycsb.OpRead:
		ix.Find(req.Key)
	case ycsb.OpUpdate:
		_ = ix.Update(req.Key, req.Key^0xABCD)
	case ycsb.OpInsert:
		i := insertSeq.Add(1)
		_ = ix.Upsert(ycsb.KeyAt(i), i)
	case ycsb.OpRemove:
		_ = ix.Remove(req.Key)
	case ycsb.OpScan:
		ix.Scan(req.Key, 100, func(_, _ uint64) bool { return true })
	}
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// median3 runs a measurement three times and returns the median, damping
// the run-to-run noise of shared hosts for single-thread data points.
func median3(f func() float64) float64 {
	a, b, c := f(), f(), f()
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Registry maps experiment IDs to runners.
var Registry = map[string]func(Config) []Result{
	"table1":      Table1,
	"fig4":        Fig4,
	"fig5":        Fig5,
	"fig6":        Fig6,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"kvscale":     KVScale,
	"forestscale": ForestScale,
	"heapgrow":    HeapGrow,
	"faultmatrix": FaultMatrix,
	"netbench":    NetBench,
	"netgetbench": NetGetBench,
	"replbench":   ReplBench,
	"objbench":    ObjBench,
}

// ExperimentIDs returns the registered experiment names, sorted.
func ExperimentIDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every experiment.
func RunAll(c Config) []Result {
	var out []Result
	for _, id := range ExperimentIDs() {
		out = append(out, Registry[id](c)...)
	}
	return out
}
