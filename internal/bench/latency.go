package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rntree/internal/hist"
	"rntree/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Figure 9 — operation latency under a rate-limited skewed workload.
// ---------------------------------------------------------------------------

// Fig9 reproduces the latency experiment: 24 workers submit a 50/50
// read/update Zipfian(0.8) workload at a bounded request frequency, and the
// read and update latencies are measured separately per tree. The paper's
// headline: FPTree reads reach ~15µs and updates ~5µs under load; base
// RNTree reads ~6µs but updates stay under 2µs; RNTree+DS reads stay below
// 1µs thanks to the dual slot array.
func Fig9(c Config) []Result {
	c = c.normalized()
	workers := 24
	if max := c.Threads[len(c.Threads)-1]; workers > max {
		workers = max
	}
	res := Result{
		ID:     "fig9",
		Title:  fmt.Sprintf("Latency (us) vs offered load, %d workers, YCSB-A, Zipfian 0.8", workers),
		Header: []string{"tree", "load_kops", "read_mean", "read_p99", "upd_mean", "upd_p99"},
	}
	for _, k := range fig8Kinds {
		h := buildWarm(c, k)
		z := h.zipf(c, 0.8)
		// Find the saturation throughput, then sweep offered load below it.
		sat := runThroughput(h.ix, ycsb.Workload{Mix: ycsb.A, Chooser: z}, workers, c.Duration, c.Seed, c.Scale) * 1e6
		for _, frac := range []float64{0.25, 0.5, 0.75, 0.9} {
			rate := sat * frac
			read, upd := runLatency(h, workers, rate, c, z)
			res.Rows = append(res.Rows, []string{
				string(k),
				fmt.Sprintf("%.0f", rate/1e3),
				f2(us(read.Mean())), f2(us(read.Percentile(99))),
				f2(us(upd.Mean())), f2(us(upd.Percentile(99))),
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper: FPTree read to ~15us / update ~5us; RNTree read ~6us, update <2us; RNTree+DS read <1us",
		fmt.Sprintf("offered load is swept as a fraction of each tree's measured saturation on this host (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)))
	return []Result{res}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// runLatency drives workers at a total target rate (ops/sec) and records
// per-kind latency histograms.
func runLatency(h treeHandle, workers int, rate float64, c Config, z *ycsb.Zipfian) (read, upd *hist.Histogram) {
	read = &hist.Histogram{}
	upd = &hist.Histogram{}
	interval := time.Duration(float64(workers) / rate * float64(time.Second))
	deadline := time.Now().Add(c.Duration * 2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			stream := (ycsb.Workload{Mix: ycsb.A, Chooser: z}).Stream(c.Seed + 1000 + int64(w))
			next := time.Now().Add(time.Duration(w) * interval / time.Duration(workers))
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				if wait := next.Sub(now); wait > 0 {
					if wait > 100*time.Microsecond {
						time.Sleep(wait - 50*time.Microsecond)
					}
					for time.Now().Before(next) {
						runtime.Gosched()
					}
				}
				req := stream()
				t0 := time.Now()
				switch req.Op {
				case ycsb.OpRead:
					h.ix.Find(req.Key)
					read.Record(time.Since(t0))
				default:
					_ = h.ix.Update(req.Key, req.Key)
					upd.Record(time.Since(t0))
				}
				next = next.Add(interval)
				// If we fell behind by many intervals (overload), skip ahead
				// so latency reflects service time plus queueing, not an
				// unbounded backlog artifact.
				if lag := time.Since(next); lag > 10*interval {
					next = time.Now()
				}
			}
		}(w)
	}
	wg.Wait()
	return read, upd
}

// ---------------------------------------------------------------------------
// Figure 10 — sensitivity to skew.
// ---------------------------------------------------------------------------

// Fig10 reproduces the skewness sweep: YCSB-A with 8 threads while the
// Zipfian coefficient rises from 0.5 to 0.99. The paper: FPTree's
// throughput collapses past ~0.7 while RNTree degrades gently, ending up to
// 2.3x faster.
func Fig10(c Config) []Result {
	c = c.normalized()
	threads := 8
	res := Result{
		ID:    "fig10",
		Title: fmt.Sprintf("YCSB-A throughput (Mops/s), %d threads, vs Zipfian coefficient", threads),
		Header: func() []string {
			h := []string{"zipf"}
			for _, k := range fig8Kinds {
				h = append(h, string(k), string(k)+" rtr/kop")
			}
			return h
		}(),
	}
	built := map[TreeKind]treeHandle{}
	for _, k := range fig8Kinds {
		built[k] = buildWarm(c, k)
	}
	for _, theta := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99} {
		row := []string{fmt.Sprintf("%.2f", theta)}
		for _, k := range fig8Kinds {
			z := built[k].zipf(c, theta)
			r0 := readRetriesOf(built[k].ix)
			m := runThroughput(built[k].ix, ycsb.Workload{Mix: ycsb.A, Chooser: z}, threads, c.Duration, c.Seed, c.Scale)
			rtr := float64(readRetriesOf(built[k].ix)-r0) / (m * 1e3 * c.Duration.Seconds())
			row = append(row, f3(m), f2(rtr))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper: FPTree drops sharply past zipf 0.7; RNTree up to 2.3x faster; [0,0.5) omitted (negligible contention)",
		"rtr/kop = wasted read attempts per 1000 ops")
	return []Result{res}
}
