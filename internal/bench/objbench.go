package bench

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rntree/client"
	"rntree/internal/hist"
	"rntree/internal/obj"
	"rntree/internal/pmem"
	"rntree/internal/server"
	"rntree/internal/ycsb"
	"rntree/kv"
)

// objThreads is the fixed client parallelism of the sweep: eight workers,
// each on its own connection — the acceptance point of ISSUE 9 ("composite
// throughput >= 0.5x flat PUT at 8 threads").
const objThreads = 8

// objValSize is the field/value payload: 128 B is the Redis-shaped object
// regime (many small fields), as opposed to netbench's 2 KiB pages.
const objValSize = 128

// objWarmup / objMinWindow mirror netbench's settle-then-measure shape at a
// smaller scale (the phases are cheaper to ramp than the 2 KiB PUT sweep).
const (
	objWarmup    = 200 * time.Millisecond
	objMinWindow = 800 * time.Millisecond
)

// objPhase is one row of the sweep. prep runs per worker before the clock
// starts; op is the measured request (seq increments per worker forever).
type objPhase struct {
	name string
	note string
	prep func(w int, cl *client.Client, val []byte) error
	op   func(w int, seq uint64, cl *client.Client, val []byte) error
}

// objPhases: the flat-PUT baseline first (every later row's ratio divides by
// it), then each typed verb isolated, then the ycsb.ObjComposite mix.
//
// hset is the row the acceptance bar reads: every op targets a fresh field
// (4 fields per object name, seq-advancing), so each one is a full intent
// commit — intent record, field record, header rewrite, intent delete — the
// most persist-expensive path the layer has. hset-over rewrites a fixed
// field, which the layer recognizes as header-neutral and commits as a
// single record, bracketing the intent machinery's cost from above and
// below.
var objPhases = []objPhase{
	{
		name: "put-flat",
		note: "baseline: flat durable PUT, same value size",
		op: func(w int, seq uint64, cl *client.Client, val []byte) error {
			return cl.Put(objKey("p", w, seq), val)
		},
	},
	{
		name: "hset",
		note: "composite: every op creates a field (intent + field + header)",
		op: func(w int, seq uint64, cl *client.Client, val []byte) error {
			return cl.HSet(objKey("o", w, seq/4), objField(seq%4), val)
		},
	},
	{
		name: "hset-over",
		note: "overwrite of an existing field (single-record commit)",
		prep: func(w int, cl *client.Client, val []byte) error {
			for f := uint64(0); f < 8; f++ {
				if err := cl.HSet(objKey("u", w, 0), objField(f), val); err != nil {
					return err
				}
			}
			return nil
		},
		op: func(w int, seq uint64, cl *client.Client, val []byte) error {
			return cl.HSet(objKey("u", w, 0), objField(seq%8), val)
		},
	},
	{
		name: "hget",
		note: "field read through the object layer",
		prep: func(w int, cl *client.Client, val []byte) error {
			for f := uint64(0); f < 8; f++ {
				if err := cl.HSet(objKey("u", w, 0), objField(f), val); err != nil {
					return err
				}
			}
			return nil
		},
		op: func(w int, seq uint64, cl *client.Client, val []byte) error {
			_, err := cl.HGet(objKey("u", w, 0), objField(seq%8))
			return err
		},
	},
	{
		name: "sadd",
		note: "composite: every op adds a member (intent + member + header)",
		op: func(w int, seq uint64, cl *client.Client, val []byte) error {
			return cl.SAdd(objKey("s", w, seq/4), objField(seq%4))
		},
	},
	{
		name: "smembers",
		note: "whole-set listing (8 members)",
		prep: func(w int, cl *client.Client, val []byte) error {
			for f := uint64(0); f < 8; f++ {
				if err := cl.SAdd(objKey("z", w, 0), objField(f)); err != nil {
					return err
				}
			}
			return nil
		},
		op: func(w int, seq uint64, cl *client.Client, val []byte) error {
			_, err := cl.SMembers(objKey("z", w, 0))
			return err
		},
	},
	{
		name: "obj-mix",
		note: "ycsb.ObjComposite mix over 512 objects x 8 fields",
		op:   nil, // driven by a ycsb stream, see runObjPhase
	},
}

func objKey(prefix string, w int, n uint64) []byte {
	k := []byte(prefix)
	k = strconv.AppendInt(k, int64(w), 10)
	k = append(k, '-')
	return strconv.AppendUint(k, n, 10)
}

func objField(f uint64) []byte {
	return strconv.AppendUint([]byte("f"), f, 10)
}

// ObjBench measures the typed-object layer end to end over loopback TCP at
// a fixed 8 worker threads: the flat durable PUT as baseline, each object
// verb isolated, and the ycsb.ObjComposite mix. Every row reports its
// throughput ratio against the flat-PUT row; the acceptance bar is the
// `hset` row (a full intent commit per op) holding >= 0.5x flat PUT — i.e.
// crash-consistent multi-record updates cost at most one flat write's
// worth of extra persists once the group committer amortizes the fences.
func ObjBench(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:     "objbench",
		Title:  "typed-object throughput (kops/s, loopback, 8 threads) vs flat durable PUT",
		Header: []string{"op", "kops", "mean_us", "p50_us", "p99_us", "vs_flat_put"},
	}
	base := -1.0
	barRatio := ""
	for _, ph := range objPhases {
		kops, h, errs := runObjPhase(c, ph)
		if base < 0 {
			base = kops
		}
		ratio := f2(kops / base)
		if ph.name == "hset" {
			barRatio = ratio
		}
		res.Rows = append(res.Rows, []string{
			ph.name, f2(kops),
			fmt.Sprintf("%d", h.Mean().Microseconds()),
			fmt.Sprintf("%d", h.Percentile(50).Microseconds()),
			fmt.Sprintf("%d", h.Percentile(99).Microseconds()),
			ratio,
		})
		res.Notes = append(res.Notes, fmt.Sprintf("%s: %s", ph.name, ph.note))
		if errs > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("harness error: %d failed ops in %s", errs, ph.name))
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d workers, one connection each, %d B values, greedy group committer on, %d partition arenas",
			objThreads, objValSize, netParts),
		fmt.Sprintf("latency profile: Optane DCPMM (flush %v/line, fence %v, drain %v/line)",
			pmem.ProfileOptaneDIMM.FlushPerLine, pmem.ProfileOptaneDIMM.Fence, pmem.ProfileOptaneDIMM.DrainPerLine),
	)
	if barRatio != "" {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"composite hset reaches %sx the flat durable PUT rate (acceptance bar: >= 0.5x)", barRatio))
	}
	return []Result{res}
}

// runObjPhase measures one row: fresh store + object layer + server, 8
// workers each on their own connection, warmup then a fixed window.
func runObjPhase(c Config, ph objPhase) (float64, *hist.Histogram, uint64) {
	st, err := kv.New(kv.Options{
		// 64 MiB per partition: the 128 B-value phases write a few MiB per
		// window even at full rate, and smaller arenas keep the per-phase
		// setup/teardown (zeroing both crash images) cheap.
		ArenaSize:    64 << 20,
		ChunkSize:    1 << 20,
		Partitions:   netParts,
		Shards:       1,
		FlushLatency: pmem.ProfileOptaneDIMM,
	})
	if err != nil {
		panic(fmt.Sprintf("objbench: store: %v", err))
	}
	o, err := obj.Attach(st, obj.Options{})
	if err != nil {
		panic(fmt.Sprintf("objbench: obj: %v", err))
	}
	srv := server.New(st, server.Config{
		Obj:   o,
		Batch: server.BatchConfig{Puts: true, MaxDelay: -1},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("objbench: listen: %v", err))
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	h := &hist.Histogram{}
	var ops, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*client.Client, objThreads)
	for w := range clients {
		cl, err := client.Dial(addr, client.Options{})
		if err != nil {
			panic(fmt.Sprintf("objbench: dial: %v", err))
		}
		clients[w] = cl
	}
	for w, cl := range clients {
		wg.Add(1)
		go func(w int, cl *client.Client) {
			defer wg.Done()
			val := make([]byte, objValSize)
			for i := range val {
				val[i] = byte('a' + i%26)
			}
			if ph.prep != nil {
				if err := ph.prep(w, cl, val); err != nil {
					errs.Add(1)
					return
				}
			}
			op := ph.op
			if op == nil {
				op = objMixOp(c.Seed + int64(w))
			}
			for seq := uint64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				err := op(w, seq, cl, val)
				h.Record(time.Since(t0))
				if err != nil {
					errs.Add(1)
					return
				}
				ops.Add(1)
			}
		}(w, cl)
	}

	time.Sleep(objWarmup)
	h.Reset()
	ops.Store(0)
	start := time.Now()
	window := c.Duration
	if window < objMinWindow {
		window = objMinWindow
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	for _, cl := range clients {
		cl.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	<-serveDone
	o.Close()
	st.Close()

	return float64(ops.Load()) / elapsed.Seconds() / 1e3, h, errs.Load()
}

// objMixOp drives one worker's slice of the ycsb.ObjComposite mix over a
// shared population of 512 hash names and 512 set names with 8 fields each.
// Not-found reads and expire-refreshes on absent names still count as
// executed ops, matching the flat-workload convention in execute().
func objMixOp(seed int64) func(w int, seq uint64, cl *client.Client, val []byte) error {
	stream := ycsb.Workload{
		Mix:     ycsb.ObjComposite,
		Chooser: ycsb.Uniform{N: 512},
		Fields:  8,
	}.Stream(seed)
	return func(w int, seq uint64, cl *client.Client, val []byte) error {
		req := stream()
		name := strconv.AppendUint([]byte("mh"), req.Key%512, 10)
		sname := strconv.AppendUint([]byte("ms"), req.Key%512, 10)
		var err error
		switch req.Op {
		case ycsb.OpHSet:
			err = cl.HSet(name, objField(req.Field), val)
		case ycsb.OpHGet:
			_, err = cl.HGet(name, objField(req.Field))
		case ycsb.OpSAdd:
			err = cl.SAdd(sname, objField(req.Field))
		case ycsb.OpSMembers:
			_, err = cl.SMembers(sname)
		case ycsb.OpExpire:
			err = cl.Expire(name, 60_000)
		}
		if err == client.ErrNotFound {
			err = nil
		}
		return err
	}
}
