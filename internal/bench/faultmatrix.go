package bench

import (
	"fmt"

	"rntree/internal/fault"
)

// FaultMatrix goes beyond the paper's evaluation: instead of measuring
// throughput it mechanically checks the paper's core *correctness* claim —
// durable linearizability after a crash at any point (§5.4) — by running
// the crash-point explorer over every layer target (core tree in both
// slot-array modes, the kv store with compaction, the kv v1-image
// migration, and the typed-object layer's multi-key intent commits and
// expirer reaps). Each persist site the workload executes is crashed under
// pre/evicted/torn image variants and recovery is checked against the
// durability oracle. The row count to watch is `violations`: anything but
// zero is a failure-atomicity bug, replayable from the seed and site index
// in the notes.
func FaultMatrix(c Config) []Result {
	c = c.normalized()
	r := Result{
		ID:     "faultmatrix",
		Title:  "crash-point exploration: every persist site x {pre, evict, torn} vs the durability oracle",
		Header: []string{"target", "ops", "sites", "explored", "images", "violations", "imagehash"},
		Notes: []string{
			fmt.Sprintf("seed=%d maxSites=%d evictProb=0.4 torn=on; oracle: recovered contents == prefix-consistent cut of issued ops",
				c.Seed, c.FaultMaxSites),
		},
	}
	for _, tw := range fault.Targets() {
		rep, err := fault.Explore(tw.Target, tw.Ops, fault.Config{
			Seed:      c.Seed,
			MaxSites:  c.FaultMaxSites,
			EvictProb: 0.4,
			Torn:      true,
		})
		if err != nil {
			r.Rows = append(r.Rows, []string{tw.Target.Name(), fmt.Sprint(len(tw.Ops)), "-", "-", "-", "-", "-"})
			r.Notes = append(r.Notes, fmt.Sprintf("%s: harness error: %v", tw.Target.Name(), err))
			continue
		}
		r.Rows = append(r.Rows, []string{
			rep.Target,
			fmt.Sprint(len(tw.Ops)),
			fmt.Sprint(rep.Sites),
			fmt.Sprint(rep.Explored),
			fmt.Sprint(rep.Images),
			fmt.Sprint(len(rep.Violations)),
			fmt.Sprintf("%#x", rep.ImageHash),
		})
		for i, v := range rep.Violations {
			if i == 3 {
				r.Notes = append(r.Notes, fmt.Sprintf("%s: ... %d more violations", rep.Target, len(rep.Violations)-i))
				break
			}
			r.Notes = append(r.Notes, fmt.Sprintf("%s: VIOLATION %s", rep.Target, v))
		}
	}
	return []Result{r}
}
