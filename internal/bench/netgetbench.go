package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rntree/client"
	"rntree/internal/hist"
	"rntree/internal/pmem"
	"rntree/internal/server"
	"rntree/internal/ycsb"
	"rntree/kv"
)

// netGetPoint is one cell of the GET sweep: a connection/depth shape run
// with the hot-key cache off and then on.
type netGetPoint struct {
	conns, depth int
	cache        bool
}

// netGetSweep pairs each shape with its cache-off contrast row, so the
// cache's p50/p99 contribution is read directly off adjacent rows.
var netGetSweep = []netGetPoint{
	{1, 16, false}, {1, 16, true},
	{4, 16, false}, {4, 16, true},
}

const (
	// netGetKeys is the preloaded key population the zipf chooser ranks
	// over. Even with the ample cache below, zipf-0.8 PUT invalidations
	// keep the hit rate near 90% rather than 100%, so the measured rows
	// are a steady state of hits, invalidations and epoch-guarded
	// re-fills — not a frozen fully-resident corpus.
	netGetKeys = 16384
	// netGetCacheEntries sizes the cache generously (2x the population).
	// Sizing it BELOW the population was measured on this harness and
	// made the cache a net loss: at theta 0.8 a 4096-entry cache misses
	// ~45% of lookups, and every such miss pays an evict + fill (shard
	// lock, map churn, allocation) for an entry that is usually evicted
	// again before it is ever hit. DRAM-side caches in front of NVM only
	// pay off sized to their working set; the sweep measures that
	// configuration, and the notes record the undersized result.
	netGetCacheEntries = 1 << 15
	// netGetValSize keeps GETs cheap enough that the per-request serving
	// overhead (route, tree walk, chain read) the cache removes is a large
	// fraction of each op — the effect under measurement — while PUTs stay
	// a realistic few lines of persist.
	netGetValSize = 512
	// netGetPutPct is the mutation share of the mix: GET-heavy (YCSB-B
	// shape), but with enough PUTs that invalidations and re-fills run
	// continuously and a coherence bug would surface as a throughput or
	// correctness anomaly rather than never executing.
	netGetPutPct = 5
)

// NetGetBench measures the read path of the serving layer end to end:
// zipf-0.8 GETs (95%) with a 5% PUT mix over a preloaded population,
// swept over connection shapes with the DRAM hot-key cache off and on.
// Latency is recorded for GETs only — the cache does not touch the PUT
// path beyond an invalidation — and each on-row reports its p50/p99
// against the off-row of the same shape.
func NetGetBench(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:    "netgetbench",
		Title: "serving-layer GET latency (zipf-0.8, 95/5 GET/PUT, loopback) with the hot-key cache off/on",
		Header: []string{
			"conns", "depth", "cache", "get_kops", "p50_us", "p99_us", "hit_pct", "p50_vs_off", "p99_vs_off",
		},
	}
	var offP50, offP99 time.Duration
	for _, pt := range netGetSweep {
		kops, h, hitPct, errs := runNetGetPoint(c, pt)
		p50 := h.Percentile(50)
		p99 := h.Percentile(99)
		onOff, vs50, vs99 := "off", "", ""
		if pt.cache {
			onOff = "on"
			if p50 > 0 {
				vs50 = f2(float64(offP50) / float64(p50))
			}
			if p99 > 0 {
				vs99 = f2(float64(offP99) / float64(p99))
			}
		} else {
			offP50, offP99 = p50, p99
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", pt.conns), fmt.Sprintf("%d", pt.depth), onOff,
			f2(kops),
			fmt.Sprintf("%d", p50.Microseconds()),
			fmt.Sprintf("%d", p99.Microseconds()),
			f2(hitPct),
			vs50, vs99,
		})
		if errs > 0 {
			res.Notes = append(res.Notes, fmt.Sprintf("harness error: %d failed ops at %dx%d cache=%v", errs, pt.conns, pt.depth, pt.cache))
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%d preloaded keys, %d B values; zipf theta 0.8 over ranks (rank 0 hottest); %d%% of ops are PUTs of the same zipf keys", netGetKeys, netGetValSize, netGetPutPct),
		"media model: Optane DCPMM persist costs plus 300ns/line random-read latency on record reads — the NVM cost an uncached GET pays and a DRAM cache hit skips",
		"latency columns are GET-only; PUTs ride along to keep invalidations and epoch-guarded re-fills continuously exercised",
		fmt.Sprintf("cache geometry: %d entries (2x the population), 16 shards; an undersized cache (4096 entries, ~45%% misses) was measured NET-SLOWER than no cache — each thrashing miss pays an evict+fill that rarely gets hit before eviction", netGetCacheEntries),
		"p50_vs_off / p99_vs_off divide the same shape's cache-off latency by this row's (higher = cache faster)",
		fmt.Sprintf("each point warms up for %v before its measurement window opens; hit_pct includes warmup fills", netWarmup),
	)
	return []Result{res}
}

// runNetGetPoint measures one sweep cell: GET throughput (kops/s), the GET
// latency histogram, the cache hit percentage, and failed ops.
func runNetGetPoint(c Config, pt netGetPoint) (float64, *hist.Histogram, float64, uint64) {
	// Optane persist costs plus the media's random-READ latency: an
	// uncached GET pays ~300ns per record line it pulls off the DIMM,
	// which is precisely the cost a DRAM cache hit skips. (netbench leaves
	// ReadPerLine unset — its PUT workload never chain-reads.)
	lat := pmem.ProfileOptaneDIMM
	lat.ReadPerLine = 300 * time.Nanosecond
	st, err := kv.New(kv.Options{
		ArenaSize:    256 << 20,
		ChunkSize:    1 << 20,
		Partitions:   netParts,
		Shards:       1,
		FlushLatency: lat,
	})
	if err != nil {
		panic(fmt.Sprintf("netgetbench: store: %v", err))
	}
	// Preload the whole population in batches so the measurement window
	// starts from a fully resident store (every GET has a value to find).
	val := make([]byte, netGetValSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	const batch = 64
	for base := 0; base < netGetKeys; base += batch {
		n := batch
		if base+n > netGetKeys {
			n = netGetKeys - base
		}
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := 0; i < n; i++ {
			keys[i] = []byte(netGetKey(uint64(base + i)))
			vals[i] = val
		}
		for i, err := range st.PutBatch(keys, vals) {
			if err != nil {
				panic(fmt.Sprintf("netgetbench: preload %s: %v", keys[i], err))
			}
		}
	}

	srv := server.New(st, server.Config{
		Cache: server.CacheConfig{Enable: pt.cache, MaxEntries: netGetCacheEntries},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("netgetbench: listen: %v", err))
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	h := &hist.Histogram{}
	var gets, errs atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*client.Client, pt.conns)
	for ci := range clients {
		cl, err := client.Dial(addr, client.Options{MaxInflight: pt.depth})
		if err != nil {
			panic(fmt.Sprintf("netgetbench: dial: %v", err))
		}
		clients[ci] = cl
	}
	zipf := ycsb.NewZipfian(netGetKeys, 0.8)
	for ci, cl := range clients {
		for wk := 0; wk < pt.depth; wk++ {
			wg.Add(1)
			go func(cl *client.Client, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					key := []byte(netGetKey(zipf.NextRank(rng)))
					if rng.Intn(100) < netGetPutPct {
						if err := cl.Put(key, val); err != nil {
							errs.Add(1)
							return
						}
						continue
					}
					t0 := time.Now()
					_, err := cl.Get(key)
					h.Record(time.Since(t0))
					if err != nil {
						errs.Add(1)
						return
					}
					gets.Add(1)
				}
			}(cl, c.Seed+int64(ci*pt.depth+wk))
		}
	}

	time.Sleep(netWarmup)
	h.Reset()
	gets.Store(0)
	start := time.Now()
	window := c.Duration
	if window < netMinWindow {
		window = netMinWindow
	}
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	for _, cl := range clients {
		cl.Close()
	}
	hitPct := 0.0
	if sv := srv.Stats(); sv.HasCache && sv.Cache.Hits+sv.Cache.Misses > 0 {
		hitPct = 100 * float64(sv.Cache.Hits) / float64(sv.Cache.Hits+sv.Cache.Misses)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	srv.Shutdown(ctx)
	cancel()
	<-serveDone
	st.Close()

	return float64(gets.Load()) / elapsed.Seconds() / 1e3, h, hitPct, errs.Load()
}

// netGetKey maps a zipf rank to its store key (rank 0 is the hottest).
func netGetKey(rank uint64) string { return fmt.Sprintf("g%06d", rank) }
