package bench

import (
	"fmt"
	"time"

	"rntree/kv"
)

// heapGrow* size the growth workload. The initial arena and each appended
// segment are deliberately small so a short single-threaded Put stream
// crosses many segment-append cutovers; the window is in operations (not
// wall time) so every run slices the stream at the same points and the
// growth windows land deterministically.
const (
	heapGrowSeg0     = 2 << 20 // initial partition arena
	heapGrowSegSize  = 1 << 20 // appended segment size
	heapGrowMaxSegs  = 64
	heapGrowChunk    = 1 << 16 // value-log chunk (one heap alloc each)
	heapGrowValSize  = 256
	heapGrowWindowOp = 1500
	heapGrowWindows  = 24
)

// HeapGrow measures what a segment append costs the writers that trigger
// it: a single-threaded Put stream on a heap-formatted store whose arena
// starts small, sliced into fixed-size windows. Windows during which the
// heap appended at least one segment are compared against the steady
// windows; the acceptance bar is the growth windows holding at least 80%
// of steady-state throughput (growth is a bounded metadata operation —
// undo-logged header writes plus a table flip — not a stop-the-world
// copy).
func HeapGrow(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID: "heapgrow",
		Title: fmt.Sprintf("kv Put throughput across heap segment appends (%d-op windows, %dB values)",
			heapGrowWindowOp, heapGrowValSize),
		Header: []string{"window", "kops", "segments", "grew"},
	}
	s, err := kv.New(kv.Options{
		ArenaSize:    heapGrowSeg0,
		GrowSize:     heapGrowSegSize,
		MaxSegments:  heapGrowMaxSegs,
		ChunkSize:    heapGrowChunk,
		Shards:       1,
		FlushLatency: c.Latency,
	})
	if err != nil {
		panic(err)
	}
	arena := s.Arenas()[0]
	val := make([]byte, heapGrowValSize)
	key := make([]byte, 0, 32)
	var steady, growth []float64
	seq := uint64(0)
	for w := 0; w < heapGrowWindows; w++ {
		segsBefore := arena.Segments()
		t0 := time.Now()
		for i := 0; i < heapGrowWindowOp; i++ {
			key = append(key[:0], "hg-"...)
			for sh := 56; sh >= 0; sh -= 8 {
				key = append(key, byte(seq>>uint(sh)))
			}
			seq++
			for j := range val {
				val[j] = byte(seq + uint64(j))
			}
			if err := s.Put(key, val); err != nil {
				panic(fmt.Sprintf("heapgrow: put %d: %v", seq, err))
			}
		}
		kops := float64(heapGrowWindowOp) / time.Since(t0).Seconds() / 1e3
		grew := arena.Segments() - segsBefore
		if grew > 0 {
			growth = append(growth, kops)
		} else {
			steady = append(steady, kops)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", w), f1(kops),
			fmt.Sprintf("%d", arena.Segments()),
			fmt.Sprintf("%d", grew),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("heap geometry: %d MiB initial arena, %d MiB per appended segment, %d B value-log chunks",
			heapGrowSeg0>>20, heapGrowSegSize>>20, heapGrowChunk),
		fmt.Sprintf("%d steady windows, %d windows containing >=1 segment append (final heap: %d segments)",
			len(steady), len(growth), arena.Segments()))
	if len(steady) > 0 && len(growth) > 0 {
		sm, gm := medianF(steady), medianF(growth)
		ratio := gm / sm
		note := fmt.Sprintf("growth-window throughput is %sx steady-state (median %s vs %s kops)",
			f2(ratio), f1(gm), f1(sm))
		if ratio < 0.8 {
			note += " — BELOW the 80% acceptance bar"
		}
		res.Notes = append(res.Notes, note)
	} else {
		res.Notes = append(res.Notes,
			"workload never grew the heap (or never ran steady) — ratio not computable; enlarge the window count")
	}
	return []Result{res}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// medianF returns the median of a non-empty sample without mutating it.
func medianF(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
