package bench

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rntree/client"
	"rntree/internal/fault"
	"rntree/internal/hist"
	"rntree/internal/pmem"
	"rntree/internal/repl"
	"rntree/internal/server"
	"rntree/kv"
)

// replParts keeps the pair small: the ship stream serialises per
// subscriber anyway, so extra partitions only add fence lanes the single
// applier connection cannot use.
const replParts = 4

// replValSize matches netbench's 2 KiB PUT payload so the async row is
// directly comparable to the unreplicated netbench sweep.
const replValSize = 2048

// replFailoverWrites is the acked-durable write count the failover phase
// seeds before killing the primary; every one of them must be served by
// the promoted replica.
const replFailoverWrites = 200

// ReplBench measures the replication tentpole end to end: a primary and a
// replica server on loopback with the replica's applier subscribed over
// the same wire protocol clients use.
//
// Three phases:
//
//   - Throughput: pipelined PUTs in async mode (ack after the local
//     commit; the ship stream trails) vs wait-for-replica-durable mode
//     (the ack is held until the replica's cumulative ack covers the
//     record's LSN). The gap prices the durability upgrade: async costs
//     nothing over an unreplicated server, durable pays one ship+ack
//     round trip amortised over the ack batch.
//   - Failover: kill the primary mid-session and time how long the
//     failover client takes to elect + promote the replica and land its
//     next write; every previously acked durable write must be served by
//     the new primary.
//   - Crash matrix: the two-node fault explorer (primary killed at each
//     of its persist sites, replica killed mid-apply, a crash inside the
//     promotion cutover) — the `violations` column is the acceptance
//     gate and anything nonzero fails the rnbench run.
func ReplBench(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:     "replbench",
		Title:  "primary/replica replication: async vs replica-durable PUTs, failover time, crash matrix",
		Header: []string{"phase", "kops", "p50_us", "p99_us", "sites", "violations", "detail"},
	}

	for _, durable := range []bool{false, true} {
		name := "put-async"
		detail := "ack after local commit; ship stream trails and healed to zero lag at drain"
		if durable {
			name = "put-durable"
			detail = "ack held for the replica's cumulative ack to cover the record's LSN"
		}
		kops, h, err := runReplWindow(c, durable)
		if err != nil {
			res.Rows = append(res.Rows, []string{name, "-", "-", "-", "-", "-", "-"})
			res.Notes = append(res.Notes, fmt.Sprintf("harness error: %s: %v", name, err))
			continue
		}
		res.Rows = append(res.Rows, []string{
			name, f2(kops),
			fmt.Sprint(h.Percentile(50).Microseconds()),
			fmt.Sprint(h.Percentile(99).Microseconds()),
			"-", "-", detail,
		})
	}

	if ms, survived, err := runReplFailover(c); err != nil {
		res.Rows = append(res.Rows, []string{"failover", "-", "-", "-", "-", "-", "-"})
		res.Notes = append(res.Notes, fmt.Sprintf("harness error: failover: %v", err))
	} else {
		lost := replFailoverWrites - survived
		// The failover row's latency columns hold its one sample: the
		// kill-to-first-successful-write time.
		res.Rows = append(res.Rows, []string{
			"failover", "-",
			fmt.Sprint(int64(ms * 1e3)), fmt.Sprint(int64(ms * 1e3)),
			"-", fmt.Sprint(lost),
			fmt.Sprintf("primary killed; client elected+promoted the replica and landed a write in %.1fms; %d/%d acked durable writes survived",
				ms, survived, replFailoverWrites),
		})
		if lost != 0 {
			res.Notes = append(res.Notes, fmt.Sprintf(
				"failover: VIOLATION: %d acked durable writes lost across promotion", lost))
		}
	}

	reps, err := fault.ExploreFailover(fault.KVWorkload(), fault.Config{
		Seed:      c.Seed,
		MaxSites:  c.FaultMaxSites,
		EvictProb: 0.4,
		Torn:      true,
	})
	if err != nil {
		res.Notes = append(res.Notes, fmt.Sprintf("harness error: crash matrix: %v", err))
	}
	for _, rep := range reps {
		res.Rows = append(res.Rows, []string{
			"crash/" + rep.Target, "-", "-", "-",
			fmt.Sprint(rep.Sites), fmt.Sprint(len(rep.Violations)),
			fmt.Sprintf("%d explored, %d images, hash %#x", rep.Explored, rep.Images, rep.ImageHash),
		})
		for i, v := range rep.Violations {
			if i == 3 {
				res.Notes = append(res.Notes, fmt.Sprintf("%s: ... %d more violations", rep.Target, len(rep.Violations)-i))
				break
			}
			res.Notes = append(res.Notes, fmt.Sprintf("%s: VIOLATION %s", rep.Target, v))
		}
	}

	res.Notes = append(res.Notes,
		fmt.Sprintf("pair: %d partitions per node, %d KiB values, applier acks every 8 records or 1ms", replParts, replValSize/1024),
		"throughput phases: 2 connections x depth 8 against the primary; the replica applies the shipped stream live",
		"the machine-wide two-node crash target (both nodes' arenas) runs in faultmatrix as kv/repl-pair",
		fmt.Sprintf("crash matrix: seed=%d evictProb=0.4 torn=on; oracle: survivor holds every acked write, dead node recovers to a prefix-consistent cut", c.Seed),
	)
	return []Result{res}
}

// replPairHarness is one live primary+replica deployment on loopback.
type replPairHarness struct {
	pst, rst     *kv.Store
	pNode, rNode *repl.Node
	psrv, rsrv   *server.Server
	pDone, rDone chan error
	applierDone  chan error
	pAddr, rAddr string
	stopOnce     sync.Once
}

func replBenchOpts(c Config) kv.Options {
	return kv.Options{
		ArenaSize:    128 << 20,
		ChunkSize:    1 << 20,
		Partitions:   replParts,
		Shards:       1,
		FlushLatency: pmem.ProfileOptaneDIMM,
	}
}

func startReplHarness(c Config, pcfg, rcfg server.Config) (*replPairHarness, error) {
	h := &replPairHarness{
		pDone:       make(chan error, 1),
		rDone:       make(chan error, 1),
		applierDone: make(chan error, 1),
	}
	var err error
	if h.pst, err = kv.New(replBenchOpts(c)); err != nil {
		return nil, err
	}
	if h.pNode, err = repl.NewNode(h.pst, repl.Primary); err != nil {
		return nil, err
	}
	pcfg.Repl = h.pNode
	h.psrv = server.New(h.pst, pcfg)
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h.pAddr = pln.Addr().String()
	go func() { h.pDone <- h.psrv.Serve(pln) }()

	if h.rst, err = kv.New(replBenchOpts(c)); err != nil {
		return nil, err
	}
	if h.rNode, err = repl.NewNode(h.rst, repl.Replica); err != nil {
		return nil, err
	}
	rcfg.Repl = h.rNode
	h.rsrv = server.New(h.rst, rcfg)
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	h.rAddr = rln.Addr().String()
	go func() { h.rDone <- h.rsrv.Serve(rln) }()

	go func() {
		h.applierDone <- h.rNode.RunApplier(repl.ApplierConfig{
			Addr:        h.pAddr,
			AckEvery:    8,
			AckInterval: time.Millisecond,
		})
	}()
	return h, nil
}

// stop drains both servers (the primary's drain flushes the ship stream)
// and waits for the applier to exit. Idempotent: runReplWindow stops
// explicitly to check convergence but also defers it for error paths.
func (h *replPairHarness) stop() {
	h.stopOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		h.psrv.Shutdown(ctx)
		<-h.pDone
		h.rsrv.Shutdown(ctx)
		<-h.rDone
		h.rNode.Close()
		h.pNode.Close()
		select {
		case <-h.applierDone:
		case <-time.After(5 * time.Second):
		}
		h.rst.Close()
		h.pst.Close()
	})
}

// runReplWindow measures replicated PUT throughput for one ack mode.
func runReplWindow(c Config, durable bool) (float64, *hist.Histogram, error) {
	h, err := startReplHarness(c, server.Config{
		Batch: server.BatchConfig{Puts: true, MaxDelay: -1},
	}, server.Config{})
	if err != nil {
		return 0, nil, err
	}
	defer h.stop()

	const conns, depth = 2, 8
	lat := &hist.Histogram{}
	var ops, errs atomic.Uint64
	stopc := make(chan struct{})
	var wg sync.WaitGroup
	clients := make([]*client.Client, conns)
	for ci := range clients {
		cl, err := client.Dial(h.pAddr, client.Options{MaxInflight: depth})
		if err != nil {
			return 0, nil, err
		}
		clients[ci] = cl
	}
	for ci, cl := range clients {
		for wk := 0; wk < depth; wk++ {
			wg.Add(1)
			go func(cl *client.Client, ci, wk int) {
				defer wg.Done()
				val := make([]byte, replValSize)
				for i := range val {
					val[i] = byte('a' + i%26)
				}
				prefix := fmt.Sprintf("c%d-w%d-", ci, wk)
				for i := uint64(0); ; i++ {
					select {
					case <-stopc:
						return
					default:
					}
					key := strconv.AppendUint([]byte(prefix), i, 10)
					t0 := time.Now()
					var err error
					if durable {
						err = cl.PutDurable(key, val)
					} else {
						err = cl.Put(key, val)
					}
					lat.Record(time.Since(t0))
					if err != nil {
						errs.Add(1)
						return
					}
					ops.Add(1)
				}
			}(cl, ci, wk)
		}
	}

	// Same warmup rationale as netbench: fresh-arena faults, tree growth,
	// and (here) the applier's catch-up pass are one-time costs.
	time.Sleep(netWarmup)
	lat.Reset()
	ops.Store(0)
	start := time.Now()
	window := c.Duration
	if window < netMinWindow {
		window = netMinWindow
	}
	time.Sleep(window)
	close(stopc)
	wg.Wait()
	elapsed := time.Since(start)
	for _, cl := range clients {
		cl.Close()
	}
	if n := errs.Load(); n > 0 {
		return 0, nil, fmt.Errorf("%d failed PUTs", n)
	}

	// The drain in stop() flushes the ship stream; verify the replica
	// really caught up so the async number isn't hiding an unbounded lag.
	h.stop()
	for part := 0; part < h.pst.Partitions(); part++ {
		if h.rst.ReplLSN(part) != h.pst.ReplLSN(part) {
			return 0, nil, fmt.Errorf("partition %d: replica watermark %d, primary %d after drain",
				part, h.rst.ReplLSN(part), h.pst.ReplLSN(part))
		}
	}
	return float64(ops.Load()) / elapsed.Seconds() / 1e3, lat, nil
}

// runReplFailover seeds acked durable writes, kills the primary, and times
// the failover client's election + promotion + first successful write.
// Returns the recovery wall time in milliseconds and how many of the acked
// writes the promoted replica serves.
func runReplFailover(c Config) (float64, int, error) {
	h, err := startReplHarness(c, server.Config{}, server.Config{})
	if err != nil {
		return 0, 0, err
	}
	primaryDead := false
	defer func() {
		if !primaryDead {
			h.stop()
			return
		}
		// The primary is already down; drain only the surviving node.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		h.rsrv.Shutdown(ctx)
		cancel()
		<-h.rDone
		h.rNode.Close()
		select {
		case <-h.applierDone:
		case <-time.After(5 * time.Second):
		}
		h.rst.Close()
		h.pst.Close()
	}()

	fo, err := client.DialFailover([]string{h.pAddr, h.rAddr}, client.Options{
		DialTimeout: 200 * time.Millisecond,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		return 0, 0, err
	}
	defer fo.Close()

	for i := 0; i < replFailoverWrites; i++ {
		if err := fo.PutDurable([]byte(fmt.Sprintf("d%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			return 0, 0, fmt.Errorf("seed PutDurable %d: %v", i, err)
		}
	}

	// Kill the primary. Its node is closed too, as a crashed process would
	// drop the ship stream.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	h.psrv.Shutdown(ctx)
	cancel()
	<-h.pDone
	h.pNode.Close()
	primaryDead = true

	t0 := time.Now()
	if err := fo.Put([]byte("post-failover"), []byte("ok")); err != nil {
		return 0, 0, fmt.Errorf("write after primary death: %v", err)
	}
	ms := float64(time.Since(t0).Microseconds()) / 1e3

	survived := 0
	for i := 0; i < replFailoverWrites; i++ {
		v, err := fo.Get([]byte(fmt.Sprintf("d%04d", i)))
		if err == nil && string(v) == fmt.Sprintf("v%d", i) {
			survived++
		}
	}
	return ms, survived, nil
}
