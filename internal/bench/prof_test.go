package bench

import (
	"testing"
	"time"

	"rntree/internal/pmem"
	"rntree/internal/ycsb"
)

func benchTree(b *testing.B, k TreeKind, mix ycsb.Mix, lat pmem.LatencyModel) {
	c := Config{Scale: 100_000, Duration: time.Second, Latency: lat, Seed: 1, Threads: []int{1}}
	ix, _, err := NewTree(k, c, c.Scale)
	if err != nil {
		b.Fatal(err)
	}
	if err := Warm(ix, k, c.Scale); err != nil {
		b.Fatal(err)
	}
	stream := (ycsb.Workload{Mix: mix, Chooser: ycsb.Uniform{N: c.Scale}}).Stream(1)
	var seq = c.Scale
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := stream()
		switch req.Op {
		case ycsb.OpRead:
			ix.Find(req.Key)
		case ycsb.OpUpdate:
			_ = ix.Update(req.Key, 1)
		default:
			seq++
			_ = ix.Upsert(ycsb.KeyAt(seq), 1)
		}
	}
}

func BenchmarkProfFindRN(b *testing.B) { benchTree(b, KindRNTree, ycsb.C, pmem.LatencyModel{}) }
func BenchmarkProfFindFP(b *testing.B) { benchTree(b, KindFPTree, ycsb.C, pmem.LatencyModel{}) }
func BenchmarkProfUpdRN(b *testing.B) {
	benchTree(b, KindRNTree, ycsb.Mix{Update: 100}, pmem.LatencyModel{})
}
func BenchmarkProfUpdFP(b *testing.B) {
	benchTree(b, KindFPTree, ycsb.Mix{Update: 100}, pmem.LatencyModel{})
}
