package bench

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rntree/kv"
)

// KVScale is the kv-layer analogue of Figure 8: a thread sweep of Put
// throughput on the byte-string store, comparing the sharded value log
// (every shard has its own persisted chunk chain, append cursor and lock)
// against a single-shard configuration — which is exactly the old design,
// one global writer lock held across every record persist.
//
// The paper's §3.4 point transfers one layer up: as long as slow persists
// happen under one lock, adding writers cannot add throughput; sharding
// the log lets the persist stalls of independent writers overlap.
func KVScale(c Config) []Result {
	c = c.normalized()
	res := Result{
		ID:     "kvscale",
		Title:  "kv store Put throughput (Mops/s) vs threads: sharded value log vs single writer log",
		Header: []string{"threads", "sharded", "single-log", "sharded/single"},
	}
	base := -1.0
	for _, th := range c.Threads {
		sharded := kvPutThroughput(c, 0, th) // 0 = default shard count
		single := kvPutThroughput(c, 1, th)
		if base < 0 {
			base = sharded
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", th), f3(sharded), f3(single), f2(sharded / single),
		})
	}
	res.Notes = append(res.Notes,
		"single-log = Shards:1, the pre-sharding design: one mutex held across record persists serializes all writers",
		"sharded Put overlaps the record persist of one writer with every other shard's work; the RNTree index is already concurrent via HTM slot updates")
	if len(res.Rows) > 0 && base > 0 {
		last := res.Rows[len(res.Rows)-1]
		res.Notes = append(res.Notes, fmt.Sprintf(
			"sharded scaling: %s threads reach %sx the single-thread sharded throughput", last[0],
			f2(mustF(last[1])/base)))
	}
	return []Result{res}
}

func mustF(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// kvPutThroughput drives threads writers inserting distinct keys for the
// configured duration and returns Mops/s. shards==0 uses the store's
// default sharding.
func kvPutThroughput(c Config, shards, threads int) float64 {
	s, err := kv.New(kv.Options{
		ArenaSize:    256 << 20,
		ChunkSize:    1 << 20,
		Shards:       shards,
		FlushLatency: c.Latency,
	})
	if err != nil {
		panic(err)
	}
	val := make([]byte, 256)
	counters := make([]opsCounter, threads)
	var start, stop sync.WaitGroup
	begin := make(chan struct{})
	start.Add(threads)
	stop.Add(threads)
	deadline := new(atomic.Int64)
	for t := 0; t < threads; t++ {
		go func(t int) {
			defer stop.Done()
			prefix := fmt.Sprintf("t%02d-", t)
			key := make([]byte, 0, 32)
			start.Done()
			<-begin
			ops := uint64(0)
			for {
				if ops&0x3f == 0 && time.Now().UnixNano() >= deadline.Load() {
					break
				}
				key = strconv.AppendUint(append(key[:0], prefix...), ops, 10)
				if err := s.Put(key, val); err != nil {
					break // arena exhausted; count what completed
				}
				ops++
			}
			counters[t].n.Store(ops)
		}(t)
	}
	start.Wait()
	t0 := time.Now()
	deadline.Store(t0.Add(c.Duration).UnixNano())
	close(begin)
	stop.Wait()
	elapsed := time.Since(t0).Seconds()
	var total uint64
	for i := range counters {
		total += counters[i].n.Load()
	}
	return float64(total) / elapsed / 1e6
}
