package server

import (
	"errors"
	"time"

	"rntree/internal/repl"
	"rntree/internal/wire"
	"rntree/kv"
)

// Replication serving (DESIGN.md §13). A replica's applier connects like
// any client and speaks three verbs: REPL.HELLO (role/epoch handshake),
// REPL.SUBSCRIBE (start the stream from per-partition LSN watermarks), and
// REPL.ACK (durable watermark vectors, no response). Once subscribed, the
// connection becomes a ship stream: records ride the ordinary writer
// goroutine as unsolicited OpReplRecord responses whose IDs are a ship
// sequence, interleaving with nothing (a subscribed connection carries no
// other traffic). Acks are intercepted in the read loop and never enter the
// dispatch pipeline — they carry no response and must not consume inflight
// tokens that could deadlock a drain.

// shipHighWater bounds the ship stream's write-buffer growth when the
// replica's TCP stalls: past it the subscriber's Run goroutine waits for
// the writer to drain instead of queueing more frames.
const shipHighWater = 4 << 20

var errShipConnDead = errors.New("server: replication connection dead")

// handleReplHello reports this node's role, epoch and LSN vector.
func (cn *conn) handleReplHello(req wire.Request, resp *wire.Response) {
	node := cn.s.repl
	if node == nil {
		resp.Status = wire.StatusNoRepl
		return
	}
	resp.Status = wire.StatusOK
	resp.ReplRole = node.Role()
	resp.ReplEpoch = node.Epoch()
	resp.ReplLSNs = cn.s.st.ReplLSNs()
}

// handleReplSubscribe registers this connection as a replica subscriber and
// returns the subscriber to start (the caller responds first, so the OK
// frame precedes every shipped record on the wire).
func (cn *conn) handleReplSubscribe(req wire.Request, resp *wire.Response) *repl.Subscriber {
	node := cn.s.repl
	if node == nil {
		resp.Status = wire.StatusNoRepl
		return nil
	}
	if node.Role() != repl.Primary {
		resp.Status, resp.Msg = wire.StatusErr, "server: not a primary"
		return nil
	}
	cn.s.mu.Lock()
	draining := cn.s.draining
	cn.s.mu.Unlock()
	if draining {
		resp.Status = wire.StatusClosing
		return nil
	}
	cn.subMu.Lock()
	defer cn.subMu.Unlock()
	if cn.sub.Load() != nil {
		resp.Status, resp.Msg = wire.StatusErr, "server: already subscribed"
		return nil
	}
	sub, err := node.Subscribe(req.ReplLSNs, cn.sendRecord)
	if err != nil {
		resp.Status, resp.Msg = wire.StatusErr, err.Error()
		return nil
	}
	cn.sub.Store(sub)
	resp.Status = wire.StatusOK
	return sub
}

// handlePromote promotes this node to primary at an epoch superseding the
// client's last known one. Valid on any role (retrying a promote against
// the node that already won is idempotent).
func (cn *conn) handlePromote(req wire.Request, resp *wire.Response) {
	node := cn.s.repl
	if node == nil {
		resp.Status = wire.StatusNoRepl
		return
	}
	epoch, err := node.Promote(req.ReplEpoch)
	if err != nil {
		resp.Status, resp.Msg = wire.StatusErr, err.Error()
		return
	}
	resp.Status = wire.StatusOK
	resp.ReplRole = node.Role()
	resp.ReplEpoch = epoch
}

// handleDurablePut is the wait-for-replica-durable PUT: commit locally,
// then hold the ack until a replica has persisted the record. On timeout
// the write IS committed locally — the error tells the client replication
// lag, not data loss, exactly like an acks=all produce timeout.
func (cn *conn) handleDurablePut(req wire.Request, resp *wire.Response) {
	part, lsn, err := cn.s.st.PutEx(req.Key, req.Val)
	if c := cn.s.cache; c != nil {
		c.Invalidate(req.Key)
	}
	switch err {
	case nil:
	case kv.ErrClosed:
		resp.Status = wire.StatusClosing
		return
	default:
		resp.Status, resp.Msg = wire.StatusErr, err.Error()
		return
	}
	cn.s.replWaits.Add(1)
	if err := cn.s.repl.WaitDurable(part, lsn, cn.s.cfg.ReplDurableTimeout); err != nil {
		cn.s.replWaitFails.Add(1)
		resp.Status, resp.Msg = wire.StatusErr, err.Error()
		return
	}
	resp.Status = wire.StatusOK
}

// readOnly reports whether replication currently forbids local mutations:
// replica role, or a fenced primary — one whose replicas have all been gone
// longer than Config.ReplFenceLease, where an async ack could be stranded
// by a concurrent client-driven promotion. Fence rejections are counted
// (repl_fence_rejects) as the operator's alarm signal.
func (s *Server) readOnly() bool {
	node := s.repl
	if node == nil {
		return false
	}
	if node.Role() != repl.Primary {
		return true
	}
	if node.Fenced() {
		s.fenceRejects.Add(1)
		return true
	}
	return false
}

// batchablePut reports whether a PUT may take the batcher path: durable-ack
// PUTs must hold their own ack until the replica's watermark covers their
// LSN (handle's job), and a non-primary or fenced node rejects writes in
// handle instead of batching them.
func (cn *conn) batchablePut(req wire.Request) bool {
	node := cn.s.repl
	if node == nil {
		return true
	}
	return !req.Durable && node.Role() == repl.Primary && !node.Fenced()
}

// sendRecord is the subscriber's transport: encode one record as an
// unsolicited OpReplRecord response and queue it on the writer. It runs on
// the subscriber's Run goroutine, so blocking here (the high-water wait) is
// the stream's backpressure, not anyone else's.
func (cn *conn) sendRecord(rec repl.Record) error {
	for {
		if cn.deadF.Load() {
			return errShipConnDead
		}
		cn.wMu.Lock()
		over := len(cn.wBuf) > shipHighWater
		cn.wMu.Unlock()
		if !over {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cn.shipSeq++
	frame, err := wire.AppendResponse(nil, wire.Response{
		ID:       cn.shipSeq,
		Status:   wire.StatusOK,
		Op:       wire.OpReplRecord,
		ReplPart: uint32(rec.Part),
		ReplLSN:  rec.LSN,
		ReplKind: rec.Kind,
		Key:      rec.Key,
		Val:      rec.Val,
	})
	if err != nil {
		return err
	}
	cn.send(frame)
	if cn.deadF.Load() {
		return errShipConnDead
	}
	return nil
}
