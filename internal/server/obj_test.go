package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rntree/client"
	"rntree/internal/obj"
	"rntree/internal/repl"
	"rntree/kv"
)

// startObjServer is startServer with a typed-object layer attached to the
// store (primary mode, no background expirer — tests tick by hand through
// the clock they control).
func startObjServer(t *testing.T, scfg Config, clock func() int64) (*obj.Store, *kv.Store, string) {
	t.Helper()
	st, err := kv.New(kv.Options{ArenaSize: 32 << 20, ChunkSize: 1 << 14, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	o, err := obj.Attach(st, obj.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	scfg.Obj = o
	_, _, addr := startServerOn(t, scfg, st)
	return o, st, addr
}

// TestServerObjOps drives every typed verb end-to-end through the client,
// plus the flat-path interactions: reserved-namespace rejection, the GET
// expiry mask, SCAN hiding internal records, and the obj counters in STATS.
func TestServerObjOps(t *testing.T) {
	var now atomic.Int64
	now.Store(1_000_000)
	o, _, addr := startObjServer(t, Config{Cache: CacheConfig{Enable: true}}, now.Load)
	c := dial(t, addr, client.Options{})

	// Hash verbs.
	if err := c.HSet([]byte("user:1"), []byte("name"), []byte("ada")); err != nil {
		t.Fatalf("HSet: %v", err)
	}
	if err := c.HSet([]byte("user:1"), []byte("lang"), []byte("go")); err != nil {
		t.Fatalf("HSet: %v", err)
	}
	if v, err := c.HGet([]byte("user:1"), []byte("name")); err != nil || string(v) != "ada" {
		t.Fatalf("HGet = %q, %v", v, err)
	}
	if _, err := c.HGet([]byte("user:1"), []byte("absent")); err != client.ErrNotFound {
		t.Fatalf("absent HGet: %v", err)
	}
	if err := c.HDel([]byte("user:1"), []byte("lang")); err != nil {
		t.Fatalf("HDel: %v", err)
	}
	if err := c.HDel([]byte("user:1"), []byte("lang")); err != client.ErrNotFound {
		t.Fatalf("double HDel: %v", err)
	}

	// Set verbs.
	for _, m := range []string{"a", "b", "c"} {
		if err := c.SAdd([]byte("tags"), []byte(m)); err != nil {
			t.Fatalf("SAdd %s: %v", m, err)
		}
	}
	if err := c.SRem([]byte("tags"), []byte("b")); err != nil {
		t.Fatalf("SRem: %v", err)
	}
	members, err := c.SMembers([]byte("tags"))
	if err != nil || len(members) != 2 {
		t.Fatalf("SMembers = %v, %v", members, err)
	}
	// Type confusion is a clean error, not corruption.
	if err := c.SAdd([]byte("user:1"), []byte("x")); err == nil || !strings.Contains(err.Error(), "wrong kind") {
		t.Fatalf("SAdd on a hash: %v", err)
	}

	// TTL verbs, over a flat key and an object.
	if err := c.Put([]byte("flat"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Expire([]byte("flat"), 5_000); err != nil {
		t.Fatalf("Expire: %v", err)
	}
	if ttl, err := c.TTL([]byte("flat")); err != nil || ttl <= 0 || ttl > 5_000 {
		t.Fatalf("TTL = %d, %v", ttl, err)
	}
	if ttl, err := c.TTL([]byte("tags")); err != nil || ttl != -1 {
		t.Fatalf("TTL of persistent key = %d, %v", ttl, err)
	}
	if _, err := c.TTL([]byte("nope")); err != client.ErrNotFound {
		t.Fatalf("TTL of absent key: %v", err)
	}
	if err := c.Expire([]byte("user:1"), 5_000); err != nil {
		t.Fatalf("Expire object: %v", err)
	}
	if err := c.Persist([]byte("user:1")); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if ttl, err := c.TTL([]byte("user:1")); err != nil || ttl != -1 {
		t.Fatalf("TTL after Persist = %d, %v", ttl, err)
	}

	// The flat GET path masks a lapsed-but-unreaped key — including one
	// already resident in the hot-key cache.
	if v, err := c.Get([]byte("flat")); err != nil || string(v) != "v" {
		t.Fatalf("Get before expiry: %q, %v", v, err)
	}
	now.Add(6_000)
	if _, err := c.Get([]byte("flat")); err != client.ErrNotFound {
		t.Fatalf("Get after expiry: %v", err)
	}
	if reaped := o.ExpireTick(); reaped != 1 {
		t.Fatalf("ExpireTick reaped %d, want 1", reaped)
	}

	// SCAN never surfaces object-layer records.
	pairs, err := c.Scan(nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pairs {
		if obj.IsInternalKey(p.Key) {
			t.Fatalf("SCAN leaked internal record %q", p.Key)
		}
	}

	// The reserved namespace is unreachable through flat verbs.
	for _, op := range []func() error{
		func() error { return c.Put([]byte{obj.NSByte, 'H', 'x'}, []byte("v")) },
		func() error { return c.Delete([]byte{obj.NSByte, 'H', 'x'}) },
		func() error { _, err := c.Get([]byte{obj.NSByte, 'H', 'x'}); return err },
	} {
		if err := op(); err == nil || !strings.Contains(err.Error(), "reserved") {
			t.Fatalf("reserved-namespace access: %v", err)
		}
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["obj_reaps"] != 1 {
		t.Fatalf("obj_reaps = %d, want 1", stats["obj_reaps"])
	}
	if stats["obj_lazy_expiries"] == 0 {
		t.Fatal("lazy expiry not counted")
	}
}

// Without Config.Obj, the typed verbs answer with a clean error and the
// flat path is untouched (no reserved-namespace policing of a layer that
// does not exist).
func TestObjVerbsDisabled(t *testing.T) {
	_, _, addr := startServer(t, Config{}, kv.Options{})
	c := dial(t, addr, client.Options{})
	if err := c.HSet([]byte("h"), []byte("f"), []byte("v")); err == nil ||
		!strings.Contains(err.Error(), "disabled") {
		t.Fatalf("HSet without obj layer: %v", err)
	}
	if err := c.Put([]byte{obj.NSByte, 'z'}, []byte("v")); err != nil {
		t.Fatalf("flat Put of 0x01-prefixed key without obj layer: %v", err)
	}
}

// Composite writes must invalidate the hot-key cache entry of the SAME
// name: an Expire-driven reap deletes the flat key out from under a cached
// GET.
func TestObjWriteInvalidatesCache(t *testing.T) {
	var now atomic.Int64
	now.Store(1_000)
	_, _, addr := startObjServer(t, Config{Cache: CacheConfig{Enable: true}}, now.Load)
	c := dial(t, addr, client.Options{})

	if err := c.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Two reads: miss+fill, then hit — k is resident.
	for i := 0; i < 2; i++ {
		if v, err := c.Get([]byte("k")); err != nil || string(v) != "v1" {
			t.Fatalf("Get: %q, %v", v, err)
		}
	}
	// An expired name being HSet is reaped inside the composite; the cached
	// flat "k" must not survive it.
	if err := c.Expire([]byte("k"), 10); err != nil {
		t.Fatal(err)
	}
	now.Add(100)
	if err := c.HSet([]byte("k"), []byte("f"), []byte("v")); err != nil {
		t.Fatalf("HSet over expired flat key: %v", err)
	}
	if _, err := c.Get([]byte("k")); err != client.ErrNotFound {
		t.Fatalf("Get after reaping composite: %v, want ErrNotFound", err)
	}
}

// TestObjFailoverMidComposite is the replication contract for typed
// objects: composite records ride the per-partition LSN stream, and a
// failover at ANY acked point — here a hard primary kill under a stream of
// HSETs — never leaves the promoted replica serving a half-applied object.
// Promotion resolves shipped-but-unfinished intents before the first write.
func TestObjFailoverMidComposite(t *testing.T) {
	pst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	pNode, err := repl.NewNode(pst, repl.Primary)
	if err != nil {
		t.Fatal(err)
	}
	pobj, err := obj.Attach(pst, obj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pobj.Close()
	psrv := New(pst, Config{Repl: pNode, Obj: pobj})
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pDone := make(chan error, 1)
	go func() { pDone <- psrv.Serve(pln) }()

	rst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	rNode, err := repl.NewNode(rst, repl.Replica)
	if err != nil {
		t.Fatal(err)
	}
	robj, err := obj.Attach(rst, obj.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer robj.Close()
	_, _, rAddr := startServerOn(t, Config{Repl: rNode, Obj: robj}, rst)
	t.Cleanup(rNode.Close)
	applierDone := make(chan error, 1)
	go func() {
		applierDone <- rNode.RunApplier(repl.ApplierConfig{
			Addr:        pln.Addr().String(),
			AckEvery:    1,
			AckInterval: time.Millisecond,
		})
	}()

	fo, err := client.DialFailover([]string{pln.Addr().String(), rAddr}, client.Options{
		DialTimeout: 200 * time.Millisecond,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fo.Close() })

	// Hammer composite writes from several goroutines so composites are
	// genuinely in flight when the primary dies; kill it with a too-short
	// drain. The failover wrapper retries each interrupted HSET against the
	// promoted replica (at-least-once; HSET is idempotent per field).
	var wg sync.WaitGroup
	var hammerErr atomic.Value
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := []byte(fmt.Sprintf("obj:%d", (g*7+i)%8))
				field := []byte(fmt.Sprintf("f%d", i%5))
				if err := fo.HSet(name, field, []byte(fmt.Sprintf("v%d-%d", g, i))); err != nil {
					hammerErr.Store(fmt.Errorf("writer %d op %d: %w", g, i, err))
					return
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	psrv.Shutdown(ctx)
	cancel()
	<-pDone
	pNode.Close()
	time.Sleep(100 * time.Millisecond) // writers fail over and keep going
	close(stop)
	wg.Wait()
	if e := hammerErr.Load(); e != nil {
		t.Fatalf("hammer: %v", e)
	}
	if fo.Addr() != rAddr {
		t.Fatalf("failover client on %s, want the promoted replica %s", fo.Addr(), rAddr)
	}
	select {
	case <-applierDone:
	case <-time.After(5 * time.Second):
		t.Fatal("applier kept running after promotion")
	}
	if !robj.Active() {
		t.Fatal("promotion did not activate the object layer")
	}

	// The promoted store must hold NO unresolved intents and a perfectly
	// consistent object graph: every field a header lists has its record,
	// every field record is listed by its header.
	headers := map[string][]string{} // name → fields
	fields := map[string][]string{}
	rst.Range(func(k, v []byte) bool {
		if len(k) < 2 || k[0] != obj.NSByte {
			return true
		}
		switch k[1] {
		case 'I':
			t.Errorf("unresolved intent for %q on promoted replica", k[2:])
		case 'H':
			name := string(k[2:])
			// Header layout: [type][u32 count][(u16 len + elem)*].
			c := bytes.Clone(v[5:])
			for n := binary.LittleEndian.Uint32(v[1:5]); n > 0; n-- {
				l := binary.LittleEndian.Uint16(c)
				headers[name] = append(headers[name], string(c[2:2+l]))
				c = c[2+l:]
			}
		case 'h':
			nl := binary.LittleEndian.Uint16(k[2:4])
			name := string(k[4 : 4+nl])
			fields[name] = append(fields[name], string(k[4+nl:]))
		}
		return true
	})
	for name, hf := range headers {
		if len(hf) != len(fields[name]) {
			t.Fatalf("object %q: header lists %v, records hold %v", name, hf, fields[name])
		}
		have := map[string]bool{}
		for _, f := range fields[name] {
			have[f] = true
		}
		for _, f := range hf {
			if !have[f] {
				t.Fatalf("object %q: header lists %q but its record is missing", name, f)
			}
		}
	}
	for name := range fields {
		if _, ok := headers[name]; !ok {
			t.Fatalf("object %q: field records without a header", name)
		}
	}

	// And the promoted node serves typed reads and writes.
	if v, err := fo.HGet([]byte("obj:0"), []byte("f0")); err != nil || len(v) == 0 {
		t.Fatalf("post-failover HGet: %q, %v", v, err)
	}
	if err := fo.HSet([]byte("obj:new"), []byte("f"), []byte("v")); err != nil {
		t.Fatalf("post-failover HSet: %v", err)
	}
}

// Satellite regression: a FENCED primary (StatusReadOnly on writes) is a
// transient, not a terminal condition — the failover wrapper must keep
// retrying with backoff until the fence lifts, instead of giving up after
// one re-election that re-adopts the same fenced node.
func TestFailoverRetriesFencedPrimary(t *testing.T) {
	pst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	pNode, err := repl.NewNode(pst, repl.Primary)
	if err != nil {
		t.Fatal(err)
	}
	defer pNode.Close()
	_, _, pAddr := startServerOn(t, Config{Repl: pNode, ReplFenceLease: 10 * time.Millisecond}, pst)

	fo, err := client.DialFailover([]string{pAddr}, client.Options{
		DialTimeout: 200 * time.Millisecond,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fo.Close() })

	// Let the fence engage (no replica has ever subscribed).
	deadline := time.Now().Add(5 * time.Second)
	for !pNode.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("primary never fenced")
		}
		time.Sleep(time.Millisecond)
	}

	// Lift the fence from a delayed replica — well inside the wrapper's
	// retry budget but long after its first (and, before the fix, only)
	// retry would have failed.
	rst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	rNode, err := repl.NewNode(rst, repl.Replica)
	if err != nil {
		t.Fatal(err)
	}
	applierDone := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		applierDone <- rNode.RunApplier(repl.ApplierConfig{
			Addr: pAddr, AckEvery: 1, AckInterval: time.Millisecond,
		})
	}()
	t.Cleanup(func() {
		rNode.Close()
		select {
		case err := <-applierDone:
			if err != nil {
				t.Errorf("applier: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("applier did not stop")
		}
	})

	// One call, issued against the fenced primary: it must ride the retry
	// loop through the fence lift and succeed.
	if err := fo.Put([]byte("k"), []byte("v")); err != nil {
		if errors.Is(err, client.ErrReadOnly) {
			t.Fatalf("Put returned ErrReadOnly terminally; the fence was transient: %v", err)
		}
		t.Fatalf("Put against fenced primary: %v", err)
	}
	if v, err := fo.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get after fence lift: %q, %v", v, err)
	}
}
