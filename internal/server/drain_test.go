package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rntree/client"
	"rntree/kv"
)

// TestGracefulDrainZeroLostAcks is the acceptance test for the serving
// layer's durability contract: clients hammer acknowledged Puts while the
// server is SIGTERMed mid-traffic (Shutdown + Checkpoint, exactly the
// rnserved signal path); after recovery from the checkpoint images, every
// single acknowledged write must be present. In-flight requests may fail
// with connection/closing errors — those were never acknowledged and carry
// no promise.
func TestGracefulDrainZeroLostAcks(t *testing.T) {
	for _, batched := range []bool{false, true} {
		name := "unbatched"
		if batched {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			st, err := kv.New(kv.Options{ArenaSize: 64 << 20, ChunkSize: 1 << 16, Partitions: 4})
			if err != nil {
				t.Fatal(err)
			}
			srv := New(st, Config{Batch: BatchConfig{Puts: batched, MaxBatch: 32, MaxDelay: 200 * time.Microsecond}})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			serveDone := make(chan error, 1)
			go func() { serveDone <- srv.Serve(ln) }()
			addr := ln.Addr().String()

			const writers = 12
			acked := make([]map[string]string, writers)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < writers; w++ {
				acked[w] = map[string]string{}
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c, err := client.Dial(addr, client.Options{ReconnectAttempts: 1, Timeout: 10 * time.Second})
					if err != nil {
						t.Errorf("dial: %v", err)
						return
					}
					defer c.Close()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						k := fmt.Sprintf("w%d-%d", w, i)
						v := fmt.Sprintf("v%d-%d-%d", w, i, i*7)
						if err := c.Put([]byte(k), []byte(v)); err != nil {
							// Acceptable only while the server goes away.
							return
						}
						acked[w][k] = v
					}
				}(w)
			}

			// Let traffic build, then pull the trigger mid-flight.
			time.Sleep(100 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("Shutdown: %v", err)
			}
			if err := <-serveDone; err != nil {
				t.Fatalf("Serve: %v", err)
			}
			close(stop)
			wg.Wait()

			// The rnserved signal path: checkpoint after drain. It must
			// succeed — the drain guaranteed quiescence.
			imgs, err := st.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint after drain: %v", err)
			}

			s2, err := kv.Open(imgs, kv.Options{})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			total, lost := 0, 0
			for w := range acked {
				for k, v := range acked[w] {
					total++
					got, err := s2.Get([]byte(k))
					if err != nil || !bytes.Equal(got, []byte(v)) {
						lost++
						t.Errorf("acked write lost: %s (%v)", k, err)
					}
				}
			}
			if total == 0 {
				t.Fatal("no writes were acknowledged before the drain; test proved nothing")
			}
			if lost != 0 {
				t.Fatalf("%d of %d acknowledged writes lost across drain+recovery", lost, total)
			}
			t.Logf("%d acknowledged writes, 0 lost", total)
		})
	}
}

// TestShutdownFinishesInflight: requests already read when the drain
// starts are executed and answered before their connection closes.
func TestShutdownFinishesInflight(t *testing.T) {
	st, err := kv.New(kv.Options{ArenaSize: 64 << 20, ChunkSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put([]byte("pre"), []byte("drain")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	// New connections are refused after drain.
	if _, err := client.Dial(ln.Addr().String(), client.Options{ReconnectAttempts: 1, DialTimeout: 500 * time.Millisecond}); err == nil {
		// Dial may succeed at TCP level only if the listener re-binds
		// raced; a ping must certainly fail.
		t.Log("dial after shutdown succeeded at TCP level (listener closed; acceptable only if ping fails)")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("store close after drain: %v", err)
	}
	if v, err := st.Get([]byte("pre")); err != nil || string(v) != "drain" {
		t.Fatalf("pre-drain write missing: %q, %v", v, err)
	}
}

// TestShutdownDeadline: a wedged client cannot hold the drain hostage —
// the context deadline forces teardown.
func TestShutdownDeadline(t *testing.T) {
	st, err := kv.New(kv.Options{ArenaSize: 64 << 20, ChunkSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, Config{IdleTimeout: time.Hour})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// A raw connection that never reads its responses and never sends a
	// full frame: it holds a partial header.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.Write([]byte{0, 0})
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	srv.Shutdown(ctx) // error (deadline) or nil both acceptable; must return promptly
	if since := time.Since(start); since > 3*time.Second {
		t.Fatalf("Shutdown took %v despite deadline", since)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
