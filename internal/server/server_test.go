package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rntree/client"
	"rntree/internal/wire"
	"rntree/kv"
)

// startServer spins up a store + server on loopback and returns them with
// a cleanup-registered shutdown.
func startServer(t *testing.T, scfg Config, kopts kv.Options) (*Server, *kv.Store, string) {
	t.Helper()
	if kopts.ArenaSize == 0 {
		kopts = kv.Options{ArenaSize: 128 << 20, ChunkSize: 1 << 16, Partitions: 2}
	}
	st, err := kv.New(kopts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(st, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, st, ln.Addr().String()
}

func dial(t *testing.T, addr string, opts client.Options) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerBasicOps(t *testing.T) {
	_, _, addr := startServer(t, Config{}, kv.Options{})
	c := dial(t, addr, client.Options{})

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Put([]byte("hello"), []byte("world")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, err := c.Get([]byte("hello"))
	if err != nil || string(v) != "world" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("absent")); err != client.ErrNotFound {
		t.Fatalf("absent Get: %v", err)
	}
	if err := c.Delete([]byte("hello")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := c.Delete([]byte("hello")); err != client.ErrNotFound {
		t.Fatalf("double Delete: %v", err)
	}
	// Empty key surfaces the server-side error message.
	if err := c.Put(nil, []byte("x")); err == nil {
		t.Fatal("empty-key Put succeeded")
	}

	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("user:%02d", i)), []byte("u")); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := c.Scan([]byte("user:"), 100)
	if err != nil || len(pairs) != 20 {
		t.Fatalf("Scan = %d pairs, %v", len(pairs), err)
	}
	pairs, err = c.Scan([]byte("user:"), 7)
	if err != nil || len(pairs) != 7 {
		t.Fatalf("bounded Scan = %d pairs, %v", len(pairs), err)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["live_keys"] != 20 {
		t.Fatalf("live_keys = %d, want 20", stats["live_keys"])
	}
	if stats["conns_active"] != 1 || stats["requests"] == 0 {
		t.Fatalf("server counters missing: %v", stats)
	}
}

// TestPipelinedOutOfOrder verifies many concurrent callers share one
// connection and every response routes back to its caller.
func TestPipelinedOutOfOrder(t *testing.T) {
	_, _, addr := startServer(t, Config{}, kv.Options{})
	c := dial(t, addr, client.Options{MaxInflight: 32})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("g%d-i%d", g, i))
				v := []byte(fmt.Sprintf("val-%d-%d", g, i))
				if err := c.Put(k, v); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				got, err := c.Get(k)
				if err != nil || !bytes.Equal(got, v) {
					t.Errorf("Get(%s) = %q, %v", k, got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestBatchedPuts drives the cross-connection write batcher and checks
// both correctness and that batches actually formed.
func TestBatchedPuts(t *testing.T) {
	srv, st, addr := startServer(t, Config{Batch: BatchConfig{Puts: true, MaxBatch: 32, MaxDelay: time.Millisecond}}, kv.Options{})
	var wg sync.WaitGroup
	for conn := 0; conn < 4; conn++ {
		c := dial(t, addr, client.Options{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(conn, g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					k := []byte(fmt.Sprintf("c%d-g%d-i%d", conn, g, i))
					if err := c.Put(k, []byte("v")); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				}
			}(conn, g)
		}
	}
	wg.Wait()
	if n := st.Stats().LiveKeys; n != 4*8*25 {
		t.Fatalf("LiveKeys = %d, want %d", n, 4*8*25)
	}
	batches, puts := srv.batcher.batches.Load(), srv.batcher.puts.Load()
	if puts != 4*8*25 {
		t.Fatalf("batched_puts = %d, want %d", puts, 4*8*25)
	}
	if batches == 0 || batches >= puts {
		t.Fatalf("no coalescing: %d batches for %d puts", batches, puts)
	}
	t.Logf("%d puts in %d batches (avg %.1f/batch)", puts, batches, float64(puts)/float64(batches))
}

// TestOverloadRejection fills the global inflight budget with slow
// requests... the simulated store is fast, so instead shrink the budget and
// drive more concurrent requests than it admits: excess must be rejected
// with StatusOverloaded, not queued or dropped.
func TestOverloadRejection(t *testing.T) {
	srv, _, addr := startServer(t, Config{
		MaxInflight:       64,
		MaxGlobalInflight: 2,
		Batch:             BatchConfig{Puts: true, MaxBatch: 4, MaxDelay: 5 * time.Millisecond, QueueCap: 4},
	}, kv.Options{})
	c := dial(t, addr, client.Options{MaxInflight: 64})
	var wg sync.WaitGroup
	var overloaded, ok int
	var mu sync.Mutex
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				err := c.Put([]byte(fmt.Sprintf("k%d-%d", g, i)), []byte("v"))
				mu.Lock()
				switch err {
				case nil:
					ok++
				case client.ErrOverloaded:
					overloaded++
				default:
					t.Errorf("Put: %v", err)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if overloaded == 0 {
		t.Fatal("no overload rejections despite a 2-request global budget")
	}
	if ok == 0 {
		t.Fatal("every request rejected")
	}
	if srv.overloads.Load() == 0 {
		t.Fatal("overload counter not incremented")
	}
	t.Logf("ok=%d overloaded=%d", ok, overloaded)
}

func TestMaxConnsRefused(t *testing.T) {
	srv, _, addr := startServer(t, Config{MaxConns: 2}, kv.Options{})
	c1 := dial(t, addr, client.Options{})
	c2 := dial(t, addr, client.Options{})
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	// The third connection is closed on accept; a ping on it fails after
	// the dial-side succeeds.
	c3, err := client.Dial(addr, client.Options{ReconnectAttempts: 1, Timeout: 2 * time.Second})
	if err == nil {
		defer c3.Close()
		if err := c3.Ping(); err == nil {
			t.Fatal("third connection served despite MaxConns=2")
		}
	}
	if srv.refused.Load() == 0 {
		t.Fatal("refused counter not incremented")
	}
}

// TestIdleReap: a connection with no traffic is reaped after IdleTimeout.
func TestIdleReap(t *testing.T) {
	srv, _, addr := startServer(t, Config{IdleTimeout: 50 * time.Millisecond}, kv.Options{})
	c := dial(t, addr, client.Options{ReconnectAttempts: 1})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.reaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for srv.active.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("reaped connection still active")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGarbageFrameClosesConn: an oversized length prefix is a protocol
// violation; the server must drop the connection, not crash or stall.
func TestGarbageFrameClosesConn(t *testing.T) {
	_, _, addr := startServer(t, Config{}, kv.Options{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], wire.MaxFrame+1)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := bufio.NewReader(raw).ReadByte(); err == nil {
		t.Fatal("server responded to a garbage frame instead of closing")
	}
}

// TestMalformedRequestGetsError: sound framing but a bad opcode gets an
// error response and the connection survives.
func TestMalformedRequestGetsError(t *testing.T) {
	_, _, addr := startServer(t, Config{}, kv.Options{})
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	payload := append(binary.BigEndian.AppendUint64(nil, 7), 99) // unknown opcode, id 7
	frame := append(binary.BigEndian.AppendUint32(nil, uint32(len(payload))), payload...)
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(raw)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	p, err := wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatalf("no response to malformed request: %v", err)
	}
	resp, err := wire.DecodeResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Status != wire.StatusErr {
		t.Fatalf("response = %+v, want id 7 StatusErr", resp)
	}
	// The connection still works.
	good, _ := wire.AppendRequest(nil, wire.Request{ID: 8, Op: wire.OpPing})
	if _, err := raw.Write(good); err != nil {
		t.Fatal(err)
	}
	p, err = wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, _ := wire.DecodeResponse(p); resp.ID != 8 || resp.Status != wire.StatusOK {
		t.Fatalf("ping after malformed request = %+v", resp)
	}
}
