package server

import (
	"sync"
	"sync/atomic"
	"time"

	"rntree/internal/wire"
	"rntree/kv"
)

// BatchConfig tunes the opt-in cross-connection write batcher. When
// enabled, PUTs from every connection are routed by key to a per-partition
// committer (one bounded queue and one goroutine per store partition) and
// applied with kv.Store.PutBatch, which persists each batch's records with
// one fence per contiguous run — the persist-fence amortization that
// individual Puts cannot get. Each PUT is acknowledged only after its
// batch returns, so the durability contract is unchanged; what batching
// trades is a little added latency (at most MaxDelay) for fence cost
// spread over MaxBatch writers.
//
// Sharding the committer by partition does two things. It preserves
// per-key ordering — a key always hashes to the same partition, so two
// pipelined PUTs to one key pass through the same queue and commit in
// arrival order — and it lets one partition's persist stall overlap every
// other partition's CPU work (encoding acks, reading the next requests),
// instead of a single committer alternating between draining the NVM
// write queue and doing CPU work while the drain engines sit idle.
type BatchConfig struct {
	// Puts enables the batcher.
	Puts bool
	// MaxBatch is the most PUTs coalesced into one PutBatch (default 64).
	MaxBatch int
	// MaxDelay bounds how long the first PUT of a batch waits for company
	// (default 200µs; subject to the host's timer granularity, which can
	// be a millisecond or more). A NEGATIVE MaxDelay selects greedy group
	// commit: a batch takes whatever is already queued and goes — a solo
	// writer is never delayed waiting for company, while under load the
	// queue that builds behind the previous batch's persist becomes the
	// next batch. This is the recommended mode for throughput serving.
	MaxDelay time.Duration
	// QueueCap bounds each partition committer's intake queue (default
	// 4×MaxBatch); when full, PUTs are rejected with StatusOverloaded
	// rather than buffered.
	QueueCap int
}

func (c *BatchConfig) normalize() {
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 200 * time.Microsecond
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
}

// batchedPut is one enqueued PUT with its completion route. raw is the
// frame payload req's key/value slices alias; apply returns it to
// payloadPool once PutBatch has copied the value out.
type batchedPut struct {
	cn  *conn
	req wire.Request
	raw []byte
}

// batcher drains the PUT queues into PutBatch calls, one committer
// goroutine per store partition.
type batcher struct {
	st    *kv.Store
	cfg   BatchConfig
	cache *Cache            // hot-key cache to invalidate on commit; nil when disabled
	qs    []chan batchedPut // one intake queue per partition
	stopc chan struct{}
	wg    sync.WaitGroup

	batches atomic.Uint64
	puts    atomic.Uint64
}

func newBatcher(st *kv.Store, cfg BatchConfig, cache *Cache) *batcher {
	qs := make([]chan batchedPut, st.Partitions())
	for i := range qs {
		qs[i] = make(chan batchedPut, cfg.QueueCap)
	}
	return &batcher{
		st:    st,
		cfg:   cfg,
		cache: cache,
		qs:    qs,
		stopc: make(chan struct{}),
	}
}

func (b *batcher) start() {
	for _, q := range b.qs {
		b.wg.Add(1)
		go b.run(q)
	}
}

// stop shuts the batcher down. Callers must guarantee no further enqueues
// (the server stops all connections first); anything still queued is
// flushed before stop returns.
func (b *batcher) stop() {
	close(b.stopc)
	b.wg.Wait()
}

// enqueue queues one PUT on its key's partition committer, or reports
// false when that queue is full (backpressure: the caller rejects with
// StatusOverloaded).
func (b *batcher) enqueue(cn *conn, req wire.Request, raw []byte) bool {
	select {
	case b.qs[b.st.PartitionOf(req.Key)] <- batchedPut{cn: cn, req: req, raw: raw}:
		return true
	default:
		return false
	}
}

// run is one partition's committer: wait for one PUT, then gather more
// until MaxBatch or MaxDelay, apply them in one PutBatch, and complete
// each request. While this committer sits in its batch's persist stall,
// the other partitions' committers (and the readers and responders) own
// the CPU — the drain engines of all partitions stay busy concurrently.
func (b *batcher) run(q chan batchedPut) {
	defer b.wg.Done()
	for {
		var first batchedPut
		select {
		case first = <-q:
		case <-b.stopc:
			// Flush whatever raced in before the last connection left.
			for {
				select {
				case p := <-q:
					b.apply([]batchedPut{p})
				default:
					return
				}
			}
		}
		batch := append(make([]batchedPut, 0, b.cfg.MaxBatch), first)
		if b.cfg.MaxDelay < 0 {
			// Greedy group commit: drain what has already queued, never wait.
		greedy:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case p := <-q:
					batch = append(batch, p)
				default:
					break greedy
				}
			}
		} else {
			timer := time.NewTimer(b.cfg.MaxDelay)
		gather:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case p := <-q:
					batch = append(batch, p)
				case <-timer.C:
					break gather
				case <-b.stopc:
					break gather
				}
			}
			timer.Stop()
		}
		b.apply(batch)
	}
}

// apply runs one PutBatch and acknowledges every entry. Acks are grouped
// by connection and delivered with one respondBatch per connection, so a
// batch's worth of acknowledgements to the same client leaves in one
// buffered write instead of one flush per response.
func (b *batcher) apply(batch []batchedPut) {
	keys := make([][]byte, len(batch))
	vals := make([][]byte, len(batch))
	for i, p := range batch {
		keys[i] = p.req.Key
		vals[i] = p.req.Val
	}
	errs := b.st.PutBatch(keys, vals)
	// Invalidate the hot-key cache after the batch commit and before the
	// acks (cache.go rule 1) — and before the payload recycling below,
	// which kills the buffers the key slices alias.
	if b.cache != nil {
		for _, k := range keys {
			b.cache.Invalidate(k)
		}
	}
	// PutBatch copied every key and value into the store, so the frame
	// payloads the request slices alias are dead — recycle them before the
	// acks go out (the responses carry only IDs and statuses).
	for i := range batch {
		keys[i], vals[i] = nil, nil
		if batch[i].raw != nil {
			payloadPool.Put(batch[i].raw[:0]) //nolint:staticcheck // []byte pooling is deliberate
			batch[i].raw = nil
		}
	}
	b.batches.Add(1)
	b.puts.Add(uint64(len(batch)))
	var (
		order  []*conn
		byConn map[*conn][]wire.Response
	)
	for i, p := range batch {
		resp := wire.Response{ID: p.req.ID, Op: wire.OpPut, Status: wire.StatusOK}
		if errs != nil && errs[i] != nil {
			if errs[i] == kv.ErrClosed {
				resp.Status = wire.StatusClosing
			} else {
				resp.Status, resp.Msg = wire.StatusErr, errs[i].Error()
			}
		}
		if byConn == nil {
			byConn = map[*conn][]wire.Response{}
		}
		if _, seen := byConn[p.cn]; !seen {
			order = append(order, p.cn)
		}
		byConn[p.cn] = append(byConn[p.cn], resp)
	}
	for _, cn := range order {
		cn.respondBatch(byConn[cn])
	}
}
