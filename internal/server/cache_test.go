package server

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rntree/client"
	"rntree/kv"
)

func TestCacheBasic(t *testing.T) {
	c := NewCache(CacheConfig{MaxEntries: 64, Shards: 4})
	key, val := []byte("k1"), []byte("v1")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	e := c.FillEpoch(key)
	c.CommitFill(key, val, e)
	if v, ok := c.Get(key); !ok || string(v) != "v1" {
		t.Fatalf("Get = %q,%v after fill", v, ok)
	}
	c.Invalidate(key)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after invalidate")
	}
	// A fill whose epoch predates an invalidation must be dropped: the
	// value it carries may be from before a committed mutation.
	e = c.FillEpoch(key)
	c.Invalidate(key)
	c.CommitFill(key, []byte("stale"), e)
	if _, ok := c.Get(key); ok {
		t.Fatal("stale fill was installed past an invalidation")
	}
	st := c.Stats()
	if st.FillAborts != 1 || st.Fills != 1 || st.Invalidations != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// Satellite: the two-touch admission guard. A key is installed only on its
// second miss inside one shard-epoch window, so a one-pass scan cannot
// evict the resident hot set; an invalidation in the shard resets the
// window.
func TestCacheTwoTouchAdmission(t *testing.T) {
	c := NewCache(CacheConfig{MaxEntries: 64, Shards: 1, TwoTouch: true})
	key, val := []byte("hot"), []byte("v")

	// First touch: recorded, not admitted.
	c.CommitFill(key, val, c.FillEpoch(key))
	if _, ok := c.Get(key); ok {
		t.Fatal("admitted on first touch")
	}
	// Second touch in the same window: admitted.
	c.CommitFill(key, val, c.FillEpoch(key))
	if v, ok := c.Get(key); !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v after second touch", v, ok)
	}
	if st := c.Stats(); st.AdmitRejects != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// An invalidation between the touches voids the first one.
	cold := []byte("cold")
	c.CommitFill(cold, val, c.FillEpoch(cold))
	c.Invalidate([]byte("other")) // same (only) shard: epoch bump
	c.CommitFill(cold, val, c.FillEpoch(cold))
	if _, ok := c.Get(cold); ok {
		t.Fatal("stale first touch survived an epoch bump")
	}
	c.CommitFill(cold, val, c.FillEpoch(cold))
	if _, ok := c.Get(cold); !ok {
		t.Fatal("second touch in the new window not admitted")
	}

	// A scan of touched-once keys admits nothing and cannot thrash the
	// resident entries.
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("scan%04d", i))
		c.CommitFill(k, val, c.FillEpoch(k))
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("scan evicted a resident hot key")
	}
	if st := c.Stats(); st.Evictions != 0 {
		t.Fatalf("scan caused %d evictions", st.Evictions)
	}
}

func TestCacheBounded(t *testing.T) {
	c := NewCache(CacheConfig{MaxEntries: 32, Shards: 4})
	for i := 0; i < 1000; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		c.CommitFill(k, []byte("v"), c.FillEpoch(k))
	}
	if n := c.Len(); n > 32 {
		t.Fatalf("cache holds %d entries, bound is 32", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
}

// TestCacheCoherence is the linearizability-style concurrent test: per-key
// serialized writers PUT monotonically stamped values while readers GET
// through the cache; a GET must never return a stamp older than the last
// ack the reader observed before issuing it (a stale cache hit surviving a
// committed, acknowledged PUT), nor a stamp never issued. Runs with and
// without the write batcher so both invalidation paths (handle and
// batcher.apply) are exercised.
func TestCacheCoherence(t *testing.T) {
	for _, batched := range []bool{false, true} {
		name := "direct"
		if batched {
			name = "batched"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				// Small cache with few shards: evictions and shared-shard
				// epoch traffic happen constantly.
				Cache: CacheConfig{Enable: true, MaxEntries: 64, Shards: 2},
			}
			if batched {
				cfg.Batch = BatchConfig{Puts: true, MaxDelay: -1}
			}
			_, _, addr := startServer(t, cfg, kv.Options{})

			const (
				nKeys     = 16
				nWriters  = 4 // each owns nKeys/nWriters keys
				nReaders  = 4
				perWriter = 400
				perReader = 800
			)
			keys := make([][]byte, nKeys)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("hot%02d", i))
			}
			var lastAcked [nKeys]atomic.Uint64  // highest stamp acked per key
			var lastIssued [nKeys]atomic.Uint64 // highest stamp PUT per key
			var stamp atomic.Uint64

			var wg sync.WaitGroup
			errs := make(chan error, nWriters+nReaders)
			clients := make([]*client.Client, nWriters+nReaders)
			for i := range clients {
				clients[i] = dial(t, addr, client.Options{})
			}
			for w := 0; w < nWriters; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					c := clients[w]
					for i := 0; i < perWriter; i++ {
						k := w*(nKeys/nWriters) + i%(nKeys/nWriters)
						s := stamp.Add(1)
						lastIssued[k].Store(s) // per-key writes are serialized here
						if err := c.Put(keys[k], []byte(strconv.FormatUint(s, 10))); err != nil {
							errs <- fmt.Errorf("put: %w", err)
							return
						}
						lastAcked[k].Store(s)
					}
				}(w)
			}
			for r := 0; r < nReaders; r++ {
				wg.Add(1)
				go func(r int, seed int64) {
					defer wg.Done()
					c := clients[nWriters+r]
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < perReader; i++ {
						k := rng.Intn(nKeys)
						floor := lastAcked[k].Load() // before the GET
						v, err := c.Get(keys[k])
						if err == client.ErrNotFound {
							if floor != 0 {
								errs <- fmt.Errorf("key %d vanished after stamp %d was acked", k, floor)
								return
							}
							continue
						}
						if err != nil {
							errs <- fmt.Errorf("get: %w", err)
							return
						}
						got, err := strconv.ParseUint(string(v), 10, 64)
						if err != nil {
							errs <- fmt.Errorf("undecodable value %q", v)
							return
						}
						if got < floor {
							errs <- fmt.Errorf("key %d: GET returned stamp %d after stamp %d was acked (stale cache hit)", k, got, floor)
							return
						}
						if ceil := lastIssued[k].Load(); got > ceil {
							errs <- fmt.Errorf("key %d: GET returned stamp %d, never issued (<=%d)", k, got, ceil)
							return
						}
					}
				}(r, int64(r+1))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestCacheServesHits checks the cache actually accelerates: repeat GETs of
// one key count as hits, a PUT invalidates, and the STATS verb carries the
// cache counters.
func TestCacheServesHits(t *testing.T) {
	_, _, addr := startServer(t, Config{Cache: CacheConfig{Enable: true}}, kv.Options{})
	c := dial(t, addr, client.Options{})
	if err := c.Put([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if v, err := c.Get([]byte("k")); err != nil || string(v) != "v1" {
			t.Fatalf("Get = %q,%v", v, err)
		}
	}
	if err := c.Put([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Get([]byte("k")); err != nil || string(v) != "v2" {
		t.Fatalf("Get after overwrite = %q,%v", v, err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["cache_hits"] < 9 {
		t.Fatalf("cache_hits = %d, want >= 9", st["cache_hits"])
	}
	if st["cache_invalidations"] < 2 {
		t.Fatalf("cache_invalidations = %d, want >= 2", st["cache_invalidations"])
	}
	if st["cache_hits"]+st["cache_misses"] > st["requests"] {
		t.Fatalf("hits+misses %d exceeds requests %d", st["cache_hits"]+st["cache_misses"], st["requests"])
	}
}

// TestStatsConsistentUnderLoad hammers a deliberately tiny global-inflight
// limit so overload rejections race the STATS reader, and asserts the
// snapshot invariant: overloads never exceed requests (and batched_puts
// never exceed requests), no matter how the loads interleave with a burst.
func TestStatsConsistentUnderLoad(t *testing.T) {
	srv, _, addr := startServer(t, Config{
		MaxGlobalInflight: 4,
		MaxInflight:       64,
		Cache:             CacheConfig{Enable: true},
	}, kv.Options{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// 4 clients x 8 concurrent callers each: 32 requests in flight against
	// a global limit of 4, so rejections happen continuously.
	for w := 0; w < 4; w++ {
		c := dial(t, addr, client.Options{MaxInflight: 64})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(c *client.Client, w, g int) {
				defer wg.Done()
				key := []byte{byte(w), byte(g)}
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Overload rejections come back as errors; keep going.
					_ = c.Put(key, key)
					_, _ = c.Get(key)
				}
			}(c, w, g)
		}
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	checks := 0
	for time.Now().Before(deadline) {
		st := srv.Stats()
		if st.Overloads > st.Requests {
			t.Fatalf("snapshot reports overloads %d > requests %d", st.Overloads, st.Requests)
		}
		if st.HasCache && st.Cache.Hits+st.Cache.Misses > st.Requests {
			t.Fatalf("snapshot reports cache lookups %d > requests %d", st.Cache.Hits+st.Cache.Misses, st.Requests)
		}
		checks++
	}
	close(stop)
	wg.Wait()
	if checks == 0 {
		t.Fatal("no snapshots taken")
	}
	if srv.Stats().Overloads == 0 {
		t.Log("warning: no overloads triggered; invariant not stressed")
	}
}
