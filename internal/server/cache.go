// DRAM hot-key cache (ROADMAP item 4): a sharded, bounded map fronting
// kv.Store GETs, the read-side counterpart of the write batcher. A GET that
// hits skips the store's hash, partition route, tree walk and chain read
// entirely; a miss fills the cache so the zipf-hot keys of a skewed
// workload converge to DRAM lookups.
//
// Coherence protocol. The tree's leaf version word cannot stamp cache
// entries — it only changes on splits, not on the update-in-place that
// actually supersedes a value — so each cache shard carries its own epoch
// counter and the server enforces two rules:
//
//  1. Invalidate AFTER commit, BEFORE ack: every mutation (PUT, DEL, batch
//     commit) bumps the key's shard epoch and deletes the key after the
//     store mutation returns and before the client sees the response. A
//     cache hit can therefore only ever return a value that was current at
//     some instant after the request arrived: a stale hit concurrent with
//     an unacknowledged mutation linearizes before it.
//  2. Epoch-guarded fills: a miss records the shard epoch BEFORE reading
//     the store and installs the value only if the epoch is unchanged
//     (checked under the shard lock). A mutation that lands between the
//     store read and the install bumps the epoch, so the stale value is
//     dropped instead of cached — the classic read-aside stale-fill race.
//
// The cache holds no persistent state and needs none: recovery starts a
// fresh server with an empty cache, and the fault-explorer target
// (internal/fault CachedKVTarget) proves every crash point leaves the
// store+cache pair serving exactly the model state.
//
//pmem:volatile the cache is a DRAM-only read accelerator; it is discarded wholesale on restart and rebuilt demand-side from store reads
package server

import (
	"sync"
	"sync/atomic"

	"rntree/kv"
)

// CacheConfig tunes the opt-in hot-key cache.
type CacheConfig struct {
	// Enable turns the cache on.
	Enable bool
	// MaxEntries bounds the total cached keys across all shards (default
	// 4096). When a shard is full, an arbitrary resident entry is evicted.
	MaxEntries int
	// Shards is the number of independently locked segments, rounded up to
	// a power of two (default 16). More shards means less lock contention
	// and finer-grained fill invalidation (an epoch bump only aborts
	// in-flight fills of its own shard).
	Shards int
	// TwoTouch gates admission: a missed key is only installed on its
	// SECOND miss within one shard-epoch window, so a scan of
	// touched-once keys cannot thrash the resident hot set (ROADMAP
	// item 4's admission-guard note). Any invalidation in the shard
	// resets the window — first-touch records made under an older epoch
	// are ignored and re-recorded. Default off.
	TwoTouch bool
}

func (c *CacheConfig) normalize() {
	if c.MaxEntries == 0 {
		c.MaxEntries = 4096
	}
	if c.Shards == 0 {
		c.Shards = 16
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
}

// cacheShard is one locked segment: a bounded map plus the epoch that
// serializes fills against invalidations.
type cacheShard struct {
	// epoch is bumped (under mu) by every invalidation in this shard;
	// fills read it lock-free before the store read and revalidate it
	// under mu before installing.
	epoch atomic.Uint64
	mu    sync.Mutex
	m     map[string][]byte
	max   int
	// seen (two-touch mode only) maps key → shard epoch at first touch.
	// A CommitFill whose key is absent, or recorded under a stale epoch,
	// is rejected and only (re)records the touch. Bounded at 4× max: a
	// full table is reset wholesale, which at worst delays admission of
	// a genuinely hot key by one extra touch.
	seen map[string]uint64
}

// Cache is the sharded hot-key cache. All methods are safe for concurrent
// use. Values handed out by Get are shared — callers must treat them as
// immutable (the serving path only encodes them into response frames).
type Cache struct {
	shards []cacheShard
	mask   uint64

	hits         atomic.Uint64
	misses       atomic.Uint64
	fills        atomic.Uint64
	fillAborts   atomic.Uint64
	invals       atomic.Uint64
	evicts       atomic.Uint64
	admitRejects atomic.Uint64
}

// NewCache builds a cache; cfg zero values take the documented defaults.
func NewCache(cfg CacheConfig) *Cache {
	cfg.normalize()
	perShard := cfg.MaxEntries / cfg.Shards
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{
		shards: make([]cacheShard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[string][]byte, perShard)
		c.shards[i].max = perShard
		if cfg.TwoTouch {
			c.shards[i].seen = make(map[string]uint64, perShard)
		}
	}
	return c
}

func (c *Cache) shard(key []byte) *cacheShard {
	return &c.shards[kv.Hash(key)&c.mask]
}

// Get returns the cached value for key, if resident.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	v, ok := sh.m[string(key)]
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// FillEpoch returns the stamp a prospective fill of key must present to
// CommitFill. It MUST be read before the store read whose result is being
// cached (rule 2 above).
func (c *Cache) FillEpoch(key []byte) uint64 {
	return c.shard(key).epoch.Load()
}

// CommitFill installs val for key unless an invalidation bumped the shard
// epoch since FillEpoch — in which case val may predate a committed
// mutation and is dropped. In two-touch mode a first-touch key is only
// recorded, not installed; the second miss under the same shard epoch
// admits it. val is retained by reference; callers pass store-owned copies
// and never mutate them.
func (c *Cache) CommitFill(key, val []byte, epoch uint64) {
	sh := c.shard(key)
	sh.mu.Lock()
	if sh.epoch.Load() != epoch {
		sh.mu.Unlock()
		c.fillAborts.Add(1)
		return
	}
	if sh.seen != nil {
		if at, ok := sh.seen[string(key)]; !ok || at != epoch {
			if len(sh.seen) >= 4*sh.max {
				sh.seen = make(map[string]uint64, sh.max)
			}
			sh.seen[string(key)] = epoch
			sh.mu.Unlock()
			c.admitRejects.Add(1)
			return
		}
		delete(sh.seen, string(key))
	}
	if _, resident := sh.m[string(key)]; !resident && len(sh.m) >= sh.max {
		for k := range sh.m { // evict an arbitrary resident entry
			delete(sh.m, k)
			c.evicts.Add(1)
			break
		}
	}
	sh.m[string(key)] = val
	sh.mu.Unlock()
	c.fills.Add(1)
}

// Invalidate drops key and bumps its shard epoch, aborting every in-flight
// fill in the shard. Mutators call it after the store commit and before
// acknowledging the client (rule 1 above); the bump is unconditional
// because a fill of key may be in flight even when key is not resident.
func (c *Cache) Invalidate(key []byte) {
	sh := c.shard(key)
	sh.mu.Lock()
	sh.epoch.Add(1)
	delete(sh.m, string(key))
	sh.mu.Unlock()
	c.invals.Add(1)
}

// Len reports the resident entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Fills         uint64
	FillAborts    uint64
	Invalidations uint64
	Evictions     uint64
	AdmitRejects  uint64
	Entries       uint64
}

// Stats snapshots the counters. Loads are ordered so derived invariants
// hold in any interleaving: fills (each preceded by its miss) before
// misses, fill-aborts likewise.
func (c *Cache) Stats() CacheStats {
	var s CacheStats
	s.Fills = c.fills.Load()
	s.FillAborts = c.fillAborts.Load()
	s.AdmitRejects = c.admitRejects.Load()
	s.Evictions = c.evicts.Load()
	s.Invalidations = c.invals.Load()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	s.Entries = uint64(c.Len())
	return s
}
