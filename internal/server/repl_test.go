package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"rntree/client"
	"rntree/internal/repl"
	"rntree/kv"
)

func replKVOpts() kv.Options {
	return kv.Options{ArenaSize: 16 << 20, ChunkSize: 1 << 12, Partitions: 2}
}

// startReplPair spins up a primary and a replica server on loopback, with
// the replica's applier subscribed to the primary.
func startReplPair(t *testing.T, pcfg, rcfg Config) (pNode, rNode *repl.Node, pAddr, rAddr string) {
	t.Helper()
	pst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	pNode, err = repl.NewNode(pst, repl.Primary)
	if err != nil {
		t.Fatal(err)
	}
	pcfg.Repl = pNode
	_, _, pAddr = startServerOn(t, pcfg, pst)

	rst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	rNode, err = repl.NewNode(rst, repl.Replica)
	if err != nil {
		t.Fatal(err)
	}
	rcfg.Repl = rNode
	_, _, rAddr = startServerOn(t, rcfg, rst)

	applierDone := make(chan error, 1)
	go func() {
		applierDone <- rNode.RunApplier(repl.ApplierConfig{
			Addr:        pAddr,
			AckEvery:    4,
			AckInterval: 2 * time.Millisecond,
		})
	}()
	t.Cleanup(func() {
		rNode.Close()
		pNode.Close()
		select {
		case err := <-applierDone:
			if err != nil {
				t.Errorf("applier: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("applier did not stop")
		}
	})
	return pNode, rNode, pAddr, rAddr
}

// startServerOn is startServer for a caller-built store.
func startServerOn(t *testing.T, scfg Config, st *kv.Store) (*Server, *kv.Store, string) {
	t.Helper()
	srv := New(st, scfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, st, ln.Addr().String()
}

func waitConverged(t *testing.T, pNode, rNode *repl.Node) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		if storesEqual(pNode.Store(), rNode.Store()) {
			return
		}
		select {
		case <-deadline:
			t.Fatal("replica did not converge")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func storesEqual(a, b *kv.Store) bool {
	am := map[string]string{}
	a.Range(func(k, v []byte) bool { am[string(k)] = string(v); return true })
	n := 0
	ok := true
	b.Range(func(k, v []byte) bool {
		n++
		if am[string(k)] != string(v) {
			ok = false
			return false
		}
		return true
	})
	return ok && n == len(am)
}

func TestReplicationEndToEnd(t *testing.T) {
	pNode, rNode, pAddr, rAddr := startReplPair(t, Config{}, Config{})
	c := dial(t, pAddr, client.Options{})

	// Async writes converge to the replica.
	for i := 0; i < 50; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := c.Delete([]byte("k007")); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, pNode, rNode)

	// A durable PUT is on the replica the moment the ack returns — no
	// waiting, no convergence poll.
	if err := c.PutDurable([]byte("durable-key"), []byte("durable-val")); err != nil {
		t.Fatalf("PutDurable: %v", err)
	}
	if v, err := rNode.Store().Get([]byte("durable-key")); err != nil || string(v) != "durable-val" {
		t.Fatalf("durable write not on replica at ack time: %q, %v", v, err)
	}

	// The replica serves reads but rejects writes.
	rc := dial(t, rAddr, client.Options{})
	if v, err := rc.Get([]byte("durable-key")); err != nil || string(v) != "durable-val" {
		t.Fatalf("replica Get: %q, %v", v, err)
	}
	if err := rc.Put([]byte("x"), []byte("y")); err != client.ErrReadOnly {
		t.Fatalf("replica Put: %v, want ErrReadOnly", err)
	}
	if err := rc.Delete([]byte("durable-key")); err != client.ErrReadOnly {
		t.Fatalf("replica Delete: %v, want ErrReadOnly", err)
	}

	// ReplState reports both sides of the pair.
	role, epoch, lsns, err := c.ReplState()
	if err != nil || role != client.RolePrimary || epoch != 1 {
		t.Fatalf("primary ReplState: role %d epoch %d err %v", role, epoch, err)
	}
	if len(lsns) != pNode.Store().Partitions() {
		t.Fatalf("primary LSN vector has %d entries", len(lsns))
	}
	if role, _, _, err = rc.ReplState(); err != nil || role != client.RoleReplica {
		t.Fatalf("replica ReplState: role %d err %v", role, err)
	}

	// Replication counters surface in stats.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["repl_role"] != uint64(client.RolePrimary) || stats["repl_subscribers"] != 1 {
		t.Fatalf("primary stats: role %d subscribers %d", stats["repl_role"], stats["repl_subscribers"])
	}
	if stats["repl_shipped"] == 0 || stats["repl_acks"] == 0 {
		t.Fatalf("primary stats: shipped %d acks %d", stats["repl_shipped"], stats["repl_acks"])
	}
}

// Without a replica connected, a durable PUT commits locally but reports
// the replication-lag error — the acks=all timeout contract.
func TestDurablePutTimesOutWithoutReplica(t *testing.T) {
	st, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	node, err := repl.NewNode(st, repl.Primary)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	_, _, addr := startServerOn(t, Config{Repl: node, ReplDurableTimeout: 20 * time.Millisecond}, st)
	c := dial(t, addr, client.Options{})

	if err := c.PutDurable([]byte("k"), []byte("v")); err == nil {
		t.Fatal("durable PUT acked with no replica connected")
	}
	// The write is committed locally regardless.
	if v, err := c.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("local commit missing after durable timeout: %q, %v", v, err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["repl_durable_timeouts"] == 0 {
		t.Fatal("durable timeout not counted")
	}
}

// The replica's apply hook must invalidate the hot-key cache: a GET served
// from the replica's cache before an update must re-read after the shipped
// record lands.
func TestReplicaCacheInvalidation(t *testing.T) {
	pNode, rNode, pAddr, rAddr := startReplPair(t,
		Config{},
		Config{Cache: CacheConfig{Enable: true, MaxEntries: 1024}})
	c := dial(t, pAddr, client.Options{})
	rc := dial(t, rAddr, client.Options{})

	if err := c.PutDurable([]byte("hot"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Warm the replica's cache with v1.
	if v, err := rc.Get([]byte("hot")); err != nil || string(v) != "v1" {
		t.Fatalf("warm read: %q, %v", v, err)
	}
	if err := c.PutDurable([]byte("hot"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, pNode, rNode)
	if v, err := rc.Get([]byte("hot")); err != nil || string(v) != "v2" {
		t.Fatalf("replica cache served stale value after shipped update: %q, %v", v, err)
	}
}

// Satellite: a drain with the ship stream in flight must hand the replica
// every acked write before closing the replica connection — zero lost
// acks across a planned shutdown.
func TestDrainFlushesShipStream(t *testing.T) {
	pst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	pNode, err := repl.NewNode(pst, repl.Primary)
	if err != nil {
		t.Fatal(err)
	}
	psrv := New(pst, Config{Repl: pNode})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- psrv.Serve(ln) }()

	rst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	rNode, err := repl.NewNode(rst, repl.Replica)
	if err != nil {
		t.Fatal(err)
	}
	applierDone := make(chan error, 1)
	go func() {
		applierDone <- rNode.RunApplier(repl.ApplierConfig{
			Addr:        ln.Addr().String(),
			AckEvery:    8,
			AckInterval: 2 * time.Millisecond,
		})
	}()

	// Pump writes and shut down immediately, with the ship stream almost
	// certainly mid-flight.
	c, err := client.Dial(ln.Addr().String(), client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := psrv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	c.Close()
	rNode.Close()
	pNode.Close()
	select {
	case <-applierDone:
	case <-time.After(5 * time.Second):
		t.Fatal("applier did not stop after shutdown")
	}

	// Every acked write made it: the replica's store equals the primary's.
	if !storesEqual(pst, rst) {
		t.Fatal("drain lost acked writes: replica does not match primary")
	}
	for part := 0; part < pst.Partitions(); part++ {
		if rst.ReplLSN(part) != pst.ReplLSN(part) {
			t.Fatalf("partition %d: replica watermark %d, primary %d",
				part, rst.ReplLSN(part), pst.ReplLSN(part))
		}
	}
}

// Client-driven failover: kill the primary, and the failover client
// promotes the replica and keeps serving with no acked write lost.
func TestClientFailover(t *testing.T) {
	pst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	pNode, err := repl.NewNode(pst, repl.Primary)
	if err != nil {
		t.Fatal(err)
	}
	psrv := New(pst, Config{Repl: pNode})
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pDone := make(chan error, 1)
	go func() { pDone <- psrv.Serve(pln) }()

	rst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	rNode, err := repl.NewNode(rst, repl.Replica)
	if err != nil {
		t.Fatal(err)
	}
	_, _, rAddr := startServerOn(t, Config{Repl: rNode}, rst)
	t.Cleanup(rNode.Close)
	applierDone := make(chan error, 1)
	go func() {
		applierDone <- rNode.RunApplier(repl.ApplierConfig{
			Addr:        pln.Addr().String(),
			AckEvery:    4,
			AckInterval: 2 * time.Millisecond,
		})
	}()

	fo, err := client.DialFailover([]string{pln.Addr().String(), rAddr}, client.Options{
		DialTimeout: 200 * time.Millisecond,
		Timeout:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fo.Close() })
	if fo.Addr() != pln.Addr().String() {
		t.Fatalf("failover client picked %s, want the primary %s", fo.Addr(), pln.Addr().String())
	}

	// Durable writes: acked ⇒ on the replica ⇒ must survive the failover.
	for i := 0; i < 20; i++ {
		if err := fo.PutDurable([]byte(fmt.Sprintf("d%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("PutDurable %d: %v", i, err)
		}
	}

	// Hard-kill the primary: drop its listener and connections without a
	// drain.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	psrv.Shutdown(ctx)
	cancel()
	<-pDone
	pNode.Close()

	// The next op fails over: the client promotes the replica and retries.
	if err := fo.Put([]byte("after-failover"), []byte("ok")); err != nil {
		t.Fatalf("Put after primary death: %v", err)
	}
	if fo.Addr() != rAddr {
		t.Fatalf("failover client on %s, want the promoted replica %s", fo.Addr(), rAddr)
	}
	if fo.Epoch() <= 1 {
		t.Fatalf("promotion did not supersede the old epoch: %d", fo.Epoch())
	}

	// Every durable (acked) write survived.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("d%03d", i)
		v, err := fo.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked durable write %s lost across failover: %q, %v", key, v, err)
		}
	}
	if v, err := fo.Get([]byte("after-failover")); err != nil || string(v) != "ok" {
		t.Fatalf("post-failover write: %q, %v", v, err)
	}

	// Promotion stops the reconnect loop: a primary must not keep trying
	// to follow anyone.
	select {
	case <-applierDone:
	case <-time.After(5 * time.Second):
		t.Fatal("applier kept running after promotion")
	}
}

// Satellite of the failover review: a primary with a fence lease stops
// acking writes once its replica has been gone longer than the lease
// (StatusReadOnly -> client.ErrReadOnly), so async acks cannot silently
// diverge from a promoted replica, and resumes as soon as one resubscribes.
func TestFenceLeaseRejectsWrites(t *testing.T) {
	pst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	pNode, err := repl.NewNode(pst, repl.Primary)
	if err != nil {
		t.Fatal(err)
	}
	defer pNode.Close()
	_, _, pAddr := startServerOn(t, Config{Repl: pNode, ReplFenceLease: 25 * time.Millisecond}, pst)

	c, err := client.Dial(pAddr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Inside the grace window the primary still accepts writes.
	if err := c.Put([]byte("before"), []byte("v")); err != nil {
		t.Fatalf("put inside grace window: %v", err)
	}
	// Past the lease with no replica ever subscribed, writes are fenced.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := c.Put([]byte("fenced"), []byte("v"))
		if errors.Is(err, client.ErrReadOnly) {
			break
		}
		if err != nil {
			t.Fatalf("fenced put failed with %v, want ErrReadOnly", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("primary never fenced after the lease expired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if m, err := c.Stats(); err != nil || m["repl_fenced"] != 1 || m["repl_fence_rejects"] == 0 {
		t.Fatalf("fence counters: repl_fenced=%d repl_fence_rejects=%d err=%v",
			m["repl_fenced"], m["repl_fence_rejects"], err)
	}
	// Reads still serve while fenced.
	if v, err := c.Get([]byte("before")); err != nil || string(v) != "v" {
		t.Fatalf("fenced read: %q, %v", v, err)
	}

	// A replica subscribing lifts the fence.
	rst, err := kv.New(replKVOpts())
	if err != nil {
		t.Fatal(err)
	}
	rNode, err := repl.NewNode(rst, repl.Replica)
	if err != nil {
		t.Fatal(err)
	}
	applierDone := make(chan error, 1)
	go func() {
		applierDone <- rNode.RunApplier(repl.ApplierConfig{
			Addr: pAddr, AckEvery: 1, AckInterval: time.Millisecond,
		})
	}()
	defer func() {
		rNode.Close()
		select {
		case err := <-applierDone:
			if err != nil {
				t.Errorf("applier: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("applier did not stop")
		}
	}()
	for {
		err := c.Put([]byte("after"), []byte("v"))
		if err == nil {
			break
		}
		if !errors.Is(err, client.ErrReadOnly) {
			t.Fatalf("put while replica subscribing: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("fence never lifted after the replica subscribed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
