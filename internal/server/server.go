// Package server is the network serving layer over kv.Store: a TCP server
// speaking the internal/wire length-prefixed binary protocol
// (GET/PUT/DEL/SCAN/STATS/PING) with per-connection request pipelining.
//
// Concurrency model. Each connection runs a reader goroutine that decodes
// frames and dispatches every request to a pool of handler workers,
// bounded by a per-connection inflight semaphore — requests on one
// connection complete out of order, exactly what a pipelining client
// wants, and responses carry the request ID so the client can match them.
// Responders hand their frames to a per-connection writer goroutine that
// coalesces everything queued behind the in-flight write, so a pipeline of
// responses shares one syscall. The paper's core claim is that slow NVM persists
// should never block unrelated work; the serving layer extends that to the
// socket: while one request sits in a persist stall, the other inflight
// requests of the same connection (and every other connection) keep
// moving.
//
// Backpressure is explicit and bounded everywhere: the per-connection
// semaphore stalls the reader (TCP pushes back on the client), a global
// inflight limit rejects excess requests with StatusOverloaded rather than
// queueing them, the write batcher's queue is bounded the same way, and
// connections beyond MaxConns are refused at accept. Idle connections are
// reaped by read deadlines.
//
// Graceful drain (SIGINT/SIGTERM in rnserved): stop accepting, stop
// reading new frames, finish every request already read — a response on
// the wire always reflects a durable mutation — flush writers, then the
// caller checkpoints the store (kv.Store.Checkpoint), so recovery after a
// drain takes the clean reconstruction path and loses nothing that was
// acknowledged.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rntree/internal/obj"
	"rntree/internal/repl"
	"rntree/internal/wire"
	"rntree/kv"
)

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// MaxConns caps concurrent connections (default 256); accepts beyond
	// it are closed immediately.
	MaxConns int
	// MaxInflight caps pipelined requests in progress per connection
	// (default 64). A client pipelining deeper stalls in TCP, not in
	// server memory.
	MaxInflight int
	// MaxGlobalInflight caps requests in progress across all connections
	// (default 1024). Beyond it requests are rejected with
	// StatusOverloaded instead of queueing.
	MaxGlobalInflight int
	// IdleTimeout reaps connections with no inflight requests and no
	// traffic (default 2m).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response write (default 10s).
	WriteTimeout time.Duration
	// Batch configures the opt-in cross-connection write batcher.
	Batch BatchConfig
	// Cache configures the opt-in DRAM hot-key cache fronting GETs.
	Cache CacheConfig
	// Repl attaches a replication node (repl.NewNode over the same store);
	// nil disables replication. On a replica-role node, PUT and DEL are
	// rejected with StatusReadOnly (GET/SCAN/STATS serve, possibly stale).
	Repl *repl.Node
	// ReplDurableTimeout bounds how long a durable-ack PUT waits for a
	// replica's ack before failing the request (default 5s). The write
	// stays committed locally either way.
	ReplDurableTimeout time.Duration
	// Obj attaches a typed-object layer (obj.Attach over the same store);
	// nil rejects the typed verbs with StatusErr. The caller owns its
	// lifecycle (Close); the server wires its reap notifications into the
	// hot-key cache and activates it on promotion.
	Obj *obj.Store
	// ReplFenceLease, when positive, fences a primary whose replica
	// subscriptions have all been gone longer than the lease: PUT/DEL are
	// rejected with StatusReadOnly until a replica resubscribes. This
	// closes client-driven failover's divergence window — without it, a
	// primary that lost its replica (but not its own clients) keeps
	// acking async writes that a concurrent promotion on the other side
	// silently strands (DESIGN.md §13.4). 0 (default) disables fencing, so
	// a single node with replication enabled serves writes with no replica
	// attached.
	ReplFenceLease time.Duration
}

func (c *Config) normalize() {
	if c.MaxConns == 0 {
		c.MaxConns = 256
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 64
	}
	if c.MaxGlobalInflight == 0 {
		c.MaxGlobalInflight = 1024
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.ReplDurableTimeout == 0 {
		c.ReplDurableTimeout = 5 * time.Second
	}
	c.Batch.normalize()
	c.Cache.normalize()
}

// Server serves a kv.Store over TCP.
type Server struct {
	cfg     Config
	st      *kv.Store
	batcher *batcher
	// cache is the optional DRAM hot-key cache (cache.go); nil when
	// disabled. Every mutation path (handle's PUT/DEL and the batcher's
	// commit) invalidates through it before acknowledging the client.
	cache *Cache
	// repl is the optional replication node (repl.go); nil when disabled.
	repl *repl.Node
	// obj is the optional typed-object layer; nil when disabled. Expiry
	// masking guards the flat GET path (before the cache), and composite
	// writes invalidate the cache through it.
	obj *obj.Store
	// globalInflight counts requests in progress across all connections.
	// It is a try-acquire-only semaphore (nothing ever blocks on it — over
	// the limit is an immediate StatusOverloaded), so a plain atomic beats
	// a channel: two uncontended channel operations per request are
	// measurable at pipelined rates.
	globalInflight atomic.Int64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[*conn]struct{}
	draining bool
	served   sync.WaitGroup // accept loop + one per live connection

	accepted      atomic.Uint64
	refused       atomic.Uint64
	reaped        atomic.Uint64
	active        atomic.Int64
	requests      atomic.Uint64
	overloads     atomic.Uint64
	replWaits     atomic.Uint64 // durable-ack PUTs that waited for a replica
	replWaitFails atomic.Uint64 // ...that timed out waiting
	fenceRejects  atomic.Uint64 // writes rejected because the primary is fenced
}

// New builds a Server over st.
func New(st *kv.Store, cfg Config) *Server {
	cfg.normalize()
	s := &Server{
		cfg:   cfg,
		st:    st,
		conns: map[*conn]struct{}{},
	}
	if cfg.Cache.Enable {
		s.cache = NewCache(cfg.Cache)
	}
	if cfg.Batch.Puts {
		s.batcher = newBatcher(st, cfg.Batch, s.cache)
	}
	s.repl = cfg.Repl
	s.obj = cfg.Obj
	if s.repl != nil && cfg.ReplFenceLease > 0 {
		s.repl.SetFenceLease(cfg.ReplFenceLease)
	}
	if s.repl != nil && (s.cache != nil || s.obj != nil) {
		// Replica mode: records applied by the applier bypass handle(), so
		// the hot-key cache must be invalidated from the apply path or GETs
		// would serve superseded values forever — and the object layer's
		// DRAM expiry index must track shipped expiry records the same way.
		s.repl.SetApplyHook(func(kind uint8, key, val []byte) {
			if s.cache != nil {
				s.cache.Invalidate(key)
			}
			if s.obj != nil {
				s.obj.OnReplApply(kind, key, val)
			}
		})
	}
	if s.obj != nil && s.cache != nil {
		// A reap deletes the flat key the expirer's composite touches; the
		// ack path for that delete is the reap itself, so the invalidation
		// must ride the reap commit.
		s.obj.SetInvalidate(s.cache.Invalidate)
	}
	return s
}

// Serve accepts connections on ln until Shutdown (returns nil) or a fatal
// listener error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.served.Add(1)
	s.mu.Unlock()
	defer s.served.Done()
	if s.batcher != nil {
		s.batcher.start()
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		if !s.register(c) {
			s.refused.Add(1)
			c.Close()
			continue
		}
	}
}

// Addr returns the listening address (for tests using ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// register admits c unless the server is draining or full.
func (s *Server) register(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || len(s.conns) >= s.cfg.MaxConns {
		return false
	}
	cn := newConn(s, c)
	s.conns[cn] = struct{}{}
	s.accepted.Add(1)
	s.active.Add(1)
	s.served.Add(1)
	go cn.run()
	return true
}

// unregister removes a finished connection.
func (s *Server) unregister(cn *conn) {
	s.mu.Lock()
	delete(s.conns, cn)
	s.mu.Unlock()
	s.active.Add(-1)
	s.served.Done()
}

// Shutdown gracefully drains the server: stop accepting, stop reading new
// frames, finish and acknowledge every request already read, flush and
// close every connection, stop the batcher. If ctx expires first the
// remaining connections are torn down hard and ctx.Err is returned. The
// store itself is left open — the caller owns the checkpoint.
//
// With replication attached the drain is two-phase: client connections
// drain first while replica connections keep shipping and acking (so
// inflight durable-ack PUTs can still complete), then every subscriber's
// ship queue is flushed to its replica's acked watermark — a drained
// primary has handed its replicas every committed record — and only then
// are the replica connections closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already shut down")
	}
	s.draining = true
	ln := s.ln
	var clients, replicas []*conn
	for cn := range s.conns {
		if cn.sub.Load() != nil {
			replicas = append(replicas, cn)
			continue
		}
		clients = append(clients, cn)
		cn.beginDrain()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	// Phase 1: client connections finish (their final durable-ack waits
	// are fed by the still-open replica connections).
	var err error
	for _, cn := range clients {
		select {
		case <-cn.done:
		case <-ctx.Done():
			err = ctx.Err()
		}
		if err != nil {
			break
		}
	}
	// Phase 2: flush each subscriber to its replica's ack watermark. A dead
	// or absent replica cannot be flushed — best effort, the replica will
	// resubscribe from its durable watermarks and heal from the backlog.
	if err == nil {
		for _, cn := range replicas {
			if sub := cn.sub.Load(); sub != nil {
				_ = sub.Flush(ctx)
			}
		}
	}
	// Phase 3: drain everything left (replica connections, stragglers).
	s.mu.Lock()
	for cn := range s.conns {
		cn.beginDrain()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.served.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for cn := range s.conns {
			cn.abort()
		}
		s.mu.Unlock()
		<-done
	}
	if s.batcher != nil {
		// All connections are gone, so the queue is empty and stays so.
		s.batcher.stop()
	}
	return err
}

// Stats is a consistent snapshot of the serving counters. HasBatcher and
// HasCache gate which of the optional counters are meaningful.
type Stats struct {
	ConnsActive   int64
	ConnsAccepted uint64
	ConnsRefused  uint64
	ConnsReaped   uint64
	Requests      uint64
	Overloads     uint64

	HasBatcher  bool
	Batches     uint64
	BatchedPuts uint64

	HasCache bool
	Cache    CacheStats

	HasRepl         bool
	Repl            repl.Stats
	DurableWaits    uint64 // durable-ack PUTs that waited for a replica
	DurableTimeouts uint64 // ...that timed out waiting

	HasObj bool
	Obj    obj.Stats
}

// statsSnapshotRetries bounds the Stats consistency loop; see Stats.
const statsSnapshotRetries = 8

// Stats snapshots the serving counters. The per-field atomics cannot be
// read at one instant, so two mechanisms keep the snapshot consistent.
// First, a bounded seqlock-style loop using the requests counter as the
// sequence word: if no request arrived while the fields were read, the
// snapshot is causally clean and is returned as-is. Under a saturating
// burst that never converges, the fallback is load ordering: every derived
// counter is incremented strictly AFTER the requests counter it depends on
// (dispatch bumps requests before any overload/batch/cache path runs), so
// loading the dependents BEFORE requests guarantees the invariants a
// monitor checks — overloads <= requests, batched_puts <= requests — in
// every interleaving, torn or not.
func (s *Server) Stats() Stats {
	var st Stats
	for try := 0; try < statsSnapshotRetries; try++ {
		before := s.requests.Load()
		st = s.loadStats()
		if st.Requests == before {
			break
		}
	}
	return st
}

// loadStats reads the counters with requests LAST (see Stats for why the
// order is load-bearing).
func (s *Server) loadStats() Stats {
	st := Stats{
		ConnsActive:   s.active.Load(),
		ConnsAccepted: s.accepted.Load(),
		ConnsRefused:  s.refused.Load(),
		ConnsReaped:   s.reaped.Load(),
		Overloads:     s.overloads.Load(),
	}
	if s.batcher != nil {
		st.HasBatcher = true
		st.Batches = s.batcher.batches.Load()
		st.BatchedPuts = s.batcher.puts.Load()
	}
	if s.cache != nil {
		st.HasCache = true
		st.Cache = s.cache.Stats()
	}
	if s.obj != nil {
		st.HasObj = true
		st.Obj = s.obj.Stats()
	}
	if s.repl != nil {
		st.HasRepl = true
		st.Repl = s.repl.NodeStats()
		st.DurableWaits = s.replWaits.Load()
		st.DurableTimeouts = s.replWaitFails.Load()
	}
	st.Requests = s.requests.Load()
	return st
}

// counters snapshots the named server+store counters for STATS.
func (s *Server) counters() []wire.Counter {
	st := s.st.Stats()
	sv := s.Stats()
	out := []wire.Counter{
		{Name: "live_keys", Val: uint64(st.LiveKeys)},
		{Name: "dead_records", Val: uint64(st.DeadRecords)},
		{Name: "partitions", Val: uint64(st.Partitions)},
		{Name: "shards", Val: uint64(st.Shards)},
		{Name: "persists", Val: st.Persists},
		{Name: "tree_leaves", Val: uint64(st.TreeLeaves)},
		{Name: "conns_active", Val: uint64(sv.ConnsActive)},
		{Name: "conns_accepted", Val: sv.ConnsAccepted},
		{Name: "conns_refused", Val: sv.ConnsRefused},
		{Name: "conns_reaped", Val: sv.ConnsReaped},
		{Name: "requests", Val: sv.Requests},
		{Name: "overloads", Val: sv.Overloads},
	}
	if sv.HasBatcher {
		out = append(out,
			wire.Counter{Name: "batches", Val: sv.Batches},
			wire.Counter{Name: "batched_puts", Val: sv.BatchedPuts},
		)
	}
	if sv.HasRepl {
		out = append(out,
			wire.Counter{Name: "repl_role", Val: uint64(sv.Repl.Role)},
			wire.Counter{Name: "repl_epoch", Val: sv.Repl.Epoch},
			wire.Counter{Name: "repl_subscribers", Val: uint64(sv.Repl.Subscribers)},
			wire.Counter{Name: "repl_shipped", Val: sv.Repl.Shipped},
			wire.Counter{Name: "repl_acks", Val: sv.Repl.Acks},
			wire.Counter{Name: "repl_applied", Val: sv.Repl.Applied},
			wire.Counter{Name: "repl_durable_waits", Val: sv.DurableWaits},
			wire.Counter{Name: "repl_durable_timeouts", Val: sv.DurableTimeouts},
			wire.Counter{Name: "repl_fenced", Val: b2u(s.repl.Fenced())},
			wire.Counter{Name: "repl_fence_rejects", Val: s.fenceRejects.Load()},
		)
	}
	if sv.HasCache {
		out = append(out,
			wire.Counter{Name: "cache_hits", Val: sv.Cache.Hits},
			wire.Counter{Name: "cache_misses", Val: sv.Cache.Misses},
			wire.Counter{Name: "cache_fills", Val: sv.Cache.Fills},
			wire.Counter{Name: "cache_fill_aborts", Val: sv.Cache.FillAborts},
			wire.Counter{Name: "cache_invalidations", Val: sv.Cache.Invalidations},
			wire.Counter{Name: "cache_evictions", Val: sv.Cache.Evictions},
			wire.Counter{Name: "cache_admit_rejects", Val: sv.Cache.AdmitRejects},
			wire.Counter{Name: "cache_entries", Val: sv.Cache.Entries},
		)
	}
	if sv.HasObj {
		out = append(out,
			wire.Counter{Name: "obj_reaps", Val: sv.Obj.Reaps},
			wire.Counter{Name: "obj_lazy_expiries", Val: sv.Obj.LazyExpiries},
			wire.Counter{Name: "obj_intents_rolled", Val: sv.Obj.IntentsRolled},
			wire.Counter{Name: "obj_intents_undone", Val: sv.Obj.IntentsUndone},
		)
	}
	return out
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// conn is one client connection.
type conn struct {
	s   *Server
	c   net.Conn
	sem chan struct{} // per-connection inflight tokens

	deadF  atomic.Bool // fatal write error or abort: drop further writes
	drainF atomic.Bool // stop reading new frames

	// reqs feeds a lazily-grown pool of handler workers; pooling reuses
	// goroutines across requests instead of paying a spawn per request.
	reqs    chan wire.Request
	workers atomic.Int32

	// Responders append encoded frames to wBuf and nudge the connection's
	// writer goroutine, which swaps the buffer out and writes it with one
	// syscall. At pipelined rates the syscall is the expensive part of a
	// response, and acks arriving from several batch committers while one
	// write is in flight coalesce into the next — so the syscall count
	// scales with write bursts, not with responses. See client.Client for
	// the matching request-side scheme. wArmed (writer-only) throttles
	// SetWriteDeadline to once per WriteTimeout/4: a timer-heap update per
	// write is measurable and WriteTimeout needs no precision.
	wMu    sync.Mutex
	wBuf   []byte
	wSig   chan struct{} // cap 1: "wBuf is non-empty"
	wStop  chan struct{} // closed by run after the last responder finishes
	wDone  chan struct{} // closed by writeLoop after its final drain
	wArmed time.Time

	// Replication ship stream (repl.go): non-nil sub marks this as a
	// replica connection; shipSeq numbers the unsolicited record frames
	// (touched only by the subscriber's Run goroutine).
	//rnvet:lockorder server.conn.subMu<repl.Node.mu
	subMu   sync.Mutex // serializes subscribe attempts (Subscribe acquires the repl node's lock inside)
	sub     atomic.Pointer[repl.Subscriber]
	shipSeq uint64

	done     chan struct{}  // closed when run finishes (drain phasing)
	inflight sync.WaitGroup // dispatched requests not yet responded
}

func newConn(s *Server, c net.Conn) *conn {
	return &conn{
		s:     s,
		c:     c,
		sem:   make(chan struct{}, s.cfg.MaxInflight),
		reqs:  make(chan wire.Request, s.cfg.MaxInflight),
		wSig:  make(chan struct{}, 1),
		wStop: make(chan struct{}),
		wDone: make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// beginDrain makes the reader stop at the next frame boundary: the flag
// flips first, then the read deadline is yanked so a reader blocked in
// ReadFrame wakes immediately.
func (cn *conn) beginDrain() {
	cn.drainF.Store(true)
	cn.c.SetReadDeadline(time.Now())
}

// abort tears the connection down without waiting (Shutdown past its
// deadline).
func (cn *conn) abort() {
	cn.deadF.Store(true)
	cn.c.Close()
}

// send queues one response frame for the connection's writer goroutine.
// On a dead connection (write error or abort) frames are dropped; the
// client sees the closed socket.
func (cn *conn) send(frame []byte) {
	if cn.deadF.Load() {
		return
	}
	cn.wMu.Lock()
	cn.wBuf = append(cn.wBuf, frame...)
	cn.wMu.Unlock()
	select {
	case cn.wSig <- struct{}{}:
	default:
	}
}

// writeLoop is the connection's writer: each wakeup swaps the accumulated
// frame buffer out under the lock and writes it with one syscall, so every
// response queued while the previous write was in flight rides the next
// one. After wStop it drains whatever the (already finished) responders
// left and exits; run waits on wDone before closing the socket, which is
// what makes a sent response mean a durable, flushed-to-socket ack even
// through a graceful drain.
// writerIdleYields is how many scheduler yields the writer goroutine makes
// with an empty buffer before parking on its signal channel. See writeLoop.
const writerIdleYields = 4

func (cn *conn) writeLoop() {
	defer close(cn.wDone)
	var spare []byte
	for {
		stopping := false
		select {
		case <-cn.wSig:
			// One yield before swapping: a channel wakeup schedules this
			// writer ahead of the rest of the just-woken burst (the
			// runnext slot), which would mean one tiny write per response.
			// Yielding lets the other responders of the burst append their
			// frames first, so the swap takes the whole burst in one write.
			runtime.Gosched()
		case <-cn.wStop:
			stopping = true
		}
		idle := 0
		for {
			cn.wMu.Lock()
			buf := cn.wBuf
			cn.wBuf = spare[:0]
			cn.wMu.Unlock()
			if len(buf) == 0 {
				// Before parking, yield a few beats with the buffer empty:
				// at saturation the responders refill it within a
				// scheduler pass or two, and picking the frames up here
				// coalesces several responses per write syscall. When the
				// connection is idle the yields return immediately and the
				// writer parks on wSig as before.
				spare = buf
				if stopping || idle >= writerIdleYields {
					break
				}
				idle++
				runtime.Gosched()
				continue
			}
			idle = 0
			if now := time.Now(); now.Sub(cn.wArmed) > cn.s.cfg.WriteTimeout/4 {
				cn.c.SetWriteDeadline(now.Add(cn.s.cfg.WriteTimeout))
				cn.wArmed = now
			}
			_, err := cn.c.Write(buf)
			spare = buf[:0]
			if err != nil {
				cn.deadF.Store(true)
				return
			}
		}
		if stopping {
			return
		}
	}
}

// respond encodes and sends a response, then releases the request's
// tokens. It is the single completion point for every dispatched request.
func (cn *conn) respond(r wire.Response) {
	fbuf, _ := framePool.Get().([]byte)
	frame, err := wire.AppendResponse(fbuf[:0], r)
	if err != nil {
		// Response construction bugs must not wedge the pipeline; drop
		// to an encodable error instead.
		frame, _ = wire.AppendResponse(frame[:0], wire.Response{
			ID: r.ID, Status: wire.StatusErr, Op: r.Op, Msg: "server: unencodable response",
		})
	}
	cn.send(frame)
	framePool.Put(frame[:0]) //nolint:staticcheck // []byte pooling is deliberate
	cn.s.globalInflight.Add(-1)
	<-cn.sem
	cn.inflight.Done()
}

// respondBatch encodes several responses back-to-back and sends them as
// one write burst, then releases every request's tokens. The batcher uses
// it to acknowledge one connection's slice of a batch with a single
// buffered write (usually one syscall) instead of a flush per response.
func (cn *conn) respondBatch(rs []wire.Response) {
	fbuf, _ := framePool.Get().([]byte)
	frame := fbuf[:0]
	for _, r := range rs {
		next, err := wire.AppendResponse(frame, r)
		if err != nil {
			next, _ = wire.AppendResponse(frame, wire.Response{
				ID: r.ID, Status: wire.StatusErr, Op: r.Op, Msg: "server: unencodable response",
			})
		}
		frame = next
	}
	cn.send(frame)
	framePool.Put(frame[:0]) //nolint:staticcheck // []byte pooling is deliberate
	cn.s.globalInflight.Add(-int64(len(rs)))
	for range rs {
		<-cn.sem
		cn.inflight.Done()
	}
}

// framePool recycles response-frame buffers: send copies the frame into
// the connection's write buffer before returning, so the buffer is dead by
// the time send comes back.
var framePool sync.Pool

// payloadPool recycles request-payload buffers on the batched-PUT path. A
// decoded request's key/value slices alias its frame payload, so the
// buffer lives exactly as long as the request does; the batcher returns it
// once PutBatch has copied the value into the log. At a couple of KiB per
// durable PUT this is the server's dominant allocation, and recycling it
// keeps the GC out of the steady-state serving loop. Requests that take
// the non-batched path just let the GC have the buffer.
var payloadPool sync.Pool

// run owns the connection lifecycle: pump the reader, drain inflight
// handlers, let the writer flush their final acks, then close.
func (cn *conn) run() {
	defer cn.s.unregister(cn)
	defer close(cn.done)
	go cn.writeLoop()
	cn.readLoop()

	// No new requests past this point. Wait for dispatched handlers to
	// respond, stop the ship stream if this was a replica connection (its
	// queued record frames still drain through the writer below), then stop
	// the writer — it drains every queued frame before wDone — retire the
	// worker pool and close the socket.
	cn.inflight.Wait()
	if sub := cn.sub.Load(); sub != nil {
		sub.Stop()
		<-sub.Done()
	}
	close(cn.reqs)
	close(cn.wStop)
	<-cn.wDone
	cn.c.Close()
}

// readLoop decodes frames and dispatches requests until error, idle
// timeout or drain.
func (cn *conn) readLoop() {
	br := bufio.NewReaderSize(cn.c, 64<<10)
	var armed time.Time
	for {
		if cn.drainF.Load() {
			return
		}
		// Re-arm the idle deadline at most every IdleTimeout/4: a
		// timer-heap update per frame is measurable at pipelined rates and
		// reaping needs no precision. The drainF re-check AFTER the Set
		// closes the drain race: if beginDrain's deadline poke landed
		// between the loop-top check and our Set, our Set overwrote it —
		// but then the flag store (which precedes the poke) is visible
		// here, so we return instead of blocking. If the poke lands after
		// this re-check, it overwrites our deadline and wakes the read.
		if now := time.Now(); now.Sub(armed) > cn.s.cfg.IdleTimeout/4 {
			cn.c.SetReadDeadline(now.Add(cn.s.cfg.IdleTimeout))
			armed = now
			if cn.drainF.Load() {
				return
			}
		}
		// Each frame gets its own payload buffer (pooled when a previous
		// batched PUT has retired one) so the decoded request's key/value
		// slices can alias it for the request's whole lifetime — the
		// dispatch paths are asynchronous, and handing the payload over
		// outright is one 2-KiB memmove cheaper per PUT than reusing the
		// buffer and cloning the slices out of it.
		pbuf, _ := payloadPool.Get().([]byte)
		payload, err := wire.ReadFrame(br, pbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && !cn.drainF.Load() {
				cn.s.reaped.Add(1)
			}
			// Framing/protocol garbage, timeout, EOF: the stream is not
			// trustworthy beyond this point; stop reading. Inflight
			// requests still complete and flush.
			return
		}
		req, err := wire.DecodeRequest(payload)
		if err != nil {
			// Malformed request: the frame boundary was still sound, so
			// report and keep the connection. dispatchReject copies what it
			// needs, so the payload can go straight back to the pool.
			cn.dispatchReject(wire.Request{ID: reqIDBestEffort(payload), Op: wire.OpPing}, wire.StatusErr, err.Error())
			payloadPool.Put(payload[:0]) //nolint:staticcheck // []byte pooling is deliberate
			continue
		}
		if req.Op == wire.OpReplAck {
			// Acks carry no response and take no inflight tokens: they are
			// folded here on the reader, so an ack can never be stuck in the
			// dispatch pipeline behind the very durable-ack PUT it unblocks.
			if sub := cn.sub.Load(); sub != nil {
				sub.Ack(req.ReplLSNs)
			}
			payloadPool.Put(payload[:0]) //nolint:staticcheck // []byte pooling is deliberate
			continue
		}
		cn.dispatch(req, payload)
	}
}

// reqIDBestEffort pulls the request ID out of a payload long enough to
// carry one, so even malformed-request errors can be matched by a client.
func reqIDBestEffort(p []byte) uint64 {
	if len(p) < 8 {
		return 0
	}
	var id uint64
	for _, b := range p[:8] {
		id = id<<8 | uint64(b)
	}
	return id
}

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// dispatch routes one request: acquire the per-connection token (blocking:
// this is the pipelining depth limit), try the global token (rejecting:
// this is overload protection), then hand off to a handler goroutine or
// the batcher. payload is the frame buffer req's slices alias; the batcher
// recycles it after commit, every other route leaves it to the GC.
func (cn *conn) dispatch(req wire.Request, payload []byte) {
	cn.s.requests.Add(1)
	cn.sem <- struct{}{}
	cn.inflight.Add(1)
	if cn.s.globalInflight.Add(1) > int64(cn.s.cfg.MaxGlobalInflight) {
		cn.s.globalInflight.Add(-1)
		cn.s.overloads.Add(1)
		// Re-acquire nothing: respond releases both tokens, so take the
		// global slot's place with a direct completion.
		go func() {
			frame, _ := wire.AppendResponse(nil, wire.Response{ID: req.ID, Status: wire.StatusOverloaded, Op: req.Op})
			cn.send(frame)
			<-cn.sem
			cn.inflight.Done()
		}()
		return
	}
	if req.Op == wire.OpPut && cn.s.batcher != nil && cn.batchablePut(req) {
		if !cn.s.batcher.enqueue(cn, req, payload) {
			cn.s.overloads.Add(1)
			go cn.respond(wire.Response{ID: req.ID, Status: wire.StatusOverloaded, Op: req.Op})
		}
		return
	}
	// The reqs queue has one slot per sem token, so this send never blocks.
	cn.reqs <- req
	// Grow the worker pool while requests are waiting: every queued request
	// deserves its own worker (that is the pipelining), but an idle pool
	// serves a shallow pipeline without spawning.
	if w := cn.workers.Load(); len(cn.reqs) > 0 && int(w) < cap(cn.sem) {
		if cn.workers.CompareAndSwap(w, w+1) {
			go cn.workerLoop()
		}
	}
}

// workerLoop handles requests until the conn's reader closes the feed.
func (cn *conn) workerLoop() {
	for req := range cn.reqs {
		cn.handle(req)
	}
}

// dispatchReject completes a request that never acquired tokens.
func (cn *conn) dispatchReject(req wire.Request, status uint8, msg string) {
	frame, _ := wire.AppendResponse(nil, wire.Response{ID: req.ID, Status: status, Op: req.Op, Msg: msg})
	cn.send(frame)
}

// handle executes one request against the store and responds.
func (cn *conn) handle(req wire.Request) {
	resp := wire.Response{ID: req.ID, Op: req.Op}
	switch req.Op {
	case wire.OpPing:
		resp.Status = wire.StatusOK
	case wire.OpGet:
		if o := cn.s.obj; o != nil {
			if obj.IsInternalKey(req.Key) {
				resp.Status, resp.Msg = wire.StatusErr, errReservedKey
				break
			}
			// Expiry masking BEFORE the cache: an expired-but-unreaped key
			// may still be resident (the reap's invalidation hasn't run yet),
			// and serving it would resurrect a dead value.
			if o.Expired(req.Key) {
				resp.Status = wire.StatusNotFound
				break
			}
		}
		if c := cn.s.cache; c != nil {
			if val, ok := c.Get(req.Key); ok {
				resp.Status = wire.StatusOK
				resp.Val = val
				break
			}
			// Epoch before the store read (cache.go rule 2): a mutation
			// landing between the read and the install aborts the fill.
			epoch := c.FillEpoch(req.Key)
			val, err := cn.s.st.Get(req.Key)
			switch err {
			case nil:
				resp.Status = wire.StatusOK
				resp.Val = val
				c.CommitFill(req.Key, val, epoch)
			case kv.ErrNotFound:
				resp.Status = wire.StatusNotFound
			default:
				resp.Status, resp.Msg = wire.StatusErr, err.Error()
			}
			break
		}
		val, err := cn.s.st.Get(req.Key)
		switch err {
		case nil:
			resp.Status = wire.StatusOK
			resp.Val = val
		case kv.ErrNotFound:
			resp.Status = wire.StatusNotFound
		default:
			resp.Status, resp.Msg = wire.StatusErr, err.Error()
		}
	case wire.OpPut:
		if cn.s.readOnly() {
			resp.Status = wire.StatusReadOnly
			break
		}
		if cn.s.obj != nil && obj.IsInternalKey(req.Key) {
			resp.Status, resp.Msg = wire.StatusErr, errReservedKey
			break
		}
		if req.Durable && cn.s.repl != nil {
			cn.handleDurablePut(req, &resp)
			break
		}
		err := cn.s.st.Put(req.Key, req.Val)
		if c := cn.s.cache; c != nil {
			// After commit, before ack (cache.go rule 1). Error paths
			// invalidate too: it is always safe and spares reasoning about
			// which failures might have touched the store.
			c.Invalidate(req.Key)
		}
		switch err {
		case nil:
			resp.Status = wire.StatusOK
		case kv.ErrClosed:
			resp.Status = wire.StatusClosing
		default:
			resp.Status, resp.Msg = wire.StatusErr, err.Error()
		}
	case wire.OpDel:
		if cn.s.readOnly() {
			resp.Status = wire.StatusReadOnly
			break
		}
		if cn.s.obj != nil && obj.IsInternalKey(req.Key) {
			resp.Status, resp.Msg = wire.StatusErr, errReservedKey
			break
		}
		err := cn.s.st.Delete(req.Key)
		if c := cn.s.cache; c != nil {
			c.Invalidate(req.Key)
		}
		switch err {
		case nil:
			resp.Status = wire.StatusOK
		case kv.ErrNotFound:
			resp.Status = wire.StatusNotFound
		case kv.ErrClosed:
			resp.Status = wire.StatusClosing
		default:
			resp.Status, resp.Msg = wire.StatusErr, err.Error()
		}
	case wire.OpScan:
		resp.Status = wire.StatusOK
		resp.Pairs = cn.scan(req)
	case wire.OpStats:
		resp.Status = wire.StatusOK
		resp.Counters = cn.s.counters()
	case wire.OpReplHello:
		cn.handleReplHello(req, &resp)
	case wire.OpReplSubscribe:
		// Respond before starting the ship loop so the OK frame precedes
		// every shipped record on the wire (send appends in call order).
		sub := cn.handleReplSubscribe(req, &resp)
		cn.respond(resp)
		if sub != nil {
			go sub.Run()
		}
		return
	case wire.OpPromote:
		cn.handlePromote(req, &resp)
		if resp.Status == wire.StatusOK && cn.s.obj != nil {
			// A freshly promoted primary rolls any intents the stream
			// shipped-but-never-resolved forward BEFORE serving writes, so a
			// failover mid-composite never exposes a half-applied object.
			if err := cn.s.obj.Activate(); err != nil {
				resp.Status, resp.Msg = wire.StatusErr, err.Error()
			}
		}
	case wire.OpHSet, wire.OpHGet, wire.OpHDel, wire.OpSAdd, wire.OpSRem,
		wire.OpSMembers, wire.OpExpire, wire.OpTTL, wire.OpPersist:
		cn.handleObj(req, &resp)
	default:
		resp.Status, resp.Msg = wire.StatusErr, fmt.Sprintf("unhandled op %s", wire.OpName(req.Op))
	}
	cn.respond(resp)
}

const errReservedKey = "server: key is in the reserved object namespace"

// objWriteOp reports whether op mutates through the object layer (and must
// respect replica/fence read-only gating plus cache invalidation).
func objWriteOp(op uint8) bool {
	switch op {
	case wire.OpHSet, wire.OpHDel, wire.OpSAdd, wire.OpSRem, wire.OpExpire, wire.OpPersist:
		return true
	}
	return false
}

// handleObj executes one typed-object request. Composite writes invalidate
// the hot-key cache under the object's name after commit, before ack — a
// reap folded into the write (an expired name being rewritten) may have
// deleted the flat key of the same name out from under a cached GET.
func (cn *conn) handleObj(req wire.Request, resp *wire.Response) {
	o := cn.s.obj
	if o == nil {
		resp.Status, resp.Msg = wire.StatusErr, "server: typed objects disabled"
		return
	}
	if objWriteOp(req.Op) && cn.s.readOnly() {
		resp.Status = wire.StatusReadOnly
		return
	}
	var err error
	switch req.Op {
	case wire.OpHSet:
		err = o.HSet(req.Key, req.Field, req.Val)
	case wire.OpHGet:
		resp.Val, err = o.HGet(req.Key, req.Field)
	case wire.OpHDel:
		err = o.HDel(req.Key, req.Field)
	case wire.OpSAdd:
		err = o.SAdd(req.Key, req.Field)
	case wire.OpSRem:
		err = o.SRem(req.Key, req.Field)
	case wire.OpSMembers:
		resp.Members, err = o.SMembers(req.Key)
	case wire.OpExpire:
		err = o.Expire(req.Key, req.TTLMs)
	case wire.OpTTL:
		resp.TTL, err = o.TTL(req.Key)
	case wire.OpPersist:
		err = o.Persist(req.Key)
	}
	if objWriteOp(req.Op) {
		if c := cn.s.cache; c != nil {
			c.Invalidate(req.Key)
		}
	}
	switch err {
	case nil:
		resp.Status = wire.StatusOK
	case kv.ErrNotFound:
		resp.Status = wire.StatusNotFound
	case kv.ErrClosed:
		resp.Status = wire.StatusClosing
	default:
		resp.Status, resp.Msg = wire.StatusErr, err.Error()
	}
}

// scan collects up to ScanMax live pairs with the given key prefix. The
// store's iteration order is hash order — unordered with respect to keys,
// like a Redis SCAN.
func (cn *conn) scan(req wire.Request) []wire.KV {
	max := int(req.ScanMax)
	if max <= 0 || max > 10_000 {
		max = 10_000
	}
	var out []wire.KV
	cn.s.st.Range(func(k, v []byte) bool {
		// Object-layer records are an implementation detail of the typed
		// verbs; a flat SCAN never surfaces them.
		if cn.s.obj != nil && (obj.IsInternalKey(k) || cn.s.obj.Expired(k)) {
			return true
		}
		if len(req.ScanPrefix) > 0 && !hasPrefix(k, req.ScanPrefix) {
			return true
		}
		out = append(out, wire.KV{Key: cloneBytes(k), Val: cloneBytes(v)})
		return len(out) < max
	})
	return out
}

func hasPrefix(b, prefix []byte) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i := range prefix {
		if b[i] != prefix[i] {
			return false
		}
	}
	return true
}
