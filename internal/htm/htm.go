// Package htm emulates Intel Restricted Transactional Memory (RTM) in
// software over a pmem.Arena, preserving the three properties the paper's
// designs rely on (Section 2.2):
//
//  1. Atomic-write-size amplification: stores executed inside a transaction
//     become visible in the (simulated) cache atomically at commit, or not
//     at all — never partially. A crash before commit loses them wholesale,
//     so a 64-byte slot array updated inside a transaction is always either
//     entirely old or entirely new in NVM.
//  2. Cache-line flush instructions abort a transaction: Tx.Persist always
//     aborts, forcing flushes outside transactions exactly as on real RTM.
//  3. Bounded capacity: a transaction touching more distinct cache lines
//     than the configured L1 budget aborts with a capacity abort.
//
// The emulation is a TL2-style software transactional memory: one versioned
// lock word per cache line, buffered writes, read-set validation at commit,
// and a global fallback lock that doubles as the "lock elision" path real
// RTM deployments pair with XBEGIN. Region.Run retries aborted transactions
// a configurable number of times before grabbing the fallback lock, and
// in-flight transactions observing the fallback lock abort — the standard
// RTM subscription pattern.
package htm

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rntree/internal/pmem"
)

// AbortCause classifies why a transaction aborted.
type AbortCause int

const (
	// AbortConflict: another transaction or the fallback lock touched a line
	// in this transaction's footprint.
	AbortConflict AbortCause = iota
	// AbortCapacity: the transaction footprint exceeded the line budget
	// (models L1 capacity, the first HTM limitation in Section 2.2).
	AbortCapacity
	// AbortExplicit: user code called Tx.Abort (XABORT).
	AbortExplicit
	// AbortPersist: user code attempted a cache-line flush inside the
	// transaction (the second HTM limitation in Section 2.2).
	AbortPersist
)

// String names the abort cause.
func (c AbortCause) String() string {
	switch c {
	case AbortConflict:
		return "conflict"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	case AbortPersist:
		return "persist"
	}
	return "unknown"
}

// Stats exposes transaction outcome counters.
type Stats struct {
	Commits        uint64
	ConflictAborts uint64
	CapacityAborts uint64
	ExplicitAborts uint64
	PersistAborts  uint64
	Fallbacks      uint64
	// SpuriousAborts counts aborts injected by the fault-injection model
	// (Config.SpuriousAbortProb): attempts killed before the body ran, as
	// real RTM transactions die to interrupts, TLB shootdowns or cache
	// associativity evictions. They are retried like conflicts but counted
	// separately so experiments can see the injected pressure.
	SpuriousAborts uint64
}

// Config tunes the emulated hardware.
type Config struct {
	// MaxLines is the transaction footprint budget in cache lines. The
	// default (512) models a 32 KiB 8-way L1D.
	MaxLines int
	// MaxRetries is how many times Run re-attempts an aborted transaction
	// before taking the fallback lock. Capacity and persist aborts skip the
	// retries (retrying cannot help, as on real RTM).
	MaxRetries int
	// ForceFallback disables the hardware path entirely: every Run executes
	// under the global fallback lock. This is the "no HTM" ablation — the
	// coarse-grained behaviour a machine without TSX would exhibit.
	ForceFallback bool
	// SpuriousAbortProb injects a seeded spurious abort with this
	// probability per hardware attempt (0 disables). Real RTM transactions
	// abort for reasons unrelated to the footprint — interrupts, TLB
	// shootdowns, associativity misses — and an abort storm must degrade
	// into the fallback path, not livelock. Injected aborts follow the
	// conflict retry path (jittered backoff, then fallback).
	SpuriousAbortProb float64
	// InjectSeed seeds the spurious-abort RNG, making single-threaded
	// injection sequences replayable. Zero uses a fixed default seed.
	InjectSeed int64
}

const (
	defaultMaxLines   = 512
	defaultMaxRetries = 8
)

// Region is an HTM conflict-detection domain covering one arena. All
// transactions that may touch overlapping lines must share a Region.
type Region struct {
	arena *pmem.Arena
	locks []uint64 // per line: bit0 = write-locked, bits 1.. = version
	cfg   Config

	fallbackSeq atomic.Uint64 // odd = fallback lock held

	// injectThreshold is SpuriousAbortProb mapped onto the uint64 range (0
	// = injection off); injectState is the splitmix64 state behind it.
	injectThreshold uint64
	injectState     atomic.Uint64

	stats struct {
		commits        atomic.Uint64
		conflictAborts atomic.Uint64
		capacityAborts atomic.Uint64
		explicitAborts atomic.Uint64
		persistAborts  atomic.Uint64
		fallbacks      atomic.Uint64
		spuriousAborts atomic.Uint64
	}
}

// NewRegion creates an HTM domain over the arena.
func NewRegion(a *pmem.Arena, cfg Config) *Region {
	if cfg.MaxLines <= 0 {
		cfg.MaxLines = defaultMaxLines
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = defaultMaxRetries
	}
	r := &Region{
		arena: a,
		// Sized by Capacity, not Size: the heap grows by committing
		// segments inside its reserved capacity, and the lock table must
		// already cover lines that appear mid-run.
		locks: make([]uint64, a.Capacity()/pmem.LineSize),
		cfg:   cfg,
	}
	if p := cfg.SpuriousAbortProb; p > 0 {
		if p >= 1 {
			// float64(2^64) overflows the uint64 conversion; saturate.
			r.injectThreshold = ^uint64(0)
		} else {
			r.injectThreshold = uint64(p * float64(1<<63) * 2)
		}
		seed := uint64(cfg.InjectSeed)
		if seed == 0 {
			seed = 0x5ca1ab1e
		}
		r.injectState.Store(seed)
	}
	return r
}

// injectSpurious draws from the seeded injection RNG and reports whether
// this hardware attempt should die spuriously.
func (r *Region) injectSpurious() bool {
	if r.injectThreshold == 0 {
		return false
	}
	return splitmix64(r.injectState.Add(0x9e3779b97f4a7c15)) <= r.injectThreshold
}

// splitmix64 finalizes a Weyl-sequence state into a uniform 64-bit value.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Arena returns the underlying arena.
func (r *Region) Arena() *pmem.Arena { return r.arena }

// Stats returns a snapshot of the outcome counters.
func (r *Region) Stats() Stats {
	return Stats{
		Commits:        r.stats.commits.Load(),
		ConflictAborts: r.stats.conflictAborts.Load(),
		CapacityAborts: r.stats.capacityAborts.Load(),
		ExplicitAborts: r.stats.explicitAborts.Load(),
		PersistAborts:  r.stats.persistAborts.Load(),
		Fallbacks:      r.stats.fallbacks.Load(),
		SpuriousAborts: r.stats.spuriousAborts.Load(),
	}
}

// ResetStats zeroes the outcome counters.
func (r *Region) ResetStats() {
	r.stats.commits.Store(0)
	r.stats.conflictAborts.Store(0)
	r.stats.capacityAborts.Store(0)
	r.stats.explicitAborts.Store(0)
	r.stats.persistAborts.Store(0)
	r.stats.fallbacks.Store(0)
	r.stats.spuriousAborts.Store(0)
}

type abortSignal struct {
	cause AbortCause
}

// Transaction footprints are tiny (a slot-array line or two), so the read
// and write sets are inline arrays with linear search — no allocation on
// the hot path, matching real HTM's near-zero bookkeeping cost. The write
// set is line-granular (like the L1 cache that buffers it on real RTM):
// each entry carries up to eight buffered words and a validity mask.
const (
	maxReadSet = 16
	maxWLines  = 8
)

type readEnt struct{ line, ver uint64 }

type lineWrite struct {
	line  uint64 // line index
	mask  uint8  // bit i set: words[i] is buffered
	words [pmem.WordsPerLine]uint64
}

// Tx is an in-flight transaction. It must only be used by the goroutine
// running Region.Run, and never after the Run callback returns.
type Tx struct {
	r        *Region
	fallback bool
	seq      uint64

	nr    int
	reads [maxReadSet]readEnt
	nwl   int
	wl    [maxWLines]lineWrite
}

func (tx *Tx) reset(r *Region, fallback bool, seq uint64) {
	tx.r, tx.fallback, tx.seq = r, fallback, seq
	tx.nr, tx.nwl = 0, 0
}

func (tx *Tx) readVer(line uint64) (uint64, bool) {
	for i := 0; i < tx.nr; i++ {
		if tx.reads[i].line == line {
			return tx.reads[i].ver, true
		}
	}
	return 0, false
}

func (tx *Tx) lineWriteFor(line uint64, create bool) *lineWrite {
	for i := 0; i < tx.nwl; i++ {
		if tx.wl[i].line == line {
			return &tx.wl[i]
		}
	}
	if !create {
		return nil
	}
	if tx.nwl == maxWLines {
		tx.abort(AbortCapacity)
	}
	w := &tx.wl[tx.nwl]
	tx.nwl++
	w.line = line
	w.mask = 0
	return w
}

func (tx *Tx) bufferedVal(off uint64) (uint64, bool) {
	w := tx.lineWriteFor(off/pmem.LineSize, false)
	if w == nil {
		return 0, false
	}
	i := (off % pmem.LineSize) / pmem.WordSize
	if w.mask&(1<<i) == 0 {
		return 0, false
	}
	return w.words[i], true
}

func (tx *Tx) abort(c AbortCause) {
	panic(abortSignal{cause: c})
}

// Abort explicitly aborts the transaction (XABORT). In Run the transaction
// is NOT retried after an explicit abort; Run returns ErrExplicitAbort.
func (tx *Tx) Abort() {
	tx.abort(AbortExplicit)
}

func (tx *Tx) footprint() int {
	n := tx.nr
	for i := 0; i < tx.nwl; i++ {
		if _, ok := tx.readVer(tx.wl[i].line); !ok {
			n++
		}
	}
	return n
}

func (tx *Tx) checkCapacity() {
	if tx.fallback {
		return // the fallback path is ordinary locked code, no L1 budget
	}
	if tx.footprint() > tx.r.cfg.MaxLines {
		tx.abort(AbortCapacity)
	}
}

// trackRead validates and records the version of the line, aborting on
// conflict. In fallback mode it instead waits for the line to unlock.
func (tx *Tx) trackRead(line uint64) {
	if tx.fallback {
		for i := 0; atomic.LoadUint64(&tx.r.locks[line])&1 != 0; i++ {
			spinYield(i)
		}
		return
	}
	// Subscription check on every read: the moment the fallback lock is
	// taken, in-flight hardware transactions abort (real RTM aborts them via
	// coherence on the lock word). This also prevents zombie reads of the
	// fallback path's direct stores.
	if tx.r.fallbackSeq.Load() != tx.seq {
		tx.abort(AbortConflict)
	}
	v := atomic.LoadUint64(&tx.r.locks[line])
	if v&1 != 0 {
		tx.abort(AbortConflict)
	}
	if prev, ok := tx.readVer(line); ok {
		if prev != v {
			tx.abort(AbortConflict)
		}
		return
	}
	if tx.nr == maxReadSet {
		tx.abort(AbortCapacity)
	}
	tx.reads[tx.nr] = readEnt{line, v}
	tx.nr++
	tx.checkCapacity()
}

// postReadValidate re-checks the line version after the data load, closing
// the load/validate race.
func (tx *Tx) postReadValidate(line uint64) {
	if tx.fallback {
		return
	}
	v, _ := tx.readVer(line)
	if atomic.LoadUint64(&tx.r.locks[line]) != v {
		tx.abort(AbortConflict)
	}
}

// Load8 reads an 8-byte word transactionally.
func (tx *Tx) Load8(off uint64) uint64 {
	if v, ok := tx.bufferedVal(off); ok {
		return v
	}
	line := off / pmem.LineSize
	tx.trackRead(line)
	v := tx.r.arena.Read8(off)
	tx.postReadValidate(line)
	return v
}

// Store8 buffers an 8-byte word store; it becomes visible at commit. In
// fallback mode the store executes immediately, as on a real RTM fallback
// path (ordinary locked code).
//
//pmem:volatile transactional stores are made durable by the caller's commit persist after Run returns, never inside the region
func (tx *Tx) Store8(off uint64, v uint64) {
	if tx.fallback {
		tx.r.arena.Write8(off, v)
		return
	}
	w := tx.lineWriteFor(off/pmem.LineSize, true)
	i := (off % pmem.LineSize) / pmem.WordSize
	w.words[i] = v
	w.mask |= 1 << i
	tx.checkCapacity()
}

// LoadLine reads the whole 64-byte line containing off transactionally.
// Buffered stores to the line are folded in.
func (tx *Tx) LoadLine(off uint64, dst *[pmem.LineSize]byte) {
	lineOff := off &^ uint64(pmem.LineSize-1)
	line := lineOff / pmem.LineSize
	tx.trackRead(line)
	tx.r.arena.ReadLine(lineOff, dst)
	tx.postReadValidate(line)
	for w := uint64(0); w < pmem.WordsPerLine; w++ {
		if v, ok := tx.bufferedVal(lineOff + w*pmem.WordSize); ok {
			putWord(dst[w*pmem.WordSize:], v)
		}
	}
}

// StoreLine buffers a store of all 64 bytes of the line containing off.
//
//pmem:volatile transactional stores are made durable by the caller's commit persist after Run returns, never inside the region
func (tx *Tx) StoreLine(off uint64, src *[pmem.LineSize]byte) {
	lineOff := off &^ uint64(pmem.LineSize-1)
	if tx.fallback {
		tx.r.arena.WriteLine(lineOff, src)
		return
	}
	w := tx.lineWriteFor(lineOff/pmem.LineSize, true)
	w.mask = 0xff
	for i := uint64(0); i < pmem.WordsPerLine; i++ {
		w.words[i] = getWord(src[i*pmem.WordSize:])
	}
	tx.checkCapacity()
}

// Persist models a CLWB/CLFLUSH inside a transaction: it always aborts
// (Section 2.2: "cache-line flush instructions inside a transaction will
// always abort the transaction"). Run responds by executing the body under
// the fallback lock, where pmem.Arena.Persist is legal.
func (tx *Tx) Persist(off, size uint64) {
	if tx.fallback {
		tx.r.arena.Persist(off, size)
		return
	}
	tx.abort(AbortPersist)
}

// InFallback reports whether the transaction is running under the fallback
// lock rather than as a hardware transaction.
func (tx *Tx) InFallback() bool { return tx.fallback }

// commit publishes buffered writes atomically. Returns false on conflict.
//
//pmem:volatile commit drains the write buffer to cache lines; durability is the caller's commit persist after Run returns (a flush here would have aborted the transaction, §2.2)
func (tx *Tx) commit() bool {
	if tx.fallback {
		// Stores already executed directly; exclusivity against the hardware
		// path is guaranteed by the per-read subscription check.
		return true
	}
	if tx.nwl == 0 {
		// Read-only: validate the read set and the fallback subscription.
		if tx.r.fallbackSeq.Load() != tx.seq {
			return false
		}
		for i := 0; i < tx.nr; i++ {
			if atomic.LoadUint64(&tx.r.locks[tx.reads[i].line]) != tx.reads[i].ver {
				return false
			}
		}
		return true
	}
	// Sort the write set by line index for deadlock-free lock acquisition.
	ws := tx.wl[:tx.nwl]
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].line < ws[j-1].line; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	locked := 0
	for i := range ws {
		l := ws[i].line
		v, ok := tx.readVer(l)
		if !ok {
			v = atomic.LoadUint64(&tx.r.locks[l])
			if v&1 != 0 {
				break
			}
		}
		if !atomic.CompareAndSwapUint64(&tx.r.locks[l], v, v|1) {
			break
		}
		locked++
	}
	ok := locked == len(ws)
	// Fallback subscription: abort if the fallback lock was taken (or cycled)
	// since we began.
	if ok && tx.r.fallbackSeq.Load() != tx.seq {
		ok = false
	}
	// Validate reads outside the write set.
	if ok {
	outer:
		for i := 0; i < tx.nr; i++ {
			line := tx.reads[i].line
			for j := range ws {
				if ws[j].line == line {
					continue outer
				}
			}
			if atomic.LoadUint64(&tx.r.locks[line]) != tx.reads[i].ver {
				ok = false
				break
			}
		}
	}
	if !ok {
		for i := 0; i < locked; i++ {
			l := ws[i].line
			atomic.StoreUint64(&tx.r.locks[l], tx.lockedBase(l))
		}
		return false
	}
	for i := range ws {
		w := &ws[i]
		if w.mask == 0xff {
			tx.r.arena.WriteLineWords(w.line*pmem.LineSize, &w.words)
		} else {
			for b := uint64(0); b < pmem.WordsPerLine; b++ {
				if w.mask&(1<<b) != 0 {
					tx.r.arena.Write8(w.line*pmem.LineSize+b*pmem.WordSize, w.words[b])
				}
			}
		}
	}
	for i := range ws {
		l := ws[i].line
		atomic.StoreUint64(&tx.r.locks[l], tx.lockedBase(l)+2)
	}
	return true
}

// lockedBase returns the pre-lock version word for line l (what to restore
// or increment from).
func (tx *Tx) lockedBase(l uint64) uint64 {
	return atomic.LoadUint64(&tx.r.locks[l]) &^ 1
}

// Outcome reports how a Run executed, for tests and statistics.
type Outcome struct {
	// Attempts is the number of hardware attempts made (including the
	// successful one, if any).
	Attempts int
	// Fallback is true if the body finally ran under the fallback lock.
	Fallback bool
	// LastAbort is the cause of the last hardware abort, valid when
	// Attempts > 0 and the first attempt did not commit.
	LastAbort AbortCause
}

// ErrExplicitAbort is returned by Run when the body called Tx.Abort.
type ErrExplicitAbortT struct{}

func (ErrExplicitAbortT) Error() string { return "htm: transaction explicitly aborted" }

// ErrExplicitAbort is the error returned by Run after Tx.Abort.
var ErrExplicitAbort = ErrExplicitAbortT{}

// Run executes body as a transaction, retrying on conflicts and falling back
// to the global lock on capacity/persist aborts or after MaxRetries
// conflicts — the canonical RTM lock-elision loop. Returns ErrExplicitAbort
// if body called Tx.Abort; otherwise nil after a successful commit.
func (r *Region) Run(body func(*Tx)) error {
	out, err := r.RunOutcome(body) //htm:safe pure delegation; the body closure is verified at each caller's Run call site
	_ = out
	return err
}

// RunOutcome is Run plus execution diagnostics.
func (r *Region) RunOutcome(body func(*Tx)) (Outcome, error) {
	var out Outcome
	tx := txPool.Get().(*Tx)
	defer txPool.Put(tx)
	var jitter uint64 // lazily seeded per-Run backoff RNG state
	for attempt := 0; attempt < r.cfg.MaxRetries && !r.cfg.ForceFallback; attempt++ {
		// Spurious-abort injection: the attempt dies before the body runs,
		// as a real transaction dies to an interrupt mid-flight. Retried
		// with the same backoff as a conflict.
		if r.injectSpurious() {
			r.stats.spuriousAborts.Add(1)
			out.Attempts++
			out.LastAbort = AbortConflict
			r.conflictBackoff(attempt, &jitter)
			continue
		}
		// Subscribe to the fallback lock: wait while held, remember the seq.
		seq := r.waitFallbackFree()
		tx.reset(r, false, seq)
		out.Attempts++
		cause, ok := r.attempt(tx, body)
		if ok {
			r.stats.commits.Add(1)
			return out, nil
		}
		out.LastAbort = cause
		switch cause {
		case AbortExplicit:
			r.stats.explicitAborts.Add(1)
			return out, ErrExplicitAbort
		case AbortConflict:
			r.stats.conflictAborts.Add(1)
			r.conflictBackoff(attempt, &jitter)
			continue
		case AbortCapacity:
			r.stats.capacityAborts.Add(1)
		case AbortPersist:
			r.stats.persistAborts.Add(1)
		}
		break // capacity/persist: retrying cannot help
	}
	// Fallback path: global lock, direct execution, persists allowed.
	out.Fallback = true
	r.stats.fallbacks.Add(1)
	r.acquireFallback()
	defer r.releaseFallback()
	tx.reset(r, true, 0)
	cause, ok := r.attempt(tx, body)
	if !ok {
		if cause == AbortExplicit {
			r.stats.explicitAborts.Add(1)
			return out, ErrExplicitAbort
		}
		panic("htm: fallback transaction aborted with " + cause.String())
	}
	r.stats.commits.Add(1)
	return out, nil
}

// attempt runs body inside tx, converting abort panics into (cause, false).
func (r *Region) attempt(tx *Tx, body func(*Tx)) (cause AbortCause, ok bool) {
	defer func() {
		if p := recover(); p != nil {
			if sig, is := p.(abortSignal); is {
				cause, ok = sig.cause, false
				return
			}
			panic(p)
		}
	}()
	body(tx)
	if tx.commit() {
		return 0, true
	}
	return AbortConflict, false
}

func (r *Region) waitFallbackFree() uint64 {
	for i := 0; ; i++ {
		seq := r.fallbackSeq.Load()
		if seq&1 == 0 {
			return seq
		}
		spinYield(i)
	}
}

func (r *Region) acquireFallback() {
	for i := 0; ; i++ {
		seq := r.fallbackSeq.Load()
		if seq&1 == 0 && r.fallbackSeq.CompareAndSwap(seq, seq+1) {
			return
		}
		spinYield(i)
	}
}

func (r *Region) releaseFallback() {
	r.fallbackSeq.Add(1)
}

// FallbackHeld reports whether the fallback lock is currently held.
func (r *Region) FallbackHeld() bool { return r.fallbackSeq.Load()&1 == 1 }

func putWord(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

func getWord(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

var txPool = sync.Pool{New: func() any { return new(Tx) }}

// backoffSeed derives a distinct jitter stream for each Run invocation so
// threads that abort together do not retry in lock-step.
var backoffSeed atomic.Uint64

// conflictBackoff spins for a jittered, exponentially growing interval before
// the next hardware attempt. Desynchronizing retries breaks the abort storms
// that immediate retry invites when many threads contend on one line; it is
// used only for conflict-class aborts — capacity and persist aborts go
// straight to the fallback path, where waiting cannot help.
func (r *Region) conflictBackoff(attempt int, state *uint64) {
	if *state == 0 {
		*state = backoffSeed.Add(0x9e3779b97f4a7c15) | 1
	}
	if attempt > 8 {
		attempt = 8
	}
	*state += 0x9e3779b97f4a7c15
	ceil := uint64(16) << uint(attempt)
	spins := ceil/2 + splitmix64(*state)%(ceil/2+1) // jitter in [ceil/2, ceil]
	for i := uint64(0); i < spins; i++ {
		if i&255 == 255 {
			runtime.Gosched()
		}
	}
}

func spinYield(i int) {
	if i < 6 {
		for j := 0; j < 1<<uint(i); j++ {
			_ = j
		}
		return
	}
	runtime.Gosched()
}
