package htm

import (
	"sync"
	"testing"
	"testing/quick"

	"rntree/internal/pmem"
)

func newRegion(t *testing.T, size uint64, cfg Config) *Region {
	t.Helper()
	return NewRegion(pmem.New(pmem.Config{Size: size, VolatileAlloc: true}), cfg)
}

func TestCommitPublishesWrites(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	err := r.Run(func(tx *Tx) {
		tx.Store8(128, 7)
		tx.Store8(136, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Arena().Read8(128) != 7 || r.Arena().Read8(136) != 8 {
		t.Fatal("committed writes not visible")
	}
	if s := r.Stats(); s.Commits != 1 {
		t.Fatalf("commits = %d", s.Commits)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	err := r.Run(func(tx *Tx) {
		tx.Store8(128, 42)
		if tx.Load8(128) != 42 {
			t.Error("did not read own write")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	err := r.Run(func(tx *Tx) {
		tx.Store8(128, 99)
		tx.Abort()
	})
	if err != ErrExplicitAbort {
		t.Fatalf("err = %v", err)
	}
	if r.Arena().Read8(128) != 0 {
		t.Fatal("aborted write leaked")
	}
	if s := r.Stats(); s.ExplicitAborts != 1 || s.Commits != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCapacityAbortFallsBack(t *testing.T) {
	r := newRegion(t, 1<<20, Config{MaxLines: 4})
	out, err := r.RunOutcome(func(tx *Tx) {
		for i := uint64(0); i < 16; i++ {
			tx.Store8(pmem.RootSize+i*pmem.LineSize, i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fallback {
		t.Fatal("capacity overflow should run in fallback")
	}
	if s := r.Stats(); s.CapacityAborts != 1 || s.Fallbacks != 1 {
		t.Fatalf("stats %+v", s)
	}
	for i := uint64(0); i < 16; i++ {
		if r.Arena().Read8(pmem.RootSize+i*pmem.LineSize) != i {
			t.Fatal("fallback writes lost")
		}
	}
}

func TestPersistInsideAborts(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	out, err := r.RunOutcome(func(tx *Tx) {
		tx.Store8(128, 5)
		tx.Persist(128, 8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fallback {
		t.Fatal("persist inside transaction must force fallback")
	}
	if r.Arena().NVMRead8(128) != 5 {
		t.Fatal("fallback persist did not reach NVM")
	}
	if s := r.Stats(); s.PersistAborts != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestUncommittedWritesNeverInCrashImage(t *testing.T) {
	r := newRegion(t, 1<<16, Config{MaxLines: 4})
	// Abort mid-transaction: buffered stores must not be evictable.
	_ = r.Run(func(tx *Tx) {
		tx.Store8(256, 0xbad)
		tx.Abort()
	})
	img := r.Arena().CrashImage(nil, 1.0) // evict everything dirty
	rec := pmem.Recover(img, pmem.Config{})
	if rec.Read8(256) != 0 {
		t.Fatal("uncommitted transactional store reached a crash image")
	}
}

func TestLineRoundTripInTx(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	var line [pmem.LineSize]byte
	for i := range line {
		line[i] = byte(i)
	}
	if err := r.Run(func(tx *Tx) { tx.StoreLine(640, &line) }); err != nil {
		t.Fatal(err)
	}
	var got [pmem.LineSize]byte
	if err := r.Run(func(tx *Tx) { tx.LoadLine(640, &got) }); err != nil {
		t.Fatal(err)
	}
	if got != line {
		t.Fatal("line mismatch through transactions")
	}
}

func TestLoadLineSeesBufferedStores(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	err := r.Run(func(tx *Tx) {
		tx.Store8(640, 0x1122334455667788)
		var got [pmem.LineSize]byte
		tx.LoadLine(640, &got)
		if got[0] != 0x88 || got[7] != 0x11 {
			t.Error("LoadLine missed buffered store")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomicCounterNoLostUpdates(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	const workers = 8
	const per = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := r.Run(func(tx *Tx) {
					tx.Store8(128, tx.Load8(128)+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Arena().Read8(128); got != workers*per {
		t.Fatalf("counter = %d, want %d (isolation violated)", got, workers*per)
	}
}

func TestMultiLineAtomicity(t *testing.T) {
	// Two words on different lines are always updated together; readers must
	// never observe them out of sync.
	r := newRegion(t, 1<<16, Config{})
	const a, b = uint64(128), uint64(1024)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.Run(func(tx *Tx) {
				tx.Store8(a, i)
				tx.Store8(b, i)
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 3000; i++ {
		var va, vb uint64
		if err := r.Run(func(tx *Tx) {
			va = tx.Load8(a)
			vb = tx.Load8(b)
		}); err != nil {
			t.Fatal(err)
		}
		if va != vb {
			close(stop)
			wg.Wait()
			t.Fatalf("torn read: %d != %d", va, vb)
		}
	}
	close(stop)
	wg.Wait()
}

func TestFallbackExcludesHardwarePath(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	var wg sync.WaitGroup
	// One goroutine hammers the fallback path (persist forces it), another
	// uses the hardware path on the same line; the counter must stay exact.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				err := r.Run(func(tx *Tx) {
					v := tx.Load8(128)
					if w == 0 {
						tx.Persist(128, 8) // aborts -> fallback
					}
					tx.Store8(128, v+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Arena().Read8(128); got != 600 {
		t.Fatalf("counter = %d, want 600", got)
	}
}

func TestOutcomeAttempts(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	out, err := r.RunOutcome(func(tx *Tx) { tx.Store8(128, 1) })
	if err != nil || out.Attempts != 1 || out.Fallback {
		t.Fatalf("out=%+v err=%v", out, err)
	}
}

func TestReadOnlyTxCommits(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	r.Arena().Write8(128, 77)
	var got uint64
	if err := r.Run(func(tx *Tx) { got = tx.Load8(128) }); err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("got %d", got)
	}
}

func TestResetStats(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	_ = r.Run(func(tx *Tx) { tx.Store8(128, 1) })
	r.ResetStats()
	if s := r.Stats(); s.Commits != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

// Property: for any sequence of per-key increments spread across goroutines,
// the final state equals the sequential result.
func TestQuickSerializableIncrements(t *testing.T) {
	f := func(keys []uint8) bool {
		r := NewRegion(pmem.New(pmem.Config{Size: 1 << 16, VolatileAlloc: true}), Config{})
		want := make(map[uint64]uint64)
		var wg sync.WaitGroup
		for shard := 0; shard < 4; shard++ {
			wg.Add(1)
			go func(shard int) {
				defer wg.Done()
				for i, k := range keys {
					if i%4 != shard {
						continue
					}
					off := pmem.RootSize + uint64(k)*8
					_ = r.Run(func(tx *Tx) { tx.Store8(off, tx.Load8(off)+1) })
				}
			}(shard)
		}
		wg.Wait()
		for _, k := range keys {
			want[pmem.RootSize+uint64(k)*8]++
		}
		for off, v := range want {
			if r.Arena().Read8(off) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
