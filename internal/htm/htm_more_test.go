package htm

import (
	"runtime"
	"sync"
	"testing"

	"rntree/internal/pmem"
)

func TestMixedStore8AndStoreLineSameLine(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	var line [pmem.LineSize]byte
	for i := range line {
		line[i] = 0xAA
	}
	err := r.Run(func(tx *Tx) {
		tx.Store8(640, 7)        // partial write first
		tx.StoreLine(640, &line) // whole line overwrites it
		tx.Store8(648, 9)        // then another partial on top
		if tx.Load8(640) != 0xAAAAAAAAAAAAAAAA {
			t.Error("StoreLine did not overwrite buffered word")
		}
		if tx.Load8(648) != 9 {
			t.Error("partial store on top of StoreLine lost")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Arena().Read8(648) != 9 {
		t.Fatal("committed mixed-line state wrong")
	}
	if r.Arena().Read8(656) != 0xAAAAAAAAAAAAAAAA {
		t.Fatal("line body lost")
	}
}

func TestManyLinesForcesFallback(t *testing.T) {
	r := newRegion(t, 1<<20, Config{})
	// More distinct write lines than the inline write-set can hold: the
	// transaction takes a capacity abort and completes via fallback.
	out, err := r.RunOutcome(func(tx *Tx) {
		for i := uint64(0); i < 12; i++ {
			tx.Store8(pmem.RootSize+i*pmem.LineSize, i+1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fallback {
		t.Fatal("expected fallback for wide write set")
	}
	for i := uint64(0); i < 12; i++ {
		if r.Arena().Read8(pmem.RootSize+i*pmem.LineSize) != i+1 {
			t.Fatalf("line %d lost", i)
		}
	}
}

func TestWideReadSetForcesFallback(t *testing.T) {
	r := newRegion(t, 1<<20, Config{})
	out, err := r.RunOutcome(func(tx *Tx) {
		s := uint64(0)
		for i := uint64(0); i < 24; i++ {
			s += tx.Load8(pmem.RootSize + i*pmem.LineSize)
		}
		tx.Store8(pmem.RootSize, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fallback {
		t.Fatal("expected fallback for wide read set")
	}
}

func TestForceFallbackConfig(t *testing.T) {
	r := newRegion(t, 1<<16, Config{ForceFallback: true})
	out, err := r.RunOutcome(func(tx *Tx) {
		if !tx.InFallback() {
			t.Error("ForceFallback transaction ran on the hardware path")
		}
		tx.Store8(128, 5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Fallback || out.Attempts != 0 {
		t.Fatalf("outcome %+v", out)
	}
	if r.Arena().Read8(128) != 5 {
		t.Fatal("fallback write lost")
	}
	// Mutual exclusion still holds.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_ = r.Run(func(tx *Tx) { tx.Store8(128, tx.Load8(128)+1) })
			}
		}()
	}
	wg.Wait()
	if got := r.Arena().Read8(128); got != 5+2000 {
		t.Fatalf("counter = %d", got)
	}
}

func TestStoreLineTwiceSameTx(t *testing.T) {
	r := newRegion(t, 1<<16, Config{})
	var a, b [pmem.LineSize]byte
	for i := range a {
		a[i], b[i] = 1, 2
	}
	if err := r.Run(func(tx *Tx) {
		tx.StoreLine(640, &a)
		tx.StoreLine(640, &b) // second store wins
	}); err != nil {
		t.Fatal(err)
	}
	var got [pmem.LineSize]byte
	r.Arena().ReadLine(640, &got)
	if got != b {
		t.Fatal("second StoreLine did not win")
	}
}

func TestConcurrentDisjointLinesAllCommitHardware(t *testing.T) {
	r := newRegion(t, 1<<20, Config{})
	var wg sync.WaitGroup
	fallbacks0 := r.Stats().Fallbacks
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			off := pmem.RootSize + uint64(w)*pmem.LineSize*4
			for i := uint64(0); i < 2000; i++ {
				if err := r.Run(func(tx *Tx) { tx.Store8(off, i) }); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Disjoint lines: no conflicts expected, so the fallback path should be
	// (almost) untouched.
	if fb := r.Stats().Fallbacks - fallbacks0; fb > 10 {
		t.Fatalf("disjoint writers fell back %d times", fb)
	}
}

func TestNoTornReadsAcrossFallbackStores(t *testing.T) {
	// The fallback path executes direct (unbuffered) stores. In-flight
	// hardware transactions must abort via the subscription check rather
	// than commit a view that mixes pre- and post-fallback state.
	r := newRegion(t, 1<<16, Config{})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Persist inside the body forces the fallback path, which then
			// updates two distant lines with direct stores.
			_ = r.Run(func(tx *Tx) {
				tx.Store8(128, i)
				tx.Persist(128, 8)
				tx.Store8(1024, i)
				tx.Persist(1024, 8)
			})
		}
	}()
	// Let the writer reach the fallback path at least once before probing.
	for i := 0; r.Stats().Fallbacks == 0 && i < 1_000_000; i++ {
		runtime.Gosched()
	}
	for i := 0; i < 5000; i++ {
		var a, b uint64
		if err := r.Run(func(tx *Tx) {
			a = tx.Load8(128)
			b = tx.Load8(1024)
		}); err != nil {
			t.Fatal(err)
		}
		if a != b {
			close(stop)
			<-done
			t.Fatalf("committed torn read across fallback stores: %d != %d", a, b)
		}
	}
	close(stop)
	<-done
	if s := r.Stats(); s.Fallbacks == 0 {
		t.Fatal("writer never took the fallback path")
	}
}
