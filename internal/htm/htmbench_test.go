package htm

import (
	"testing"

	"rntree/internal/pmem"
)

func BenchmarkTxSnapshot(b *testing.B) {
	r := NewRegion(pmem.New(pmem.Config{Size: 1 << 20, VolatileAlloc: true}), Config{})
	var line [pmem.LineSize]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Run(func(tx *Tx) { tx.LoadLine(4096, &line) })
	}
}

func BenchmarkTxStoreLine(b *testing.B) {
	r := NewRegion(pmem.New(pmem.Config{Size: 1 << 20, VolatileAlloc: true}), Config{})
	var line [pmem.LineSize]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Run(func(tx *Tx) { tx.StoreLine(4096, &line) })
	}
}
