package htm

import (
	"sync"
	"testing"

	"rntree/internal/pmem"
)

// Spurious-abort injection must never affect correctness: every transaction
// still commits (by retry or fallback), writes stay intact, and the injected
// aborts show up in the stats.
func TestSpuriousAbortInjectionCommitsEverything(t *testing.T) {
	r := newRegion(t, 1<<16, Config{SpuriousAbortProb: 0.5, InjectSeed: 7})
	const n = 500
	for i := 0; i < n; i++ {
		off := pmem.RootSize + uint64(i%64)*8
		if err := r.Run(func(tx *Tx) { tx.Store8(off, tx.Load8(off)+1) }); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	var total uint64
	for i := 0; i < 64; i++ {
		total += r.Arena().Read8(pmem.RootSize + uint64(i)*8)
	}
	if total != n {
		t.Fatalf("lost updates: sum = %d, want %d", total, n)
	}
	s := r.Stats()
	if s.SpuriousAborts == 0 {
		t.Fatal("no spurious aborts injected at p=0.5")
	}
	if s.Commits+s.Fallbacks < n {
		t.Fatalf("commits=%d fallbacks=%d, want >= %d combined", s.Commits, s.Fallbacks, n)
	}
}

// At p=1 every hardware attempt dies, so each Run must fall back and still
// succeed — the storm path terminates.
func TestSpuriousAbortStormFallsBack(t *testing.T) {
	r := newRegion(t, 1<<16, Config{SpuriousAbortProb: 1.0})
	if err := r.Run(func(tx *Tx) { tx.Store8(128, 5) }); err != nil {
		t.Fatal(err)
	}
	if r.Arena().Read8(128) != 5 {
		t.Fatal("write lost under full injection")
	}
	s := r.Stats()
	if s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
	if s.SpuriousAborts == 0 {
		t.Fatal("spurious counter not bumped")
	}
}

// Same seed, same single-threaded workload: the injection decisions — and so
// the attempt counts — must be identical run to run.
func TestSpuriousAbortInjectionDeterministic(t *testing.T) {
	trace := func() []int {
		r := newRegion(t, 1<<16, Config{SpuriousAbortProb: 0.3, InjectSeed: 99})
		var attempts []int
		for i := 0; i < 200; i++ {
			out, err := r.RunOutcome(func(tx *Tx) { tx.Store8(128, uint64(i)) })
			if err != nil {
				t.Fatal(err)
			}
			attempts = append(attempts, out.Attempts)
		}
		return attempts
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: attempts %d vs %d — injection not deterministic", i, a[i], b[i])
		}
	}
}

// Concurrent counter increments under 10% injection: exercised with -race in
// CI; the jittered backoff plus fallback must preserve every update.
func TestSpuriousAbortInjectionConcurrent(t *testing.T) {
	r := newRegion(t, 1<<16, Config{SpuriousAbortProb: 0.10, InjectSeed: 3})
	const (
		workers = 8
		perG    = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if err := r.Run(func(tx *Tx) { tx.Store8(256, tx.Load8(256)+1) }); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Arena().Read8(256); got != workers*perG {
		t.Fatalf("counter = %d, want %d", got, workers*perG)
	}
	if r.Stats().SpuriousAborts == 0 {
		t.Fatal("expected injected aborts at p=0.10")
	}
}
