package hist

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestBucketRoundTrip(t *testing.T) {
	for _, ns := range []uint64{0, 1, 15, 16, 17, 100, 999, 1 << 20, 1<<40 + 12345} {
		b := bucketOf(ns)
		lo := bucketLow(b)
		hi := bucketLow(b + 1)
		if ns < lo || (ns >= hi && hi > lo) {
			t.Fatalf("ns=%d bucket=%d range=[%d,%d)", ns, b, lo, hi)
		}
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for ns := uint64(0); ns < 1<<22; ns += 97 {
		b := bucketOf(ns)
		if b < prev {
			t.Fatalf("bucket not monotone at %d", ns)
		}
		prev = b
	}
}

func TestMeanAndCount(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	mean := h.Mean()
	if mean < 49*time.Microsecond || mean > 52*time.Microsecond {
		t.Fatalf("mean %v", mean)
	}
}

func TestPercentileApprox(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		h.Record(time.Duration(rng.Intn(1_000_000)) * time.Nanosecond)
	}
	p50 := h.Percentile(50).Nanoseconds()
	if p50 < 400_000 || p50 > 600_000 {
		t.Fatalf("p50 = %d", p50)
	}
	p99 := h.Percentile(99).Nanoseconds()
	if p99 < 900_000 {
		t.Fatalf("p99 = %d", p99)
	}
	if h.Percentile(99) < h.Percentile(50) {
		t.Fatal("percentiles not monotone")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				h.Record(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80_000 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b Histogram
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count %d", a.Count())
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Fatal("reset incomplete")
	}
}
