// Package hist provides a lock-free log-bucketed latency histogram for the
// latency experiments (Figure 9): concurrent workers record durations with a
// single atomic add; percentiles and means are computed from a snapshot.
package hist

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits linear sub-buckets per power-of-two bucket keep relative
	// error under ~6%.
	subBits    = 4
	subBuckets = 1 << subBits
	nBuckets   = 64 * subBuckets
)

// Histogram records durations in nanoseconds. The zero value is ready to
// use and safe for concurrent Record calls.
type Histogram struct {
	counts [nBuckets]atomic.Uint64
	sum    atomic.Uint64
	n      atomic.Uint64
}

func bucketOf(ns uint64) int {
	if ns < subBuckets {
		return int(ns)
	}
	exp := bits.Len64(ns) - 1 - subBits
	sub := (ns >> uint(exp)) & (subBuckets - 1)
	return (exp+1)<<subBits + int(sub)
}

func bucketLow(b int) uint64 {
	exp := b >> subBits
	sub := uint64(b & (subBuckets - 1))
	if exp == 0 {
		return sub
	}
	return (subBuckets + sub) << uint(exp-1)
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d.Nanoseconds())
	h.counts[bucketOf(ns)].Add(1)
	h.sum.Add(ns)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Mean returns the average observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Percentile returns the approximate p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	target := uint64(p / 100 * float64(n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < nBuckets; b++ {
		cum += h.counts[b].Load()
		if cum >= target {
			return time.Duration(bucketLow(b))
		}
	}
	return time.Duration(bucketLow(nBuckets - 1))
}

// Merge adds the counts of other into h. Not atomic with respect to
// concurrent Record calls on other.
func (h *Histogram) Merge(other *Histogram) {
	for b := 0; b < nBuckets; b++ {
		if c := other.counts[b].Load(); c != 0 {
			h.counts[b].Add(c)
		}
	}
	h.sum.Add(other.sum.Load())
	h.n.Add(other.n.Load())
}

// Reset zeroes the histogram. Not safe concurrently with Record.
func (h *Histogram) Reset() {
	for b := 0; b < nBuckets; b++ {
		h.counts[b].Store(0)
	}
	h.sum.Store(0)
	h.n.Store(0)
}

// String summarises the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Percentile(99.9))
}
