package inner

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

// model is a reference implementation: a sorted slice of pairs.
type model struct {
	pairs []Pair
}

func newModel(leaf uint64) *model { return &model{pairs: []Pair{{Sep: 0, Leaf: leaf}}} }

func (m *model) seek(key uint64) uint64 {
	i := sort.Search(len(m.pairs), func(i int) bool { return m.pairs[i].Sep > key })
	return m.pairs[i-1].Leaf
}

func (m *model) insert(sep, leaf uint64) {
	i := sort.Search(len(m.pairs), func(i int) bool { return m.pairs[i].Sep >= sep })
	m.pairs = append(m.pairs, Pair{})
	copy(m.pairs[i+1:], m.pairs[i:])
	m.pairs[i] = Pair{Sep: sep, Leaf: leaf}
}

func TestSingleLeafSeeks(t *testing.T) {
	ix := New(111)
	for _, k := range []uint64{0, 1, 1 << 40, ^uint64(0)} {
		if got := ix.Seek(k); got != 111 {
			t.Fatalf("Seek(%d) = %d", k, got)
		}
	}
	if ix.Len() != 1 || ix.Depth() != 1 {
		t.Fatalf("len=%d depth=%d", ix.Len(), ix.Depth())
	}
}

func TestInsertAndSeekBoundaries(t *testing.T) {
	ix := New(1)
	ix.Insert(100, 2)
	ix.Insert(200, 3)
	cases := []struct {
		key  uint64
		want uint64
	}{
		{0, 1}, {99, 1}, {100, 2}, {150, 2}, {199, 2}, {200, 3}, {1 << 50, 3},
	}
	for _, c := range cases {
		if got := ix.Seek(c.key); got != c.want {
			t.Fatalf("Seek(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateSeparatorPanics(t *testing.T) {
	ix := New(1)
	ix.Insert(10, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.Insert(10, 3)
}

func TestManyInsertsMatchModel(t *testing.T) {
	ix := New(1)
	m := newModel(1)
	rng := rand.New(rand.NewSource(7))
	used := map[uint64]bool{0: true}
	for i := 0; i < 5000; i++ {
		sep := rng.Uint64()%1_000_000 + 1
		if used[sep] {
			continue
		}
		used[sep] = true
		leaf := uint64(i + 2)
		ix.Insert(sep, leaf)
		m.insert(sep, leaf)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != len(m.pairs) {
		t.Fatalf("len %d != model %d", ix.Len(), len(m.pairs))
	}
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 1_100_000
		if got, want := ix.Seek(k), m.seek(k); got != want {
			t.Fatalf("Seek(%d) = %d, want %d", k, got, want)
		}
	}
	if d := ix.Depth(); d < 2 {
		t.Fatalf("depth %d suspiciously small for %d leaves", d, ix.Len())
	}
}

func TestLeavesEnumeration(t *testing.T) {
	ix := New(1)
	ix.Insert(50, 2)
	ix.Insert(25, 3)
	got := ix.Leaves()
	want := []Pair{{0, 1}, {25, 3}, {50, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestReplace(t *testing.T) {
	ix := New(1)
	ix.Insert(100, 2)
	if !ix.Replace(150, 2, 9) {
		t.Fatal("Replace failed")
	}
	if ix.Seek(150) != 9 {
		t.Fatal("Replace not visible")
	}
	if ix.Replace(150, 2, 10) {
		t.Fatal("Replace with wrong old value succeeded")
	}
	if ix.Seek(0) != 1 {
		t.Fatal("Replace disturbed other entries")
	}
}

func TestNewFromSorted(t *testing.T) {
	var pairs []Pair
	for i := 0; i < 2000; i++ {
		pairs = append(pairs, Pair{Sep: uint64(i) * 10, Leaf: uint64(i + 1)})
	}
	pairs[0].Sep = 3 // must be forced to 0
	ix := NewFromSorted(pairs)
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 2000 {
		t.Fatalf("len %d", ix.Len())
	}
	if ix.Seek(1) != 1 {
		t.Fatal("leftmost leaf does not cover low keys")
	}
	for i := 1; i < 2000; i++ {
		if got := ix.Seek(uint64(i)*10 + 5); got != uint64(i+1) {
			t.Fatalf("Seek(%d) = %d", i*10+5, got)
		}
	}
	if ix.SeekLow() != 1 {
		t.Fatal("SeekLow wrong")
	}
}

func TestNewFromSortedSingle(t *testing.T) {
	ix := NewFromSorted([]Pair{{Sep: 42, Leaf: 7}})
	if ix.Seek(0) != 7 || ix.Seek(100) != 7 {
		t.Fatal("single-pair bulk build broken")
	}
}

func TestNewFromSortedUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFromSorted([]Pair{{0, 1}, {5, 2}, {5, 3}})
}

func TestConcurrentSeekDuringInserts(t *testing.T) {
	ix := New(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer splits leaves continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for sep := uint64(1); sep <= 3000; sep++ {
			ix.Insert(sep*2, sep+1)
		}
		close(stop)
	}()
	// Readers must always observe a consistent snapshot: the leaf returned
	// for key k covers k in the version they saw.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64() % 7000
				leaf := ix.Seek(k)
				if leaf == 0 {
					t.Error("Seek returned zero handle")
					return
				}
				// The handle for key k is either 1 (initial leaf) or
				// sep/2+1 for some sep*2 <= k; bound-check the mapping.
				if leaf != 1 {
					sep := (leaf - 1) * 2
					if sep > k {
						t.Errorf("Seek(%d) returned leaf with separator %d > key", k, sep)
						return
					}
				}
			}
		}(int64(r))
	}
	wg.Wait()
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: any set of distinct separators inserted in any order yields an
// index whose Seek agrees with the sorted-slice model everywhere.
func TestQuickSeekMatchesModel(t *testing.T) {
	f := func(raw []uint32, probes []uint32) bool {
		ix := New(1)
		m := newModel(1)
		seen := map[uint64]bool{0: true}
		for i, r := range raw {
			sep := uint64(r)
			if seen[sep] {
				continue
			}
			seen[sep] = true
			ix.Insert(sep, uint64(i+2))
			m.insert(sep, uint64(i+2))
		}
		if err := ix.Validate(); err != nil {
			return false
		}
		for _, p := range probes {
			if ix.Seek(uint64(p)) != m.seek(uint64(p)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
