// Package inner implements the volatile internal-node index shared by every
// tree in this repository. As in the paper's evaluation, "the structures for
// all the internal nodes are the same in all implementations; the only
// difference is the design of the leaf node" — so RNTree and all baselines
// build on this package and differ only in their persistent leaves.
//
// The paper wraps internal-node traversal and updates in HTM functions
// (htmTreeTraverse, htmTreeUpdate), whose effect is that every traversal
// observes an atomic snapshot of the internal nodes and structural updates
// are serialized. We obtain the identical guarantee with a copy-on-write
// B+tree: nodes are immutable, the root pointer is swapped atomically, and
// mutations (rare — only leaf splits) rebuild the root-to-leaf path under a
// mutex. Traversals are therefore lock-free and always see one consistent
// version of the index, and internal nodes are volatile (rebuilt on
// recovery) in both designs. See DESIGN.md §2 for the substitution note.
package inner

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Fanout is the maximum number of children per internal node and entries per
// bottom node.
const Fanout = 32

// node is an immutable index node. Exactly one of kids/vals is non-nil:
// internal nodes carry pivots+kids, bottom nodes carry seps+vals.
//
// Internal: kids[i] covers keys in [pivots[i-1], pivots[i]) with virtual
// pivots[-1] = 0 and pivots[len-1] = +inf; len(pivots) == len(kids)-1.
//
// Bottom: vals[i] (a leaf handle) covers [seps[i], seps[i+1]) with virtual
// seps[len] = +inf; len(seps) == len(vals) and seps[0] of the leftmost
// bottom node is 0.
type node struct {
	pivots []uint64
	kids   []*node

	seps []uint64
	vals []uint64
}

func (n *node) isBottom() bool { return n.kids == nil }

// Index is a concurrent copy-on-write B+tree mapping separator keys to
// opaque leaf handles (arena offsets). Seek is lock-free; mutators are
// serialized internally.
type Index struct {
	root atomic.Pointer[node]
	mu   sync.Mutex
	size atomic.Int64
}

// New creates an index with a single initial leaf covering the whole key
// space (separator 0).
func New(initialLeaf uint64) *Index {
	ix := &Index{}
	ix.root.Store(&node{seps: []uint64{0}, vals: []uint64{initialLeaf}})
	ix.size.Store(1)
	return ix
}

// NewFromSorted bulk-builds an index from (separator, leaf) pairs sorted by
// separator; pairs[0].Sep is forced to 0 so the leftmost leaf covers the low
// end of the key space. Used by recovery (Section 5.4).
func NewFromSorted(pairs []Pair) *Index {
	if len(pairs) == 0 {
		panic("inner: NewFromSorted requires at least one leaf")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Sep <= pairs[i-1].Sep {
			panic(fmt.Sprintf("inner: separators not strictly sorted at %d", i))
		}
	}
	ix := &Index{}
	level := make([]*node, 0, (len(pairs)+Fanout-1)/Fanout)
	mins := make([]uint64, 0, cap(level))
	for i := 0; i < len(pairs); i += Fanout {
		end := i + Fanout
		if end > len(pairs) {
			end = len(pairs)
		}
		n := &node{seps: make([]uint64, 0, end-i), vals: make([]uint64, 0, end-i)}
		for _, p := range pairs[i:end] {
			n.seps = append(n.seps, p.Sep)
			n.vals = append(n.vals, p.Leaf)
		}
		level = append(level, n)
		mins = append(mins, n.seps[0])
	}
	level[0].seps[0] = 0
	for len(level) > 1 {
		next := make([]*node, 0, (len(level)+Fanout-1)/Fanout)
		nextMins := make([]uint64, 0, cap(next))
		for i := 0; i < len(level); i += Fanout {
			end := i + Fanout
			if end > len(level) {
				end = len(level)
			}
			n := &node{kids: append([]*node(nil), level[i:end]...)}
			n.pivots = append([]uint64(nil), mins[i+1:end]...)
			next = append(next, n)
			nextMins = append(nextMins, mins[i])
		}
		level, mins = next, nextMins
	}
	ix.root.Store(level[0])
	ix.size.Store(int64(len(pairs)))
	return ix
}

// Pair is a (separator key, leaf handle) entry for bulk building.
type Pair struct {
	Sep  uint64
	Leaf uint64
}

// Len returns the number of leaves indexed.
func (ix *Index) Len() int { return int(ix.size.Load()) }

// Depth returns the current height of the index (1 = a single bottom node).
func (ix *Index) Depth() int {
	d := 1
	for n := ix.root.Load(); !n.isBottom(); n = n.kids[0] {
		d++
	}
	return d
}

// Seek returns the leaf handle whose range covers key. Lock-free; the result
// reflects some recent consistent version of the index, exactly like an
// HTM-wrapped traversal.
func (ix *Index) Seek(key uint64) uint64 {
	n := ix.root.Load()
	for !n.isBottom() {
		n = n.kids[childIdx(n.pivots, key)]
	}
	return n.vals[bottomIdx(n.seps, key)]
}

// SeekLow returns the leftmost leaf handle (for full scans from the start).
func (ix *Index) SeekLow() uint64 {
	n := ix.root.Load()
	for !n.isBottom() {
		n = n.kids[0]
	}
	return n.vals[0]
}

// childIdx returns the child covering key: the number of pivots <= key.
func childIdx(pivots []uint64, key uint64) int {
	return sort.Search(len(pivots), func(i int) bool { return pivots[i] > key })
}

// bottomIdx returns the entry covering key: the last sep <= key.
func bottomIdx(seps []uint64, key uint64) int {
	i := sort.Search(len(seps), func(i int) bool { return seps[i] > key })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Insert adds a new (separator, leaf) entry — the paper's htmTreeUpdate:
// after a leaf split, the new right-hand leaf is registered under its
// separator key. Panics if the separator already exists.
func (ix *Index) Insert(sep uint64, leaf uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	root := ix.root.Load()
	left, right, rightMin := insertRec(root, sep, leaf)
	if right != nil {
		left = &node{pivots: []uint64{rightMin}, kids: []*node{left, right}}
	}
	ix.root.Store(left)
	ix.size.Add(1)
}

// insertRec copies the path to the bottom node covering sep, inserts, and
// splits copied nodes that overflow. Returns the (possibly split) copies.
func insertRec(n *node, sep uint64, leaf uint64) (left, right *node, rightMin uint64) {
	if n.isBottom() {
		i := sort.Search(len(n.seps), func(i int) bool { return n.seps[i] >= sep })
		if i < len(n.seps) && n.seps[i] == sep {
			panic(fmt.Sprintf("inner: duplicate separator %d", sep))
		}
		nn := &node{
			seps: make([]uint64, 0, len(n.seps)+1),
			vals: make([]uint64, 0, len(n.vals)+1),
		}
		nn.seps = append(append(append(nn.seps, n.seps[:i]...), sep), n.seps[i:]...)
		nn.vals = append(append(append(nn.vals, n.vals[:i]...), leaf), n.vals[i:]...)
		if len(nn.vals) <= Fanout {
			return nn, nil, 0
		}
		mid := len(nn.vals) / 2
		r := &node{seps: append([]uint64(nil), nn.seps[mid:]...), vals: append([]uint64(nil), nn.vals[mid:]...)}
		l := &node{seps: nn.seps[:mid:mid], vals: nn.vals[:mid:mid]}
		return l, r, r.seps[0]
	}
	ci := childIdx(n.pivots, sep)
	cl, cr, crMin := insertRec(n.kids[ci], sep, leaf)
	nn := &node{
		pivots: make([]uint64, 0, len(n.pivots)+1),
		kids:   make([]*node, 0, len(n.kids)+1),
	}
	nn.pivots = append(nn.pivots, n.pivots...)
	nn.kids = append(nn.kids, n.kids...)
	nn.kids[ci] = cl
	if cr != nil {
		nn.pivots = append(nn.pivots, 0)
		copy(nn.pivots[ci+1:], nn.pivots[ci:])
		nn.pivots[ci] = crMin
		nn.kids = append(nn.kids, nil)
		copy(nn.kids[ci+2:], nn.kids[ci+1:])
		nn.kids[ci+1] = cr
	}
	if len(nn.kids) <= Fanout {
		return nn, nil, 0
	}
	mid := len(nn.kids) / 2
	rMin := nn.pivots[mid-1]
	r := &node{
		pivots: append([]uint64(nil), nn.pivots[mid:]...),
		kids:   append([]*node(nil), nn.kids[mid:]...),
	}
	l := &node{pivots: nn.pivots[: mid-1 : mid-1], kids: nn.kids[:mid:mid]}
	return l, r, rMin
}

// Replace swaps the leaf handle stored for the entry covering key from old
// to new — used by the special-purpose split that compacts a leaf full of
// obsolete entries (Section 5.2.3). Returns false (and changes nothing) if
// the covering entry does not currently hold old.
func (ix *Index) Replace(key uint64, old, new uint64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	root := ix.root.Load()
	nn, ok := replaceRec(root, key, old, new)
	if !ok {
		return false
	}
	ix.root.Store(nn)
	return true
}

func replaceRec(n *node, key uint64, old, new uint64) (*node, bool) {
	if n.isBottom() {
		i := bottomIdx(n.seps, key)
		if n.vals[i] != old {
			return nil, false
		}
		nn := &node{seps: n.seps, vals: append([]uint64(nil), n.vals...)}
		nn.vals[i] = new
		return nn, true
	}
	ci := childIdx(n.pivots, key)
	ck, ok := replaceRec(n.kids[ci], key, old, new)
	if !ok {
		return nil, false
	}
	nn := &node{pivots: n.pivots, kids: append([]*node(nil), n.kids...)}
	nn.kids[ci] = ck
	return nn, true
}

// Leaves returns all (separator, leaf) pairs in separator order. Intended
// for tests and diagnostics.
func (ix *Index) Leaves() []Pair {
	var out []Pair
	var walk func(n *node)
	walk = func(n *node) {
		if n.isBottom() {
			for i := range n.vals {
				out = append(out, Pair{Sep: n.seps[i], Leaf: n.vals[i]})
			}
			return
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(ix.root.Load())
	return out
}

// Validate checks the structural invariants of the current version; it
// returns an error describing the first violation found, or nil.
func (ix *Index) Validate() error {
	root := ix.root.Load()
	var prevSep uint64
	first := true
	count := 0
	var walk func(n *node, lo uint64, hasHi bool, hi uint64, depth int) (int, error)
	walk = func(n *node, lo uint64, hasHi bool, hi uint64, depth int) (int, error) {
		if n.isBottom() {
			if len(n.seps) != len(n.vals) || len(n.vals) == 0 {
				return 0, fmt.Errorf("bottom node with %d seps / %d vals", len(n.seps), len(n.vals))
			}
			for i, s := range n.seps {
				if !first && s <= prevSep {
					return 0, fmt.Errorf("separators not strictly increasing at %d", s)
				}
				if s < lo || (hasHi && s >= hi) {
					return 0, fmt.Errorf("separator %d outside node range [%d,%d)", s, lo, hi)
				}
				prevSep = s
				first = false
				count++
				_ = i
			}
			return 1, nil
		}
		if len(n.pivots) != len(n.kids)-1 || len(n.kids) < 2 {
			return 0, fmt.Errorf("internal node with %d pivots / %d kids", len(n.pivots), len(n.kids))
		}
		depths := -1
		for i, k := range n.kids {
			clo := lo
			if i > 0 {
				clo = n.pivots[i-1]
			}
			chasHi, chi := hasHi, hi
			if i < len(n.pivots) {
				chasHi, chi = true, n.pivots[i]
			}
			d, err := walk(k, clo, chasHi, chi, depth+1)
			if err != nil {
				return 0, err
			}
			if depths == -1 {
				depths = d
			} else if depths != d {
				return 0, fmt.Errorf("uneven depth under internal node")
			}
		}
		return depths + 1, nil
	}
	if _, err := walk(root, 0, false, 0, 0); err != nil {
		return err
	}
	if count != ix.Len() {
		return fmt.Errorf("size %d != counted %d", ix.Len(), count)
	}
	return nil
}
