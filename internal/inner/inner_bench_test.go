package inner

import (
	"fmt"
	"math/rand"
	"testing"
)

func buildIndex(n int) *Index {
	ix := New(1)
	for i := 1; i < n; i++ {
		ix.Insert(uint64(i)*16, uint64(i+1))
	}
	return ix
}

func BenchmarkSeek(b *testing.B) {
	for _, n := range []int{1_000, 100_000} {
		b.Run(benchName(n), func(b *testing.B) {
			ix := buildIndex(n)
			rng := rand.New(rand.NewSource(1))
			keys := make([]uint64, 4096)
			for i := range keys {
				keys[i] = rng.Uint64() % (uint64(n) * 16)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ix.Seek(keys[i&4095])
			}
		})
	}
}

func BenchmarkInsert(b *testing.B) {
	ix := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(uint64(i)*2+1, uint64(i+2))
	}
}

func BenchmarkSeekDuringInserts(b *testing.B) {
	// Reader throughput while a writer splits continuously — the COW
	// index's reason to exist.
	ix := buildIndex(10_000)
	stop := make(chan struct{})
	go func() {
		sep := uint64(10_000) * 16
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ix.Insert(sep+i, i)
		}
	}()
	defer close(stop)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ix.Seek(rng.Uint64() % (10_000 * 16))
	}
}

func benchName(n int) string {
	return fmt.Sprintf("%dk", n/1000)
}
