package core

import (
	"math/rand"
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
)

type kvrec = tree.KV

func benchTree(b *testing.B, opts Options) *Tree {
	b.Helper()
	a := pmem.New(pmem.Config{Size: 512 << 20, Latency: pmem.DefaultLatency})
	tr, err := New(a, opts)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkTreeInsertSeq(b *testing.B) {
	tr := benchTree(b, Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(uint64(i), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeInsertRandom(b *testing.B) {
	tr := benchTree(b, Options{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Upsert(rng.Uint64()>>1, uint64(i))
	}
}

func BenchmarkTreeFind(b *testing.B) {
	for _, dual := range []bool{false, true} {
		name := "base"
		if dual {
			name = "dualslot"
		}
		b.Run(name, func(b *testing.B) {
			tr := benchTree(b, Options{DualSlot: dual})
			const n = 100_000
			for i := uint64(0); i < n; i++ {
				if err := tr.Insert(i, i); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Find(rng.Uint64() % n)
			}
		})
	}
}

func BenchmarkTreeScan100(b *testing.B) {
	tr := benchTree(b, Options{DualSlot: true})
	const n = 100_000
	for i := uint64(0); i < n; i++ {
		if err := tr.Insert(i, i); err != nil {
			b.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Scan(rng.Uint64()%n, 100, func(_, _ uint64) bool { return true })
	}
}

func BenchmarkTreeUpdateHotLeaf(b *testing.B) {
	// Update churn on one leaf measures the amortized compaction cost.
	tr := benchTree(b, Options{})
	for i := uint64(0); i < 16; i++ {
		if err := tr.Insert(i, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Update(uint64(i)%16, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad(b *testing.B) {
	const n = 100_000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		a := pmem.New(pmem.Config{Size: 512 << 20, Latency: pmem.DefaultLatency})
		rs := make([]kvrec, n)
		for j := range rs {
			rs[j] = kvrec{Key: uint64(j) * 2, Value: uint64(j)}
		}
		b.StartTimer()
		if _, err := BulkLoad(a, Options{}, rs); err != nil {
			b.Fatal(err)
		}
	}
}
