package core

import (
	"fmt"

	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// BulkLoad formats the arena with an RNTree pre-populated from records
// sorted by strictly increasing key. Leaves are laid out directly at the
// given fill fraction (default ½, the post-split steady state) and
// persisted once each, so loading n records costs O(n/leaf) persistent
// instructions instead of 2n — the standard warm-up path for benchmarks
// and for rebuilding a tree from a snapshot.
func BulkLoad(arena *pmem.Arena, opts Options, records []tree.KV) (*Tree, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	for i := 1; i < len(records); i++ {
		if records[i].Key <= records[i-1].Key {
			return nil, fmt.Errorf("core: bulk load records not strictly sorted at %d", i)
		}
	}
	t := &Tree{
		arena:    arena,
		metas:    newMetaTable(),
		capacity: opts.LeafCapacity,
		lsize:    leafSize(opts.LeafCapacity),
		dual:     opts.DualSlot,
		flushCS:  opts.FlushInCS,
	}
	t.undo = newUndoPool(t.lsize)

	perLeaf := t.capacity / 2
	if perLeaf < 1 {
		perLeaf = 1
	}
	nLeaves := (len(records) + perLeaf - 1) / perLeaf
	if nLeaves == 0 {
		nLeaves = 1
	}

	// Allocate and fill the leaf chain back to front so each leaf knows its
	// successor's offset when written.
	offs := make([]uint64, nLeaves)
	for i := range offs {
		off, err := arena.Alloc(t.lsize)
		if err != nil {
			// Return the partial chain to the allocator so a failed bulk
			// load leaves no leak behind (the blocks were never linked).
			for _, o := range offs[:i] {
				arena.Free(o, t.lsize)
			}
			return nil, tree.ErrFull
		}
		offs[i] = off
	}
	for i := nLeaves - 1; i >= 0; i-- {
		lo := i * perLeaf
		hi := lo + perLeaf
		if hi > len(records) {
			hi = len(records)
		}
		next := pmem.NullOff
		if i+1 < nLeaves {
			next = offs[i+1]
		}
		keys := make([]uint64, hi-lo)
		vals := make([]uint64, hi-lo)
		for j := lo; j < hi; j++ {
			keys[j-lo] = records[j].Key
			vals[j-lo] = records[j].Value
		}
		t.writeLeafImage(offs[i], keys, vals, next)
		arena.Persist(offs[i], t.lsize)
	}

	arena.Write8(rootHeadOff, offs[0])
	arena.Write8(rootUndoOff, pmem.NullOff)
	arena.Write8(rootMagicOff, rootMagic)
	arena.Write8(rootCapOff, uint64(t.capacity))
	arena.Write8(rootCleanOff, 0)
	arena.Persist(0, pmem.RootSize)

	// Volatile state: metas, bounds, chain, index — same walk recovery uses.
	t.region = htm.NewRegion(arena, opts.HTM)
	maxOff := t.walkChain(func(m *leafMeta, s *slotArray) {
		m.nlogs.Store(uint32(s.n))
		m.plogs = uint32(s.n)
	})
	t.finishOpen(maxOff)
	return t, nil
}
