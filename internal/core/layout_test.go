package core

import (
	"testing"
	"testing/quick"

	"rntree/internal/pmem"
)

func TestSlotCodecRoundTrip(t *testing.T) {
	f := func(n uint8, raw [63]uint8) bool {
		var s slotArray
		s.n = int(n % 64)
		for i := 0; i < s.n; i++ {
			s.idx[i] = raw[i] % 64
		}
		var line [pmem.LineSize]byte
		s.encode(&line)
		got := decodeSlot(&line, 64)
		if got.n != s.n {
			return false
		}
		for i := 0; i < s.n; i++ {
			if got.idx[i] != s.idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeSlotClampsGarbage(t *testing.T) {
	// Garbage lines (e.g. read racily during a split) must never yield
	// out-of-range counts or indices.
	f := func(line [pmem.LineSize]byte, capa uint8) bool {
		c := int(capa%61) + 4 // capacity in [4,64]
		s := decodeSlot(&line, c)
		if s.n > c-1 {
			return false
		}
		for i := 0; i < s.n; i++ {
			if int(s.idx[i]) >= c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotInsertRemoveInverse(t *testing.T) {
	// removeAt(insertAt(s, pos, e), pos) == s for any valid pos.
	f := func(n uint8, raw [63]uint8, posRaw uint8, e uint8) bool {
		var s slotArray
		s.n = int(n % 62)
		for i := 0; i < s.n; i++ {
			s.idx[i] = raw[i] % 64
		}
		pos := 0
		if s.n > 0 {
			pos = int(posRaw) % (s.n + 1)
		}
		ins := s.insertAt(pos, e%64)
		if ins.n != s.n+1 || ins.idx[pos] != e%64 {
			return false
		}
		back := ins.removeAt(pos)
		if back.n != s.n {
			return false
		}
		for i := 0; i < s.n; i++ {
			if back.idx[i] != s.idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSlotReplaceAt(t *testing.T) {
	var s slotArray
	s.n = 3
	s.idx = [63]uint8{5, 6, 7}
	r := s.replaceAt(1, 42)
	if r.n != 3 || r.idx[0] != 5 || r.idx[1] != 42 || r.idx[2] != 7 {
		t.Fatalf("replaceAt wrong: %v", r.idx[:3])
	}
	if s.idx[1] != 6 {
		t.Fatal("replaceAt mutated the original")
	}
}

func TestLeafSizeAndOffsets(t *testing.T) {
	if leafSize(64) != 3*64+64*16 {
		t.Fatalf("leafSize(64) = %d", leafSize(64))
	}
	if leafSize(64)%pmem.LineSize != 0 {
		t.Fatal("leaf size not line aligned")
	}
	if kvEntryOff(1000, 0) != 1000+kvOff {
		t.Fatal("kvEntryOff base wrong")
	}
	if kvEntryOff(0, 4)%pmem.LineSize != 0 {
		t.Fatal("entry 4 should start a fresh line")
	}
}
