package core

import (
	"sync"
	"testing"

	"rntree/internal/htm"
	"rntree/internal/tree"
)

// The ablation knobs change performance shape, never semantics: both must
// pass the same correctness checks as the default configuration.

func TestFlushInCSVariantCorrect(t *testing.T) {
	tr := newTree(t, Options{FlushInCS: true}, 32)
	model := map[uint64]uint64{}
	for i := uint64(0); i < 5000; i++ {
		k := i * 3 % 997
		if _, ok := model[k]; ok {
			if err := tr.Update(k, i); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tr.Insert(k, i); err != nil {
				t.Fatal(err)
			}
		}
		model[k] = i
	}
	for k, v := range model {
		if got, ok := tr.Find(k); !ok || got != v {
			t.Fatalf("Find(%d) = (%d,%v) want %d", k, got, ok, v)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Persist count per op is unchanged — only placement moves.
	a := tr.Arena()
	a.ResetStats()
	if err := tr.Insert(1_000_000, 1); err != nil {
		t.Fatal(err)
	}
	if got := a.Stats().Persists; got != 2 {
		t.Fatalf("FlushInCS insert persists = %d, want 2", got)
	}
}

func TestFlushInCSCrashConsistent(t *testing.T) {
	for trial := int64(700); trial < 712; trial++ {
		crashFuzz(t, Options{FlushInCS: true}, trial, 0.4)
	}
}

func TestForceFallbackVariantCorrect(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true, HTM: htm.Config{ForceFallback: true}}, 32)
	const workers = 4
	const per = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < per; i++ {
				if err := tr.Insert(base+i, i); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != workers*per {
		t.Fatalf("Len = %d", got)
	}
	s := tr.HTMStats()
	if s.Fallbacks == 0 {
		t.Fatal("ForceFallback never used the fallback path")
	}
}

func TestForceFallbackCrashConsistent(t *testing.T) {
	for trial := int64(800); trial < 810; trial++ {
		crashFuzz(t, Options{HTM: htm.Config{ForceFallback: true}}, trial, 0.4)
	}
}

func TestAblationVariantsAgreeWithDefault(t *testing.T) {
	// Same op sequence on four configurations must end in identical state.
	configs := []Options{
		{},
		{DualSlot: true},
		{FlushInCS: true},
		{HTM: htm.Config{ForceFallback: true}},
	}
	var contents []map[uint64]uint64
	for _, opts := range configs {
		tr := newTree(t, opts, 32)
		for i := uint64(0); i < 4000; i++ {
			k := (i * 2654435761) % 1500
			switch i % 4 {
			case 0, 1:
				_ = tr.Upsert(k, i)
			case 2:
				_ = tr.Remove(k)
			case 3:
				_ = tr.Update(k, i+1)
			}
		}
		m := map[uint64]uint64{}
		tr.Scan(0, 0, func(k, v uint64) bool { m[k] = v; return true })
		contents = append(contents, m)
	}
	for i := 1; i < len(contents); i++ {
		if len(contents[i]) != len(contents[0]) {
			t.Fatalf("config %d: %d keys vs %d", i, len(contents[i]), len(contents[0]))
		}
		for k, v := range contents[0] {
			if contents[i][k] != v {
				t.Fatalf("config %d: key %d = %d, want %d", i, k, contents[i][k], v)
			}
		}
	}
}

var _ tree.Index = (*Tree)(nil)
