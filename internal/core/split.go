package core

import (
	"runtime"
	"sync"

	"rntree/internal/pmem"
	"rntree/internal/sync2"
	"rntree/internal/tree"
)

// Undo-slot layout (the paper's "pre-defined thread-local storage" for
// whole-leaf undo logs during splits, Algorithm 3):
//
//	word 0: status — the offset of the leaf being split, or 0 when idle
//	word 1: next undo slot in the persistent chain (rooted at rootUndoOff)
//	+64   : the leaf image
//
// Crash recovery walks the chain and restores any leaf whose slot is still
// armed, undoing a partial split. Undoing a *completed* split is also safe:
// the restored pre-split image contains every entry, and the new right-hand
// leaf simply becomes unreferenced garbage.
const (
	undoStatusOff = 0
	undoNextOff   = 8
	undoImageOff  = pmem.LineSize
)

// undoPool hands out undo slots to concurrent splitters, growing the
// persistent chain on demand and recycling released slots in DRAM.
type undoPool struct {
	mu       sync2.SpinLock
	free     []uint64
	slotSize uint64
}

func newUndoPool(leafSz uint64) *undoPool {
	return &undoPool{slotSize: undoImageOff + leafSz}
}

// acquire returns an idle undo slot, allocating and chaining a new one if
// necessary.
func (p *undoPool) acquire(a *pmem.Arena) (uint64, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		off := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return off, nil
	}
	p.mu.Unlock()
	// Slow path: grow the chain. The allocation and the slot-image persist
	// run outside the spin lock — the slot is thread-private until the head
	// write publishes it, and both operations block (Alloc parks on the
	// heap's allocator mutex, Persist waits on a drain engine), which would
	// leave every other splitter spinning behind a descheduled holder.
	off, err := a.Alloc(p.slotSize)
	if err != nil {
		return 0, tree.ErrFull
	}
	a.Write8(off+undoStatusOff, 0)
	// Link into the persistent chain: slot.next first, then the root head —
	// each durable before the next write depends on it. The head swing is
	// optimistic: snapshot the head, persist the slot pointing at it, then
	// publish under the lock only if no competing acquire moved the head in
	// between. Head values are distinct Alloc offsets and slots are never
	// unlinked, so a matching re-read proves the snapshot is still current.
	for {
		head := a.Read8(rootUndoOff)
		a.Write8(off+undoNextOff, head)
		a.Persist(off, pmem.LineSize)
		p.mu.Lock()
		if a.Read8(rootUndoOff) == head {
			a.Write8(rootUndoOff, off)
			p.mu.Unlock()
			// The head flush runs outside the critical section (§4.2): a
			// crash before it merely leaks the slot (the old head is still a
			// valid chain), and any later head persist by a competing
			// acquire flushes this value too.
			a.Persist(rootUndoOff, 8)
			return off, nil
		}
		p.mu.Unlock()
	}
}

// release disarms and recycles a slot.
func (p *undoPool) release(a *pmem.Arena, off uint64) {
	a.Write8(off+undoStatusOff, 0)
	a.Persist(off+undoStatusOff, 8)
	p.mu.Lock()
	p.free = append(p.free, off)
	p.mu.Unlock()
}

// forceSplit handles the corner where the log area is exhausted by orphaned
// allocations before plogs reaches the split threshold: it splits (or
// compacts) the leaf so the retrying operation can make progress.
func (t *Tree) forceSplit(m *leafMeta) error {
	m.vl.Lock()
	defer m.vl.Unlock()
	if int(m.nlogs.Load()) >= t.capacity {
		return t.splitLocked(m) //rnvet:ignore lockflush,spinblock Algorithm 3 must run under the leaf lock (the leaf is undo-logged); pmem locks never wait on tree locks, so the allocator park is bounded
	}
	return nil
}

// splitLocked implements Algorithm 3 plus the special-purpose split of
// §5.2.3. The caller holds the leaf lock. If at least half the capacity is
// active, the leaf splits in two; otherwise it is compacted in place,
// reclaiming the log entries orphaned by updates and removes.
func (t *Tree) splitLocked(m *leafMeta) error {
	m.vl.SetSplit()
	// Wait for in-flight unlocked writers: their log bytes must land before
	// we rewrite the log area. They unpin without taking locks, so this
	// cannot deadlock.
	for i := 0; m.pins.Load() != 0; i++ {
		runtime.Gosched()
	}
	var line [pmem.LineSize]byte
	t.arena.ReadLine(m.off+pslotOff, &line)
	s := decodeSlot(&line, t.capacity)

	// Gather the active records in key order before rewriting anything.
	sb := splitBufs.Get().(*splitScratch)
	defer splitBufs.Put(sb)
	keys := sb.keys[:s.n]
	vals := sb.vals[:s.n]
	for i := 0; i < s.n; i++ {
		off := kvEntryOff(m.off, int(s.idx[i]))
		keys[i] = t.arena.Read8(off)
		vals[i] = t.arena.Read8(off + 8)
	}

	// Whole-leaf undo log (Algorithm 3 line 2): image first, then the
	// status word that arms it.
	uoff, err := t.undo.acquire(t.arena)
	if err != nil {
		m.vl.UnsetSplit()
		return err
	}
	img := sb.image(t.lsize)
	t.arena.ReadRange(m.off, t.lsize, img)
	t.arena.WriteRange(uoff+undoImageOff, img)
	t.arena.Persist(uoff+undoImageOff, t.lsize)
	t.arena.Write8(uoff+undoStatusOff, m.off)
	t.arena.Persist(uoff+undoStatusOff, 8)
	if s.n >= t.capacity/2 {
		err = t.splitInTwo(m, keys, vals)
	} else {
		t.compactInPlace(m, keys, vals)
	}
	t.undo.release(t.arena, uoff)
	m.vl.UnsetSplit() // version++ : readers and waiting writers revalidate
	return err
}

// splitInTwo keeps the lower half in the (rewritten) old leaf and moves the
// upper half into a freshly allocated right-hand leaf, linked after it.
func (t *Tree) splitInTwo(m *leafMeta, keys, vals []uint64) error {
	n := len(keys)
	half := n / 2
	splitKey := keys[half]

	newOff, err := t.arena.Alloc(t.lsize)
	if err != nil {
		return tree.ErrFull
	}
	// Right leaf: entries half..n-1 compacted to logs 0..n-half-1.
	oldNext := t.arena.Read8(m.off + hdrNextOff)
	t.writeLeafImage(newOff, keys[half:], vals[half:], oldNext)
	t.arena.Persist(newOff, t.lsize)
	// Old leaf rewritten in place: lower half compacted, chained to the new
	// leaf. Safe: pins are drained and the pre-split image is undo-logged.
	t.writeLeafImage(m.off, keys[:half], vals[:half], newOff)
	t.arena.Persist(m.off, t.lsize)

	nm := newLeafMeta(newOff, 0)
	nm.nlogs.Store(uint32(n - half))
	nm.plogs = uint32(n - half)
	nm.high.Store(m.high.Load())
	nm.next.Store(m.next.Load())
	nm.resetFps(keys[half:])
	newID := t.metas.add(nm)

	m.nlogs.Store(uint32(half))
	m.plogs = uint32(half)
	m.high.Store(splitKey)
	m.next.Store(nm)
	// The log area was rewritten to the identity layout; reinstall the
	// fingerprints before UnsetSplit publishes the new version. Readers
	// racing the split may pair new fingerprints with an old snapshot, but
	// their version validation rejects the attempt either way.
	m.resetFps(keys[:half])

	// htmTreeUpdate (Table 2): register the new leaf under its separator.
	// Done before UnsetSplit so retrying operations find the updated index.
	t.ix.Insert(splitKey, newID)
	return nil
}

// compactInPlace is the special-purpose split: the active entries are fewer
// than half the capacity, so the leaf is rewritten compactly, reclaiming
// obsolete log entries without allocating a new node.
func (t *Tree) compactInPlace(m *leafMeta, keys, vals []uint64) {
	next := t.arena.Read8(m.off + hdrNextOff)
	t.writeLeafImage(m.off, keys, vals, next)
	t.arena.Persist(m.off, t.lsize)
	m.nlogs.Store(uint32(len(keys)))
	m.plogs = uint32(len(keys))
	m.resetFps(keys)
}

// splitScratch holds reusable buffers for split/compaction so the split
// path does not allocate.
type splitScratch struct {
	keys, vals [MaxLeafCapacity]uint64
	img        []byte
}

func (sb *splitScratch) image(n uint64) []byte {
	if uint64(cap(sb.img)) < n {
		sb.img = make([]byte, n)
	}
	return sb.img[:n]
}

var splitBufs = sync.Pool{New: func() any { return new(splitScratch) }}

// writeLeafImage lays out a fully compacted leaf: logs 0..n-1 hold the
// records in key order, both slot arrays are the identity permutation, and
// the header carries the next pointer. The image is assembled in a scratch
// buffer and stored with one ranged write. The caller persists the range.
//
//pmem:volatile the split/compaction caller persists the whole leaf image in one Persist
func (t *Tree) writeLeafImage(off uint64, keys, vals []uint64, next uint64) {
	sb := splitBufs.Get().(*splitScratch)
	img := sb.image(t.lsize)
	for i := range img {
		img[i] = 0
	}
	putW(img[hdrNextOff:], next)
	var s slotArray
	s.n = len(keys)
	for i := range keys {
		s.idx[i] = uint8(i)
		putW(img[kvOff+i*kvEntrySize:], keys[i])
		putW(img[kvOff+i*kvEntrySize+8:], vals[i])
	}
	var line [pmem.LineSize]byte
	s.encode(&line)
	copy(img[pslotOff:], line[:])
	copy(img[tslotOff:], line[:])
	t.arena.WriteRange(off, img)
	splitBufs.Put(sb)
}

func putW(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
