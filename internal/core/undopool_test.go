package core

import (
	"sync"
	"testing"

	"rntree/internal/pmem"
)

// walkUndoChain returns every slot offset reachable from the persistent
// chain head, in chain order.
func walkUndoChain(a *pmem.Arena) []uint64 {
	var offs []uint64
	for off := a.Read8(rootUndoOff); off != pmem.NullOff; off = a.Read8(off + undoNextOff) {
		offs = append(offs, off)
	}
	return offs
}

// TestUndoPoolConcurrentGrow is the regression test for the optimistic head
// swing in undoPool.acquire: the allocation and slot persist moved outside
// the p.mu spin lock (they block — allocator mutex, drain engine — which
// rnvet's spinblock pass flags), so the chain linkage now races and must
// retry when a competing acquire moves the head. Every slot handed out must
// be distinct and every slot ever allocated must stay reachable from
// rootUndoOff.
func TestUndoPoolConcurrentGrow(t *testing.T) {
	tr := newTree(t, Options{}, 16)
	a, p := tr.arena, tr.undo

	const goroutines = 8
	const perG = 25 // every acquire takes the grow path (nothing is released)
	var mu sync.Mutex
	got := make(map[uint64]int)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				off, err := p.acquire(a)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				mu.Lock()
				got[off]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if len(got) != goroutines*perG {
		t.Fatalf("expected %d distinct slots, got %d", goroutines*perG, len(got))
	}
	for off, n := range got {
		if n != 1 {
			t.Fatalf("slot %#x handed out %d times", off, n)
		}
	}
	chain := walkUndoChain(a)
	if len(chain) != len(got) {
		t.Fatalf("persistent chain has %d slots, want %d (a racing head swing lost a slot)", len(chain), len(got))
	}
	for _, off := range chain {
		if got[off] != 1 {
			t.Fatalf("chain contains slot %#x that was never handed out", off)
		}
		if st := a.Read8(off + undoStatusOff); st != 0 {
			t.Fatalf("fresh slot %#x armed with status %#x", off, st)
		}
	}

	// Recycled slots must come from the free list without growing the chain.
	for off := range got {
		p.release(a, off)
	}
	for i := 0; i < goroutines*perG; i++ {
		off, err := p.acquire(a)
		if err != nil {
			t.Fatalf("reacquire: %v", err)
		}
		if got[off] != 1 {
			t.Fatalf("reacquire returned unknown slot %#x", off)
		}
	}
	if n := len(walkUndoChain(a)); n != len(got) {
		t.Fatalf("chain grew to %d slots on reacquire, want %d", n, len(got))
	}
}
