package core

import (
	"fmt"

	"rntree/internal/pmem"
)

// CheckInvariants validates the structural invariants of a quiescent tree:
// sorted slot arrays referencing allocated log entries, strictly increasing
// keys across the leaf chain, a well-formed inner index, and agreement
// between index lookups and leaf contents. Intended for tests and the crash
// fuzzer; not safe to run concurrently with mutations.
func (t *Tree) CheckInvariants() error {
	if err := t.ix.Validate(); err != nil {
		return fmt.Errorf("inner index: %w", err)
	}
	var lastKey uint64
	haveLast := false
	seen := 0
	for m := t.head; m != nil; m = m.next.Load() {
		seen++
		var line [pmem.LineSize]byte
		t.arena.ReadLine(m.off+pslotOff, &line)
		s := decodeSlot(&line, t.capacity)
		if s.n > t.capacity-1 {
			return fmt.Errorf("leaf %#x: %d active entries exceeds capacity-1", m.off, s.n)
		}
		nlogs := m.nlogs.Load()
		if nlogs > uint32(t.capacity) {
			return fmt.Errorf("leaf %#x: nlogs %d exceeds capacity", m.off, nlogs)
		}
		high := m.high.Load()
		for i := 0; i < s.n; i++ {
			if uint32(s.idx[i]) >= nlogs {
				return fmt.Errorf("leaf %#x: slot %d references unallocated log %d (nlogs=%d)", m.off, i, s.idx[i], nlogs)
			}
			k := t.arena.Read8(kvEntryOff(m.off, int(s.idx[i])))
			if haveLast && k <= lastKey {
				return fmt.Errorf("leaf %#x: key %d not strictly greater than previous %d", m.off, k, lastKey)
			}
			if k >= high {
				return fmt.Errorf("leaf %#x: key %d outside leaf bound %d", m.off, k, high)
			}
			lastKey, haveLast = k, true
			// The index must route this key back to this leaf.
			if got := t.ix.Seek(k); t.metas.get(got) != m {
				return fmt.Errorf("index routes key %d to leaf %#x, stored in %#x", k, t.metas.get(got).off, m.off)
			}
		}
		// The DRAM chain must mirror the persistent chain.
		pNext := t.arena.Read8(m.off + hdrNextOff)
		dNext := m.next.Load()
		switch {
		case pNext == pmem.NullOff && dNext != nil:
			return fmt.Errorf("leaf %#x: persistent chain ends but DRAM chain continues", m.off)
		case pNext != pmem.NullOff && (dNext == nil || dNext.off != pNext):
			return fmt.Errorf("leaf %#x: persistent next %#x disagrees with DRAM chain", m.off, pNext)
		}
	}
	if seen == 0 {
		return fmt.Errorf("no leaves in chain")
	}
	return nil
}

// DumpStats summarises the tree for diagnostics.
func (t *Tree) DumpStats() string {
	return fmt.Sprintf("rntree{leaves=%d depth=%d dual=%v capacity=%d}",
		t.LeafCount(), t.Depth(), t.dual, t.capacity)
}
