package core

import (
	"math"
	"sync"
	"sync/atomic"

	"rntree/internal/sync2"
)

// noHighKey marks a leaf that has never split: it covers everything up to
// the end of the key space.
const noHighKey = math.MaxUint64

// leafMeta is the transient per-leaf state. The paper stores these fields in
// the leaf's first cache line but declares them non-persistent ("Variables
// like nlogs and plogs are not [crash consistent]. But they can be
// recovered", §4.1); we keep them in DRAM and rebuild them on recovery —
// see DESIGN.md §2.
type leafMeta struct {
	off uint64 // leaf base offset in the arena

	// vl is the combined version/lock/splitting word of Figure 2. It is the
	// innermost tree-level lock; only the side structures below it may be
	// acquired while it is held (lockorder-checked):
	//
	//rnvet:lockorder core.leafMeta.vl<core.metaTable.mu
	//rnvet:lockorder core.leafMeta.vl<inner.Index.mu
	//rnvet:lockorder core.leafMeta.vl<core.undoPool.mu<pmem.Heap.allocMu
	vl sync2.VersionLock

	// nlogs is the allocation cursor: log entries [0, nlogs) are taken.
	// Advanced lock-free with CAS (Algorithm 2).
	nlogs atomic.Uint32
	// plogs is the number of log entries consumed by completed operations;
	// updated under the leaf lock (Algorithm 1 line 13).
	plogs uint32
	// pins counts writers currently in their unlocked window (log entry
	// allocated, KV bytes being written/flushed). A split waits for pins to
	// drain before compacting the log area, so in-flight writers never race
	// the compaction (see DESIGN.md §2, writer/split coordination).
	pins atomic.Int32

	// high is the exclusive upper bound of this leaf's key range, set when
	// the leaf splits. Operations that reach the leaf with key >= high
	// re-traverse (the index has already been updated).
	high atomic.Uint64

	// next is the DRAM mirror of the persistent next-leaf pointer, used by
	// range scans to walk the chain without arena lookups.
	next atomic.Pointer[leafMeta]

	// fps is the packed per-log-entry fingerprint filter (8 bytes per
	// word; see fingerprint.go for the coherence argument). Written under
	// the leaf lock or SplitBit, snapshotted atomically by readers.
	//
	//pmem:volatile DRAM-only probe filter, rebuilt from slot arrays and logs by every recovery path
	fps [fpWords]atomic.Uint64

	// id is this leaf's handle in the metaTable / inner index.
	id uint64
}

func newLeafMeta(off, id uint64) *leafMeta {
	m := &leafMeta{off: off, id: id}
	m.high.Store(noHighKey)
	return m
}

// metaTable maps leaf handles (the values stored in the inner index) to
// leafMeta pointers. It is a grow-only copy-on-write slice: lookups are a
// single atomic load plus an index, appends (splits only) copy the spine.
type metaTable struct {
	mu sync.Mutex
	p  atomic.Pointer[[]*leafMeta]
}

func newMetaTable() *metaTable {
	t := &metaTable{}
	s := make([]*leafMeta, 0, 64)
	t.p.Store(&s)
	return t
}

// get returns the leafMeta for handle id.
func (t *metaTable) get(id uint64) *leafMeta {
	return (*t.p.Load())[id]
}

// add registers a leaf and returns its handle.
func (t *metaTable) add(m *leafMeta) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := *t.p.Load()
	id := uint64(len(old))
	// Appending one element past every published header's length is safe:
	// concurrent readers only index below the length they loaded.
	ns := append(old, m)
	m.id = id
	t.p.Store(&ns)
	return id
}

// len returns the number of registered leaves.
func (t *metaTable) len() int { return len(*t.p.Load()) }
