package core

import (
	"math/rand"
	"testing"

	"rntree/internal/pmem"
)

// TestRecoveryIsIdempotentUnderCrash crashes the machine *during crash
// recovery* (recovery itself issues persists while rolling back interrupted
// splits) and recovers again from the new image. Recovery must be
// idempotent: any prefix of its persists leaves an image from which a later
// recovery still yields the same consistent state.
func TestRecoveryIsIdempotentUnderCrash(t *testing.T) {
	for trial := int64(0); trial < 12; trial++ {
		rng := rand.New(rand.NewSource(trial))
		// Build a tree and crash it mid-split so the undo chain is armed
		// and recovery has real work (and persists) to do.
		a := pmem.New(pmem.Config{Size: 32 << 20})
		tr, err := New(a, Options{LeafCapacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		committed := map[uint64]uint64{}
		var img []uint64
		splitPersists := 0
		a.SetHooks(&pmem.Hooks{AfterPersist: func(off, size uint64) {
			// Snapshot right after an undo-image persist (size > one leaf
			// line): the split is armed but incomplete.
			if img == nil && size > 2*pmem.LineSize {
				splitPersists++
				if splitPersists == int(trial%3)+1 {
					img = a.CrashImage(rng, 0.5)
				}
			}
		}})
		for i := uint64(0); i < 200 && img == nil; i++ {
			if err := tr.Upsert(i, i+1); err != nil {
				t.Fatal(err)
			}
			committed[i] = i + 1
		}
		a.SetHooks(nil)
		if img == nil {
			t.Skip("no split large-persist observed")
		}
		// committed may include the op whose split was interrupted; the
		// checker below accepts prefix-or-prefix+1 like the main fuzzer by
		// trimming: every recovered key must map correctly and recovered
		// size within [len-1, len].
		check := func(rec *Tree, stage string) {
			if err := rec.CheckInvariants(); err != nil {
				t.Fatalf("trial %d %s: %v", trial, stage, err)
			}
			n := 0
			rec.Scan(0, 0, func(k, v uint64) bool {
				if want, ok := committed[k]; !ok || v != want {
					t.Fatalf("trial %d %s: foreign record (%d,%d)", trial, stage, k, v)
				}
				n++
				return true
			})
			if n < len(committed)-1 || n > len(committed) {
				t.Fatalf("trial %d %s: recovered %d records, committed %d", trial, stage, n, len(committed))
			}
		}

		// First recovery, crashed partway through its own persists.
		a1 := pmem.Recover(img, pmem.Config{})
		var img2 []uint64
		cut := rng.Intn(4) + 1
		seen := 0
		a1.SetHooks(&pmem.Hooks{AfterPersist: func(off, size uint64) {
			seen++
			if img2 == nil && seen == cut {
				img2 = a1.CrashImage(rng, 0.5)
			}
		}})
		rec1, err := CrashRecover(a1, Options{})
		a1.SetHooks(nil)
		if err != nil {
			t.Fatalf("trial %d: first recovery: %v", trial, err)
		}
		check(rec1, "first recovery")
		if img2 == nil {
			img2 = img // recovery had no persists before completing; re-crash the original
		}
		// Second recovery from the crashed-recovery image.
		a2 := pmem.Recover(img2, pmem.Config{})
		rec2, err := CrashRecover(a2, Options{})
		if err != nil {
			t.Fatalf("trial %d: second recovery: %v", trial, err)
		}
		check(rec2, "second recovery")
		// And the re-recovered tree is writable.
		if err := rec2.Upsert(1_000_000, 1); err != nil {
			t.Fatalf("trial %d: post-recovery write: %v", trial, err)
		}
	}
}
