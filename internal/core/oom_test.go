package core

import (
	"errors"
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Exhausting the arena mid-split (the right-leaf or undo-slot allocation
// fails with ErrOutOfMemory) must surface as the typed tree.ErrFull, leave
// the tree consistent, and be retry-safe: every acked insert stays
// readable, the same insert keeps failing identically, and non-allocating
// operations still work.
func TestInsertOOMMidSplitRetrySafe(t *testing.T) {
	// One non-growable heap segment: inserts run until a split's
	// allocation trips ErrOutOfMemory.
	a := pmem.New(pmem.Config{Size: 1 << 16, MaxSegments: 1})
	if !a.HeapFormatted() {
		t.Fatal("test arena not heap-formatted")
	}
	tr, err := New(a, Options{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	var acked []uint64
	var full error
	for k := uint64(1); k < 1<<14; k++ {
		if err := tr.Insert(k, k*10); err != nil {
			full = err
			break
		}
		acked = append(acked, k)
	}
	if full == nil {
		t.Fatal("arena never filled; enlarge the workload")
	}
	if !errors.Is(full, tree.ErrFull) {
		t.Fatalf("exhaustion surfaced as %v, want tree.ErrFull", full)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("tree inconsistent after mid-split OOM: %v", err)
	}
	for _, k := range acked {
		if v, ok := tr.Find(k); !ok || v != k*10 {
			t.Fatalf("acked key %d lost after OOM (ok=%v v=%d)", k, ok, v)
		}
	}
	// Retrying is stable: same typed error, no corruption.
	next := acked[len(acked)-1] + 1
	if err := tr.Insert(next, 1); !errors.Is(err, tree.ErrFull) {
		t.Fatalf("retry surfaced as %v, want tree.ErrFull", err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("tree inconsistent after retry: %v", err)
	}
	// Non-allocating paths still make progress: update an existing key.
	k0 := acked[0]
	if err := tr.Update(k0, 4242); err != nil {
		// An update may legitimately need a compaction slot; only a
		// non-typed failure is a bug.
		if !errors.Is(err, tree.ErrFull) {
			t.Fatalf("update failed untyped: %v", err)
		}
	} else if v, ok := tr.Find(k0); !ok || v != 4242 {
		t.Fatalf("update lost: ok=%v v=%d", ok, v)
	}
}
