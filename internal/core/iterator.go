package core

import "rntree/internal/tree"

// iteratorBatch bounds how many records an Iterator pulls per refill; one
// leaf's worth keeps the snapshot window short.
const iteratorBatch = DefaultLeafCapacity

// Iterator walks the tree in ascending key order. It is a convenience
// wrapper over Scan that pulls records in small validated batches, so it
// observes each leaf atomically but tolerates concurrent writers between
// batches (the same semantics a sequence of range queries would have).
// An Iterator must only be used by one goroutine.
type Iterator struct {
	t      *Tree
	resume uint64
	buf    []tree.KV
	pos    int
	done   bool
}

// NewIterator positions an iterator at the first key >= start.
func (t *Tree) NewIterator(start uint64) *Iterator {
	return &Iterator{t: t, resume: start, buf: make([]tree.KV, 0, iteratorBatch)}
}

// Next returns the next record in key order and false when exhausted.
func (it *Iterator) Next() (tree.KV, bool) {
	if it.pos >= len(it.buf) {
		if it.done || !it.refill() {
			return tree.KV{}, false
		}
	}
	kv := it.buf[it.pos]
	it.pos++
	return kv, true
}

func (it *Iterator) refill() bool {
	it.buf = it.buf[:0]
	it.pos = 0
	it.t.Scan(it.resume, iteratorBatch, func(k, v uint64) bool {
		it.buf = append(it.buf, tree.KV{Key: k, Value: v})
		return true
	})
	if len(it.buf) == 0 {
		it.done = true
		return false
	}
	last := it.buf[len(it.buf)-1].Key
	if last == noHighKey {
		it.done = true
	} else {
		it.resume = last + 1
	}
	return true
}

// Seek repositions the iterator at the first key >= key.
func (it *Iterator) Seek(key uint64) {
	it.resume = key
	it.buf = it.buf[:0]
	it.pos = 0
	it.done = false
}
