package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"rntree/internal/htm"
	"rntree/internal/inner"
	"rntree/internal/pmem"
	"rntree/internal/sync2"
	"rntree/internal/tree"
)

// rootMagic marks an arena formatted by this package (root line word 2).
const rootMagic = 0x524e_5452_4545_0001 // "RNTREE" v1

// Root line layout (arena offset 0, the paper's "well-known static address
// for starting the recovery", §5.4).
const (
	rootHeadOff  = 0  // offset of the left-most leaf
	rootUndoOff  = 8  // head of the persistent undo-slot chain
	rootMagicOff = 16 // format magic
	rootCapOff   = 24 // leaf capacity
	rootCleanOff = 32 // non-zero after a clean shutdown (Close)
)

// Options configure an RNTree.
type Options struct {
	// DualSlot enables the dual slot array design (§4.3): readers use a
	// transient copy of the slot array that is only updated after the
	// persistent copy is flushed, so finds proceed without blocking on
	// writers. This is the paper's RNTree+DS variant.
	DualSlot bool
	// LeafCapacity is the number of log entries per leaf (default 64, the
	// paper's best-performing size; at most capacity-1 entries are active).
	LeafCapacity int
	// HTM tunes the emulated hardware transactional memory. Setting
	// HTM.ForceFallback yields the no-HTM ablation (every slot-array update
	// serializes on one global lock). Ignored when Region is set.
	HTM htm.Config
	// Region injects a pre-built HTM region over the same arena instead of
	// letting the tree construct a private one. The forest layer uses this
	// so each partition explicitly owns its region — and with it its
	// fallback lock and abort counters — rather than having the tree bury
	// that ownership. Nil constructs a region from HTM.
	Region *htm.Region
	// FlushInCS moves the log-entry flush inside the leaf critical section,
	// reverting the overlapping design of §4.2 to the decoupled design the
	// paper criticises (all four steps under the lock, as FPTree does).
	// Ablation only.
	FlushInCS bool
}

func (o *Options) normalize() error {
	if o.LeafCapacity == 0 {
		o.LeafCapacity = DefaultLeafCapacity
	}
	if o.LeafCapacity < 4 || o.LeafCapacity > MaxLeafCapacity {
		return fmt.Errorf("core: leaf capacity %d outside [4,%d]", o.LeafCapacity, MaxLeafCapacity)
	}
	return nil
}

// region resolves the HTM region for a tree over arena: the injected one if
// the caller supplied it, a private one otherwise.
func (o *Options) region(arena *pmem.Arena) *htm.Region {
	if o.Region != nil {
		return o.Region
	}
	return htm.NewRegion(arena, o.HTM)
}

// Tree is an RNTree: leaf nodes live in (simulated) NVM, internal nodes in
// DRAM, and every modify operation needs exactly two persistent instructions
// while keeping leaf entries sorted (§4.1).
type Tree struct {
	arena  *pmem.Arena
	region *htm.Region
	ix     *inner.Index
	metas  *metaTable
	head   *leafMeta
	undo   *undoPool

	capacity int
	lsize    uint64
	dual     bool
	flushCS  bool
	// useHeaderMin lets reconstruction take leaf separators from the
	// clean-shutdown header instead of dereferencing slot arrays and logs.
	useHeaderMin bool

	// readRetries counts wasted read attempts (leaf locked or version
	// changed mid-read) — the reader/writer contention metric of §6.3.
	readRetries atomic.Uint64
	// splitRetries counts modify attempts thrown away by a split race
	// (stale leaf, splitting leaf, or a version change under the lock).
	// Bounded growth under contention is asserted by the backoff stress
	// test; unbounded growth would mean the retry loop is hot-spinning.
	splitRetries atomic.Uint64
}

var _ tree.Index = (*Tree)(nil)

// New formats the arena with an empty RNTree.
func New(arena *pmem.Arena, opts Options) (*Tree, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	t := &Tree{
		arena:    arena,
		region:   opts.region(arena),
		metas:    newMetaTable(),
		capacity: opts.LeafCapacity,
		lsize:    leafSize(opts.LeafCapacity),
		dual:     opts.DualSlot,
		flushCS:  opts.FlushInCS,
	}
	t.undo = newUndoPool(t.lsize)
	headOff, err := arena.Alloc(t.lsize)
	if err != nil {
		return nil, tree.ErrFull
	}
	arena.Zero(headOff, t.lsize)
	arena.Persist(headOff, t.lsize)
	arena.Write8(rootHeadOff, headOff)
	arena.Write8(rootUndoOff, pmem.NullOff)
	arena.Write8(rootMagicOff, rootMagic)
	arena.Write8(rootCapOff, uint64(opts.LeafCapacity))
	arena.Write8(rootCleanOff, 0)
	arena.Persist(0, pmem.RootSize)
	m := newLeafMeta(headOff, 0)
	t.metas.add(m)
	t.head = m
	t.ix = inner.New(m.id)
	return t, nil
}

// Arena returns the backing persistent arena (for statistics and crash
// simulation in tests and benchmarks).
func (t *Tree) Arena() *pmem.Arena { return t.arena }

// HTMStats returns the emulated-HTM outcome counters.
func (t *Tree) HTMStats() htm.Stats { return t.region.Stats() }

// DualSlot reports whether the dual-slot-array design is enabled.
func (t *Tree) DualSlot() bool { return t.dual }

// LeafCount returns the current number of leaf nodes.
func (t *Tree) LeafCount() int { return t.metas.len() }

// Depth returns the height of the volatile internal-node index.
func (t *Tree) Depth() int { return t.ix.Depth() }

// ReadRetries reports how many read attempts were wasted on retries
// (blocked by a writer's critical section or invalidated by a concurrent
// split). The dual slot array exists to drive this toward zero (§4.3).
func (t *Tree) ReadRetries() uint64 { return t.readRetries.Load() }

// SplitRetries reports how many modify attempts were discarded by a
// concurrent split and retried from the root.
func (t *Tree) SplitRetries() uint64 { return t.splitRetries.Load() }

// Stats is a point-in-time snapshot of one tree's cost counters: persistence
// traffic from its arena, transaction outcomes from its HTM region, reader
// contention, and the tree shape. The forest layer sums these per partition.
type Stats struct {
	Persists     uint64
	LinesFlushed uint64
	WordsWritten uint64
	ReadRetries  uint64
	HTM          htm.Stats
	Leaves       int
	Depth        int
}

// Stats snapshots the tree's counters. Note the arena and region may be
// shared with other consumers (e.g. the kv value log persists into the same
// arena), in which case their counters reflect all traffic, not just the
// tree's.
func (t *Tree) Stats() Stats {
	as := t.arena.Stats()
	return Stats{
		Persists:     as.Persists,
		LinesFlushed: as.LinesFlushed,
		WordsWritten: as.WordsWritten,
		ReadRetries:  t.readRetries.Load(),
		HTM:          t.region.Stats(),
		Leaves:       t.metas.len(),
		Depth:        t.ix.Depth(),
	}
}

func (t *Tree) leafFor(key uint64) *leafMeta {
	return t.metas.get(t.ix.Seek(key))
}

// allocEntry implements Algorithm 2: lock-free log-entry allocation with a
// CAS on nlogs. It fails when the leaf's log area is exhausted or the leaf
// is being split.
func (t *Tree) allocEntry(m *leafMeta) (int, bool) {
	for {
		if m.vl.IsSplitting() {
			return 0, false
		}
		n := m.nlogs.Load()
		if int(n) >= t.capacity {
			return 0, false
		}
		if m.nlogs.CompareAndSwap(n, n+1) {
			return int(n), true
		}
	}
}

// searchLeaf binary-searches the sorted slot array for key, returning the
// rank position and whether the key is present.
func (t *Tree) searchLeaf(m *leafMeta, s *slotArray, key uint64) (int, bool) {
	lo, hi := 0, s.n
	for lo < hi {
		mid := (lo + hi) / 2
		if t.arena.Read8(kvEntryOff(m.off, int(s.idx[mid]))) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	ok := lo < s.n && t.arena.Read8(kvEntryOff(m.off, int(s.idx[lo]))) == key
	return lo, ok
}

// htmLeafUpdate atomically publishes a new slot-array line — the paper's
// "atomic turning point" (Algorithm 1 line 10): because the whole cache line
// is written inside a transaction and flushed afterwards, the persistent
// slot array is always entirely old or entirely new.
func (t *Tree) htmLeafUpdate(m *leafMeta, s *slotArray) {
	var line [pmem.LineSize]byte
	s.encode(&line)
	_ = t.region.Run(func(tx *htm.Tx) {
		tx.StoreLine(m.off+pslotOff, &line)
	})
}

// htmLeafCopySlot copies the persistent slot array into the transient one
// (Algorithm 1 line 12) so readers switch to the new state only after it has
// been flushed — the dual slot array rule that prevents the
// read-uncommitted anomaly (§4.3).
func (t *Tree) htmLeafCopySlot(m *leafMeta) {
	_ = t.region.Run(func(tx *htm.Tx) {
		var line [pmem.LineSize]byte
		tx.LoadLine(m.off+pslotOff, &line)
		tx.StoreLine(m.off+tslotOff, &line)
	})
}

// htmLeafSnapshot takes an atomic snapshot of a slot-array line (the paper's
// htmLeafSnapshot, Table 2). Binary search happens outside the transaction
// to keep the read set small (§5.2.2).
func (t *Tree) htmLeafSnapshot(m *leafMeta, slotOff uint64) slotArray {
	var line [pmem.LineSize]byte
	_ = t.region.Run(func(tx *htm.Tx) {
		tx.LoadLine(m.off+slotOff, &line)
	})
	return decodeSlot(&line, t.capacity)
}

const (
	modeInsert = iota
	modeUpdate
	modeUpsert
)

// Insert implements Algorithm 1 (conditional: fails if key exists).
func (t *Tree) Insert(key, value uint64) error { return t.modify(key, value, modeInsert) }

// Update rewrites the value of an existing key (conditional). Like insert it
// appends a fresh log entry and repoints the slot array; the obsolete entry
// is reclaimed at the next split (§5.2.3).
func (t *Tree) Update(key, value uint64) error { return t.modify(key, value, modeUpdate) }

// Upsert writes the key unconditionally.
func (t *Tree) Upsert(key, value uint64) error { return t.modify(key, value, modeUpsert) }

func (t *Tree) modify(key, value uint64, mode int) error {
	// Split-race retries back off with the same jittered exponential delay
	// the HTM region applies to conflict aborts: without it, every writer
	// parked on a splitting hot leaf re-traverses in lock step and hammers
	// the same version word while the splitter is trying to finish.
	var jitter uint64
	for attempt := 0; ; attempt++ {
		m := t.leafFor(key)
		v := m.vl.StableVersion()
		if key >= m.high.Load() {
			// Leaf split since the index was read; re-traverse.
			t.splitRetries.Add(1)
			sync2.JitterBackoff(attempt, &jitter)
			continue
		}
		// --- Unlocked window: allocate, write, flush (§4.2 steps 1-3).
		// The pin keeps a concurrent split from compacting the log area
		// while our bytes are in flight.
		m.pins.Add(1)
		if m.vl.IsSplitting() {
			m.pins.Add(-1)
			t.splitRetries.Add(1)
			sync2.JitterBackoff(attempt, &jitter)
			continue
		}
		entry, ok := t.allocEntry(m)
		if !ok {
			m.pins.Add(-1)
			if err := t.forceSplit(m); err != nil {
				return err
			}
			// No backoff: forceSplit made progress (the leaf has room now).
			t.splitRetries.Add(1)
			continue
		}
		eoff := kvEntryOff(m.off, entry)
		t.arena.Write8(eoff, key)
		t.arena.Write8(eoff+8, value)
		if !t.flushCS {
			t.arena.Persist(eoff, kvEntrySize) // persistent instruction 1 of 2
		}
		m.pins.Add(-1)
		// --- Critical section: metadata update (§4.2 step 4).
		m.vl.Lock()
		if t.flushCS {
			// Decoupled-design ablation: the slow flush occupies the lock.
			t.arena.Persist(eoff, kvEntrySize) //rnvet:ignore lockflush,spinblock the FlushInCS ablation exists to measure exactly this violation
		}
		if m.vl.Version() != v || key >= m.high.Load() {
			// A split intervened while we were flushing; our log entry is
			// orphaned (never referenced) and will be discarded by the next
			// compaction. Retry from the root (Algorithm 1 line 5).
			m.vl.Unlock()
			t.splitRetries.Add(1)
			sync2.JitterBackoff(attempt, &jitter)
			continue
		}
		var line [pmem.LineSize]byte
		t.arena.ReadLine(m.off+pslotOff, &line)
		s := decodeSlot(&line, t.capacity)
		pos, exists := t.searchLeaf(m, &s, key)
		switch mode {
		case modeInsert:
			if exists {
				m.vl.Unlock()
				return tree.ErrKeyExists
			}
		case modeUpdate:
			if !exists {
				m.vl.Unlock()
				return tree.ErrKeyNotFound
			}
		}
		if !exists && s.n >= t.capacity-1 {
			// The leaf is at its active-entry limit (capacity-1, the most
			// the slot encoding can represent) — the proactive split that
			// normally prevents this state must have failed on a full
			// arena. Publishing n == capacity would be silently clamped by
			// the next decode, dropping the highest slot. Leave our log
			// entry orphaned (reclaimed by the next compaction), split or
			// surface the typed failure, and retry.
			m.vl.Unlock()
			if err := t.forceSplit(m); err != nil {
				return err
			}
			t.splitRetries.Add(1)
			sync2.JitterBackoff(attempt, &jitter)
			continue
		}
		var ns slotArray
		if exists {
			ns = s.replaceAt(pos, uint8(entry))
		} else {
			ns = s.insertAt(pos, uint8(entry))
		}
		// Fingerprint before publish: any reader whose snapshot contains
		// this entry must already find its fingerprint (fingerprint.go).
		m.setFp(entry, fpHash(key))
		t.htmLeafUpdate(m, &ns)
		t.arena.Persist(m.off+pslotOff, pmem.LineSize) //rnvet:ignore lockflush,spinblock §4.2 step 4: the slot-array publish IS the commit and must flush under the leaf lock (one line, one bounded drain-engine wait)
		if t.dual {
			t.htmLeafCopySlot(m)
		}
		m.plogs++
		var splitErr error
		if int(m.plogs) >= t.capacity-1 {
			splitErr = t.splitLocked(m) //rnvet:ignore lockflush,spinblock Algorithm 3 must run under the leaf lock (the leaf is undo-logged); pmem locks never wait on tree locks, so the allocator park is bounded
			if errors.Is(splitErr, tree.ErrFull) {
				// The record above is already committed; this split is
				// proactive. Reporting its exhaustion would break the
				// "error means not applied" contract (a caller retrying the
				// insert would see ErrKeyExists). The arena-full condition
				// resurfaces, typed, on the first operation that actually
				// needs the room (forceSplit's path).
				splitErr = nil
			}
		}
		m.vl.Unlock()
		return splitErr
	}
}

// Remove deletes key by rewriting the slot array only — a single persistent
// instruction; the log entry itself is reclaimed at the next split (§5.2.3).
func (t *Tree) Remove(key uint64) error {
	for {
		m := t.leafFor(key)
		v := m.vl.StableVersion()
		if key >= m.high.Load() {
			continue
		}
		m.vl.Lock()
		if m.vl.Version() != v || key >= m.high.Load() {
			m.vl.Unlock()
			continue
		}
		var line [pmem.LineSize]byte
		t.arena.ReadLine(m.off+pslotOff, &line)
		s := decodeSlot(&line, t.capacity)
		pos, exists := t.searchLeaf(m, &s, key)
		if !exists {
			m.vl.Unlock()
			return tree.ErrKeyNotFound
		}
		ns := s.removeAt(pos)
		t.htmLeafUpdate(m, &ns)
		t.arena.Persist(m.off+pslotOff, pmem.LineSize) //rnvet:ignore lockflush,spinblock Remove's single persist is the commit point (§4.2 step 4, under the leaf lock)
		if t.dual {
			t.htmLeafCopySlot(m)
		}
		m.vl.Unlock()
		return nil
	}
}

// Find implements Algorithm 4, with the per-leaf fingerprint filter
// replacing the binary search of the snapshot: a miss is decided from DRAM
// bytes alone and a hit costs one arena key read plus the value read
// (fingerprint.go). With the dual slot array enabled it never blocks on
// concurrent writers: it snapshots the transient slot array and validates
// the leaf version (which only changes on splits). Without it, readers must
// wait out the writer's critical section, the contention the +DS design
// removes.
func (t *Tree) Find(key uint64) (uint64, bool) {
	for {
		m := t.leafFor(key)
		if t.dual {
			v := m.vl.StableVersion()
			if key >= m.high.Load() {
				continue
			}
			s := t.htmLeafSnapshot(m, tslotOff)
			pos, ok := t.probeLeaf(m, &s, key)
			var val uint64
			if ok {
				val = t.arena.Read8(kvEntryOff(m.off, int(s.idx[pos])) + 8)
			}
			if m.vl.StableVersion() != v {
				t.readRetries.Add(1)
				continue
			}
			return val, ok
		}
		w0 := m.vl.Raw()
		if w0&(sync2.LockBit|sync2.SplitBit) != 0 {
			t.readRetries.Add(1)
			runtime.Gosched()
			continue
		}
		if key >= m.high.Load() {
			continue
		}
		s := t.htmLeafSnapshot(m, pslotOff)
		pos, ok := t.probeLeaf(m, &s, key)
		var val uint64
		if ok {
			val = t.arena.Read8(kvEntryOff(m.off, int(s.idx[pos])) + 8)
		}
		// Validating an unchanged, unlocked word means the writer (if any)
		// finished its critical section, which includes flushing the slot
		// array — so whatever we read is durable.
		if m.vl.Raw() != w0 {
			t.readRetries.Add(1)
			continue
		}
		return val, ok
	}
}

// Scan implements the range query of §5.2.4: locate the first leaf, then
// follow next pointers, applying fn to each entry in key order. Thanks to
// sorted leaves no per-leaf sorting is needed (unlike NV-Tree/FPTree).
func (t *Tree) Scan(start uint64, max int, fn func(key, value uint64) bool) int {
	count := 0
	resume := start
	var m *leafMeta
	buf := make([]tree.KV, 0, t.capacity)
	for {
		if m == nil {
			m = t.leafFor(resume)
		}
		var v, w0 uint64
		if t.dual {
			v = m.vl.StableVersion()
		} else {
			w0 = m.vl.Raw()
			if w0&(sync2.LockBit|sync2.SplitBit) != 0 {
				runtime.Gosched()
				continue
			}
		}
		if resume >= m.high.Load() {
			m = nil // stale leaf; re-traverse
			continue
		}
		var s slotArray
		if t.dual {
			s = t.htmLeafSnapshot(m, tslotOff)
		} else {
			s = t.htmLeafSnapshot(m, pslotOff)
		}
		buf = buf[:0]
		for i := 0; i < s.n; i++ {
			off := kvEntryOff(m.off, int(s.idx[i]))
			k := t.arena.Read8(off)
			if k < resume {
				continue
			}
			buf = append(buf, tree.KV{Key: k, Value: t.arena.Read8(off + 8)})
		}
		nxt := m.next.Load()
		if t.dual {
			if m.vl.StableVersion() != v {
				m = nil
				continue
			}
		} else if m.vl.Raw() != w0 {
			m = nil
			continue
		}
		for _, kv := range buf {
			if max > 0 && count >= max {
				return count
			}
			count++
			if !fn(kv.Key, kv.Value) {
				return count
			}
			if kv.Key == noHighKey {
				return count
			}
			resume = kv.Key + 1
		}
		if nxt == nil {
			return count
		}
		m = nxt
	}
}

// Len counts the records currently in the tree (a full scan; O(n)).
func (t *Tree) Len() int {
	n := 0
	t.Scan(0, 0, func(_, _ uint64) bool { n++; return true })
	return n
}
