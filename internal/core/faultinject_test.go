package core

import (
	"fmt"
	"sync"
	"testing"

	"rntree/internal/htm"
	"rntree/internal/pmem"
)

// Close on a non-quiescent tree must fail loudly instead of certifying a
// torn image as a clean shutdown.
func TestCloseAssertsQuiescent(t *testing.T) {
	mustPanic := func(name string, disturb, undo func(tr *Tree)) {
		a := pmem.New(pmem.Config{Size: 1 << 20})
		tr, err := New(a, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(1, 2); err != nil {
			t.Fatal(err)
		}
		disturb(tr)
		defer undo(tr)
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Close did not panic on a non-quiescent tree", name)
			}
		}()
		tr.Close()
	}
	mustPanic("locked leaf",
		func(tr *Tree) { tr.head.vl.Lock() },
		func(tr *Tree) { tr.head.vl.Unlock() })
	mustPanic("pinned writer",
		func(tr *Tree) { tr.head.pins.Add(1) },
		func(tr *Tree) { tr.head.pins.Add(-1) })
	mustPanic("splitting leaf",
		func(tr *Tree) { tr.head.vl.Lock(); tr.head.vl.SetSplit() },
		func(tr *Tree) { tr.head.vl.UnsetSplit(); tr.head.vl.Unlock() })
}

// A quiescent tree still closes and reconstructs normally with the
// assertion in place.
func TestCloseQuiescentStillWorks(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 1 << 20})
	tr, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	tr2, err := Reconstruct(pmem.Recover(a.CrashImage(nil, 0), pmem.Config{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr2.Len(); got != 50 {
		t.Fatalf("reconstructed Len = %d, want 50", got)
	}
}

// spuriousTree runs a concurrent mixed workload with 10% per-attempt
// spurious HTM abort injection (the acceptance bar for the abort-storm
// path): every operation must still complete correctly, with the injected
// aborts absorbed by the jittered-backoff retry loop and the fallback.
func spuriousTree(t *testing.T, opts Options) {
	opts.HTM = htm.Config{SpuriousAbortProb: 0.10, InjectSeed: 5}
	a := pmem.New(pmem.Config{Size: 16 << 20})
	tr, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perG    = 300
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * 10_000
			for i := uint64(0); i < perG; i++ {
				k := base + i
				if err := tr.Insert(k, k+1); err != nil {
					errs <- fmt.Errorf("insert %d: %v", k, err)
					return
				}
				if v, ok := tr.Find(k); !ok || v != k+1 {
					errs <- fmt.Errorf("find %d = %d,%v", k, v, ok)
					return
				}
				if i%3 == 0 {
					if err := tr.Update(k, k+2); err != nil {
						errs <- fmt.Errorf("update %d: %v", k, err)
						return
					}
				}
				if i%5 == 4 {
					if err := tr.Remove(k); err != nil {
						errs <- fmt.Errorf("remove %d: %v", k, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := workers * (perG - perG/5)
	if got := tr.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	if s := tr.region.Stats(); s.SpuriousAborts == 0 {
		t.Fatal("no spurious aborts injected at p=0.10")
	} else {
		t.Logf("injected %d spurious aborts over %d commits (%d fallbacks)",
			s.SpuriousAborts, s.Commits, s.Fallbacks)
	}
}

func TestSpuriousAbortStormTree(t *testing.T)   { spuriousTree(t, Options{}) }
func TestSpuriousAbortStormTreeDS(t *testing.T) { spuriousTree(t, Options{DualSlot: true}) }
