package core

import (
	"math/rand"
	"testing"

	"rntree/internal/pmem"
)

func TestCleanShutdownReconstruct(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		a := pmem.New(pmem.Config{Size: 32 << 20})
		tr, err := New(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 8000; i++ {
			k := rng.Uint64() % 100_000
			if _, ok := want[k]; ok {
				continue
			}
			want[k] = k + 1
			if err := tr.Insert(k, k+1); err != nil {
				t.Fatal(err)
			}
		}
		tr.Close()
		if !WasCleanShutdown(a) {
			t.Fatal("clean flag not set")
		}
		// Reboot: only the NVM image survives.
		a2 := pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
		tr2, err := Reconstruct(a2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if got := tr2.Len(); got != len(want) {
			t.Fatalf("recovered %d records, want %d", got, len(want))
		}
		for k, v := range want {
			if got, ok := tr2.Find(k); !ok || got != v {
				t.Fatalf("recovered Find(%d) = (%d,%v), want %d", k, got, ok, v)
			}
		}
		// The clean flag must be disarmed after reopening.
		if WasCleanShutdown(a2) {
			t.Fatal("clean flag survived reopen")
		}
		// The reopened tree must be fully writable (allocator rebuilt).
		for i := uint64(0); i < 3000; i++ {
			if err := tr2.Upsert(200_000+i, i); err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestReconstructRefusesDirtyArena(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 16 << 20})
	tr, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Insert(1, 1)
	// No Close: simulate crash.
	a2 := pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
	if _, err := Reconstruct(a2, Options{}); err == nil {
		t.Fatal("Reconstruct accepted a crashed arena")
	}
}

func TestOpenDispatches(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 16 << 20})
	tr, _ := New(a, Options{})
	for i := uint64(0); i < 100; i++ {
		_ = tr.Insert(i, i)
	}
	tr.Close()
	a2 := pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
	tr2, err := Open(a2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 100 {
		t.Fatalf("Len = %d", tr2.Len())
	}
	// Crash this one (no Close) and reopen via Open -> CrashRecover.
	for i := uint64(100); i < 200; i++ {
		_ = tr2.Insert(i, i)
	}
	a3 := pmem.Recover(a2.CrashImage(nil, 0), pmem.Config{})
	tr3, err := Open(a3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr3.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr3.Len() != 200 {
		t.Fatalf("after crash recovery Len = %d, want 200", tr3.Len())
	}
}

func TestCrashRecoverAfterQuiescentCrash(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		a := pmem.New(pmem.Config{Size: 32 << 20})
		tr, err := New(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := map[uint64]uint64{}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 6000; i++ {
			k := rng.Uint64() % 50_000
			v := rng.Uint64()
			switch rng.Intn(3) {
			case 0, 1:
				if err := tr.Upsert(k, v); err != nil {
					t.Fatal(err)
				}
				want[k] = v
			case 2:
				if _, ok := want[k]; ok {
					if err := tr.Remove(k); err != nil {
						t.Fatal(err)
					}
					delete(want, k)
				}
			}
		}
		// Crash without Close, between operations: every completed op is
		// durable (its commit point persisted), so recovery must yield
		// exactly the model.
		a2 := pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
		tr2, err := CrashRecover(a2, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if got := tr2.Len(); got != len(want) {
			t.Fatalf("recovered %d records, want %d", got, len(want))
		}
		for k, v := range want {
			if got, ok := tr2.Find(k); !ok || got != v {
				t.Fatalf("Find(%d) = (%d,%v), want %d", k, got, ok, v)
			}
		}
		// Writable after crash recovery.
		for i := uint64(0); i < 2000; i++ {
			if err := tr2.Upsert(1_000_000+i, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRecoverEmptyTree(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 4 << 20})
	tr, _ := New(a, Options{})
	tr.Close()
	a2 := pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
	tr2, err := Open(a2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 0 {
		t.Fatal("empty tree recovered non-empty")
	}
	if err := tr2.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverRejectsForeignArena(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 1 << 20})
	if _, err := Open(a, Options{}); err == nil {
		t.Fatal("opened an unformatted arena")
	}
}

func TestRecoveryPreservesLeafCapacity(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 16 << 20})
	tr, err := New(a, Options{LeafCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		_ = tr.Insert(i, i)
	}
	tr.Close()
	a2 := pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
	// Pass a different capacity: the persisted one must win.
	tr2, err := Open(a2, Options{LeafCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.capacity != 16 {
		t.Fatalf("capacity = %d, want persisted 16", tr2.capacity)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
