package core

// Per-leaf fingerprint filter (ROADMAP item 4, FPTree §3.1 / the sentinel
// idea of "Boosting the Search Performance of B+-tree for NVM"): a
// DRAM-resident 1-byte hash per log entry that lets Find answer most probes
// with a byte scan over DRAM instead of a binary search issuing O(log n)
// NVM reads through arena.Read8.
//
// The filter is indexed by LOG ENTRY, not by slot rank. That choice is what
// makes it coherent under the tree's concurrency protocol without any
// locking on the read side:
//
//   - A log entry is write-once between splits (§4.2): once published by a
//     slot array, its key never changes until a split/compaction rewrites
//     the log area — and those run under SplitBit and bump the leaf
//     version, which the reader's existing version validation catches.
//   - Writers store the entry's fingerprint (under the leaf lock) BEFORE
//     publishing the slot line that references it, so any entry a reader
//     finds in its slot-array snapshot already has its fingerprint in
//     place: the HTM commit that published the line is an atomic release,
//     and the reader's line snapshot is the matching acquire.
//   - A reader therefore consults fingerprints only for entries in its own
//     snapshot. Stale bytes for unpublished or removed entries are never
//     probed; a fingerprint collision merely costs one arena key read,
//     which the full-key verify rejects.
//
// The bytes are packed into atomic words (8 fingerprints per word): all
// stores happen under the leaf lock or SplitBit so plain read-modify-write
// is race-free on the writer side, while readers snapshot whole words with
// atomic loads to stay clean under the race detector.
//
//pmem:volatile fingerprints are a DRAM-only filter, rebuilt from the persistent slot arrays and logs on every recovery path (walkChain)

// fpWords is the size of the packed fingerprint array in 8-byte words.
const fpWords = MaxLeafCapacity / 8

// fpHash condenses a key into its 1-byte fingerprint. The splitmix64
// finalizer spreads every input bit over the output, so the top byte is as
// good as any; 0 is a valid fingerprint (no reserved "empty" value — slot
// membership, not the fingerprint, decides whether an entry is live).
func fpHash(key uint64) byte {
	x := key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return byte(x >> 56)
}

// setFp records the fingerprint of log entry e. Callers must hold the leaf
// lock (or SplitBit during a split rewrite): stores are serialized, so a
// load/modify/store on the shared word cannot lose a concurrent update.
func (m *leafMeta) setFp(e int, fp byte) {
	w := &m.fps[e>>3] //rnvet:ignore atomicfield w is a one-statement alias; the only accesses through it are the atomic Load/Store below
	shift := uint(e&7) * 8
	w.Store(w.Load()&^(0xff<<shift) | uint64(fp)<<shift)
}

// loadFps snapshots the packed fingerprint words.
func (m *leafMeta) loadFps(dst *[fpWords]uint64) {
	for i := range dst {
		dst[i] = m.fps[i].Load()
	}
}

// resetFps reinstalls the fingerprints for a compact identity-permutation
// leaf image (writeLeafImage layout: log i holds keys[i]) and zeroes the
// tail. Callers hold the leaf lock/SplitBit, or own the meta exclusively
// (split building a new leaf, recovery).
func (m *leafMeta) resetFps(keys []uint64) {
	var words [fpWords]uint64
	for i, k := range keys {
		words[i>>3] |= uint64(fpHash(k)) << (uint(i&7) * 8)
	}
	for i := range m.fps {
		m.fps[i].Store(words[i])
	}
}

// probeLeaf is Find's fingerprint-filtered membership test: scan the
// snapshot's entries comparing DRAM fingerprint bytes and read the full key
// from the arena only on a match. Returns the slot rank holding key. Misses
// cost zero arena reads; hits cost one (plus ~0.4% false-positive rejects
// at 64 entries). The caller revalidates the leaf version afterwards, which
// subsumes every split/compaction race, exactly as for searchLeaf.
func (t *Tree) probeLeaf(m *leafMeta, s *slotArray, key uint64) (int, bool) {
	fp := fpHash(key)
	var words [fpWords]uint64
	m.loadFps(&words)
	for i := 0; i < s.n; i++ {
		e := int(s.idx[i])
		if byte(words[e>>3]>>(uint(e&7)*8)) != fp {
			continue
		}
		if t.arena.Read8(kvEntryOff(m.off, e)) == key {
			return i, true
		}
	}
	return 0, false
}
