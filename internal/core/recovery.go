package core

import (
	"fmt"

	"rntree/internal/inner"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Close performs a clean shutdown: it persists the transient per-leaf
// bookkeeping (nlogs, plogs, min key) into the leaf headers along with the
// transient slot arrays, and arms the clean-shutdown flag. A tree closed
// this way can be reopened with the cheap Reconstruct path; a tree that
// crashed needs CrashRecover (§5.4 and Figure 7 distinguish the two).
// The tree must be quiescent (no concurrent operations); Close checks and
// panics on misuse, because silently snapshotting a tree with writers in
// flight would certify a torn image as a clean shutdown.
func (t *Tree) Close() {
	t.assertQuiescent()
	for m := t.head; m != nil; m = m.next.Load() {
		var line [pmem.LineSize]byte
		t.arena.ReadLine(m.off+pslotOff, &line)
		s := decodeSlot(&line, t.capacity)
		minKey := uint64(0)
		if s.n > 0 {
			minKey = t.arena.Read8(kvEntryOff(m.off, int(s.idx[0])))
		}
		t.arena.Write8(m.off+hdrNlogsOff, uint64(m.nlogs.Load()))
		t.arena.Write8(m.off+hdrPlogsOff, uint64(m.plogs))
		t.arena.Write8(m.off+hdrMinOff, minKey)
		t.arena.Persist(m.off, pmem.LineSize)
		// The transient slot array is normally never flushed; make it valid
		// for the fast reopen path.
		t.arena.WriteLine(m.off+tslotOff, &line)
		t.arena.Persist(m.off+tslotOff, pmem.LineSize)
	}
	t.arena.Write8(rootCleanOff, 1)
	t.arena.Persist(rootCleanOff, 8)
}

// assertQuiescent panics if any operation is still in flight: a held or
// splitting leaf lock, a writer pinned in its unlocked persist window, or a
// held HTM fallback lock. It is a cheap DRAM-only walk of the leaf chain —
// a best-effort misuse detector, not a synchronization barrier: callers
// must still stop their own writers before Close.
func (t *Tree) assertQuiescent() {
	if t.region.FallbackHeld() {
		panic("core: Close called with an operation in flight (HTM fallback lock held); quiesce all writers before Close")
	}
	for m := t.head; m != nil; m = m.next.Load() {
		switch {
		case m.vl.IsLocked():
			panic(fmt.Sprintf("core: Close called with an operation in flight (leaf @%#x locked); quiesce all writers before Close", m.off))
		case m.vl.IsSplitting():
			panic(fmt.Sprintf("core: Close called with a split in flight (leaf @%#x splitting); quiesce all writers before Close", m.off))
		case m.pins.Load() != 0:
			panic(fmt.Sprintf("core: Close called with a writer in its persist window (leaf @%#x pinned); quiesce all writers before Close", m.off))
		}
	}
}

// WasCleanShutdown reports whether the arena holds a cleanly closed tree.
func WasCleanShutdown(a *pmem.Arena) bool {
	return a.Read8(rootMagicOff) == rootMagic && a.Read8(rootCleanOff) != 0
}

// Open reopens a tree from an arena, choosing Reconstruct after a clean
// shutdown and CrashRecover otherwise.
func Open(a *pmem.Arena, opts Options) (*Tree, error) {
	if WasCleanShutdown(a) {
		return Reconstruct(a, opts)
	}
	return CrashRecover(a, opts)
}

// Reconstruct is the fast reopen path after a clean shutdown: it walks the
// persistent leaf chain, trusts the per-leaf bookkeeping persisted by Close,
// and rebuilds the volatile internal nodes (§5.4 "reconstruction").
func Reconstruct(a *pmem.Arena, opts Options) (*Tree, error) {
	t, err := openCommon(a, opts)
	if err != nil {
		return nil, err
	}
	if a.Read8(rootCleanOff) == 0 {
		return nil, fmt.Errorf("core: arena was not cleanly closed; use CrashRecover")
	}
	t.useHeaderMin = true // Close persisted each leaf's min key for us
	maxOff := t.walkChain(func(m *leafMeta, s *slotArray) {
		m.nlogs.Store(uint32(a.Read8(m.off + hdrNlogsOff)))
		m.plogs = uint32(a.Read8(m.off + hdrPlogsOff))
	})
	t.finishOpen(maxOff)
	// Disarm the clean flag: from now on only a new Close certifies the
	// arena clean again.
	a.Write8(rootCleanOff, 0)
	a.Persist(rootCleanOff, 8)
	return t, nil
}

// CrashRecover reopens a tree after a crash: it replays the undo-log chain
// to roll back interrupted splits, then walks the leaf chain recomputing the
// transient bookkeeping from the persistent slot arrays and logs — the
// paper's "crash recovery", measurably slower than reconstruction
// (Figure 7).
func CrashRecover(a *pmem.Arena, opts Options) (*Tree, error) {
	t, err := openCommon(a, opts)
	if err != nil {
		return nil, err
	}
	// Roll back interrupted splits.
	for uoff := a.Read8(rootUndoOff); uoff != pmem.NullOff; uoff = a.Read8(uoff + undoNextOff) {
		leafOff := a.Read8(uoff + undoStatusOff)
		if leafOff != 0 {
			curNext := a.Read8(leafOff + hdrNextOff)
			img := make([]byte, t.lsize)
			a.ReadRange(uoff+undoImageOff, t.lsize, img)
			a.WriteRange(leafOff, img)
			a.Persist(leafOff, t.lsize)
			// If the interrupted split had already chained in its new
			// right-hand leaf, the restored image just unlinked it: the
			// pre-split next pointer differs from the one we overwrote.
			// The right leaf was fully persisted before the chain write
			// (Algorithm 3's ordering), so it is a well-formed orphan —
			// return it to the allocator instead of leaking it.
			if oldNext := a.Read8(leafOff + hdrNextOff); curNext != oldNext && curNext != pmem.NullOff {
				a.Free(curNext, t.lsize)
			}
			a.Write8(uoff+undoStatusOff, 0)
			a.Persist(uoff+undoStatusOff, 8)
		}
	}
	maxOff := t.walkChain(func(m *leafMeta, s *slotArray) {
		// Recompute nlogs: "scan the slot array to find the max index of
		// log entries" (§6.2.6). Orphaned allocations past the last
		// referenced slot are discarded.
		nlogs := uint32(0)
		for i := 0; i < s.n; i++ {
			if uint32(s.idx[i])+1 > nlogs {
				nlogs = uint32(s.idx[i]) + 1
			}
		}
		m.nlogs.Store(nlogs)
		m.plogs = nlogs
		// Rebuild the transient slot array from the persistent one.
		var line [pmem.LineSize]byte
		a.ReadLine(m.off+pslotOff, &line)
		a.WriteLine(m.off+tslotOff, &line) //pmem:volatile the transient slot array is a volatile mirror, rebuilt from pslot on every recovery
	})
	t.finishOpen(maxOff)
	return t, nil
}

// openCommon validates the root line and prepares an empty in-memory shell.
func openCommon(a *pmem.Arena, opts Options) (*Tree, error) {
	if a.Read8(rootMagicOff) != rootMagic {
		return nil, fmt.Errorf("core: arena does not contain an RNTree (bad magic)")
	}
	opts.LeafCapacity = int(a.Read8(rootCapOff))
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	t := &Tree{
		arena:    a,
		region:   opts.region(a),
		metas:    newMetaTable(),
		capacity: opts.LeafCapacity,
		lsize:    leafSize(opts.LeafCapacity),
		dual:     opts.DualSlot,
	}
	t.undo = newUndoPool(t.lsize)
	return t, nil
}

// walkChain scans the persistent leaf chain, creating leafMetas, wiring the
// DRAM next pointers and key bounds, and collecting the index pairs. The
// per-leaf callback fills in tree-state-specific bookkeeping. It returns the
// highest arena offset referenced (for the allocator high-water mark).
func (t *Tree) walkChain(fill func(m *leafMeta, s *slotArray)) uint64 {
	a := t.arena
	headOff := a.Read8(rootHeadOff)
	maxOff := headOff + t.lsize
	var pairs []inner.Pair
	var prev *leafMeta
	var prevIndexed *leafMeta
	for off := headOff; off != pmem.NullOff; off = a.Read8(off + hdrNextOff) {
		m := newLeafMeta(off, 0)
		t.metas.add(m)
		if t.head == nil {
			t.head = m
		}
		if prev != nil {
			prev.next.Store(m)
		}
		var line [pmem.LineSize]byte
		a.ReadLine(off+pslotOff, &line)
		s := decodeSlot(&line, t.capacity)
		fill(m, &s)
		// Rebuild the DRAM fingerprint filter from the persistent slot
		// array and logs — the filter is volatile and every reopen path
		// (Reconstruct, CrashRecover, BulkLoad) funnels through here.
		for i := 0; i < s.n; i++ {
			e := int(s.idx[i])
			m.setFp(e, fpHash(a.Read8(kvEntryOff(off, e))))
		}
		if s.n > 0 {
			// Reconstruction trusts the min key Close persisted in the
			// header (§5.4: "retrieves the greatest key in each leaf");
			// crash recovery re-derives it from the slot array and logs.
			var minKey uint64
			if t.useHeaderMin {
				minKey = a.Read8(off + hdrMinOff)
			} else {
				minKey = a.Read8(kvEntryOff(off, int(s.idx[0])))
			}
			pairs = append(pairs, inner.Pair{Sep: minKey, Leaf: m.id})
			// The previous indexed leaf's range ends where this one begins.
			if prevIndexed != nil {
				prevIndexed.high.Store(minKey)
			}
			// Empty leaves between prevIndexed and m are unreachable from
			// the index; bound them identically so scans stay consistent.
			for e := prevIndexed; e != nil && e != m; e = e.next.Load() {
				if e != prevIndexed {
					e.high.Store(minKey)
				}
			}
			prevIndexed = m
		}
		if off+t.lsize > maxOff {
			maxOff = off + t.lsize
		}
		prev = m
	}
	if len(pairs) == 0 {
		// Fully empty tree: index the head leaf.
		pairs = append(pairs, inner.Pair{Sep: 0, Leaf: t.head.id})
	}
	t.ix = inner.NewFromSorted(pairs)
	return maxOff
}

// finishOpen rebuilds the allocator state: the high-water mark covers every
// leaf and undo slot, and idle undo slots return to the pool.
func (t *Tree) finishOpen(maxOff uint64) {
	a := t.arena
	for uoff := a.Read8(rootUndoOff); uoff != pmem.NullOff; uoff = a.Read8(uoff + undoNextOff) {
		if uoff+t.undo.slotSize > maxOff {
			maxOff = uoff + t.undo.slotSize
		}
		t.undo.free = append(t.undo.free, uoff)
	}
	a.SetBump(maxOff)
}

var _ tree.Index = (*Tree)(nil)
