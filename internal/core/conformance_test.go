package core

import (
	"testing"

	"rntree/internal/tree"
	"rntree/internal/tree/treetest"
)

func TestConformance(t *testing.T) {
	treetest.RunConformance(t, "rntree", func(t *testing.T) tree.Index {
		return newTree(t, Options{}, 64)
	})
	treetest.RunConformance(t, "rntree+ds", func(t *testing.T) tree.Index {
		return newTree(t, Options{DualSlot: true}, 64)
	})
}
