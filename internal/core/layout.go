// Package core implements RNTree, the paper's contribution: a durable
// NVM-based B+tree that keeps leaf nodes sorted with only two persistent
// instructions per modify operation by using HTM to raise the atomic-write
// size to one cache line, and that overlaps persistency with concurrency so
// log flushes never execute inside critical sections (Section 4).
package core

import (
	"fmt"

	"rntree/internal/pmem"
)

// Leaf node layout (Figure 1), one cache line per row:
//
//	line 0  header   : next (8B, persistent) | nlogs | plogs | minKey (clean-shutdown only)
//	line 1  pslot    : persistent slot array — slot[0]=count, slot[1..]=order
//	line 2  tslot    : transient slot array (dual-slot-array design, §4.3)
//	line 3+ KV logs  : 16-byte (key,value) entries, 4 per line
//
// nlogs/plogs/minKey in the header are only meaningful after a clean
// shutdown (Close); crash recovery recomputes them from the slot array and
// logs (§5.4).
const (
	hdrNextOff  = 0  // persistent next-leaf pointer
	hdrNlogsOff = 8  // clean-shutdown nlogs
	hdrPlogsOff = 16 // clean-shutdown plogs
	hdrMinOff   = 24 // clean-shutdown min key (index separator)

	pslotOff = pmem.LineSize     // persistent slot array line
	tslotOff = 2 * pmem.LineSize // transient slot array line
	kvOff    = 3 * pmem.LineSize // first KV log entry

	kvEntrySize = 16

	// MaxLeafCapacity is bounded by the slot array: one count byte plus one
	// index byte per entry in a single cache line.
	MaxLeafCapacity = 64
	// DefaultLeafCapacity is the paper's leaf size ("the size of 64 performs
	// the best in general", §6.2). At most capacity-1 entries are active.
	DefaultLeafCapacity = 64
)

// leafSize returns the byte size of a leaf with the given log capacity.
func leafSize(capacity int) uint64 {
	return kvOff + uint64(capacity)*kvEntrySize
}

// kvEntryOff returns the arena offset of log entry i in the leaf at off.
func kvEntryOff(leafOff uint64, i int) uint64 {
	return leafOff + kvOff + uint64(i)*kvEntrySize
}

// slotArray is the decoded form of a slot-array cache line: slot[0] holds
// the number of entries, the following bytes hold log-entry indices in key
// order ("the smallest key is stored in Log[slot[1]]", Figure 1).
type slotArray struct {
	n   int
	idx [MaxLeafCapacity - 1]uint8
}

// decodeSlot parses a slot-array line, clamping out-of-range values so that
// readers racing a split can never index out of bounds (they will fail
// version validation and retry anyway).
func decodeSlot(line *[pmem.LineSize]byte, capacity int) slotArray {
	var s slotArray
	s.n = int(line[0])
	if s.n > capacity-1 {
		s.n = capacity - 1
	}
	for i := 0; i < s.n; i++ {
		v := line[1+i]
		if int(v) >= capacity {
			v = 0
		}
		s.idx[i] = v
	}
	return s
}

// encode serializes the slot array into a cache-line image.
func (s *slotArray) encode(line *[pmem.LineSize]byte) {
	*line = [pmem.LineSize]byte{}
	line[0] = byte(s.n)
	for i := 0; i < s.n; i++ {
		line[1+i] = s.idx[i]
	}
}

// insertAt returns a copy of s with log entry e inserted at position pos.
func (s *slotArray) insertAt(pos int, e uint8) slotArray {
	var out slotArray
	out.n = s.n + 1
	copy(out.idx[:pos], s.idx[:pos])
	out.idx[pos] = e
	copy(out.idx[pos+1:out.n], s.idx[pos:s.n])
	return out
}

// replaceAt returns a copy of s with position pos repointed to log entry e
// (an update: the key keeps its rank, the payload moves to a fresh log).
func (s *slotArray) replaceAt(pos int, e uint8) slotArray {
	out := *s
	out.idx[pos] = e
	return out
}

// removeAt returns a copy of s without position pos.
func (s *slotArray) removeAt(pos int) slotArray {
	var out slotArray
	out.n = s.n - 1
	copy(out.idx[:pos], s.idx[:pos])
	copy(out.idx[pos:out.n], s.idx[pos+1:s.n])
	return out
}

// String formats the slot array for diagnostics.
func (s *slotArray) String() string {
	return fmt.Sprintf("slot{n=%d idx=%v}", s.n, s.idx[:s.n])
}
