package core

import (
	"math/rand"
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
)

func TestBulkLoadBasic(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 64 << 20})
	recs := make([]tree.KV, 10_000)
	for i := range recs {
		recs[i] = tree.KV{Key: uint64(i) * 3, Value: uint64(i)}
	}
	tr, err := BulkLoad(a, Options{DualSlot: true}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Len(); got != len(recs) {
		t.Fatalf("Len = %d, want %d", got, len(recs))
	}
	for _, r := range recs {
		if v, ok := tr.Find(r.Key); !ok || v != r.Value {
			t.Fatalf("Find(%d) = (%d,%v)", r.Key, v, ok)
		}
	}
	// Loaded tree must be fully writable and split correctly.
	for i := uint64(0); i < 5000; i++ {
		if err := tr.Insert(i*3+1, i); err != nil {
			t.Fatalf("insert after bulk load: %v", err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadPersistEconomy(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 64 << 20})
	recs := make([]tree.KV, 50_000)
	for i := range recs {
		recs[i] = tree.KV{Key: uint64(i), Value: 1}
	}
	if _, err := BulkLoad(a, Options{}, recs); err != nil {
		t.Fatal(err)
	}
	// One persist per leaf plus the root line — orders of magnitude fewer
	// than 2 per record.
	if p := a.Stats().Persists; p > uint64(len(recs))/10 {
		t.Fatalf("bulk load used %d persists for %d records", p, len(recs))
	}
}

func TestBulkLoadSurvivesCrash(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 64 << 20})
	recs := make([]tree.KV, 5000)
	for i := range recs {
		recs[i] = tree.KV{Key: uint64(i) * 7, Value: uint64(i) + 1}
	}
	tr, err := BulkLoad(a, Options{}, recs)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	a2 := pmem.Recover(a.CrashImage(nil, 0), pmem.Config{})
	tr2, err := CrashRecover(a2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != len(recs) {
		t.Fatalf("recovered %d records", tr2.Len())
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 8 << 20})
	if _, err := BulkLoad(a, Options{}, []tree.KV{{Key: 5}, {Key: 5}}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := BulkLoad(a, Options{}, []tree.KV{{Key: 5}, {Key: 4}}); err == nil {
		t.Fatal("unsorted keys accepted")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 8 << 20})
	tr, err := BulkLoad(a, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatal("empty bulk load not empty")
	}
	if err := tr.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestIteratorFullWalk(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true}, 32)
	rng := rand.New(rand.NewSource(8))
	keys := map[uint64]bool{}
	for len(keys) < 3000 {
		k := rng.Uint64() % 1_000_000
		if keys[k] {
			continue
		}
		keys[k] = true
		if err := tr.Insert(k, k+1); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.NewIterator(0)
	n := 0
	prev := uint64(0)
	for {
		kv, ok := it.Next()
		if !ok {
			break
		}
		if n > 0 && kv.Key <= prev {
			t.Fatalf("iterator out of order: %d after %d", kv.Key, prev)
		}
		if kv.Value != kv.Key+1 {
			t.Fatalf("wrong value for %d: %d", kv.Key, kv.Value)
		}
		prev = kv.Key
		n++
	}
	if n != len(keys) {
		t.Fatalf("iterator visited %d, want %d", n, len(keys))
	}
	// Exhausted iterator stays exhausted.
	if _, ok := it.Next(); ok {
		t.Fatal("iterator resurrected")
	}
}

func TestIteratorSeek(t *testing.T) {
	tr := newTree(t, Options{}, 0)
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(i*10, i); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.NewIterator(0)
	it.Seek(4995)
	kv, ok := it.Next()
	if !ok || kv.Key != 5000 {
		t.Fatalf("Seek: got (%v,%v)", kv, ok)
	}
	// Seek backwards as well.
	it.Seek(10)
	kv, ok = it.Next()
	if !ok || kv.Key != 10 {
		t.Fatalf("backward Seek: got (%v,%v)", kv, ok)
	}
}

func TestIteratorDuringWrites(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true}, 32)
	for i := uint64(0); i < 2000; i++ {
		if err := tr.Insert(i*4, i); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.NewIterator(0)
	n := 0
	prev := int64(-1)
	for {
		kv, ok := it.Next()
		if !ok {
			break
		}
		if int64(kv.Key) <= prev {
			t.Fatalf("out of order under writes: %d after %d", kv.Key, prev)
		}
		prev = int64(kv.Key)
		n++
		// Interleave writes that split leaves ahead of and behind the
		// iterator.
		if n%100 == 0 {
			for j := uint64(0); j < 50; j++ {
				_ = tr.Upsert(kv.Key+j*4+1, j)
			}
		}
	}
	if n < 2000 {
		t.Fatalf("iterator lost pre-existing records: %d", n)
	}
}
