package core

import (
	"math/rand"
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
)

func newTree(t testing.TB, opts Options, arenaMB int) *Tree {
	t.Helper()
	if arenaMB == 0 {
		arenaMB = 16
	}
	a := pmem.New(pmem.Config{Size: uint64(arenaMB) << 20})
	tr, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func bothVariants(t *testing.T, fn func(t *testing.T, opts Options)) {
	t.Run("base", func(t *testing.T) { fn(t, Options{}) })
	t.Run("dualslot", func(t *testing.T) { fn(t, Options{DualSlot: true}) })
}

func TestEmptyTree(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 0)
		if _, ok := tr.Find(42); ok {
			t.Fatal("found key in empty tree")
		}
		if n := tr.Scan(0, 0, func(_, _ uint64) bool { return true }); n != 0 {
			t.Fatalf("scan of empty tree visited %d", n)
		}
		if err := tr.Remove(42); err != tree.ErrKeyNotFound {
			t.Fatalf("remove on empty: %v", err)
		}
		if err := tr.Update(42, 1); err != tree.ErrKeyNotFound {
			t.Fatalf("update on empty: %v", err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInsertFind(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 0)
		for i := uint64(1); i <= 100; i++ {
			if err := tr.Insert(i*7, i); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		for i := uint64(1); i <= 100; i++ {
			v, ok := tr.Find(i * 7)
			if !ok || v != i {
				t.Fatalf("Find(%d) = %d,%v", i*7, v, ok)
			}
		}
		if _, ok := tr.Find(3); ok {
			t.Fatal("found absent key")
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConditionalWriteSemantics(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 0)
		if err := tr.Insert(10, 1); err != nil {
			t.Fatal(err)
		}
		if err := tr.Insert(10, 2); err != tree.ErrKeyExists {
			t.Fatalf("duplicate insert: %v", err)
		}
		if v, _ := tr.Find(10); v != 1 {
			t.Fatalf("failed insert overwrote value: %d", v)
		}
		if err := tr.Update(10, 5); err != nil {
			t.Fatal(err)
		}
		if v, _ := tr.Find(10); v != 5 {
			t.Fatalf("update not visible: %d", v)
		}
		if err := tr.Update(11, 1); err != tree.ErrKeyNotFound {
			t.Fatalf("update of absent key: %v", err)
		}
		if err := tr.Upsert(11, 7); err != nil {
			t.Fatal(err)
		}
		if err := tr.Upsert(11, 8); err != nil {
			t.Fatal(err)
		}
		if v, _ := tr.Find(11); v != 8 {
			t.Fatalf("upsert not visible: %d", v)
		}
		if err := tr.Remove(10); err != nil {
			t.Fatal(err)
		}
		if _, ok := tr.Find(10); ok {
			t.Fatal("removed key still found")
		}
		if err := tr.Remove(10); err != tree.ErrKeyNotFound {
			t.Fatalf("double remove: %v", err)
		}
	})
}

func TestSplits(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 0)
		const n = 10_000
		for i := uint64(0); i < n; i++ {
			if err := tr.Insert(i, i*2); err != nil {
				t.Fatalf("insert %d: %v", i, err)
			}
		}
		if tr.LeafCount() < int(n)/DefaultLeafCapacity {
			t.Fatalf("only %d leaves after %d sequential inserts", tr.LeafCount(), n)
		}
		for i := uint64(0); i < n; i++ {
			if v, ok := tr.Find(i); !ok || v != i*2 {
				t.Fatalf("Find(%d) = %d,%v", i, v, ok)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if got := tr.Len(); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
	})
}

func TestSmallLeafCapacity(t *testing.T) {
	tr := newTree(t, Options{LeafCapacity: 8}, 0)
	for i := uint64(0); i < 2000; i++ {
		if err := tr.Insert(i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		if v, ok := tr.Find(i * 3); !ok || v != i {
			t.Fatalf("Find(%d) = %d,%v", i*3, v, ok)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomOpsMatchModel(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 32)
		model := make(map[uint64]uint64)
		rng := rand.New(rand.NewSource(42))
		const ops = 30_000
		for i := 0; i < ops; i++ {
			key := rng.Uint64() % 5000
			val := rng.Uint64()
			switch rng.Intn(5) {
			case 0, 1: // insert
				err := tr.Insert(key, val)
				if _, exists := model[key]; exists {
					if err != tree.ErrKeyExists {
						t.Fatalf("op %d: insert existing %d: %v", i, key, err)
					}
				} else {
					if err != nil {
						t.Fatalf("op %d: insert %d: %v", i, key, err)
					}
					model[key] = val
				}
			case 2: // update
				err := tr.Update(key, val)
				if _, exists := model[key]; exists {
					if err != nil {
						t.Fatalf("op %d: update %d: %v", i, key, err)
					}
					model[key] = val
				} else if err != tree.ErrKeyNotFound {
					t.Fatalf("op %d: update absent %d: %v", i, key, err)
				}
			case 3: // remove
				err := tr.Remove(key)
				if _, exists := model[key]; exists {
					if err != nil {
						t.Fatalf("op %d: remove %d: %v", i, key, err)
					}
					delete(model, key)
				} else if err != tree.ErrKeyNotFound {
					t.Fatalf("op %d: remove absent %d: %v", i, key, err)
				}
			case 4: // find
				v, ok := tr.Find(key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("op %d: find %d = (%d,%v), model (%d,%v)", i, key, v, ok, mv, mok)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if got := tr.Len(); got != len(model) {
			t.Fatalf("Len = %d, model %d", got, len(model))
		}
		for k, v := range model {
			if got, ok := tr.Find(k); !ok || got != v {
				t.Fatalf("final: Find(%d) = %d,%v want %d", k, got, ok, v)
			}
		}
	})
}

func TestScanOrderedAndComplete(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 0)
		rng := rand.New(rand.NewSource(3))
		keys := map[uint64]uint64{}
		for len(keys) < 5000 {
			k := rng.Uint64() % 1_000_000
			if _, ok := keys[k]; ok {
				continue
			}
			keys[k] = k * 3
			if err := tr.Insert(k, k*3); err != nil {
				t.Fatal(err)
			}
		}
		var got []uint64
		prev := uint64(0)
		first := true
		n := tr.Scan(0, 0, func(k, v uint64) bool {
			if !first && k <= prev {
				t.Fatalf("scan out of order: %d after %d", k, prev)
			}
			if want := keys[k]; v != want {
				t.Fatalf("scan value for %d: %d want %d", k, v, want)
			}
			prev, first = k, false
			got = append(got, k)
			return true
		})
		if n != len(keys) || len(got) != len(keys) {
			t.Fatalf("scan visited %d, want %d", n, len(keys))
		}
	})
}

func TestScanRangeAndLimit(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true}, 0)
	for i := uint64(0); i < 1000; i++ {
		if err := tr.Insert(i*10, i); err != nil {
			t.Fatal(err)
		}
	}
	// Start mid-range, not on an exact key.
	var first uint64
	n := tr.Scan(4995, 5, func(k, v uint64) bool {
		if first == 0 {
			first = k
		}
		return true
	})
	if n != 5 || first != 5000 {
		t.Fatalf("scan(4995,5): n=%d first=%d", n, first)
	}
	// Early stop by fn.
	n = tr.Scan(0, 0, func(k, v uint64) bool { return k < 100 })
	if n != 11 {
		t.Fatalf("early-stop scan visited %d", n)
	}
}

func TestPersistInstructionCounts(t *testing.T) {
	// Table 1: RNTree needs 2 persistent instructions per insert/update and
	// 1 per remove (away from the split threshold). Fresh tree per section
	// so no op crosses the leaf's split trigger.
	const k = 20
	setup := func() *Tree {
		tr := newTree(t, Options{}, 0)
		for i := uint64(0); i < k; i++ {
			if err := tr.Insert(i, i); err != nil {
				t.Fatal(err)
			}
		}
		tr.Arena().ResetStats()
		return tr
	}

	tr := setup()
	for i := uint64(100); i < 100+k; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Arena().Stats().Persists; got != 2*k {
		t.Fatalf("insert persists = %d, want %d", got, 2*k)
	}

	tr = setup()
	for i := uint64(0); i < k; i++ {
		if err := tr.Update(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Arena().Stats().Persists; got != 2*k {
		t.Fatalf("update persists = %d, want %d", got, 2*k)
	}

	tr = setup()
	for i := uint64(0); i < k; i++ {
		if err := tr.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.Arena().Stats().Persists; got != k {
		t.Fatalf("remove persists = %d, want %d", got, k)
	}

	// Finds never persist.
	tr = setup()
	for i := uint64(0); i < k; i++ {
		tr.Find(i)
	}
	if got := tr.Arena().Stats().Persists; got != 0 {
		t.Fatalf("find persists = %d, want 0", got)
	}
}

func TestUpdateReclaimsViaCompaction(t *testing.T) {
	// Hammering updates on one leaf exhausts its log area; the special
	// split must compact in place and keep going (§5.2.3).
	tr := newTree(t, Options{}, 0)
	for i := uint64(0); i < 10; i++ {
		if err := tr.Insert(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	leaves := tr.LeafCount()
	for round := uint64(1); round <= 200; round++ {
		for i := uint64(0); i < 10; i++ {
			if err := tr.Update(i, round); err != nil {
				t.Fatalf("round %d key %d: %v", round, i, err)
			}
		}
	}
	if tr.LeafCount() != leaves {
		t.Fatalf("updates alone changed leaf count %d -> %d", leaves, tr.LeafCount())
	}
	for i := uint64(0); i < 10; i++ {
		if v, _ := tr.Find(i); v != 200 {
			t.Fatalf("key %d = %d after update storm", i, v)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveThenReinsert(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true}, 0)
	for i := uint64(0); i < 500; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i += 2 {
		if err := tr.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 500; i += 2 {
		if err := tr.Insert(i, i+1000); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 500; i++ {
		want := i
		if i%2 == 0 {
			want = i + 1000
		}
		if v, ok := tr.Find(i); !ok || v != want {
			t.Fatalf("Find(%d) = %d,%v want %d", i, v, ok, want)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveAllLeavesEmptyTreeUsable(t *testing.T) {
	tr := newTree(t, Options{}, 0)
	for i := uint64(0); i < 300; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 300; i++ {
		if err := tr.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	if n := tr.Len(); n != 0 {
		t.Fatalf("Len = %d after removing all", n)
	}
	if err := tr.Insert(7, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Find(7); !ok || v != 7 {
		t.Fatal("tree unusable after full drain")
	}
}

func TestMaxKeyBoundary(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true}, 0)
	maxKey := uint64(1<<63 - 1) // keys must stay below the noHighKey sentinel
	if err := tr.Insert(maxKey, 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(0, 2); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Find(maxKey); !ok || v != 1 {
		t.Fatal("max key lost")
	}
	if v, ok := tr.Find(0); !ok || v != 2 {
		t.Fatal("zero key lost")
	}
	n := tr.Scan(0, 0, func(_, _ uint64) bool { return true })
	if n != 2 {
		t.Fatalf("scan visited %d", n)
	}
}

func TestHTMStatsAccumulate(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true}, 0)
	for i := uint64(0); i < 100; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.HTMStats()
	if s.Commits == 0 {
		t.Fatal("no HTM commits recorded")
	}
}
