package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// FuzzTreeOps interprets the fuzz input as an operation tape and checks the
// tree against a map model plus its structural invariants after every few
// ops. Run with `go test -fuzz=FuzzTreeOps ./internal/core/`; the seed
// corpus also runs under plain `go test`.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte("insert-remove-insert"))
	f.Add(func() []byte {
		// Sequential inserts then removes over a small key space.
		var b []byte
		for i := 0; i < 64; i++ {
			b = append(b, 0, byte(i))
		}
		for i := 0; i < 32; i++ {
			b = append(b, 3, byte(i))
		}
		return b
	}())
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 4096 {
			return
		}
		a := pmem.New(pmem.Config{Size: 16 << 20})
		tr, err := New(a, Options{LeafCapacity: 8, DualSlot: len(data)%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64]uint64{}
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 5
			key := uint64(data[i+1]) % 128
			val := uint64(i)
			switch op {
			case 0:
				err := tr.Insert(key, val)
				if _, ok := model[key]; ok {
					if err != tree.ErrKeyExists {
						t.Fatalf("insert dup %d: %v", key, err)
					}
				} else if err != nil {
					t.Fatalf("insert %d: %v", key, err)
				} else {
					model[key] = val
				}
			case 1:
				err := tr.Update(key, val)
				if _, ok := model[key]; ok {
					if err != nil {
						t.Fatalf("update %d: %v", key, err)
					}
					model[key] = val
				} else if err != tree.ErrKeyNotFound {
					t.Fatalf("update absent %d: %v", key, err)
				}
			case 2:
				if err := tr.Upsert(key, val); err != nil {
					t.Fatalf("upsert %d: %v", key, err)
				}
				model[key] = val
			case 3:
				err := tr.Remove(key)
				if _, ok := model[key]; ok {
					if err != nil {
						t.Fatalf("remove %d: %v", key, err)
					}
					delete(model, key)
				} else if err != tree.ErrKeyNotFound {
					t.Fatalf("remove absent %d: %v", key, err)
				}
			case 4:
				v, ok := tr.Find(key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("find %d = (%d,%v) want (%d,%v)", key, v, ok, mv, mok)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if tr.Len() != len(model) {
			t.Fatalf("len %d != model %d", tr.Len(), len(model))
		}
	})
}

// FuzzCrashImage drives the tree with the fuzz tape, crashes at an
// input-chosen persist boundary with input-chosen eviction, and requires
// recovery to produce a consistent prefix.
func FuzzCrashImage(f *testing.F) {
	seed := make([]byte, 40)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed, uint16(5), false)
	f.Add(seed, uint16(0), true)
	f.Fuzz(func(t *testing.T, data []byte, crashAt uint16, evictAll bool) {
		if len(data) < 2 || len(data) > 2048 {
			return
		}
		a := pmem.New(pmem.Config{Size: 16 << 20})
		tr, err := New(a, Options{LeafCapacity: 8})
		if err != nil {
			t.Fatal(err)
		}
		committed := map[uint64]uint64{}
		var before, after map[uint64]uint64
		var img []uint64
		phase := 0
		var curKey, curVal uint64
		var curDel bool
		snap := func() {
			if img != nil || phase != int(crashAt) {
				phase++
				return
			}
			phase++
			prob := 0.0
			if evictAll {
				prob = 1.0
			}
			img = a.CrashImage(fuzzRng(data), prob)
			before = cloneMap(committed)
			after = cloneMap(committed)
			if curDel {
				delete(after, curKey)
			} else {
				after[curKey] = curVal
			}
		}
		a.SetHooks(&pmem.Hooks{
			BeforePersist: func(_, _ uint64) { snap() },
			AfterPersist:  func(_, _ uint64) { snap() },
		})
		for i := 0; i+1 < len(data); i += 2 {
			curKey = uint64(data[i]) % 64
			curVal = uint64(i) + 1
			curDel = data[i+1]%3 == 0
			if curDel {
				if _, ok := committed[curKey]; !ok {
					continue
				}
				if err := tr.Remove(curKey); err != nil {
					t.Fatal(err)
				}
				delete(committed, curKey)
			} else {
				if err := tr.Upsert(curKey, curVal); err != nil {
					t.Fatal(err)
				}
				committed[curKey] = curVal
			}
		}
		a.SetHooks(nil)
		if img == nil {
			img = a.CrashImage(nil, 0)
			before, after = committed, committed
		}
		rec, err := CrashRecover(pmem.Recover(img, pmem.Config{}), Options{})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if err := rec.CheckInvariants(); err != nil {
			t.Fatalf("recovered invariants: %v", err)
		}
		got := map[uint64]uint64{}
		rec.Scan(0, 0, func(k, v uint64) bool { got[k] = v; return true })
		if !mapsEqual(got, before) && !mapsEqual(got, after) {
			t.Fatalf("recovered state matches neither model: got=%d before=%d after=%d",
				len(got), len(before), len(after))
		}
	})
}

func cloneMap(m map[uint64]uint64) map[uint64]uint64 {
	out := make(map[uint64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// fuzzRng derives a deterministic RNG from the input.
func fuzzRng(data []byte) *rand.Rand {
	var seed uint64 = 1
	if len(data) >= 8 {
		seed = binary.LittleEndian.Uint64(data[:8]) | 1
	}
	return rand.New(rand.NewSource(int64(seed)))
}
