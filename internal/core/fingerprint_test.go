package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rntree/internal/pmem"
)

// fpForKey reads back the fingerprint stored for the log entry currently
// holding key, or fails the lookup.
func fpForKey(t *testing.T, tr *Tree, key uint64) (stored, want byte) {
	t.Helper()
	m := tr.leafFor(key)
	s := tr.htmLeafSnapshot(m, pslotOff)
	pos, ok := tr.searchLeaf(m, &s, key)
	if !ok {
		t.Fatalf("key %d not in its leaf", key)
	}
	e := int(s.idx[pos])
	var words [fpWords]uint64
	m.loadFps(&words)
	return byte(words[e>>3] >> (uint(e&7) * 8)), fpHash(key)
}

// checkFps verifies that every live entry in every leaf has its fingerprint
// installed — the invariant that makes probeLeaf misses trustworthy.
func checkFps(t *testing.T, tr *Tree) {
	t.Helper()
	for m := tr.head; m != nil; m = m.next.Load() {
		s := tr.htmLeafSnapshot(m, pslotOff)
		var words [fpWords]uint64
		m.loadFps(&words)
		for i := 0; i < s.n; i++ {
			e := int(s.idx[i])
			k := tr.arena.Read8(kvEntryOff(m.off, e))
			got := byte(words[e>>3] >> (uint(e&7) * 8))
			if got != fpHash(k) {
				t.Fatalf("leaf @%#x entry %d key %d: fp %#x, want %#x", m.off, e, k, got, fpHash(k))
			}
		}
	}
}

// TestFingerprintMaintained drives every slot-array commit point — insert,
// update, remove, split, compaction — and checks the filter tracks the logs.
func TestFingerprintMaintained(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 0)
		r := rand.New(rand.NewSource(7))
		live := map[uint64]uint64{}
		for i := 0; i < 5000; i++ {
			k := uint64(r.Intn(800))*2 + 2
			switch r.Intn(3) {
			case 0:
				if err := tr.Upsert(k, k*3); err != nil {
					t.Fatal(err)
				}
				live[k] = k * 3
			case 1:
				if _, ok := live[k]; ok {
					if err := tr.Update(k, k*5); err != nil {
						t.Fatal(err)
					}
					live[k] = k * 5
				}
			case 2:
				if _, ok := live[k]; ok {
					if err := tr.Remove(k); err != nil {
						t.Fatal(err)
					}
					delete(live, k)
				}
			}
		}
		checkFps(t, tr)
		for k, v := range live {
			got, ok := tr.Find(k)
			if !ok || got != v {
				t.Fatalf("Find(%d) = %d,%v want %d", k, got, ok, v)
			}
			stored, want := fpForKey(t, tr, k)
			if stored != want {
				t.Fatalf("fp for %d: %#x want %#x", k, stored, want)
			}
		}
		// Absent keys must miss (the filter may force an extra key read on
		// collision, never a wrong answer).
		for k := uint64(1); k < 1600; k += 2 {
			if _, ok := tr.Find(k); ok {
				t.Fatalf("found absent key %d", k)
			}
		}
	})
}

// TestFingerprintCollision exercises the false-positive path: two keys with
// colliding fingerprints in one leaf must still be told apart by the full
// key verify.
func TestFingerprintCollision(t *testing.T) {
	base := uint64(1000)
	fp := fpHash(base)
	var twin uint64
	for k := base + 1; ; k++ {
		if fpHash(k) == fp {
			twin = k
			break
		}
	}
	tr := newTree(t, Options{}, 0)
	if err := tr.Insert(base, 111); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(twin, 222); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Find(base); !ok || v != 111 {
		t.Fatalf("Find(base) = %d,%v", v, ok)
	}
	if v, ok := tr.Find(twin); !ok || v != 222 {
		t.Fatalf("Find(twin) = %d,%v", v, ok)
	}
	// A third colliding key that is absent must miss despite matching both
	// stored fingerprints.
	for k := twin + 1; ; k++ {
		if fpHash(k) == fp {
			if _, ok := tr.Find(k); ok {
				t.Fatalf("absent colliding key %d found", k)
			}
			break
		}
	}
}

// TestFingerprintRecovery checks that all three reopen paths rebuild the
// filter: clean reconstruct, crash recovery, and bulk load.
func TestFingerprintRecovery(t *testing.T) {
	a := pmem.New(pmem.Config{Size: 16 << 20})
	tr, err := New(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 500; i++ {
		if err := tr.Insert(i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	tr.Close()
	tr2, err := Open(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkFps(t, tr2)
	for i := uint64(1); i <= 500; i++ {
		if v, ok := tr2.Find(i * 3); !ok || v != i {
			t.Fatalf("reconstructed Find(%d) = %d,%v", i*3, v, ok)
		}
	}
	// Crash: reopen without Close.
	tr3, err := CrashRecover(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkFps(t, tr3)
	for i := uint64(1); i <= 500; i++ {
		if v, ok := tr3.Find(i * 3); !ok || v != i {
			t.Fatalf("crash-recovered Find(%d) = %d,%v", i*3, v, ok)
		}
	}
}

// TestFingerprintConcurrent hammers Find against writers and splits; any
// stale-filter bug shows up as a lost key or a wrong value.
func TestFingerprintConcurrent(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 64)
		const keys = 4096
		for k := uint64(0); k < keys; k += 2 {
			if err := tr.Insert(k+2, 1); err != nil {
				t.Fatal(err)
			}
		}
		var stop atomic.Bool
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for !stop.Load() {
					k := uint64(r.Intn(keys/2))*2 + 2
					_ = tr.Upsert(k, k)
				}
			}(int64(w + 1))
		}
		for r := 0; r < 8; r++ {
			for k := uint64(0); k < keys; k += 2 {
				if _, ok := tr.Find(k + 2); !ok {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("key %d vanished under concurrent upserts", k+2)
				}
				if _, ok := tr.Find(k + 1); ok {
					stop.Store(true)
					wg.Wait()
					t.Fatalf("absent key %d appeared", k+1)
				}
			}
		}
		stop.Store(true)
		wg.Wait()
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestModifyBackoffBounded is the contended-split stress test: writers
// hammering one hot leaf range force repeated splits; the jittered backoff
// must keep discarded attempts within a small multiple of the operations
// (a hot spin shows up as orders of magnitude more).
func TestModifyBackoffBounded(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 64)
		const (
			workers = 8
			perW    = 4000
		)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Dense ascending keys interleaved across workers: every
				// writer targets the same right-edge leaf, so each split
				// races the whole pack.
				for i := 0; i < perW; i++ {
					k := uint64(i*workers+w) + 1
					if err := tr.Upsert(k, k); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		ops := uint64(workers * perW)
		retries := tr.SplitRetries()
		// Each split can discard at most one in-flight attempt per worker,
		// and backoff keeps re-collisions from cascading. 4 retries per op
		// is an order of magnitude above anything observed (<0.5/op).
		if retries > 4*ops {
			t.Fatalf("split retries %d for %d ops: retry loop is hot-spinning", retries, ops)
		}
		if n := tr.Len(); n != int(ops) {
			t.Fatalf("tree has %d keys, want %d", n, ops)
		}
	})
}
