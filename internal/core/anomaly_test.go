package core

import (
	"testing"
	"time"

	"rntree/internal/pmem"
)

// These tests freeze a writer at the most dangerous instant — after the new
// slot array is visible in the cache (HTM committed) but before it is
// flushed to NVM — and probe what concurrent readers observe. This is the
// read-uncommitted anomaly of §3.5: returning the new value here would be a
// linearizability violation, because a crash would revert it.

// pauseOnSlotPersist arms hooks that block the writer goroutine at the
// BeforePersist of its slot-array flush (the only 64-byte persist in a
// modify operation) until release is closed.
func pauseOnSlotPersist(a *pmem.Arena) (paused chan struct{}, release chan struct{}) {
	paused = make(chan struct{})
	release = make(chan struct{})
	armed := true
	a.SetHooks(&pmem.Hooks{
		BeforePersist: func(off, size uint64) {
			if armed && size == pmem.LineSize {
				armed = false
				close(paused)
				<-release
			}
		},
	})
	return paused, release
}

func TestDualSlotReaderNeverSeesUnflushedSlot(t *testing.T) {
	tr := newTree(t, Options{DualSlot: true}, 0)
	if err := tr.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	paused, release := pauseOnSlotPersist(tr.Arena())
	done := make(chan error, 1)
	go func() { done <- tr.Update(1, 200) }()
	<-paused
	// The writer has committed the new persistent slot array to the cache
	// but not flushed it, and has not updated the transient copy. A +DS
	// reader must return the old, durable value — without blocking.
	got := make(chan uint64, 1)
	go func() {
		v, ok := tr.Find(1)
		if !ok {
			v = 0
		}
		got <- v
	}()
	select {
	case v := <-got:
		if v != 100 {
			t.Fatalf("reader saw unflushed value %d (read-uncommitted anomaly)", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("+DS reader blocked on a writer mid-flush")
	}
	close(release)
	tr.Arena().SetHooks(nil)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v, _ := tr.Find(1); v != 200 {
		t.Fatalf("update lost: %d", v)
	}
}

func TestBaseReaderWaitsOutWriterCriticalSection(t *testing.T) {
	// Without the dual slot array, the reader cannot distinguish flushed
	// from unflushed slot state, so it must wait for the writer's critical
	// section (lock bit) to clear — it may be slow, but it must never
	// return the unflushed value.
	tr := newTree(t, Options{}, 0)
	if err := tr.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	paused, release := pauseOnSlotPersist(tr.Arena())
	done := make(chan error, 1)
	go func() { done <- tr.Update(1, 200) }()
	<-paused
	got := make(chan uint64, 1)
	go func() {
		v, _ := tr.Find(1)
		got <- v
	}()
	// While the writer is frozen inside its critical section the base
	// reader must NOT complete (that is precisely the reader/writer
	// contention +DS removes)...
	select {
	case v := <-got:
		t.Fatalf("base reader returned %d while the slot flush was in flight", v)
	case <-time.After(100 * time.Millisecond):
	}
	// ...and once the writer finishes, the reader returns the new durable
	// value.
	close(release)
	tr.Arena().SetHooks(nil)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 200 {
			t.Fatalf("reader returned %d after writer completed", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("base reader never completed after writer release")
	}
}

func TestCrashAtUnflushedSlotRevertsCleanly(t *testing.T) {
	// The other half of the anomaly argument: if the machine dies at that
	// same instant, recovery must yield the OLD value — matching what the
	// +DS reader reported above. Reader view and crash outcome agree:
	// that is durable linearizability.
	tr := newTree(t, Options{DualSlot: true}, 0)
	if err := tr.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	var img []uint64
	armed := true
	tr.Arena().SetHooks(&pmem.Hooks{
		BeforePersist: func(off, size uint64) {
			if armed && size == pmem.LineSize {
				armed = false
				img = tr.Arena().CrashImage(nil, 0)
			}
		},
	})
	if err := tr.Update(1, 200); err != nil {
		t.Fatal(err)
	}
	tr.Arena().SetHooks(nil)
	if img == nil {
		t.Fatal("hook never fired")
	}
	rec, err := CrashRecover(pmem.Recover(img, pmem.Config{}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rec.Find(1)
	if !ok || v != 100 {
		t.Fatalf("recovered value = (%d,%v), want the pre-update 100", v, ok)
	}
}
