package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rntree/internal/tree"
)

func TestConcurrentDisjointInserts(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 64)
		const workers = 8
		const per = 4000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := uint64(w) * 1_000_000
				for i := uint64(0); i < per; i++ {
					if err := tr.Insert(base+i, base+i*2); err != nil {
						t.Errorf("worker %d insert %d: %v", w, i, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			base := uint64(w) * 1_000_000
			for i := uint64(0); i < per; i++ {
				if v, ok := tr.Find(base + i); !ok || v != base+i*2 {
					t.Fatalf("worker %d key %d: (%d,%v)", w, i, v, ok)
				}
			}
		}
		if got := tr.Len(); got != workers*per {
			t.Fatalf("Len = %d, want %d", got, workers*per)
		}
	})
}

func TestConcurrentInterleavedInserts(t *testing.T) {
	// Workers insert interleaved keys (stride = workers) so they constantly
	// collide on the same leaves.
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 64)
		const workers = 8
		const per = 3000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := uint64(0); i < per; i++ {
					key := i*workers + uint64(w)
					if err := tr.Insert(key, key+1); err != nil {
						t.Errorf("insert %d: %v", key, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		n := 0
		prev := uint64(0)
		tr.Scan(0, 0, func(k, v uint64) bool {
			if n > 0 && k != prev+1 {
				t.Fatalf("gap in scan: %d after %d", k, prev)
			}
			if v != k+1 {
				t.Fatalf("key %d has value %d", k, v)
			}
			prev = k
			n++
			return true
		})
		if n != workers*per {
			t.Fatalf("scan found %d, want %d", n, workers*per)
		}
	})
}

func TestConcurrentUniqueInsertWins(t *testing.T) {
	// All workers race to insert the same keys; exactly one Insert per key
	// may succeed (linearizable conditional write).
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 16)
		const workers = 8
		const keys = 2000
		var succ [keys]atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for k := 0; k < keys; k++ {
					err := tr.Insert(uint64(k), uint64(w))
					switch err {
					case nil:
						succ[k].Add(1)
					case tree.ErrKeyExists:
					default:
						t.Errorf("insert %d: %v", k, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		for k := 0; k < keys; k++ {
			if n := succ[k].Load(); n != 1 {
				t.Fatalf("key %d inserted successfully %d times", k, n)
			}
			if _, ok := tr.Find(uint64(k)); !ok {
				t.Fatalf("key %d missing", k)
			}
		}
	})
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	// Writers continuously update a key set with values from a known
	// domain; readers must only ever observe values from that domain and
	// present keys.
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 64)
		const keys = 512
		for k := uint64(0); k < keys; k++ {
			if err := tr.Insert(k, k<<32); err != nil {
				t.Fatal(err)
			}
		}
		stop := make(chan struct{})
		var writers, wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			writers.Add(1)
			go func(seed int64) {
				defer writers.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := uint64(1); ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					k := rng.Uint64() % keys
					if err := tr.Update(k, k<<32|i); err != nil {
						t.Errorf("update %d: %v", k, err)
						return
					}
				}
			}(int64(w))
		}
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 20_000; i++ {
					k := rng.Uint64() % keys
					v, ok := tr.Find(k)
					if !ok {
						t.Errorf("key %d disappeared", k)
						return
					}
					if v>>32 != k {
						t.Errorf("key %d read torn value %#x", k, v)
						return
					}
				}
			}(int64(100 + r))
		}
		// Scanners in parallel as well.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				prev := -1
				tr.Scan(0, 0, func(k, v uint64) bool {
					if int(k) <= prev {
						t.Errorf("scan out of order: %d after %d", k, prev)
						return false
					}
					if v>>32 != k {
						t.Errorf("scan: key %d torn value %#x", k, v)
						return false
					}
					prev = int(k)
					return true
				})
			}
		}()
		wg.Wait()
		close(stop)
		writers.Wait()
		if t.Failed() {
			return
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestConcurrentMixedOpsNoCorruption(t *testing.T) {
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 64)
		const workers = 6
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 5000; i++ {
					k := rng.Uint64() % 4000
					switch rng.Intn(4) {
					case 0:
						_ = tr.Insert(k, k*10)
					case 1:
						_ = tr.Update(k, k*10+1)
					case 2:
						_ = tr.Remove(k)
					case 3:
						if v, ok := tr.Find(k); ok && v/10 != k {
							t.Errorf("key %d has foreign value %d", k, v)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		// Every surviving value must belong to its key.
		tr.Scan(0, 0, func(k, v uint64) bool {
			if v/10 != k {
				t.Fatalf("key %d has foreign value %d", k, v)
			}
			return true
		})
	})
}

func TestConcurrentMonotonicReads(t *testing.T) {
	// A single writer bumps one key's value monotonically; each reader's
	// observed sequence must be non-decreasing (no time travel). This is the
	// linearizability argument of §5.3.2 in executable form.
	bothVariants(t, func(t *testing.T, opts Options) {
		tr := newTree(t, opts, 16)
		// Surround the hot key so its leaf also sees inserts/splits.
		for k := uint64(0); k < 200; k++ {
			if err := tr.Insert(k*2, 0); err != nil {
				t.Fatal(err)
			}
		}
		const hot = uint64(199)
		if err := tr.Insert(hot, 0); err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); i <= 30_000; i++ {
				if err := tr.Update(hot, i); err != nil {
					t.Errorf("update: %v", err)
					return
				}
			}
			close(stop)
		}()
		for r := 0; r < 4; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				last := uint64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					v, ok := tr.Find(hot)
					if !ok {
						t.Error("hot key vanished")
						return
					}
					if v < last {
						t.Errorf("non-monotonic read: %d after %d", v, last)
						return
					}
					last = v
				}
			}()
		}
		wg.Wait()
	})
}
