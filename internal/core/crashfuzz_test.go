package core

import (
	"fmt"
	"math/rand"
	"testing"

	"rntree/internal/pmem"
)

// crashFuzz runs a randomized single-threaded workload against a tree,
// captures a crash image at one random persist boundary (optionally with
// random eviction of dirty cache lines), recovers from it, and checks
// durable linearizability: the recovered contents must equal the set of
// operations that had completed at the crash point, possibly plus the single
// in-flight operation — never a torn or reordered state.
func crashFuzz(t *testing.T, opts Options, trial int64, evictProb float64) {
	t.Helper()
	a := pmem.New(pmem.Config{Size: 32 << 20})
	opts.LeafCapacity = 16 // frequent splits exercise the undo path
	tr, err := New(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(trial))
	const ops = 400
	// Roughly 2 persists per op plus split traffic.
	crashPhase := rng.Intn(ops * 3)

	committed := map[uint64]uint64{}
	var before, after map[uint64]uint64 // models bracketing the crash
	var img []uint64
	phase := 0
	var inflightApply func(m map[uint64]uint64)

	snap := func() {
		if img != nil || phase != crashPhase {
			phase++
			return
		}
		phase++
		img = a.CrashImage(rng, evictProb)
		before = make(map[uint64]uint64, len(committed))
		for k, v := range committed {
			before[k] = v
		}
		after = make(map[uint64]uint64, len(committed)+1)
		for k, v := range committed {
			after[k] = v
		}
		if inflightApply != nil {
			inflightApply(after)
		}
	}
	a.SetHooks(&pmem.Hooks{
		BeforePersist: func(_, _ uint64) { snap() },
		AfterPersist:  func(_, _ uint64) { snap() },
	})

	for i := 0; i < ops; i++ {
		k := rng.Uint64() % 300
		v := rng.Uint64() >> 1
		switch rng.Intn(4) {
		case 0, 1:
			inflightApply = func(m map[uint64]uint64) { m[k] = v }
			if err := tr.Upsert(k, v); err != nil {
				t.Fatal(err)
			}
			committed[k] = v
		case 2:
			if _, ok := committed[k]; !ok {
				inflightApply = nil
				continue
			}
			inflightApply = func(m map[uint64]uint64) { delete(m, k) }
			if err := tr.Remove(k); err != nil {
				t.Fatal(err)
			}
			delete(committed, k)
		case 3:
			inflightApply = func(m map[uint64]uint64) { m[k] = v }
			err := tr.Insert(k, v)
			if _, ok := committed[k]; ok {
				continue // ErrKeyExists expected; nothing committed
			}
			if err != nil {
				t.Fatal(err)
			}
			committed[k] = v
		}
	}
	a.SetHooks(nil)
	if img == nil {
		// Crash after the whole workload: exactly the committed state.
		img = a.CrashImage(rng, evictProb)
		before = committed
		after = committed
	}

	a2 := pmem.Recover(img, pmem.Config{})
	tr2, err := CrashRecover(a2, opts)
	if err != nil {
		t.Fatalf("trial %d: recovery failed: %v", trial, err)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatalf("trial %d: recovered tree invalid: %v", trial, err)
	}
	got := map[uint64]uint64{}
	tr2.Scan(0, 0, func(k, v uint64) bool { got[k] = v; return true })
	if !mapsEqual(got, before) && !mapsEqual(got, after) {
		t.Fatalf("trial %d: recovered state matches neither pre- nor post-op model\n got=%d keys\n before=%d keys after=%d keys\n diff(before)=%s",
			trial, len(got), len(before), len(after), mapsDiff(got, before))
	}
	// The recovered tree must accept further writes.
	if err := tr2.Upsert(1_000_000, 1); err != nil {
		t.Fatalf("trial %d: post-recovery write: %v", trial, err)
	}
}

func mapsEqual(a, b map[uint64]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func mapsDiff(got, want map[uint64]uint64) string {
	s := ""
	n := 0
	for k, v := range want {
		if gv, ok := got[k]; !ok || gv != v {
			s += fmt.Sprintf(" want[%d]=%d got=(%d)", k, v, gv)
			if n++; n > 5 {
				break
			}
		}
	}
	for k, v := range got {
		if _, ok := want[k]; !ok {
			s += fmt.Sprintf(" extra[%d]=%d", k, v)
			if n++; n > 10 {
				break
			}
		}
	}
	return s
}

func TestCrashFuzzNoEviction(t *testing.T) {
	for trial := int64(0); trial < 25; trial++ {
		crashFuzz(t, Options{}, trial, 0)
	}
}

func TestCrashFuzzRandomEviction(t *testing.T) {
	// Random subsets of dirty lines reach NVM before the crash — the
	// adversarial schedule persist ordering must survive.
	for trial := int64(100); trial < 125; trial++ {
		crashFuzz(t, Options{}, trial, 0.4)
	}
}

func TestCrashFuzzFullEviction(t *testing.T) {
	for trial := int64(200); trial < 215; trial++ {
		crashFuzz(t, Options{}, trial, 1.0)
	}
}

func TestCrashFuzzDualSlot(t *testing.T) {
	for trial := int64(300); trial < 325; trial++ {
		crashFuzz(t, Options{DualSlot: true}, trial, 0.4)
	}
}
