package treetest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rntree/internal/baseline/cdds"
	"rntree/internal/baseline/fptree"
	"rntree/internal/baseline/nvtree"
	"rntree/internal/baseline/wbtree"
	"rntree/internal/core"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// mkAll builds one instance of every tree implementation in the repository.
func mkAll(t testing.TB) map[string]tree.Index {
	t.Helper()
	arena := func() *pmem.Arena { return pmem.New(pmem.Config{Size: 64 << 20}) }
	out := map[string]tree.Index{}
	add := func(name string, ix tree.Index, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = ix
	}
	rn, err := core.New(arena(), core.Options{})
	add("rntree", rn, err)
	ds, err := core.New(arena(), core.Options{DualSlot: true})
	add("rntree+ds", ds, err)
	nv, err := nvtree.New(arena(), nvtree.Options{Conditional: true})
	add("nvtree", nv, err)
	wb, err := wbtree.New(arena(), wbtree.Options{})
	add("wbtree", wb, err)
	so, err := wbtree.New(arena(), wbtree.Options{SlotOnly: true})
	add("wbtree-so", so, err)
	fp, err := fptree.New(arena(), fptree.Options{})
	add("fptree", fp, err)
	cd, err := cdds.New(arena(), cdds.Options{})
	add("cdds", cd, err)
	return out
}

// TestDifferentialAllTrees feeds the same randomized operation sequence to
// every tree implementation and requires byte-identical observable
// behaviour: same per-op results (including conditional-write errors), same
// final contents, same scan order. Any divergence pinpoints a semantic bug
// in one leaf design.
func TestDifferentialAllTrees(t *testing.T) {
	trees := mkAll(t)
	rng := rand.New(rand.NewSource(99))
	type result struct {
		err   bool
		val   uint64
		found bool
	}
	for i := 0; i < 15_000; i++ {
		k := rng.Uint64() % 2000
		v := rng.Uint64() >> 1
		op := rng.Intn(5)
		var ref *result
		for name, ix := range trees {
			var r result
			switch op {
			case 0:
				r.err = ix.Insert(k, v) != nil
			case 1:
				r.err = ix.Update(k, v) != nil
			case 2:
				r.err = ix.Upsert(k, v) != nil
			case 3:
				r.err = ix.Remove(k) != nil
			case 4:
				r.val, r.found = ix.Find(k)
			}
			if ref == nil {
				ref = &r
			} else if *ref != r {
				t.Fatalf("op %d (kind %d, key %d): %s diverged: %+v vs %+v",
					i, op, k, name, r, *ref)
			}
		}
	}
	// Final contents must agree exactly, in scan order.
	var refDump []tree.KV
	refName := ""
	for name, ix := range trees {
		var dump []tree.KV
		ix.Scan(0, 0, func(k, v uint64) bool {
			dump = append(dump, tree.KV{Key: k, Value: v})
			return true
		})
		if refDump == nil {
			refDump, refName = dump, name
			continue
		}
		if len(dump) != len(refDump) {
			t.Fatalf("%s has %d records, %s has %d", name, len(dump), refName, len(refDump))
		}
		for i := range dump {
			if dump[i] != refDump[i] {
				t.Fatalf("%s[%d] = %+v, %s[%d] = %+v", name, i, dump[i], refName, i, refDump[i])
			}
		}
	}
}

// Property: short random op sequences leave all trees in agreement.
func TestQuickDifferentialShortSequences(t *testing.T) {
	f := func(ops []uint16) bool {
		trees := mkAll(t)
		for _, raw := range ops {
			k := uint64(raw % 50)
			v := uint64(raw)
			kind := int(raw>>8) % 4
			var ref *bool
			for _, ix := range trees {
				var e bool
				switch kind {
				case 0:
					e = ix.Insert(k, v) != nil
				case 1:
					e = ix.Update(k, v) != nil
				case 2:
					e = ix.Remove(k) != nil
				case 3:
					_, found := ix.Find(k)
					e = !found
				}
				if ref == nil {
					ref = &e
				} else if *ref != e {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
