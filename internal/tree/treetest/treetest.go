// Package treetest provides a conformance suite run against every tree
// implementation in this repository.
package treetest

import (
	"rntree/internal/tree"

	"math/rand"
	"sort"
	"testing"
)

// RunConformance exercises an Index implementation against a reference
// model: conditional-write semantics, ordered scans, split pressure, and a
// long randomized op sequence. Every tree in this repository (RNTree and all
// baselines) must pass it with identical observable behaviour.
func RunConformance(t *testing.T, name string, mk func(t *testing.T) tree.Index) {
	t.Run(name+"/Conditional", func(t *testing.T) { confConditional(t, mk(t)) })
	t.Run(name+"/SequentialSplits", func(t *testing.T) { confSequential(t, mk(t)) })
	t.Run(name+"/ReverseInserts", func(t *testing.T) { confReverse(t, mk(t)) })
	t.Run(name+"/RandomOps", func(t *testing.T) { confRandom(t, mk(t)) })
	t.Run(name+"/Scans", func(t *testing.T) { confScan(t, mk(t)) })
	t.Run(name+"/UpdateHeavy", func(t *testing.T) { confUpdateHeavy(t, mk(t)) })
}

func confConditional(t *testing.T, ix tree.Index) {
	if err := ix.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(5, 51); err != tree.ErrKeyExists {
		t.Fatalf("duplicate insert: %v", err)
	}
	if v, ok := ix.Find(5); !ok || v != 50 {
		t.Fatalf("Find(5) = %d,%v", v, ok)
	}
	if err := ix.Update(6, 1); err != tree.ErrKeyNotFound {
		t.Fatalf("update absent: %v", err)
	}
	if err := ix.Update(5, 55); err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.Find(5); v != 55 {
		t.Fatalf("update invisible: %d", v)
	}
	if err := ix.Remove(7); err != tree.ErrKeyNotFound {
		t.Fatalf("remove absent: %v", err)
	}
	if err := ix.Remove(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.Find(5); ok {
		t.Fatal("removed key found")
	}
	if err := ix.Upsert(8, 80); err != nil {
		t.Fatal(err)
	}
	if err := ix.Upsert(8, 81); err != nil {
		t.Fatal(err)
	}
	if v, _ := ix.Find(8); v != 81 {
		t.Fatalf("upsert: %d", v)
	}
}

func confSequential(t *testing.T, ix tree.Index) {
	const n = 5000
	for i := uint64(0); i < n; i++ {
		if err := ix.Insert(i, i+1); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := ix.Find(i); !ok || v != i+1 {
			t.Fatalf("Find(%d) = %d,%v", i, v, ok)
		}
	}
}

func confReverse(t *testing.T, ix tree.Index) {
	const n = 3000
	for i := n; i > 0; i-- {
		if err := ix.Insert(uint64(i)*2, uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 1; i <= n; i++ {
		if v, ok := ix.Find(uint64(i) * 2); !ok || v != uint64(i) {
			t.Fatalf("Find(%d) = %d,%v", i*2, v, ok)
		}
	}
	if _, ok := ix.Find(1); ok {
		t.Fatal("found odd key")
	}
}

func confRandom(t *testing.T, ix tree.Index) {
	rng := rand.New(rand.NewSource(11))
	model := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 3000
		v := rng.Uint64() >> 1
		switch rng.Intn(5) {
		case 0, 1:
			err := ix.Insert(k, v)
			if _, ok := model[k]; ok {
				if err != tree.ErrKeyExists {
					t.Fatalf("op %d insert dup %d: %v", i, k, err)
				}
			} else if err != nil {
				t.Fatalf("op %d insert %d: %v", i, k, err)
			} else {
				model[k] = v
			}
		case 2:
			err := ix.Update(k, v)
			if _, ok := model[k]; ok {
				if err != nil {
					t.Fatalf("op %d update %d: %v", i, k, err)
				}
				model[k] = v
			} else if err != tree.ErrKeyNotFound {
				t.Fatalf("op %d update absent %d: %v", i, k, err)
			}
		case 3:
			err := ix.Remove(k)
			if _, ok := model[k]; ok {
				if err != nil {
					t.Fatalf("op %d remove %d: %v", i, k, err)
				}
				delete(model, k)
			} else if err != tree.ErrKeyNotFound {
				t.Fatalf("op %d remove absent %d: %v", i, k, err)
			}
		case 4:
			v, ok := ix.Find(k)
			mv, mok := model[k]
			if ok != mok || (ok && v != mv) {
				t.Fatalf("op %d find %d = (%d,%v) want (%d,%v)", i, k, v, ok, mv, mok)
			}
		}
	}
	got := map[uint64]uint64{}
	ix.Scan(0, 0, func(k, v uint64) bool { got[k] = v; return true })
	if len(got) != len(model) {
		t.Fatalf("final scan: %d records, model %d", len(got), len(model))
	}
	for k, v := range model {
		if gv, ok := got[k]; !ok || gv != v {
			t.Fatalf("final scan: key %d = (%d,%v), want %d", k, gv, ok, v)
		}
	}
}

func confScan(t *testing.T, ix tree.Index) {
	rng := rand.New(rand.NewSource(21))
	var keys []uint64
	seen := map[uint64]bool{}
	for len(keys) < 4000 {
		k := rng.Uint64() % 1_000_000
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		if err := ix.Insert(k, k^0xffff); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// Full ordered scan.
	i := 0
	n := ix.Scan(0, 0, func(k, v uint64) bool {
		if k != keys[i] || v != k^0xffff {
			t.Fatalf("scan pos %d: got (%d,%d) want key %d", i, k, v, keys[i])
		}
		i++
		return true
	})
	if n != len(keys) {
		t.Fatalf("scan visited %d, want %d", n, len(keys))
	}
	// Bounded scan from an arbitrary start.
	start := keys[1000] + 1
	wantIdx := sort.Search(len(keys), func(i int) bool { return keys[i] >= start })
	j := 0
	ix.Scan(start, 100, func(k, v uint64) bool {
		if k != keys[wantIdx+j] {
			t.Fatalf("bounded scan pos %d: got %d want %d", j, k, keys[wantIdx+j])
		}
		j++
		return true
	})
	if j != 100 {
		t.Fatalf("bounded scan visited %d", j)
	}
	// Scan past the end.
	if n := ix.Scan(1<<62, 0, func(_, _ uint64) bool { return true }); n != 0 {
		t.Fatalf("scan past end visited %d", n)
	}
}

func confUpdateHeavy(t *testing.T, ix tree.Index) {
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		if err := ix.Insert(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	for round := uint64(1); round <= 100; round++ {
		for k := uint64(0); k < keys; k++ {
			if err := ix.Update(k, round*1000+k); err != nil {
				t.Fatalf("round %d update %d: %v", round, k, err)
			}
		}
	}
	for k := uint64(0); k < keys; k++ {
		if v, ok := ix.Find(k); !ok || v != 100*1000+k {
			t.Fatalf("Find(%d) = %d,%v", k, v, ok)
		}
	}
}
