// Package tree defines the common interface implemented by RNTree and every
// baseline tree (NV-Tree, wB+Tree, wB+Tree-SO, FPTree, CDDS), along with the
// shared error values for conditional writes (Section 3.3 of the paper).
package tree

import "errors"

// Conditional-write errors (Section 3.3): an insert succeeds only if no
// record with the same key exists; update and remove succeed only if one
// does.
var (
	// ErrKeyExists is returned by Insert when the key is already present.
	ErrKeyExists = errors.New("tree: key already exists")
	// ErrKeyNotFound is returned by Update and Remove when the key is absent.
	ErrKeyNotFound = errors.New("tree: key not found")
	// ErrFull is returned when the arena backing the tree is exhausted.
	ErrFull = errors.New("tree: persistent arena full")
)

// KV is one key-value record.
type KV struct {
	Key   uint64
	Value uint64
}

// Index is the operation set every tree in this repository supports: the
// paper's find and range query (read-only) plus insert, update and remove
// (modify operations).
type Index interface {
	// Insert adds key with value; it fails with ErrKeyExists if the key is
	// present (conditional write).
	Insert(key, value uint64) error
	// Update overwrites the value of an existing key; it fails with
	// ErrKeyNotFound if the key is absent (conditional write).
	Update(key, value uint64) error
	// Upsert writes key unconditionally (insert-or-update).
	Upsert(key, value uint64) error
	// Find returns the value stored under key.
	Find(key uint64) (uint64, bool)
	// Remove deletes key; it fails with ErrKeyNotFound if absent.
	Remove(key uint64) error
	// Scan visits records with key >= start in ascending key order until fn
	// returns false or max records were visited (max <= 0 means unlimited).
	// It returns the number of records visited.
	Scan(start uint64, max int, fn func(key, value uint64) bool) int
}
