// Package drain is the shared graceful-shutdown trigger for the rnkv and
// rnserved binaries. A Watcher turns an OS signal (or a programmatic
// Trigger) into two complementary views of "we are shutting down":
//
//   - Done(), a channel for code that is parked in a select and can react
//     the moment the signal lands, and
//   - Triggered(), a cheap atomic flag for code that is busy in a loop —
//     a long scan, a batch apply — and can only poll between steps.
//
// The split matters because a blocked worker never reaches the select: the
// original rnkv shell only checked its signal channel between input lines,
// so a signal during a large scan waited for the scan to finish. With a
// Watcher the scan's per-row callback polls Triggered() and cuts the scan
// short, then the prompt loop's select on Done() takes the clean
// checkpoint path.
package drain

import (
	"os"
	"sync"
	"sync/atomic"
)

// Watcher fans one shutdown trigger out to any number of observers.
type Watcher struct {
	done      chan struct{}
	once      sync.Once
	triggered atomic.Bool
}

// New returns a Watcher that trips when sig delivers a value. A nil sig is
// allowed: the Watcher then only trips via Trigger.
func New(sig <-chan os.Signal) *Watcher {
	w := &Watcher{done: make(chan struct{})}
	if sig != nil {
		go func() {
			<-sig
			w.Trigger()
		}()
	}
	return w
}

// Trigger trips the Watcher; safe to call many times from any goroutine.
func (w *Watcher) Trigger() {
	w.once.Do(func() {
		w.triggered.Store(true)
		close(w.done)
	})
}

// Done returns a channel closed when the Watcher trips.
func (w *Watcher) Done() <-chan struct{} { return w.done }

// Triggered reports whether the Watcher has tripped. Single atomic load —
// cheap enough for per-row polling inside a scan callback.
func (w *Watcher) Triggered() bool { return w.triggered.Load() }
