package drain

import (
	"os"
	"runtime"
	"syscall"
	"testing"
	"time"
)

func TestTriggerIdempotent(t *testing.T) {
	w := New(nil)
	if w.Triggered() {
		t.Fatal("fresh watcher already triggered")
	}
	select {
	case <-w.Done():
		t.Fatal("fresh watcher Done closed")
	default:
	}
	w.Trigger()
	w.Trigger() // second call must not panic (double close)
	if !w.Triggered() {
		t.Fatal("Triggered false after Trigger")
	}
	select {
	case <-w.Done():
	default:
		t.Fatal("Done not closed after Trigger")
	}
}

func TestSignalTrips(t *testing.T) {
	sig := make(chan os.Signal, 1)
	w := New(sig)
	sig <- syscall.SIGTERM
	deadline := time.Now().Add(5 * time.Second)
	for !w.Triggered() {
		if time.Now().After(deadline) {
			t.Fatal("signal never tripped the watcher")
		}
		runtime.Gosched()
	}
	<-w.Done()
}

func TestNilSignalOnlyManual(t *testing.T) {
	w := New(nil)
	time.Sleep(time.Millisecond)
	if w.Triggered() {
		t.Fatal("nil-signal watcher tripped on its own")
	}
	w.Trigger()
	if !w.Triggered() {
		t.Fatal("manual trigger failed")
	}
}
