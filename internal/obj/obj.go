// Package obj layers typed values — Redis-shaped hashes and sets — and
// per-key TTL expiry on top of the flat kv store (DESIGN.md §15). Objects
// are ordinary value-log records living under a reserved key namespace, so
// they inherit kv's crash consistency, compaction, replication LSNs and
// recovery for free; what this package adds is the multi-key atomicity a
// composite update needs (an HSET touches the object header AND a field
// record) via an undo-logged intent record that recovery rolls forward, or —
// when a sub-operation fails at runtime — rolls back.
//
// Key namespace (first byte 0x01 is reserved; the server rejects flat keys
// that start with it):
//
//	0x01 'H' <name>                         object header
//	0x01 'h' <u16 len(name)> <name> <field> hash field record
//	0x01 's' <u16 len(name)> <name> <member> set member record
//	0x01 'I' <name>                         intent record (in-flight composite)
//	0x01 'X' <name>                         expiry record (u64 LE deadline, ms)
//
// The header carries the object's type and its field/member list, so
// SMEMBERS is one read and HGET is one read against the field record. A
// composite op commits by (1) persisting the intent record — kv's single-
// record commit point makes that atomic — (2) applying the sub-operations,
// (3) deleting the intent. The intent encodes both the redo images and the
// prior state of every touched key (the undo log), so a crash at any point
// recovers: intent present ⇒ roll the sub-operations forward (they are
// idempotent overwrites); intent absent ⇒ the op either never started or
// fully committed. A sub-operation that fails at runtime (ErrTooLarge,
// ErrFull) rolls the applied prefix back from the undo images and deletes
// the intent, so the error surfaces with the store unchanged.
package obj

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rntree/kv"
)

// Namespace bytes. NSByte prefixes every record this package owns.
const (
	NSByte = 0x01

	tagHeader = 'H'
	tagField  = 'h'
	tagMember = 's'
	tagIntent = 'I'
	tagExpiry = 'X'
)

// Object types stored in byte 0 of a header value.
const (
	TypeHash = 'h'
	TypeSet  = 's'
)

var (
	// ErrWrongType is returned when an op's verb disagrees with the stored
	// object's type (HGET against a set, SADD against a hash).
	ErrWrongType = errors.New("obj: operation against a key holding the wrong kind of value")
	// ErrBadName rejects empty names/fields/members and names longer than
	// the u16 length frame.
	ErrBadName = errors.New("obj: empty or oversized object name, field or member")
	// ErrReserved is returned for flat-key operations on keys inside the
	// reserved object namespace.
	ErrReserved = errors.New("obj: key is in the reserved object namespace")
)

const maxName = 1<<16 - 1

// IsInternalKey reports whether k lives in the reserved object namespace and
// must be hidden from flat-key reads and scans.
func IsInternalKey(k []byte) bool { return len(k) > 0 && k[0] == NSByte }

// ParseInternalKey decodes a reserved-namespace key into its tag ('H'
// header, 'h' hash field, 's' set member, 'I' intent, 'X' expiry) and the
// object name it belongs to. Diagnostic helper — the fault explorer's
// oracle sweeps raw records with it; ok is false outside the namespace or
// for a key too short to carry its layout.
func ParseInternalKey(k []byte) (tag byte, name []byte, ok bool) {
	if len(k) < 2 || k[0] != NSByte {
		return 0, nil, false
	}
	switch k[1] {
	case tagHeader, tagIntent, tagExpiry:
		return k[1], k[2:], true
	case tagField, tagMember:
		if len(k) < 4 {
			return 0, nil, false
		}
		n := int(binary.LittleEndian.Uint16(k[2:4]))
		if len(k) < 4+n {
			return 0, nil, false
		}
		return k[1], k[4 : 4+n], true
	}
	return 0, nil, false
}

// Key constructors. All allocate; callers on hot paths reuse via op buffers.

func headerKey(name []byte) []byte {
	k := make([]byte, 0, 2+len(name))
	return append(append(k, NSByte, tagHeader), name...)
}

func intentKey(name []byte) []byte {
	k := make([]byte, 0, 2+len(name))
	return append(append(k, NSByte, tagIntent), name...)
}

func expiryKey(name []byte) []byte {
	k := make([]byte, 0, 2+len(name))
	return append(append(k, NSByte, tagExpiry), name...)
}

func subKey(tag byte, name, sub []byte) []byte {
	k := make([]byte, 0, 4+len(name)+len(sub))
	k = append(k, NSByte, tag)
	k = binary.LittleEndian.AppendUint16(k, uint16(len(name)))
	k = append(k, name...)
	return append(k, sub...)
}

// Options configures an object layer attached to a kv store.
type Options struct {
	// Clock returns the current time in milliseconds. Nil means wall clock.
	// Injected by tests and the fault explorer for determinism.
	Clock func() int64
	// ExpireInterval is the background expirer cadence; 0 disables the
	// goroutine (ticks can still be driven manually via ExpireTick).
	ExpireInterval time.Duration
	// ReadOnly attaches in replica mode: expired keys are masked on read
	// but never reaped, and in-flight intents are left alone (the primary's
	// stream resolves them). Activate flips the layer to primary mode.
	ReadOnly bool
	// Invalidate, when non-nil, is called with every user-visible name a
	// reap removes, after the reap commits — the server wires this to its
	// hot-key cache so a reaped flat key cannot be served from DRAM.
	// SetInvalidate installs or replaces it after Attach.
	Invalidate func(name []byte)
}

// Stats are monotonic counters for the STATS verb and tests.
type Stats struct {
	Reaps         uint64 // keys reaped (expirer or lazy read-path reap)
	LazyExpiries  uint64 // reads masked by an expired-but-unreaped key
	IntentsRolled uint64 // intents rolled forward by recovery/activation
	IntentsUndone uint64 // composite ops rolled back after a sub-op failure
}

// Store is the typed-object layer. All methods are safe for concurrent use.
type Store struct {
	st   *kv.Store
	opts Options

	active atomic.Bool // primary mode: may mutate (reap, roll intents)

	// locks stripe-serializes composite operations per object name, so two
	// HSETs on one object cannot interleave their header read-modify-write,
	// and a reap cannot race a concurrent field write on the same name.
	locks [64]sync.Mutex

	// mu guards the DRAM expiry index: deadline per name plus a min-heap
	// the expirer pops. Heap entries go stale when a TTL is overwritten or
	// removed; pops validate against the map.
	mu   sync.RWMutex
	exp  map[string]int64
	heap expHeap

	invalidate atomic.Pointer[func(name []byte)]

	reaps         atomic.Uint64
	lazyExpiries  atomic.Uint64
	intentsRolled atomic.Uint64
	intentsUndone atomic.Uint64

	stopc chan struct{}
	done  sync.WaitGroup
}

type expEntry struct {
	deadline int64
	name     string
}

type expHeap []expEntry

func (h expHeap) Len() int           { return len(h) }
func (h expHeap) Less(i, j int) bool { return h[i].deadline < h[j].deadline }
func (h expHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x any)        { *h = append(*h, x.(expEntry)) }
func (h *expHeap) Pop() any {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

// Attach layers a typed-object store over st: rebuilds the DRAM expiry
// index from persisted expiry records, rolls any in-flight intents forward
// (primary mode only — a replica leaves them for the stream to resolve),
// and starts the background expirer if an interval is configured.
func Attach(st *kv.Store, opts Options) (*Store, error) {
	if opts.Clock == nil {
		opts.Clock = func() int64 { return time.Now().UnixMilli() }
	}
	o := &Store{
		st:    st,
		opts:  opts,
		exp:   make(map[string]int64),
		stopc: make(chan struct{}),
	}
	o.active.Store(!opts.ReadOnly)
	if opts.Invalidate != nil {
		o.invalidate.Store(&opts.Invalidate)
	}

	var intents [][]byte
	st.Range(func(key, value []byte) bool {
		if len(key) < 2 || key[0] != NSByte {
			return true
		}
		switch key[1] {
		case tagExpiry:
			if len(value) == 8 {
				name := string(key[2:])
				d := int64(binary.LittleEndian.Uint64(value))
				o.exp[name] = d
				o.heap = append(o.heap, expEntry{d, name})
			}
		case tagIntent:
			intents = append(intents, append([]byte(nil), key...))
		}
		return true
	})
	heap.Init(&o.heap)
	if o.active.Load() {
		for _, ik := range intents {
			if err := o.resolveIntent(ik); err != nil {
				return nil, fmt.Errorf("obj: recovering intent %q: %w", ik, err)
			}
		}
	}
	if opts.ExpireInterval > 0 {
		o.done.Add(1)
		go o.expireLoop(opts.ExpireInterval)
	}
	return o, nil
}

// Close stops the background expirer. The underlying kv store is not closed.
func (o *Store) Close() {
	select {
	case <-o.stopc:
	default:
		close(o.stopc)
	}
	o.done.Wait()
}

// Activate flips a replica-attached layer into primary mode after a
// promotion: rolls any intents the stream shipped but never resolved
// forward (so a failover mid-composite never leaves a half-applied object
// visible), then enables reaping. Idempotent.
func (o *Store) Activate() error {
	var intents [][]byte
	o.st.Range(func(key, value []byte) bool {
		if len(key) >= 2 && key[0] == NSByte && key[1] == tagIntent {
			intents = append(intents, append([]byte(nil), key...))
		}
		return true
	})
	for _, ik := range intents {
		if err := o.resolveIntent(ik); err != nil {
			return fmt.Errorf("obj: activating intent %q: %w", ik, err)
		}
	}
	o.active.Store(true)
	return nil
}

// Active reports whether the layer is in primary (mutating) mode.
func (o *Store) Active() bool { return o.active.Load() }

// SetInvalidate installs the reap-notification hook (nil uninstalls). The
// server wires this to its hot-key cache after construction.
func (o *Store) SetInvalidate(fn func(name []byte)) {
	if fn == nil {
		o.invalidate.Store(nil)
		return
	}
	o.invalidate.Store(&fn)
}

// Stats returns a snapshot of the layer's counters.
func (o *Store) Stats() Stats {
	return Stats{
		Reaps:         o.reaps.Load(),
		LazyExpiries:  o.lazyExpiries.Load(),
		IntentsRolled: o.intentsRolled.Load(),
		IntentsUndone: o.intentsUndone.Load(),
	}
}

func (o *Store) lockFor(name []byte) *sync.Mutex {
	// FNV-1a, same shape as kv.Hash, folded to the stripe count.
	h := uint64(1469598103934665603)
	for _, b := range name {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &o.locks[h&63]
}

func checkName(name []byte) error {
	if len(name) == 0 || len(name) > maxName {
		return ErrBadName
	}
	return nil
}

// ---- header codec ----

// header value: [type byte][u32 count]([u16 len][bytes])*
type header struct {
	typ   byte
	elems [][]byte
}

func decodeHeader(v []byte) (header, error) {
	var h header
	if len(v) < 5 {
		return h, fmt.Errorf("obj: short header (%d bytes)", len(v))
	}
	h.typ = v[0]
	n := binary.LittleEndian.Uint32(v[1:5])
	pos := 5
	for i := uint32(0); i < n; i++ {
		if pos+2 > len(v) {
			return h, errors.New("obj: truncated header element length")
		}
		l := int(binary.LittleEndian.Uint16(v[pos:]))
		pos += 2
		if pos+l > len(v) {
			return h, errors.New("obj: truncated header element")
		}
		h.elems = append(h.elems, v[pos:pos+l])
		pos += l
	}
	return h, nil
}

func (h header) encode() []byte {
	sz := 5
	for _, e := range h.elems {
		sz += 2 + len(e)
	}
	v := make([]byte, 0, sz)
	v = append(v, h.typ)
	v = binary.LittleEndian.AppendUint32(v, uint32(len(h.elems)))
	for _, e := range h.elems {
		v = binary.LittleEndian.AppendUint16(v, uint16(len(e)))
		v = append(v, e...)
	}
	return v
}

func (h header) index(elem []byte) int {
	for i, e := range h.elems {
		if string(e) == string(elem) {
			return i
		}
	}
	return -1
}

// readHeader fetches and decodes name's header; ok=false when absent.
func (o *Store) readHeader(name []byte) (header, bool, error) {
	v, err := o.st.Get(headerKey(name))
	if err == kv.ErrNotFound {
		return header{}, false, nil
	}
	if err != nil {
		return header{}, false, err
	}
	h, err := decodeHeader(v)
	if err != nil {
		return header{}, false, err
	}
	return h, true, nil
}

// ---- expiry index ----

// alive reports whether name is unexpired right now. Expired names are
// masked immediately (lazy expiry) and, in primary mode, reaped in the
// background by the next expirer tick — reads never block on the reap.
func (o *Store) alive(name []byte) bool {
	o.mu.RLock()
	d, ok := o.exp[string(name)]
	o.mu.RUnlock()
	if !ok || o.opts.Clock() < d {
		return true
	}
	o.lazyExpiries.Add(1)
	return false
}

// Expired reports whether key has a TTL that has already passed. The server
// consults this on the flat GET path before its hot-key cache, so an
// expired-but-unreaped key is never served from DRAM.
func (o *Store) Expired(key []byte) bool { return !o.alive(key) }

func (o *Store) setDeadline(name []byte, d int64) {
	o.mu.Lock()
	o.exp[string(name)] = d
	heap.Push(&o.heap, expEntry{d, string(name)})
	o.mu.Unlock()
}

func (o *Store) clearDeadline(name []byte) {
	o.mu.Lock()
	delete(o.exp, string(name))
	o.mu.Unlock()
}
