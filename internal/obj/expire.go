package obj

import (
	"container/heap"
	"encoding/binary"
	"time"

	"rntree/kv"
)

// Background expirer (DESIGN.md §15.3). The DRAM index is a deadline map
// plus a min-heap; each tick pops every due entry and reaps it through the
// same intent-record commit as any composite write, so a crash mid-reap
// recovers to "fully reaped" — an expired key can never resurrect, and the
// heap space of its records is freed exactly once (by kv's compaction of
// the delete tombstones, not by this layer). Replicas never reap: the
// primary's reap ships as ordinary deletes on the LSN stream.

// expireLoop drives ExpireTick at the configured cadence until Close.
func (o *Store) expireLoop(interval time.Duration) {
	defer o.done.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-o.stopc:
			return
		case <-t.C:
			o.ExpireTick()
		}
	}
}

// ExpireTick reaps every key whose deadline has passed and returns how many
// it reaped. Safe to call concurrently with reads, writes and compaction;
// a no-op in replica mode.
func (o *Store) ExpireTick() int {
	if !o.active.Load() {
		return 0
	}
	reaped := 0
	for {
		now := o.opts.Clock()
		o.mu.Lock()
		if len(o.heap) == 0 || o.heap[0].deadline > now {
			o.mu.Unlock()
			return reaped
		}
		e := heap.Pop(&o.heap).(expEntry)
		if d, ok := o.exp[e.name]; !ok || d != e.deadline {
			// Stale heap entry: the TTL was overwritten or removed after
			// this entry was pushed. The live deadline has its own entry.
			o.mu.Unlock()
			continue
		}
		o.mu.Unlock()
		name := []byte(e.name)
		mu := o.lockFor(name)
		mu.Lock()
		err := o.reapLocked(name)
		mu.Unlock()
		if err != nil {
			// Leave the deadline in the map: the key stays masked and the
			// next tick retries (the heap entry is gone, so re-arm it).
			o.mu.Lock()
			if d, ok := o.exp[e.name]; ok && d == e.deadline {
				heap.Push(&o.heap, e)
			}
			o.mu.Unlock()
			return reaped
		}
		reaped++
	}
}

// reapLocked removes one expired name — its expiry record, flat key, and
// object records — as a single intent-committed composite. Caller holds the
// name's stripe lock. Exactly-once: the persisted expiry record is the
// reap's ground truth — whoever still sees it (and a passed deadline)
// performs the reap; everyone else finds it gone and no-ops. Compaction
// never deletes live records, so a shard compacting mid-reap only ever
// relocates them; the delete tombstones this commit writes stay the newest
// versions either way.
func (o *Store) reapLocked(name []byte) error {
	if !o.active.Load() {
		return nil
	}
	ev, err := o.st.Get(expiryKey(name))
	if err == kv.ErrNotFound {
		o.clearDeadline(name)
		return nil
	}
	if err != nil {
		return err
	}
	if len(ev) == 8 {
		if d := int64(binary.LittleEndian.Uint64(ev)); o.opts.Clock() < d {
			// Re-armed with a later deadline after we decided to reap.
			return nil
		}
	}
	ops := []subOp{{kind: subDel, key: expiryKey(name)}}
	if o.st.Has(name) {
		ops = append(ops, subOp{kind: subDel, key: append([]byte(nil), name...)})
	}
	h, found, err := o.readHeader(name)
	if err != nil {
		return err
	}
	if found {
		tag := byte(tagField)
		if h.typ == TypeSet {
			tag = tagMember
		}
		for _, e := range h.elems {
			ops = append(ops, subOp{kind: subDel, key: subKey(tag, name, e)})
		}
		ops = append(ops, subOp{kind: subDel, key: headerKey(name)})
	}
	if err := o.commit(name, ops); err != nil {
		return err
	}
	o.clearDeadline(name)
	o.reaps.Add(1)
	if fn := o.invalidate.Load(); fn != nil {
		(*fn)(name)
	}
	return nil
}

// OnReplApply keeps a replica's DRAM expiry index live as shipped records
// land, so replica reads mask expired keys and a freshly promoted primary
// can start reaping without a rebuild. kind is the kv record kind
// (kv.ReplPut / kv.ReplDelete).
func (o *Store) OnReplApply(kind uint8, key, val []byte) {
	if len(key) < 2 || key[0] != NSByte || key[1] != tagExpiry {
		return
	}
	name := key[2:]
	if kind == kv.ReplDelete {
		o.clearDeadline(name)
		return
	}
	if len(val) == 8 {
		o.setDeadline(name, int64(binary.LittleEndian.Uint64(val)))
	}
}
