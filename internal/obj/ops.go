package obj

import (
	"encoding/binary"

	"rntree/kv"
)

// Typed operations. Writes stripe-lock on the object name so a composite
// read-modify-write of the header cannot interleave with another writer or
// a reap of the same object; reads are lock-free against kv (expiry masking
// is a DRAM map lookup).

// memberMark is the value stored under a set-member record — presence is
// the payload.
var memberMark = []byte{1}

// HSet writes field=val on hash name, creating the object if absent. A new
// field commits the header update and the field record atomically through
// an intent record; overwriting an existing field is a single-record commit.
func (o *Store) HSet(name, field, val []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := checkName(field); err != nil {
		return err
	}
	mu := o.lockFor(name)
	mu.Lock()
	defer mu.Unlock()
	if !o.alive(name) {
		if err := o.reapLocked(name); err != nil {
			return err
		}
	}
	h, found, err := o.readHeader(name)
	if err != nil {
		return err
	}
	if !found {
		h = header{typ: TypeHash}
	} else if h.typ != TypeHash {
		return ErrWrongType
	}
	fk := subKey(tagField, name, field)
	if h.index(field) >= 0 {
		// Field already listed: the header is unchanged, so the overwrite
		// is atomic on its own — no intent needed.
		return o.st.Put(fk, val)
	}
	h.elems = append(h.elems, field)
	return o.commit(name, []subOp{
		{kind: subPut, key: fk, val: val},
		{kind: subPut, key: headerKey(name), val: h.encode()},
	})
}

// HGet reads field from hash name.
func (o *Store) HGet(name, field []byte) ([]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	if err := checkName(field); err != nil {
		return nil, err
	}
	if !o.alive(name) {
		return nil, kv.ErrNotFound
	}
	return o.st.Get(subKey(tagField, name, field))
}

// HDel removes field from hash name; deleting the last field removes the
// object (and its TTL) entirely.
func (o *Store) HDel(name, field []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := checkName(field); err != nil {
		return err
	}
	return o.removeElem(name, field, TypeHash, tagField)
}

// SAdd adds member to set name, creating the object if absent. A repeated
// add is a no-op.
func (o *Store) SAdd(name, member []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := checkName(member); err != nil {
		return err
	}
	mu := o.lockFor(name)
	mu.Lock()
	defer mu.Unlock()
	if !o.alive(name) {
		if err := o.reapLocked(name); err != nil {
			return err
		}
	}
	h, found, err := o.readHeader(name)
	if err != nil {
		return err
	}
	if !found {
		h = header{typ: TypeSet}
	} else if h.typ != TypeSet {
		return ErrWrongType
	}
	if h.index(member) >= 0 {
		return nil
	}
	h.elems = append(h.elems, member)
	return o.commit(name, []subOp{
		{kind: subPut, key: subKey(tagMember, name, member), val: memberMark},
		{kind: subPut, key: headerKey(name), val: h.encode()},
	})
}

// SRem removes member from set name; removing the last member removes the
// object entirely.
func (o *Store) SRem(name, member []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := checkName(member); err != nil {
		return err
	}
	return o.removeElem(name, member, TypeSet, tagMember)
}

// SMembers lists set name's members. An absent (or expired) set is an
// empty list, Redis-style.
func (o *Store) SMembers(name []byte) ([][]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	if !o.alive(name) {
		return nil, nil
	}
	h, found, err := o.readHeader(name)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	if h.typ != TypeSet {
		return nil, ErrWrongType
	}
	out := make([][]byte, len(h.elems))
	for i, e := range h.elems {
		out[i] = append([]byte(nil), e...)
	}
	return out, nil
}

// HKeys lists hash name's field names, SMembers-style: an absent (or
// expired) hash is an empty list.
func (o *Store) HKeys(name []byte) ([][]byte, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	if !o.alive(name) {
		return nil, nil
	}
	h, found, err := o.readHeader(name)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	if h.typ != TypeHash {
		return nil, ErrWrongType
	}
	out := make([][]byte, len(h.elems))
	for i, e := range h.elems {
		out[i] = append([]byte(nil), e...)
	}
	return out, nil
}

// removeElem is the shared HDel/SRem composite: drop elem from the header
// and delete its record, atomically; the last element deletes the object.
func (o *Store) removeElem(name, elem []byte, typ, tag byte) error {
	mu := o.lockFor(name)
	mu.Lock()
	defer mu.Unlock()
	if !o.alive(name) {
		if err := o.reapLocked(name); err != nil {
			return err
		}
		return kv.ErrNotFound
	}
	h, found, err := o.readHeader(name)
	if err != nil {
		return err
	}
	if !found {
		return kv.ErrNotFound
	}
	if h.typ != typ {
		return ErrWrongType
	}
	i := h.index(elem)
	if i < 0 {
		return kv.ErrNotFound
	}
	h.elems = append(h.elems[:i], h.elems[i+1:]...)
	ops := []subOp{{kind: subDel, key: subKey(tag, name, elem)}}
	hadTTL := false
	if len(h.elems) == 0 {
		ops = append(ops, subOp{kind: subDel, key: headerKey(name)})
		o.mu.RLock()
		_, hadTTL = o.exp[string(name)]
		o.mu.RUnlock()
		if hadTTL && !o.st.Has(name) {
			// The TTL belonged to the object alone (no flat key shares the
			// name): it goes with it.
			ops = append(ops, subOp{kind: subDel, key: expiryKey(name)})
		} else {
			hadTTL = false
		}
	} else {
		ops = append(ops, subOp{kind: subPut, key: headerKey(name), val: h.encode()})
	}
	if err := o.commit(name, ops); err != nil {
		return err
	}
	if hadTTL {
		o.clearDeadline(name)
	}
	return nil
}

// exists reports whether name is visible as a flat key or an object.
func (o *Store) exists(name []byte) bool {
	if o.st.Has(name) {
		return true
	}
	return o.st.Has(headerKey(name))
}

// Expire sets name's TTL to ttl milliseconds from now. name may be a flat
// key or an object; an absent name is an error. The deadline persists as a
// single expiry record, so the update is atomic on its own.
func (o *Store) Expire(name []byte, ttlMs uint64) error {
	if err := checkName(name); err != nil {
		return err
	}
	if IsInternalKey(name) {
		return ErrReserved
	}
	mu := o.lockFor(name)
	mu.Lock()
	defer mu.Unlock()
	if !o.alive(name) {
		if err := o.reapLocked(name); err != nil {
			return err
		}
		return kv.ErrNotFound
	}
	if !o.exists(name) {
		return kv.ErrNotFound
	}
	d := o.opts.Clock() + int64(ttlMs)
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], uint64(d))
	if err := o.st.Put(expiryKey(name), v[:]); err != nil {
		return err
	}
	o.setDeadline(name, d)
	return nil
}

// TTL returns name's remaining time-to-live in milliseconds, -1 when the
// name exists without a TTL, and ErrNotFound when it is absent or expired.
func (o *Store) TTL(name []byte) (int64, error) {
	if err := checkName(name); err != nil {
		return 0, err
	}
	o.mu.RLock()
	d, ok := o.exp[string(name)]
	o.mu.RUnlock()
	if !ok {
		if !o.exists(name) {
			return 0, kv.ErrNotFound
		}
		return -1, nil
	}
	rem := d - o.opts.Clock()
	if rem <= 0 {
		o.lazyExpiries.Add(1)
		return 0, kv.ErrNotFound
	}
	return rem, nil
}

// Persist removes name's TTL, keeping the value. A name without a TTL is a
// no-op; an absent or expired name is an error.
func (o *Store) Persist(name []byte) error {
	if err := checkName(name); err != nil {
		return err
	}
	mu := o.lockFor(name)
	mu.Lock()
	defer mu.Unlock()
	if !o.alive(name) {
		if err := o.reapLocked(name); err != nil {
			return err
		}
		return kv.ErrNotFound
	}
	if !o.exists(name) {
		return kv.ErrNotFound
	}
	o.mu.RLock()
	_, hadTTL := o.exp[string(name)]
	o.mu.RUnlock()
	if !hadTTL {
		return nil
	}
	if err := o.st.Delete(expiryKey(name)); err != nil && err != kv.ErrNotFound {
		return err
	}
	o.clearDeadline(name)
	return nil
}
