package obj

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rntree/kv"
)

// fakeClock is a settable millisecond clock shared by a test's layers.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) fn() func() int64 { return c.now.Load }
func (c *fakeClock) advance(ms int64) { c.now.Add(ms) }

func newKV(t testing.TB) *kv.Store {
	t.Helper()
	st, err := kv.New(kv.Options{ArenaSize: 16 << 20, ChunkSize: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func attach(t testing.TB, st *kv.Store, clk *fakeClock) *Store {
	t.Helper()
	o, err := Attach(st, Options{Clock: clk.fn()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.Close)
	return o
}

func TestHashOps(t *testing.T) {
	st := newKV(t)
	o := attach(t, st, &fakeClock{})

	if err := o.HSet([]byte("user:1"), []byte("name"), []byte("ada")); err != nil {
		t.Fatal(err)
	}
	if err := o.HSet([]byte("user:1"), []byte("lang"), []byte("go")); err != nil {
		t.Fatal(err)
	}
	v, err := o.HGet([]byte("user:1"), []byte("name"))
	if err != nil || string(v) != "ada" {
		t.Fatalf("HGet name = %q, %v", v, err)
	}
	// Overwrite an existing field (single-record path).
	if err := o.HSet([]byte("user:1"), []byte("name"), []byte("grace")); err != nil {
		t.Fatal(err)
	}
	if v, _ = o.HGet([]byte("user:1"), []byte("name")); string(v) != "grace" {
		t.Fatalf("overwritten HGet = %q", v)
	}
	if _, err := o.HGet([]byte("user:1"), []byte("absent")); err != kv.ErrNotFound {
		t.Fatalf("absent field: %v", err)
	}
	// Wrong-type guards.
	if err := o.SAdd([]byte("user:1"), []byte("x")); err != ErrWrongType {
		t.Fatalf("SAdd on hash: %v", err)
	}
	if _, err := o.SMembers([]byte("user:1")); err != ErrWrongType {
		t.Fatalf("SMembers on hash: %v", err)
	}
	// Deleting the last field removes the object header.
	if err := o.HDel([]byte("user:1"), []byte("lang")); err != nil {
		t.Fatal(err)
	}
	if err := o.HDel([]byte("user:1"), []byte("name")); err != nil {
		t.Fatal(err)
	}
	if st.Has(headerKey([]byte("user:1"))) {
		t.Fatal("empty hash left its header behind")
	}
	if err := o.HDel([]byte("user:1"), []byte("name")); err != kv.ErrNotFound {
		t.Fatalf("HDel on absent object: %v", err)
	}
	// No intent record may survive a healthy run.
	st.Range(func(k, _ []byte) bool {
		if len(k) >= 2 && k[0] == NSByte && k[1] == tagIntent {
			t.Fatalf("leaked intent record %q", k)
		}
		return true
	})
}

func TestSetOps(t *testing.T) {
	st := newKV(t)
	o := attach(t, st, &fakeClock{})

	for _, m := range []string{"a", "b", "c", "b"} { // dup add is a no-op
		if err := o.SAdd([]byte("tags"), []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := o.SMembers([]byte("tags"))
	if err != nil || len(ms) != 3 {
		t.Fatalf("SMembers = %d members, %v", len(ms), err)
	}
	if err := o.SRem([]byte("tags"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := o.SRem([]byte("tags"), []byte("b")); err != kv.ErrNotFound {
		t.Fatalf("double SRem: %v", err)
	}
	if ms, _ = o.SMembers([]byte("tags")); len(ms) != 2 {
		t.Fatalf("after SRem: %d members", len(ms))
	}
	if _, err := o.HGet([]byte("tags"), []byte("a")); err != kv.ErrNotFound {
		t.Fatalf("HGet on set: %v", err)
	}
	if ms, err = o.SMembers([]byte("absent")); err != nil || len(ms) != 0 {
		t.Fatalf("SMembers absent = %v, %v", ms, err)
	}
}

func TestExpireTTLPersist(t *testing.T) {
	st := newKV(t)
	clk := &fakeClock{}
	o := attach(t, st, clk)

	if err := st.Put([]byte("flat"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := o.Expire([]byte("absent"), 100); err != kv.ErrNotFound {
		t.Fatalf("Expire absent: %v", err)
	}
	if ttl, err := o.TTL([]byte("flat")); err != nil || ttl != -1 {
		t.Fatalf("TTL without deadline = %d, %v", ttl, err)
	}
	if err := o.Expire([]byte("flat"), 500); err != nil {
		t.Fatal(err)
	}
	clk.advance(100)
	if ttl, err := o.TTL([]byte("flat")); err != nil || ttl != 400 {
		t.Fatalf("TTL = %d, %v", ttl, err)
	}
	if err := o.Persist([]byte("flat")); err != nil {
		t.Fatal(err)
	}
	if ttl, err := o.TTL([]byte("flat")); err != nil || ttl != -1 {
		t.Fatalf("TTL after Persist = %d, %v", ttl, err)
	}
	clk.advance(1000)
	if o.Expired([]byte("flat")) {
		t.Fatal("persisted key expired anyway")
	}

	// Expire an object, let it lapse: reads mask it immediately.
	if err := o.HSet([]byte("sess"), []byte("tok"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := o.Expire([]byte("sess"), 50); err != nil {
		t.Fatal(err)
	}
	clk.advance(51)
	if _, err := o.HGet([]byte("sess"), []byte("tok")); err != kv.ErrNotFound {
		t.Fatalf("expired HGet: %v", err)
	}
	if _, err := o.TTL([]byte("sess")); err != kv.ErrNotFound {
		t.Fatalf("expired TTL: %v", err)
	}
	if o.Stats().LazyExpiries == 0 {
		t.Fatal("lazy expiry not counted")
	}
	// A new HSet on the expired name reaps the corpse and starts fresh.
	if err := o.HSet([]byte("sess"), []byte("new"), []byte("y")); err != nil {
		t.Fatal(err)
	}
	if _, err := o.HGet([]byte("sess"), []byte("tok")); err != kv.ErrNotFound {
		t.Fatalf("old field resurrected: %v", err)
	}
	if v, err := o.HGet([]byte("sess"), []byte("new")); err != nil || string(v) != "y" {
		t.Fatalf("fresh field = %q, %v", v, err)
	}
}

func TestExpireTickReaps(t *testing.T) {
	st := newKV(t)
	clk := &fakeClock{}
	o := attach(t, st, clk)

	if err := st.Put([]byte("flat"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := o.HSet([]byte("h"), []byte(fmt.Sprintf("f%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Expire([]byte("flat"), 10); err != nil {
		t.Fatal(err)
	}
	if err := o.Expire([]byte("h"), 20); err != nil {
		t.Fatal(err)
	}
	if n := o.ExpireTick(); n != 0 {
		t.Fatalf("premature reap of %d keys", n)
	}
	clk.advance(100)
	var invalidated [][]byte
	o.SetInvalidate(func(name []byte) {
		invalidated = append(invalidated, append([]byte(nil), name...))
	})
	if n := o.ExpireTick(); n != 2 {
		t.Fatalf("ExpireTick reaped %d, want 2", n)
	}
	if len(invalidated) != 2 {
		t.Fatalf("invalidate hook saw %d names", len(invalidated))
	}
	if _, err := st.Get([]byte("flat")); err != kv.ErrNotFound {
		t.Fatalf("flat key survived reap: %v", err)
	}
	// Every namespace record of the object must be gone.
	st.Range(func(k, _ []byte) bool {
		if IsInternalKey(k) {
			t.Fatalf("reap left namespace record %q", k)
		}
		return true
	})
	if o.Stats().Reaps != 2 {
		t.Fatalf("Reaps = %d", o.Stats().Reaps)
	}
}

// TestIntentRollForward simulates a crash between a composite's commit
// point and its completion: the intent record is durable, only a prefix of
// its sub-ops applied. Attach must roll the whole composite forward.
func TestIntentRollForward(t *testing.T) {
	st := newKV(t)
	clk := &fakeClock{}
	o := attach(t, st, clk)

	name := []byte("user:9")
	h := header{typ: TypeHash, elems: [][]byte{[]byte("f")}}
	ops := []subOp{
		{kind: subPut, key: subKey(tagField, name, []byte("f")), val: []byte("v"), prevKind: subDel},
		{kind: subPut, key: headerKey(name), val: h.encode(), prevKind: subDel},
	}
	if err := st.Put(intentKey(name), encodeIntent(ops)); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(ops[0].key, ops[0].val); err != nil { // first sub-op only
		t.Fatal(err)
	}
	o.Close()

	st2, err := kv.Open(st.Snapshot(), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Attach(st2, Options{Clock: clk.fn()})
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	if o2.Stats().IntentsRolled != 1 {
		t.Fatalf("IntentsRolled = %d", o2.Stats().IntentsRolled)
	}
	if v, err := o2.HGet(name, []byte("f")); err != nil || string(v) != "v" {
		t.Fatalf("rolled-forward field = %q, %v", v, err)
	}
	if !st2.Has(headerKey(name)) {
		t.Fatal("header not rolled forward")
	}
	if st2.Has(intentKey(name)) {
		t.Fatal("intent survived recovery")
	}
}

// TestOversizedCompositeFailsClean: when the composite's images outgrow the
// store's record limit, the intent put itself is what fails — before the
// commit point, so nothing changed and no rollback is needed.
func TestOversizedCompositeFailsClean(t *testing.T) {
	st, err := kv.New(kv.Options{ArenaSize: 16 << 20, ChunkSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	o, err := Attach(st, Options{Clock: (&fakeClock{}).fn()})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	name := []byte("big")
	var failed []byte
	for i := 0; i < 200; i++ {
		f := []byte(fmt.Sprintf("field-%03d", i))
		if err := o.HSet(name, f, []byte("v")); err != nil {
			failed = f
			break
		}
	}
	if failed == nil {
		t.Fatal("header never outgrew the chunk")
	}
	if _, err := o.HGet(name, failed); err != kv.ErrNotFound {
		t.Fatalf("failed composite left its field visible: %v", err)
	}
	h, found, err := o.readHeader(name)
	if err != nil || !found {
		t.Fatalf("header gone after failed composite: %v", err)
	}
	if h.index(failed) >= 0 {
		t.Fatal("failed field listed in header")
	}
	// Every field the header lists must still resolve.
	for _, f := range h.elems {
		if _, err := o.HGet(name, f); err != nil {
			t.Fatalf("surviving field %q unreadable: %v", f, err)
		}
	}
	if st.Has(intentKey(name)) {
		t.Fatal("intent survived failed composite")
	}
}

// TestSubOpFailureRollsBack exercises the undo path directly: a composite
// whose last sub-op fails deterministically mid-apply (empty key) must
// restore the applied prefix from the undo images and remove the intent.
func TestSubOpFailureRollsBack(t *testing.T) {
	st := newKV(t)
	o := attach(t, st, &fakeClock{})

	if err := st.Put([]byte("k1"), []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte("k2"), []byte("keep")); err != nil {
		t.Fatal(err)
	}
	name := []byte("tx")
	err := o.commit(name, []subOp{
		{kind: subPut, key: []byte("k1"), val: []byte("new")},
		{kind: subDel, key: []byte("k2")},
		{kind: subPut, key: nil, val: []byte("boom")}, // ErrEmptyKey mid-apply
	})
	if err == nil {
		t.Fatal("composite with invalid sub-op succeeded")
	}
	if v, _ := st.Get([]byte("k1")); string(v) != "old" {
		t.Fatalf("k1 not rolled back: %q", v)
	}
	if v, _ := st.Get([]byte("k2")); string(v) != "keep" {
		t.Fatalf("k2 not restored: %q", v)
	}
	if st.Has(intentKey(name)) {
		t.Fatal("intent survived rollback")
	}
	if o.Stats().IntentsUndone != 1 {
		t.Fatalf("IntentsUndone = %d", o.Stats().IntentsUndone)
	}
	// The recovery-side fallback: the same unapplyable intent rolled back at
	// resolve time instead of wedging recovery.
	if err := st.Put(intentKey(name), encodeIntent([]subOp{
		{kind: subPut, key: []byte("k1"), val: []byte("newer"), prevKind: subPut, prevVal: []byte("old")},
		{kind: subPut, key: nil, val: []byte("boom"), prevKind: subDel},
	})); err != nil {
		t.Fatal(err)
	}
	if err := o.resolveIntent(intentKey(name)); err != nil {
		t.Fatal(err)
	}
	if v, _ := st.Get([]byte("k1")); string(v) != "old" {
		t.Fatalf("recovery rollback left k1 = %q", v)
	}
	if st.Has(intentKey(name)) {
		t.Fatal("intent survived recovery rollback")
	}
}

// TestExpiredKeyNeverResurrects (satellite): a key whose TTL lapsed but was
// never reaped must stay invisible across a crash and reopen — the expiry
// record is durable, so recovery rebuilds the mask before any read.
func TestExpiredKeyNeverResurrects(t *testing.T) {
	st := newKV(t)
	clk := &fakeClock{}
	o := attach(t, st, clk)

	if err := st.Put([]byte("ghost"), []byte("boo")); err != nil {
		t.Fatal(err)
	}
	if err := o.HSet([]byte("gobj"), []byte("f"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := o.Expire([]byte("ghost"), 10); err != nil {
		t.Fatal(err)
	}
	if err := o.Expire([]byte("gobj"), 10); err != nil {
		t.Fatal(err)
	}
	clk.advance(1000) // lapsed, NOT reaped
	o.Close()

	st2, err := kv.Open(st.Snapshot(), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Attach(st2, Options{Clock: clk.fn()})
	if err != nil {
		t.Fatal(err)
	}
	defer o2.Close()
	if !o2.Expired([]byte("ghost")) {
		t.Fatal("expired flat key resurrected after reopen")
	}
	if _, err := o2.HGet([]byte("gobj"), []byte("f")); err != kv.ErrNotFound {
		t.Fatalf("expired object resurrected after reopen: %v", err)
	}
	if _, err := o2.TTL([]byte("ghost")); err != kv.ErrNotFound {
		t.Fatalf("expired TTL visible after reopen: %v", err)
	}
	// Reap, crash again mid-nothing, reopen: still gone, reaped exactly once.
	if n := o2.ExpireTick(); n != 2 {
		t.Fatalf("post-reopen reap = %d, want 2", n)
	}
	st3, err := kv.Open(st2.Snapshot(), kv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	o3, err := Attach(st3, Options{Clock: clk.fn()})
	if err != nil {
		t.Fatal(err)
	}
	defer o3.Close()
	if _, err := st3.Get([]byte("ghost")); err != kv.ErrNotFound {
		t.Fatalf("reaped key resurrected: %v", err)
	}
	if n := o3.ExpireTick(); n != 0 {
		t.Fatalf("double reap after reopen: %d", n)
	}
}

// TestExpirerVsCompactionRace (satellite): a key expiring while its shard
// compacts is reaped exactly once, and concurrent expirer ticks never
// double-reap.
func TestExpirerVsCompactionRace(t *testing.T) {
	st := newKV(t)
	clk := &fakeClock{}
	o := attach(t, st, clk)

	// Churn enough garbage that Compact has real work.
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("churn-%03d", i%20))
		if err := st.Put(k, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put([]byte("doomed"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := o.Expire([]byte("doomed"), 5); err != nil {
		t.Fatal(err)
	}
	clk.advance(100)

	var wg sync.WaitGroup
	reapTotal := atomic.Int64{}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				reapTotal.Add(int64(o.ExpireTick()))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := st.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if n := reapTotal.Load(); n != 1 {
		t.Fatalf("key reaped %d times, want exactly 1", n)
	}
	if o.Stats().Reaps != 1 {
		t.Fatalf("Reaps = %d", o.Stats().Reaps)
	}
	if _, err := st.Get([]byte("doomed")); err != kv.ErrNotFound {
		t.Fatalf("doomed key survived: %v", err)
	}
	// Compacted store still recovers the churn keys.
	for i := 180; i < 200; i++ {
		k := []byte(fmt.Sprintf("churn-%03d", i%20))
		if _, err := st.Get(k); err != nil {
			t.Fatalf("churn key %q lost: %v", k, err)
		}
	}
}

// TestReplicaMasksButNeverReaps: a ReadOnly layer masks expired keys yet
// leaves every record alone, and Activate rolls shipped intents forward.
func TestReplicaMasksButNeverReaps(t *testing.T) {
	st := newKV(t)
	clk := &fakeClock{}
	o, err := Attach(st, Options{Clock: clk.fn(), ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	if err := st.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Simulate the stream shipping an expiry record.
	deadline := clk.now.Load() + 10
	var ev [8]byte
	for i := 0; i < 8; i++ {
		ev[i] = byte(uint64(deadline) >> (8 * i))
	}
	if err := st.Put(expiryKey([]byte("k")), ev[:]); err != nil {
		t.Fatal(err)
	}
	o.OnReplApply(kv.ReplPut, expiryKey([]byte("k")), ev[:])
	clk.advance(100)
	if !o.Expired([]byte("k")) {
		t.Fatal("replica failed to mask expired key")
	}
	if n := o.ExpireTick(); n != 0 {
		t.Fatalf("replica reaped %d keys", n)
	}
	if !st.Has([]byte("k")) {
		t.Fatal("replica deleted a record")
	}
	// A half-applied composite shipped before failover: Activate completes it.
	name := []byte("mid")
	h := header{typ: TypeHash, elems: [][]byte{[]byte("f")}}
	ops := []subOp{
		{kind: subPut, key: subKey(tagField, name, []byte("f")), val: []byte("v"), prevKind: subDel},
		{kind: subPut, key: headerKey(name), val: h.encode(), prevKind: subDel},
	}
	if err := st.Put(intentKey(name), encodeIntent(ops)); err != nil {
		t.Fatal(err)
	}
	if err := o.Activate(); err != nil {
		t.Fatal(err)
	}
	if v, err := o.HGet(name, []byte("f")); err != nil || string(v) != "v" {
		t.Fatalf("post-Activate HGet = %q, %v", v, err)
	}
	if n := o.ExpireTick(); n != 1 { // now primary: the lapsed key reaps
		t.Fatalf("post-Activate reap = %d", n)
	}
}
