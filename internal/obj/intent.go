package obj

import (
	"encoding/binary"
	"errors"

	"rntree/kv"
)

// The intent record is the composite-commit machinery (DESIGN.md §15.2).
// One record encodes every sub-operation of a multi-key update — the redo
// image (what to write or delete) and the undo image (what was there
// before) — so the record's own single-key commit is the composite's
// atomic commit point:
//
//	put(intent)      — commit point: before this persists, nothing happened
//	apply sub-ops    — idempotent overwrites/deletes, any prefix re-runnable
//	delete(intent)   — completion point: after this persists, all applied
//
// Crash recovery scans for intent records and rolls each forward (re-apply
// all sub-ops, delete the intent). A sub-op that FAILS at runtime (value
// too large, heap full) instead rolls the applied prefix back from the
// undo images — reverse order — and deletes the intent, so the caller's
// error means "nothing changed". Recovery uses the same fallback: if the
// roll-forward hits the same deterministic failure, it rolls back, so a
// crashed-then-recovered store never wedges on an unapplyable intent.

const (
	subPut = 0 // redo: write key=val
	subDel = 1 // redo: delete key
)

// subOp is one key touched by a composite update.
type subOp struct {
	kind     byte // subPut | subDel
	key      []byte
	val      []byte // redo image (subPut only)
	prevKind byte   // undo: subPut = restore prevVal, subDel = key was absent
	prevVal  []byte
}

// encodeIntent: [u32 count] then per sub-op
// [u8 kind][u32 klen][key][u32 vlen][val][u8 prevKind][u32 pvlen][pval]
func encodeIntent(ops []subOp) []byte {
	sz := 4
	for _, op := range ops {
		sz += 1 + 4 + len(op.key) + 4 + len(op.val) + 1 + 4 + len(op.prevVal)
	}
	v := make([]byte, 0, sz)
	v = binary.LittleEndian.AppendUint32(v, uint32(len(ops)))
	for _, op := range ops {
		v = append(v, op.kind)
		v = binary.LittleEndian.AppendUint32(v, uint32(len(op.key)))
		v = append(v, op.key...)
		v = binary.LittleEndian.AppendUint32(v, uint32(len(op.val)))
		v = append(v, op.val...)
		v = append(v, op.prevKind)
		v = binary.LittleEndian.AppendUint32(v, uint32(len(op.prevVal)))
		v = append(v, op.prevVal...)
	}
	return v
}

func decodeIntent(v []byte) ([]subOp, error) {
	if len(v) < 4 {
		return nil, errors.New("obj: short intent record")
	}
	n := binary.LittleEndian.Uint32(v)
	pos := 4
	ops := make([]subOp, 0, n)
	bytesAt := func(need int) ([]byte, bool) {
		if pos+need > len(v) {
			return nil, false
		}
		b := v[pos : pos+need]
		pos += need
		return b, true
	}
	for i := uint32(0); i < n; i++ {
		var op subOp
		b, ok := bytesAt(1)
		if !ok {
			return nil, errors.New("obj: truncated intent sub-op")
		}
		op.kind = b[0]
		for _, dst := range []*[]byte{&op.key, &op.val} {
			lb, ok := bytesAt(4)
			if !ok {
				return nil, errors.New("obj: truncated intent sub-op")
			}
			d, ok := bytesAt(int(binary.LittleEndian.Uint32(lb)))
			if !ok {
				return nil, errors.New("obj: truncated intent sub-op")
			}
			*dst = d
		}
		if b, ok = bytesAt(1); !ok {
			return nil, errors.New("obj: truncated intent sub-op")
		}
		op.prevKind = b[0]
		lb, ok := bytesAt(4)
		if !ok {
			return nil, errors.New("obj: truncated intent sub-op")
		}
		if op.prevVal, ok = bytesAt(int(binary.LittleEndian.Uint32(lb))); !ok {
			return nil, errors.New("obj: truncated intent sub-op")
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// withPrev fills a sub-op's undo image from the store's current state.
func (o *Store) withPrev(op subOp) (subOp, error) {
	v, err := o.st.Get(op.key)
	switch err {
	case nil:
		op.prevKind, op.prevVal = subPut, v
	case kv.ErrNotFound:
		op.prevKind = subDel
	default:
		return op, err
	}
	return op, nil
}

// applyOne executes a sub-op's redo image. Deletes tolerate absence — a
// recovery replay may re-run a prefix that already applied.
func (o *Store) applyOne(op subOp) error {
	if op.kind == subPut {
		return o.st.Put(op.key, op.val)
	}
	if err := o.st.Delete(op.key); err != nil && err != kv.ErrNotFound {
		return err
	}
	return nil
}

// undoOne restores a sub-op's undo image.
func (o *Store) undoOne(op subOp) error {
	if op.prevKind == subPut {
		return o.st.Put(op.key, op.prevVal)
	}
	if err := o.st.Delete(op.key); err != nil && err != kv.ErrNotFound {
		return err
	}
	return nil
}

// commit runs one composite update under the caller-held stripe lock:
// persist the intent (atomic commit point), apply the sub-ops in order,
// delete the intent. On a sub-op failure the applied prefix is rolled back
// from the undo images and the original error is returned with the store
// logically unchanged.
func (o *Store) commit(name []byte, ops []subOp) error {
	for i := range ops {
		var err error
		if ops[i], err = o.withPrev(ops[i]); err != nil {
			return err
		}
	}
	ik := intentKey(name)
	if err := o.st.Put(ik, encodeIntent(ops)); err != nil {
		return err
	}
	for i, op := range ops {
		if err := o.applyOne(op); err != nil {
			// Roll back the applied prefix, newest first. Undo writes are
			// restores of values that fit before, so they cannot hit the
			// failure that stopped the forward pass.
			for j := i - 1; j >= 0; j-- {
				if uerr := o.undoOne(ops[j]); uerr != nil {
					return errors.Join(err, uerr)
				}
			}
			if derr := o.st.Delete(ik); derr != nil && derr != kv.ErrNotFound {
				return errors.Join(err, derr)
			}
			o.intentsUndone.Add(1)
			return err
		}
	}
	if err := o.st.Delete(ik); err != nil && err != kv.ErrNotFound {
		return err
	}
	return nil
}

// resolveIntent rolls one recovered intent forward (or, if the roll-forward
// hits a deterministic failure, back) and removes it. Called with no stripe
// lock held — recovery and activation run before the layer serves traffic.
func (o *Store) resolveIntent(ik []byte) error {
	v, err := o.st.Get(ik)
	if err == kv.ErrNotFound {
		return nil
	}
	if err != nil {
		return err
	}
	ops, err := decodeIntent(v)
	if err != nil {
		return err
	}
	rolledBack := false
	for i, op := range ops {
		if aerr := o.applyOne(op); aerr != nil {
			for j := i - 1; j >= 0; j-- {
				if uerr := o.undoOne(ops[j]); uerr != nil {
					return errors.Join(aerr, uerr)
				}
			}
			rolledBack = true
			break
		}
	}
	if err := o.st.Delete(ik); err != nil && err != kv.ErrNotFound {
		return err
	}
	if !rolledBack {
		o.intentsRolled.Add(1)
	}
	return nil
}
