package repl

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"rntree/internal/wire"
)

// ApplierConfig tunes a replica's connection to its primary.
type ApplierConfig struct {
	// Addr is the primary's listen address.
	Addr string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RetryBase/RetryMax bound the jittered reconnect backoff
	// (defaults 10ms and 500ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// AckEvery acks after this many applied records (default 32); an ack
	// also goes out every AckInterval (default 20ms) when records applied
	// since the last one — so durable-ack PUT latency on the primary is
	// bounded even at low write rates.
	AckEvery    int
	AckInterval time.Duration
}

func (c *ApplierConfig) normalize() {
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryBase == 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax == 0 {
		c.RetryMax = 500 * time.Millisecond
	}
	if c.AckEvery == 0 {
		c.AckEvery = 32
	}
	if c.AckInterval == 0 {
		c.AckInterval = 20 * time.Millisecond
	}
}

// RunApplier runs the replica side of the replication stream: dial the
// primary, handshake (HELLO: roles and epochs), subscribe from this store's
// durable per-partition watermarks, then apply and ack the record stream.
// Connection loss reconnects with jittered backoff and resubscribes from
// the durable watermarks — records shipped twice are skipped by ReplApply's
// LSN idempotency, so crash-reconnect loses nothing and duplicates nothing.
// Blocks until Stop (via Node.Close) or promotion; only setup errors (bad
// config, applier already running) are returned.
func (n *Node) RunApplier(cfg ApplierConfig) error {
	cfg.normalize()
	stopc := make(chan struct{})
	var once sync.Once
	stop := func() { once.Do(func() { close(stopc) }) }
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("repl: node closed")
	}
	if n.applierStop != nil {
		n.mu.Unlock()
		return fmt.Errorf("repl: applier already running")
	}
	n.applierStop = stop
	n.mu.Unlock()
	defer func() {
		stop()
		n.mu.Lock()
		n.applierStop = nil
		n.mu.Unlock()
	}()

	jitter := uint64(time.Now().UnixNano()) | 1
	for attempt := 0; ; attempt++ {
		if n.Role() != Replica {
			return nil
		}
		select {
		case <-stopc:
			return nil
		default:
		}
		if err := n.applyStream(cfg, stopc); err == nil {
			attempt = -1 // clean server-side close: reset the backoff
		}
		select {
		case <-stopc:
			return nil
		case <-time.After(backoff(cfg, attempt, &jitter)):
		}
	}
}

// backoff is the applier's jittered exponential reconnect delay: base<<n
// capped at max, scaled by a uniform [50%,100%] jitter so a fleet of
// replicas losing one primary does not reconnect in lockstep.
func backoff(cfg ApplierConfig, attempt int, state *uint64) time.Duration {
	d := cfg.RetryBase
	for i := 0; i < attempt && d < cfg.RetryMax; i++ {
		d *= 2
	}
	if d > cfg.RetryMax {
		d = cfg.RetryMax
	}
	*state ^= *state << 13
	*state ^= *state >> 7
	*state ^= *state << 17
	return d/2 + time.Duration(*state%uint64(d/2+1))
}

// applyStream is one connection's worth of the applier loop.
func (n *Node) applyStream(cfg ApplierConfig, stopc <-chan struct{}) error {
	c, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer c.Close()
	closed := make(chan struct{})
	defer close(closed)
	go func() {
		select {
		case <-stopc:
			c.Close() // unblock the reader
		case <-closed:
		}
	}()

	br := bufio.NewReaderSize(c, 64<<10)
	var wMu sync.Mutex // serializes handshake writes and the ack flusher
	bw := bufio.NewWriterSize(c, 16<<10)
	writeReq := func(req wire.Request) error {
		wMu.Lock()
		defer wMu.Unlock()
		frame, err := wire.AppendRequest(nil, req)
		if err != nil {
			return err
		}
		if _, err := bw.Write(frame); err != nil {
			return err
		}
		return bw.Flush()
	}
	readResp := func(buf []byte) (wire.Response, []byte, error) {
		payload, err := wire.ReadFrame(br, buf)
		if err != nil {
			return wire.Response{}, buf, err
		}
		resp, err := wire.DecodeResponse(payload)
		return resp, payload, err
	}

	// HELLO: exchange roles and epochs.
	if err := writeReq(wire.Request{ID: 1, Op: wire.OpReplHello, ReplRole: Replica, ReplEpoch: n.Epoch()}); err != nil {
		return err
	}
	var buf []byte
	resp, buf, err := readResp(buf)
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("repl: hello rejected: status %d: %s", resp.Status, resp.Msg)
	}
	if resp.ReplRole != Primary {
		return fmt.Errorf("repl: %s is not a primary (role %d)", cfg.Addr, resp.ReplRole)
	}
	if resp.ReplEpoch < n.Epoch() {
		// A deposed primary that came back: its epoch predates one we have
		// already followed (or our own promotion). Following it could
		// split-brain; refuse and retry — operators re-seed old primaries.
		return fmt.Errorf("repl: stale primary %s: epoch %d < ours %d", cfg.Addr, resp.ReplEpoch, n.Epoch())
	}
	if err := n.adoptEpoch(resp.ReplEpoch); err != nil {
		return err
	}

	// SUBSCRIBE from our durable watermarks: everything at or below them is
	// already applied and persisted here.
	if err := writeReq(wire.Request{ID: 2, Op: wire.OpReplSubscribe, ReplLSNs: n.st.ReplLSNs()}); err != nil {
		return err
	}
	resp, buf, err = readResp(buf)
	if err != nil {
		return err
	}
	if resp.Status != wire.StatusOK {
		return fmt.Errorf("repl: subscribe rejected: status %d: %s", resp.Status, resp.Msg)
	}

	// Ack state, shared with the periodic flusher. ackv holds the durable
	// watermarks (ReplApply returned ⇒ applied and persisted).
	var ackMu sync.Mutex
	ackv := n.st.ReplLSNs()
	pending := 0
	ackSeq := uint64(3)
	flushAcks := func() error {
		ackMu.Lock()
		if pending == 0 {
			ackMu.Unlock()
			return nil
		}
		pending = 0
		ackSeq++
		req := wire.Request{ID: ackSeq, Op: wire.OpReplAck, ReplLSNs: append([]uint64(nil), ackv...)}
		ackMu.Unlock()
		return writeReq(req)
	}
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		tick := time.NewTicker(cfg.AckInterval)
		defer tick.Stop()
		for {
			select {
			case <-closed:
				return
			case <-tick.C:
				if flushAcks() != nil {
					return
				}
			}
		}
	}()

	for {
		resp, buf, err = readResp(buf)
		if err != nil {
			select {
			case <-stopc:
				return nil
			default:
			}
			return err
		}
		if resp.Op != wire.OpReplRecord || resp.Status != wire.StatusOK {
			return fmt.Errorf("repl: unexpected frame on subscription (op %d, status %d)", resp.Op, resp.Status)
		}
		part := int(resp.ReplPart)
		if part < 0 || part >= len(ackv) {
			return fmt.Errorf("repl: record for partition %d, store has %d", part, len(ackv))
		}
		if err := n.st.ReplApply(part, resp.ReplLSN, resp.ReplKind, resp.Key, resp.Val); err != nil {
			return err
		}
		n.applied.Add(1)
		if hook := n.applyHook.Load(); hook != nil {
			(*hook)(resp.ReplKind, resp.Key, resp.Val)
		}
		ackMu.Lock()
		if resp.ReplLSN > ackv[part] {
			ackv[part] = resp.ReplLSN
		}
		pending++
		full := pending >= cfg.AckEvery
		ackMu.Unlock()
		if full {
			if err := flushAcks(); err != nil {
				return err
			}
		}
	}
}
