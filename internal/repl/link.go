package repl

import (
	"fmt"

	"rntree/kv"
)

// In-process couplings between two stores, used by the fault explorer and
// tests. Unlike Node/Subscriber these involve no goroutines, channels or
// map iteration, so a linked pair replays a workload with a deterministic
// persist-instruction sequence — the property the crash-point explorer
// aligns sites by.

// Link couples primary → replica synchronously: every commit on primary is
// applied (and persisted) on replica before the mutating call returns.
// This is the wait-for-replica-durable ack mode collapsed to zero network:
// when a Put returns, the write is durable on BOTH stores, which is exactly
// the invariant the two-node fault exploration checks at every crash site.
type Link struct {
	primary, replica *kv.Store
	err              error // first apply failure (a harness error in replays)
}

// NewLink installs the coupling. Call Unlink to remove it.
func NewLink(primary, replica *kv.Store) *Link {
	l := &Link{primary: primary, replica: replica}
	primary.SetCommitHook(func(part int, lsn uint64, kind uint8, key, val []byte) {
		if l.err != nil {
			return
		}
		if err := replica.ReplApply(part, lsn, kind, key, val); err != nil {
			l.err = err
		}
	})
	return l
}

// Err returns the first shipped-apply failure, if any.
func (l *Link) Err() error { return l.err }

// Unlink removes the commit hook.
func (l *Link) Unlink() { l.primary.SetCommitHook(nil) }

// CatchUp replays primary's backlog above replica's watermarks into
// replica — the recovery-time healing step: after a crash, the replica
// resubscribes from its durable per-partition LSNs and converges to the
// primary's state. Compaction-surviving records are enough: the newest
// record per key (tombstones included on replicating stores) carries the
// highest LSN, so replay order converges keys correctly.
func CatchUp(primary, replica *kv.Store) error {
	if primary.Partitions() != replica.Partitions() {
		return fmt.Errorf("repl: catch-up across different partition counts (%d vs %d)",
			primary.Partitions(), replica.Partitions())
	}
	for part := 0; part < primary.Partitions(); part++ {
		var fail error
		err := primary.ReplBacklog(part, replica.ReplLSN(part),
			func(lsn uint64, kind uint8, key, val []byte) bool {
				if err := replica.ReplApply(part, lsn, kind, key, val); err != nil {
					fail = err
					return false
				}
				return true
			})
		if err == nil {
			err = fail
		}
		if err != nil {
			return err
		}
	}
	return nil
}
