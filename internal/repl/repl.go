// Package repl implements primary/replica replication for the kv store.
//
// The value log doubles as the replication log: every committed record
// carries a per-partition LSN (kv/repl.go), so replication is "ship the log
// records a subscriber hasn't seen yet, in LSN order, per partition". A Node
// wraps one kv.Store with a replication role:
//
//   - A primary installs the store's commit hook and fans each committed
//     record out to its Subscribers. A subscriber that falls behind (queue
//     overflow, fresh connect, reconnect) is healed by replaying the
//     reachable backlog above its cursor — the log IS the retransmit buffer,
//     so there is no separate ship buffer to overflow or persist.
//   - A replica runs an applier loop (applier.go) against the primary's
//     network address: it applies shipped records with kv.Store.ReplApply
//     (idempotent by LSN watermark) and acks its durable per-partition
//     watermarks back.
//
// Durability handshake: a record acked by a replica has been applied AND
// persisted there (ReplApply returns after the record and its index publish
// are durable), so Node.WaitDurable(part, lsn) returning nil means the write
// survives the loss of either node — the wait-for-replica-durable PUT mode.
//
// Epochs order primaries across failovers. The pair (epoch, role) is
// persisted in the store (kv.Store.SetReplState) as one atomically-written
// word: a promotion commits the bumped epoch *before* the node starts
// accepting writes, so a deposed primary can always be told apart by its
// lower epoch, and a crash mid-promotion recovers as either the old replica
// or the new primary — never a hybrid. See DESIGN.md §13.
package repl

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rntree/internal/wire"
	"rntree/kv"
)

// Roles, shared with the wire protocol's handshake encoding.
const (
	Primary = wire.RolePrimary
	Replica = wire.RoleReplica
)

// ErrDurableTimeout is returned by WaitDurable when no replica acked the
// record in time (no replica connected, or the connected one is too far
// behind). The write itself is committed locally either way.
var ErrDurableTimeout = errors.New("repl: timed out waiting for replica durability")

// subQueueCap bounds each subscriber's live ship queue. Overflow is not an
// error: the subscriber is flagged lagging and heals from the log backlog.
const subQueueCap = 1024

// Record is one replicated log record.
type Record struct {
	Part int
	LSN  uint64
	Kind uint8 // kv.ReplPut or kv.ReplDelete
	Key  []byte
	Val  []byte
}

// Node is one replication participant wrapped around a kv.Store.
type Node struct {
	st *kv.Store

	role  atomic.Uint32 // Primary / Replica; reads are lock-free (hot path)
	epoch atomic.Uint64

	mu          sync.Mutex // role/epoch transitions, subs, durable
	subs        map[*Subscriber]struct{}
	durable     []uint64      // per-partition max LSN acked durable by any replica
	durableCh   chan struct{} // closed+replaced whenever durable advances
	applierStop func()
	closed      bool

	shipped atomic.Uint64 // records offered to subscribers (commit hook calls)
	acks    atomic.Uint64 // ack vectors processed
	applied atomic.Uint64 // records applied by this node's applier (replica)

	// Fencing (SetFenceLease): a primary whose subscribers have all been
	// gone longer than the lease reports Fenced, so the serving layer can
	// stop acking writes that would not survive a concurrent failover.
	fenceLease atomic.Int64 // lease in nanoseconds; 0 disables fencing
	subCount   atomic.Int64 // live registered subscribers
	subGone    atomic.Int64 // unix nanos when subCount last dropped to zero

	// applyHook, when set, is called with each record the applier has just
	// applied — the serving layer invalidates its hot-key cache through it,
	// since applied records bypass the server's mutation handlers.
	applyHook atomic.Pointer[func(kind uint8, key, val []byte)]
}

// NewNode wraps st as a replication participant. role is the requested role
// for a store that has never replicated; a persisted role (a promoted
// replica, a restarted primary) always wins, so a node cannot silently
// demote itself and drop acked writes — re-seeding a deposed primary as a
// replica requires a fresh store. The store's commit hook is installed
// regardless of role: it ships local commits to subscribers (a promoted
// replica's own replicas chain naturally) and switches compaction to keep
// newest tombstones, preserving the log as a complete replication history.
func NewNode(st *kv.Store, role uint8) (*Node, error) {
	if role != Primary && role != Replica {
		return nil, fmt.Errorf("repl: bad role %d", role)
	}
	n := &Node{
		st:        st,
		subs:      map[*Subscriber]struct{}{},
		durable:   make([]uint64, st.Partitions()),
		durableCh: make(chan struct{}),
	}
	if e, r := st.ReplState(); r != 0 {
		// Persisted state wins.
		n.epoch.Store(e)
		role = r
	} else if role == Primary {
		// A fresh primary starts at epoch 1 (0 is "never replicated").
		if err := st.SetReplState(1, Primary); err != nil {
			return nil, err
		}
		n.epoch.Store(1)
	} else {
		// Persist the replica role so a restart comes back read-only
		// instead of silently accepting unreplicated writes.
		if err := st.SetReplState(0, Replica); err != nil {
			return nil, err
		}
	}
	n.role.Store(uint32(role))
	n.subGone.Store(time.Now().UnixNano())
	st.SetCommitHook(n.onCommit)
	return n, nil
}

// SetFenceLease arms write fencing: once every subscriber has been gone for
// longer than d, Fenced reports true until one resubscribes. Arming (and
// re-arming) grants a fresh grace window of d, so a primary that boots
// before its replica is not fenced on its first write. d <= 0 disables
// fencing — the default, preserving a single node that runs with
// replication enabled but no replica attached.
//
// Fencing closes client-driven failover's divergence window (DESIGN.md
// §13.4): without it, a primary cut off from its replica — but not from
// its own clients — keeps acking async writes while those clients' peers
// promote the replica, and every write acked after the promotion's epoch
// bump is silently stranded on the deposed node.
func (n *Node) SetFenceLease(d time.Duration) {
	n.fenceLease.Store(int64(d))
	n.subGone.Store(time.Now().UnixNano())
}

// Fenced reports whether this node is a primary whose fence lease has
// expired: no subscriber is registered and none has been for longer than
// the SetFenceLease duration. A fenced primary's async acks could be
// stranded by a concurrent promotion, so the serving layer rejects writes
// (read-only) while Fenced holds. Lock-free; called per mutation.
func (n *Node) Fenced() bool {
	lease := n.fenceLease.Load()
	if lease <= 0 || n.Role() != Primary || n.subCount.Load() > 0 {
		return false
	}
	return time.Now().UnixNano()-n.subGone.Load() > lease
}

// Store returns the wrapped store.
func (n *Node) Store() *kv.Store { return n.st }

// SetApplyHook registers fn to be called with each record the applier
// applies (nil unregisters). kind is the kv record kind (kv.ReplPut /
// kv.ReplDelete); key and val alias the shipped frame and must be copied if
// retained. See applyHook.
func (n *Node) SetApplyHook(fn func(kind uint8, key, val []byte)) {
	if fn == nil {
		n.applyHook.Store(nil)
		return
	}
	n.applyHook.Store(&fn)
}

// Role returns the node's current role (lock-free).
func (n *Node) Role() uint8 { return uint8(n.role.Load()) }

// Epoch returns the node's current epoch (lock-free).
func (n *Node) Epoch() uint64 { return n.epoch.Load() }

// onCommit is the store's commit hook: fan the record out to every
// subscriber. It runs under the partition's commit locks, so per partition
// the LSN stream each subscriber observes is monotonic.
func (n *Node) onCommit(part int, lsn uint64, kind uint8, key, val []byte) {
	n.shipped.Add(1)
	n.mu.Lock()
	for sub := range n.subs {
		sub.offer(part, lsn, kind, key, val)
	}
	n.mu.Unlock()
}

// Subscribe registers a subscriber whose per-partition cursors start at
// from (the subscriber's durable watermarks) and whose records are
// delivered through send. send runs on the subscriber's Run goroutine and
// may block (it is the transport's backpressure); a send error ends Run.
// The caller must call Run to start shipping and Stop to end it.
func (n *Node) Subscribe(from []uint64, send func(Record) error) (*Subscriber, error) {
	if len(from) != n.st.Partitions() {
		return nil, fmt.Errorf("repl: subscribe with %d cursors, store has %d partitions",
			len(from), n.st.Partitions())
	}
	sub := &Subscriber{
		n:      n,
		send:   send,
		q:      make(chan Record, subQueueCap),
		stopc:  make(chan struct{}),
		donec:  make(chan struct{}),
		cursor: make([]atomic.Uint64, len(from)),
		ackv:   make([]atomic.Uint64, len(from)),
	}
	for i, l := range from {
		sub.cursor[i].Store(l)
		sub.ackv[i].Store(l)
	}
	// Force an initial backlog pass: everything between the cursors and the
	// store's current LSNs predates this registration.
	sub.lagging.Store(true)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, errors.New("repl: node closed")
	}
	n.subs[sub] = struct{}{}
	n.subCount.Add(1)
	n.mu.Unlock()
	// The subscriber's acked watermarks count toward durability: a replica
	// resuming from LSN L has everything <= L durable already.
	n.advanceDurable(from)
	return sub, nil
}

// advanceDurable folds an ack vector into the node's durable watermarks and
// wakes WaitDurable waiters when anything moved.
func (n *Node) advanceDurable(lsns []uint64) {
	n.mu.Lock()
	changed := false
	for i, l := range lsns {
		if i < len(n.durable) && l > n.durable[i] {
			n.durable[i] = l
			changed = true
		}
	}
	if changed {
		close(n.durableCh)
		n.durableCh = make(chan struct{})
	}
	n.mu.Unlock()
}

// WaitDurable blocks until some replica has acked partition part up to lsn
// (the record is applied and persisted there), or the timeout expires.
func (n *Node) WaitDurable(part int, lsn uint64, timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		n.mu.Lock()
		ok := part >= 0 && part < len(n.durable) && n.durable[part] >= lsn
		ch := n.durableCh
		n.mu.Unlock()
		if ok {
			return nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			return ErrDurableTimeout
		}
	}
}

// Durable returns the per-partition durable (replica-acked) watermarks.
func (n *Node) Durable() []uint64 {
	n.mu.Lock()
	out := append([]uint64(nil), n.durable...)
	n.mu.Unlock()
	return out
}

// Promote makes this node the primary at an epoch strictly above both its
// own and minEpoch (the caller's last known primary epoch), persisting the
// new (epoch, role) word BEFORE the role flip takes effect — a crash during
// promotion recovers as either the old replica or the new primary. Calling
// Promote on a primary whose epoch already supersedes minEpoch is a no-op
// (idempotent client retries); otherwise the epoch is bumped again, which
// is safe — epochs only need to be monotonic, not dense.
func (n *Node) Promote(minEpoch uint64) (uint64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	cur := n.epoch.Load()
	if n.role.Load() == uint32(Primary) && cur > minEpoch {
		return cur, nil
	}
	e := cur
	if minEpoch > e {
		e = minEpoch
	}
	e++
	if err := n.st.SetReplState(e, Primary); err != nil {
		return 0, err
	}
	n.epoch.Store(e)
	n.role.Store(uint32(Primary))
	// A fresh primary starts its fence lease from the promotion, not from
	// however long ago it was created: it gets the full grace window for
	// its own replicas to subscribe.
	n.subGone.Store(time.Now().UnixNano())
	if n.applierStop != nil {
		n.applierStop()
		n.applierStop = nil
	}
	return e, nil
}

// adoptEpoch persists a higher epoch learned from the primary's handshake,
// so a client failing over against this replica later always gets an epoch
// superseding every primary the replica ever followed.
func (n *Node) adoptEpoch(e uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role.Load() != uint32(Replica) || e <= n.epoch.Load() {
		return nil
	}
	if err := n.st.SetReplState(e, Replica); err != nil {
		return err
	}
	n.epoch.Store(e)
	return nil
}

// Stats is a snapshot of the node's replication counters.
type Stats struct {
	Role        uint8
	Epoch       uint64
	Subscribers int
	Shipped     uint64 // records offered to subscribers
	Acks        uint64 // ack vectors processed
	Applied     uint64 // records applied by the local applier
}

// NodeStats returns a snapshot of the node's replication counters.
func (n *Node) NodeStats() Stats {
	n.mu.Lock()
	subs := len(n.subs)
	n.mu.Unlock()
	return Stats{
		Role:        n.Role(),
		Epoch:       n.Epoch(),
		Subscribers: subs,
		Shipped:     n.shipped.Load(),
		Acks:        n.acks.Load(),
		Applied:     n.applied.Load(),
	}
}

// Subscribers returns a snapshot of the registered subscribers (the server
// drain uses it to flush ship queues before closing replica connections).
func (n *Node) Subscribers() []*Subscriber {
	n.mu.Lock()
	out := make([]*Subscriber, 0, len(n.subs))
	for sub := range n.subs {
		out = append(out, sub)
	}
	n.mu.Unlock()
	return out
}

// Close stops the applier and every subscriber and uninstalls the commit
// hook. It does not close the store.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	if n.applierStop != nil {
		n.applierStop()
		n.applierStop = nil
	}
	subs := make([]*Subscriber, 0, len(n.subs))
	for sub := range n.subs {
		subs = append(subs, sub)
	}
	n.mu.Unlock()
	for _, sub := range subs {
		sub.Stop()
		<-sub.Done()
	}
	n.st.SetCommitHook(nil)
}

// ---------------------------------------------------------------------------

// Subscriber ships one replica's record stream: live records through a
// bounded queue, gaps (initial catch-up, queue overflow) through the log
// backlog. Cursors and acked watermarks are atomics so Flush and stats can
// observe them from other goroutines.
type Subscriber struct {
	n    *Node
	send func(Record) error

	q       chan Record
	lagging atomic.Bool // set on overflow; Run heals via backlog replay

	cursor []atomic.Uint64 // per-partition highest LSN sent
	ackv   []atomic.Uint64 // per-partition highest LSN acked durable

	stopOnce sync.Once
	stopc    chan struct{}
	donec    chan struct{}

	sent atomic.Uint64
}

// offer enqueues one committed record, copying the borrowed key/value
// slices (they alias the committing writer's buffers). A full queue marks
// the subscriber lagging; the dropped record is recovered from the log.
func (sub *Subscriber) offer(part int, lsn uint64, kind uint8, key, val []byte) {
	rec := Record{
		Part: part,
		LSN:  lsn,
		Kind: kind,
		Key:  append([]byte(nil), key...),
		Val:  append([]byte(nil), val...),
	}
	select {
	case sub.q <- rec:
	default:
		sub.lagging.Store(true)
	}
}

// Run ships records until Stop, node close, or a send error (a dead
// transport); the caller owns reconnect policy. The cursor dedups the
// overlap between a backlog replay and records queued concurrently, so the
// replica's stream stays per-partition monotonic. Dropping a queued record
// at or below the cursor is safe because a backlog replay never advances
// the cursor past kv.ReplBacklog's barrier snapshot: every LSN at or below
// the barrier was already delivered by the replay (or superseded by a
// higher-LSN record for the same key), and every LSN above it is still in
// this queue — or recovered by the next replay if the queue overflowed.
func (sub *Subscriber) Run() error {
	defer sub.close()
	for {
		select {
		case <-sub.stopc:
			return nil
		default:
		}
		if sub.lagging.CompareAndSwap(true, false) {
			if err := sub.catchUp(); err != nil {
				return err
			}
			continue
		}
		select {
		case <-sub.stopc:
			return nil
		case rec := <-sub.q:
			if rec.LSN <= sub.cursor[rec.Part].Load() {
				continue // already shipped by a backlog replay
			}
			if err := sub.send(rec); err != nil {
				return err
			}
			sub.cursor[rec.Part].Store(rec.LSN)
			sub.sent.Add(1)
		}
	}
}

// catchUp replays the reachable backlog above each partition cursor.
// ReplBacklog bounds the replay at a barrier snapshot of the partition's
// LSN taken under the commit path's replication mutex, so the cursor only
// ever advances over LSNs whose records were published and queue-offered
// before the replay's tree scan began — a record committed concurrently
// with the scan is above the barrier and stays the live queue's job.
func (sub *Subscriber) catchUp() error {
	for part := range sub.cursor {
		var fail error
		err := sub.n.st.ReplBacklog(part, sub.cursor[part].Load(),
			func(lsn uint64, kind uint8, key, val []byte) bool {
				if err := sub.send(Record{Part: part, LSN: lsn, Kind: kind, Key: key, Val: val}); err != nil {
					fail = err
					return false
				}
				sub.cursor[part].Store(lsn)
				sub.sent.Add(1)
				return true
			})
		if err == nil {
			err = fail
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Ack folds the replica's durable watermark vector into the subscriber and
// the node. Safe to call from the transport's read goroutine.
func (sub *Subscriber) Ack(lsns []uint64) {
	for i := 0; i < len(lsns) && i < len(sub.ackv); i++ {
		if lsns[i] > sub.ackv[i].Load() {
			sub.ackv[i].Store(lsns[i])
		}
	}
	sub.n.acks.Add(1)
	sub.n.advanceDurable(lsns)
}

// Flush blocks until the replica has acked everything committed to the
// store at the time of each check — the server's drain uses it to guarantee
// a shutdown loses no acked-durable write and hands the replica the full
// stream first. Returns an error if the subscriber dies or ctx expires.
func (sub *Subscriber) Flush(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if sub.caughtUp() {
			return nil
		}
		select {
		case <-sub.donec:
			return errors.New("repl: subscriber stopped before flush completed")
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func (sub *Subscriber) caughtUp() bool {
	for p := range sub.ackv {
		if sub.ackv[p].Load() < sub.n.st.ReplLSN(p) {
			return false
		}
	}
	return true
}

// Stop asks Run to exit; Done is closed when it has.
func (sub *Subscriber) Stop() {
	sub.stopOnce.Do(func() { close(sub.stopc) })
}

// Done reports Run's completion (also closed if Run was never started and
// close was called by the node).
func (sub *Subscriber) Done() <-chan struct{} { return sub.donec }

func (sub *Subscriber) close() {
	sub.n.mu.Lock()
	delete(sub.n.subs, sub)
	if sub.n.subCount.Add(-1) == 0 {
		// The fence lease starts counting from the last subscriber's exit.
		sub.n.subGone.Store(time.Now().UnixNano())
	}
	sub.n.mu.Unlock()
	close(sub.donec)
}
