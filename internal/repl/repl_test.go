package repl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rntree/kv"
)

func testOpts() kv.Options {
	return kv.Options{ArenaSize: 8 << 20, ChunkSize: 512, Shards: 1, Partitions: 2}
}

func newStore(t *testing.T) *kv.Store {
	t.Helper()
	st, err := kv.New(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewNodeRoles(t *testing.T) {
	// A fresh primary persists epoch 1; 0 means "never replicated".
	p := newStore(t)
	np, err := NewNode(p, Primary)
	if err != nil {
		t.Fatal(err)
	}
	if np.Role() != Primary || np.Epoch() != 1 {
		t.Fatalf("fresh primary: role %d epoch %d", np.Role(), np.Epoch())
	}
	if e, r := p.ReplState(); e != 1 || r != Primary {
		t.Fatalf("persisted state (%d, %d)", e, r)
	}

	// A fresh replica persists its role so a restart stays read-only.
	r := newStore(t)
	nr, err := NewNode(r, Replica)
	if err != nil {
		t.Fatal(err)
	}
	if nr.Role() != Replica || nr.Epoch() != 0 {
		t.Fatalf("fresh replica: role %d epoch %d", nr.Role(), nr.Epoch())
	}

	// Persisted state wins over the requested role: a promoted replica
	// restarted with its old -replica-of flags must stay primary.
	nr.Close()
	if _, err := nr.Promote(4); err != nil {
		t.Fatal(err)
	}
	again, err := NewNode(r, Replica)
	if err != nil {
		t.Fatal(err)
	}
	if again.Role() != Primary || again.Epoch() != 5 {
		t.Fatalf("reopened promoted node: role %d epoch %d", again.Role(), again.Epoch())
	}

	if _, err := NewNode(newStore(t), 9); err == nil {
		t.Fatal("bad role accepted")
	}
}

func TestPromoteIdempotentAndMonotonic(t *testing.T) {
	n, err := NewNode(newStore(t), Replica)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := n.Promote(7)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != 8 {
		t.Fatalf("promote above minEpoch 7 gave epoch %d", e1)
	}
	// Retrying with a stale minEpoch is a no-op.
	e2, err := n.Promote(7)
	if err != nil || e2 != e1 {
		t.Fatalf("retry: epoch %d, err %v", e2, err)
	}
	// A higher minEpoch (another primary existed meanwhile) bumps again.
	e3, err := n.Promote(20)
	if err != nil || e3 != 21 {
		t.Fatalf("re-promote: epoch %d, err %v", e3, err)
	}
}

// Subscribe ships the backlog before live records, keeps per-partition LSN
// order, and heals queue overflow from the log.
func TestSubscribeShipsBacklogThenLive(t *testing.T) {
	st := newStore(t)
	n, err := NewNode(st, Primary)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 20; i++ {
		if err := st.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	var mu sync.Mutex
	lastLSN := make(map[int]uint64)
	var got []Record
	send := func(rec Record) error {
		mu.Lock()
		defer mu.Unlock()
		if rec.LSN <= lastLSN[rec.Part] {
			t.Errorf("partition %d: LSN %d after %d", rec.Part, rec.LSN, lastLSN[rec.Part])
		}
		lastLSN[rec.Part] = rec.LSN
		got = append(got, Record{Part: rec.Part, LSN: rec.LSN, Kind: rec.Kind,
			Key: append([]byte(nil), rec.Key...), Val: append([]byte(nil), rec.Val...)})
		return nil
	}
	sub, err := n.Subscribe(make([]uint64, st.Partitions()), send)
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() { runDone <- sub.Run() }()

	// Live traffic lands on top of the backlog.
	for i := 20; i < 30; i++ {
		if err := st.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("live")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		total := len(got)
		mu.Unlock()
		if total >= 30 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d of 30 records shipped", total)
		case <-time.After(time.Millisecond):
		}
	}
	sub.Stop()
	if err := <-runDone; err != nil {
		t.Fatalf("Run: %v", err)
	}

	// Subscribing with a mismatched cursor vector is rejected.
	if _, err := n.Subscribe(make([]uint64, 5), send); err == nil {
		t.Fatal("bad cursor vector accepted")
	}
}

func TestWaitDurable(t *testing.T) {
	st := newStore(t)
	n, err := NewNode(st, Primary)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	part, lsn, err := st.PutEx([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	// No replica: the wait times out but the write stays committed.
	if err := n.WaitDurable(part, lsn, 10*time.Millisecond); err != ErrDurableTimeout {
		t.Fatalf("no-replica wait: %v", err)
	}

	sub, err := n.Subscribe(make([]uint64, st.Partitions()), func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	go sub.Run()
	defer sub.Stop()
	waitErr := make(chan error, 1)
	go func() { waitErr <- n.WaitDurable(part, lsn, 5*time.Second) }()
	// An ack covering the LSN releases the waiter.
	ack := make([]uint64, st.Partitions())
	ack[part] = lsn
	sub.Ack(ack)
	if err := <-waitErr; err != nil {
		t.Fatalf("acked wait: %v", err)
	}
	if d := n.Durable(); d[part] != lsn {
		t.Fatalf("durable watermark %d, want %d", d[part], lsn)
	}
	// Stale acks never regress the watermark.
	sub.Ack(make([]uint64, st.Partitions()))
	if d := n.Durable(); d[part] != lsn {
		t.Fatalf("stale ack regressed watermark to %d", d[part])
	}
}

// The in-process link is the zero-network wait-for-replica-durable mode:
// after any sequence of mutations both stores match, and CatchUp heals a
// replica that joined late.
func TestLinkAndCatchUp(t *testing.T) {
	p, r := newStore(t), newStore(t)
	link := NewLink(p, r)
	for i := 0; i < 30; i++ {
		if err := p.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i += 2 {
		if err := p.Delete([]byte(fmt.Sprintf("k%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := link.Err(); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, p, r)
	link.Unlink()

	// A fresh replica converges from the backlog alone.
	late := newStore(t)
	if err := CatchUp(p, late); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, p, late)
}

// Async-mode loss bound: a replica that received only a prefix of the
// stream before the primary vanished is exactly the acked prefix — the
// unacked tail is the only loss, and resuming from the replica's durable
// watermarks re-ships exactly that tail.
func TestAsyncTailLossBound(t *testing.T) {
	p, r := newStore(t), newStore(t)
	np, err := NewNode(p, Primary)
	if err != nil {
		t.Fatal(err)
	}
	defer np.Close()

	// A subscriber that dies mid-stream: the transport delivers k records
	// and then fails, like a primary crashing with the tail unshipped.
	const total, delivered = 40, 17
	n := 0
	send := func(rec Record) error {
		if n >= delivered {
			return fmt.Errorf("transport died")
		}
		n++
		return r.ReplApply(rec.Part, rec.LSN, rec.Kind, rec.Key, rec.Val)
	}
	for i := 0; i < total; i++ {
		if err := p.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := np.Subscribe(make([]uint64, p.Partitions()), send)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Run(); err == nil {
		t.Fatal("Run survived a dead transport")
	}

	// The replica holds a per-partition prefix: its contents are exactly
	// the records at or below its watermarks.
	for part := 0; part < r.Partitions(); part++ {
		w := r.ReplLSN(part)
		if w > p.ReplLSN(part) {
			t.Fatalf("partition %d: replica watermark %d ahead of primary %d", part, w, p.ReplLSN(part))
		}
		err := p.ReplBacklog(part, 0, func(lsn uint64, kind uint8, key, val []byte) bool {
			if lsn > w {
				return true // the lost tail
			}
			v, err := r.Get(key)
			if kind == kv.ReplDelete {
				return true
			}
			if err != nil || string(v) != string(val) {
				t.Fatalf("partition %d: acked record lsn %d (%q) missing from replica: %q, %v",
					part, lsn, key, v, err)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Reconnect semantics: catching up from the watermarks re-ships the
	// tail and nothing is lost end to end.
	if err := CatchUp(p, r); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, p, r)
}

func assertStoresEqual(t *testing.T, a, b *kv.Store) {
	t.Helper()
	am := map[string]string{}
	a.Range(func(k, v []byte) bool { am[string(k)] = string(v); return true })
	n := 0
	b.Range(func(k, v []byte) bool {
		n++
		if am[string(k)] != string(v) {
			t.Fatalf("stores diverge at %q: %q vs %q", k, am[string(k)], v)
		}
		return true
	})
	if n != len(am) {
		t.Fatalf("stores diverge in size: %d vs %d keys", len(am), n)
	}
}

// A primary with a fence lease steps down to read-only (Fenced) once every
// subscriber has been gone longer than the lease, and recovers the moment
// one subscribes — closing client-driven failover's divergence window.
func TestFenceLease(t *testing.T) {
	n, err := NewNode(newStore(t), Primary)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Fenced() {
		t.Fatal("fenced with fencing disabled")
	}
	n.SetFenceLease(20 * time.Millisecond)
	if n.Fenced() {
		t.Fatal("fenced inside the arming grace window")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !n.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("never fenced after the lease expired with no subscriber")
		}
		time.Sleep(time.Millisecond)
	}
	sub, err := n.Subscribe(make([]uint64, n.Store().Partitions()), func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n.Fenced() {
		t.Fatal("fenced with a live subscriber")
	}
	go sub.Run()
	sub.Stop()
	<-sub.Done()
	if n.Fenced() {
		t.Fatal("fenced immediately after a disconnect: the lease must re-arm")
	}
	for !n.Fenced() {
		if time.Now().After(deadline) {
			t.Fatal("never re-fenced after the subscriber left")
		}
		time.Sleep(time.Millisecond)
	}
	// A promotion re-arms the lease: the fresh primary gets a grace window.
	if _, err := n.Promote(n.Epoch()); err != nil {
		t.Fatal(err)
	}
	if n.Fenced() {
		t.Fatal("fenced immediately after promotion")
	}
}
