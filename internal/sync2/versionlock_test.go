package sync2

import (
	"sync"
	"testing"
)

func TestVersionLockBasics(t *testing.T) {
	var v VersionLock
	if v.IsLocked() || v.IsSplitting() || v.Version() != 0 {
		t.Fatal("zero value not clean")
	}
	if !v.TryLock() {
		t.Fatal("TryLock failed on unlocked word")
	}
	if v.TryLock() {
		t.Fatal("TryLock succeeded on locked word")
	}
	if !v.IsLocked() {
		t.Fatal("lock bit not set")
	}
	v.Unlock()
	if v.IsLocked() {
		t.Fatal("lock bit not cleared")
	}
}

func TestUnlockPanicsWhenUnlocked(t *testing.T) {
	var v VersionLock
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.Unlock()
}

func TestSplitIncrementsVersion(t *testing.T) {
	var v VersionLock
	v.Lock()
	v.SetSplit()
	if !v.IsSplitting() {
		t.Fatal("split bit not set")
	}
	v.UnsetSplit()
	if v.IsSplitting() {
		t.Fatal("split bit not cleared")
	}
	if v.Version() != 1 {
		t.Fatalf("version = %d, want 1", v.Version())
	}
	v.Unlock()
}

func TestUnsetSplitWithoutSetPanics(t *testing.T) {
	var v VersionLock
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v.UnsetSplit()
}

func TestStableVersionWaitsForSplit(t *testing.T) {
	var v VersionLock
	v.Lock()
	v.SetSplit()
	done := make(chan uint64)
	go func() { done <- v.StableVersion() }()
	// StableVersion must not return while splitting.
	select {
	case <-done:
		t.Fatal("StableVersion returned during split")
	default:
	}
	v.UnsetSplit()
	if got := <-done; got != 1 {
		t.Fatalf("StableVersion = %d, want 1", got)
	}
	v.Unlock()
}

func TestVersionPreservedAcrossLock(t *testing.T) {
	var v VersionLock
	v.Lock()
	v.SetSplit()
	v.UnsetSplit()
	v.Unlock()
	v.Lock()
	if v.Version() != 1 {
		t.Fatalf("version lost across lock: %d", v.Version())
	}
	v.Unlock()
}

func TestVersionLockMutualExclusion(t *testing.T) {
	var v VersionLock
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				v.Lock()
				counter++
				v.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 16000 {
		t.Fatalf("counter = %d, want 16000 (lost updates)", counter)
	}
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var s SpinLock
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				s.Lock()
				counter++
				s.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 16000 {
		t.Fatalf("counter = %d, want 16000", counter)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var s SpinLock
	if !s.TryLock() {
		t.Fatal("TryLock failed on free lock")
	}
	if s.TryLock() {
		t.Fatal("TryLock succeeded on held lock")
	}
	if !s.IsLocked() {
		t.Fatal("IsLocked false while held")
	}
	s.Unlock()
	if s.IsLocked() {
		t.Fatal("IsLocked true after unlock")
	}
}

func TestSpinLockUnlockPanics(t *testing.T) {
	var s SpinLock
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Unlock()
}
