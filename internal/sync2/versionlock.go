// Package sync2 provides the synchronization building blocks of Section 5.1
// of the paper: a Masstree-style combined version/lock word (Figure 2) and a
// simple spin lock. A single integer carries a lock bit used by modify
// operations, a splitting bit set while a leaf node is being split, and a
// version number that is incremented when a split finishes — so readers only
// retry when the leaf they examined was structurally changed.
package sync2

import (
	"runtime"
	"sync/atomic"
)

const (
	// LockBit is set while a writer holds the leaf lock.
	LockBit uint64 = 1 << 63
	// SplitBit is set while the leaf is being split.
	SplitBit uint64 = 1 << 62
	// VersionMask extracts the version number.
	VersionMask uint64 = SplitBit - 1
)

// VersionLock is the combined version/lock/splitting word of Figure 2.
// The zero value is unlocked, not splitting, version 0.
type VersionLock struct {
	w atomic.Uint64
}

// Raw returns the current raw word (version + flag bits).
func (v *VersionLock) Raw() uint64 { return v.w.Load() }

// Version returns the current version number, ignoring flag bits.
func (v *VersionLock) Version() uint64 { return v.w.Load() & VersionMask }

// IsLocked reports whether the lock bit is set.
func (v *VersionLock) IsLocked() bool { return v.w.Load()&LockBit != 0 }

// IsSplitting reports whether the splitting bit is set.
func (v *VersionLock) IsSplitting() bool { return v.w.Load()&SplitBit != 0 }

// TryLock attempts to set the lock bit with a single CAS.
func (v *VersionLock) TryLock() bool {
	old := v.w.Load()
	if old&LockBit != 0 {
		return false
	}
	return v.w.CompareAndSwap(old, old|LockBit)
}

// Lock spins until the lock bit is acquired (the paper's lock helper, a CAS
// loop on the lock bit).
func (v *VersionLock) Lock() {
	for i := 0; ; i++ {
		if v.TryLock() {
			return
		}
		backoff(i)
	}
}

// Unlock clears the lock bit. The caller must hold the lock.
func (v *VersionLock) Unlock() {
	for {
		old := v.w.Load()
		if old&LockBit == 0 {
			panic("sync2: unlock of unlocked VersionLock")
		}
		if v.w.CompareAndSwap(old, old&^LockBit) {
			return
		}
	}
}

// SetSplit sets the splitting bit. The caller must hold the lock.
func (v *VersionLock) SetSplit() {
	for {
		old := v.w.Load()
		if v.w.CompareAndSwap(old, old|SplitBit) {
			return
		}
	}
}

// UnsetSplit clears the splitting bit and increments the version number,
// signalling readers that the leaf's structure changed (Section 5.1: "The
// version number is increased when the splitting is finished").
func (v *VersionLock) UnsetSplit() {
	for {
		old := v.w.Load()
		if old&SplitBit == 0 {
			panic("sync2: UnsetSplit without SetSplit")
		}
		next := (old &^ SplitBit) + 1
		if next&VersionMask == 0 { // version wrapped into flag bits
			next = old &^ (SplitBit | VersionMask)
		}
		if v.w.CompareAndSwap(old, next) {
			return
		}
	}
}

// StableVersion spins until the splitting bit is clear and returns the
// version number observed at that moment (the paper's stableVersion helper).
// Readers call it before and after their computation; a changed version
// means a split intervened and the read must retry.
func (v *VersionLock) StableVersion() uint64 {
	for i := 0; ; i++ {
		w := v.w.Load()
		if w&SplitBit == 0 {
			return w & VersionMask
		}
		backoff(i)
	}
}

// SpinLock is a minimal test-and-set spin lock for short critical sections.
// The zero value is unlocked.
type SpinLock struct {
	v atomic.Uint32
}

// TryLock attempts to acquire the lock without blocking.
func (s *SpinLock) TryLock() bool { return s.v.CompareAndSwap(0, 1) }

// Lock spins (with progressive backoff) until acquired.
func (s *SpinLock) Lock() {
	for i := 0; ; i++ {
		if s.TryLock() {
			return
		}
		backoff(i)
	}
}

// Unlock releases the lock.
func (s *SpinLock) Unlock() {
	if !s.v.CompareAndSwap(1, 0) {
		panic("sync2: unlock of unlocked SpinLock")
	}
}

// IsLocked reports whether the lock is currently held.
func (s *SpinLock) IsLocked() bool { return s.v.Load() != 0 }

// backoff yields progressively: a few busy spins, then scheduler yields.
func backoff(i int) {
	if i < 8 {
		for j := 0; j < 1<<uint(i); j++ {
			_ = j
		}
		return
	}
	runtime.Gosched()
}

// jitterSeed seeds per-loop JitterBackoff RNG states so that concurrent
// retry loops never share a jitter sequence.
var jitterSeed atomic.Uint64

// JitterBackoff spins for a jittered, exponentially growing interval before
// a retry — the same desynchronization the HTM region applies to conflict
// aborts. Plain progressive backoff keeps colliding loops in lock step
// (they all wait the same time and collide again); the randomized interval
// spreads them out. state is a per-loop RNG cursor, lazily seeded on first
// use; attempt caps at 8 so the ceiling stays bounded (~4k spins).
func JitterBackoff(attempt int, state *uint64) {
	if *state == 0 {
		*state = jitterSeed.Add(0x9e3779b97f4a7c15) | 1
	}
	if attempt > 8 {
		attempt = 8
	}
	*state += 0x9e3779b97f4a7c15
	ceil := uint64(16) << uint(attempt)
	spins := ceil/2 + splitmix64(*state)%(ceil/2+1) // jitter in [ceil/2, ceil]
	for i := uint64(0); i < spins; i++ {
		if i&255 == 255 {
			runtime.Gosched()
		}
	}
}

// splitmix64 finalizes a Weyl-sequence state into a uniform 64-bit value.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
