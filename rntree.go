// Package rntree is a Go reproduction of "Building Scalable NVM-based
// B+tree with HTM" (Liu, Xing, Chen, Wu — ICPP 2019): RNTree, a durable
// B+tree for byte-addressable non-volatile memory that uses hardware
// transactional memory to keep leaf entries sorted with only two persistent
// instructions per modify operation, and that overlaps persistency with
// concurrency so cache-line flushes never run inside critical sections.
//
// Since neither NVM nor Intel RTM is reachable from pure Go, the library
// runs on faithful simulators: internal/pmem models the CPU-cache/NVM split
// (explicit persist instructions, crash images with random eviction,
// tunable flush latency) and internal/htm emulates RTM (buffered
// transactional stores, capacity and flush-inside-transaction aborts, a
// fallback lock). See DESIGN.md for the substitution argument and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Beyond the paper, the index can be hash-partitioned into a forest of
// independent trees (Options.Partitions): each partition owns a private
// arena, HTM fallback lock and persist stream, so write throughput scales
// past the single tree's serialization points while range scans stay
// globally ordered via a k-way merge.
//
// Quick start:
//
//	t, err := rntree.New(rntree.Options{DualSlotArray: true, Partitions: 8})
//	if err != nil { ... }
//	t.Insert(42, 1)
//	v, ok := t.Find(42)
//	snap := t.Crash(0.5)                     // simulated power loss
//	t2, err := rntree.Recover(snap, rntree.Options{})
//
// The package also exposes the re-implemented baselines of the paper's
// evaluation (NV-Tree, wB+Tree, wB+Tree-SO, FPTree, CDDS) through
// NewBaseline, all sharing the Index interface.
package rntree

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rntree/internal/baseline/cdds"
	"rntree/internal/baseline/fptree"
	"rntree/internal/baseline/nvtree"
	"rntree/internal/baseline/wbtree"
	"rntree/internal/core"
	"rntree/internal/forest"
	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Index is the common operation set of RNTree and every baseline tree:
// conditional Insert/Update/Remove, unconditional Upsert, Find, and ordered
// Scan.
type Index = tree.Index

// KV is one key-value record.
type KV = tree.KV

// Errors returned by conditional writes (Section 3.3 of the paper).
var (
	ErrKeyExists   = tree.ErrKeyExists
	ErrKeyNotFound = tree.ErrKeyNotFound
	ErrFull        = tree.ErrFull
)

// Options configure a Tree.
type Options struct {
	// ArenaSize is the total simulated NVM capacity in bytes (default
	// 256 MiB), split evenly across partitions.
	ArenaSize uint64
	// Partitions hash-partitions the index into a forest of that many
	// independent trees (power of two, default 1). Each partition owns its
	// own arena, HTM region (fallback lock) and recovery root, so modify
	// throughput scales past one tree's serialization points. Recover
	// reads the partition count from the snapshot, not from this field.
	Partitions int
	// DualSlotArray enables the paper's RNTree+DS variant (§4.3): reads
	// never block on concurrent writers.
	DualSlotArray bool
	// LeafCapacity is the log entries per leaf (default 64, the paper's
	// best size).
	LeafCapacity int
	// FlushLatency and FenceLatency set the simulated cost of persistent
	// instructions (per flushed line / per fence). Zero disables the
	// busy-wait; use pmem-realistic values (≈250ns/100ns) for benchmarks.
	FlushLatency time.Duration
	FenceLatency time.Duration
	// Seed initialises the tree's private sampler for Crash eviction (and
	// any future randomized decisions), so crash simulation is
	// deterministic per tree instance rather than hostage to global rand
	// state. Zero means seed 1.
	Seed int64
}

func (o Options) forestOpts() forest.Options {
	parts := o.Partitions
	if parts == 0 {
		parts = 1
	}
	size := o.ArenaSize
	if size == 0 {
		size = 256 << 20
	}
	return forest.Options{
		Partitions: parts,
		ArenaSize:  size / uint64(parts),
		Latency:    pmem.LatencyModel{FlushPerLine: o.FlushLatency, Fence: o.FenceLatency},
		Tree:       core.Options{DualSlot: o.DualSlotArray, LeafCapacity: o.LeafCapacity},
	}
}

func (o Options) rng() *rand.Rand {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// arena builds the single arena the baseline trees run on.
func (o Options) arena() *pmem.Arena {
	size := o.ArenaSize
	if size == 0 {
		size = 256 << 20
	}
	return pmem.New(pmem.Config{
		Size:    size,
		Latency: pmem.LatencyModel{FlushPerLine: o.FlushLatency, Fence: o.FenceLatency},
	})
}

// Tree is an RNTree (or with Partitions > 1 a forest of them) over
// simulated NVM arenas. All methods are safe for concurrent use.
type Tree struct {
	*forest.Forest

	// mu guards rng: crash sampling draws from a per-tree stream so each
	// instance replays deterministically under a fixed Seed.
	mu  sync.Mutex
	rng *rand.Rand
}

// New creates an empty RNTree in fresh arenas.
func New(opts Options) (*Tree, error) {
	f, err := forest.New(opts.forestOpts())
	if err != nil {
		return nil, err
	}
	return &Tree{Forest: f, rng: opts.rng()}, nil
}

// Stats is the unified counter snapshot of the whole tree (or forest):
// persistence traffic, reader retries, HTM outcomes and shape, aggregated
// across partitions.
type Stats struct {
	// Persists is the number of persistent instructions executed.
	Persists uint64
	// LinesFlushed is the number of cache lines written back to NVM.
	LinesFlushed uint64
	// WordsWritten counts 8-byte stores into the arenas.
	WordsWritten uint64
	// ReadRetries counts read attempts wasted on concurrent writers (§6.3);
	// the dual slot array drives this toward zero.
	ReadRetries uint64
	// HTM reports transaction outcomes of the emulated RTM, summed over
	// every partition's region.
	HTM htm.Stats
	// Leaves and Depth describe the tree shape (Leaves summed over
	// partitions, Depth the maximum).
	Leaves int
	Depth  int
	// Partitions is the forest fan-out (1 for a single tree).
	Partitions int
}

// Stats returns a snapshot of the tree's counters.
func (t *Tree) Stats() Stats {
	fs := t.Forest.Stats()
	return Stats{
		Persists:     fs.Persists,
		LinesFlushed: fs.LinesFlushed,
		WordsWritten: fs.WordsWritten,
		ReadRetries:  fs.ReadRetries,
		HTM:          fs.HTM,
		Leaves:       fs.Leaves,
		Depth:        fs.Depth,
		Partitions:   t.Forest.Partitions(),
	}
}

// Snapshot is the durable state of a tree at a crash or shutdown: exactly
// what the simulated NVM would contain after power loss, one image per
// partition.
type Snapshot struct {
	imgs [][]uint64
}

// Crash simulates power loss: the returned snapshot contains everything
// persisted so far, plus each dirty-but-unflushed cache line with
// probability evictProb (hardware may evict any line at any time). Eviction
// sampling draws from the tree's own seeded source (Options.Seed), so a
// given instance's crash sequence replays deterministically. The tree
// remains usable, but the snapshot is fixed.
func (t *Tree) Crash(evictProb float64) Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	var rng *rand.Rand
	if evictProb > 0 {
		rng = t.rng
	}
	return Snapshot{imgs: t.Forest.CrashImages(rng, evictProb)}
}

// Checkpoint performs a clean shutdown (Close) and returns the durable
// state; reopening a checkpoint uses the fast reconstruction path.
func (t *Tree) Checkpoint() Snapshot {
	t.Forest.Close()
	return Snapshot{imgs: t.Forest.CrashImages(nil, 0)}
}

// Recover reopens a tree from a snapshot, choosing per partition the fast
// reconstruction path after a clean Checkpoint and full crash recovery
// otherwise (§5.4). DualSlotArray and latency options apply to the reopened
// tree; LeafCapacity and the partition count are read from the snapshot
// (Options.Partitions is ignored).
func Recover(s Snapshot, opts Options) (*Tree, error) {
	f, err := forest.Open(s.imgs, opts.forestOpts())
	if err != nil {
		return nil, err
	}
	return &Tree{Forest: f, rng: opts.rng()}, nil
}

// ResetStats zeroes the persistence and HTM counters of every partition.
func (t *Tree) ResetStats() { t.Forest.ResetStats() }

// Iterator walks a Tree in ascending key order across all partitions; see
// Tree.NewIterator.
type Iterator = forest.Iterator

// BulkLoad builds a tree directly from records sorted by strictly
// increasing key, using one persistent instruction per leaf instead of two
// per record — the fast path for initial loads and migrations.
func BulkLoad(opts Options, records []KV) (*Tree, error) {
	f, err := forest.BulkLoad(opts.forestOpts(), records)
	if err != nil {
		return nil, err
	}
	return &Tree{Forest: f, rng: opts.rng()}, nil
}

// Kind names a baseline tree implementation from the paper's evaluation.
type Kind string

// Baseline kinds.
const (
	KindNVTree     Kind = "nvtree"      // append-only unsorted leaves, 2 persists
	KindNVTreeCond Kind = "nvtree-cond" // NV-Tree with conditional writes (Fig. 5)
	KindWBTree     Kind = "wbtree"      // slot array + valid bit, 4 persists
	KindWBTreeSO   Kind = "wbtree-so"   // 8-byte slot array, 7-entry leaves
	KindFPTree     Kind = "fptree"      // fingerprints + coarse leaf locking
	KindCDDS       Kind = "cdds"        // multi-version sorted nodes (Table 1)
)

// NewBaseline creates one of the re-implemented comparison trees on a fresh
// arena. NV-Tree, wB+Tree(-SO) and CDDS are single-threaded, as in the
// paper (Table 1); FPTree is concurrent.
func NewBaseline(k Kind, opts Options) (Index, error) {
	a := opts.arena()
	switch k {
	case KindNVTree:
		return nvtree.New(a, nvtree.Options{LeafCapacity: opts.LeafCapacity})
	case KindNVTreeCond:
		return nvtree.New(a, nvtree.Options{LeafCapacity: opts.LeafCapacity, Conditional: true})
	case KindWBTree:
		return wbtree.New(a, wbtree.Options{LeafCapacity: opts.LeafCapacity})
	case KindWBTreeSO:
		return wbtree.New(a, wbtree.Options{SlotOnly: true})
	case KindFPTree:
		return fptree.New(a, fptree.Options{LeafCapacity: opts.LeafCapacity})
	case KindCDDS:
		return cdds.New(a, cdds.Options{})
	}
	return nil, fmt.Errorf("rntree: unknown baseline kind %q", k)
}
