// Package rntree is a Go reproduction of "Building Scalable NVM-based
// B+tree with HTM" (Liu, Xing, Chen, Wu — ICPP 2019): RNTree, a durable
// B+tree for byte-addressable non-volatile memory that uses hardware
// transactional memory to keep leaf entries sorted with only two persistent
// instructions per modify operation, and that overlaps persistency with
// concurrency so cache-line flushes never run inside critical sections.
//
// Since neither NVM nor Intel RTM is reachable from pure Go, the library
// runs on faithful simulators: internal/pmem models the CPU-cache/NVM split
// (explicit persist instructions, crash images with random eviction,
// tunable flush latency) and internal/htm emulates RTM (buffered
// transactional stores, capacity and flush-inside-transaction aborts, a
// fallback lock). See DESIGN.md for the substitution argument and
// EXPERIMENTS.md for paper-vs-measured results.
//
// Quick start:
//
//	t, err := rntree.New(rntree.Options{DualSlotArray: true})
//	if err != nil { ... }
//	t.Insert(42, 1)
//	v, ok := t.Find(42)
//	snap := t.Crash(0.5, 1)                  // simulated power loss
//	t2, err := rntree.Recover(snap, rntree.Options{})
//
// The package also exposes the re-implemented baselines of the paper's
// evaluation (NV-Tree, wB+Tree, wB+Tree-SO, FPTree, CDDS) through
// NewBaseline, all sharing the Index interface.
package rntree

import (
	"fmt"
	"math/rand"
	"time"

	"rntree/internal/baseline/cdds"
	"rntree/internal/baseline/fptree"
	"rntree/internal/baseline/nvtree"
	"rntree/internal/baseline/wbtree"
	"rntree/internal/core"
	"rntree/internal/htm"
	"rntree/internal/pmem"
	"rntree/internal/tree"
)

// Index is the common operation set of RNTree and every baseline tree:
// conditional Insert/Update/Remove, unconditional Upsert, Find, and ordered
// Scan.
type Index = tree.Index

// KV is one key-value record.
type KV = tree.KV

// Errors returned by conditional writes (Section 3.3 of the paper).
var (
	ErrKeyExists   = tree.ErrKeyExists
	ErrKeyNotFound = tree.ErrKeyNotFound
	ErrFull        = tree.ErrFull
)

// Options configure a Tree.
type Options struct {
	// ArenaSize is the simulated NVM capacity in bytes (default 256 MiB).
	ArenaSize uint64
	// DualSlotArray enables the paper's RNTree+DS variant (§4.3): reads
	// never block on concurrent writers.
	DualSlotArray bool
	// LeafCapacity is the log entries per leaf (default 64, the paper's
	// best size).
	LeafCapacity int
	// FlushLatency and FenceLatency set the simulated cost of persistent
	// instructions (per flushed line / per fence). Zero disables the
	// busy-wait; use pmem-realistic values (≈250ns/100ns) for benchmarks.
	FlushLatency time.Duration
	FenceLatency time.Duration
}

func (o Options) arena() *pmem.Arena {
	size := o.ArenaSize
	if size == 0 {
		size = 256 << 20
	}
	return pmem.New(pmem.Config{
		Size:    size,
		Latency: pmem.LatencyModel{FlushPerLine: o.FlushLatency, Fence: o.FenceLatency},
	})
}

// Tree is an RNTree over a simulated NVM arena. All methods are safe for
// concurrent use.
type Tree struct {
	*core.Tree
	arena *pmem.Arena
}

// New creates an empty RNTree in a fresh arena.
func New(opts Options) (*Tree, error) {
	a := opts.arena()
	t, err := core.New(a, core.Options{
		DualSlot:     opts.DualSlotArray,
		LeafCapacity: opts.LeafCapacity,
	})
	if err != nil {
		return nil, err
	}
	return &Tree{Tree: t, arena: a}, nil
}

// Stats aggregates persistence and HTM counters plus tree shape.
type Stats struct {
	// Persists is the number of persistent instructions executed.
	Persists uint64
	// LinesFlushed is the number of cache lines written back to NVM.
	LinesFlushed uint64
	// WordsWritten counts 8-byte stores into the arena.
	WordsWritten uint64
	// HTM reports transaction outcomes of the emulated RTM.
	HTM htm.Stats
	// Leaves and Depth describe the tree shape.
	Leaves int
	Depth  int
}

// Stats returns a snapshot of the tree's counters.
func (t *Tree) Stats() Stats {
	s := t.arena.Stats()
	return Stats{
		Persists:     s.Persists,
		LinesFlushed: s.LinesFlushed,
		WordsWritten: s.WordsWritten,
		HTM:          t.HTMStats(),
		Leaves:       t.LeafCount(),
		Depth:        t.Tree.Depth(),
	}
}

// ResetStats zeroes the persistence counters (HTM counters included).
func (t *Tree) ResetStats() { t.arena.ResetStats() }

// Snapshot is the durable state of a tree at a crash or shutdown: exactly
// what the simulated NVM would contain after power loss.
type Snapshot struct {
	img []uint64
}

// Crash simulates power loss: the returned snapshot contains everything
// persisted so far, plus each dirty-but-unflushed cache line with
// probability evictProb (hardware may evict any line at any time). The tree
// remains usable, but the snapshot is fixed.
func (t *Tree) Crash(evictProb float64, seed int64) Snapshot {
	var rng *rand.Rand
	if evictProb > 0 {
		rng = rand.New(rand.NewSource(seed))
	}
	return Snapshot{img: t.arena.CrashImage(rng, evictProb)}
}

// Checkpoint performs a clean shutdown (Close) and returns the durable
// state; reopening a checkpoint uses the fast reconstruction path.
func (t *Tree) Checkpoint() Snapshot {
	t.Close()
	return Snapshot{img: t.arena.CrashImage(nil, 0)}
}

// Recover reopens a tree from a snapshot, choosing the fast reconstruction
// path after a clean Checkpoint and full crash recovery otherwise (§5.4).
// DualSlotArray and latency options apply to the reopened tree; LeafCapacity
// is read from the snapshot.
func Recover(s Snapshot, opts Options) (*Tree, error) {
	a := pmem.Recover(s.img, pmem.Config{
		Latency: pmem.LatencyModel{FlushPerLine: opts.FlushLatency, Fence: opts.FenceLatency},
	})
	t, err := core.Open(a, core.Options{DualSlot: opts.DualSlotArray})
	if err != nil {
		return nil, err
	}
	return &Tree{Tree: t, arena: a}, nil
}

// Iterator walks a Tree in ascending key order; see Tree.NewIterator.
type Iterator = core.Iterator

// BulkLoad builds a tree directly from records sorted by strictly
// increasing key, using one persistent instruction per leaf instead of two
// per record — the fast path for initial loads and migrations.
func BulkLoad(opts Options, records []KV) (*Tree, error) {
	a := opts.arena()
	t, err := core.BulkLoad(a, core.Options{
		DualSlot:     opts.DualSlotArray,
		LeafCapacity: opts.LeafCapacity,
	}, records)
	if err != nil {
		return nil, err
	}
	return &Tree{Tree: t, arena: a}, nil
}

// Kind names a baseline tree implementation from the paper's evaluation.
type Kind string

// Baseline kinds.
const (
	KindNVTree     Kind = "nvtree"      // append-only unsorted leaves, 2 persists
	KindNVTreeCond Kind = "nvtree-cond" // NV-Tree with conditional writes (Fig. 5)
	KindWBTree     Kind = "wbtree"      // slot array + valid bit, 4 persists
	KindWBTreeSO   Kind = "wbtree-so"   // 8-byte slot array, 7-entry leaves
	KindFPTree     Kind = "fptree"      // fingerprints + coarse leaf locking
	KindCDDS       Kind = "cdds"        // multi-version sorted nodes (Table 1)
)

// NewBaseline creates one of the re-implemented comparison trees on a fresh
// arena. NV-Tree, wB+Tree(-SO) and CDDS are single-threaded, as in the
// paper (Table 1); FPTree is concurrent.
func NewBaseline(k Kind, opts Options) (Index, error) {
	a := opts.arena()
	switch k {
	case KindNVTree:
		return nvtree.New(a, nvtree.Options{LeafCapacity: opts.LeafCapacity})
	case KindNVTreeCond:
		return nvtree.New(a, nvtree.Options{LeafCapacity: opts.LeafCapacity, Conditional: true})
	case KindWBTree:
		return wbtree.New(a, wbtree.Options{LeafCapacity: opts.LeafCapacity})
	case KindWBTreeSO:
		return wbtree.New(a, wbtree.Options{SlotOnly: true})
	case KindFPTree:
		return fptree.New(a, fptree.Options{LeafCapacity: opts.LeafCapacity})
	case KindCDDS:
		return cdds.New(a, cdds.Options{})
	}
	return nil, fmt.Errorf("rntree: unknown baseline kind %q", k)
}
