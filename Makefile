# Tier-1 verification and the race gate for the concurrent kv/tree paths.
GO ?= go

.PHONY: check build vet test lint lint-fixtures race bench-kv bench-server bench-obj bench-heap faultcheck faultshort servercheck replcheck heapcheck objcheck fuzz-wire

check: build vet lint test faultshort servercheck replcheck heapcheck objcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# rnvet: the repo's own pass suite (persistcheck, htmsafe, lockflush,
# fencecheck, undolog, atomicfield, lockorder, spinblock) machine-checks the
# NVM-persistence, HTM-safety and cross-package concurrency invariants over
# every production package. See DESIGN.md §11 and §16.
lint:
	$(GO) run ./cmd/rnvet ./...

# The golden-fixture suite standalone: every pass's seeded-bug fixture must
# keep producing exactly its want-comment findings (proves the passes still
# FIND bugs — `lint` alone only proves the tree is clean), plus the
# annotation-grammar and directive-parsing tests.
lint-fixtures:
	$(GO) test ./internal/analysis -run 'TestPersistCheck|TestHTMSafe|TestLockFlush|TestFenceCheck|TestUndoLog|TestAtomicField|TestLockOrder|TestSpinBlock|TestAnnotations|TestParseLockOrder|TestDirectivePasses|TestByName' -count=1

test:
	$(GO) test ./...

# The kv store's Stats/Put/Delete/Compact paths, the tree's HTM slot
# updates (including the DRAM fingerprint words), the forest's partition
# router, the HTM emulation's lock table, the server's hot-key cache and
# stats snapshots, the client's pending-call table, the heap's grow
# cutover (committed-space gate vs concurrent readers), the crash-point
# explorer harness, and the drain scheduler are exercised concurrently;
# keep them race-clean.
race:
	$(GO) test -race -timeout 30m ./kv/... ./internal/core/... ./internal/forest/... ./internal/htm/... ./internal/server/... ./internal/repl/... ./client/... ./internal/pmem/... ./internal/obj/... ./internal/fault/... ./internal/drain/...

bench-kv:
	$(GO) run ./cmd/rnbench -exp kvscale

# Loopback serving sweeps: durable-PUT throughput (conns x depth) and the
# zipf-0.8 GET-latency sweep with the hot-key cache off/on; both sections
# merge into BENCH_server.json.
bench-server:
	$(GO) run ./cmd/rnbench -exp netbench,netgetbench

# The network serving layer's gate: protocol/server/client tests under the
# race detector (the pipelined writer, batcher, and drain paths are all
# concurrent), plus a short fuzz smoke of each wire decoder on top of the
# committed seed corpus.
servercheck:
	$(GO) test -race ./internal/wire/... ./internal/server/... ./client/... ./internal/drain/...
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=3s
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzDecodeResponse -fuzztime=3s
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzReadFrame -fuzztime=3s

# Replication gate: the repl node/subscriber/applier under the race
# detector, the kv LSN/apply/backlog layer, the server's ship+drain and
# client-failover end-to-end tests, and the two-node fault explorers
# (primary killed at every persist site, replica killed mid-apply, a
# crash inside the promotion cutover). Zero acked-durable-write loss or
# the target fails.
replcheck:
	$(GO) test -race ./internal/repl/...
	$(GO) test ./kv -run 'Repl|CommitHook'
	$(GO) test -race ./internal/server -run 'Repl|Durable|Drain|Failover'
	$(GO) test ./internal/fault -run 'Repl|Failover|PrimaryKill|ReplicaKill|Promotion'

# Heap gate: the persistent allocator's crash matrix (every allocator-
# metadata persist site, including the segment-append cutover, plus the
# v3->v4 superblock upgrade), the heap/swizzle unit tests, the kv growth
# and OOM-retry tests, and the rnvet undolog fixture that machine-checks
# the UndoBegin/MetaWrite8/UndoCommit protocol.
heapcheck:
	$(GO) test ./internal/fault -run 'ExploreHeap|ExploreKVV3Upgrade'
	$(GO) test ./internal/pmem -run 'Heap|Swizzle|Grow|Undo|Free'
	$(GO) test ./kv -run 'Grow|Swizzle|V3ImageUpgrade|OOM'
	$(GO) test ./internal/analysis -run 'UndoLog'

# Typed-object gate: the obj layer's unit tests (intent commit, TTL
# masking, expirer-vs-compaction) under the race detector, the obj
# crash-point explorer (every persist site of the multi-key commit and the
# reap composite), the server-side verb/failover tests, and a short fuzz
# smoke of the object request decoding on the committed seeds.
objcheck:
	$(GO) test -race ./internal/obj/...
	$(GO) test ./internal/fault -run 'ExploreObj'
	$(GO) test -race ./internal/server -run 'Obj'
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=3s

# Typed-object throughput vs flat durable PUT at 8 threads; merges an
# obj_ops section into BENCH_server.json.
bench-obj:
	$(GO) run ./cmd/rnbench -exp objbench

# Sustained kv Put throughput while the partition heap appends segments
# under live load; merges a heap_grow section into BENCH_forest.json.
bench-heap:
	$(GO) run ./cmd/rnbench -exp heapgrow

# Longer fuzz session for the wire decoders.
fuzz-wire:
	$(GO) test ./internal/wire -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=60s

# Crash-point exploration (internal/fault): crash every persist site of
# every layer target under pre/evicted/torn image variants and check the
# durability oracle. Exits non-zero on any violation.
faultcheck:
	$(GO) run ./cmd/rnbench -exp faultmatrix

# Capped-site matrix folded into `check`, so every PR exercises the
# explorer end to end without the exhaustive sweep.
faultshort:
	$(GO) run ./cmd/rnbench -exp faultmatrix -fault-sites 20
