# Tier-1 verification and the race gate for the concurrent kv/tree paths.
GO ?= go

.PHONY: check build vet test race bench-kv

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The kv store's Stats/Put/Delete/Compact paths and the tree's HTM slot
# updates are exercised concurrently; keep them race-clean.
race:
	$(GO) test -race ./kv/... ./internal/core/...

bench-kv:
	$(GO) run ./cmd/rnbench -exp kvscale
