# Tier-1 verification and the race gate for the concurrent kv/tree paths.
GO ?= go

.PHONY: check build vet test race bench-kv faultcheck faultshort

check: build vet test faultshort

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The kv store's Stats/Put/Delete/Compact paths and the tree's HTM slot
# updates are exercised concurrently; keep them race-clean.
race:
	$(GO) test -race ./kv/... ./internal/core/...

bench-kv:
	$(GO) run ./cmd/rnbench -exp kvscale

# Crash-point exploration (internal/fault): crash every persist site of
# every layer target under pre/evicted/torn image variants and check the
# durability oracle. Exits non-zero on any violation.
faultcheck:
	$(GO) run ./cmd/rnbench -exp faultmatrix

# Capped-site matrix folded into `check`, so every PR exercises the
# explorer end to end without the exhaustive sweep.
faultshort:
	$(GO) run ./cmd/rnbench -exp faultmatrix -fault-sites 20
