package kv

import (
	"fmt"
	"sort"

	"rntree/internal/pmem"
)

// Replication support: the value log doubles as the replication log. Every
// committed record carries a per-partition log sequence number (LSN), so a
// replica's progress is a vector of per-partition watermarks, shipped
// records are idempotent (an LSN at or below the watermark is a replay and
// is skipped), and a subscriber can resume from any watermark by replaying
// the reachable records above it in LSN order. See DESIGN.md §13.

// ReplLSN returns partition part's current log sequence number: the highest
// LSN assigned (primary) or applied (replica).
func (s *Store) ReplLSN(part int) uint64 { return s.parts[part].lsn.Load() }

// ReplLSNs returns the per-partition LSN vector.
func (s *Store) ReplLSNs() []uint64 {
	out := make([]uint64, len(s.parts))
	for i := range s.parts {
		out[i] = s.parts[i].lsn.Load()
	}
	return out
}

// ReplApply applies one shipped record to a replica store and persists it
// exactly like a local mutation (record append + persist, then tree
// publish). It is idempotent: an LSN at or below the partition's watermark
// has already been applied — possibly before a crash the shipper doesn't
// know about — and is skipped, which is what makes duplicate shipping
// across reconnects and failovers safe. LSN gaps are accepted (a primary
// can burn an LSN on a failed append). The commit hook is NOT fired.
func (s *Store) ReplApply(part int, lsn uint64, kind uint8, key, val []byte) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("kv: ReplApply: partition %d out of range [0,%d)", part, len(s.parts))
	}
	if kind != ReplPut && kind != ReplDelete {
		return fmt.Errorf("kv: ReplApply: bad record kind %d", kind)
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	h := s.hash(key)
	if got := s.f.PartitionFor(h); got != part {
		return fmt.Errorf("kv: ReplApply: key routes to partition %d, record says %d (geometry mismatch)", got, part)
	}
	p := &s.parts[part]
	// replMu makes watermark-check + apply atomic against concurrent
	// appliers and a promotion racing in local writes.
	p.replMu.Lock()
	defer p.replMu.Unlock()
	if lsn <= p.lsn.Load() {
		return nil
	}
	sh := p.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	oldHead, existed := p.tree.Find(h)
	next := uint64(0)
	prevKind := 0
	if existed {
		next = oldHead
		prevKind = p.chainFindKind(oldHead, key)
	}
	off, err := p.appendRecord(sh, int(kind), lsn, key, val, next)
	if err != nil {
		return err
	}
	if err := p.tree.Upsert(h, off); err != nil {
		return err
	}
	// The record is durable and reachable: the watermark advance is
	// recoverable (recount re-derives it from this record), so the volatile
	// counter can move.
	p.lsn.Store(lsn)
	if kind == ReplPut {
		if prevKind == recPut {
			sh.dead.Add(1)
		} else {
			sh.live.Add(1)
		}
	} else {
		if prevKind == recPut {
			sh.live.Add(-1)
			sh.dead.Add(2)
		} else {
			// Tombstone for a key with no live record here (the matching Put
			// was compacted away upstream, or never existed): the tombstone
			// itself is the only garbage.
			sh.dead.Add(1)
		}
	}
	return nil
}

// ReplBacklog calls fn for every reachable record of partition part with
// LSN above from, in ascending LSN order, until fn returns false. Superseded
// record versions dropped by compaction are fine: the newest record per key
// survives with the highest LSN, so replaying the backlog converges a
// subscriber to the primary's state. The key/val slices are freshly
// allocated and may be retained. Safe to call concurrently with writers —
// records committed during the walk may or may not be included; the live
// ship queue covers them.
func (s *Store) ReplBacklog(part int, from uint64, fn func(lsn uint64, kind uint8, key, val []byte) bool) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("kv: ReplBacklog: partition %d out of range [0,%d)", part, len(s.parts))
	}
	p := &s.parts[part]
	type rec struct {
		lsn      uint64
		kind     uint8
		key, val []byte
	}
	var recs []rec
	p.tree.Scan(0, 0, func(_, off uint64) bool {
		for off != 0 {
			kind, key, val, next := p.readRecord(off)
			if l := p.readLSN(off); l > from {
				recs = append(recs, rec{l, uint8(kind), key, val})
			}
			off = next
		}
		return true
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].lsn < recs[j].lsn })
	for _, r := range recs {
		if !fn(r.lsn, r.kind, r.key, r.val) {
			break
		}
	}
	return nil
}

// ReplState returns the persisted replication epoch and role byte (0, 0 if
// the store never participated in replication). The state line lives on
// partition 0's arena, rooted at the root-line word rootReplOff.
func (s *Store) ReplState() (epoch uint64, role uint8) {
	a := s.parts[0].arena
	off := a.Read8(rootReplOff)
	if off == pmem.NullOff || a.Read8(off+replStMagicOff) != replMagic {
		return 0, 0
	}
	w := a.Read8(off + replStWordOff)
	return w >> 8, uint8(w)
}

// SetReplState persists the replication epoch and role. Both pack into one
// 8-byte word, so the update is a single atomic persist: a crash during a
// promotion observes either the old epoch/role or the new, never a mix.
// The first call allocates the state line (line persisted before the root
// word references it; a crash between the two merely leaks the line and
// reads back as never-replicated, i.e. epoch 0).
func (s *Store) SetReplState(epoch uint64, role uint8) error {
	if epoch >= 1<<56 {
		return fmt.Errorf("kv: replication epoch %d overflows the packed state word", epoch)
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	s.replStMu.Lock()
	defer s.replStMu.Unlock()
	a := s.parts[0].arena
	off := a.Read8(rootReplOff)
	if off == pmem.NullOff {
		var err error
		off, err = a.Alloc(pmem.LineSize)
		if err != nil {
			return err
		}
		a.Write8(off+replStMagicOff, replMagic)
		a.Write8(off+replStWordOff, epoch<<8|uint64(role))
		a.Persist(off, pmem.LineSize)
		a.Write8(rootReplOff, off)
		a.Persist(rootReplOff, 8)
		return nil
	}
	a.Write8(off+replStWordOff, epoch<<8|uint64(role))
	a.Persist(off+replStWordOff, 8)
	return nil
}
