package kv

import (
	"container/heap"
	"fmt"
	"sort"

	"rntree/internal/pmem"
)

// Replication support: the value log doubles as the replication log. Every
// committed record carries a per-partition log sequence number (LSN), so a
// replica's progress is a vector of per-partition watermarks, shipped
// records are idempotent (an LSN at or below the watermark is a replay and
// is skipped), and a subscriber can resume from any watermark by replaying
// the reachable records above it in LSN order. See DESIGN.md §13.

// ReplLSN returns partition part's current log sequence number: the highest
// LSN assigned (primary) or applied (replica).
func (s *Store) ReplLSN(part int) uint64 { return s.parts[part].lsn.Load() }

// ReplLSNs returns the per-partition LSN vector.
func (s *Store) ReplLSNs() []uint64 {
	out := make([]uint64, len(s.parts))
	for i := range s.parts {
		out[i] = s.parts[i].lsn.Load()
	}
	return out
}

// ReplApply applies one shipped record to a replica store and persists it
// exactly like a local mutation (record append + persist, then tree
// publish). It is idempotent: an LSN at or below the partition's watermark
// has already been applied — possibly before a crash the shipper doesn't
// know about — and is skipped, which is what makes duplicate shipping
// across reconnects and failovers safe. LSN gaps are accepted (a primary
// can burn an LSN on a failed append). The commit hook is NOT fired.
func (s *Store) ReplApply(part int, lsn uint64, kind uint8, key, val []byte) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("kv: ReplApply: partition %d out of range [0,%d)", part, len(s.parts))
	}
	if kind != ReplPut && kind != ReplDelete {
		return fmt.Errorf("kv: ReplApply: bad record kind %d", kind)
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	h := s.hash(key)
	if got := s.f.PartitionFor(h); got != part {
		return fmt.Errorf("kv: ReplApply: key routes to partition %d, record says %d (geometry mismatch)", got, part)
	}
	p := &s.parts[part]
	// replMu makes watermark-check + apply atomic against concurrent
	// appliers and a promotion racing in local writes.
	p.replMu.Lock()
	defer p.replMu.Unlock()
	if lsn <= p.lsn.Load() {
		return nil
	}
	sh := p.shardFor(h)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	oldHead, existed := p.tree.Find(h)
	next := uint64(0)
	prevKind := 0
	if existed {
		next = oldHead
		prevKind = p.chainFindKind(oldHead, key)
	}
	off, err := p.appendRecord(sh, int(kind), lsn, key, val, next)
	if err != nil {
		return err
	}
	if err := p.tree.Upsert(h, off); err != nil {
		return err
	}
	// The record is durable and reachable: the watermark advance is
	// recoverable (recount re-derives it from this record), so the volatile
	// counter can move.
	p.lsn.Store(lsn)
	if kind == ReplPut {
		if prevKind == recPut {
			sh.dead.Add(1)
		} else {
			sh.live.Add(1)
		}
	} else {
		if prevKind == recPut {
			sh.live.Add(-1)
			sh.dead.Add(2)
		} else {
			// Tombstone for a key with no live record here (the matching Put
			// was compacted away upstream, or never existed): the tombstone
			// itself is the only garbage.
			sh.dead.Add(1)
		}
	}
	return nil
}

// Bounds on what one ReplBacklog pass may buffer. A lagging subscriber's
// replay must not pin a copy of the whole partition in memory (a fresh
// replica subscribes from LSN 0), so the walk streams the backlog in
// bounded windows: each tree scan keeps only the lowest-LSN records that
// fit the budget, ships them, and rescans above the highest shipped LSN
// until the stream is complete.
// Vars, not consts, so tests can shrink them to force multi-pass replays.
var (
	replBacklogMaxRecs  = 4096
	replBacklogMaxBytes = uint64(4 << 20)
)

// backlogRec is one buffered backlog record.
type backlogRec struct {
	lsn      uint64
	kind     uint8
	key, val []byte
}

// backlogHeap is a max-heap on LSN with byte accounting: evicting the root
// drops the highest buffered LSN, so a budget-bounded collection pass always
// retains the *lowest* LSNs above the cursor — the next contiguous window of
// the stream. Evicted records are re-read by the next pass.
type backlogHeap struct {
	recs  []backlogRec
	bytes uint64
}

func (h *backlogHeap) Len() int            { return len(h.recs) }
func (h *backlogHeap) Less(i, j int) bool  { return h.recs[i].lsn > h.recs[j].lsn }
func (h *backlogHeap) Swap(i, j int)       { h.recs[i], h.recs[j] = h.recs[j], h.recs[i] }
func (h *backlogHeap) Push(x any)          { h.recs = append(h.recs, x.(backlogRec)) }
func (h *backlogHeap) Pop() any {
	r := h.recs[len(h.recs)-1]
	h.recs = h.recs[:len(h.recs)-1]
	return r
}

func (h *backlogHeap) add(r backlogRec) (evicted bool) {
	heap.Push(h, r)
	h.bytes += uint64(len(r.key) + len(r.val))
	// Keep at least one record so a single over-budget record still makes
	// progress instead of looping forever.
	for h.Len() > 1 && (h.Len() > replBacklogMaxRecs || h.bytes > replBacklogMaxBytes) {
		dropped := heap.Pop(h).(backlogRec)
		h.bytes -= uint64(len(dropped.key) + len(dropped.val))
		evicted = true
	}
	return evicted
}

// ReplBacklog calls fn for every reachable record of partition part with
// LSN above from — up to a barrier snapshot of the partition's LSN taken
// under the replication mutex — in ascending LSN order, until fn returns
// false. Superseded record versions dropped by compaction are fine: the
// newest record per key survives with the highest LSN, so replaying the
// backlog converges a subscriber to the primary's state. The key/val slices
// are freshly allocated and may be retained.
//
// The barrier is the replay's correctness keystone (DESIGN.md §13.1): every
// commit holds replMu across LSN-assign → publish → hook, so once the
// snapshot is read under replMu, every record with LSN <= the snapshot is
// already tree-published (the scans below see it) AND already offered to
// every registered subscriber queue. Records above the snapshot are exactly
// the live queue's stream and are never delivered here — so a subscriber
// advancing its cursor along this replay can never skip past a record the
// scan raced with and then drop that record's queue copy as a duplicate.
//
// Memory is bounded (replBacklogMaxRecs/replBacklogMaxBytes): the backlog
// streams in LSN windows, rescanning the tree once per window, rather than
// materializing the whole partition per lagging subscriber.
func (s *Store) ReplBacklog(part int, from uint64, fn func(lsn uint64, kind uint8, key, val []byte) bool) error {
	if part < 0 || part >= len(s.parts) {
		return fmt.Errorf("kv: ReplBacklog: partition %d out of range [0,%d)", part, len(s.parts))
	}
	p := &s.parts[part]
	p.replMu.Lock()
	target := p.lsn.Load()
	p.replMu.Unlock()
	h := &backlogHeap{}
	for from < target {
		h.recs, h.bytes = h.recs[:0], 0
		truncated := false
		p.tree.Scan(0, 0, func(_, off uint64) bool {
			for off != 0 {
				if l := p.readLSN(off); l > from && l <= target {
					kind, key, val, next := p.readRecord(off)
					if h.add(backlogRec{l, uint8(kind), key, val}) {
						truncated = true
					}
					off = next
					continue
				}
				off = p.arena.Read8(off + 8) // next pointer only; skip the copies
			}
			return true
		})
		if h.Len() == 0 {
			return nil // nothing reachable above from: stream complete
		}
		sort.Slice(h.recs, func(i, j int) bool { return h.recs[i].lsn < h.recs[j].lsn })
		for _, r := range h.recs {
			if !fn(r.lsn, r.kind, r.key, r.val) {
				return nil
			}
		}
		from = h.recs[len(h.recs)-1].lsn
		if !truncated {
			return nil // the pass held everything above the cursor: done
		}
	}
	return nil
}

// ReplState returns the persisted replication epoch and role byte (0, 0 if
// the store never participated in replication). The state line lives on
// partition 0's arena, rooted at the root-line word rootReplOff.
func (s *Store) ReplState() (epoch uint64, role uint8) {
	a := s.parts[0].arena
	off := a.Read8(rootReplOff)
	if off == pmem.NullOff || a.Read8(off+replStMagicOff) != replMagic {
		return 0, 0
	}
	w := a.Read8(off + replStWordOff)
	return w >> 8, uint8(w)
}

// SetReplState persists the replication epoch and role. Both pack into one
// 8-byte word, so the update is a single atomic persist: a crash during a
// promotion observes either the old epoch/role or the new, never a mix.
// The first call allocates the state line (line persisted before the root
// word references it; a crash between the two merely leaks the line and
// reads back as never-replicated, i.e. epoch 0).
func (s *Store) SetReplState(epoch uint64, role uint8) error {
	if epoch >= 1<<56 {
		return fmt.Errorf("kv: replication epoch %d overflows the packed state word", epoch)
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed.Load() {
		return ErrClosed
	}
	s.replStMu.Lock()
	defer s.replStMu.Unlock()
	a := s.parts[0].arena
	off := a.Read8(rootReplOff)
	if off == pmem.NullOff {
		var err error
		off, err = a.Alloc(pmem.LineSize)
		if err != nil {
			return err
		}
		a.Write8(off+replStMagicOff, replMagic)
		a.Write8(off+replStWordOff, epoch<<8|uint64(role))
		a.Persist(off, pmem.LineSize)
		a.Write8(rootReplOff, off)
		a.Persist(rootReplOff, 8)
		return nil
	}
	a.Write8(off+replStWordOff, epoch<<8|uint64(role))
	a.Persist(off+replStWordOff, 8)
	return nil
}
